(* lib/search: objectives, the Pareto archive, the annealing loop's
   bitwise session contract, registry specs, and the engine's split
   fallback counters. *)

let model11 = Workloads.Stochastify.make ~ul:1.1 ()

let engine_of (graph, platform) =
  Makespan.Engine.create ~graph ~platform ~model:model11

let bits = Int64.bits_of_float

(* a small fixed case most tests share: random DAG, 4 procs, HEFT init *)
let fixture =
  lazy
    (let rng = Tutil.rng_of_seed 11 in
     let graph = Workloads.Random_dag.generate ~rng ~n:20 () in
     let n_tasks = Dag.Graph.n_tasks graph in
     let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:4 () in
     let init =
       match Sched.Registry.parse "HEFT" with
       | Ok e -> e.Sched.Registry.run graph platform
       | Error e -> failwith e
     in
     (graph, platform, init))

(* --- objectives --- *)

let objective_name_round_trips () =
  List.iter
    (fun o ->
      match Search.Objective.parse (Search.Objective.name o) with
      | Ok o' ->
        Alcotest.(check bool) (Search.Objective.name o ^ " round-trips") true (o = o')
      | Error e -> Alcotest.failf "%s: %s" (Search.Objective.name o) e)
    (Search.Objective.Blend 0.5 :: Search.Objective.all);
  (match Search.Objective.parse "std" with
  | Ok Search.Objective.Makespan_std -> ()
  | _ -> Alcotest.fail "alias std");
  match Search.Objective.parse "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown objective accepted"

let objective_orientation () =
  let graph, platform, init = Lazy.force fixture in
  let engine = engine_of (graph, platform) in
  let ev = Makespan.Engine.analyze engine init in
  let m = Metrics.Robustness.of_engine engine init in
  let ctx = { Search.Objective.delta = 1.0; gamma = 1.05 } in
  Tutil.check_close "E(M)" m.Metrics.Robustness.expected_makespan
    (Search.Objective.value Search.Objective.Expected_makespan ctx ev);
  Tutil.check_close "sigma_m" m.Metrics.Robustness.makespan_std
    (Search.Objective.value Search.Objective.Makespan_std ctx ev);
  (* better-when-larger metrics come back negated *)
  Alcotest.(check bool)
    "slack negated" true
    (Search.Objective.value Search.Objective.Avg_slack ctx ev <= 0.);
  Tutil.check_close "blend = em + 0.5 sigma"
    (m.Metrics.Robustness.expected_makespan +. (0.5 *. m.Metrics.Robustness.makespan_std))
    (Search.Objective.value (Search.Objective.Blend 0.5) ctx ev)

(* --- Pareto archive --- *)

let dummy_sched =
  lazy
    (let _, _, init = Lazy.force fixture in
     init)

let mk_point (em, sigma) =
  {
    Search.Archive.step = 0;
    em;
    sigma;
    slack = 1.;
    objective = em;
    sched = Lazy.force dummy_sched;
  }

let archive_invariants =
  let open QCheck2.Gen in
  (* a small integer grid so exact ties and dominations both occur *)
  let pair_gen = map2 (fun a b -> (float_of_int a, float_of_int b)) (int_range 0 6) (int_range 0 6) in
  Tutil.qcheck ~count:200 "archive: frontier is the non-dominated set"
    (list_size (int_range 0 40) pair_gen)
    (fun coords ->
      let arch = Search.Archive.create ~axis:`Sigma in
      List.iter (fun c -> ignore (Search.Archive.offer arch (mk_point c))) coords;
      let pts = Search.Archive.points arch in
      (* sorted by increasing E(M) *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> a.Search.Archive.em <= b.Search.Archive.em && sorted rest
        | _ -> true
      in
      if not (sorted pts) then QCheck2.Test.fail_report "not sorted by em";
      (* mutually non-dominated (strict domination on one coordinate,
         weak on the other) *)
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              if
                p != q
                && p.Search.Archive.em <= q.Search.Archive.em
                && p.Search.Archive.sigma <= q.Search.Archive.sigma
                && (p.Search.Archive.em < q.Search.Archive.em
                   || p.Search.Archive.sigma < q.Search.Archive.sigma)
              then QCheck2.Test.fail_report "frontier point dominated")
            pts)
        pts;
      (* every offered point is weakly dominated by a survivor *)
      List.iter
        (fun (em, sigma) ->
          if
            not
              (List.exists
                 (fun q ->
                   q.Search.Archive.em <= em && q.Search.Archive.sigma <= sigma)
                 pts)
          then QCheck2.Test.fail_report "offered point escaped the frontier")
        coords;
      true)

let frontier_csv_schema () =
  Alcotest.(check string)
    "column order is the schema contract"
    "index,step,expected_makespan,makespan_std,slack_total,objective,schedule"
    Search.Archive.csv_header;
  let arch = Search.Archive.create ~axis:`Sigma in
  ignore (Search.Archive.offer arch (mk_point (3., 2.)));
  let csv = Search.Archive.to_csv arch in
  (match String.split_on_char '\n' csv with
  | header :: row :: _ ->
    Alcotest.(check string) "first line is the header" Search.Archive.csv_header header;
    Alcotest.(check bool) "row starts with index 0" true
      (String.length row > 2 && String.sub row 0 2 = "0,");
    Alcotest.(check bool)
      "schedule rendered on one line" true
      (not (String.contains row '\n'))
  | _ -> Alcotest.fail "csv missing rows");
  Alcotest.(check int) "one data row"
    2
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)))

(* --- swap re-evaluation: the bitwise session contract --- *)

let eval_bits_equal name (a : Makespan.Engine.evaluation) (b : Makespan.Engine.evaluation)
    =
  let da, pa = Distribution.Dist.to_arrays a.Makespan.Engine.makespan in
  let db, pb = Distribution.Dist.to_arrays b.Makespan.Engine.makespan in
  if Array.length da <> Array.length db then Alcotest.failf "%s: grid sizes differ" name;
  Array.iteri
    (fun i x -> if bits x <> bits db.(i) then Alcotest.failf "%s: x[%d]" name i)
    da;
  Array.iteri
    (fun i p -> if bits p <> bits pb.(i) then Alcotest.failf "%s: pdf[%d]" name i)
    pa;
  if
    bits a.Makespan.Engine.slack.Sched.Slack.total
    <> bits b.Makespan.Engine.slack.Sched.Slack.total
  then Alcotest.failf "%s: slack totals differ" name

let swap_reevaluate_walk () =
  let rng = Tutil.rng_of_seed 42 in
  let graph = Workloads.Random_dag.generate ~rng ~n:14 () in
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:3 () in
  let engine = engine_of (graph, platform) in
  let sched = ref (Sched.Random_sched.generate ~rng ~graph ~n_procs:3) in
  let session = Makespan.Engine.start_session engine !sched in
  let swaps = ref 0 in
  for step = 1 to 60 do
    match Sched.Neighbor.random_swap ~rng !sched with
    | None -> ()
    | Some { Sched.Neighbor.a; b } ->
      incr swaps;
      let sched' = Sched.Schedule.swap !sched ~a ~b in
      (* probe, then verify the base schedule's bits still served *)
      let probe = Makespan.Engine.reevaluate_swap ~commit:false session ~a ~b in
      eval_bits_equal
        (Printf.sprintf "step %d probe" step)
        (Makespan.Engine.analyze engine sched')
        probe;
      eval_bits_equal
        (Printf.sprintf "step %d base intact" step)
        (Makespan.Engine.analyze engine !sched)
        (Makespan.Engine.session_evaluation session);
      (* commit every third feasible swap *)
      if !swaps mod 3 = 0 then begin
        let ev = Makespan.Engine.reevaluate_swap session ~a ~b in
        sched := sched';
        eval_bits_equal (Printf.sprintf "step %d commit" step)
          (Makespan.Engine.analyze engine !sched)
          ev
      end
  done;
  Alcotest.(check bool) "walk exercised swaps" true (!swaps > 10)

let deadlocking_swap_leaves_session_intact () =
  let graph = Workloads.Classic.chain ~n:4 ~volume:1. () in
  let rng = Tutil.rng_of_seed 3 in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks:4 ~n_procs:1 () in
  let engine = engine_of (graph, platform) in
  let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs:1 in
  let session = Makespan.Engine.start_session engine sched in
  let before = Makespan.Engine.stats engine in
  (* task 1 depends on task 0 and both sit on the single processor, so
     the exchange reverses a dependency *)
  Alcotest.(check bool) "apply_swap_opt rejects" true
    (Sched.Neighbor.apply_swap_opt sched { Sched.Neighbor.a = 0; b = 1 } = None);
  (try
     ignore (Makespan.Engine.reevaluate_swap session ~a:0 ~b:1);
     Alcotest.fail "deadlocking swap accepted"
   with Invalid_argument _ -> ());
  let after = Makespan.Engine.stats engine in
  Alcotest.(check int) "no re-evaluation counted" before.Makespan.Engine.reevals
    after.Makespan.Engine.reevals;
  eval_bits_equal "session still serves the base schedule"
    (Makespan.Engine.analyze engine sched)
    (Makespan.Engine.session_evaluation session)

(* --- engine fallback counter split --- *)

let fallback_counters_split () =
  let graph, platform, init = Lazy.force fixture in
  let engine = engine_of (graph, platform) in
  let session = Makespan.Engine.start_session engine init in
  let rng = Tutil.rng_of_seed 19 in
  let m = Sched.Neighbor.random ~rng init in
  ignore (Makespan.Engine.reevaluate_move ~commit:false ~max_cone:0 session m);
  let st = Makespan.Engine.stats engine in
  Alcotest.(check int) "cone overflow under full_cone" 1 st.Makespan.Engine.reeval_full_cone;
  Alcotest.(check int) "no backend fallback yet" 0 st.Makespan.Engine.reeval_full_backend;
  (* a non-incremental backend falls back regardless of cone size *)
  let dodin = Makespan.Engine.start_session ~backend:Makespan.Engine.Dodin engine init in
  let m2 = Sched.Neighbor.random ~rng init in
  ignore (Makespan.Engine.reevaluate_move ~commit:false dodin m2);
  let st = Makespan.Engine.stats engine in
  Alcotest.(check int) "backend fallback under full_backend" 1
    st.Makespan.Engine.reeval_full_backend;
  Alcotest.(check int) "total is the sum of the split"
    (st.Makespan.Engine.reeval_full_cone + st.Makespan.Engine.reeval_full_backend)
    st.Makespan.Engine.reeval_full

(* --- the annealing loop --- *)

let small_config steps seed =
  { Search.Anneal.default with Search.Anneal.steps; seed = Int64.of_int seed }

let anneal_improves_and_stays_incremental () =
  let graph, platform, init = Lazy.force fixture in
  let engine = engine_of (graph, platform) in
  let outcome = Search.Anneal.run ~engine ~init (small_config 80 7) in
  Alcotest.(check bool) "objective never worsens" true
    (outcome.Search.Anneal.best_objective <= outcome.Search.Anneal.init_objective);
  Alcotest.(check bool) "frontier non-empty" true
    (Search.Archive.size outcome.Search.Anneal.frontier > 0);
  let frac = Search.Anneal.incremental_fraction outcome.Search.Anneal.stats in
  if frac < 0.8 then
    Alcotest.failf "incremental fraction %.3f below the 80%% bound" frac;
  Alcotest.(check int) "all steps ran" 80 outcome.Search.Anneal.stats.Search.Anneal.steps_done

let anneal_objective_matches_fresh_analyze () =
  let graph, platform, init = Lazy.force fixture in
  let engine = engine_of (graph, platform) in
  let outcome = Search.Anneal.run ~engine ~init (small_config 60 13) in
  let fresh = Makespan.Engine.analyze engine outcome.Search.Anneal.best in
  let recomputed =
    Search.Objective.value Search.Anneal.default.Search.Anneal.objective
      outcome.Search.Anneal.bounds fresh
  in
  if bits recomputed <> bits outcome.Search.Anneal.best_objective then
    Alcotest.failf "accepted objective %h <> fresh analyze %h"
      outcome.Search.Anneal.best_objective recomputed

let anneal_deterministic_frontier () =
  let graph, platform, init = Lazy.force fixture in
  let run () =
    let engine = engine_of (graph, platform) in
    let outcome = Search.Anneal.run ~engine ~init (small_config 60 5) in
    ( Search.Archive.to_csv outcome.Search.Anneal.frontier,
      outcome.Search.Anneal.best_objective )
  in
  let csv1, best1 = run () in
  let csv2, best2 = run () in
  Alcotest.(check string) "frontier CSV byte-identical under the same seed" csv1 csv2;
  Alcotest.(check bool) "best objective bitwise equal" true (bits best1 = bits best2);
  (* a different seed explores a different trajectory *)
  let engine = engine_of (graph, platform) in
  let other = Search.Anneal.run ~engine ~init (small_config 60 6) in
  Alcotest.(check bool) "distinct seed yields a distinct walk" true
    (Search.Archive.to_csv other.Search.Anneal.frontier <> csv1
    || bits other.Search.Anneal.best_objective <> bits best1)

let anneal_should_stop_interrupts () =
  let graph, platform, init = Lazy.force fixture in
  let engine = engine_of (graph, platform) in
  let calls = ref 0 in
  let outcome =
    Search.Anneal.run
      ~should_stop:(fun () ->
        incr calls;
        !calls > 10)
      ~engine ~init (small_config 500 1)
  in
  Alcotest.(check bool) "interrupted flagged" true outcome.Search.Anneal.interrupted;
  Alcotest.(check bool) "stopped early" true
    (outcome.Search.Anneal.stats.Search.Anneal.steps_done < 500);
  Alcotest.(check bool) "partial frontier still valid" true
    (Search.Archive.size outcome.Search.Anneal.frontier > 0)

(* --- registry specs --- *)

let spec_round_trip () =
  let spec = "anneal:obj=em;steps=24;seed=3;policy=hill;mix=4:2:1" in
  match Search.Anneal.parse_spec spec with
  | Error e -> Alcotest.failf "parse_spec: %s" e
  | Ok (config, ul) ->
    Alcotest.(check bool) "objective" true
      (config.Search.Anneal.objective = Search.Objective.Expected_makespan);
    Alcotest.(check int) "steps" 24 config.Search.Anneal.steps;
    Alcotest.(check bool) "hill climb" true
      (config.Search.Anneal.policy = Search.Anneal.Hill_climb);
    let canonical = Search.Anneal.canonical_spec config ~ul in
    (match Search.Anneal.parse_spec canonical with
    | Error e -> Alcotest.failf "reparse canonical: %s" e
    | Ok (config', ul') ->
      Alcotest.(check bool) "canonical round-trips the config" true (config = config');
      Alcotest.(check bool) "canonical round-trips the ul" true (bits ul = bits ul');
      Alcotest.(check string) "canonicalization is idempotent" canonical
        (Search.Anneal.canonical_spec config' ~ul:ul'))

let spec_rejects_garbage () =
  (match Search.Anneal.parse_spec "anneal:obj=nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown objective accepted");
  (match Search.Anneal.parse_spec "anneal:steps=-4" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative steps accepted");
  match Search.Anneal.parse_spec "anneal:frobnicate=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted"

let registry_runs_anneal_entry () =
  let graph, platform, _ = Lazy.force fixture in
  match Sched.Registry.parse "anneal:obj=sigma_m;steps=8;seed=2" with
  | Error e -> Alcotest.failf "registry parse: %s" e
  | Ok entry ->
    Alcotest.(check bool) "entry name is the canonical spec" true
      (String.length entry.Sched.Registry.name > 7
      && String.sub entry.Sched.Registry.name 0 7 = "anneal:");
    let sched = entry.Sched.Registry.run graph platform in
    Tutil.check_valid ~msg:"annealed schedule" sched;
    (* the canonical name resolves again (replayability by name) *)
    (match Sched.Registry.parse entry.Sched.Registry.name with
    | Ok entry' ->
      Alcotest.(check string) "canonical name is stable" entry.Sched.Registry.name
        entry'.Sched.Registry.name
    | Error e -> Alcotest.failf "canonical name does not reparse: %s" e)

let () =
  Alcotest.run "search"
    [
      ( "objective",
        [
          Alcotest.test_case "parse/name round-trip" `Quick objective_name_round_trips;
          Alcotest.test_case "orientation vs robustness metrics" `Quick
            objective_orientation;
        ] );
      ( "archive",
        [
          archive_invariants;
          Alcotest.test_case "frontier CSV schema" `Quick frontier_csv_schema;
        ] );
      ( "swap",
        [
          Alcotest.test_case "bitwise walk" `Slow swap_reevaluate_walk;
          Alcotest.test_case "deadlock leaves session intact" `Quick
            deadlocking_swap_leaves_session_intact;
        ] );
      ( "engine-stats",
        [ Alcotest.test_case "fallback counter split" `Quick fallback_counters_split ] );
      ( "anneal",
        [
          Alcotest.test_case "improves and stays incremental" `Slow
            anneal_improves_and_stays_incremental;
          Alcotest.test_case "objective bitwise vs fresh analyze" `Slow
            anneal_objective_matches_fresh_analyze;
          Alcotest.test_case "deterministic frontier" `Slow anneal_deterministic_frontier;
          Alcotest.test_case "should_stop interrupts" `Quick anneal_should_stop_interrupts;
        ] );
      ( "registry",
        [
          Alcotest.test_case "spec round-trip" `Quick spec_round_trip;
          Alcotest.test_case "spec rejects garbage" `Quick spec_rejects_garbage;
          Alcotest.test_case "anneal entry end-to-end" `Slow registry_runs_anneal_entry;
        ] );
    ]
