(* The unified evaluation engine: equivalence with the legacy
   per-schedule paths, cache behaviour, slack sharing, thread safety, and
   the Runner's pilot-calibration fallback. *)

let check_close = Tutil.check_close
let check_close_abs = Tutil.check_close_abs

let model11 = Workloads.Stochastify.make ~ul:1.1 ()

let engine_of (graph, platform) =
  Makespan.Engine.create ~graph ~platform ~model:model11

(* mean/std plus the CDF on a probe grid spanning both supports *)
let check_dists_equal name a b =
  check_close (name ^ " mean") (Distribution.Dist.mean a) (Distribution.Dist.mean b);
  check_close (name ^ " std") (Distribution.Dist.std a) (Distribution.Dist.std b);
  let lo1, hi1 = Distribution.Dist.support a in
  let lo2, hi2 = Distribution.Dist.support b in
  let lo = Float.min lo1 lo2 and hi = Float.max hi1 hi2 in
  for i = 0 to 8 do
    let x = lo +. ((hi -. lo) *. float_of_int i /. 8.) in
    check_close_abs
      (Printf.sprintf "%s cdf@%.3f" name x)
      (Distribution.Dist.cdf_at a x)
      (Distribution.Dist.cdf_at b x)
  done

(* --- per-method equivalence on seeded random cases --- *)

let equivalence_tests =
  List.map
    (fun method_ ->
      let name = Makespan.Eval.method_name method_ in
      Tutil.qcheck ~count:60
        (Printf.sprintf "engine %s == legacy %s" name name)
        Tutil.random_scheduled_gen
        (fun (graph, platform, sched) ->
          let legacy = Makespan.Eval.distribution ~method_ sched platform model11 in
          let engine = engine_of (graph, platform) in
          let cached =
            Makespan.Engine.eval
              ~backend:(Makespan.Engine.backend_of_method method_)
              engine sched
          in
          check_dists_equal name legacy cached;
          true))
    Makespan.Eval.all_methods

let montecarlo_backend_matches_legacy () =
  let rng = Tutil.rng_of_seed 5 in
  let graph = Workloads.Cholesky.generate ~tiles:3 () in
  let platform =
    Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs:3 in
  let seed = 1234L in
  let count = 2000 in
  let legacy =
    Distribution.Empirical.to_dist
      ~points:model11.Workloads.Stochastify.points
      (Makespan.Montecarlo.run ~rng:(Prng.Xoshiro.create seed) ~count sched platform
         model11)
  in
  let engine = engine_of (graph, platform) in
  let backend = Makespan.Engine.Montecarlo { count; seed } in
  let a = Makespan.Engine.eval ~backend engine sched in
  let b = Makespan.Engine.eval ~backend engine sched in
  check_dists_equal "mc engine vs legacy" legacy a;
  check_dists_equal "mc deterministic" a b

(* --- cache behaviour --- *)

let fixture () =
  let rng = Tutil.rng_of_seed 7 in
  let graph = Workloads.Classic.fork_join ~width:6 ~volume:3. () in
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:3 () in
  let s1 = Sched.Random_sched.generate ~rng ~graph ~n_procs:3 in
  let s2 = Sched.Random_sched.generate ~rng ~graph ~n_procs:3 in
  (graph, platform, s1, s2)

let duration_cells_cached () =
  let graph, platform, s1, _ = fixture () in
  let engine = engine_of (graph, platform) in
  ignore (Makespan.Engine.eval engine s1);
  let first = Makespan.Engine.stats engine in
  Alcotest.(check bool) "first eval fills cells" true (first.Makespan.Engine.task_misses > 0);
  ignore (Makespan.Engine.eval engine s1);
  let second = Makespan.Engine.stats engine in
  Alcotest.(check int)
    "re-eval builds no new duration cells" first.Makespan.Engine.task_misses
    second.Makespan.Engine.task_misses;
  Alcotest.(check bool)
    "re-eval hits the duration cache" true
    (second.Makespan.Engine.task_hits > first.Makespan.Engine.task_hits)

let comm_cache_shared_across_schedules () =
  let graph, platform, s1, s2 = fixture () in
  let engine = engine_of (graph, platform) in
  ignore (Makespan.Engine.eval engine s1);
  let first = Makespan.Engine.stats engine in
  Alcotest.(check bool)
    "cross-proc edges built comm entries" true
    (first.Makespan.Engine.comm_misses > 0);
  ignore (Makespan.Engine.eval engine s2);
  let second = Makespan.Engine.stats engine in
  (* the network is homogeneous and every edge carries the same volume,
     so the single cached weight serves the second schedule entirely *)
  Alcotest.(check int)
    "homogeneous network: one weight serves both schedules"
    first.Makespan.Engine.comm_misses second.Makespan.Engine.comm_misses;
  Alcotest.(check bool)
    "second schedule hits the comm cache" true
    (second.Makespan.Engine.comm_hits > first.Makespan.Engine.comm_hits)

let create_rejects_mismatched_platform () =
  let graph = Workloads.Classic.chain ~n:4 ~volume:0. () in
  let rng = Tutil.rng_of_seed 3 in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks:9 ~n_procs:2 () in
  Alcotest.check_raises "task-count mismatch"
    (Invalid_argument "Engine.create: platform/graph task-count mismatch")
    (fun () -> ignore (Makespan.Engine.create ~graph ~platform ~model:model11))

(* --- metrics and slack share the engine's propagation --- *)

let of_engine_matches_of_schedule () =
  let graph, platform, s1, s2 = fixture () in
  let engine = engine_of (graph, platform) in
  List.iter
    (fun sched ->
      List.iter
        (fun method_ ->
          let a = Metrics.Robustness.of_engine ~method_ engine sched in
          let b = Metrics.Robustness.of_schedule ~method_ sched platform model11 in
          Array.iteri
            (fun i expected ->
              check_close
                (Printf.sprintf "metric %s" Metrics.Robustness.labels.(i))
                expected
                (Metrics.Robustness.to_array a).(i))
            (Metrics.Robustness.to_array b))
        [ `Classical; `Dodin; `Spelde ])
    [ s1; s2 ]

let analyze_slack_matches_compute () =
  let graph, platform, s1, _ = fixture () in
  let engine = engine_of (graph, platform) in
  List.iter
    (fun mode ->
      let via_engine = (Makespan.Engine.analyze ~slack_mode:mode engine s1).Makespan.Engine.slack in
      let direct = Sched.Slack.compute ~mode s1 platform model11 in
      check_close "slack total" direct.Sched.Slack.total via_engine.Sched.Slack.total;
      check_close "slack std" direct.Sched.Slack.std via_engine.Sched.Slack.std;
      check_close "slack makespan" direct.Sched.Slack.makespan via_engine.Sched.Slack.makespan;
      Array.iteri
        (fun i expected ->
          check_close (Printf.sprintf "slack task %d" i) expected
            via_engine.Sched.Slack.per_task.(i))
        direct.Sched.Slack.per_task)
    [ `Disjunctive; `Precedence ]

(* --- domain safety: a shared engine under Par_array --- *)

let parallel_sweep_matches_sequential () =
  let rng = Tutil.rng_of_seed 11 in
  let graph = Workloads.Random_dag.generate ~rng ~n:20 () in
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:4 () in
  let scheds =
    Array.of_list
      (Sched.Random_sched.generate_many ~rng ~graph ~n_procs:4 ~count:24)
  in
  let engine = engine_of (graph, platform) in
  let parallel =
    Parallel.Par_array.init ~domains:4 ~chunk_size:2 (Array.length scheds) (fun i ->
        let d = Makespan.Engine.eval engine scheds.(i) in
        (Distribution.Dist.mean d, Distribution.Dist.std d))
  in
  Array.iteri
    (fun i (mu, sigma) ->
      let d = Makespan.Classic.run scheds.(i) platform model11 in
      check_close (Printf.sprintf "parallel mean %d" i) (Distribution.Dist.mean d) mu;
      check_close (Printf.sprintf "parallel std %d" i) (Distribution.Dist.std d) sigma)
    parallel

(* --- incremental re-evaluation --- *)

let bits = Int64.bits_of_float

let dist_bits_equal name a b =
  let xa, pa = Distribution.Dist.to_arrays a in
  let xb, pb = Distribution.Dist.to_arrays b in
  if Array.length xa <> Array.length xb then
    Alcotest.failf "%s: grid sizes differ (%d vs %d)" name (Array.length xa)
      (Array.length xb);
  Array.iteri
    (fun i x ->
      if bits x <> bits xb.(i) then Alcotest.failf "%s: x[%d] %h <> %h" name i x xb.(i))
    xa;
  Array.iteri
    (fun i p ->
      if bits p <> bits pb.(i) then Alcotest.failf "%s: pdf[%d] %h <> %h" name i p pb.(i))
    pa

let slack_bits_equal name (a : Sched.Slack.summary) (b : Sched.Slack.summary) =
  if
    bits a.Sched.Slack.total <> bits b.Sched.Slack.total
    || bits a.Sched.Slack.std <> bits b.Sched.Slack.std
    || bits a.Sched.Slack.makespan <> bits b.Sched.Slack.makespan
  then Alcotest.failf "%s: slack summary differs" name;
  Array.iteri
    (fun i v ->
      if bits v <> bits b.Sched.Slack.per_task.(i) then
        Alcotest.failf "%s: slack per_task[%d]" name i)
    a.Sched.Slack.per_task

let eval_bits_equal name (a : Makespan.Engine.evaluation) (b : Makespan.Engine.evaluation) =
  dist_bits_equal (name ^ " makespan") a.Makespan.Engine.makespan b.Makespan.Engine.makespan;
  slack_bits_equal name a.Makespan.Engine.slack b.Makespan.Engine.slack

(* The tentpole property: a session's [reevaluate] must agree BITWISE
   with a fresh full [analyze] of the patched schedule, over a long
   random walk of committed single moves — including moves that grow or
   shrink the disjunctive graph, explicit no-op (same proc, same
   position) moves, and uncommitted probes that must leave the session
   state untouched. *)
let reevaluate_walk backend steps () =
  let rng = Tutil.rng_of_seed 42 in
  let graph = Workloads.Random_dag.generate ~rng ~n:14 () in
  let n_tasks = Dag.Graph.n_tasks graph in
  let n_procs = 3 in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs () in
  let engine = engine_of (graph, platform) in
  let sched = ref (Sched.Random_sched.generate ~rng ~graph ~n_procs) in
  let session = Makespan.Engine.start_session ~backend engine !sched in
  eval_bits_equal "session start"
    (Makespan.Engine.analyze ~backend engine !sched)
    (Makespan.Engine.session_evaluation session);
  for step = 1 to steps do
    let m =
      if step mod 10 = 0 then begin
        (* explicit no-op: reinsert a task at its current position *)
        let task = Prng.Xoshiro.int rng n_tasks in
        let open Sched.Schedule in
        Sched.Neighbor.make ~at:(!sched).pos_in_proc.(task) ~task
          ~to_:(!sched).proc_of.(task) ()
      end
      else Sched.Neighbor.random ~rng !sched
    in
    (* probe without committing, then verify the session still serves
       the base schedule's bits *)
    if step mod 7 = 0 then begin
      let probe = Makespan.Engine.reevaluate_move ~commit:false session m in
      eval_bits_equal
        (Printf.sprintf "step %d probe" step)
        (Makespan.Engine.analyze ~backend engine (Sched.Neighbor.apply !sched m))
        probe;
      eval_bits_equal
        (Printf.sprintf "step %d base intact after probe" step)
        (Makespan.Engine.analyze ~backend engine !sched)
        (Makespan.Engine.session_evaluation session)
    end;
    let ev = Makespan.Engine.reevaluate_move session m in
    sched := Sched.Neighbor.apply !sched m;
    eval_bits_equal
      (Printf.sprintf "step %d (%s)" step (Sched.Neighbor.to_string m))
      (Makespan.Engine.analyze ~backend engine !sched)
      ev
  done;
  (match backend with
  | Makespan.Engine.Classical | Makespan.Engine.Spelde ->
    Alcotest.(check bool) "some moves served incrementally" true
      ((Makespan.Engine.stats engine).Makespan.Engine.reeval_incremental > 0)
  | _ ->
    Alcotest.(check int) "non-incremental backend always falls back" 0
      (Makespan.Engine.stats engine).Makespan.Engine.reeval_incremental);
  (* committed steps plus the uncommitted probes every 7th step *)
  Alcotest.(check int) "every move counted"
    (steps + (steps / 7))
    (Makespan.Engine.stats engine).Makespan.Engine.reevals

let cutoff_forces_full_fallback () =
  let graph, platform, s1, _ = fixture () in
  let engine = engine_of (graph, platform) in
  let session = Makespan.Engine.start_session engine s1 in
  let rng = Tutil.rng_of_seed 19 in
  let m = Sched.Neighbor.random ~rng s1 in
  let ev = Makespan.Engine.reevaluate_move ~max_cone:0 session m in
  eval_bits_equal "cutoff fallback bits"
    (Makespan.Engine.analyze engine (Sched.Neighbor.apply s1 m))
    ev;
  let st = Makespan.Engine.stats engine in
  Alcotest.(check int) "counted as full" 1 st.Makespan.Engine.reeval_full;
  Alcotest.(check int) "not counted as incremental" 0 st.Makespan.Engine.reeval_incremental

let reset_stats_clears_reeval_counters () =
  let graph, platform, s1, _ = fixture () in
  let engine = engine_of (graph, platform) in
  let session = Makespan.Engine.start_session engine s1 in
  let rng = Tutil.rng_of_seed 23 in
  ignore (Makespan.Engine.reevaluate_move ~commit:false session (Sched.Neighbor.random ~rng s1));
  ignore
    (Makespan.Engine.reevaluate_move ~commit:false ~max_cone:0 session
       (Sched.Neighbor.random ~rng s1));
  let st = Makespan.Engine.stats engine in
  Alcotest.(check bool) "reevals counted before reset" true (st.Makespan.Engine.reevals = 2);
  Alcotest.(check bool) "cone nodes accumulated" true
    (st.Makespan.Engine.reeval_cone_nodes > 0 || st.Makespan.Engine.reeval_incremental = 0);
  Makespan.Engine.reset_stats engine;
  let st = Makespan.Engine.stats engine in
  Alcotest.(check int) "reevals cleared" 0 st.Makespan.Engine.reevals;
  Alcotest.(check int) "incremental cleared" 0 st.Makespan.Engine.reeval_incremental;
  Alcotest.(check int) "full cleared" 0 st.Makespan.Engine.reeval_full;
  Alcotest.(check int) "cone nodes cleared" 0 st.Makespan.Engine.reeval_cone_nodes;
  Alcotest.(check int) "max cone cleared" 0 st.Makespan.Engine.reeval_max_cone

(* CI allocation bound: re-evaluating a small-cone one-move neighbor
   must allocate at most a fifth of a full evaluation (it should be far
   less — the bound is deliberately loose so CI noise cannot trip it). *)
let reeval_allocation_bound () =
  let rng = Tutil.rng_of_seed 31 in
  let graph = Workloads.Random_dag.generate ~rng ~n:30 () in
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:8 () in
  let engine = engine_of (graph, platform) in
  let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs:8 in
  let session = Makespan.Engine.start_session engine sched in
  let exits = Dag.Graph.exits graph in
  let moved = exits.(Array.length exits - 1) in
  let to_ = (sched.Sched.Schedule.proc_of.(moved) + 1) mod 8 in
  (* warm both paths (duration/comm caches, scratch growth) *)
  ignore (Makespan.Engine.reevaluate ~commit:false session ~moved ~to_);
  ignore (Makespan.Engine.analyze engine sched);
  let iters = 5 in
  let words_of f =
    let before = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    (Gc.minor_words () -. before) /. float_of_int iters
  in
  let reeval_words =
    words_of (fun () ->
        ignore (Makespan.Engine.reevaluate ~commit:false session ~moved ~to_))
  in
  let full_words = words_of (fun () -> ignore (Makespan.Engine.analyze engine sched)) in
  Alcotest.(check bool) "probe served incrementally" true
    ((Makespan.Engine.stats engine).Makespan.Engine.reeval_incremental > 0);
  if reeval_words > full_words /. 5. then
    Alcotest.failf "1-move reeval allocates %.0f words vs %.0f full (bound: 1/5)"
      reeval_words full_words

(* --- Runner pilot fallback (count = 0) --- *)

let runner_zero_count_falls_back_to_heuristics () =
  let case =
    Experiments.Case.make ~kind:Experiments.Case.Cholesky ~n_target:10 ~n_procs:3 ~ul:1.1
      ()
  in
  let result = Experiments.Runner.run ~domains:2 ~count:0 case in
  Alcotest.(check int) "no random rows" 0
    (Array.length (Experiments.Runner.random_rows result));
  let heuristic = Experiments.Runner.heuristic_rows result in
  Alcotest.(check int) "all heuristics evaluated"
    (List.length Experiments.Runner.heuristics)
    (List.length heuristic);
  Alcotest.(check bool) "calibrated delta positive" true (result.Experiments.Runner.delta > 0.);
  Alcotest.(check bool) "calibrated gamma > 1" true (result.Experiments.Runner.gamma > 1.);
  List.iter
    (fun (name, row) ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) (name ^ " metrics finite") true (Float.is_finite v))
        row)
    heuristic

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        equivalence_tests
        @ [
            Alcotest.test_case "montecarlo backend" `Slow montecarlo_backend_matches_legacy;
          ] );
      ( "caching",
        [
          Alcotest.test_case "duration cells" `Quick duration_cells_cached;
          Alcotest.test_case "comm cache across schedules" `Quick
            comm_cache_shared_across_schedules;
          Alcotest.test_case "mismatched platform" `Quick create_rejects_mismatched_platform;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "of_engine == of_schedule" `Quick of_engine_matches_of_schedule;
          Alcotest.test_case "slack modes" `Quick analyze_slack_matches_compute;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "shared engine under domains" `Quick
            parallel_sweep_matches_sequential;
        ] );
      ( "reevaluate",
        [
          Alcotest.test_case "classical walk == analyze (bitwise)" `Slow
            (reevaluate_walk Makespan.Engine.Classical 200);
          Alcotest.test_case "spelde walk == analyze (bitwise)" `Slow
            (reevaluate_walk Makespan.Engine.Spelde 200);
          Alcotest.test_case "dodin walk == analyze (bitwise)" `Slow
            (reevaluate_walk Makespan.Engine.Dodin 200);
          Alcotest.test_case "cone cutoff falls back bitwise" `Quick
            cutoff_forces_full_fallback;
          Alcotest.test_case "reset_stats clears reeval counters" `Quick
            reset_stats_clears_reeval_counters;
          Alcotest.test_case "1-move reeval allocation bound" `Slow
            reeval_allocation_bound;
        ] );
      ( "runner",
        [
          Alcotest.test_case "count=0 pilot fallback" `Quick
            runner_zero_count_falls_back_to_heuristics;
        ] );
    ]
