(* The unified evaluation engine: equivalence with the legacy
   per-schedule paths, cache behaviour, slack sharing, thread safety, and
   the Runner's pilot-calibration fallback. *)

let check_close = Tutil.check_close
let check_close_abs = Tutil.check_close_abs

let model11 = Workloads.Stochastify.make ~ul:1.1 ()

let engine_of (graph, platform) =
  Makespan.Engine.create ~graph ~platform ~model:model11

(* mean/std plus the CDF on a probe grid spanning both supports *)
let check_dists_equal name a b =
  check_close (name ^ " mean") (Distribution.Dist.mean a) (Distribution.Dist.mean b);
  check_close (name ^ " std") (Distribution.Dist.std a) (Distribution.Dist.std b);
  let lo1, hi1 = Distribution.Dist.support a in
  let lo2, hi2 = Distribution.Dist.support b in
  let lo = Float.min lo1 lo2 and hi = Float.max hi1 hi2 in
  for i = 0 to 8 do
    let x = lo +. ((hi -. lo) *. float_of_int i /. 8.) in
    check_close_abs
      (Printf.sprintf "%s cdf@%.3f" name x)
      (Distribution.Dist.cdf_at a x)
      (Distribution.Dist.cdf_at b x)
  done

(* --- per-method equivalence on seeded random cases --- *)

let equivalence_tests =
  List.map
    (fun method_ ->
      let name = Makespan.Eval.method_name method_ in
      Tutil.qcheck ~count:60
        (Printf.sprintf "engine %s == legacy %s" name name)
        Tutil.random_scheduled_gen
        (fun (graph, platform, sched) ->
          let legacy = Makespan.Eval.distribution ~method_ sched platform model11 in
          let engine = engine_of (graph, platform) in
          let cached =
            Makespan.Engine.eval
              ~backend:(Makespan.Engine.backend_of_method method_)
              engine sched
          in
          check_dists_equal name legacy cached;
          true))
    Makespan.Eval.all_methods

let montecarlo_backend_matches_legacy () =
  let rng = Tutil.rng_of_seed 5 in
  let graph = Workloads.Cholesky.generate ~tiles:3 () in
  let platform =
    Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs:3 in
  let seed = 1234L in
  let count = 2000 in
  let legacy =
    Distribution.Empirical.to_dist
      ~points:model11.Workloads.Stochastify.points
      (Makespan.Montecarlo.run ~rng:(Prng.Xoshiro.create seed) ~count sched platform
         model11)
  in
  let engine = engine_of (graph, platform) in
  let backend = Makespan.Engine.Montecarlo { count; seed } in
  let a = Makespan.Engine.eval ~backend engine sched in
  let b = Makespan.Engine.eval ~backend engine sched in
  check_dists_equal "mc engine vs legacy" legacy a;
  check_dists_equal "mc deterministic" a b

(* --- cache behaviour --- *)

let fixture () =
  let rng = Tutil.rng_of_seed 7 in
  let graph = Workloads.Classic.fork_join ~width:6 ~volume:3. () in
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:3 () in
  let s1 = Sched.Random_sched.generate ~rng ~graph ~n_procs:3 in
  let s2 = Sched.Random_sched.generate ~rng ~graph ~n_procs:3 in
  (graph, platform, s1, s2)

let duration_cells_cached () =
  let graph, platform, s1, _ = fixture () in
  let engine = engine_of (graph, platform) in
  ignore (Makespan.Engine.eval engine s1);
  let first = Makespan.Engine.stats engine in
  Alcotest.(check bool) "first eval fills cells" true (first.Makespan.Engine.task_misses > 0);
  ignore (Makespan.Engine.eval engine s1);
  let second = Makespan.Engine.stats engine in
  Alcotest.(check int)
    "re-eval builds no new duration cells" first.Makespan.Engine.task_misses
    second.Makespan.Engine.task_misses;
  Alcotest.(check bool)
    "re-eval hits the duration cache" true
    (second.Makespan.Engine.task_hits > first.Makespan.Engine.task_hits)

let comm_cache_shared_across_schedules () =
  let graph, platform, s1, s2 = fixture () in
  let engine = engine_of (graph, platform) in
  ignore (Makespan.Engine.eval engine s1);
  let first = Makespan.Engine.stats engine in
  Alcotest.(check bool)
    "cross-proc edges built comm entries" true
    (first.Makespan.Engine.comm_misses > 0);
  ignore (Makespan.Engine.eval engine s2);
  let second = Makespan.Engine.stats engine in
  (* the network is homogeneous and every edge carries the same volume,
     so the single cached weight serves the second schedule entirely *)
  Alcotest.(check int)
    "homogeneous network: one weight serves both schedules"
    first.Makespan.Engine.comm_misses second.Makespan.Engine.comm_misses;
  Alcotest.(check bool)
    "second schedule hits the comm cache" true
    (second.Makespan.Engine.comm_hits > first.Makespan.Engine.comm_hits)

let create_rejects_mismatched_platform () =
  let graph = Workloads.Classic.chain ~n:4 ~volume:0. () in
  let rng = Tutil.rng_of_seed 3 in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks:9 ~n_procs:2 () in
  Alcotest.check_raises "task-count mismatch"
    (Invalid_argument "Engine.create: platform/graph task-count mismatch")
    (fun () -> ignore (Makespan.Engine.create ~graph ~platform ~model:model11))

(* --- metrics and slack share the engine's propagation --- *)

let of_engine_matches_of_schedule () =
  let graph, platform, s1, s2 = fixture () in
  let engine = engine_of (graph, platform) in
  List.iter
    (fun sched ->
      List.iter
        (fun method_ ->
          let a = Metrics.Robustness.of_engine ~method_ engine sched in
          let b = Metrics.Robustness.of_schedule ~method_ sched platform model11 in
          Array.iteri
            (fun i expected ->
              check_close
                (Printf.sprintf "metric %s" Metrics.Robustness.labels.(i))
                expected
                (Metrics.Robustness.to_array a).(i))
            (Metrics.Robustness.to_array b))
        [ `Classical; `Dodin; `Spelde ])
    [ s1; s2 ]

let analyze_slack_matches_compute () =
  let graph, platform, s1, _ = fixture () in
  let engine = engine_of (graph, platform) in
  List.iter
    (fun mode ->
      let via_engine = (Makespan.Engine.analyze ~slack_mode:mode engine s1).Makespan.Engine.slack in
      let direct = Sched.Slack.compute ~mode s1 platform model11 in
      check_close "slack total" direct.Sched.Slack.total via_engine.Sched.Slack.total;
      check_close "slack std" direct.Sched.Slack.std via_engine.Sched.Slack.std;
      check_close "slack makespan" direct.Sched.Slack.makespan via_engine.Sched.Slack.makespan;
      Array.iteri
        (fun i expected ->
          check_close (Printf.sprintf "slack task %d" i) expected
            via_engine.Sched.Slack.per_task.(i))
        direct.Sched.Slack.per_task)
    [ `Disjunctive; `Precedence ]

(* --- domain safety: a shared engine under Par_array --- *)

let parallel_sweep_matches_sequential () =
  let rng = Tutil.rng_of_seed 11 in
  let graph = Workloads.Random_dag.generate ~rng ~n:20 () in
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:4 () in
  let scheds =
    Array.of_list
      (Sched.Random_sched.generate_many ~rng ~graph ~n_procs:4 ~count:24)
  in
  let engine = engine_of (graph, platform) in
  let parallel =
    Parallel.Par_array.init ~domains:4 ~chunk_size:2 (Array.length scheds) (fun i ->
        let d = Makespan.Engine.eval engine scheds.(i) in
        (Distribution.Dist.mean d, Distribution.Dist.std d))
  in
  Array.iteri
    (fun i (mu, sigma) ->
      let d = Makespan.Classic.run scheds.(i) platform model11 in
      check_close (Printf.sprintf "parallel mean %d" i) (Distribution.Dist.mean d) mu;
      check_close (Printf.sprintf "parallel std %d" i) (Distribution.Dist.std d) sigma)
    parallel

(* --- Runner pilot fallback (count = 0) --- *)

let runner_zero_count_falls_back_to_heuristics () =
  let case =
    Experiments.Case.make ~kind:Experiments.Case.Cholesky ~n_target:10 ~n_procs:3 ~ul:1.1
      ()
  in
  let result = Experiments.Runner.run ~domains:2 ~count:0 case in
  Alcotest.(check int) "no random rows" 0
    (Array.length (Experiments.Runner.random_rows result));
  let heuristic = Experiments.Runner.heuristic_rows result in
  Alcotest.(check int) "all heuristics evaluated"
    (List.length Experiments.Runner.heuristics)
    (List.length heuristic);
  Alcotest.(check bool) "calibrated delta positive" true (result.Experiments.Runner.delta > 0.);
  Alcotest.(check bool) "calibrated gamma > 1" true (result.Experiments.Runner.gamma > 1.);
  List.iter
    (fun (name, row) ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) (name ^ " metrics finite") true (Float.is_finite v))
        row)
    heuristic

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        equivalence_tests
        @ [
            Alcotest.test_case "montecarlo backend" `Slow montecarlo_backend_matches_legacy;
          ] );
      ( "caching",
        [
          Alcotest.test_case "duration cells" `Quick duration_cells_cached;
          Alcotest.test_case "comm cache across schedules" `Quick
            comm_cache_shared_across_schedules;
          Alcotest.test_case "mismatched platform" `Quick create_rejects_mismatched_platform;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "of_engine == of_schedule" `Quick of_engine_matches_of_schedule;
          Alcotest.test_case "slack modes" `Quick analyze_slack_matches_compute;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "shared engine under domains" `Quick
            parallel_sweep_matches_sequential;
        ] );
      ( "runner",
        [
          Alcotest.test_case "count=0 pilot fallback" `Quick
            runner_zero_count_falls_back_to_heuristics;
        ] );
    ]
