(* Experiment-harness suites: scaling, cases, runner, correlation,
   figure drivers at minimal scale. *)

let check_close = Tutil.check_close

let tiny_scale =
  (* even cheaper than "smoke": floor counts everywhere *)
  { Experiments.Scale.name = "tiny"; schedule_divisor = 1000; mc_divisor = 1000;
    include_n1000 = false }

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- Scale --- *)

let scale_presets () =
  Alcotest.(check int) "full schedules" 10000
    (Experiments.Scale.schedules Experiments.Scale.full 10000);
  Alcotest.(check int) "small schedules" 1000
    (Experiments.Scale.schedules Experiments.Scale.small 10000);
  Alcotest.(check int) "smoke schedules" 100
    (Experiments.Scale.schedules Experiments.Scale.smoke 10000);
  Alcotest.(check int) "floor" 30 (Experiments.Scale.schedules Experiments.Scale.smoke 100);
  Alcotest.(check int) "mc floor" 1000
    (Experiments.Scale.realizations Experiments.Scale.smoke 10000)

let scale_env_parsing () =
  Unix.putenv "REPRO_SCALE" "full";
  Alcotest.(check string) "full" "full" (Experiments.Scale.of_env ()).Experiments.Scale.name;
  Unix.putenv "REPRO_SCALE" "smoke";
  Alcotest.(check string) "smoke" "smoke" (Experiments.Scale.of_env ()).Experiments.Scale.name;
  Unix.putenv "REPRO_SCALE" "garbage";
  Alcotest.(check string) "fallback" "small" (Experiments.Scale.of_env ()).Experiments.Scale.name;
  Unix.putenv "REPRO_SCALE" "small"

(* --- Case --- *)

let case_defaults () =
  let c = Experiments.Case.make ~kind:Experiments.Case.Cholesky ~n_target:10 ~ul:1.01 () in
  Alcotest.(check int) "procs for small" 3 c.Experiments.Case.n_procs;
  Alcotest.(check int) "schedules" 10000 c.Experiments.Case.paper_schedules;
  let c100 =
    Experiments.Case.make ~kind:Experiments.Case.Gauss_elim ~n_target:103 ~ul:1.1 ()
  in
  Alcotest.(check int) "procs for large" 16 c100.Experiments.Case.n_procs;
  Alcotest.(check int) "2000 schedules at n>=100" 2000 c100.Experiments.Case.paper_schedules

let case_instantiate_sizes () =
  (* structured kinds realize the closest size to the target *)
  let check kind target lo hi =
    let c = Experiments.Case.make ~kind ~n_target:target ~ul:1.1 () in
    let i = Experiments.Case.instantiate c in
    let n = Dag.Graph.n_tasks i.Experiments.Case.graph in
    Alcotest.(check bool)
      (Printf.sprintf "%s target %d got %d" (Experiments.Case.kind_name kind) target n)
      true
      (n >= lo && n <= hi)
  in
  check Experiments.Case.Random_graph 30 30 30;
  check Experiments.Case.Cholesky 10 10 10;
  check Experiments.Case.Cholesky 100 80 130;
  check Experiments.Case.Gauss_elim 103 100 110

let case_instantiate_deterministic () =
  let c = Experiments.Case.make ~kind:Experiments.Case.Random_graph ~n_target:20 ~ul:1.1 () in
  let a = Experiments.Case.instantiate c and b = Experiments.Case.instantiate c in
  Alcotest.(check bool) "same graph" true
    (Dag.Graph.edges a.Experiments.Case.graph = Dag.Graph.edges b.Experiments.Case.graph)

let paper_cases_count () =
  let cases = Experiments.Case.paper_cases () in
  Alcotest.(check int) "24 cases" 24 (List.length cases);
  (* ids unique *)
  let ids = List.map (fun c -> c.Experiments.Case.id) cases in
  Alcotest.(check int) "unique ids" 24 (List.length (List.sort_uniq compare ids))

(* --- Runner & Correlate --- *)

let shared_run =
  lazy
    (let case =
       Experiments.Case.make ~kind:Experiments.Case.Cholesky ~n_target:10 ~ul:1.1 ()
     in
     Experiments.Runner.run ~scale:tiny_scale case)

let runner_produces_rows () =
  let r = Lazy.force shared_run in
  Alcotest.(check int) "30 random + 3 heuristics" 33 (Array.length r.Experiments.Runner.rows);
  Alcotest.(check int) "8 metrics per row" 8 (Array.length r.Experiments.Runner.rows.(0));
  Alcotest.(check int) "heuristic count" 3
    (List.length (Experiments.Runner.heuristic_rows r));
  Alcotest.(check int) "random count" 30
    (Array.length (Experiments.Runner.random_rows r));
  Alcotest.(check bool) "delta positive" true (r.Experiments.Runner.delta > 0.);
  Alcotest.(check bool) "gamma above 1" true (r.Experiments.Runner.gamma > 1.)

let runner_heuristics_have_best_makespan () =
  let r = Lazy.force shared_run in
  let randoms = Experiments.Runner.random_rows r in
  let best_random =
    Array.fold_left (fun acc row -> Float.min acc row.(0)) infinity randoms
  in
  List.iter
    (fun (name, row) ->
      Alcotest.(check bool) (name ^ " <= best random") true (row.(0) <= best_random +. 1e-6))
    (Experiments.Runner.heuristic_rows r)

let correlate_matrix_properties () =
  let r = Lazy.force shared_run in
  let m = Experiments.Correlate.of_result r in
  Alcotest.(check int) "8x8" 8 (Array.length m);
  for i = 0 to 7 do
    check_close "diag" 1. m.(i).(i);
    for j = 0 to 7 do
      if not (Float.is_nan m.(i).(j)) then begin
        check_close ~eps:1e-9 "symmetric" m.(i).(j) m.(j).(i);
        Alcotest.(check bool) "bounded" true (Float.abs m.(i).(j) <= 1. +. 1e-9)
      end
    done
  done

let correlate_cluster_holds () =
  (* the paper's headline: σ/entropy/lateness/A strongly positively
     correlated, even at tiny scale *)
  let r = Lazy.force shared_run in
  let m = Experiments.Correlate.of_result r in
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool) (Printf.sprintf "cluster (%d,%d) > 0.9" i j) true
        (m.(i).(j) > 0.9))
    [ (1, 2); (1, 5); (1, 6); (2, 5); (2, 6); (5, 6) ]

let mean_std_of_matrices () =
  let a = [| [| 1.; 0.4 |]; [| 0.4; 1. |] |] in
  let b = [| [| 1.; 0.8 |]; [| 0.8; 1. |] |] in
  let mean, std = Experiments.Correlate.mean_std [ a; b ] in
  check_close "mean" 0.6 mean.(0).(1);
  check_close "std" 0.2 std.(0).(1)

let mean_std_skips_nan () =
  let a = [| [| 1.; Float.nan |]; [| Float.nan; 1. |] |] in
  let b = [| [| 1.; 0.8 |]; [| 0.8; 1. |] |] in
  let mean, std = Experiments.Correlate.mean_std [ a; b ] in
  check_close "nan skipped" 0.8 mean.(0).(1);
  (* a cell populated by a single matrix has a well-defined (zero) std *)
  check_close "single-sample std" 0. std.(0).(1)

let mean_std_all_nan_cell_stays_nan () =
  let a = [| [| 1.; Float.nan |]; [| Float.nan; 1. |] |] in
  let b = [| [| 1.; Float.nan |]; [| Float.nan; 1. |] |] in
  let mean, std = Experiments.Correlate.mean_std [ a; b ] in
  Alcotest.(check bool) "mean stays nan" true (Float.is_nan mean.(0).(1));
  Alcotest.(check bool) "std stays nan" true (Float.is_nan std.(0).(1));
  check_close "diag mean" 1. mean.(0).(0)

(* a constant metric column (e.g. all-equal slack on a 1-proc smoke
   case) must yield explicit nan cells, not a rounding-noise ±1 *)
let matrix_degenerate_column () =
  let k = Metrics.Robustness.n_metrics in
  let rng = Prng.Xoshiro.create 7L in
  let rows =
    Array.init 40 (fun _ ->
        Array.init k (fun j ->
            if j = 3 then 42. (* constant column *)
            else Prng.Xoshiro.next_float rng))
  in
  let m = Experiments.Correlate.matrix ~invert:false rows in
  for j = 0 to k - 1 do
    if j <> 3 then begin
      Alcotest.(check bool) (Printf.sprintf "cell (3,%d) nan" j) true
        (Float.is_nan m.(3).(j));
      Alcotest.(check bool) (Printf.sprintf "cell (%d,3) nan" j) true
        (Float.is_nan m.(j).(3))
    end
  done;
  check_close "degenerate diagonal still 1" 1. m.(3).(3);
  Alcotest.(check bool) "non-degenerate cells finite" true
    (not (Float.is_nan m.(0).(1)))

let matrix_single_schedule_is_nan_not_crash () =
  let k = Metrics.Robustness.n_metrics in
  let rows = [| Array.init k float_of_int |] in
  let m = Experiments.Correlate.matrix ~invert:false rows in
  Alcotest.(check bool) "off-diagonal nan" true (Float.is_nan m.(0).(1));
  check_close "diag" 1. m.(0).(0)

(* end-to-end: one degenerate case must not blank cells that a healthy
   case populated — the Fig. 6 aggregation failure mode *)
let mean_std_degenerate_case_does_not_blank () =
  let k = Metrics.Robustness.n_metrics in
  let rng = Prng.Xoshiro.create 11L in
  let healthy =
    Experiments.Correlate.matrix ~invert:false
      (Array.init 40 (fun _ -> Array.init k (fun _ -> Prng.Xoshiro.next_float rng)))
  in
  let degenerate =
    Experiments.Correlate.matrix ~invert:false
      (Array.init 40 (fun i ->
           Array.init k (fun j -> if j = 0 then 1. else float_of_int (i + j))))
  in
  Alcotest.(check bool) "degenerate cell is nan" true (Float.is_nan degenerate.(0).(1));
  let mean, _ = Experiments.Correlate.mean_std [ healthy; degenerate ] in
  check_close "cell survives from healthy case" healthy.(0).(1) mean.(0).(1)

(* --- Figures (minimal scale smoke) --- *)

let fig7_moments_match () =
  let t = Experiments.Fig7.run () in
  Alcotest.(check bool) "mean in range" true (t.Experiments.Fig7.mean > 5.);
  Alcotest.(check int) "series lengths" (Array.length t.Experiments.Fig7.xs)
    (Array.length t.Experiments.Fig7.special);
  Alcotest.(check bool) "render" true
    (contains ~needle:"Fig. 7" (Experiments.Fig7.render t))

let fig8_distance_decreases () =
  let t = Experiments.Fig8.run ~max_sums:12 ~points:128 () in
  Alcotest.(check int) "12 points" 12 (List.length t);
  let first = List.hd t and last = List.nth t 11 in
  Alcotest.(check bool) "KS collapses" true
    (last.Experiments.Fig8.ks < 0.2 *. first.Experiments.Fig8.ks);
  Alcotest.(check bool) "KS small by 10 sums" true (last.Experiments.Fig8.ks < 0.02);
  Alcotest.(check bool) "skewness decays" true
    (Float.abs last.Experiments.Fig8.skewness
    < 0.5 *. Float.abs (List.hd t).Experiments.Fig8.skewness);
  Alcotest.(check bool) "kurtosis decays" true
    (Float.abs last.Experiments.Fig8.kurtosis_excess
    < 0.5 *. Float.abs (List.hd t).Experiments.Fig8.kurtosis_excess)

let fig9_slack_not_robustness () =
  let rows = Experiments.Fig9.run () in
  Alcotest.(check int) "4 schedules" 4 (List.length rows);
  let find name = List.find (fun r -> r.Experiments.Fig9.name = name) rows in
  let wide = find "wide" and chain = find "chain" and mix = find "slack-mix" in
  Alcotest.(check bool) "wide has least sigma" true
    (wide.Experiments.Fig9.makespan_std < chain.Experiments.Fig9.makespan_std);
  Alcotest.(check bool) "mix has most slack" true
    (mix.Experiments.Fig9.total_slack > 10. *. wide.Experiments.Fig9.total_slack +. 1.);
  Alcotest.(check bool) "slack does not buy robustness" true
    (mix.Experiments.Fig9.makespan_std > wide.Experiments.Fig9.makespan_std)

let fig_corr_specs () =
  Alcotest.(check string) "fig3 kind" "cholesky"
    (Experiments.Case.kind_name Experiments.Fig_corr.fig3.Experiments.Fig_corr.case.Experiments.Case.kind);
  Alcotest.(check string) "fig4 kind" "random"
    (Experiments.Case.kind_name Experiments.Fig_corr.fig4.Experiments.Fig_corr.case.Experiments.Case.kind);
  Alcotest.(check string) "fig5 kind" "gauss-elim"
    (Experiments.Case.kind_name Experiments.Fig_corr.fig5.Experiments.Fig_corr.case.Experiments.Case.kind)

let fig_corr_render_smoke () =
  let spec =
    { Experiments.Fig_corr.fig = "test";
      case = Experiments.Case.make ~kind:Experiments.Case.Cholesky ~n_target:10 ~ul:1.1 () }
  in
  let t = Experiments.Fig_corr.run ~scale:tiny_scale spec in
  let s = Experiments.Fig_corr.render t in
  Alcotest.(check bool) "mentions HEFT" true (contains ~needle:"HEFT" s);
  Alcotest.(check bool) "mentions labels" true (contains ~needle:"mk-std" s)

let intext_rel_prob_close_to_one () =
  let r = Lazy.force shared_run in
  let t = Experiments.Intext.rel_prob_vs_std [ r ] in
  Alcotest.(check bool) "pearson > 0.95" true (t.Experiments.Intext.mean > 0.95)

let spearman_matrix_close_to_pearson () =
  (* on the near-linear clouds of the paper, rank correlation agrees *)
  let r = Lazy.force shared_run in
  let rows = Experiments.Runner.random_rows r in
  let p = Experiments.Correlate.matrix rows in
  let s = Experiments.Correlate.matrix ~method_:`Spearman rows in
  (* cluster pairs: same strong positive correlation under both *)
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool) (Printf.sprintf "spearman (%d,%d)" i j) true
        (s.(i).(j) > 0.9 && p.(i).(j) > 0.9))
    [ (1, 2); (1, 5) ]

let export_csv_wellformed () =
  let t = Experiments.Fig8.run ~max_sums:5 ~points:128 () in
  let csv = Experiments.Export.fig8_csv t in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + 5 rows" 6 (List.length lines);
  Alcotest.(check string) "header" "n_sums,ks,cm,skewness,kurtosis_excess" (List.hd lines)

let export_schedules_csv () =
  let r = Lazy.force shared_run in
  let csv = Experiments.Export.schedules_csv r in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  (* header + 30 random + 3 heuristics *)
  Alcotest.(check int) "rows" 34 (List.length lines);
  Alcotest.(check bool) "heuristic named" true
    (List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "HEFT") lines)

let export_write_file () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "repro-export-test" in
  let path = Experiments.Export.write_file ~dir ~name:"t.csv" "a,b\n1,2\n" in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "content" "a,b" line

let ablation_tradeoff_shape () =
  let points = Experiments.Ablation.robust_heft_tradeoff ~kappas:[ 0.; 4. ] () in
  match points with
  | [ k0; k4 ] ->
    Alcotest.(check bool) "kappa recorded" true
      (k0.Experiments.Ablation.kappa = 0. && k4.Experiments.Ablation.kappa = 4.);
    Alcotest.(check bool) "sigma not worse" true
      (k4.Experiments.Ablation.makespan_std
      <= k0.Experiments.Ablation.makespan_std +. 1e-9)
  | _ -> Alcotest.fail "expected two points"

let campaign_checkpoints_and_resumes () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "repro-campaign-test" in
  (* clean slate *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let cases =
    [ Experiments.Case.make ~kind:Experiments.Case.Cholesky ~n_target:10 ~ul:1.1 () ]
  in
  let first = Experiments.Campaign.run ~scale:tiny_scale ~dir ~cases () in
  Alcotest.(check int) "one case" 1 (List.length first.Experiments.Campaign.results);
  Alcotest.(check bool) "computed fresh" false
    (List.hd first.Experiments.Campaign.results).Experiments.Campaign.from_checkpoint;
  (* second run must load from checkpoint and agree exactly *)
  let second = Experiments.Campaign.run ~scale:tiny_scale ~dir ~cases () in
  Alcotest.(check bool) "loaded" true
    (List.hd second.Experiments.Campaign.results).Experiments.Campaign.from_checkpoint;
  let r1 = (List.hd first.Experiments.Campaign.results).Experiments.Campaign.rows in
  let r2 = (List.hd second.Experiments.Campaign.results).Experiments.Campaign.rows in
  Alcotest.(check int) "same row count" (Array.length r1) (Array.length r2);
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> check_close ~eps:1e-8 "row value" v r2.(i).(j)) row)
    r1;
  (* matrices agree too *)
  check_close ~eps:1e-8 "mean matrix stable"
    first.Experiments.Campaign.mean.(1).(2)
    second.Experiments.Campaign.mean.(1).(2)

let campaign_load_rejects_garbage () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "repro-campaign-bad" in
  let path = Experiments.Export.write_file ~dir ~name:"bad.csv" "nonsense\n1,2\n" in
  Alcotest.(check bool) "rejected" true
    (match Experiments.Campaign.load_rows path with
    | exception Invalid_argument _ -> true
    | _ -> false)

let ablation_shapes_cluster () =
  let rows = Experiments.Ablation.cluster_under_shapes ~scale:tiny_scale () in
  Alcotest.(check int) "four shapes" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Experiments.Ablation.shape_name ^ " cluster holds")
        true
        (r.Experiments.Ablation.cluster > 0.95))
    rows

let ablation_pareto_front () =
  let t = Experiments.Ablation.pareto_front_study ~scale:tiny_scale () in
  Alcotest.(check bool) "front non-empty" true (t.Experiments.Ablation.front_size >= 1);
  Alcotest.(check bool) "front smaller than population" true
    (t.Experiments.Ablation.front_size < t.Experiments.Ablation.population);
  (* no front point dominates another *)
  List.iter
    (fun (m, s) ->
      List.iter
        (fun (m', s') ->
          if (m', s') <> (m, s) then
            Alcotest.(check bool) "non-dominated" false
              (m' <= m && s' <= s && (m' < m || s' < s)))
        t.Experiments.Ablation.front)
    t.Experiments.Ablation.front;
  (* overall correlation strongly positive (the paper's global finding) *)
  Alcotest.(check bool) "overall positive" true (t.Experiments.Ablation.overall_r > 0.3)

let render_table_alignment () =
  let s =
    Experiments.Render.table ~title:"T" ~headers:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "33"; "4" ] ]
  in
  Alcotest.(check bool) "has title" true (contains ~needle:"T" s);
  Alcotest.(check bool) "has underline" true (contains ~needle:"--" s)

let render_table_rejects_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Render.table: ragged row") (fun () ->
      ignore (Experiments.Render.table ~title:"" ~headers:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

(* --- Json (bounded parser / writer) --- *)

module Json = Experiments.Json

let json_value_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Num (string_of_int i)) int;
        map (fun f -> Json.Num (Json.float_lit f)) (float_range (-1e9) 1e9);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec build depth =
    if depth <= 0 then scalar
    else
      oneof
        [
          scalar;
          map (fun l -> Json.Arr l) (list_size (int_range 0 4) (build (depth - 1)));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_range 0 4)
               (pair (string_size ~gen:printable (int_range 0 8)) (build (depth - 1))));
        ]
  in
  build 3

let json_parse_never_raises =
  Tutil.qcheck ~count:500 "parse never raises"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 120))
    (fun s -> match Json.parse s with Ok _ | Error _ -> true)

let json_roundtrip =
  Tutil.qcheck ~count:300 "write/parse roundtrip" json_value_gen (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok back -> back = v
      | Error e -> QCheck2.Test.fail_reportf "reparse failed: %s" (Json.error_to_string e))

let json_bounds_enforced () =
  let deep = String.make 200 '[' ^ String.make 200 ']' in
  (match Json.parse ~max_depth:64 deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth bound ignored");
  (match Json.parse ~max_bytes:8 "[1,2,3,4,5,6]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "byte bound ignored");
  match Json.parse ~max_nodes:4 "[1,2,3,4,5,6,7,8]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "node bound ignored"

let json_trailing_garbage_rejected () =
  (match Json.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse "{\"a\": 1e}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed number accepted"

let manifest_fuzz_dir = Filename.concat (Filename.get_temp_dir_name ()) "repro-manifest-fuzz"

let manifest_load_never_raises =
  Tutil.qcheck ~count:120 "manifest load never raises"
    (* JSON-shaped garbage: mutate plausible manifest fragments *)
    QCheck2.Gen.(
      let fragment =
        oneofl
          [
            "{\"version\":1,\"scale\":\"tiny\",\"slack_mode\":\"disjunctive\",\"cases\":[";
            "{\"id\":\"x\",\"seed\":\"1\",\"schedules\":30,\"status\":\"done\",\"rows\":3,\"attempts\":1}";
            "]}"; "{"; "}"; "["; "]"; ","; ":"; "\"seed\""; "\"status\":\"done\"";
            "null"; "1e309"; "\"\\u0000\""; "-"; "9999999999999999999999";
          ]
      in
      map (String.concat "") (list_size (int_range 0 8) fragment))
    (fun content ->
      ignore
        (Experiments.Export.write_file ~dir:manifest_fuzz_dir
           ~name:Experiments.Manifest.file_name content);
      match Experiments.Manifest.load ~dir:manifest_fuzz_dir with
      | Some _ | None -> true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "experiments"
    [
      ( "json",
        [
          json_parse_never_raises;
          json_roundtrip;
          tc "bounds" `Quick json_bounds_enforced;
          tc "trailing garbage" `Quick json_trailing_garbage_rejected;
          manifest_load_never_raises;
        ] );
      ("scale", [ tc "presets" `Quick scale_presets; tc "env" `Quick scale_env_parsing ]);
      ( "case",
        [
          tc "defaults" `Quick case_defaults;
          tc "instantiate sizes" `Quick case_instantiate_sizes;
          tc "deterministic" `Quick case_instantiate_deterministic;
          tc "paper cases" `Quick paper_cases_count;
        ] );
      ( "runner",
        [
          tc "rows" `Quick runner_produces_rows;
          tc "heuristics best makespan" `Quick runner_heuristics_have_best_makespan;
        ] );
      ( "correlate",
        [
          tc "matrix" `Quick correlate_matrix_properties;
          tc "cluster" `Quick correlate_cluster_holds;
          tc "mean/std" `Quick mean_std_of_matrices;
          tc "nan skipped" `Quick mean_std_skips_nan;
          tc "all-nan cell" `Quick mean_std_all_nan_cell_stays_nan;
          tc "degenerate column" `Quick matrix_degenerate_column;
          tc "single schedule" `Quick matrix_single_schedule_is_nan_not_crash;
          tc "degenerate case in mean" `Quick mean_std_degenerate_case_does_not_blank;
        ] );
      ( "figures",
        [
          tc "fig7" `Quick fig7_moments_match;
          tc "fig8" `Quick fig8_distance_decreases;
          tc "fig9" `Quick fig9_slack_not_robustness;
          tc "fig3-5 specs" `Quick fig_corr_specs;
          tc "fig corr render" `Quick fig_corr_render_smoke;
          tc "intext rel prob" `Quick intext_rel_prob_close_to_one;
          tc "render table" `Quick render_table_alignment;
          tc "render ragged" `Quick render_table_rejects_ragged;
        ] );
      ( "export",
        [
          tc "spearman option" `Quick spearman_matrix_close_to_pearson;
          tc "fig8 csv" `Quick export_csv_wellformed;
          tc "schedules csv" `Quick export_schedules_csv;
          tc "write file" `Quick export_write_file;
          tc "ablation tradeoff" `Quick ablation_tradeoff_shape;
          tc "ablation shapes" `Quick ablation_shapes_cluster;
          tc "ablation pareto" `Quick ablation_pareto_front;
          tc "campaign checkpoint/resume" `Quick campaign_checkpoints_and_resumes;
          tc "campaign rejects garbage" `Quick campaign_load_rejects_garbage;
        ] );
    ]
