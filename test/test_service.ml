(* Evaluation-service suites: bounded HTTP parsing, protocol round-trips,
   batching, backpressure, deadlines, drain and Stop-scope composition.
   Servers bind 127.0.0.1 on ephemeral ports. *)

module Http = Service.Http
module Proto = Service.Proto
module Server = Service.Server
module Client = Service.Client
module Stop = Experiments.Stop

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- HTTP parser ------------------------------------------------- *)

(* Feed raw bytes to the request parser through a socketpair. *)
let parse_bytes ?limits bytes =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let writer = Domain.spawn (fun () ->
      let buf = Bytes.of_string bytes in
      let n = Bytes.length buf in
      let rec go off =
        if off < n then
          match Unix.write a buf off (n - off) with
          | w -> go (off + w)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      in
      go 0;
      (try Unix.shutdown a Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()))
  in
  let result = Http.read_request ?limits (Http.reader b) in
  Domain.join writer;
  Unix.close a;
  Unix.close b;
  result

let http_parses_simple_request () =
  match parse_bytes "POST /eval?x=1&y=a%20b HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\n\r\nhi" with
  | Ok req ->
    Alcotest.(check string) "meth" "POST" req.Http.meth;
    Alcotest.(check string) "path" "/eval" req.Http.path;
    Alcotest.(check (list (pair string string))) "query" [ ("x", "1"); ("y", "a b") ]
      req.Http.query;
    Alcotest.(check string) "body" "hi" req.Http.body;
    Alcotest.(check bool) "keep alive" true (Http.keep_alive req)
  | Error e -> Alcotest.failf "unexpected error: %s" (Http.error_to_string e)

let http_rejects_oversized_header () =
  let limits = { Http.default_limits with Http.max_header_bytes = 128 } in
  let big = "GET / HTTP/1.1\r\nx-pad: " ^ String.make 256 'a' ^ "\r\n\r\n" in
  (match parse_bytes ~limits big with
  | Error `Header_too_large -> ()
  | Ok _ -> Alcotest.fail "oversized header accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Http.error_to_string e));
  let limits = { Http.default_limits with Http.max_headers = 2 } in
  match parse_bytes ~limits "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n" with
  | Error `Header_too_large -> ()
  | Ok _ -> Alcotest.fail "too many headers accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Http.error_to_string e)

let http_rejects_oversized_body () =
  let limits = { Http.default_limits with Http.max_body_bytes = 8 } in
  match parse_bytes ~limits "POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n" with
  | Error `Body_too_large -> ()
  | Ok _ -> Alcotest.fail "oversized body accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Http.error_to_string e)

let http_rejects_malformed () =
  let expect_bad bytes =
    match parse_bytes bytes with
    | Error (`Bad_request _) -> ()
    | Ok _ -> Alcotest.failf "accepted malformed %S" bytes
    | Error e -> Alcotest.failf "wrong error for %S: %s" bytes (Http.error_to_string e)
  in
  expect_bad "NOT-A-REQUEST-LINE\r\n\r\n";
  expect_bad "GET / HTTP/9.9\r\n\r\n";
  expect_bad "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
  expect_bad "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
  expect_bad "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n";
  expect_bad "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  expect_bad "GET /%zz HTTP/1.1\r\n\r\n";
  (* truncated mid-head and mid-body *)
  expect_bad "GET / HTTP/1.1\r\nHost: h";
  expect_bad "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"

let http_eof_is_closed () =
  match parse_bytes "" with
  | Error `Closed -> ()
  | Ok _ -> Alcotest.fail "empty stream produced a request"
  | Error e -> Alcotest.failf "wrong error: %s" (Http.error_to_string e)

let http_keep_alive_pipelining () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let bytes = "GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.0\r\n\r\n" in
  ignore (Unix.write a (Bytes.of_string bytes) 0 (String.length bytes));
  let r = Http.reader b in
  (match Http.read_request r with
  | Ok req ->
    Alcotest.(check string) "first" "/one" req.Http.path;
    Alcotest.(check bool) "keep-alive" true (Http.keep_alive req)
  | Error e -> Alcotest.failf "first: %s" (Http.error_to_string e));
  (match Http.read_request r with
  | Ok req ->
    Alcotest.(check string) "second" "/two" req.Http.path;
    Alcotest.(check bool) "1.0 closes" false (Http.keep_alive req)
  | Error e -> Alcotest.failf "second: %s" (Http.error_to_string e));
  Unix.close a;
  Unix.close b

let http_fuzz_never_raises =
  Tutil.qcheck ~count:60 "read_request never raises"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun bytes ->
      let limits =
        { Http.max_header_bytes = 64; max_headers = 4; max_body_bytes = 64 }
      in
      match parse_bytes ~limits bytes with Ok _ | Error _ -> true)

(* --- Protocol ---------------------------------------------------- *)

let named_job ?(schedules = [ Proto.Heuristic "HEFT" ]) ?(ul = 1.1) ?deadline_ms
    ?(seed = 1L) () =
  {
    Proto.workload =
      Proto.Named { kind = Experiments.Case.Cholesky; n = 10; procs = 3; seed };
    ul;
    backend = Makespan.Engine.Classical;
    schedules;
    slack_mode = `Disjunctive;
    delta = None;
    gamma = None;
    deadline_ms;
    trace = None;
  }

let inline_job () =
  let graph = Dag.Graph.make ~n:3 ~edges:[ (0, 1, 2.); (0, 2, 1.); (1, 2, 3.) ] in
  let etc = [| [| 1.; 2. |]; [| 2.; 1. |]; [| 1.5; 1.5 |] |] in
  let flat = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let platform = Platform.make ~etc ~tau:flat ~latency:flat in
  {
    Proto.workload = Proto.Inline { graph; platform };
    ul = 1.2;
    backend = Makespan.Engine.Dodin;
    schedules = [ Proto.Random { count = 4; seed = 3L } ];
    slack_mode = `Precedence;
    delta = Some 0.5;
    gamma = Some 1.001;
    deadline_ms = Some 60_000;
    trace = None;
  }

let proto_job_roundtrip () =
  let check job =
    match Proto.job_of_json (Proto.job_to_json job) with
    | Ok back ->
      Alcotest.(check string) "roundtrip" (Proto.job_to_json job) (Proto.job_to_json back)
    | Error e -> Alcotest.failf "roundtrip failed: %s" e
  in
  check (named_job ());
  check
    (named_job
       ~schedules:[ Proto.Heuristic "DLS"; Proto.Random { count = 7; seed = -1L } ]
       ~deadline_ms:1500 ());
  check (inline_job ());
  check { (named_job ()) with Proto.backend = Makespan.Engine.Montecarlo { count = 50; seed = 9L } }

let proto_rejects_invalid () =
  let expect_err body =
    match Proto.job_of_json body with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted invalid job %s" body
  in
  expect_err "not json at all {";
  expect_err "[1,2,3]";
  expect_err {|{"ul":1.1,"schedules":["HEFT"]}|};
  (* missing workload *)
  expect_err
    {|{"workload":{"kind":"cholesky","n":10,"procs":3},"ul":0.5,"schedules":["HEFT"]}|};
  expect_err
    {|{"workload":{"kind":"cholesky","n":10,"procs":3},"ul":1.1,"schedules":[]}|};
  expect_err
    {|{"workload":{"kind":"cholesky","n":10,"procs":3},"ul":1.1,"schedules":["NOPE"]}|};
  expect_err
    {|{"workload":{"kind":"volcano","n":10,"procs":3},"ul":1.1,"schedules":["HEFT"]}|};
  expect_err
    {|{"workload":{"kind":"cholesky","n":10,"procs":3},"ul":1.1,"backend":"quantum","schedules":["HEFT"]}|};
  expect_err
    {|{"workload":{"kind":"cholesky","n":99999,"procs":3},"ul":1.1,"schedules":["HEFT"]}|};
  expect_err
    {|{"workload":{"kind":"cholesky","n":10,"procs":3},"ul":1.1,"schedules":[{"random":{"count":999999999}}]}|}

let proto_eval_deterministic () =
  let job = named_job ~schedules:[ Proto.Heuristic "HEFT"; Proto.Random { count = 3; seed = 5L } ] () in
  match (Proto.eval job, Proto.eval job) with
  | Ok a, Ok b -> Alcotest.(check string) "identical bytes" a b
  | Error e, _ | _, Error e -> Alcotest.failf "eval failed: %s" e

(* Neighbor specs go through the worker's incremental-session fast path
   (one full base evaluation + an uncommitted cone replay per row). The
   served numbers must be byte-for-byte those of a fresh full evaluation
   of the patched schedule — the fast path is a latency optimization,
   never a semantic one. *)
let proto_neighbor_rows_match_fresh_eval () =
  let base_job = named_job () in
  let ctx =
    match Proto.context_of_job base_job with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  (* move a sink task: appending it to any processor order is always
     precedence-feasible, so every target processor is a valid neighbor *)
  let exits = Dag.Graph.exits ctx.Proto.graph in
  let task = exits.(Array.length exits - 1) in
  let targets = [ 0; 1; 2 ] in
  let job =
    {
      base_job with
      Proto.schedules =
        Proto.Heuristic "HEFT"
        :: List.map (fun to_ -> Proto.Neighbor { base = "HEFT"; task; to_; at = None }) targets;
    }
  in
  let body = match Proto.eval job with Ok b -> b | Error e -> Alcotest.fail e in
  (match Proto.eval job with
  | Ok again -> Alcotest.(check string) "deterministic bytes" body again
  | Error e -> Alcotest.fail e);
  let engine =
    Makespan.Engine.create ~graph:ctx.Proto.graph ~platform:ctx.Proto.platform
      ~model:ctx.Proto.model
  in
  let base =
    match Sched.Registry.parse "HEFT" with
    | Ok e -> e.Sched.Registry.run ctx.Proto.graph ctx.Proto.platform
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun to_ ->
      let s = Sched.Schedule.reassign base ~task ~to_ in
      let e =
        Makespan.Engine.analyze ~backend:Makespan.Engine.Classical
          ~slack_mode:`Disjunctive engine s
      in
      let d = e.Makespan.Engine.makespan in
      let row =
        Printf.sprintf
          {|{"source":"neighbor:HEFT:%d:%d","makespan":{"mean":%s,"std":%s,"q05":%s,"q50":%s,"q95":%s}|}
          task to_
          (Experiments.Json.float_lit (Distribution.Dist.mean d))
          (Experiments.Json.float_lit (Distribution.Dist.std d))
          (Experiments.Json.float_lit (Distribution.Dist.quantile d 0.05))
          (Experiments.Json.float_lit (Distribution.Dist.quantile d 0.5))
          (Experiments.Json.float_lit (Distribution.Dist.quantile d 0.95))
      in
      Alcotest.(check bool)
        (Printf.sprintf "neighbor row to proc %d equals fresh eval" to_)
        true
        (contains ~needle:row body))
    targets;
  (* the neighbor spec round-trips through the wire format *)
  match Proto.job_of_json (Proto.job_to_json job) with
  | Ok back ->
    Alcotest.(check string) "neighbor json roundtrip" (Proto.job_to_json job)
      (Proto.job_to_json back)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let proto_inline_key_stable () =
  let j1 = inline_job () and j2 = inline_job () in
  match (Proto.context_of_job j1, Proto.context_of_job j2) with
  | Ok c1, Ok c2 ->
    Alcotest.(check string) "same content, same key" c1.Proto.key c2.Proto.key;
    Alcotest.(check bool) "digest-prefixed" true
      (String.length c1.Proto.key > 7 && String.sub c1.Proto.key 0 7 = "inline-");
    let j3 = { j1 with Proto.ul = 1.3 } in
    (match Proto.context_of_job j3 with
    | Ok c3 ->
      Alcotest.(check bool) "ul changes key" true (c1.Proto.key <> c3.Proto.key)
    | Error e -> Alcotest.failf "context: %s" e)
  | Error e, _ | _, Error e -> Alcotest.failf "context: %s" e

(* --- Server ------------------------------------------------------ *)

let with_server ?(config = Server.default_config) f =
  let t = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let with_client t f =
  let c = Client.connect ~port:(Server.port t) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let server_sync_eval_matches_local () =
  with_server (fun t ->
      with_client t (fun c ->
          let job =
            named_job ~schedules:[ Proto.Heuristic "HEFT"; Proto.Random { count = 3; seed = 5L } ] ()
          in
          let local =
            match Proto.eval job with Ok b -> b | Error e -> Alcotest.fail e
          in
          (match Client.eval c job with
          | Ok served -> Alcotest.(check string) "served = local bytes" local served
          | Error e -> Alcotest.fail e);
          match Client.healthz c with
          | Ok body ->
            Alcotest.(check bool) "healthz has version" true
              (contains ~needle:Service.Build_info.version body);
            Alcotest.(check bool) "healthz ok" true (contains ~needle:"\"ok\"" body)
          | Error e -> Alcotest.fail e))

let server_batches_same_key_jobs () =
  let config = { Server.default_config with Server.auto_worker = false } in
  with_server ~config (fun t ->
      with_client t (fun c ->
          (* same (graph × platform × UL) key, different schedule specs *)
          let j1 = named_job ~schedules:[ Proto.Heuristic "HEFT" ] () in
          let j2 = named_job ~schedules:[ Proto.Random { count = 2; seed = 9L } ] () in
          let id1 = match Client.submit c j1 with Ok id -> id | Error e -> Alcotest.fail e in
          let id2 = match Client.submit c j2 with Ok id -> id | Error e -> Alcotest.fail e in
          Alcotest.(check int) "both queued" 2 (Server.stats t).Server.queue_depth;
          let processed = Server.step t in
          Alcotest.(check int) "one step ran both" 2 processed;
          let s = Server.stats t in
          Alcotest.(check int) "one batch" 1 s.Server.batches;
          Alcotest.(check int) "batch of two" 2 s.Server.max_batch;
          Alcotest.(check int) "one engine" 1 s.Server.engines_created;
          Alcotest.(check int) "both done" 2 s.Server.jobs_done;
          Alcotest.(check bool) "shared caches hit" true (s.Server.engine_task_hits > 0);
          (* batching must not change response bytes *)
          List.iter
            (fun (id, job) ->
              let local =
                match Proto.eval job with Ok b -> b | Error e -> Alcotest.fail e
              in
              match Client.wait c id with
              | Ok served -> Alcotest.(check string) (id ^ " bytes") local served
              | Error e -> Alcotest.fail e)
            [ (id1, j1); (id2, j2) ]))

(* Sharded tier: same-key jobs must land on one shard (and batch
   there); distinct keys must spread. Routing is pure consistent
   hashing, so [Server.shard_of_key] predicts every placement. *)
let server_shards_by_key () =
  let config =
    { Server.default_config with Server.auto_worker = false; workers = 4 }
  in
  with_server ~config (fun t ->
      with_client t (fun c ->
          let submit job =
            match Client.submit c job with Ok id -> id | Error e -> Alcotest.fail e
          in
          (* two jobs of one case + six other cases (distinct seeds) *)
          let twin_a = named_job ~schedules:[ Proto.Heuristic "HEFT" ] () in
          let twin_b = named_job ~schedules:[ Proto.Random { count = 2; seed = 9L } ] () in
          let others = List.init 6 (fun i -> named_job ~seed:(Int64.of_int (50 + i)) ()) in
          ignore (submit twin_a);
          ignore (submit twin_b);
          List.iter (fun j -> ignore (submit j)) others;
          let s = Server.stats t in
          Alcotest.(check int) "four shards" 4 s.Server.workers;
          Alcotest.(check int) "all queued" 8 s.Server.queue_depth;
          let home = Server.shard_of_key t (Proto.key_of_job twin_a) in
          Alcotest.(check int) "twin routing agrees" home
            (Server.shard_of_key t (Proto.key_of_job twin_b));
          Alcotest.(check bool) "same-key pair on its home shard" true
            (s.Server.shard_depth.(home) >= 2);
          let occupied =
            Array.fold_left (fun n d -> if d > 0 then n + 1 else n) 0 s.Server.shard_depth
          in
          Alcotest.(check bool) "distinct keys spread over shards" true (occupied >= 2);
          (* drain every shard; the twins must ride one batch *)
          let rec drain n = if Server.step t > 0 then drain (n + 1) else n in
          ignore (drain 0);
          let s = Server.stats t in
          Alcotest.(check int) "everything evaluated" 8 s.Server.jobs_done;
          Alcotest.(check int) "twins batched together" 2 s.Server.max_batch;
          Alcotest.(check int) "one engine per distinct key" 7 s.Server.engines_created;
          Alcotest.(check bool) "per-shard job counts add up" true
            (Array.fold_left ( + ) 0 s.Server.shard_jobs = 8)))

(* Drain with N workers: draining rejections are counted and visible,
   queued jobs across every shard are cancelled. *)
let server_drain_with_workers () =
  let config =
    { Server.default_config with Server.auto_worker = false; workers = 3 }
  in
  let t = Server.start config in
  let c = Client.connect ~port:(Server.port t) () in
  (* spread a few jobs over the shards before the drain begins *)
  let admitted = ref 0 in
  for i = 0 to 4 do
    match Client.submit c (named_job ~seed:(Int64.of_int (80 + i)) ()) with
    | Ok _ -> incr admitted
    | Error e -> Alcotest.fail e
  done;
  let stopper = Domain.spawn (fun () -> Server.stop t) in
  (* keep submitting on the live connection until drain mode answers;
     the first response sent after the flip is the draining 503 *)
  let saw_draining = ref false in
  (try
     while not !saw_draining do
       match Client.post c "/jobs" (Proto.job_to_json (named_job ())) with
       | Ok resp when resp.Http.status = 202 -> incr admitted
       | Ok resp ->
         Alcotest.(check int) "drain rejection is 503" 503 resp.Http.status;
         Alcotest.(check bool) "body says draining" true
           (contains ~needle:"draining" resp.Http.body);
         saw_draining := true
       | Error _ -> Alcotest.fail "connection died before the draining 503"
     done
   with e ->
     Domain.join stopper;
     raise e);
  Domain.join stopper;
  Client.close c;
  let s = Server.stats t in
  Alcotest.(check bool) "draining rejection counted" true (s.Server.rejected_draining >= 1);
  Alcotest.(check int) "every queued job cancelled" !admitted s.Server.jobs_cancelled;
  Alcotest.(check int) "all shard queues empty" 0 s.Server.queue_depth

(* Deadlines are monotonic: a simulated NTP step (the wall-clock skew
   hook) must neither mass-expire fresh jobs nor immortalize stale
   ones. The pre-fix implementation compared [Unix.gettimeofday]. *)
let server_deadline_survives_wall_step () =
  let config = { Server.default_config with Server.auto_worker = false; workers = 2 } in
  Fun.protect
    ~finally:(fun () -> Server.set_wall_offset_for_tests 0.)
    (fun () ->
      with_server ~config (fun t ->
          with_client t (fun c ->
              (* wall clock jumps 1 h forward: a 60 s deadline must hold *)
              Server.set_wall_offset_for_tests 3600.;
              let id =
                match Client.submit c (named_job ~deadline_ms:60000 ()) with
                | Ok id -> id
                | Error e -> Alcotest.fail e
              in
              Alcotest.(check int) "job survives the forward step" 1 (Server.step t);
              (match Client.wait c id with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("job after forward step: " ^ e));
              Alcotest.(check int) "nothing expired" 0 (Server.stats t).Server.jobs_expired;
              (* wall clock jumps 2 h back: a 30 ms deadline still fires *)
              Server.set_wall_offset_for_tests (-7200.);
              (match Client.post c "/eval" (Proto.job_to_json (named_job ~deadline_ms:30 ())) with
              | Ok resp ->
                Alcotest.(check int) "expires on monotonic time" 504 resp.Http.status
              | Error e -> Alcotest.fail (Http.error_to_string e));
              Alcotest.(check int) "expiry counted" 1 (Server.stats t).Server.jobs_expired;
              ignore (Server.step t);
              Alcotest.(check int) "expired job never evaluated" 1
                (Server.stats t).Server.jobs_done)))

let server_backpressure_503 () =
  let config =
    { Server.default_config with Server.auto_worker = false; queue_capacity = 1 }
  in
  with_server ~config (fun t ->
      with_client t (fun c ->
          let j = named_job () in
          (match Client.submit c j with Ok _ -> () | Error e -> Alcotest.fail e);
          (match Client.post c "/jobs" (Proto.job_to_json j) with
          | Ok resp ->
            Alcotest.(check int) "second gets 503" 503 resp.Http.status;
            Alcotest.(check bool) "retry-after set" true
              (Http.header "retry-after" resp.Http.headers <> None)
          | Error e -> Alcotest.fail (Http.error_to_string e));
          let s = Server.stats t in
          Alcotest.(check int) "one admitted" 1 s.Server.jobs_submitted;
          Alcotest.(check int) "one rejected" 1 s.Server.rejected_full;
          Alcotest.(check int) "nothing evaluated yet" 0 s.Server.batches;
          ignore (Server.step t)))

let server_deadline_expires_504 () =
  let config = { Server.default_config with Server.auto_worker = false } in
  with_server ~config (fun t ->
      with_client t (fun c ->
          (* no worker runs it, so the queue-admission deadline must fire *)
          let j = named_job ~deadline_ms:30 () in
          (match Client.post c "/eval" (Proto.job_to_json j) with
          | Ok resp -> Alcotest.(check int) "sync deadline" 504 resp.Http.status
          | Error e -> Alcotest.fail (Http.error_to_string e));
          let s = Server.stats t in
          Alcotest.(check int) "expired counted" 1 s.Server.jobs_expired;
          (* expired job is skipped, not evaluated, when a step drains it *)
          ignore (Server.step t);
          Alcotest.(check int) "never evaluated" 0 (Server.stats t).Server.jobs_done))

let server_rejects_invalid_requests () =
  with_server (fun t ->
      with_client t (fun c ->
          (match Client.post c "/eval" "definitely not json" with
          | Ok resp -> Alcotest.(check int) "bad body" 400 resp.Http.status
          | Error e -> Alcotest.fail (Http.error_to_string e));
          (match Client.get c "/jobs/job-999999" with
          | Ok resp -> Alcotest.(check int) "unknown job" 404 resp.Http.status
          | Error e -> Alcotest.fail (Http.error_to_string e));
          (match Client.post c "/healthz" "" with
          | Ok resp -> Alcotest.(check int) "wrong method" 405 resp.Http.status
          | Error e -> Alcotest.fail (Http.error_to_string e));
          (match Client.get c "/nope" with
          | Ok resp -> Alcotest.(check int) "unknown route" 404 resp.Http.status
          | Error e -> Alcotest.fail (Http.error_to_string e));
          match Client.get c "/metrics" with
          | Ok resp ->
            Alcotest.(check int) "metrics alive" 200 resp.Http.status;
            Alcotest.(check bool) "metrics json" true
              (contains ~needle:"\"service\"" resp.Http.body)
          | Error e -> Alcotest.fail (Http.error_to_string e)))

let server_drain_cancels_queued () =
  let config = { Server.default_config with Server.auto_worker = false } in
  let t = Server.start config in
  let c = Client.connect ~port:(Server.port t) () in
  let id = match Client.submit c (named_job ()) with Ok id -> id | Error e -> Alcotest.fail e in
  ignore id;
  Client.close c;
  Server.stop t;
  Server.stop t (* idempotent *);
  let s = Server.stats t in
  Alcotest.(check int) "queued job cancelled" 1 s.Server.jobs_cancelled;
  Alcotest.(check int) "queue drained" 0 s.Server.queue_depth

let server_restarts_after_stop () =
  (* serve → drain → serve in one process: the shared pool must survive
     (its teardown belongs to at_exit, not Server.stop). *)
  let run_once () =
    with_server (fun t ->
        with_client t (fun c ->
            match Client.eval c (named_job ()) with
            | Ok body -> body
            | Error e -> Alcotest.fail e))
  in
  let a = run_once () in
  let b = run_once () in
  Alcotest.(check string) "second server, same bytes" a b

let server_propagates_trace () =
  with_server (fun t ->
      with_client t (fun c ->
          let tr = Obs.Trace.mint () in
          let tid = tr.Obs.Trace.trace_id in
          (match Client.eval ~traceparent:(Obs.Trace.to_traceparent tr) c (named_job ()) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e);
          (* the record is published just after the response bytes go out,
             so the ring can trail the client by a beat — poll briefly *)
          let path = Printf.sprintf "/debug/requests?format=chrome&trace=%s" tid in
          let rec poll n =
            match Client.get c path with
            | Ok resp when resp.Http.status = 200 && contains ~needle:tid resp.Http.body
              ->
              resp.Http.body
            | (Ok _ | Error _) when n > 0 ->
              Unix.sleepf 0.01;
              poll (n - 1)
            | Ok resp ->
              Alcotest.failf "traced request never surfaced (last status %d)"
                resp.Http.status
            | Error e -> Alcotest.fail (Http.error_to_string e)
          in
          let chrome = poll 100 in
          (* one request must decompose into the full linked stage tree *)
          List.iter
            (fun stage ->
              Alcotest.(check bool) (stage ^ " stage present") true
                (contains ~needle:(Printf.sprintf "\"name\":\"%s\"" stage) chrome))
            [ "parse"; "decode"; "queue"; "batch"; "admit"; "eval"; "encode"; "write" ];
          (* the filtered export carries no other trace *)
          let events =
            let n = ref 0 and i = ref 0 in
            let needle = "\"ph\":\"X\"" in
            let len = String.length needle in
            while !i + len <= String.length chrome do
              if String.sub chrome !i len = needle then incr n;
              incr i
            done;
            !n
          in
          Alcotest.(check bool)
            (Printf.sprintf "request + >=5 stages under one trace (%d events)" events)
            true (events >= 6);
          let ids =
            let n = ref 0 and i = ref 0 in
            let len = String.length tid in
            while !i + len <= String.length chrome do
              if String.sub chrome !i len = tid then incr n;
              incr i
            done;
            !n
          in
          Alcotest.(check int) "every event links the propagated trace id" events ids;
          (* the JSON form shows the same record *)
          match Client.get c "/debug/requests" with
          | Ok resp ->
            Alcotest.(check bool) "debug json lists the trace" true
              (contains ~needle:tid resp.Http.body)
          | Error e -> Alcotest.fail (Http.error_to_string e)))

let server_exposes_openmetrics () =
  with_server (fun t ->
      with_client t (fun c ->
          (match Client.eval c (named_job ()) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e);
          (match Client.get c "/metrics?format=openmetrics" with
          | Ok resp ->
            Alcotest.(check int) "openmetrics status" 200 resp.Http.status;
            (match Http.header "content-type" resp.Http.headers with
            | Some ct ->
              Alcotest.(check bool) "openmetrics content type" true
                (contains ~needle:"application/openmetrics-text" ct)
            | None -> Alcotest.fail "no content-type on /metrics?format=openmetrics");
            (match Obs.Openmetrics.validate resp.Http.body with
            | Ok () -> ()
            | Error e -> Alcotest.failf "exposition fails its own validator: %s" e);
            List.iter
              (fun needle ->
                Alcotest.(check bool) (needle ^ " exposed") true
                  (contains ~needle resp.Http.body))
              [
                "service_requests_total";
                "service_jobs_done_total";
                "service_rejected_draining_total";
                "service_engine_reevals_total";
                "service_engine_reeval_max_cone";
                "service_request_seconds_bucket";
                "service_stage_seconds_bucket{stage=\"eval\",shard=\"0\"";
                "service_shard_jobs_total{shard=\"0\"";
                "service_queue_depth{shard=\"0\"";
                "# EOF";
              ]
          | Error e -> Alcotest.fail (Http.error_to_string e));
          (* Accept-header negotiation selects the same representation *)
          (match
             Client.request c ~meth:"GET" ~path:"/metrics"
               ~headers:[ ("accept", "application/openmetrics-text") ]
               ()
           with
          | Ok resp ->
            Alcotest.(check bool) "negotiated body is openmetrics" true
              (contains ~needle:"# EOF" resp.Http.body)
          | Error e -> Alcotest.fail (Http.error_to_string e));
          (* without either signal the JSON form stays *)
          match Client.get c "/metrics" with
          | Ok resp ->
            Alcotest.(check bool) "default stays json" true
              (contains ~needle:"\"service\"" resp.Http.body)
          | Error e -> Alcotest.fail (Http.error_to_string e)))

(* Serving a neighbor job must route through engine sessions: the
   always-on stats expose the reevaluation counters. *)
let server_counts_neighbor_reevals () =
  with_server (fun t ->
      with_client t (fun c ->
          let base_job = named_job () in
          let ctx =
            match Proto.context_of_job base_job with
            | Ok x -> x
            | Error e -> Alcotest.fail e
          in
          let exits = Dag.Graph.exits ctx.Proto.graph in
          let task = exits.(Array.length exits - 1) in
          let job =
            {
              base_job with
              Proto.schedules =
                [
                  Proto.Neighbor { base = "HEFT"; task; to_ = 0; at = None };
                  Proto.Neighbor { base = "HEFT"; task; to_ = 1; at = None };
                ];
            }
          in
          (match Client.eval c job with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e);
          let s = Server.stats t in
          Alcotest.(check bool) "reevals counted" true (s.Server.engine_reevals >= 2);
          Alcotest.(check int) "every reeval is incremental or full"
            s.Server.engine_reevals
            (s.Server.engine_reeval_incremental + s.Server.engine_reeval_full);
          Alcotest.(check bool) "cone stats coherent" true
            (s.Server.engine_reeval_cone_nodes >= 0
            && s.Server.engine_reeval_max_cone >= 0)))

let proto_trace_field_roundtrip () =
  let tid = (Obs.Trace.mint ()).Obs.Trace.trace_id in
  let job = { (named_job ()) with Proto.trace = Some tid } in
  let json = Proto.job_to_json job in
  Alcotest.(check bool) "trace serialized" true (contains ~needle:tid json);
  (match Proto.job_of_json json with
  | Ok j -> Alcotest.(check bool) "trace survives decode" true (j.Proto.trace = Some tid)
  | Error e -> Alcotest.failf "decode: %s" e);
  (* the trace is correlation metadata: it must not change the batch key *)
  (match (Proto.context_of_job job, Proto.context_of_job (named_job ())) with
  | Ok a, Ok b -> Alcotest.(check string) "key unaffected by trace" b.Proto.key a.Proto.key
  | Error e, _ | _, Error e -> Alcotest.failf "context: %s" e);
  match
    Proto.job_of_json
      {|{"workload":{"kind":"cholesky","n":10,"procs":3},"ul":1.1,"schedules":["HEFT"],"trace":"nope"}|}
  with
  | Ok _ -> Alcotest.fail "invalid trace id accepted"
  | Error _ -> ()

(* --- Stop scopes (shared by campaign + service) ------------------- *)

let stop_scopes_compose () =
  Stop.with_scope (fun outer ->
      Stop.with_scope (fun inner ->
          Alcotest.(check bool) "clean" false
            (Stop.requested outer || Stop.requested inner);
          Stop.request ();
          Alcotest.(check bool) "outer sees it" true (Stop.requested outer);
          Alcotest.(check bool) "inner sees it" true (Stop.requested inner);
          Stop.clear inner;
          Alcotest.(check bool) "inner cleared" false (Stop.requested inner);
          Alcotest.(check bool) "outer still set" true (Stop.requested outer);
          Stop.clear outer))

let stop_restores_signal_behavior () =
  (* behavioral check: inside a scope SIGINT is a stop request; once the
     last scope exits the previous handler is back in charge *)
  let hits = ref 0 in
  let saved = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> incr hits)) in
  let await cond =
    let deadline = Unix.gettimeofday () +. 5. in
    while (not (cond ())) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.005
    done;
    cond ()
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.signal Sys.sigint saved))
    (fun () ->
      Stop.with_scope (fun scope ->
          Alcotest.(check int) "scope active" 1 (Stop.active ());
          Unix.kill (Unix.getpid ()) Sys.sigint;
          Alcotest.(check bool) "scope caught the signal" true
            (await (fun () -> Stop.requested scope));
          Alcotest.(check int) "previous handler untouched" 0 !hits;
          Stop.clear scope);
      Alcotest.(check int) "inactive after exit" 0 (Stop.active ());
      Unix.kill (Unix.getpid ()) Sys.sigint;
      Alcotest.(check bool) "previous handler restored" true
        (await (fun () -> !hits = 1)))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "service"
    [
      ( "http",
        [
          tc "simple request" `Quick http_parses_simple_request;
          tc "oversized header" `Quick http_rejects_oversized_header;
          tc "oversized body" `Quick http_rejects_oversized_body;
          tc "malformed" `Quick http_rejects_malformed;
          tc "eof" `Quick http_eof_is_closed;
          tc "pipelining" `Quick http_keep_alive_pipelining;
          http_fuzz_never_raises;
        ] );
      ( "proto",
        [
          tc "job roundtrip" `Quick proto_job_roundtrip;
          tc "rejects invalid" `Quick proto_rejects_invalid;
          tc "deterministic" `Quick proto_eval_deterministic;
          tc "neighbor rows = fresh eval" `Quick proto_neighbor_rows_match_fresh_eval;
          tc "inline key" `Quick proto_inline_key_stable;
          tc "trace field roundtrip" `Quick proto_trace_field_roundtrip;
        ] );
      ( "server",
        [
          tc "sync eval = local bytes" `Quick server_sync_eval_matches_local;
          tc "batches same-key jobs" `Quick server_batches_same_key_jobs;
          tc "shards by key" `Quick server_shards_by_key;
          tc "drain with workers" `Quick server_drain_with_workers;
          tc "deadline survives wall step" `Quick server_deadline_survives_wall_step;
          tc "backpressure 503" `Quick server_backpressure_503;
          tc "deadline 504" `Quick server_deadline_expires_504;
          tc "invalid requests" `Quick server_rejects_invalid_requests;
          tc "drain cancels queued" `Quick server_drain_cancels_queued;
          tc "serve-drain-serve" `Quick server_restarts_after_stop;
          tc "trace propagation end to end" `Quick server_propagates_trace;
          tc "openmetrics exposition" `Quick server_exposes_openmetrics;
          tc "neighbor jobs count reevals" `Quick server_counts_neighbor_reevals;
        ] );
      ( "stop",
        [
          tc "scopes compose" `Quick stop_scopes_compose;
          tc "signals restored" `Quick stop_restores_signal_behavior;
        ] );
    ]
