(* Parallel fan-out suites: chunk coverage, exception propagation,
   determinism with respect to domain count. *)

let pool_covers_all_chunks () =
  let n = 100 in
  let hit = Array.make n 0 in
  Parallel.Pool.run ~domains:3 ~chunks:n (fun c -> hit.(c) <- hit.(c) + 1);
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "chunk %d once" i) 1 c)
    hit

let pool_zero_chunks () = Parallel.Pool.run ~domains:2 ~chunks:0 (fun _ -> assert false)

let pool_single_domain () =
  let acc = ref 0 in
  Parallel.Pool.run ~domains:1 ~chunks:10 (fun c -> acc := !acc + c);
  Alcotest.(check int) "sum" 45 !acc

let pool_propagates_exception () =
  Alcotest.check_raises "failure" (Failure "boom") (fun () ->
      Parallel.Pool.run ~domains:2 ~chunks:8 (fun c -> if c = 3 then failwith "boom"))

let pool_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Pool.run: negative chunk count")
    (fun () -> Parallel.Pool.run ~chunks:(-1) (fun _ -> ()))

let par_array_matches_sequential =
  Tutil.qcheck ~count:50 "Par_array.init = Array.init"
    QCheck2.Gen.(pair (int_range 0 500) (int_range 1 4))
    (fun (n, domains) ->
      let f i = (i * 37) mod 101 in
      Parallel.Par_array.init ~domains ~chunk_size:13 n f = Array.init n f)

let par_array_map () =
  let a = Array.init 257 float_of_int in
  let got = Parallel.Par_array.map ~domains:2 (fun x -> x *. 2.) a in
  Alcotest.(check bool) "doubles" true (got = Array.map (fun x -> x *. 2.) a)

let par_array_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (Parallel.Par_array.init 0 (fun _ -> 0)))

let par_array_domain_count_irrelevant () =
  let f i = float_of_int (i * i) /. 7. in
  let one = Parallel.Par_array.init ~domains:1 1000 f in
  let four = Parallel.Par_array.init ~domains:4 1000 f in
  Alcotest.(check bool) "identical" true (one = four)

let default_domains_positive () =
  Alcotest.(check bool) "at least 1" true (Parallel.Pool.default_domains () >= 1)

(* --- persistent pools --- *)

let persistent_pool_reuse () =
  let pool = Parallel.Pool.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Parallel.Pool.size pool);
  (* many consecutive jobs on the same pool: domains are parked and
     rewoken, never respawned *)
  for round = 1 to 50 do
    let n = 20 + (round mod 7) in
    let hit = Array.make n 0 in
    Parallel.Pool.run ~pool ~chunks:n (fun c -> hit.(c) <- hit.(c) + 1);
    Array.iteri
      (fun i c ->
        if c <> 1 then Alcotest.failf "round %d: chunk %d ran %d times" round i c)
      hit
  done;
  Parallel.Pool.shutdown pool

let persistent_pool_exception_then_reuse () =
  let pool = Parallel.Pool.create ~domains:2 () in
  Alcotest.check_raises "failure" (Failure "boom") (fun () ->
      Parallel.Pool.run ~pool ~chunks:8 (fun c -> if c = 5 then failwith "boom"));
  (* the pool survives a failed job *)
  let acc = Atomic.make 0 in
  Parallel.Pool.run ~pool ~chunks:10 (fun c -> ignore (Atomic.fetch_and_add acc c));
  Alcotest.(check int) "sum after failure" 45 (Atomic.get acc);
  Parallel.Pool.shutdown pool

let persistent_pool_shutdown_semantics () =
  let pool = Parallel.Pool.create ~domains:2 () in
  Parallel.Pool.run ~pool ~chunks:4 (fun _ -> ());
  Parallel.Pool.shutdown pool;
  (* idempotent *)
  Parallel.Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool has been shut down") (fun () ->
      Parallel.Pool.run ~pool ~chunks:2 (fun _ -> ()))

let persistent_pool_nested_runs_inline () =
  let pool = Parallel.Pool.create ~domains:2 () in
  let inner_total = Atomic.make 0 in
  Parallel.Pool.run ~pool ~chunks:4 (fun _ ->
      (* a nested run from inside a chunk must drain inline rather than
         deadlock on the busy pool *)
      Parallel.Pool.run ~pool ~chunks:3 (fun c ->
          ignore (Atomic.fetch_and_add inner_total c)));
  Alcotest.(check int) "nested chunks all ran" 12 (Atomic.get inner_total);
  Parallel.Pool.shutdown pool

let shared_pool_respawns_after_shutdown () =
  let p1 = Parallel.Pool.shared () in
  Parallel.Pool.run ~pool:p1 ~chunks:4 (fun _ -> ());
  Parallel.Pool.shutdown p1;
  (* re-fetching after a shutdown transparently respawns a working pool
     (the serve → drain → serve cycle) *)
  let p2 = Parallel.Pool.shared () in
  Alcotest.(check bool) "fresh pool after shutdown" true (p2 != p1);
  let acc = Atomic.make 0 in
  Parallel.Pool.run ~pool:p2 ~chunks:10 (fun c -> ignore (Atomic.fetch_and_add acc c));
  Alcotest.(check int) "sum on respawned pool" 45 (Atomic.get acc);
  (* repeated shutdowns stay idempotent, and the default [run] path
     lands on yet another live shared pool *)
  Parallel.Pool.shutdown p2;
  Parallel.Pool.shutdown p2;
  let hits = Atomic.make 0 in
  Parallel.Pool.run ~chunks:6 (fun _ -> Atomic.incr hits);
  Alcotest.(check int) "default path after two drains" 6 (Atomic.get hits)

let par_array_explicit_pool () =
  let pool = Parallel.Pool.create ~domains:3 () in
  let f i = (i * 31) mod 97 in
  let got = Parallel.Par_array.init ~pool ~chunk_size:13 500 f in
  Parallel.Pool.shutdown pool;
  Alcotest.(check bool) "matches Array.init" true (got = Array.init 500 f)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          tc "covers all chunks" `Quick pool_covers_all_chunks;
          tc "zero chunks" `Quick pool_zero_chunks;
          tc "single domain" `Quick pool_single_domain;
          tc "exception" `Quick pool_propagates_exception;
          tc "negative" `Quick pool_rejects_negative;
          tc "default domains" `Quick default_domains_positive;
        ] );
      ( "persistent",
        [
          tc "reuse across jobs" `Quick persistent_pool_reuse;
          tc "survives exception" `Quick persistent_pool_exception_then_reuse;
          tc "shutdown" `Quick persistent_pool_shutdown_semantics;
          tc "nested runs inline" `Quick persistent_pool_nested_runs_inline;
          tc "shared respawns after shutdown" `Quick shared_pool_respawns_after_shutdown;
        ] );
      ( "par_array",
        [
          par_array_matches_sequential;
          tc "map" `Quick par_array_map;
          tc "empty" `Quick par_array_empty;
          tc "domain independence" `Quick par_array_domain_count_irrelevant;
          tc "explicit pool" `Quick par_array_explicit_pool;
        ] );
    ]
