(* Scheduling suites: schedule representation, eager simulation,
   disjunctive graphs, slack, random schedules and the four heuristics. *)

let check_close = Tutil.check_close

(* a 4-task diamond with unit volumes *)
let diamond = Dag.Graph.make ~n:4 ~edges:[ (0, 1, 1.); (0, 2, 1.); (1, 3, 1.); (2, 3, 1.) ]

let two_proc_platform () =
  (* homogeneous 2 procs, etc 10 everywhere, tau 2, latency 0 *)
  Platform.make
    ~etc:(Array.make_matrix 4 2 10.)
    ~tau:[| [| 0.; 2. |]; [| 2.; 0. |] |]
    ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]

(* --- Schedule --- *)

let make_valid_schedule () =
  let s =
    Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
      ~order:[| [| 0; 1; 3 |]; [| 2 |] |]
  in
  Alcotest.(check int) "tasks" 4 (Sched.Schedule.n_tasks s);
  Alcotest.(check (option int)) "proc pred of 1" (Some 0) (Sched.Schedule.proc_pred s 1);
  Alcotest.(check (option int)) "proc pred of 0" None (Sched.Schedule.proc_pred s 0);
  Alcotest.(check (option int)) "proc succ of 1" (Some 3) (Sched.Schedule.proc_succ s 1);
  Alcotest.(check (option int)) "proc succ of 3" None (Sched.Schedule.proc_succ s 3);
  Alcotest.(check (array int)) "proc 1 tasks" [| 2 |] (Sched.Schedule.tasks_of_proc s 1)

let schedule_validation () =
  let expect msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect "task twice" (fun () ->
      Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
        ~order:[| [| 0; 1; 1 |]; [| 2 |] |]);
  expect "missing task" (fun () ->
      Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
        ~order:[| [| 0; 1 |]; [| 2 |] |]);
  expect "order vs proc_of" (fun () ->
      Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 0; 0 |]
        ~order:[| [| 0; 1; 3 |]; [| 2 |] |]);
  (* precedence deadlock: 3 before 1 on the same processor while 1 → 3 *)
  expect "deadlock" (fun () ->
      Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
        ~order:[| [| 3; 0; 1 |]; [| 2 |] |])

let serialization_roundtrip =
  Tutil.qcheck ~count:100 "to_string/of_string round-trips" Tutil.random_scheduled_gen
    (fun (graph, _, sched) ->
      let s = Sched.Schedule.to_string sched in
      let back = Sched.Schedule.of_string ~graph s in
      back.Sched.Schedule.proc_of = sched.Sched.Schedule.proc_of
      && back.Sched.Schedule.order = sched.Sched.Schedule.order)

let serialization_rejects_garbage () =
  let expect s =
    match Sched.Schedule.of_string ~graph:diamond s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  expect "";
  expect "p0 0 1 2 3";
  expect "p1: 0 1 2 3";
  expect "p0: 0 1 2 99";
  expect "p0: 0 1 x 3"

let of_assignment_sequence_builds () =
  let s =
    Sched.Schedule.of_assignment_sequence ~graph:diamond ~n_procs:2
      [ (0, 0); (2, 1); (1, 0); (3, 0) ]
  in
  Alcotest.(check (array int)) "proc 0 order" [| 0; 1; 3 |] (Sched.Schedule.tasks_of_proc s 0)

(* --- Simulator --- *)

let eager_times_hand_computed () =
  (* proc0: 0, 1, 3; proc1: 2. etc 10, comm = volume·2 = 2 cross.
     start0=0 f=10; task2 on p1: start = 10+2 = 12, f=22;
     task1 on p0: start = 10 (no comm same proc), f=20;
     task3 on p0: preds 1 (f=20, same proc), 2 (f=22 +2 comm = 24); proc pred 1 → 20.
     start3 = 24, f=34. *)
  let s =
    Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
      ~order:[| [| 0; 1; 3 |]; [| 2 |] |]
  in
  let t = Sched.Simulator.deterministic s (two_proc_platform ()) in
  check_close "start 0" 0. t.Sched.Simulator.start.(0);
  check_close "finish 0" 10. t.Sched.Simulator.finish.(0);
  check_close "start 2" 12. t.Sched.Simulator.start.(2);
  check_close "start 1" 10. t.Sched.Simulator.start.(1);
  check_close "start 3" 24. t.Sched.Simulator.start.(3);
  check_close "makespan" 34. t.Sched.Simulator.makespan

let eager_times_with_latency () =
  (* nonzero latency: comm = latency + volume·τ = 3 + 1·2 = 5 *)
  let p =
    Platform.make
      ~etc:(Array.make_matrix 4 2 10.)
      ~tau:[| [| 0.; 2. |]; [| 2.; 0. |] |]
      ~latency:[| [| 0.; 3. |]; [| 3.; 0. |] |]
  in
  let s =
    Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
      ~order:[| [| 0; 1; 3 |]; [| 2 |] |]
  in
  let t = Sched.Simulator.deterministic s p in
  (* task 2 on p1: start = 10 + 5 = 15, finish 25; arrival at 3 = 25 + 5 = 30 *)
  check_close "start 2" 15. t.Sched.Simulator.start.(2);
  check_close "start 3" 30. t.Sched.Simulator.start.(3);
  check_close "makespan" 40. t.Sched.Simulator.makespan

let single_proc_chain_makespan () =
  (* on one processor the makespan is the sum of all durations *)
  let g = Workloads.Classic.chain ~n:5 () in
  let p =
    Platform.make ~etc:(Array.make_matrix 5 1 3.) ~tau:[| [| 0. |] |]
      ~latency:[| [| 0. |] |]
  in
  let s =
    Sched.Schedule.make ~graph:g ~n_procs:1 ~proc_of:(Array.make 5 0)
      ~order:[| [| 0; 1; 2; 3; 4 |] |]
  in
  check_close "sum" 15. (Sched.Simulator.deterministic s p).Sched.Simulator.makespan

let eager_no_overlap_and_precedence =
  Tutil.qcheck ~count:100 "eager times respect processor exclusivity and precedence"
    Tutil.random_scheduled_gen
    (fun (graph, platform, sched) ->
      let t = Sched.Simulator.deterministic sched platform in
      let ok = ref true in
      (* precedence + communication *)
      Array.iter
        (fun (u, v, volume) ->
          let src = sched.Sched.Schedule.proc_of.(u)
          and dst = sched.Sched.Schedule.proc_of.(v) in
          let arrival =
            t.Sched.Simulator.finish.(u) +. Platform.comm_time platform ~src ~dst ~volume
          in
          if t.Sched.Simulator.start.(v) < arrival -. 1e-9 then ok := false)
        (Dag.Graph.edges graph);
      (* processor order *)
      for v = 0 to Dag.Graph.n_tasks graph - 1 do
        match Sched.Schedule.proc_pred sched v with
        | Some u ->
          if t.Sched.Simulator.start.(v) < t.Sched.Simulator.finish.(u) -. 1e-9 then
            ok := false
        | None -> ()
      done;
      !ok)

let eager_starts_are_tight =
  (* eagerness: each start equals the max of its constraints exactly *)
  Tutil.qcheck ~count:100 "eager starts are as early as possible"
    Tutil.random_scheduled_gen
    (fun (graph, platform, sched) ->
      let t = Sched.Simulator.deterministic sched platform in
      let ok = ref true in
      for v = 0 to Dag.Graph.n_tasks graph - 1 do
        let bound = ref 0. in
        (match Sched.Schedule.proc_pred sched v with
        | Some u -> bound := t.Sched.Simulator.finish.(u)
        | None -> ());
        Array.iter
          (fun (u, volume) ->
            let src = sched.Sched.Schedule.proc_of.(u)
            and dst = sched.Sched.Schedule.proc_of.(v) in
            let a =
              t.Sched.Simulator.finish.(u) +. Platform.comm_time platform ~src ~dst ~volume
            in
            if a > !bound then bound := a)
          (Dag.Graph.preds graph v);
        if Float.abs (t.Sched.Simulator.start.(v) -. !bound) > 1e-9 then ok := false
      done;
      !ok)

let mean_times_above_deterministic =
  Tutil.qcheck ~count:50 "mean-duration makespan >= deterministic (UL >= 1)"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let model = Workloads.Stochastify.make ~ul:1.3 () in
      let det = (Sched.Simulator.deterministic sched platform).Sched.Simulator.makespan in
      let mean = (Sched.Simulator.mean_times sched platform model).Sched.Simulator.makespan in
      mean >= det -. 1e-9)

let sampled_within_bounds =
  Tutil.qcheck ~count:30 "sampled makespan within [det, det·UL]"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let ul = 1.2 in
      let model = Workloads.Stochastify.make ~ul () in
      let rng = Tutil.rng_of_seed 5 in
      let det = (Sched.Simulator.deterministic sched platform).Sched.Simulator.makespan in
      let s = (Sched.Simulator.sampled sched platform model ~rng).Sched.Simulator.makespan in
      s >= det -. 1e-9 && s <= (det *. ul) +. 1e-9)

(* --- Disjunctive --- *)

let disjunctive_adds_proc_edges () =
  let s =
    Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
      ~order:[| [| 0; 1; 3 |]; [| 2 |] |]
  in
  let dg = Sched.Disjunctive.graph_of s in
  (* 0→1 and 1→3 already exist as DAG edges, so only... 0→1 exists, 1→3 exists:
     no new edges on proc 0; proc 1 has a single task *)
  Alcotest.(check int) "no duplicate edges" 4 (Dag.Graph.n_edges dg);
  let s2 =
    Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 0; 0 |]
      ~order:[| [| 0; 2; 1; 3 |]; [||] |]
  in
  let dg2 = Sched.Disjunctive.graph_of s2 in
  (* adds 2→1 (not a DAG edge); 0→2 and 1→3 already exist *)
  Alcotest.(check int) "adds 2->1" 5 (Dag.Graph.n_edges dg2);
  Alcotest.(check bool) "edge present" true (Dag.Graph.has_edge dg2 ~src:2 ~dst:1)

let disjunctive_makespan_matches_simulator =
  Tutil.qcheck ~count:100 "longest path of disjunctive graph = eager makespan"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let model = Workloads.Stochastify.deterministic in
      let dg = Sched.Disjunctive.graph_of sched in
      let w = Sched.Disjunctive.weights sched platform model in
      let lp = Dag.Levels.makespan dg w in
      let sim = (Sched.Simulator.deterministic sched platform).Sched.Simulator.makespan in
      Float.abs (lp -. sim) < 1e-6)

(* --- Slack --- *)

let slack_chain_is_zero () =
  (* all tasks on one processor: every task critical, zero slack *)
  let g = Workloads.Classic.chain ~n:4 () in
  let p =
    Platform.make ~etc:(Array.make_matrix 4 1 5.) ~tau:[| [| 0. |] |]
      ~latency:[| [| 0. |] |]
  in
  let s =
    Sched.Schedule.make ~graph:g ~n_procs:1 ~proc_of:(Array.make 4 0)
      ~order:[| [| 0; 1; 2; 3 |] |]
  in
  let slack = Sched.Slack.compute s p Workloads.Stochastify.deterministic in
  check_close "total" 0. slack.Sched.Slack.total;
  check_close "std" 0. slack.Sched.Slack.std;
  check_close "makespan" 20. slack.Sched.Slack.makespan

let slack_idle_task_has_window () =
  (* two independent tasks of different lengths on two procs + join *)
  let g = Dag.Graph.make ~n:3 ~edges:[ (0, 2, 0.); (1, 2, 0.) ] in
  let p =
    Platform.make
      ~etc:[| [| 10.; 10. |]; [| 4.; 4. |]; [| 1.; 1. |] |]
      ~tau:[| [| 0.; 0. |]; [| 0.; 0. |] |]
      ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]
  in
  let s =
    Sched.Schedule.make ~graph:g ~n_procs:2 ~proc_of:[| 0; 1; 0 |]
      ~order:[| [| 0; 2 |]; [| 1 |] |]
  in
  let slack = Sched.Slack.compute s p Workloads.Stochastify.deterministic in
  (* task 1 can slip by 10 − 4 = 6 *)
  check_close "short task slack" 6. slack.Sched.Slack.per_task.(1);
  check_close "critical slack" 0. slack.Sched.Slack.per_task.(0);
  check_close "total" 6. slack.Sched.Slack.total

let slack_modes_differ_on_serialized () =
  (* a serialized schedule: zero disjunctive slack, big precedence slack *)
  let g = Dag.Graph.make ~n:3 ~edges:[ (0, 2, 0.); (1, 2, 0.) ] in
  let p =
    Platform.make
      ~etc:(Array.make_matrix 3 2 10.)
      ~tau:[| [| 0.; 0. |]; [| 0.; 0. |] |]
      ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]
  in
  let s =
    Sched.Schedule.make ~graph:g ~n_procs:2 ~proc_of:[| 0; 0; 0 |]
      ~order:[| [| 0; 1; 2 |]; [||] |]
  in
  let dis = Sched.Slack.compute ~mode:`Disjunctive s p Workloads.Stochastify.deterministic in
  let pre = Sched.Slack.compute ~mode:`Precedence s p Workloads.Stochastify.deterministic in
  check_close "disjunctive zero" 0. dis.Sched.Slack.total;
  Alcotest.(check bool) "precedence positive" true (pre.Sched.Slack.total > 1.)

let slack_nonnegative =
  Tutil.qcheck ~count:100 "slacks are non-negative in both modes"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let model = Workloads.Stochastify.make ~ul:1.1 () in
      List.for_all
        (fun mode ->
          let s = Sched.Slack.compute ~mode sched platform model in
          Array.for_all (fun x -> x >= 0.) s.Sched.Slack.per_task)
        [ `Disjunctive; `Precedence ])

(* --- Random_sched --- *)

let random_schedules_valid =
  Tutil.qcheck ~count:100 "random schedules validate" Tutil.random_dag_gen (fun g ->
      let rng = Tutil.rng_of_seed (Dag.Graph.n_tasks g) in
      let s = Sched.Random_sched.generate ~rng ~graph:g ~n_procs:3 in
      (* Schedule.make validates internally; run the simulator too *)
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      (Sched.Simulator.deterministic s p).Sched.Simulator.makespan > 0.)

let random_schedules_distinct () =
  let g = Workloads.Cholesky.generate ~tiles:4 () in
  let rng = Tutil.rng_of_seed 10 in
  let ss = Sched.Random_sched.generate_many ~rng ~graph:g ~n_procs:4 ~count:20 in
  let distinct =
    List.length
      (List.sort_uniq compare
         (List.map (fun s -> Array.to_list s.Sched.Schedule.proc_of) ss))
  in
  Alcotest.(check bool) "mostly distinct" true (distinct > 15)

(* --- Heuristics --- *)

let heuristics =
  [ ("heft", fun g p -> Sched.Heft.schedule g p); ("bil", Sched.Bil.schedule);
    ("bmct", Sched.Bmct.schedule); ("cpop", Sched.Cpop.schedule);
    ("dls", Sched.Dls.schedule); ("peft", Sched.Peft.schedule);
    ("heft-la", Sched.Heft_la.schedule);
    ("iheft", fun g p -> Sched.Iheft.schedule g p) ]

let heuristics_produce_valid_schedules =
  Tutil.qcheck ~count:50 "heuristic schedules validate and simulate"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 123 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      List.for_all
        (fun (_, h) ->
          let s = h g p in
          (Sched.Simulator.deterministic s p).Sched.Simulator.makespan > 0.)
        heuristics)

let heuristics_beat_random_on_average () =
  let rng = Tutil.rng_of_seed 2024 in
  let g = Workloads.Cholesky.generate ~tiles:4 () in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:4 () in
  let randoms = Sched.Random_sched.generate_many ~rng ~graph:g ~n_procs:4 ~count:50 in
  let mk s = (Sched.Simulator.deterministic s p).Sched.Simulator.makespan in
  let avg_random =
    List.fold_left (fun acc s -> acc +. mk s) 0. randoms /. 50.
  in
  List.iter
    (fun (name, h) ->
      let m = mk (h g p) in
      Alcotest.(check bool) (name ^ " beats random average") true (m < avg_random))
    heuristics

let heft_single_proc_is_serial () =
  let g = Workloads.Classic.chain ~n:4 () in
  let p =
    Platform.make ~etc:(Array.make_matrix 4 1 2.) ~tau:[| [| 0. |] |]
      ~latency:[| [| 0. |] |]
  in
  let s = Sched.Heft.schedule g p in
  check_close "serial sum" 8. (Sched.Simulator.deterministic s p).Sched.Simulator.makespan

let heft_ranks_decrease_along_edges =
  Tutil.qcheck ~count:50 "upward rank strictly decreases along edges"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 9 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:2 ()
      in
      let ranks = Sched.Heft.upward_ranks g p in
      Array.for_all (fun (u, v, _) -> ranks.(u) > ranks.(v)) (Dag.Graph.edges g))

let heft_prefers_fast_processor () =
  (* a single task must go to its fastest processor *)
  let g = Dag.Graph.make ~n:1 ~edges:[] in
  let p =
    Platform.make ~etc:[| [| 10.; 2. |] |] ~tau:[| [| 0.; 1. |]; [| 1.; 0. |] |]
      ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]
  in
  let s = Sched.Heft.schedule g p in
  Alcotest.(check int) "fast proc" 1 s.Sched.Schedule.proc_of.(0)

let heft_insertion_fills_gap () =
  (* task 2 (independent, short) should slot into the idle gap on proc 0
     created while task 1's data travels *)
  let g = Dag.Graph.make ~n:3 ~edges:[ (0, 1, 10.) ] in
  let p =
    Platform.make
      ~etc:[| [| 4.; 100. |]; [| 4.; 100. |]; [| 3.; 100. |] |]
      ~tau:[| [| 0.; 1. |]; [| 1.; 0. |] |]
      ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]
  in
  let s = Sched.Heft.schedule g p in
  (* all on proc 0 (proc 1 is terrible); insertion lets 2 run between 0 and 1 *)
  Alcotest.(check int) "task2 proc" 0 s.Sched.Schedule.proc_of.(2);
  let t = Sched.Simulator.deterministic s p in
  Alcotest.(check bool) "no idle wasted" true (t.Sched.Simulator.makespan <= 11.01)

let heft_rank_policies_all_valid =
  Tutil.qcheck ~count:30 "HEFT rank variants all produce valid schedules"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 19 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      List.for_all
        (fun rank ->
          let s = Sched.Heft.schedule ~rank g p in
          (Sched.Simulator.deterministic s p).Sched.Simulator.makespan > 0.)
        [ `Mean; `Best; `Worst ])

let heft_rank_policies_order_weights () =
  (* on each task: best <= mean <= worst collapsed cost *)
  let g = diamond in
  let rng = Tutil.rng_of_seed 20 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:4 ~n_procs:3 () in
  let wb = Sched.Heft.average_weights ~rank:`Best g p in
  let wm = Sched.Heft.average_weights ~rank:`Mean g p in
  let ww = Sched.Heft.average_weights ~rank:`Worst g p in
  for v = 0 to 3 do
    Alcotest.(check bool) "ordering" true
      (wb.Dag.Levels.task v <= wm.Dag.Levels.task v
      && wm.Dag.Levels.task v <= ww.Dag.Levels.task v)
  done

let bil_levels_at_exits () =
  (* BIL(exit, p) = w(exit, p) *)
  let g = diamond in
  let p = two_proc_platform () in
  let levels = Sched.Bil.bil g p in
  check_close "exit level p0" 10. levels.(3).(0);
  check_close "exit level p1" 10. levels.(3).(1)

let bil_levels_monotone () =
  (* BIL of an ancestor exceeds that of its descendants (positive weights) *)
  let g = diamond in
  let p = two_proc_platform () in
  let levels = Sched.Bil.bil g p in
  Alcotest.(check bool) "entry > exit" true (levels.(0).(0) > levels.(3).(0))

let bmct_groups_are_independent =
  Tutil.qcheck ~count:50 "BMCT groups contain no dependent pair" Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 11 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      let groups = Sched.Bmct.groups g p in
      List.for_all
        (fun group ->
          List.for_all
            (fun u ->
              List.for_all
                (fun v ->
                  u = v
                  || not
                       (Dag.Graph.has_edge g ~src:u ~dst:v
                       || Dag.Graph.has_edge g ~src:v ~dst:u))
                group)
            group)
        groups)

let bmct_groups_cover_all_tasks =
  Tutil.qcheck ~count:50 "BMCT groups partition the task set" Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 12 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      let all = List.concat (Sched.Bmct.groups g p) in
      List.sort_uniq compare all = List.init (Dag.Graph.n_tasks g) Fun.id)

let dls_static_levels_monotone =
  Tutil.qcheck ~count:50 "DLS static levels decrease along edges" Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 18 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      let sl = Sched.Dls.static_levels g p in
      Array.for_all (fun (u, v, _) -> sl.(u) > sl.(v)) (Dag.Graph.edges g))

let dls_single_task_fast_proc () =
  let g = Dag.Graph.make ~n:1 ~edges:[] in
  let p =
    Platform.make ~etc:[| [| 10.; 2. |] |] ~tau:[| [| 0.; 1. |]; [| 1.; 0. |] |]
      ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]
  in
  let s = Sched.Dls.schedule g p in
  Alcotest.(check int) "fast proc" 1 s.Sched.Schedule.proc_of.(0)

let robust_heft_valid_and_degenerates =
  Tutil.qcheck ~count:30 "RobustHEFT schedules validate; κ=0 ≈ HEFT-on-means"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 17 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      let model = Workloads.Stochastify.make ~ul:1.2 () in
      let s = Sched.Robust_heft.schedule ~kappa:1. g p model in
      let s0 = Sched.Robust_heft.schedule ~kappa:0. g p model in
      (Sched.Simulator.deterministic s p).Sched.Simulator.makespan > 0.
      && (Sched.Simulator.deterministic s0 p).Sched.Simulator.makespan > 0.)

let robust_heft_weights_grow_with_kappa () =
  let g = diamond in
  let p = two_proc_platform () in
  let model = Workloads.Stochastify.make ~ul:1.5 () in
  let w0 = Sched.Robust_heft.risk_adjusted_weights ~kappa:0. g p model in
  let w2 = Sched.Robust_heft.risk_adjusted_weights ~kappa:2. g p model in
  Alcotest.(check bool) "task cost grows" true
    (w2.Dag.Levels.task 0 > w0.Dag.Levels.task 0);
  Alcotest.(check bool) "edge cost grows" true
    (w2.Dag.Levels.edge 0 1 > w0.Dag.Levels.edge 0 1)

let robust_heft_rejects_negative_kappa () =
  let g = diamond in
  let p = two_proc_platform () in
  let model = Workloads.Stochastify.make ~ul:1.1 () in
  Alcotest.(check bool) "rejects" true
    (match Sched.Robust_heft.schedule ~kappa:(-1.) g p model with
    | exception Invalid_argument _ -> true
    | _ -> false)

let gantt_renders () =
  let s =
    Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
      ~order:[| [| 0; 1; 3 |]; [| 2 |] |]
  in
  let t = Sched.Simulator.deterministic s (two_proc_platform ()) in
  let out = Sched.Gantt.render s t in
  Alcotest.(check bool) "has rows" true
    (String.length out > 100
    && String.split_on_char '\n' out |> List.exists (fun l -> String.length l > 0))

(* --- Golden equivalence: recomposed heuristics vs frozen legacy outputs --- *)

(* The fixtures under golden/ were generated by the pre-refactor
   monolithic implementations on these exact cases; the framework
   recompositions must reproduce them byte for byte. *)
let golden_cases =
  let module E = Experiments in
  [
    ( "random30",
      E.Case.make ~kind:E.Case.Random_graph ~n_target:30 ~n_procs:8 ~ul:1.1 ~seed:2L () );
    ("chol30", E.Case.make ~kind:E.Case.Cholesky ~n_target:30 ~n_procs:3 ~ul:1.01 ~seed:1L ());
    ("ge35", E.Case.make ~kind:E.Case.Gauss_elim ~n_target:35 ~n_procs:4 ~ul:1.1 ~seed:1L ());
  ]

let golden_heuristics =
  [
    ("heft", fun g p -> Sched.Heft.schedule g p);
    ("heft-best", fun g p -> Sched.Heft.schedule ~rank:`Best g p);
    ("heft-worst", fun g p -> Sched.Heft.schedule ~rank:`Worst g p);
    ("cpop", Sched.Cpop.schedule);
    ("dls", Sched.Dls.schedule);
    ("bil", Sched.Bil.schedule);
    ("bmct", Sched.Bmct.schedule);
  ]

(* dune runtest runs with cwd = test/; dune exec from the root *)
let golden_dir () =
  if Sys.file_exists "golden" then "golden" else Filename.concat "test" "golden"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_equivalence () =
  List.iter
    (fun (cname, case) ->
      let inst = Experiments.Case.instantiate case in
      List.iter
        (fun (hname, h) ->
          let label = hname ^ "__" ^ cname in
          let s = h inst.Experiments.Case.graph inst.Experiments.Case.platform in
          Tutil.check_valid ~msg:label s;
          let expected = read_file (Filename.concat (golden_dir ()) (label ^ ".txt")) in
          Alcotest.(check string) label expected (Sched.Schedule.to_string s))
        golden_heuristics)
    golden_cases

(* --- New heuristics: PEFT, HEFT-LA, IHEFT --- *)

let peft_oct_hand_computed () =
  (* diamond, etc 10 everywhere, unit volumes, tau 2, latency 0 so the
     averaged edge cost is 2. OCT(3,·) = 0; OCT(1,p) = OCT(2,p) =
     min(0 + 10 + 0, 0 + 10 + 2) = 10; OCT(0,p) =
     max over children of min(10 + 10 + 0, 10 + 10 + 2) = 20. *)
  let g = diamond in
  let p = two_proc_platform () in
  let oct = Sched.Peft.oct g p in
  for q = 0 to 1 do
    check_close (Printf.sprintf "oct(3,%d)" q) 0. oct.(3).(q);
    check_close (Printf.sprintf "oct(1,%d)" q) 10. oct.(1).(q);
    check_close (Printf.sprintf "oct(2,%d)" q) 10. oct.(2).(q);
    check_close (Printf.sprintf "oct(0,%d)" q) 20. oct.(0).(q)
  done

let peft_oct_zero_at_exits =
  Tutil.qcheck ~count:50 "PEFT OCT is zero on exit tasks, positive upstream"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 23 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      let oct = Sched.Peft.oct g p in
      let ok = ref true in
      for v = 0 to Dag.Graph.n_tasks g - 1 do
        let exit = Array.length (Dag.Graph.succs g v) = 0 in
        Array.iter
          (fun x ->
            if exit then (if x <> 0. then ok := false)
            else if x <= 0. then ok := false)
          oct.(v)
      done;
      !ok)

let new_heuristics_valid =
  Tutil.qcheck ~count:50 "PEFT/HEFT-LA/IHEFT schedules validate and simulate"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 29 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      List.for_all
        (fun (name, h) ->
          let s = h g p in
          Tutil.check_valid ~msg:name s;
          (Sched.Simulator.deterministic s p).Sched.Simulator.makespan > 0.)
        [
          ("peft", Sched.Peft.schedule);
          ("heft-la", Sched.Heft_la.schedule);
          ("iheft", fun g p -> Sched.Iheft.schedule g p);
        ])

(* IHEFT threshold rule on a hand-built two-task instance: task 1 is
   heavy and homogeneous (ranked first, placed on p0); task 0 then sees
   EFT 11 on p0 (blocked) vs 2.9 on p1, while its locally fastest
   processor is p0 (etc 1 < 2.9). The cross-over takes p0 with
   probability θ/(1+Δ) = 0.5/(1 + 8.1/2.9) ≈ 0.13. *)
let iheft_crossover_graph () = Dag.Graph.make ~n:2 ~edges:[]

let iheft_crossover_platform () =
  Platform.make
    ~etc:[| [| 1.; 2.9 |]; [| 10.; 10. |] |]
    ~tau:[| [| 0.; 0. |]; [| 0.; 0. |] |]
    ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]

let iheft_deterministic_per_seed () =
  let g = iheft_crossover_graph () and p = iheft_crossover_platform () in
  for seed = 1 to 5 do
    let seed = Int64.of_int seed in
    let a = Sched.Iheft.schedule ~seed g p in
    let b = Sched.Iheft.schedule ~seed g p in
    Alcotest.(check string)
      (Printf.sprintf "seed %Ld reproducible" seed)
      (Sched.Schedule.to_string a) (Sched.Schedule.to_string b)
  done

let iheft_threshold_rule_explores () =
  let g = iheft_crossover_graph () and p = iheft_crossover_platform () in
  (* heavy task always on p0; task 0 lands on p0 (local) for ~13% of
     seeds and on p1 (global EFT) otherwise — both must occur *)
  let local = ref 0 and global = ref 0 in
  for seed = 0 to 199 do
    let s = Sched.Iheft.schedule ~seed:(Int64.of_int seed) g p in
    Alcotest.(check int) "heavy task pinned" 0 s.Sched.Schedule.proc_of.(1);
    if s.Sched.Schedule.proc_of.(0) = 0 then incr local else incr global
  done;
  Alcotest.(check bool) "local branch taken" true (!local > 0);
  Alcotest.(check bool) "global branch taken" true (!global > 0);
  Alcotest.(check bool) "global branch dominates" true (!global > !local)

let iheft_huge_penalty_never_crosses () =
  (* p1 enormously slower for task 0: Δ explodes, the cross-over
     probability collapses and every seed picks the global EFT proc *)
  let g = iheft_crossover_graph () in
  let p =
    Platform.make
      ~etc:[| [| 1.; 2.9 |]; [| 1000.; 1000. |] |]
      ~tau:[| [| 0.; 0. |]; [| 0.; 0. |] |]
      ~latency:[| [| 0.; 0. |]; [| 0.; 0. |] |]
  in
  for seed = 0 to 49 do
    let s = Sched.Iheft.schedule ~seed:(Int64.of_int seed) g p in
    Alcotest.(check int)
      (Printf.sprintf "seed %d picks global EFT" seed)
      1 s.Sched.Schedule.proc_of.(0)
  done

(* --- Registry --- *)

let registry_named_entries () =
  let names = Sched.Registry.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names);
      match Sched.Registry.find n with
      | Some e -> Alcotest.(check string) "canonical name" n e.Sched.Registry.name
      | None -> Alcotest.failf "find %s failed" n)
    [ "HEFT"; "CPOP"; "DLS"; "BIL"; "Hyb.BMCT"; "PEFT"; "HEFT-LA"; "IHEFT" ];
  (match Sched.Registry.find "bmct" with
  | Some e -> Alcotest.(check string) "alias resolves" "Hyb.BMCT" e.Sched.Registry.name
  | None -> Alcotest.fail "alias bmct not found");
  Alcotest.(check bool) "unknown is None" true (Sched.Registry.find "nope" = None)

let registry_combo_matches_named () =
  (* the ad-hoc composition equal to HEFT's spec must reproduce HEFT *)
  let inst = Experiments.Case.instantiate (List.assoc "chol30" golden_cases) in
  let g = inst.Experiments.Case.graph and p = inst.Experiments.Case.platform in
  match Sched.Registry.parse "rank=upward:mean,select=eft,insert=insertion,tie=id" with
  | Error e -> Alcotest.failf "combo rejected: %s" e
  | Ok entry ->
    Alcotest.(check string) "combo = HEFT"
      (Sched.Schedule.to_string (Sched.Heft.schedule g p))
      (Sched.Schedule.to_string (entry.Sched.Registry.run g p))

let registry_rejects_malformed () =
  let expect s =
    match Sched.Registry.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  expect "nope";
  expect "rank=upward";
  expect "select=bogus";
  expect "rank=bogus,select=eft";
  expect "select=eft,rank=upward:meh";
  expect "select=bim,rank=oct";
  expect "select=oeft,rank=upward";
  expect "select=eft,insert=maybe";
  expect "select=eft,tie=seeded:xyz";
  expect "select=eft,select=eft";
  expect "select=eft,color=red"

let registry_entries_all_valid =
  Tutil.qcheck ~count:30 "every registry entry yields a valid schedule"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 31 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      List.for_all
        (fun e ->
          let s = e.Sched.Registry.run g p in
          Tutil.check_valid ~msg:e.Sched.Registry.name s;
          (Sched.Simulator.deterministic s p).Sched.Simulator.makespan > 0.)
        Sched.Registry.entries)

let registry_combos_valid =
  Tutil.qcheck ~count:20 "ad-hoc compositions yield valid schedules"
    Tutil.random_dag_gen
    (fun g ->
      let rng = Tutil.rng_of_seed 37 in
      let p =
        Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:3 ()
      in
      List.for_all
        (fun combo ->
          match Sched.Registry.parse combo with
          | Error e -> Alcotest.failf "combo %S rejected: %s" combo e
          | Ok entry ->
            let s = entry.Sched.Registry.run g p in
            Tutil.check_valid ~msg:combo s;
            (Sched.Simulator.deterministic s p).Sched.Simulator.makespan > 0.)
        [
          "rank=upward:best,select=eft,insert=append";
          "rank=static-level,select=eft";
          "rank=oct,select=oeft,insert=append";
          "rank=bil,select=bim,insert=insertion";
          "rank=updown:worst,select=cp-pin";
          "rank=het-upward,select=lookahead";
          "select=crossover:7,tie=seeded:11";
          "rank=upward,select=dl,insert=append,tie=ready";
        ])

(* --- Schedule.validate --- *)

let validate_accepts_make_outputs () =
  let s =
    Sched.Schedule.make ~graph:diamond ~n_procs:2 ~proc_of:[| 0; 0; 1; 0 |]
      ~order:[| [| 0; 1; 3 |]; [| 2 |] |]
  in
  (match Sched.Schedule.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid schedule rejected: %s" e);
  List.iter
    (fun (name, h) ->
      let p = two_proc_platform () in
      Tutil.check_valid ~msg:name (h diamond p))
    heuristics

let cpop_critical_path_is_path () =
  let g = diamond in
  let p = two_proc_platform () in
  let cp = Sched.Cpop.critical_path g p in
  (* must start at the entry and end at the exit *)
  Alcotest.(check int) "starts at entry" 0 (List.hd cp);
  Alcotest.(check int) "ends at exit" 3 (List.nth cp (List.length cp - 1))

let cpop_pins_critical_path () =
  let g = Workloads.Classic.chain ~n:5 () in
  let rng = Tutil.rng_of_seed 13 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:5 ~n_procs:3 () in
  let s = Sched.Cpop.schedule g p in
  (* a chain is entirely critical: all tasks on the same processor *)
  let procs = Array.to_list s.Sched.Schedule.proc_of in
  Alcotest.(check bool) "single proc" true
    (List.for_all (fun q -> q = List.hd procs) procs)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sched"
    [
      ( "schedule",
        [
          tc "valid build" `Quick make_valid_schedule;
          tc "validation" `Quick schedule_validation;
          tc "assignment sequence" `Quick of_assignment_sequence_builds;
          serialization_roundtrip;
          tc "serialization rejects" `Quick serialization_rejects_garbage;
        ] );
      ( "simulator",
        [
          tc "hand computed" `Quick eager_times_hand_computed;
          tc "with latency" `Quick eager_times_with_latency;
          tc "single proc chain" `Quick single_proc_chain_makespan;
          eager_no_overlap_and_precedence;
          eager_starts_are_tight;
          mean_times_above_deterministic;
          sampled_within_bounds;
        ] );
      ( "disjunctive",
        [
          tc "adds proc edges" `Quick disjunctive_adds_proc_edges;
          disjunctive_makespan_matches_simulator;
        ] );
      ( "slack",
        [
          tc "chain zero" `Quick slack_chain_is_zero;
          tc "idle window" `Quick slack_idle_task_has_window;
          tc "modes differ" `Quick slack_modes_differ_on_serialized;
          slack_nonnegative;
        ] );
      ( "random_sched",
        [ random_schedules_valid; tc "distinct" `Quick random_schedules_distinct ] );
      ( "heuristics",
        [
          heuristics_produce_valid_schedules;
          tc "beat random" `Quick heuristics_beat_random_on_average;
          tc "heft serial" `Quick heft_single_proc_is_serial;
          heft_ranks_decrease_along_edges;
          tc "heft fast proc" `Quick heft_prefers_fast_processor;
          tc "heft insertion" `Quick heft_insertion_fills_gap;
          heft_rank_policies_all_valid;
          tc "heft rank ordering" `Quick heft_rank_policies_order_weights;
          tc "bil exit levels" `Quick bil_levels_at_exits;
          tc "bil monotone" `Quick bil_levels_monotone;
          bmct_groups_are_independent;
          bmct_groups_cover_all_tasks;
          tc "cpop path" `Quick cpop_critical_path_is_path;
          tc "cpop pins chain" `Quick cpop_pins_critical_path;
          dls_static_levels_monotone;
          tc "dls fast proc" `Quick dls_single_task_fast_proc;
          robust_heft_valid_and_degenerates;
          tc "robust-heft kappa weights" `Quick robust_heft_weights_grow_with_kappa;
          tc "robust-heft kappa check" `Quick robust_heft_rejects_negative_kappa;
          tc "gantt" `Quick gantt_renders;
        ] );
      ( "golden",
        [
          tc "recomposed = legacy (21 fixtures)" `Quick golden_equivalence;
          tc "validate accepts" `Quick validate_accepts_make_outputs;
        ] );
      ( "new_heuristics",
        [
          tc "peft oct hand computed" `Quick peft_oct_hand_computed;
          peft_oct_zero_at_exits;
          new_heuristics_valid;
          tc "iheft reproducible" `Quick iheft_deterministic_per_seed;
          tc "iheft threshold explores" `Quick iheft_threshold_rule_explores;
          tc "iheft huge penalty" `Quick iheft_huge_penalty_never_crosses;
        ] );
      ( "registry",
        [
          tc "named entries" `Quick registry_named_entries;
          tc "combo matches HEFT" `Quick registry_combo_matches_named;
          tc "rejects malformed" `Quick registry_rejects_malformed;
          registry_entries_all_valid;
          registry_combos_valid;
        ] );
    ]
