(* Distribution algebra suites: constructors, moments, CDF/quantiles,
   sum/max operations, families, empirical distributions, Clark pairs. *)

let check_close = Tutil.check_close
let check_close_abs = Tutil.check_close_abs

open Distribution

(* --- constructors and basic invariants --- *)

let const_basics () =
  let d = Dist.const 5. in
  Alcotest.(check bool) "is_const" true (Dist.is_const d);
  check_close "mean" 5. (Dist.mean d);
  check_close "variance" 0. (Dist.variance d);
  Alcotest.(check bool) "entropy is -inf" true (Dist.entropy d = Float.neg_infinity);
  check_close "cdf below" 0. (Dist.cdf_at d 4.9);
  check_close "cdf at" 1. (Dist.cdf_at d 5.);
  check_close "quantile" 5. (Dist.quantile d 0.3);
  let lo, hi = Dist.support d in
  check_close "support lo" 5. lo;
  check_close "support hi" 5. hi

let const_rejects_nan () =
  Alcotest.check_raises "nan" (Invalid_argument "Dist.const: non-finite value") (fun () ->
      ignore (Dist.const Float.nan))

let of_fn_normalizes () =
  let d = Dist.of_fn ~points:129 ~lo:0. ~hi:1. (fun x -> 42. *. x) in
  check_close ~eps:1e-3 "mean of 2x density" (2. /. 3.) (Dist.mean d);
  check_close "cdf hi" 1. (Dist.cdf_at d 1.)

let of_fn_rejects_empty_support () =
  Alcotest.check_raises "lo=hi" (Invalid_argument "Dist.of_fn: requires lo < hi")
    (fun () -> ignore (Dist.of_fn ~lo:1. ~hi:1. (fun _ -> 1.)))

let of_samples_negative_clamped () =
  let d = Dist.of_samples_pdf ~lo:0. ~dx:1. [| 1.; -5.; 1. |] in
  Alcotest.(check bool) "valid" true (Dist.mean d >= 0.)

let no_mass_rejected () =
  Alcotest.check_raises "zeros" (Invalid_argument "Dist: density has no mass") (fun () ->
      ignore (Dist.of_samples_pdf ~lo:0. ~dx:1. [| 0.; 0.; 0. |]))

(* --- moments of families --- *)

let uniform_family_moments () =
  let d = Family.uniform ~lo:2. ~hi:8. () in
  check_close ~eps:1e-6 "mean" 5. (Dist.mean d);
  check_close ~eps:1e-3 "var" 3. (Dist.variance d);
  check_close ~eps:1e-6 "entropy" (log 6.) (Dist.entropy d)

let beta_family_moments () =
  let d = Family.beta ~alpha:2. ~beta:5. ~points:128 () in
  check_close ~eps:1e-4 "mean" (2. /. 7.) (Dist.mean d);
  check_close ~eps:1e-3 "var" (10. /. (49. *. 8.)) (Dist.variance d)

let beta_rejects_spiky_params () =
  Alcotest.check_raises "alpha <= 1"
    (Invalid_argument "Family.beta: requires alpha > 1 and beta > 1") (fun () ->
      ignore (Family.beta ~alpha:0.5 ~beta:2. ()))

let normal_family_moments () =
  let d = Family.normal ~mean:10. ~std:2. () in
  check_close ~eps:1e-6 "mean" 10. (Dist.mean d);
  check_close ~eps:1e-4 "std" 2. (Dist.std d);
  check_close ~eps:1e-3 "entropy"
    (0.5 *. log (2. *. Float.pi *. exp 1. *. 4.))
    (Dist.entropy d)

let normal_zero_std_is_const () =
  Alcotest.(check bool) "const" true (Dist.is_const (Family.normal ~mean:3. ~std:0. ()))

let gamma_family_moments () =
  let d = Family.gamma ~shape:4. ~scale:2. ~points:256 () in
  check_close ~eps:1e-3 "mean" 8. (Dist.mean d);
  check_close ~eps:2e-2 "var" 16. (Dist.variance d)

let uncertain_model_moments () =
  let w = 20. and ul = 1.1 in
  let d = Family.uncertain ~ul w in
  let lo, hi = Dist.support d in
  check_close "lo" w lo;
  check_close "hi" (w *. ul) hi;
  check_close ~eps:1e-4 "mean" (w *. (1. +. ((ul -. 1.) *. 2. /. 7.))) (Dist.mean d)

let uncertain_degenerate () =
  Alcotest.(check bool) "UL=1 is const" true (Dist.is_const (Family.uncertain ~ul:1. 20.));
  Alcotest.(check bool) "w=0 is const" true (Dist.is_const (Family.uncertain ~ul:1.5 0.))

let special_is_multimodal () =
  let s = Family.special () in
  let n = Family.normal ~mean:(Dist.mean s) ~std:(Dist.std s) () in
  let ks = ref 0. in
  for i = 0 to 100 do
    let x = 40. *. float_of_int i /. 100. in
    ks := Float.max !ks (Float.abs (Dist.cdf_at s x -. Dist.cdf_at n x))
  done;
  Alcotest.(check bool) "KS vs normal > 0.05" true (!ks > 0.05)

let mixture_mass_and_mean () =
  let a = Family.uniform ~lo:0. ~hi:1. () in
  let b = Family.uniform ~lo:10. ~hi:11. () in
  let m = Family.mixture ~points:256 [ (1., a); (3., b) ] in
  check_close ~eps:2e-2 "mean" ((0.25 *. 0.5) +. (0.75 *. 10.5)) (Dist.mean m)

(* --- CDF / quantile / probabilities --- *)

let cdf_quantile_roundtrip =
  Tutil.qcheck ~count:100 "quantile(cdf(x)) ≈ x on normal"
    QCheck2.Gen.(float_range 0.05 0.95)
    (fun p ->
      let d = Family.normal ~mean:0. ~std:1. ~points:512 () in
      let x = Dist.quantile d p in
      Float.abs (Dist.cdf_at d x -. p) < 2e-3)

let cdf_monotone =
  Tutil.qcheck ~count:50 "cdf is monotone"
    QCheck2.Gen.(pair (float_range (-3.) 3.) (float_range 0. 2.))
    (fun (x, delta) ->
      let d = Family.normal ~mean:0. ~std:1. () in
      Dist.cdf_at d (x +. delta) >= Dist.cdf_at d x)

let prob_between_basics () =
  let d = Family.uniform ~lo:0. ~hi:1. () in
  check_close ~eps:1e-6 "middle half" 0.5 (Dist.prob_between d 0.25 0.75);
  check_close "inverted interval" 0. (Dist.prob_between d 0.75 0.25);
  check_close ~eps:1e-9 "full" 1. (Dist.prob_between d (-1.) 2.)

let mean_above_normal () =
  let d = Family.normal ~mean:10. ~std:2. ~points:512 () in
  check_close ~eps:2e-3 "upper tail mean"
    (10. +. (2. *. sqrt (2. /. Float.pi)))
    (Dist.mean_above d 10.)

let mean_above_beyond_support () =
  let d = Family.uniform ~lo:0. ~hi:1. () in
  check_close "above support" 5. (Dist.mean_above d 5.)

(* --- transformations --- *)

let shift_scale_moments =
  Tutil.qcheck ~count:50 "shift/scale act on moments"
    QCheck2.Gen.(pair (float_range (-10.) 10.) (float_range 0.1 5.))
    (fun (c, k) ->
      let d = Family.beta ~alpha:2. ~beta:5. () in
      let shifted = Dist.shift d c in
      let scaled = Dist.scale d k in
      Float.abs (Dist.mean shifted -. (Dist.mean d +. c)) < 1e-6
      && Float.abs (Dist.std shifted -. Dist.std d) < 1e-6
      && Float.abs (Dist.mean scaled -. (k *. Dist.mean d)) < 1e-6 *. k
      && Float.abs (Dist.std scaled -. (k *. Dist.std d)) < 1e-6 *. k)

let scale_rejects_nonpositive () =
  Alcotest.check_raises "scale 0" (Invalid_argument "Dist.scale: factor must be positive")
    (fun () -> ignore (Dist.scale (Dist.const 1.) 0.))

let resample_preserves_moments () =
  let d = Family.beta ~alpha:2. ~beta:5. ~points:128 () in
  let r = Dist.resample ~points:64 d in
  check_close ~eps:1e-3 "mean" (Dist.mean d) (Dist.mean r);
  check_close ~eps:5e-3 "std" (Dist.std d) (Dist.std r)

let trim_preserves_moments () =
  let d = Family.normal ~mean:0. ~std:1. ~points:512 () in
  let t = Dist.trim ~points:64 d in
  check_close_abs ~eps:1e-3 "mean" 0. (Dist.mean t);
  check_close ~eps:5e-3 "std" 1. (Dist.std t)

(* --- sum algebra --- *)

let add_consts () =
  match Dist.add (Dist.const 2.) (Dist.const 3.) with
  | d when Dist.is_const d -> check_close "sum" 5. (Dist.mean d)
  | _ -> Alcotest.fail "const + const should be const"

let add_const_shifts () =
  let d = Family.uniform ~lo:0. ~hi:1. () in
  let s = Dist.add d (Dist.const 10.) in
  check_close ~eps:1e-6 "mean" (Dist.mean d +. 10.) (Dist.mean s);
  check_close ~eps:1e-6 "std" (Dist.std d) (Dist.std s)

let add_means_and_variances =
  Tutil.qcheck ~count:30 "means and variances add under +"
    QCheck2.Gen.(
      pair
        (pair (float_range 1. 50.) (float_range 0.2 20.))
        (pair (float_range 1. 50.) (float_range 0.2 20.)))
    (fun ((lo1, w1), (lo2, w2)) ->
      let d1 = Family.beta_scaled ~alpha:2. ~beta:5. ~lo:lo1 ~hi:(lo1 +. w1) () in
      let d2 = Family.beta_scaled ~alpha:3. ~beta:2. ~lo:lo2 ~hi:(lo2 +. w2) () in
      let s = Dist.add d1 d2 in
      let mean_err = Float.abs (Dist.mean s -. (Dist.mean d1 +. Dist.mean d2)) in
      let var_err =
        Float.abs (Dist.variance s -. (Dist.variance d1 +. Dist.variance d2))
      in
      mean_err < 0.01 *. (Dist.mean d1 +. Dist.mean d2)
      && var_err < 0.05 *. (Dist.variance d1 +. Dist.variance d2))

let add_commutative () =
  let d1 = Family.uniform ~lo:0. ~hi:2. () in
  let d2 = Family.beta_scaled ~alpha:2. ~beta:5. ~lo:5. ~hi:9. () in
  let a = Dist.add d1 d2 and b = Dist.add d2 d1 in
  check_close ~eps:1e-6 "mean" (Dist.mean a) (Dist.mean b);
  check_close ~eps:1e-4 "std" (Dist.std a) (Dist.std b)

let add_uniforms_triangular () =
  let u = Family.uniform ~lo:0. ~hi:1. ~points:128 () in
  let s = Dist.add ~points:128 u u in
  check_close ~eps:1e-3 "mean" 1. (Dist.mean s);
  check_close ~eps:1e-4 "median" 1. (Dist.quantile s 0.5);
  Alcotest.(check bool) "peak near center" true
    (Dist.pdf_at s 1. > Dist.pdf_at s 0.3 && Dist.pdf_at s 1. > Dist.pdf_at s 1.7)

let add_long_chain_clt () =
  let one = Family.beta_scaled ~alpha:2. ~beta:5. ~lo:1. ~hi:2. () in
  let acc = ref (Dist.const 0.) in
  for _ = 1 to 50 do
    acc := Dist.add !acc one
  done;
  check_close ~eps:2e-3 "mean" (50. *. Dist.mean one) (Dist.mean !acc);
  check_close ~eps:2e-2 "std" (sqrt 50. *. Dist.std one) (Dist.std !acc)

let add_narrow_wide_preserves_variance () =
  let wide = Family.normal ~mean:100. ~std:5. () in
  let narrow = Family.beta_scaled ~alpha:2. ~beta:5. ~lo:20. ~hi:20.05 () in
  let s = Dist.add wide narrow in
  check_close ~eps:1e-3 "mean" (100. +. Dist.mean narrow) (Dist.mean s);
  check_close ~eps:1e-3 "std" (sqrt ((5. *. 5.) +. Dist.variance narrow)) (Dist.std s)

let add_list_empty_is_zero () =
  match Dist.add_list [] with
  | d when Dist.is_const d -> check_close "zero" 0. (Dist.mean d)
  | _ -> Alcotest.fail "empty sum should be const 0"

(* --- max algebra --- *)

let max_consts () =
  match Dist.max_indep (Dist.const 2.) (Dist.const 7.) with
  | d when Dist.is_const d -> check_close "max" 7. (Dist.mean d)
  | _ -> Alcotest.fail "max of consts should be const"

let max_cdf_is_product =
  Tutil.qcheck ~count:30 "F_max = F1·F2 on overlapping supports"
    QCheck2.Gen.(pair (float_range 0. 3.) (float_range 0.5 4.))
    (fun (shift, width) ->
      let d1 = Family.uniform ~lo:0. ~hi:4. ~points:128 () in
      let d2 = Family.uniform ~lo:shift ~hi:(shift +. width) ~points:128 () in
      let m = Dist.max_indep ~points:256 d1 d2 in
      List.for_all
        (fun frac ->
          let x = (frac *. 5.) +. 0.1 in
          Float.abs (Dist.cdf_at m x -. (Dist.cdf_at d1 x *. Dist.cdf_at d2 x)) < 0.02)
        [ 0.2; 0.4; 0.6; 0.8 ])

let max_uniforms_exact () =
  let u = Family.uniform ~lo:0. ~hi:1. ~points:128 () in
  let m = Dist.max_indep ~points:128 u u in
  check_close ~eps:1e-3 "mean" (2. /. 3.) (Dist.mean m);
  check_close ~eps:5e-3 "cdf(0.5)" 0.25 (Dist.cdf_at m 0.5)

let max_dominated_support () =
  let low = Family.uniform ~lo:0. ~hi:1. () in
  let high = Family.uniform ~lo:5. ~hi:6. () in
  let m = Dist.max_indep low high in
  check_close ~eps:1e-3 "mean" (Dist.mean high) (Dist.mean m);
  check_close ~eps:2e-2 "std" (Dist.std high) (Dist.std m)

let max_with_const_truncates () =
  let u = Family.uniform ~lo:0. ~hi:1. ~points:256 () in
  let m = Dist.max_indep ~points:256 u (Dist.const 0.5) in
  check_close ~eps:2e-2 "mean" 0.625 (Dist.mean m);
  let lo, _ = Dist.support m in
  Alcotest.(check bool) "support starts at 0.5" true (lo >= 0.49)

let max_const_below_is_identity () =
  let u = Family.uniform ~lo:2. ~hi:3. () in
  let m = Dist.max_indep u (Dist.const 0.) in
  check_close "mean" (Dist.mean u) (Dist.mean m)

let max_const_above_wins () =
  let u = Family.uniform ~lo:2. ~hi:3. () in
  match Dist.max_indep u (Dist.const 10.) with
  | d when Dist.is_const d -> check_close "mean" 10. (Dist.mean d)
  | _ -> Alcotest.fail "const above support should dominate"

let max_many_iid_concentrates () =
  let u = Family.uniform ~lo:0. ~hi:1. ~points:128 () in
  let m = Dist.max_list ~points:128 (List.init 20 (fun _ -> u)) in
  Alcotest.(check bool) "mean > 0.9" true (Dist.mean m > 0.9);
  Alcotest.(check bool) "sigma shrinks" true (Dist.std m < 0.5 *. Dist.std u)

let max_list_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.max_list: empty list") (fun () ->
      ignore (Dist.max_list []))

let max_comonotone_idempotent () =
  (* max of a variable with itself under perfect dependence is itself *)
  let u = Family.uniform ~lo:2. ~hi:5. ~points:128 () in
  let m = Dist.max_comonotone ~points:128 u u in
  check_close ~eps:2e-3 "mean" (Dist.mean u) (Dist.mean m);
  check_close ~eps:2e-2 "std" (Dist.std u) (Dist.std m)

let max_comonotone_below_independent =
  Tutil.qcheck ~count:30 "comonotone max ≼ independent max (stochastic order)"
    QCheck2.Gen.(pair (float_range 0. 2.) (float_range 0.5 3.))
    (fun (shift, width) ->
      let d1 = Family.uniform ~lo:0. ~hi:3. ~points:128 () in
      let d2 = Family.uniform ~lo:shift ~hi:(shift +. width) ~points:128 () in
      let co = Dist.max_comonotone ~points:256 d1 d2 in
      let ind = Dist.max_indep ~points:256 d1 d2 in
      (* F_co(x) >= F_ind(x) for all x, up to grid noise *)
      List.for_all
        (fun frac ->
          let x = frac *. 5.5 in
          Dist.cdf_at co x >= Dist.cdf_at ind x -. 0.03)
        [ 0.1; 0.3; 0.5; 0.7; 0.9 ]
      && Dist.mean co <= Dist.mean ind +. 0.02)

let max_comonotone_cdf_is_min () =
  let d1 = Family.uniform ~lo:0. ~hi:2. ~points:256 () in
  let d2 = Family.uniform ~lo:1. ~hi:3. ~points:256 () in
  let m = Dist.max_comonotone ~points:512 d1 d2 in
  List.iter
    (fun x ->
      check_close_abs ~eps:0.02
        (Printf.sprintf "cdf at %g" x)
        (Float.min (Dist.cdf_at d1 x) (Dist.cdf_at d2 x))
        (Dist.cdf_at m x))
    [ 1.2; 1.6; 2.0; 2.4; 2.8 ]

let max_comonotone_consts () =
  match Dist.max_comonotone (Dist.const 1.) (Dist.const 4.) with
  | d when Dist.is_const d -> check_close "max" 4. (Dist.mean d)
  | _ -> Alcotest.fail "expected const"

let max_monotone_wrt_shift =
  Tutil.qcheck ~count:30 "max mean grows when one input shifts up"
    QCheck2.Gen.(float_range 0. 3.)
    (fun c ->
      let d1 = Family.uniform ~lo:0. ~hi:2. () in
      let d2 = Family.uniform ~lo:0. ~hi:2. () in
      let base = Dist.mean (Dist.max_indep d1 d2) in
      let shifted = Dist.mean (Dist.max_indep d1 (Dist.shift d2 c)) in
      (* allow grid-discretization noise of the 64-point densities *)
      shifted >= base -. 5e-3)

(* --- Empirical --- *)

let empirical_basic_stats () =
  let e = Empirical.of_samples [| 3.; 1.; 2.; 4.; 5. |] in
  Alcotest.(check int) "size" 5 (Empirical.size e);
  check_close "mean" 3. (Empirical.mean e);
  check_close "variance" 2.5 (Empirical.variance e);
  check_close "min" 1. (Empirical.min e);
  check_close "max" 5. (Empirical.max e)

let empirical_cdf_steps () =
  let e = Empirical.of_samples [| 1.; 2.; 3. |] in
  check_close "below" 0. (Empirical.cdf_at e 0.);
  check_close "at 1" (1. /. 3.) (Empirical.cdf_at e 1.);
  check_close "between" (2. /. 3.) (Empirical.cdf_at e 2.5);
  check_close "above" 1. (Empirical.cdf_at e 10.)

let empirical_quantiles () =
  let e = Empirical.of_samples (Array.init 101 float_of_int) in
  check_close "median" 50. (Empirical.quantile e 0.5);
  check_close "q0" 0. (Empirical.quantile e 0.);
  check_close "q1" 100. (Empirical.quantile e 1.)

let empirical_to_dist_moments () =
  let rng = Tutil.rng_of_seed 12 in
  let samples = Array.init 50000 (fun _ -> Prng.Sampler.normal rng ~mean:10. ~std:2.) in
  let e = Empirical.of_samples samples in
  let d = Empirical.to_dist ~points:128 e in
  check_close ~eps:5e-3 "mean" 10. (Dist.mean d);
  check_close ~eps:3e-2 "std" 2. (Dist.std d)

let empirical_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Empirical.of_samples: empty sample")
    (fun () -> ignore (Empirical.of_samples [||]))

(* --- Normal_pair (Clark) --- *)

let clark_add () =
  let a = Normal_pair.make ~mean:3. ~std:4. in
  let b = Normal_pair.make ~mean:1. ~std:3. in
  let s = Normal_pair.add a b in
  check_close "mean" 4. s.Normal_pair.mean;
  check_close "std" 5. s.Normal_pair.std

let clark_max_iid_standard () =
  let n = Normal_pair.make ~mean:0. ~std:1. in
  let m = Normal_pair.max_clark n n in
  check_close ~eps:1e-6 "mean" (1. /. sqrt Float.pi) m.Normal_pair.mean;
  check_close ~eps:1e-6 "std" (sqrt (1. -. (1. /. Float.pi))) m.Normal_pair.std

let clark_max_dominated () =
  let a = Normal_pair.make ~mean:0. ~std:1. in
  let b = Normal_pair.make ~mean:100. ~std:1. in
  let m = Normal_pair.max_clark a b in
  check_close ~eps:1e-6 "mean" 100. m.Normal_pair.mean;
  check_close ~eps:1e-4 "std" 1. m.Normal_pair.std

let clark_max_consts () =
  let m = Normal_pair.max_clark (Normal_pair.const 2.) (Normal_pair.const 5.) in
  check_close "mean" 5. m.Normal_pair.mean;
  check_close "std" 0. m.Normal_pair.std

let clark_matches_grid_max =
  Tutil.qcheck ~count:20 "Clark ≈ grid max for normals"
    QCheck2.Gen.(pair (float_range (-2.) 2.) (float_range 0.5 2.))
    (fun (mu, sigma) ->
      let a = Normal_pair.make ~mean:0. ~std:1. in
      let b = Normal_pair.make ~mean:mu ~std:sigma in
      let clark = Normal_pair.max_clark a b in
      let grid =
        Dist.max_indep ~points:512
          (Normal_pair.to_normal ~points:512 a)
          (Normal_pair.to_normal ~points:512 b)
      in
      Float.abs (clark.Normal_pair.mean -. Dist.mean grid) < 0.02
      && Float.abs (clark.Normal_pair.std -. Dist.std grid) < 0.05)

let of_dist_roundtrip () =
  let d = Family.normal ~mean:7. ~std:1.5 () in
  let p = Normal_pair.of_dist d in
  check_close ~eps:1e-4 "mean" 7. p.Normal_pair.mean;
  check_close ~eps:1e-3 "std" 1.5 p.Normal_pair.std

(* --- performance contracts of the fused kernels --- *)

(* The sum/max/moment kernels run on per-domain arenas and write results
   into exactly-sized grids: steady-state cost per operation is the
   result grid itself (a few hundred minor words), never the working
   buffers, spline fits, or intermediate lists. A leak that reintroduces
   per-operation buffer allocation shows up here as thousands of extra
   words per iteration. *)
let fused_kernels_allocation_bound () =
  let d1 = Family.uniform ~lo:0. ~hi:10. () in
  let d2 = Family.uniform ~lo:2. ~hi:3.5 () in
  (* warm up: grow the arenas, fit the operand splines, build the caches *)
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (Dist.add d1 d2));
    ignore (Sys.opaque_identity (Dist.max_indep d1 d2));
    ignore (Sys.opaque_identity (Dist.trim (Dist.add d1 d1)))
  done;
  let iters = 200 in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (Dist.add d1 d2));
    ignore (Sys.opaque_identity (Dist.max_indep d1 d2));
    ignore (Sys.opaque_identity (Dist.trim (Dist.add d1 d1)))
  done;
  let per_iter = (Gc.minor_words () -. before) /. float_of_int iters in
  (* ~6.7k words/iter with pooled arenas (result grids + boxed spline
     returns); the pre-arena implementation measured ~17.8k on the same
     triple, so 8k separates the two regimes with margin *)
  if per_iter > 8_000. then
    Alcotest.failf "fused kernels allocated %.0f minor words per add+max+trim" per_iter

(* Moment and CDF reads must not allocate at all in steady state — in
   particular they must not force the lazy density spline. *)
let moment_reads_do_not_allocate () =
  let d = Dist.add (Family.uniform ~lo:0. ~hi:4. ()) (Family.uniform ~lo:1. ~hi:2. ()) in
  let sink = ref 0. in
  for _ = 1 to 3 do
    sink := !sink +. Dist.mean d +. Dist.std d +. Dist.cdf_at d 3. +. Dist.quantile d 0.9
  done;
  let iters = 1_000 in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    sink := !sink +. Dist.mean d +. Dist.std d +. Dist.cdf_at d 3. +. Dist.quantile d 0.9
  done;
  let per_iter = (Gc.minor_words () -. before) /. float_of_int iters in
  ignore (Sys.opaque_identity !sink);
  if per_iter > 100. then
    Alcotest.failf "moment/CDF reads allocated %.0f minor words per iteration" per_iter

(* The density spline is fit lazily on the first pdf query; the value it
   returns must match a density reconstructed from an eagerly resampled
   copy of the same grid. *)
let lazy_spline_density_consistent () =
  let d = Dist.add (Family.uniform ~lo:0. ~hi:4. ()) (Family.uniform ~lo:1. ~hi:2. ()) in
  let r = Dist.resample ~points:64 d in
  let lo, hi = Dist.support d in
  for k = 0 to 32 do
    let x = lo +. ((hi -. lo) *. float_of_int k /. 32.) in
    check_close ~eps:1e-6
      (Printf.sprintf "pdf at %g" x)
      (Dist.pdf_at r x) (Dist.pdf_at d x)
  done

(* --- convolution-chain mode: depth/err bookkeeping and the
   moment-space (Berry–Esseen) fast path --- *)

(* Run [f] under [mode], always restoring the process-wide default so
   the rest of the suite stays on the exact path. *)
let with_chain_mode mode f =
  Dist.set_chain_mode mode;
  Fun.protect ~finally:(fun () -> Dist.set_chain_mode Dist.Exact) f

let self_sum d n =
  let acc = ref d in
  for _ = 2 to n do
    acc := Dist.add !acc d
  done;
  !acc

let sup_cdf_distance a b =
  let lo_a, hi_a = Dist.support a and lo_b, hi_b = Dist.support b in
  let lo = Float.min lo_a lo_b and hi = Float.max hi_a hi_b in
  let worst = ref 0. in
  for k = 0 to 400 do
    let x = lo +. ((hi -. lo) *. float_of_int k /. 400.) in
    worst := Float.max !worst (Float.abs (Dist.cdf_at a x -. Dist.cdf_at b x))
  done;
  !worst

let chain_bookkeeping () =
  let u = Family.uniform ~lo:0. ~hi:1. () in
  Alcotest.(check int) "base grid depth" 1 (Dist.chain_depth u);
  Alcotest.(check int) "const depth" 0 (Dist.chain_depth (Dist.const 3.));
  check_close "base err" 0. (Dist.chain_error_bound u);
  let s2 = Dist.add u u in
  Alcotest.(check int) "add sums depth" 2 (Dist.chain_depth s2);
  let s3 = Dist.add s2 u in
  Alcotest.(check int) "depth accumulates" 3 (Dist.chain_depth s3);
  check_close "exact path err stays 0" 0. (Dist.chain_error_bound s3);
  Alcotest.(check int) "shift keeps depth" 3 (Dist.chain_depth (Dist.shift s3 1.));
  Alcotest.(check int) "scale keeps depth" 3 (Dist.chain_depth (Dist.scale s3 2.));
  Alcotest.(check int) "resample keeps depth" 3
    (Dist.chain_depth (Dist.resample ~points:64 s3));
  (* a maximum is a synchronization point: the CLT argument restarts *)
  Alcotest.(check int) "max resets depth" 1 (Dist.chain_depth (Dist.max_indep s3 s2));
  Alcotest.(check int) "comonotone max resets depth" 1
    (Dist.chain_depth (Dist.max_comonotone s3 s2));
  check_close "third central moment of const" 0.
    (Dist.abs_third_central_moment (Dist.const 2.));
  Alcotest.(check bool) "third central moment positive" true
    (Dist.abs_third_central_moment u > 0.)

let chain_mode_rejects_threshold () =
  Alcotest.check_raises "Moment 1"
    (Invalid_argument "Dist.set_chain_mode: Moment depth must be >= 2") (fun () ->
      Dist.set_chain_mode (Dist.Moment 1))

(* Under [Moment k] the CLT replacement must stay within its advertised
   Kolmogorov bound of the fully exact convolution chain, and close in
   practice: the moment path exists to be indistinguishable at depth. *)
let moment_chain_error_bound () =
  let d = Family.uncertain ~ul:1.1 20. in
  List.iter
    (fun n ->
      let exact = self_sum d n in
      let approx = with_chain_mode (Dist.Moment 5) (fun () -> self_sum d n) in
      Alcotest.(check int) (Printf.sprintf "depth %d tracked" n) n
        (Dist.chain_depth approx);
      let bound = Dist.chain_error_bound approx in
      Alcotest.(check bool) (Printf.sprintf "depth %d bound positive" n) true
        (bound > 0.);
      check_close "exact chain err stays 0" 0. (Dist.chain_error_bound exact);
      let dist = sup_cdf_distance approx exact in
      if dist > bound +. 1e-9 then
        Alcotest.failf "depth %d: sup-CDF distance %.4g exceeds bound %.4g" n dist
          bound;
      (* empirical quality, far tighter than the worst-case bound *)
      if dist > 0.05 then
        Alcotest.failf "depth %d: sup-CDF distance %.4g vs exact chain" n dist;
      check_close ~eps:1e-2 (Printf.sprintf "depth %d mean" n) (Dist.mean exact)
        (Dist.mean approx);
      check_close ~eps:2e-2 (Printf.sprintf "depth %d std" n) (Dist.std exact)
        (Dist.std approx))
    [ 5; 12; 25; 50 ]

(* Toggling Moment on and back off must leave the exact path
   bit-reproducible — this is what keeps campaign CSVs and served bytes
   stable under the default mode and `--exact`. *)
let exact_mode_round_trip_bitwise () =
  let d = Family.uncertain ~ul:1.2 10. in
  let fingerprint () =
    let s = self_sum d 8 in
    List.map Int64.bits_of_float
      [
        Dist.mean s;
        Dist.std s;
        Dist.quantile s 0.05;
        Dist.quantile s 0.5;
        Dist.quantile s 0.95;
        Dist.cdf_at s (Dist.mean s);
      ]
  in
  let before = fingerprint () in
  let under_moment = with_chain_mode (Dist.Moment 3) fingerprint in
  let after = fingerprint () in
  Alcotest.(check (list int64)) "exact bits unchanged by mode round-trip" before
    after;
  Alcotest.(check bool) "moment path actually engaged" true (under_moment <> before)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "distribution"
    [
      ( "construct",
        [
          tc "const" `Quick const_basics;
          tc "const rejects nan" `Quick const_rejects_nan;
          tc "of_fn normalizes" `Quick of_fn_normalizes;
          tc "of_fn empty support" `Quick of_fn_rejects_empty_support;
          tc "negative samples clamped" `Quick of_samples_negative_clamped;
          tc "no mass" `Quick no_mass_rejected;
        ] );
      ( "families",
        [
          tc "uniform" `Quick uniform_family_moments;
          tc "beta" `Quick beta_family_moments;
          tc "beta params" `Quick beta_rejects_spiky_params;
          tc "normal" `Quick normal_family_moments;
          tc "normal zero std" `Quick normal_zero_std_is_const;
          tc "gamma" `Quick gamma_family_moments;
          tc "uncertain" `Quick uncertain_model_moments;
          tc "uncertain degenerate" `Quick uncertain_degenerate;
          tc "special multimodal" `Quick special_is_multimodal;
          tc "mixture" `Quick mixture_mass_and_mean;
        ] );
      ( "functionals",
        [
          cdf_quantile_roundtrip;
          cdf_monotone;
          tc "prob_between" `Quick prob_between_basics;
          tc "mean_above normal" `Quick mean_above_normal;
          tc "mean_above beyond" `Quick mean_above_beyond_support;
        ] );
      ( "transform",
        [
          shift_scale_moments;
          tc "scale rejects" `Quick scale_rejects_nonpositive;
          tc "resample" `Quick resample_preserves_moments;
          tc "trim" `Quick trim_preserves_moments;
        ] );
      ( "sum",
        [
          tc "consts" `Quick add_consts;
          tc "const shift" `Quick add_const_shifts;
          add_means_and_variances;
          tc "commutative" `Quick add_commutative;
          tc "triangular" `Quick add_uniforms_triangular;
          tc "50-fold chain CLT" `Quick add_long_chain_clt;
          tc "narrow+wide variance" `Quick add_narrow_wide_preserves_variance;
          tc "empty list" `Quick add_list_empty_is_zero;
        ] );
      ( "max",
        [
          tc "consts" `Quick max_consts;
          max_cdf_is_product;
          tc "uniforms exact" `Quick max_uniforms_exact;
          tc "dominated support" `Quick max_dominated_support;
          tc "const truncation" `Quick max_with_const_truncates;
          tc "const below" `Quick max_const_below_is_identity;
          tc "const above" `Quick max_const_above_wins;
          tc "iid concentration" `Quick max_many_iid_concentrates;
          tc "empty list" `Quick max_list_rejects_empty;
          max_monotone_wrt_shift;
          tc "comonotone idempotent" `Quick max_comonotone_idempotent;
          max_comonotone_below_independent;
          tc "comonotone cdf is min" `Quick max_comonotone_cdf_is_min;
          tc "comonotone consts" `Quick max_comonotone_consts;
        ] );
      ( "empirical",
        [
          tc "basic stats" `Quick empirical_basic_stats;
          tc "cdf steps" `Quick empirical_cdf_steps;
          tc "quantiles" `Quick empirical_quantiles;
          tc "to_dist" `Quick empirical_to_dist_moments;
          tc "rejects empty" `Quick empirical_rejects_empty;
        ] );
      ( "normal_pair",
        [
          tc "add" `Quick clark_add;
          tc "max iid" `Quick clark_max_iid_standard;
          tc "max dominated" `Quick clark_max_dominated;
          tc "max consts" `Quick clark_max_consts;
          clark_matches_grid_max;
          tc "of_dist" `Quick of_dist_roundtrip;
        ] );
      ( "chain",
        [
          tc "depth/err bookkeeping" `Quick chain_bookkeeping;
          tc "mode rejects threshold < 2" `Quick chain_mode_rejects_threshold;
          tc "moment bound vs exact chain" `Quick moment_chain_error_bound;
          tc "exact round-trip bitwise" `Quick exact_mode_round_trip_bitwise;
        ] );
      ( "perf contracts",
        [
          tc "fused kernels allocation bound" `Quick fused_kernels_allocation_bound;
          tc "moment reads allocate nothing" `Quick moment_reads_do_not_allocate;
          tc "lazy spline density" `Quick lazy_spline_density_consistent;
        ] );
    ]
