(* Fault-injection and crash-safety suites: probe/spec semantics, atomic
   checkpoint publication, campaign fault isolation with bounded retry,
   stop/resume determinism, poisoned pool chunks. *)

module E = Experiments

let tiny_scale =
  { E.Scale.name = "tiny"; schedule_divisor = 1000; mc_divisor = 1000;
    include_n1000 = false }

let with_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf d;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let injected point = Fault.Injected point

let check_injected name point f =
  Alcotest.check_raises name (injected point) f

let case_a =
  E.Case.make ~kind:E.Case.Cholesky ~n_target:10 ~ul:1.1 ()

let case_b =
  E.Case.make ~kind:E.Case.Random_graph ~n_target:10 ~ul:1.1 ()

(* --- spec parsing & probe semantics --- *)

let spec_rejects_garbage () =
  let bad spec =
    Alcotest.(check bool)
      (Printf.sprintf "%S rejected" spec)
      true
      (match Fault.configure ~spec with
      | () -> false
      | exception Invalid_argument _ -> true)
  in
  with_faults (fun () ->
      List.iter bad
        [ ""; " ; "; "point"; "point:"; "point:launch"; "point:fail@0"; "point:fail@x";
          "point:fail:count=0"; "point:fail:p=1.5"; "point:fail:ms"; "point:fail:wat=1" ])

let probe_disabled_is_noop () =
  Fault.reset ();
  Fault.cut "anything";
  Alcotest.(check int) "no hits recorded" 0 (Fault.hits "anything");
  Alcotest.(check bool) "disabled" false (Fault.enabled ())

let probe_fires_on_nth_hit () =
  with_faults (fun () ->
      Fault.configure ~spec:"x:fail@3";
      Fault.cut "x";
      Fault.cut "x";
      check_injected "third hit fires" "x" (fun () -> Fault.cut "x");
      (* default count=1: exhausted after one firing *)
      Fault.cut "x";
      Alcotest.(check int) "hits counted" 4 (Fault.hits "x"))

let probe_count_bounds_firings () =
  with_faults (fun () ->
      Fault.configure ~spec:"x:fail:count=2";
      check_injected "first" "x" (fun () -> Fault.cut "x");
      check_injected "second" "x" (fun () -> Fault.cut "x");
      Fault.cut "x")

let probe_ignores_other_points () =
  with_faults (fun () ->
      Fault.configure ~spec:"x:fail";
      Fault.cut "y";
      Alcotest.(check int) "y hit counted" 1 (Fault.hits "y"))

let probe_delay_returns () =
  with_faults (fun () ->
      Fault.configure ~spec:"x:delay:ms=1";
      Fault.cut "x";
      Fault.cut "x")

let seeded_probability_is_deterministic () =
  let pattern () =
    Fault.configure ~spec:"x:fail:p=0.5:seed=42:count=1000000";
    List.init 100 (fun _ ->
        match Fault.cut "x" with () -> false | exception Fault.Injected _ -> true)
  in
  with_faults (fun () ->
      let a = pattern () in
      let b = pattern () in
      Alcotest.(check (list bool)) "same firing pattern" a b;
      let fires = List.length (List.filter Fun.id a) in
      Alcotest.(check bool) "plausible rate" true (fires > 20 && fires < 80))

(* --- atomic checkpoint writes --- *)

let atomic_write_preserves_old_checkpoint () =
  let dir = fresh_dir "repro-fault-atomic" in
  with_faults (fun () ->
      let path = E.Export.write_file ~dir ~name:"t.csv" "old,content\n1,2\n" in
      Fault.configure ~spec:"campaign.write:fail@1";
      check_injected "write killed mid-stream" "campaign.write" (fun () ->
          ignore (E.Export.write_file ~dir ~name:"t.csv" "new,content\n3,4\n"));
      Alcotest.(check string) "old checkpoint intact" "old,content\n1,2\n"
        (read_file path);
      let contains_tmp f =
        let needle = ".tmp." in
        let nl = String.length needle and fl = String.length f in
        let rec go i = i + nl <= fl && (String.sub f i nl = needle || go (i + 1)) in
        go 0
      in
      Array.iter
        (fun f ->
          Alcotest.(check bool) ("no temp leftover: " ^ f) false (contains_tmp f))
        (Sys.readdir dir);
      Fault.reset ();
      ignore (E.Export.write_file ~dir ~name:"t.csv" "new,content\n3,4\n");
      Alcotest.(check string) "replaced after recovery" "new,content\n3,4\n"
        (read_file path));
  rm_rf dir

let mkdir_p_nested_and_idempotent () =
  let root = fresh_dir "repro-fault-mkdirp" in
  let nested = Filename.concat (Filename.concat root "a") "b" in
  E.Export.mkdir_p nested;
  Alcotest.(check bool) "created" true (Sys.is_directory nested);
  E.Export.mkdir_p nested;
  ignore (E.Export.write_file ~dir:nested ~name:"x.csv" "a\n");
  rm_rf root

let mkdir_p_concurrent_race () =
  (* two domains race to create the same fresh tree: EEXIST must be
     tolerated, as for two campaigns sharing a checkpoint dir *)
  let root = fresh_dir "repro-fault-mkdirp-race" in
  let nested = Filename.concat (Filename.concat root "shared") "deep" in
  let worker () =
    Domain.spawn (fun () ->
        match E.Export.mkdir_p nested with
        | () -> true
        | exception _ -> false)
  in
  let a = worker () and b = worker () in
  let ok_a = Domain.join a and ok_b = Domain.join b in
  Alcotest.(check bool) "both creators succeed" true (ok_a && ok_b);
  Alcotest.(check bool) "dir exists" true (Sys.is_directory nested);
  rm_rf root

(* --- manifest --- *)

let manifest_roundtrip () =
  let dir = fresh_dir "repro-fault-manifest" in
  let m =
    {
      E.Manifest.scale = "tiny";
      slack_mode = "disjunctive";
      entries =
        [
          { E.Manifest.id = "case-one"; seed = 1L; schedules = 30;
            status = E.Manifest.Done { rows = 33; attempts = 1 } };
          { E.Manifest.id = "case-two"; seed = -7L; schedules = 30;
            status =
              E.Manifest.Failed
                { attempts = 3; error = "quote \" backslash \\ newline \n tab \t" } };
        ];
    }
  in
  E.Manifest.save ~dir m;
  (match E.Manifest.load ~dir with
  | None -> Alcotest.fail "manifest did not load back"
  | Some m' -> Alcotest.(check bool) "roundtrip equal" true (m = m'));
  rm_rf dir

let manifest_rejects_garbage () =
  let dir = fresh_dir "repro-fault-manifest-bad" in
  ignore (E.Export.write_file ~dir ~name:E.Manifest.file_name "not json at all {");
  Alcotest.(check bool) "unparseable manifest is None" true
    (E.Manifest.load ~dir = None);
  ignore (E.Export.write_file ~dir ~name:E.Manifest.file_name
            "{ \"version\": 99, \"scale\": \"x\", \"slack_mode\": \"y\", \"cases\": [] }");
  Alcotest.(check bool) "foreign version is None" true (E.Manifest.load ~dir = None);
  rm_rf dir

(* --- campaign fault isolation, retry, provenance, resume --- *)

let run_campaign ?attempts ~dir cases =
  E.Campaign.run ~scale:tiny_scale ?attempts ~backoff:0. ~dir ~cases ()

let campaign_retry_recovers_transient () =
  let dir = fresh_dir "repro-fault-retry" in
  with_faults (fun () ->
      Fault.configure ~spec:"runner.eval:fail@1";
      let t = run_campaign ~dir [ case_a ] in
      Alcotest.(check int) "no failures" 0 (List.length t.E.Campaign.failures);
      Alcotest.(check int) "one result" 1 (List.length t.E.Campaign.results);
      match E.Manifest.load ~dir with
      | Some { E.Manifest.entries = [ { status = E.Manifest.Done { attempts; _ }; _ } ]; _ }
        -> Alcotest.(check int) "second attempt succeeded" 2 attempts
      | _ -> Alcotest.fail "expected one done entry");
  rm_rf dir

let campaign_isolates_exhausted_case () =
  let dir = fresh_dir "repro-fault-isolate" in
  with_faults (fun () ->
      (* case A burns all 3 attempts (hits 1-3); case B's eval is hit 4,
         past the firing budget, and must be unaffected *)
      Fault.configure ~spec:"runner.eval:fail:count=3";
      let t = run_campaign ~attempts:3 ~dir [ case_a; case_b ] in
      (match t.E.Campaign.failures with
      | [ f ] ->
        Alcotest.(check string) "failed case" case_a.E.Case.id
          f.E.Campaign.failed_case.E.Case.id;
        Alcotest.(check int) "attempts exhausted" 3 f.E.Campaign.attempts
      | fs -> Alcotest.fail (Printf.sprintf "expected 1 failure, got %d" (List.length fs)));
      (match t.E.Campaign.results with
      | [ r ] ->
        Alcotest.(check string) "surviving case" case_b.E.Case.id r.E.Campaign.case.E.Case.id;
        Alcotest.(check bool) "computed fresh" false r.E.Campaign.from_checkpoint
      | _ -> Alcotest.fail "expected exactly one result");
      Alcotest.(check bool) "mean populated from surviving case" false
        (Float.is_nan t.E.Campaign.mean.(1).(2));
      Alcotest.(check bool) "render reports failure" true
        (let s = E.Campaign.render t in
         let rec contains i =
           i + 6 <= String.length s && (String.sub s i 6 = "FAILED" || contains (i + 1))
         in
         contains 0);
      (* recovery run: A recomputed (failed entries are not checkpoints),
         B loaded from its checkpoint *)
      Fault.reset ();
      let t2 = run_campaign ~dir [ case_a; case_b ] in
      Alcotest.(check int) "all recovered" 2 (List.length t2.E.Campaign.results);
      Alcotest.(check int) "no failures left" 0 (List.length t2.E.Campaign.failures);
      List.iter
        (fun r ->
          let expect_loaded = r.E.Campaign.case.E.Case.id = case_b.E.Case.id in
          Alcotest.(check bool)
            (r.E.Campaign.case.E.Case.id ^ " checkpoint reuse")
            expect_loaded r.E.Campaign.from_checkpoint)
        t2.E.Campaign.results);
  rm_rf dir

let campaign_recomputes_truncated_checkpoint () =
  let dir = fresh_dir "repro-fault-truncated" in
  let t = run_campaign ~dir [ case_a ] in
  let rows_ref = (List.hd t.E.Campaign.results).E.Campaign.rows in
  let path = Filename.concat dir (case_a.E.Case.id ^ ".csv") in
  let full = read_file path in
  (* simulate the pre-atomic-write failure mode: an in-place write cut
     off mid-stream, leaving a valid header and a torn row *)
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  let t2 = run_campaign ~dir [ case_a ] in
  (match t2.E.Campaign.results with
  | [ r ] ->
    Alcotest.(check bool) "recomputed, not trusted" false r.E.Campaign.from_checkpoint;
    Alcotest.(check int) "same row count as reference" (Array.length rows_ref)
      (Array.length r.E.Campaign.rows);
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j v -> Tutil.check_close ~eps:1e-9 "row value" v r.E.Campaign.rows.(i).(j))
          row)
      rows_ref
  | _ -> Alcotest.fail "expected one result");
  Alcotest.(check string) "checkpoint healed on disk" full (read_file path);
  rm_rf dir

let campaign_invalidates_foreign_provenance () =
  let dir = fresh_dir "repro-fault-provenance" in
  ignore (run_campaign ~dir [ case_a ]);
  (* (1) seed tampering: same file, manifest claims another seed *)
  (match E.Manifest.load ~dir with
  | Some m ->
    E.Manifest.save ~dir
      {
        m with
        E.Manifest.entries =
          List.map (fun e -> { e with E.Manifest.seed = 999L }) m.E.Manifest.entries;
      }
  | None -> Alcotest.fail "manifest missing after campaign");
  let t = run_campaign ~dir [ case_a ] in
  Alcotest.(check bool) "foreign seed recomputed" false
    (List.hd t.E.Campaign.results).E.Campaign.from_checkpoint;
  (* (2) no manifest at all: CSV alone is never trusted *)
  Sys.remove (Filename.concat dir E.Manifest.file_name);
  let t2 = run_campaign ~dir [ case_a ] in
  Alcotest.(check bool) "manifest-less CSV recomputed" false
    (List.hd t2.E.Campaign.results).E.Campaign.from_checkpoint;
  (* (3) scale renamed: stale-scale checkpoints are invalidated *)
  let other_scale = { tiny_scale with E.Scale.name = "tiny2" } in
  let t3 = E.Campaign.run ~scale:other_scale ~backoff:0. ~dir ~cases:[ case_a ] () in
  Alcotest.(check bool) "foreign scale recomputed" false
    (List.hd t3.E.Campaign.results).E.Campaign.from_checkpoint;
  (* (4) matching provenance after all that: reused *)
  let t4 = E.Campaign.run ~scale:other_scale ~backoff:0. ~dir ~cases:[ case_a ] () in
  Alcotest.(check bool) "matching provenance loads" true
    (List.hd t4.E.Campaign.results).E.Campaign.from_checkpoint;
  rm_rf dir

let campaign_stop_then_resume_byte_identical () =
  let dir_ref = fresh_dir "repro-fault-resume-ref" in
  let dir = fresh_dir "repro-fault-resume" in
  let cases = [ case_a; case_b ] in
  ignore (run_campaign ~dir:dir_ref cases);
  (* stop requested while case A is "in flight": A finishes and
     checkpoints, then the campaign raises instead of starting B *)
  E.Campaign.request_stop ();
  (match run_campaign ~dir cases with
  | _ -> Alcotest.fail "expected Interrupted"
  | exception E.Campaign.Interrupted -> ());
  Alcotest.(check bool) "in-flight checkpoint written" true
    (Sys.file_exists (Filename.concat dir (case_a.E.Case.id ^ ".csv")));
  Alcotest.(check bool) "pending case not started" false
    (Sys.file_exists (Filename.concat dir (case_b.E.Case.id ^ ".csv")));
  (match E.Manifest.load ~dir with
  | Some m ->
    Alcotest.(check int) "manifest records the finished case" 1
      (List.length m.E.Manifest.entries)
  | None -> Alcotest.fail "manifest missing after interrupt");
  (* resume: A loads, B computes; final CSVs byte-identical to the
     uninterrupted reference *)
  let t = run_campaign ~dir cases in
  List.iter
    (fun r ->
      let expect_loaded = r.E.Campaign.case.E.Case.id = case_a.E.Case.id in
      Alcotest.(check bool)
        (r.E.Campaign.case.E.Case.id ^ " resume source")
        expect_loaded r.E.Campaign.from_checkpoint)
    t.E.Campaign.results;
  List.iter
    (fun c ->
      let name = c.E.Case.id ^ ".csv" in
      Alcotest.(check string)
        (name ^ " byte-identical to uninterrupted run")
        (read_file (Filename.concat dir_ref name))
        (read_file (Filename.concat dir name)))
    cases;
  rm_rf dir_ref;
  rm_rf dir

(* --- pool --- *)

let pool_survives_poisoned_chunk () =
  let pool = Parallel.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      with_faults (fun () ->
          Fault.configure ~spec:"pool.chunk:fail@2";
          check_injected "poisoned chunk surfaces" "pool.chunk" (fun () ->
              Parallel.Pool.run ~pool ~chunks:8 (fun _ -> ()));
          Fault.reset ();
          (* parked domains must not be wedged: the next job runs fully *)
          let seen = Array.make 8 false in
          Parallel.Pool.run ~pool ~chunks:8 (fun c -> seen.(c) <- true);
          Alcotest.(check bool) "all chunks ran after poisoning" true
            (Array.for_all Fun.id seen)))

let pool_ephemeral_poisoned_chunk () =
  with_faults (fun () ->
      Fault.configure ~spec:"pool.chunk:fail@1";
      check_injected "ephemeral run surfaces" "pool.chunk" (fun () ->
          Parallel.Pool.run ~domains:2 ~chunks:4 (fun _ -> ()));
      Fault.reset ();
      let n = Atomic.make 0 in
      Parallel.Pool.run ~domains:2 ~chunks:4 (fun _ -> Atomic.incr n);
      Alcotest.(check int) "clean rerun" 4 (Atomic.get n))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fault"
    [
      ( "spec",
        [
          tc "rejects garbage" `Quick spec_rejects_garbage;
          tc "disabled noop" `Quick probe_disabled_is_noop;
          tc "fires on nth hit" `Quick probe_fires_on_nth_hit;
          tc "count bounds firings" `Quick probe_count_bounds_firings;
          tc "other points unaffected" `Quick probe_ignores_other_points;
          tc "delay returns" `Quick probe_delay_returns;
          tc "seeded prob deterministic" `Quick seeded_probability_is_deterministic;
        ] );
      ( "atomic-write",
        [
          tc "old checkpoint survives kill" `Quick atomic_write_preserves_old_checkpoint;
          tc "mkdir-p nested" `Quick mkdir_p_nested_and_idempotent;
          tc "mkdir-p race" `Quick mkdir_p_concurrent_race;
        ] );
      ( "manifest",
        [
          tc "roundtrip" `Quick manifest_roundtrip;
          tc "rejects garbage" `Quick manifest_rejects_garbage;
        ] );
      ( "campaign",
        [
          tc "retry recovers transient" `Quick campaign_retry_recovers_transient;
          tc "isolates exhausted case" `Quick campaign_isolates_exhausted_case;
          tc "recomputes truncated checkpoint" `Quick
            campaign_recomputes_truncated_checkpoint;
          tc "invalidates foreign provenance" `Quick
            campaign_invalidates_foreign_provenance;
          tc "stop/resume byte-identical" `Quick campaign_stop_then_resume_byte_identical;
        ] );
      ( "pool",
        [
          tc "persistent pool survives poison" `Quick pool_survives_poisoned_chunk;
          tc "ephemeral run survives poison" `Quick pool_ephemeral_poisoned_chunk;
        ] );
    ]
