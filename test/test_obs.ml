(* Telemetry suites: sharded counter/histogram correctness under
   Pool.run, Chrome-trace export validity, zero-cost disabled paths,
   and the engine's per-backend evaluation counters. *)

(* Every test toggles sinks behind [with_flags], so a failure cannot
   leak an enabled sink into later suites (some assert bit-level
   reproducibility of uninstrumented runs). *)
let with_flags ~metrics ~spans ~progress f =
  let m0 = Obs.Metrics.enabled ()
  and s0 = Obs.Span.enabled ()
  and p0 = Obs.Progress.enabled () in
  Obs.Metrics.set_enabled metrics;
  Obs.Span.set_enabled spans;
  Obs.Progress.set_enabled progress;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled m0;
      Obs.Span.set_enabled s0;
      Obs.Progress.set_enabled p0;
      Obs.Metrics.reset ();
      Obs.Span.reset ();
      Obs.Progress.reset_phases ())
    f

(* {1 A minimal JSON syntax checker}

   Enough of RFC 8259 to reject anything structurally malformed that
   our hand-rolled emitters could produce: unbalanced brackets, bad
   escapes, trailing garbage, missing commas/colons. *)

exception Bad of int * string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    String.iter
      (fun c ->
        match peek () with
        | Some c' when c' = c -> advance ()
        | _ -> fail ("in literal " ^ word))
      word
  in
  let string_body () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ -> advance ()
    done
  in
  let number () =
    let digits () =
      let seen = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' -> advance (); digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); more := false
            | _ -> fail "expected , or } in object"
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); more := false
            | _ -> fail "expected , or ] in array"
          done
        end
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let check_valid_json what s =
  match validate_json s with
  | () -> ()
  | exception Bad (pos, msg) ->
      Alcotest.failf "%s: invalid JSON at byte %d (%s): %s" what pos msg
        (String.sub s (max 0 (pos - 40)) (min 80 (String.length s - max 0 (pos - 40))))

let count_substring ~sub s =
  let m = String.length sub and n = String.length s in
  let k = ref 0 in
  for i = 0 to n - m do
    if String.sub s i m = sub then incr k
  done;
  !k

(* {1 Metrics} *)

let counter_concurrent_sum () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.hits" in
  let chunks = 64 and per_chunk = 500 in
  Parallel.Pool.run ~domains:4 ~chunks (fun _ ->
      for _ = 1 to per_chunk do
        Obs.Metrics.incr c
      done);
  let snap = Obs.Metrics.snapshot () in
  match Obs.Metrics.find_counter snap "test.obs.hits" with
  | None -> Alcotest.fail "counter missing from snapshot"
  | Some v -> Alcotest.(check int) "merged sum" (chunks * per_chunk) v

let counter_add_and_reset () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.add" in
  Obs.Metrics.add c 41;
  Obs.Metrics.incr c;
  let v () = Obs.Metrics.find_counter (Obs.Metrics.snapshot ()) "test.obs.add" in
  Alcotest.(check (option int)) "after adds" (Some 42) (v ());
  Obs.Metrics.reset ();
  Alcotest.(check (option int)) "after reset" (Some 0) (v ())

let gauge_last_write_wins () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.set g 1.5;
  Obs.Metrics.set g 2.5;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (option (float 1e-12)))
    "last value" (Some 2.5)
    (List.assoc_opt "test.obs.gauge" snap.Obs.Metrics.gauges)

(* Reference bucketing for the histogram property: first bound >= x,
   else the overflow bucket. *)
let reference_hist bounds xs =
  let counts = Array.make (Array.length bounds + 1) 0 in
  List.iter
    (fun x ->
      let rec find i =
        if i = Array.length bounds then i
        else if x <= bounds.(i) then i
        else find (i + 1)
      in
      let i = find 0 in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts

let histogram_matches_reference =
  Tutil.qcheck ~count:60 "histogram buckets = sequential reference"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 400) (float_range 1e-7 2e3))
        (int_range 1 4))
    (fun (xs, domains) ->
      with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
      let h = Obs.Metrics.histogram "test.obs.hist" in
      let arr = Array.of_list xs in
      let n = Array.length arr in
      (* one chunk per value, so observations land on several shards *)
      Parallel.Pool.run ~domains ~chunks:n (fun i -> Obs.Metrics.observe h arr.(i));
      let snap = Obs.Metrics.snapshot () in
      match List.assoc_opt "test.obs.hist" snap.Obs.Metrics.histograms with
      | None -> false
      | Some hv ->
          let expected = reference_hist hv.Obs.Metrics.bounds xs in
          hv.Obs.Metrics.counts = expected
          && hv.Obs.Metrics.total = n
          && Float.abs (hv.Obs.Metrics.sum -. List.fold_left ( +. ) 0. xs)
             <= 1e-9 *. Float.max 1. (Float.abs hv.Obs.Metrics.sum))

let registration_is_idempotent () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let a = Obs.Metrics.counter "test.obs.same" in
  let b = Obs.Metrics.counter "test.obs.same" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr b;
  Alcotest.(check (option int))
    "one slot" (Some 2)
    (Obs.Metrics.find_counter (Obs.Metrics.snapshot ()) "test.obs.same")

let kind_clash_rejected () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let (_ : Obs.Metrics.counter) = Obs.Metrics.counter "test.obs.kind" in
  match Obs.Metrics.histogram "test.obs.kind" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* {1 Spans} *)

let nested_work () = Obs.Span.with_ ~name:"test.inner" (fun () -> Sys.opaque_identity 1)

let trace_export_balanced () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  let outer () = Obs.Span.with_ ~name:"test.outer" (fun () -> ignore (nested_work ())) in
  for _ = 1 to 5 do
    outer ()
  done;
  Parallel.Pool.run ~domains:3 ~chunks:12 (fun _ -> ignore (nested_work ()));
  let json = Obs.Span.export_chrome () in
  check_valid_json "trace" json;
  let b = count_substring ~sub:{|"ph":"B"|} json
  and e = count_substring ~sub:{|"ph":"E"|} json in
  Alcotest.(check int) "balanced B/E" b e;
  Alcotest.(check bool) "has events" true (b > 0);
  (* pool chunks themselves are spans when tracing is on *)
  Alcotest.(check bool)
    "pool.chunk present" true
    (count_substring ~sub:{|"name":"pool.chunk"|} json > 0)

let trace_survives_exception () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  (try Obs.Span.with_ ~name:"test.raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  let json = Obs.Span.export_chrome () in
  check_valid_json "trace" json;
  Alcotest.(check int) "span recorded despite raise" 1
    (count_substring ~sub:{|"name":"test.raise"|} json / 2 * 2 / 2);
  let b = count_substring ~sub:{|"ph":"B"|} json
  and e = count_substring ~sub:{|"ph":"E"|} json in
  Alcotest.(check int) "balanced" b e

let ring_overwrites_and_counts_drops () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  let extra = 37 in
  for _ = 1 to Obs.Span.capacity + extra do
    ignore (nested_work ())
  done;
  Alcotest.(check bool)
    "dropped >= overflow" true
    (Obs.Span.dropped () >= extra);
  let json = Obs.Span.export_chrome () in
  check_valid_json "trace after wrap" json;
  let b = count_substring ~sub:{|"ph":"B"|} json
  and e = count_substring ~sub:{|"ph":"E"|} json in
  Alcotest.(check int) "still balanced" b e

let summary_counts_spans () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  for _ = 1 to 7 do
    ignore (nested_work ())
  done;
  match
    List.find_opt (fun s -> s.Obs.Span.name = "test.inner") (Obs.Span.summary ())
  with
  | None -> Alcotest.fail "no summary row"
  | Some s ->
      Alcotest.(check int) "count" 7 s.Obs.Span.count;
      Alcotest.(check bool) "ordered percentiles" true
        (s.Obs.Span.p50_us <= s.Obs.Span.p99_us +. 1e-9);
      Alcotest.(check bool) "mean consistent" true
        (Float.abs ((s.Obs.Span.total_us /. 7.) -. s.Obs.Span.mean_us) < 1e-6)

let json_escape_roundtrip () =
  let escaped = Obs.Span.json_escape "a\"b\\c\nd\te\x01f" in
  check_valid_json "escaped string" (Printf.sprintf "\"%s\"" escaped);
  Alcotest.(check string) "escapes" {|a\"b\\c\nd\te\u0001f|} escaped

(* {1 Report} *)

let report_json_valid () =
  with_flags ~metrics:true ~spans:true ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.report" in
  Obs.Metrics.incr c;
  let h = Obs.Metrics.histogram "test.obs.report_hist" in
  Obs.Metrics.observe h 0.5;
  ignore (nested_work ());
  Obs.Progress.phase "test.phase" (fun () -> ignore (Sys.opaque_identity 0));
  let json = Obs.Report.json () in
  check_valid_json "report" json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (count_substring ~sub:(Printf.sprintf "%S" key) json > 0))
    [ "counters"; "gauges"; "histograms"; "spans"; "phases"; "test.phase" ]

let progress_phase_records_gc () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  Obs.Progress.phase "test.gc" (fun () ->
      (* small boxed values, so the allocation lands in the minor heap *)
      ignore (Sys.opaque_identity (List.init 10_000 float_of_int)));
  match List.find_opt (fun p -> p.Obs.Progress.phase = "test.gc") (Obs.Progress.phases ()) with
  | None -> Alcotest.fail "phase not recorded"
  | Some p ->
      Alcotest.(check bool) "elapsed >= 0" true (p.Obs.Progress.elapsed_s >= 0.);
      Alcotest.(check bool) "allocated" true (p.Obs.Progress.minor_words > 0.)

let disabled_phase_is_transparent () =
  with_flags ~metrics:false ~spans:false ~progress:false @@ fun () ->
  let r = Obs.Progress.phase "test.off" (fun () -> 17) in
  Alcotest.(check int) "result" 17 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Progress.phases ()))

(* {1 Zero-cost when disabled}

   The contract is "no observable allocation": a fixed instrumented
   loop must allocate O(1) minor words regardless of iteration count.
   We allow a generous constant for the harness itself. *)

let incr_loop c n =
  for _ = 1 to n do
    Obs.Metrics.incr c
  done

let span_loop f n =
  for _ = 1 to n do
    if Obs.Span.enabled () then ignore (Obs.Span.with_ ~name:"test.cold" f)
    else ignore (f ())
  done

let disabled_paths_do_not_allocate () =
  with_flags ~metrics:false ~spans:false ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.cold" in
  let f () = Sys.opaque_identity 0 in
  (* warm up so any one-time setup is paid before measuring *)
  incr_loop c 100;
  span_loop f 100;
  let before = Gc.minor_words () in
  incr_loop c 50_000;
  span_loop f 50_000;
  let delta = Gc.minor_words () -. before in
  if delta > 1_000. then
    Alcotest.failf "disabled telemetry allocated %.0f minor words over 100k ops" delta;
  Alcotest.(check (option int))
    "counter untouched" (Some 0)
    (Obs.Metrics.find_counter (Obs.Metrics.snapshot ()) "test.obs.cold");
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Span.summary ()))

(* {1 Engine per-backend counters} *)

let small_engine () =
  let rng = Tutil.rng_of_seed 7 in
  let graph = Workloads.Cholesky.generate ~tiles:2 () in
  let platform =
    Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let model = Workloads.Stochastify.make ~ul:1.2 () in
  let sched = Sched.Heft.schedule graph platform in
  (Makespan.Engine.create ~graph ~platform ~model, sched)

let engine_counts_per_backend () =
  let engine, sched = small_engine () in
  let eval b = ignore (Makespan.Engine.eval ~backend:b engine sched) in
  eval Makespan.Engine.Classical;
  eval Makespan.Engine.Classical;
  eval Makespan.Engine.Spelde;
  eval (Makespan.Engine.Montecarlo { count = 50; seed = 5L });
  let s = Makespan.Engine.stats engine in
  Alcotest.(check int) "classical" 2 s.Makespan.Engine.evals_classical;
  Alcotest.(check int) "spelde" 1 s.Makespan.Engine.evals_spelde;
  Alcotest.(check int) "montecarlo" 1 s.Makespan.Engine.evals_montecarlo;
  Alcotest.(check int) "dodin" 0 s.Makespan.Engine.evals_dodin;
  Alcotest.(check int) "total" 4 s.Makespan.Engine.evals;
  Makespan.Engine.reset_stats engine;
  let z = Makespan.Engine.stats engine in
  Alcotest.(check int) "evals zeroed" 0 z.Makespan.Engine.evals;
  Alcotest.(check int) "hits zeroed" 0 z.Makespan.Engine.task_hits;
  Alcotest.(check int) "misses zeroed" 0 z.Makespan.Engine.task_misses;
  (* counters keep working after a reset *)
  eval Makespan.Engine.Classical;
  Alcotest.(check int) "counts resume" 1
    (Makespan.Engine.stats engine).Makespan.Engine.evals_classical

let engine_output_independent_of_sinks () =
  let engine, sched = small_engine () in
  let reference = Makespan.Engine.eval engine sched in
  let instrumented =
    with_flags ~metrics:true ~spans:true ~progress:false @@ fun () ->
    Makespan.Engine.eval engine sched
  in
  Alcotest.(check bool) "bit-identical distribution" true (reference = instrumented)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          tc "concurrent counter sum" `Quick counter_concurrent_sum;
          tc "add and reset" `Quick counter_add_and_reset;
          tc "gauge last-write-wins" `Quick gauge_last_write_wins;
          histogram_matches_reference;
          tc "idempotent registration" `Quick registration_is_idempotent;
          tc "kind clash" `Quick kind_clash_rejected;
        ] );
      ( "span",
        [
          tc "export balanced" `Quick trace_export_balanced;
          tc "exception safety" `Quick trace_survives_exception;
          tc "ring wrap" `Quick ring_overwrites_and_counts_drops;
          tc "summary" `Quick summary_counts_spans;
          tc "json escape" `Quick json_escape_roundtrip;
        ] );
      ( "report",
        [
          tc "combined json" `Quick report_json_valid;
          tc "phase gc" `Quick progress_phase_records_gc;
          tc "disabled phase" `Quick disabled_phase_is_transparent;
        ] );
      ( "zero-cost",
        [ tc "disabled paths allocate nothing" `Quick disabled_paths_do_not_allocate ] );
      ( "engine",
        [
          tc "per-backend counts" `Quick engine_counts_per_backend;
          tc "sinks do not affect output" `Quick engine_output_independent_of_sinks;
        ] );
    ]
