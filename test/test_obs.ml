(* Telemetry suites: sharded counter/histogram correctness under
   Pool.run, Chrome-trace export validity, zero-cost disabled paths,
   and the engine's per-backend evaluation counters. *)

(* Every test toggles sinks behind [with_flags], so a failure cannot
   leak an enabled sink into later suites (some assert bit-level
   reproducibility of uninstrumented runs). *)
let with_flags ~metrics ~spans ~progress f =
  let m0 = Obs.Metrics.enabled ()
  and s0 = Obs.Span.enabled ()
  and p0 = Obs.Progress.enabled () in
  Obs.Metrics.set_enabled metrics;
  Obs.Span.set_enabled spans;
  Obs.Progress.set_enabled progress;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled m0;
      Obs.Span.set_enabled s0;
      Obs.Progress.set_enabled p0;
      Obs.Metrics.reset ();
      Obs.Span.reset ();
      Obs.Progress.reset_phases ())
    f

(* {1 A minimal JSON syntax checker}

   Enough of RFC 8259 to reject anything structurally malformed that
   our hand-rolled emitters could produce: unbalanced brackets, bad
   escapes, trailing garbage, missing commas/colons. *)

exception Bad of int * string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    String.iter
      (fun c ->
        match peek () with
        | Some c' when c' = c -> advance ()
        | _ -> fail ("in literal " ^ word))
      word
  in
  let string_body () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ -> advance ()
    done
  in
  let number () =
    let digits () =
      let seen = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' -> advance (); digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); more := false
            | _ -> fail "expected , or } in object"
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); more := false
            | _ -> fail "expected , or ] in array"
          done
        end
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let check_valid_json what s =
  match validate_json s with
  | () -> ()
  | exception Bad (pos, msg) ->
      Alcotest.failf "%s: invalid JSON at byte %d (%s): %s" what pos msg
        (String.sub s (max 0 (pos - 40)) (min 80 (String.length s - max 0 (pos - 40))))

let count_substring ~sub s =
  let m = String.length sub and n = String.length s in
  let k = ref 0 in
  for i = 0 to n - m do
    if String.sub s i m = sub then incr k
  done;
  !k

(* {1 Metrics} *)

let counter_concurrent_sum () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.hits" in
  let chunks = 64 and per_chunk = 500 in
  Parallel.Pool.run ~domains:4 ~chunks (fun _ ->
      for _ = 1 to per_chunk do
        Obs.Metrics.incr c
      done);
  let snap = Obs.Metrics.snapshot () in
  match Obs.Metrics.find_counter snap "test.obs.hits" with
  | None -> Alcotest.fail "counter missing from snapshot"
  | Some v -> Alcotest.(check int) "merged sum" (chunks * per_chunk) v

let counter_add_and_reset () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.add" in
  Obs.Metrics.add c 41;
  Obs.Metrics.incr c;
  let v () = Obs.Metrics.find_counter (Obs.Metrics.snapshot ()) "test.obs.add" in
  Alcotest.(check (option int)) "after adds" (Some 42) (v ());
  Obs.Metrics.reset ();
  Alcotest.(check (option int)) "after reset" (Some 0) (v ())

let gauge_last_write_wins () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.set g 1.5;
  Obs.Metrics.set g 2.5;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (option (float 1e-12)))
    "last value" (Some 2.5)
    (List.assoc_opt "test.obs.gauge" snap.Obs.Metrics.gauges)

(* Reference bucketing for the histogram property: first bound >= x,
   else the overflow bucket. *)
let reference_hist bounds xs =
  let counts = Array.make (Array.length bounds + 1) 0 in
  List.iter
    (fun x ->
      let rec find i =
        if i = Array.length bounds then i
        else if x <= bounds.(i) then i
        else find (i + 1)
      in
      let i = find 0 in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts

let histogram_matches_reference =
  Tutil.qcheck ~count:60 "histogram buckets = sequential reference"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 400) (float_range 1e-7 2e3))
        (int_range 1 4))
    (fun (xs, domains) ->
      with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
      let h = Obs.Metrics.histogram "test.obs.hist" in
      let arr = Array.of_list xs in
      let n = Array.length arr in
      (* one chunk per value, so observations land on several shards *)
      Parallel.Pool.run ~domains ~chunks:n (fun i -> Obs.Metrics.observe h arr.(i));
      let snap = Obs.Metrics.snapshot () in
      match List.assoc_opt "test.obs.hist" snap.Obs.Metrics.histograms with
      | None -> false
      | Some hv ->
          let expected = reference_hist hv.Obs.Metrics.bounds xs in
          hv.Obs.Metrics.counts = expected
          && hv.Obs.Metrics.total = n
          && Float.abs (hv.Obs.Metrics.sum -. List.fold_left ( +. ) 0. xs)
             <= 1e-9 *. Float.max 1. (Float.abs hv.Obs.Metrics.sum))

let registration_is_idempotent () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let a = Obs.Metrics.counter "test.obs.same" in
  let b = Obs.Metrics.counter "test.obs.same" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr b;
  Alcotest.(check (option int))
    "one slot" (Some 2)
    (Obs.Metrics.find_counter (Obs.Metrics.snapshot ()) "test.obs.same")

let kind_clash_rejected () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let (_ : Obs.Metrics.counter) = Obs.Metrics.counter "test.obs.kind" in
  match Obs.Metrics.histogram "test.obs.kind" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* {1 Spans} *)

let nested_work () = Obs.Span.with_ ~name:"test.inner" (fun () -> Sys.opaque_identity 1)

let trace_export_balanced () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  let outer () = Obs.Span.with_ ~name:"test.outer" (fun () -> ignore (nested_work ())) in
  for _ = 1 to 5 do
    outer ()
  done;
  Parallel.Pool.run ~domains:3 ~chunks:12 (fun _ -> ignore (nested_work ()));
  let json = Obs.Span.export_chrome () in
  check_valid_json "trace" json;
  let b = count_substring ~sub:{|"ph":"B"|} json
  and e = count_substring ~sub:{|"ph":"E"|} json in
  Alcotest.(check int) "balanced B/E" b e;
  Alcotest.(check bool) "has events" true (b > 0);
  (* pool chunks themselves are spans when tracing is on *)
  Alcotest.(check bool)
    "pool.chunk present" true
    (count_substring ~sub:{|"name":"pool.chunk"|} json > 0)

let trace_survives_exception () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  (try Obs.Span.with_ ~name:"test.raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  let json = Obs.Span.export_chrome () in
  check_valid_json "trace" json;
  Alcotest.(check int) "span recorded despite raise" 1
    (count_substring ~sub:{|"name":"test.raise"|} json / 2 * 2 / 2);
  let b = count_substring ~sub:{|"ph":"B"|} json
  and e = count_substring ~sub:{|"ph":"E"|} json in
  Alcotest.(check int) "balanced" b e

let ring_overwrites_and_counts_drops () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  let extra = 37 in
  for _ = 1 to Obs.Span.capacity + extra do
    ignore (nested_work ())
  done;
  Alcotest.(check bool)
    "dropped >= overflow" true
    (Obs.Span.dropped () >= extra);
  let json = Obs.Span.export_chrome () in
  check_valid_json "trace after wrap" json;
  let b = count_substring ~sub:{|"ph":"B"|} json
  and e = count_substring ~sub:{|"ph":"E"|} json in
  Alcotest.(check int) "still balanced" b e

let summary_counts_spans () =
  with_flags ~metrics:false ~spans:true ~progress:false @@ fun () ->
  for _ = 1 to 7 do
    ignore (nested_work ())
  done;
  match
    List.find_opt (fun s -> s.Obs.Span.name = "test.inner") (Obs.Span.summary ())
  with
  | None -> Alcotest.fail "no summary row"
  | Some s ->
      Alcotest.(check int) "count" 7 s.Obs.Span.count;
      Alcotest.(check bool) "ordered percentiles" true
        (s.Obs.Span.p50_us <= s.Obs.Span.p99_us +. 1e-9);
      Alcotest.(check bool) "mean consistent" true
        (Float.abs ((s.Obs.Span.total_us /. 7.) -. s.Obs.Span.mean_us) < 1e-6)

let json_escape_roundtrip () =
  let escaped = Obs.Span.json_escape "a\"b\\c\nd\te\x01f" in
  check_valid_json "escaped string" (Printf.sprintf "\"%s\"" escaped);
  Alcotest.(check string) "escapes" {|a\"b\\c\nd\te\u0001f|} escaped

(* {1 Report} *)

let report_json_valid () =
  with_flags ~metrics:true ~spans:true ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.report" in
  Obs.Metrics.incr c;
  let h = Obs.Metrics.histogram "test.obs.report_hist" in
  Obs.Metrics.observe h 0.5;
  ignore (nested_work ());
  Obs.Progress.phase "test.phase" (fun () -> ignore (Sys.opaque_identity 0));
  let json = Obs.Report.json () in
  check_valid_json "report" json;
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (count_substring ~sub:(Printf.sprintf "%S" key) json > 0))
    [ "counters"; "gauges"; "histograms"; "spans"; "phases"; "test.phase" ]

let progress_phase_records_gc () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  Obs.Progress.phase "test.gc" (fun () ->
      (* small boxed values, so the allocation lands in the minor heap *)
      ignore (Sys.opaque_identity (List.init 10_000 float_of_int)));
  match List.find_opt (fun p -> p.Obs.Progress.phase = "test.gc") (Obs.Progress.phases ()) with
  | None -> Alcotest.fail "phase not recorded"
  | Some p ->
      Alcotest.(check bool) "elapsed >= 0" true (p.Obs.Progress.elapsed_s >= 0.);
      Alcotest.(check bool) "allocated" true (p.Obs.Progress.minor_words > 0.)

let disabled_phase_is_transparent () =
  with_flags ~metrics:false ~spans:false ~progress:false @@ fun () ->
  let r = Obs.Progress.phase "test.off" (fun () -> 17) in
  Alcotest.(check int) "result" 17 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Progress.phases ()))

(* {1 Zero-cost when disabled}

   The contract is "no observable allocation": a fixed instrumented
   loop must allocate O(1) minor words regardless of iteration count.
   We allow a generous constant for the harness itself. *)

let incr_loop c n =
  for _ = 1 to n do
    Obs.Metrics.incr c
  done

let span_loop f n =
  for _ = 1 to n do
    if Obs.Span.enabled () then ignore (Obs.Span.with_ ~name:"test.cold" f)
    else ignore (f ())
  done

let disabled_paths_do_not_allocate () =
  with_flags ~metrics:false ~spans:false ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "test.obs.cold" in
  let f () = Sys.opaque_identity 0 in
  (* warm up so any one-time setup is paid before measuring *)
  incr_loop c 100;
  span_loop f 100;
  let before = Gc.minor_words () in
  incr_loop c 50_000;
  span_loop f 50_000;
  let delta = Gc.minor_words () -. before in
  if delta > 1_000. then
    Alcotest.failf "disabled telemetry allocated %.0f minor words over 100k ops" delta;
  Alcotest.(check (option int))
    "counter untouched" (Some 0)
    (Obs.Metrics.find_counter (Obs.Metrics.snapshot ()) "test.obs.cold");
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Span.summary ()))

(* {1 Engine per-backend counters} *)

let small_engine () =
  let rng = Tutil.rng_of_seed 7 in
  let graph = Workloads.Cholesky.generate ~tiles:2 () in
  let platform =
    Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let model = Workloads.Stochastify.make ~ul:1.2 () in
  let sched = Sched.Heft.schedule graph platform in
  (Makespan.Engine.create ~graph ~platform ~model, sched)

let engine_counts_per_backend () =
  let engine, sched = small_engine () in
  let eval b = ignore (Makespan.Engine.eval ~backend:b engine sched) in
  eval Makespan.Engine.Classical;
  eval Makespan.Engine.Classical;
  eval Makespan.Engine.Spelde;
  eval (Makespan.Engine.Montecarlo { count = 50; seed = 5L });
  let s = Makespan.Engine.stats engine in
  Alcotest.(check int) "classical" 2 s.Makespan.Engine.evals_classical;
  Alcotest.(check int) "spelde" 1 s.Makespan.Engine.evals_spelde;
  Alcotest.(check int) "montecarlo" 1 s.Makespan.Engine.evals_montecarlo;
  Alcotest.(check int) "dodin" 0 s.Makespan.Engine.evals_dodin;
  Alcotest.(check int) "total" 4 s.Makespan.Engine.evals;
  Makespan.Engine.reset_stats engine;
  let z = Makespan.Engine.stats engine in
  Alcotest.(check int) "evals zeroed" 0 z.Makespan.Engine.evals;
  Alcotest.(check int) "hits zeroed" 0 z.Makespan.Engine.task_hits;
  Alcotest.(check int) "misses zeroed" 0 z.Makespan.Engine.task_misses;
  (* counters keep working after a reset *)
  eval Makespan.Engine.Classical;
  Alcotest.(check int) "counts resume" 1
    (Makespan.Engine.stats engine).Makespan.Engine.evals_classical

let engine_output_independent_of_sinks () =
  let engine, sched = small_engine () in
  let reference = Makespan.Engine.eval engine sched in
  let instrumented =
    with_flags ~metrics:true ~spans:true ~progress:false @@ fun () ->
    Makespan.Engine.eval engine sched
  in
  Alcotest.(check bool) "bit-identical distribution" true (reference = instrumented)

(* ------------------------------------------------------------------ *)
(* Trace identifiers                                                   *)
(* ------------------------------------------------------------------ *)

let w3c_trace_id = "4bf92f3577b34da6a3ce929d0e0e4736"
let w3c_parent_id = "00f067aa0ba902b7"

let trace_mint_and_roundtrip () =
  let t = Obs.Trace.mint () in
  Alcotest.(check bool) "minted trace id valid" true
    (Obs.Trace.is_valid_trace_id t.Obs.Trace.trace_id);
  Alcotest.(check int) "parent id length" 16 (String.length t.Obs.Trace.parent_id);
  let hdr = Obs.Trace.to_traceparent t in
  Alcotest.(check int) "traceparent length" 55 (String.length hdr);
  (match Obs.Trace.of_traceparent hdr with
  | Some t' -> Alcotest.(check bool) "roundtrip preserves both ids" true (t = t')
  | None -> Alcotest.fail "to_traceparent output rejected by of_traceparent");
  let u = Obs.Trace.mint () in
  Alcotest.(check bool) "successive mints differ" true
    (t.Obs.Trace.trace_id <> u.Obs.Trace.trace_id)

let trace_rejects_malformed () =
  let reject what s =
    match Obs.Trace.of_traceparent s with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: accepted %S" what s
  in
  (match
     Obs.Trace.of_traceparent
       (Printf.sprintf "00-%s-%s-01" w3c_trace_id w3c_parent_id)
   with
  | Some t -> Alcotest.(check string) "w3c example parses" w3c_trace_id t.Obs.Trace.trace_id
  | None -> Alcotest.fail "rejected the W3C example header");
  reject "unknown version" (Printf.sprintf "ff-%s-%s-01" w3c_trace_id w3c_parent_id);
  reject "uppercase hex"
    (Printf.sprintf "00-%s-%s-01" (String.uppercase_ascii w3c_trace_id) w3c_parent_id);
  reject "all-zero trace id"
    (Printf.sprintf "00-%s-%s-01" (String.make 32 '0') w3c_parent_id);
  reject "all-zero parent id"
    (Printf.sprintf "00-%s-%s-01" w3c_trace_id (String.make 16 '0'));
  reject "missing flags" (Printf.sprintf "00-%s-%s" w3c_trace_id w3c_parent_id);
  reject "empty" "";
  reject "non-hex trace id"
    (Printf.sprintf "00-%s-%s-01" ("zz" ^ String.sub w3c_trace_id 2 30) w3c_parent_id);
  Alcotest.(check bool) "is_valid_trace_id rejects all-zero" false
    (Obs.Trace.is_valid_trace_id (String.make 32 '0'));
  Alcotest.(check bool) "is_valid_trace_id rejects short" false
    (Obs.Trace.is_valid_trace_id "abc")

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

let clock_monotone () =
  let prev = ref (Obs.Clock.now_us ()) in
  let violated = ref false in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now_us () in
    if t < !prev then violated := true;
    prev := t
  done;
  Alcotest.(check bool) "now_us never decreases" false !violated

let clock_measures_sleep () =
  let t0 = Obs.Clock.now_us () in
  let s0 = Obs.Clock.now_s () in
  Unix.sleepf 0.02;
  let dus = Obs.Clock.now_us () -. t0 in
  let ds = Obs.Clock.now_s () -. s0 in
  Alcotest.(check bool)
    (Printf.sprintf "20 ms sleep measures as %.0f us" dus)
    true
    (dus >= 15_000. && dus < 5e6);
  Alcotest.(check bool) "now_s agrees with now_us" true
    (Float.abs ((ds *. 1e6) -. dus) < 1e6)

(* ------------------------------------------------------------------ *)
(* Windowed quantiles and the latency bucket preset                    *)
(* ------------------------------------------------------------------ *)

let window_quantile_tracks_recent () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let h = Obs.Metrics.histogram ~buckets:[| 50.; 100.; 150.; 200. |] "omtest.window" in
  for i = 1 to 200 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let s = Obs.Metrics.snapshot () in
  let hv = List.assoc "omtest.window" s.Obs.Metrics.histograms in
  Alcotest.(check int) "lifetime total" 200 hv.Obs.Metrics.total;
  (* the window holds the last 128 samples: 73..200 *)
  Alcotest.(check int) "window capped at 128" 128 (Array.length hv.Obs.Metrics.recent);
  Alcotest.(check (float 1e-9)) "window min" 73. (Obs.Metrics.window_quantile hv 0.);
  Alcotest.(check (float 1e-9)) "window max" 200. (Obs.Metrics.window_quantile hv 1.);
  let p50 = Obs.Metrics.window_quantile hv 0.5 in
  Alcotest.(check (float 1e-9)) "window median exact" 136.5 p50;
  Alcotest.(check bool) "window median above the lifetime bucket estimate" true
    (p50 > Obs.Metrics.hist_quantile hv 0.5)

let window_quantile_empty_falls_back () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let (_ : Obs.Metrics.histogram) =
    Obs.Metrics.histogram ~buckets:[| 1. |] "omtest.window_empty"
  in
  let s = Obs.Metrics.snapshot () in
  let hv = List.assoc "omtest.window_empty" s.Obs.Metrics.histograms in
  Alcotest.(check bool) "empty histogram yields nan" true
    (Float.is_nan (Obs.Metrics.window_quantile hv 0.5))

let latency_buckets_preset () =
  let b = Obs.Metrics.latency_buckets in
  Alcotest.(check int) "43 buckets" 43 (Array.length b);
  Alcotest.(check (float 1e-12)) "starts at 1 us" 1e-6 b.(0);
  for i = 1 to Array.length b - 1 do
    if b.(i) <= b.(i - 1) then Alcotest.fail "bounds not strictly increasing";
    let r = b.(i) /. b.(i - 1) in
    if r < 1.49 || r > 1.51 then Alcotest.failf "step ratio %g at %d is not log-1.5" r i
  done;
  Alcotest.(check bool) "tops out in the tens of seconds" true
    (b.(42) > 20. && b.(42) < 30.)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let flight_lifecycle () =
  Obs.Flight.reset ();
  let r = Obs.Flight.create ~trace_id:w3c_trace_id ~meth:"POST" ~path:"/eval" () in
  Obs.Flight.set_cache r Obs.Flight.Hit;
  let t0 = Obs.Clock.now_us () in
  Obs.Flight.record_stage (Some r) ~stage:"parse" t0 (t0 +. 5.);
  let v = Obs.Flight.timed ~record:r ~stage:"eval" (fun () -> 42) in
  Alcotest.(check int) "timed passes the result through" 42 v;
  Obs.Flight.finish r ~status:200;
  Alcotest.(check int) "one publication" 1 (Obs.Flight.total ());
  (match Obs.Flight.recent () with
  | [ p ] ->
    Alcotest.(check string) "trace id" w3c_trace_id p.Obs.Flight.trace_id;
    Alcotest.(check int) "status" 200 p.Obs.Flight.status;
    Alcotest.(check bool) "sealed" true (p.Obs.Flight.t_end_us > 0.);
    let stages = List.map (fun s -> s.Obs.Flight.stage) (Atomic.get p.Obs.Flight.stages) in
    Alcotest.(check bool) "parse stage recorded" true (List.mem "parse" stages);
    Alcotest.(check bool) "eval stage recorded" true (List.mem "eval" stages)
  | l -> Alcotest.failf "expected one record, got %d" (List.length l));
  check_valid_json "debug document" (Obs.Flight.json ());
  let chrome = Obs.Flight.chrome ~trace_id:w3c_trace_id () in
  check_valid_json "chrome document" chrome;
  Alcotest.(check bool) "chrome carries the trace" true
    (count_substring ~sub:w3c_trace_id chrome > 0);
  let other = Obs.Flight.chrome ~trace_id:(String.make 32 'b') () in
  Alcotest.(check int) "trace filter excludes other requests" 0
    (count_substring ~sub:"/eval" other);
  Obs.Flight.reset ();
  Alcotest.(check int) "reset clears the ring" 0 (Obs.Flight.total ())

let flight_ring_wraparound_concurrent () =
  Obs.Flight.reset ();
  let n_domains = 4 and per_domain = 150 in
  (* 600 publications into a 256-slot ring, from four domains at once *)
  let worker d () =
    for i = 1 to per_domain do
      let r = Obs.Flight.create ~meth:"GET" ~path:(Printf.sprintf "/d%d/%d" d i) () in
      Obs.Flight.timed ~record:r ~stage:"eval" (fun () -> ());
      Obs.Flight.finish r ~status:200
    done
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "total counts every publication" (n_domains * per_domain)
    (Obs.Flight.total ());
  let rs = Obs.Flight.recent () in
  Alcotest.(check int) "ring serves exactly capacity records" Obs.Flight.capacity
    (List.length rs);
  let seqs = List.sort_uniq compare (List.map (fun r -> r.Obs.Flight.seq) rs) in
  Alcotest.(check int) "every served record is distinct" (List.length rs)
    (List.length seqs);
  List.iter
    (fun r ->
      Alcotest.(check int) "served record sealed" 200 r.Obs.Flight.status;
      Alcotest.(check bool) "served record has an end stamp" true
        (r.Obs.Flight.t_end_us > 0.))
    rs;
  check_valid_json "debug document after wrap" (Obs.Flight.json ());
  check_valid_json "chrome document after wrap" (Obs.Flight.chrome ());
  Alcotest.(check int) "limit respected" 8 (List.length (Obs.Flight.recent ~limit:8 ()));
  Obs.Flight.reset ()

let flight_timed_off_does_not_allocate () =
  with_flags ~metrics:false ~spans:false ~progress:false @@ fun () ->
  let f () = () in
  for _ = 1 to 1_000 do
    Obs.Flight.timed ~stage:"hot" f
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 50_000 do
    Obs.Flight.timed ~stage:"hot" f
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "timed with no record and sinks off allocated %.0f minor words"
       allocated)
    true (allocated <= 1000.)

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)
(* ------------------------------------------------------------------ *)

let openmetrics_render_golden () =
  let open Obs.Openmetrics in
  let metrics =
    [
      { family = "om_requests"; labels = []; help = Some "Total requests";
        data = Counter 3. };
      { family = "om_depth"; labels = []; help = None; data = Gauge 2.5 };
      { family = "om_lat"; labels = [ ("stage", "parse") ]; help = None;
        data =
          Histogram
            {
              bounds = [| 0.001; 0.01 |];
              counts = [| 2; 1; 1 |];
              sum = 0.0215;
              exemplars = [| Some (w3c_trace_id, 0.0005); None; None |];
            } };
    ]
  in
  let text = render metrics in
  let expected =
    String.concat "\n"
      [
        "# HELP om_requests Total requests";
        "# TYPE om_requests counter";
        "om_requests_total 3";
        "# TYPE om_depth gauge";
        "om_depth 2.5";
        "# TYPE om_lat histogram";
        "om_lat_bucket{stage=\"parse\",le=\"0.001\"} 2 # {trace_id=\"" ^ w3c_trace_id
        ^ "\"} 0.0005";
        "om_lat_bucket{stage=\"parse\",le=\"0.01\"} 3";
        "om_lat_bucket{stage=\"parse\",le=\"+Inf\"} 4";
        "om_lat_count{stage=\"parse\"} 4";
        "om_lat_sum{stage=\"parse\"} 0.0215";
        "# EOF";
      ]
    ^ "\n"
  in
  Alcotest.(check string) "golden exposition" expected text;
  match validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validator rejected the golden document: %s" e

let openmetrics_groups_families () =
  let open Obs.Openmetrics in
  let hist stage =
    { family = "om_grp"; labels = [ ("stage", stage) ]; help = None;
      data =
        Histogram
          { bounds = [| 1. |]; counts = [| 1; 0 |]; sum = 0.5;
            exemplars = [| None; None |] } }
  in
  let other = { family = "om_other"; labels = []; help = None; data = Counter 1. } in
  (* the family is split across the input list; the renderer must emit
     its label sets contiguously or the validator flags interleaving *)
  let text = render [ hist "a"; other; hist "b" ] in
  (match validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validator: %s" e);
  Alcotest.(check int) "one TYPE line for the split family" 1
    (count_substring ~sub:"# TYPE om_grp histogram" text);
  Alcotest.(check bool) "both label sets present" true
    (count_substring ~sub:"om_grp_bucket{stage=\"a\"" text > 0
    && count_substring ~sub:"om_grp_bucket{stage=\"b\"" text > 0)

let openmetrics_mixed_kind_rejected () =
  let open Obs.Openmetrics in
  let c = { family = "om_mixed"; labels = []; help = None; data = Counter 1. } in
  let g = { family = "om_mixed"; labels = []; help = None; data = Gauge 1. } in
  match render [ c; g ] with
  | (_ : string) -> Alcotest.fail "render accepted a family mixing counter and gauge"
  | exception Invalid_argument _ -> ()

let openmetrics_validator_rejects () =
  let reject what text =
    match Obs.Openmetrics.validate text with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: validator accepted" what
  in
  reject "no trailing newline" "# EOF";
  reject "missing terminal EOF" "# TYPE a counter\na_total 1\n";
  reject "empty line" "# TYPE a counter\n\na_total 1\n# EOF\n";
  reject "content after EOF" "# EOF\n# TYPE a counter\n";
  reject "sample without TYPE" "a_total 1\n# EOF\n";
  reject "interleaved families"
    "# TYPE a counter\na_total 1\n# TYPE b counter\nb_total 1\na_total 2\n# EOF\n";
  reject "counter sample without _total" "# TYPE a counter\na 1\n# EOF\n";
  reject "histogram without +Inf"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n# EOF\n";
  reject "_count disagrees with +Inf"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n# EOF\n";
  reject "bucket counts decrease"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n# EOF\n";
  reject "exemplar on a gauge" "# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n# EOF\n";
  reject "unknown comment" "# FOO bar\n# EOF\n";
  reject "duplicate TYPE" "# TYPE a counter\n# TYPE a counter\na_total 1\n# EOF\n";
  reject "unparsable sample value" "# TYPE a counter\na_total x\n# EOF\n";
  match Obs.Openmetrics.validate "# TYPE a counter\na_total 1\n# EOF\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "minimal valid document rejected: %s" e

let openmetrics_names () =
  Alcotest.(check string) "dots become underscores" "service_stage_seconds"
    (Obs.Openmetrics.sanitize_name "service.stage_seconds");
  Alcotest.(check string) "leading digit masked" "_x" (Obs.Openmetrics.sanitize_name "9x");
  let check_split what name expected =
    let got = Obs.Openmetrics.split_name name in
    Alcotest.(check (pair string (list (pair string string)))) what expected got
  in
  check_split "labeled name splits" "fam{stage=\"parse\",proc=\"3\"}"
    ("fam", [ ("stage", "parse"); ("proc", "3") ]);
  check_split "plain name passes through" "plain" ("plain", []);
  check_split "malformed braces pass through whole" "bad{" ("bad{", [])

let openmetrics_snapshot_roundtrip () =
  with_flags ~metrics:true ~spans:false ~progress:false @@ fun () ->
  let c = Obs.Metrics.counter "omtest.requests" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  let g = Obs.Metrics.gauge "omtest.depth" in
  Obs.Metrics.set g 4.;
  let h =
    Obs.Metrics.histogram ~buckets:Obs.Metrics.latency_buckets
      "omtest.stage_seconds{stage=\"parse\"}"
  in
  Obs.Metrics.observe_ex h ~exemplar:w3c_trace_id 0.0005;
  let text =
    Obs.Openmetrics.render (Obs.Openmetrics.of_snapshot (Obs.Metrics.snapshot ()))
  in
  (match Obs.Openmetrics.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validator rejected the snapshot exposition: %s" e);
  let has what sub = Alcotest.(check bool) what true (count_substring ~sub text > 0) in
  has "counter exposed with _total" "omtest_requests_total 2";
  has "gauge exposed" "omtest_depth 4";
  has "labeled histogram split into a stage label"
    "omtest_stage_seconds_bucket{stage=\"parse\",le=";
  has "exemplar attached" ("# {trace_id=\"" ^ w3c_trace_id ^ "\"} 0.0005")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          tc "concurrent counter sum" `Quick counter_concurrent_sum;
          tc "add and reset" `Quick counter_add_and_reset;
          tc "gauge last-write-wins" `Quick gauge_last_write_wins;
          histogram_matches_reference;
          tc "idempotent registration" `Quick registration_is_idempotent;
          tc "kind clash" `Quick kind_clash_rejected;
        ] );
      ( "span",
        [
          tc "export balanced" `Quick trace_export_balanced;
          tc "exception safety" `Quick trace_survives_exception;
          tc "ring wrap" `Quick ring_overwrites_and_counts_drops;
          tc "summary" `Quick summary_counts_spans;
          tc "json escape" `Quick json_escape_roundtrip;
        ] );
      ( "report",
        [
          tc "combined json" `Quick report_json_valid;
          tc "phase gc" `Quick progress_phase_records_gc;
          tc "disabled phase" `Quick disabled_phase_is_transparent;
        ] );
      ( "zero-cost",
        [ tc "disabled paths allocate nothing" `Quick disabled_paths_do_not_allocate ] );
      ( "engine",
        [
          tc "per-backend counts" `Quick engine_counts_per_backend;
          tc "sinks do not affect output" `Quick engine_output_independent_of_sinks;
        ] );
      ( "trace",
        [
          tc "mint and roundtrip" `Quick trace_mint_and_roundtrip;
          tc "rejects malformed headers" `Quick trace_rejects_malformed;
        ] );
      ( "clock",
        [
          tc "monotone" `Quick clock_monotone;
          tc "measures a sleep" `Quick clock_measures_sleep;
        ] );
      ( "window",
        [
          tc "quantile tracks recent samples" `Quick window_quantile_tracks_recent;
          tc "empty window falls back" `Quick window_quantile_empty_falls_back;
          tc "latency bucket preset" `Quick latency_buckets_preset;
        ] );
      ( "flight",
        [
          tc "lifecycle" `Quick flight_lifecycle;
          tc "ring wraparound under concurrent writers" `Quick
            flight_ring_wraparound_concurrent;
          tc "timed with sinks off allocates nothing" `Quick
            flight_timed_off_does_not_allocate;
        ] );
      ( "openmetrics",
        [
          tc "render golden" `Quick openmetrics_render_golden;
          tc "families grouped" `Quick openmetrics_groups_families;
          tc "mixed-kind family rejected" `Quick openmetrics_mixed_kind_rejected;
          tc "validator rejects malformed documents" `Quick openmetrics_validator_rejects;
          tc "name sanitizing and splitting" `Quick openmetrics_names;
          tc "snapshot exposition roundtrip" `Quick openmetrics_snapshot_roundtrip;
        ] );
    ]
