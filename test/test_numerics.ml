(* Numerics suites: FFT vs naive DFT, convolutions, splines, quadrature,
   special functions, root finding. *)

let check_close = Tutil.check_close
let check_close_abs = Tutil.check_close_abs

(* --- Array_ops --- *)

let linspace_endpoints () =
  let a = Numerics.Array_ops.linspace 1. 5. 9 in
  Alcotest.(check int) "length" 9 (Array.length a);
  check_close "first" 1. a.(0);
  check_close "last" 5. a.(8);
  check_close "step" 0.5 (a.(1) -. a.(0))

let kahan_sum_precision () =
  let a = Array.make 1_000_000 0.1 in
  check_close ~eps:1e-12 "kahan" 100000. (Numerics.Array_ops.sum a)

let next_pow2_values () =
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (string_of_int n) want (Numerics.Array_ops.next_pow2 n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (1000, 1024); (1024, 1024) ]

let argmax_max_min () =
  let a = [| 3.; -1.; 7.; 7.; 0. |] in
  Alcotest.(check int) "argmax first" 2 (Numerics.Array_ops.argmax a);
  check_close "max" 7. (Numerics.Array_ops.max_elt a);
  check_close "min" (-1.) (Numerics.Array_ops.min_elt a)

let dot_product () =
  check_close "dot" 32. (Numerics.Array_ops.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

(* --- FFT --- *)

let fft_matches_naive =
  Tutil.qcheck ~count:50 "fft = naive dft"
    QCheck2.Gen.(pair (int_range 0 6) (int_range 0 100000))
    (fun (log_n, seed) ->
      let n = 1 lsl log_n in
      let rng = Tutil.rng_of_seed seed in
      let re = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:(-1.) ~hi:1.) in
      let im = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:(-1.) ~hi:1.) in
      let want_re, want_im = Numerics.Fft.naive_dft re im in
      let got_re = Array.copy re and got_im = Array.copy im in
      Numerics.Fft.forward got_re got_im;
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          Float.abs (got_re.(i) -. want_re.(i)) > 1e-8
          || Float.abs (got_im.(i) -. want_im.(i)) > 1e-8
        then ok := false
      done;
      !ok)

let fft_roundtrip =
  Tutil.qcheck ~count:50 "inverse . forward = id"
    QCheck2.Gen.(pair (int_range 0 10) (int_range 0 100000))
    (fun (log_n, seed) ->
      let n = 1 lsl log_n in
      let rng = Tutil.rng_of_seed seed in
      let re = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:(-5.) ~hi:5.) in
      let im = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:(-5.) ~hi:5.) in
      let got_re = Array.copy re and got_im = Array.copy im in
      Numerics.Fft.forward got_re got_im;
      Numerics.Fft.inverse got_re got_im;
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          Float.abs (got_re.(i) -. re.(i)) > 1e-9
          || Float.abs (got_im.(i) -. im.(i)) > 1e-9
        then ok := false
      done;
      !ok)

let fft_impulse () =
  let re = [| 1.; 0.; 0.; 0. |] and im = [| 0.; 0.; 0.; 0. |] in
  Numerics.Fft.forward re im;
  Array.iter (fun v -> check_close "re" 1. v) re;
  Array.iter (fun v -> check_close_abs "im" 0. v) im

let fft_rejects_non_pow2 () =
  Alcotest.check_raises "length 3" (Invalid_argument "Fft: length must be a power of two")
    (fun () -> Numerics.Fft.forward (Array.make 3 0.) (Array.make 3 0.))

(* --- Convolution --- *)

let conv_gen =
  QCheck2.Gen.(
    let* n = int_range 1 40 in
    let* m = int_range 1 40 in
    let* seed = int_range 0 100000 in
    let rng = Tutil.rng_of_seed seed in
    let mk k = Array.init k (fun _ -> Prng.Sampler.uniform rng ~lo:(-2.) ~hi:2.) in
    return (mk n, mk m))

let conv_close a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-8 *. Float.max 1. (Float.abs x)) a b

let conv_fft_matches_direct =
  Tutil.qcheck ~count:100 "fft conv = direct conv" conv_gen (fun (a, b) ->
      conv_close (Numerics.Convolution.direct a b) (Numerics.Convolution.fft a b))

let conv_overlap_add_matches_direct =
  Tutil.qcheck ~count:100 "overlap-add conv = direct conv" conv_gen (fun (a, b) ->
      conv_close (Numerics.Convolution.direct a b) (Numerics.Convolution.overlap_add a b))

let conv_auto_matches_direct =
  Tutil.qcheck ~count:100 "auto conv = direct conv" conv_gen (fun (a, b) ->
      conv_close (Numerics.Convolution.direct a b) (Numerics.Convolution.auto a b))

let conv_known_value () =
  let got = Numerics.Convolution.direct [| 1.; 2.; 3. |] [| 0.; 1.; 0.5 |] in
  let want = [| 0.; 1.; 2.5; 4.; 1.5 |] in
  Array.iteri (fun i v -> check_close (Printf.sprintf "c%d" i) want.(i) v) got

let conv_commutative =
  Tutil.qcheck ~count:50 "convolution commutes" conv_gen (fun (a, b) ->
      conv_close (Numerics.Convolution.direct a b) (Numerics.Convolution.direct b a))

let conv_overlap_add_block_sizes () =
  let a = Array.init 100 (fun i -> float_of_int (i mod 7)) in
  let b = [| 1.; -1.; 0.5 |] in
  let want = Numerics.Convolution.direct a b in
  List.iter
    (fun block ->
      let got = Numerics.Convolution.overlap_add ~block a b in
      Alcotest.(check bool) (Printf.sprintf "block %d" block) true (conv_close want got))
    [ 1; 2; 7; 64; 200 ]

let conv_packed_matches_direct =
  Tutil.qcheck ~count:100 "packed conv = direct conv" conv_gen (fun (a, b) ->
      conv_close (Numerics.Convolution.direct a b) (Numerics.Convolution.fft_packed a b))

(* Every strategy against the direct oracle at 1e-9, on operand sizes
   whose padded length n+m−1 straddles a power of two — the boundary
   where the transform plan size, the packed spectrum split, and the
   overlap-add block count all change. *)
let conv_strategies_agree_at_pow2_boundaries () =
  let close want got =
    Array.length want = Array.length got
    && Array.for_all2
         (fun x y -> Float.abs (x -. y) <= 1e-9 *. Float.max 1. (Float.abs x))
         want got
  in
  List.iter
    (fun (n, m) ->
      let rng = Tutil.rng_of_seed ((n * 1009) + m) in
      let mk k = Array.init k (fun _ -> Prng.Sampler.uniform rng ~lo:(-2.) ~hi:2.) in
      let a = mk n and b = mk m in
      let want = Numerics.Convolution.direct a b in
      List.iter
        (fun (name, f) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %dx%d" name n m)
            true
            (close want (f a b)))
        [ ("fft", Numerics.Convolution.fft);
          ("packed", Numerics.Convolution.fft_packed);
          ("overlap-add", fun a b -> Numerics.Convolution.overlap_add a b);
          ("auto", Numerics.Convolution.auto) ])
    [ (63, 2); (64, 2); (65, 2); (63, 63); (64, 64); (65, 65); (127, 3);
      (128, 3); (129, 3); (127, 127); (128, 128); (129, 129); (255, 2);
      (256, 2); (257, 64) ]

(* The _into forms must equal their allocating counterparts when reading
   prefixes of oversized arenas — the exact calling convention of the
   distribution layer. *)
let conv_into_reads_prefixes () =
  let rng = Tutil.rng_of_seed 42 in
  let n = 61 and m = 9 in
  let pad k = Array.init (k + 17) (fun _ -> Prng.Sampler.uniform rng ~lo:(-2.) ~hi:2.) in
  let a = pad n and b = pad m in
  let want =
    Numerics.Convolution.direct (Array.sub a 0 n) (Array.sub b 0 m)
  in
  List.iter
    (fun (name, f) ->
      let out = Array.make (n + m + 30) Float.nan in
      f ~out a n b m;
      let got = Array.sub out 0 (n + m - 1) in
      Alcotest.(check bool) name true (conv_close want got))
    [ ("direct_into", Numerics.Convolution.direct_into);
      ("fft_into", Numerics.Convolution.fft_into);
      ("fft_packed_into", Numerics.Convolution.fft_packed_into);
      ("overlap_add_into", fun ~out a n b m ->
        Numerics.Convolution.overlap_add_into ~out a n b m);
      ("auto_into", Numerics.Convolution.auto_into) ]

(* --- Spline --- *)

let spline_interpolates_knots =
  Tutil.qcheck ~count:100 "spline passes through knots"
    QCheck2.Gen.(pair (int_range 2 30) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let xs =
        Array.init n (fun i -> float_of_int i +. Prng.Sampler.uniform rng ~lo:0. ~hi:0.5)
      in
      let ys = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:(-3.) ~hi:3.) in
      let s = Numerics.Spline.fit ~xs ~ys in
      Array.for_all2 (fun x y -> Float.abs (Numerics.Spline.eval s x -. y) < 1e-9) xs ys)

let spline_walk_matches_eval =
  Tutil.qcheck ~count:100 "cursor walk = eval bitwise"
    QCheck2.Gen.(pair (int_range 2 30) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let xs =
        Array.init n (fun i -> float_of_int i +. Prng.Sampler.uniform rng ~lo:0. ~hi:0.5)
      in
      let ys = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:(-3.) ~hi:3.) in
      let s = Numerics.Spline.fit ~xs ~ys in
      let cur = Numerics.Spline.cursor () in
      (* mostly-increasing scan with deliberate regressions: both the
         linear-advance and the fallback-search paths must match [eval]
         bit for bit *)
      let ok = ref true in
      for k = 0 to 199 do
        let x =
          if k mod 13 = 0 then Prng.Sampler.uniform rng ~lo:(-1.) ~hi:(float_of_int n)
          else (float_of_int k /. 200. *. float_of_int n) -. 0.5
        in
        if
          Int64.bits_of_float (Numerics.Spline.eval_walk s cur x)
          <> Int64.bits_of_float (Numerics.Spline.eval s x)
        then ok := false
      done;
      !ok)

let spline_exact_on_lines =
  Tutil.qcheck ~count:50 "spline reproduces straight lines"
    QCheck2.Gen.(triple (float_range (-2.) 2.) (float_range (-5.) 5.) (int_range 0 1000))
    (fun (slope, intercept, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let xs = Array.init 10 (fun i -> float_of_int i) in
      let ys = Array.map (fun x -> (slope *. x) +. intercept) xs in
      let s = Numerics.Spline.fit ~xs ~ys in
      List.for_all
        (fun _ ->
          let x = Prng.Sampler.uniform rng ~lo:0. ~hi:9. in
          Float.abs (Numerics.Spline.eval s x -. ((slope *. x) +. intercept)) < 1e-9)
        (List.init 20 Fun.id))

let spline_smooth_function_accuracy () =
  let xs = Numerics.Array_ops.linspace 0. Float.pi 21 in
  let ys = Array.map sin xs in
  let s = Numerics.Spline.fit ~xs ~ys in
  List.iter
    (fun x -> check_close_abs ~eps:1e-3 "sin approx" (sin x) (Numerics.Spline.eval s x))
    [ 0.1; 0.7; 1.3; 2.2; 3.0 ]

let spline_clamped_outside () =
  let s = Numerics.Spline.fit ~xs:[| 0.; 1.; 2. |] ~ys:[| 1.; 4.; 9. |] in
  check_close "below" 1. (Numerics.Spline.eval_clamped s (-5.));
  check_close "above" 9. (Numerics.Spline.eval_clamped s 100.)

let spline_rejects_bad_knots () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Numerics.Spline.fit ~xs:[| 0.; 0. |] ~ys:[| 1.; 2. |]);
  expect_invalid (fun () -> Numerics.Spline.fit ~xs:[| 1. |] ~ys:[| 1. |]);
  expect_invalid (fun () -> Numerics.Spline.fit ~xs:[| 0.; 1. |] ~ys:[| 1. |])

let spline_resample_identity () =
  let xs = Numerics.Array_ops.linspace 0. 1. 11 in
  let ys = Array.map (fun x -> x *. x) xs in
  let got = Numerics.Spline.resample ~xs ~ys ~onto:xs in
  Array.iteri (fun i v -> check_close "same grid" ys.(i) v) got

(* --- Integrate --- *)

let simpson_exact_cubics () =
  let f x = (2. *. x *. x *. x) -. (x *. x) +. 3. in
  let exact = (0.5 *. 16.) -. (8. /. 3.) +. 6. in
  check_close "cubic" exact (Numerics.Integrate.simpson ~f ~a:0. ~b:2. ~n:64)

let simpson_vs_trapezoid_convergence () =
  let f x = exp x in
  let exact = exp 1. -. 1. in
  let s = Numerics.Integrate.simpson ~f ~a:0. ~b:1. ~n:16 in
  let xs = Numerics.Array_ops.linspace 0. 1. 17 in
  let t = Numerics.Integrate.trapezoid_sampled ~dx:(1. /. 16.) (Array.map f xs) in
  Alcotest.(check bool) "simpson beats trapezoid" true
    (Float.abs (s -. exact) < Float.abs (t -. exact))

let simpson_sampled_odd_intervals () =
  let ys = [| 0.; 1.; 2.; 3. |] in
  check_close "linear" 4.5 (Numerics.Integrate.simpson_sampled ~dx:1. ys)

let cumulative_matches_total () =
  let ys = [| 1.; 3.; 2.; 5. |] in
  let c = Numerics.Integrate.cumulative ~dx:0.5 ys in
  check_close "starts at 0" 0. c.(0);
  check_close "total" (Numerics.Integrate.trapezoid_sampled ~dx:0.5 ys) c.(3)

let cumulative_monotone_for_positive =
  Tutil.qcheck ~count:100 "cumulative of non-negative samples is monotone"
    QCheck2.Gen.(pair (int_range 2 50) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let ys = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:0. ~hi:3.) in
      let c = Numerics.Integrate.cumulative ~dx:0.1 ys in
      let ok = ref true in
      for i = 1 to n - 1 do
        if c.(i) < c.(i - 1) then ok := false
      done;
      !ok)

(* --- Special --- *)

let erf_known_values () =
  List.iter
    (fun (x, want) ->
      check_close_abs ~eps:2e-7 (Printf.sprintf "erf %g" x) want (Numerics.Special.erf x))
    [ (0., 0.); (0.5, 0.5204998778); (1., 0.8427007929); (2., 0.9953222650);
      (-1., -0.8427007929) ]

let erfc_complement =
  Tutil.qcheck ~count:100 "erf + erfc = 1" QCheck2.Gen.(float_range (-4.) 4.) (fun x ->
      Float.abs (Numerics.Special.erf x +. Numerics.Special.erfc x -. 1.) < 1e-12)

let normal_cdf_symmetry =
  Tutil.qcheck ~count:100 "Φ(x) + Φ(−x) = 1" QCheck2.Gen.(float_range (-5.) 5.) (fun x ->
      Float.abs (Numerics.Special.normal_cdf x +. Numerics.Special.normal_cdf (-.x) -. 1.)
      < 1e-10)

let normal_quantile_roundtrip =
  Tutil.qcheck ~count:100 "Φ(Φ⁻¹(p)) = p" QCheck2.Gen.(float_range 0.001 0.999) (fun p ->
      Float.abs (Numerics.Special.normal_cdf (Numerics.Special.normal_quantile p) -. p)
      < 1e-6)

let normal_quantile_known () =
  check_close_abs ~eps:1e-6 "median" 0. (Numerics.Special.normal_quantile 0.5);
  check_close_abs ~eps:1e-4 "97.5%" 1.959964 (Numerics.Special.normal_quantile 0.975);
  check_close_abs ~eps:1e-4 "1%" (-2.326348) (Numerics.Special.normal_quantile 0.01)

let log_gamma_known () =
  List.iter
    (fun (x, want) ->
      check_close ~eps:1e-10 (Printf.sprintf "lnΓ %g" x) want (Numerics.Special.log_gamma x))
    [ (1., 0.); (2., 0.); (3., log 2.); (5., log 24.); (0.5, log (sqrt Float.pi)) ]

let log_gamma_recurrence =
  Tutil.qcheck ~count:100 "lnΓ(x+1) = lnΓ(x) + ln x" QCheck2.Gen.(float_range 0.1 20.)
    (fun x ->
      Float.abs
        (Numerics.Special.log_gamma (x +. 1.) -. Numerics.Special.log_gamma x -. log x)
      < 1e-9)

let beta_pdf_integrates_to_one () =
  let f = Numerics.Special.beta_pdf ~alpha:2. ~beta:5. in
  check_close ~eps:1e-6 "mass" 1. (Numerics.Integrate.simpson ~f ~a:0. ~b:1. ~n:512)

let gamma_pdf_integrates_to_one () =
  let f = Numerics.Special.gamma_pdf ~shape:3. ~scale:2. in
  check_close ~eps:1e-5 "mass" 1. (Numerics.Integrate.simpson ~f ~a:0. ~b:60. ~n:2048)

let normal_pdf_peak () =
  check_close "peak" (1. /. sqrt (2. *. Float.pi)) (Numerics.Special.normal_pdf 0.)

let betainc_matches_quadrature =
  Tutil.qcheck ~count:50 "betainc = ∫ beta_pdf"
    QCheck2.Gen.(
      triple (float_range 2. 6.) (float_range 2. 6.) (float_range 0.05 0.95))
    (fun (alpha, beta, x) ->
      (* smooth integrands only: near α or β = 1 the density's fractional
         powers defeat Simpson's convergence long before betainc's *)
      let want =
        Numerics.Integrate.simpson
          ~f:(Numerics.Special.beta_pdf ~alpha ~beta)
          ~a:0. ~b:x ~n:4096
      in
      Float.abs (Numerics.Special.betainc ~alpha ~beta x -. want) < 1e-5)

let betainc_symmetry =
  Tutil.qcheck ~count:50 "I_x(a,b) = 1 − I_{1−x}(b,a)"
    QCheck2.Gen.(
      triple (float_range 0.5 8.) (float_range 0.5 8.) (float_range 0. 1.))
    (fun (alpha, beta, x) ->
      Float.abs
        (Numerics.Special.betainc ~alpha ~beta x
        +. Numerics.Special.betainc ~alpha:beta ~beta:alpha (1. -. x)
        -. 1.)
      < 1e-10)

let betainc_endpoints () =
  check_close "at 0" 0. (Numerics.Special.betainc ~alpha:2. ~beta:5. 0.);
  check_close "at 1" 1. (Numerics.Special.betainc ~alpha:2. ~beta:5. 1.);
  (* uniform: I_x(1,1) = x *)
  check_close ~eps:1e-12 "uniform" 0.37 (Numerics.Special.betainc ~alpha:1. ~beta:1. 0.37)

let betainc_inv_roundtrip =
  Tutil.qcheck ~count:50 "betainc (betainc_inv p) = p"
    QCheck2.Gen.(
      triple (float_range 1.1 6.) (float_range 1.1 6.) (float_range 0.001 0.999))
    (fun (alpha, beta, p) ->
      let x = Numerics.Special.betainc_inv ~alpha ~beta p in
      Float.abs (Numerics.Special.betainc ~alpha ~beta x -. p) < 1e-9)

let betainc_inv_median_beta25 () =
  (* median of Beta(2,5) ≈ 0.26445 *)
  check_close_abs ~eps:1e-4 "median" 0.26445
    (Numerics.Special.betainc_inv ~alpha:2. ~beta:5. 0.5)

(* --- Rootfind --- *)

let brent_finds_root =
  Tutil.qcheck ~count:100 "brent solves x³ = c" QCheck2.Gen.(float_range 0.01 50.)
    (fun c ->
      let f x = (x *. x *. x) -. c in
      let root = Numerics.Rootfind.brent ~f ~lo:0. ~hi:10. () in
      Float.abs (root -. Float.cbrt c) < 1e-9)

let bisect_finds_root () =
  let f x = cos x in
  let root = Numerics.Rootfind.bisect ~f ~lo:0. ~hi:3. () in
  check_close_abs ~eps:1e-9 "pi/2" (Float.pi /. 2.) root

let brent_matches_bisect =
  Tutil.qcheck ~count:50 "brent = bisect" QCheck2.Gen.(float_range (-0.9) 0.9)
    (fun target ->
      let f x = tanh x -. target in
      let a = Numerics.Rootfind.brent ~f ~lo:(-5.) ~hi:5. () in
      let b = Numerics.Rootfind.bisect ~f ~lo:(-5.) ~hi:5. () in
      Float.abs (a -. b) < 1e-8)

let rootfind_rejects_bad_bracket () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Rootfind: interval does not bracket a root") (fun () ->
      ignore (Numerics.Rootfind.brent ~f:(fun x -> (x *. x) +. 1.) ~lo:(-1.) ~hi:1. ()))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "numerics"
    [
      ( "array_ops",
        [
          tc "linspace" `Quick linspace_endpoints;
          tc "kahan sum" `Quick kahan_sum_precision;
          tc "next_pow2" `Quick next_pow2_values;
          tc "argmax/max/min" `Quick argmax_max_min;
          tc "dot" `Quick dot_product;
        ] );
      ( "fft",
        [
          fft_matches_naive;
          fft_roundtrip;
          tc "impulse" `Quick fft_impulse;
          tc "rejects non-pow2" `Quick fft_rejects_non_pow2;
        ] );
      ( "convolution",
        [
          conv_fft_matches_direct;
          conv_overlap_add_matches_direct;
          conv_auto_matches_direct;
          conv_packed_matches_direct;
          tc "known value" `Quick conv_known_value;
          conv_commutative;
          tc "overlap-add blocks" `Quick conv_overlap_add_block_sizes;
          tc "pow2 boundaries" `Quick conv_strategies_agree_at_pow2_boundaries;
          tc "into prefixes" `Quick conv_into_reads_prefixes;
        ] );
      ( "spline",
        [
          spline_interpolates_knots;
          spline_walk_matches_eval;
          spline_exact_on_lines;
          tc "smooth accuracy" `Quick spline_smooth_function_accuracy;
          tc "clamped" `Quick spline_clamped_outside;
          tc "bad knots" `Quick spline_rejects_bad_knots;
          tc "resample identity" `Quick spline_resample_identity;
        ] );
      ( "integrate",
        [
          tc "simpson cubic exact" `Quick simpson_exact_cubics;
          tc "simpson beats trapezoid" `Quick simpson_vs_trapezoid_convergence;
          tc "odd intervals" `Quick simpson_sampled_odd_intervals;
          tc "cumulative total" `Quick cumulative_matches_total;
          cumulative_monotone_for_positive;
        ] );
      ( "special",
        [
          tc "erf values" `Quick erf_known_values;
          erfc_complement;
          normal_cdf_symmetry;
          normal_quantile_roundtrip;
          tc "quantile values" `Quick normal_quantile_known;
          tc "log_gamma values" `Quick log_gamma_known;
          log_gamma_recurrence;
          tc "beta pdf mass" `Quick beta_pdf_integrates_to_one;
          tc "gamma pdf mass" `Quick gamma_pdf_integrates_to_one;
          tc "normal pdf peak" `Quick normal_pdf_peak;
          betainc_matches_quadrature;
          betainc_symmetry;
          tc "betainc endpoints" `Quick betainc_endpoints;
          betainc_inv_roundtrip;
          tc "betainc_inv median" `Quick betainc_inv_median_beta25;
        ] );
      ( "rootfind",
        [
          brent_finds_root;
          tc "bisect" `Quick bisect_finds_root;
          brent_matches_bisect;
          tc "bad bracket" `Quick rootfind_rejects_bad_bracket;
        ] );
    ]
