(* Shared helpers for the test suites. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Float.abs (expected -. actual) <= eps *. Float.max 1. (Float.abs expected)) then
    Alcotest.failf "%s: expected %.10g, got %.10g (eps %.1e)" msg expected actual eps

let check_close_abs ?(eps = 1e-9) msg expected actual =
  if not (Float.abs (expected -. actual) <= eps) then
    Alcotest.failf "%s: expected %.10g, got %.10g (abs eps %.1e)" msg expected actual eps

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let rng_of_seed seed = Prng.Xoshiro.create (Int64.of_int seed)

(* Single validity oracle for schedules produced in tests. *)
let check_valid ?(msg = "schedule") sched =
  match Sched.Schedule.validate sched with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid schedule: %s" msg e

(* A random DAG generator for property tests: edge (i, j) with i < j
   present with probability [p]. *)
let random_dag_gen =
  let open QCheck2.Gen in
  let* n = int_range 1 12 in
  let* p = float_range 0.1 0.6 in
  let* seed = int_range 0 10000 in
  let rng = rng_of_seed seed in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.Xoshiro.next_float rng < p then begin
        let volume = Prng.Sampler.uniform rng ~lo:0. ~hi:5. in
        edges := (i, j, volume) :: !edges
      end
    done
  done;
  return (Dag.Graph.make ~n ~edges:!edges)

(* A random (graph, platform, schedule) triple. *)
let random_scheduled_gen =
  let open QCheck2.Gen in
  let* graph = random_dag_gen in
  let* n_procs = int_range 1 4 in
  let* seed = int_range 0 10000 in
  let rng = rng_of_seed (seed + 31337) in
  let platform =
    Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks graph) ~n_procs ()
  in
  let sched = Sched.Random_sched.generate ~rng ~graph ~n_procs in
  check_valid ~msg:"random_scheduled_gen" sched;
  return (graph, platform, sched)
