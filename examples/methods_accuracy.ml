(* Accuracy of the three analytic makespan-distribution methods
   (classical independence sweep, Dodin's series-parallel reduction,
   Spelde's CLT moments) against Monte-Carlo ground truth, across
   uncertainty levels — the §V validation, runnable as a demo.

   Run with:  dune exec examples/methods_accuracy.exe *)

let () =
  let rng = Core.Rng.create 3L in
  let graph = Core.Workload.gauss_elim ~n:8 () in
  let n = Core.Graph.n_tasks graph in
  let platform = Core.Platform.Gen.uniform_minval ~rng ~n_tasks:n ~n_procs:4 () in
  let sched = Core.Heuristics.heft graph platform in
  Printf.printf
    "Gaussian elimination (%d tasks) on 4 procs, HEFT schedule\n\
     KS / CM distances of each analytic method vs 20000 Monte-Carlo realizations\n\n"
    n;
  Printf.printf "%-6s  %-10s  %10s  %10s  %12s  %12s\n" "UL" "method" "KS" "CM" "mean" "std";
  List.iter
    (fun ul ->
      let model = Core.Uncertainty.make ~ul () in
      let emp = Core.Montecarlo.run ~rng ~count:20000 sched platform model in
      let engine = Core.Engine.create ~graph ~platform ~model in
      List.iter
        (fun m ->
          let d = Core.Engine.eval ~backend:(Core.Engine.backend_of_method m) engine sched in
          let ks = Core.Distance.ks (Analytic d) (Sampled emp) in
          let cm = Core.Distance.cm_area (Analytic d) (Sampled emp) in
          Printf.printf "%-6.2f  %-10s  %10.5f  %10.5f  %12.3f  %12.4f\n" ul
            (Core.Makespan_eval.method_name m)
            ks cm (Core.Dist.mean d) (Core.Dist.std d))
        Core.Makespan_eval.all_methods;
      Printf.printf "%-6.2f  %-10s  %10s  %10s  %12.3f  %12.4f\n" ul "montecarlo" "-" "-"
        (Core.Empirical.mean emp) (Core.Empirical.std emp);
      print_newline ())
    [ 1.01; 1.1; 1.5 ];
  print_endline "(paper shape: all three methods stay close to the realizations;";
  print_endline " Spelde's normal approximation is the roughest, classical ≈ Dodin)"
