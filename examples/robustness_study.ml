(* A miniature of the paper's §V–§VI methodology on one case: generate
   hundreds of random schedules, compute all eight metrics for each, and
   print the Pearson correlation matrix in the paper's orientation —
   showing the robustness cluster and the slack anti-correlation emerge.

   Run with:  dune exec examples/robustness_study.exe [n_schedules]  *)

let () =
  let n_schedules =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300
  in
  let rng = Core.Rng.create 12L in
  let graph = Core.Workload.random_dag ~rng ~n:25 () in
  let n_procs = 5 in
  let platform =
    Core.Platform.Gen.cvb ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs ~mu_task:20.
      ~v_task:0.5 ~v_mach:0.5 ()
  in
  let model = Core.Uncertainty.make ~ul:1.05 () in
  Printf.printf "Random DAG: %d tasks, %d procs, UL = 1.05, %d random schedules\n\n"
    (Core.Graph.n_tasks graph) n_procs n_schedules;

  (* one engine for the whole sweep: every schedule below shares its
     duration/communication distribution caches *)
  let engine = Core.Engine.create ~graph ~platform ~model in

  (* calibrate the probabilistic-metric bounds on a small pilot *)
  let schedules = Core.Random_sched.generate_many ~rng ~graph ~n_procs ~count:n_schedules in
  let pilot =
    List.filteri (fun i _ -> i < 15) schedules
    |> List.map (fun s ->
           let a = Core.analyze_with engine s in
           ( a.Core.metrics.Core.Robustness.expected_makespan,
             a.Core.metrics.Core.Robustness.makespan_std ))
  in
  let delta, gamma = Core.Robustness.calibrate_bounds pilot in
  Printf.printf "calibrated bounds: δ = %.4f, γ = %.6f\n\n" delta gamma;

  let rows =
    Array.of_list
      (List.map
         (fun s ->
           Core.Robustness.to_array (Core.Robustness.of_engine ~delta ~gamma engine s))
         schedules)
  in
  (* the paper's plotting orientation: slack and the probabilistic
     metrics flipped so minimizing is always better *)
  let matrix = Core.Experiments.Correlate.matrix rows in
  print_endline "Pearson correlations over the random schedules (inverted orientation):";
  print_string (Stats.Matrix_render.render ~labels:Core.Robustness.labels matrix);

  print_endline "\nReadings (compare with the paper's Figs. 3-6):";
  Printf.printf "  mk-std vs entropy   : %+.3f  (paper ≈ +0.996)\n" matrix.(1).(2);
  Printf.printf "  mk-std vs lateness  : %+.3f  (paper ≈ +0.999)\n" matrix.(1).(5);
  Printf.printf "  mk-std vs abs-prob  : %+.3f  (paper ≈ +0.982)\n" matrix.(1).(6);
  Printf.printf "  makespan vs mk-std  : %+.3f  (paper ≈ +0.767)\n" matrix.(0).(1);
  Printf.printf "  makespan vs slack   : %+.3f  (paper ≈ -0.385)\n" matrix.(0).(3);
  Printf.printf "  slack vs slack-std  : %+.3f  (paper ≈ -0.873)\n" matrix.(3).(4)
