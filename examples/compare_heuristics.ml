(* Compare every registered scheduling heuristic (HEFT, CPOP, DLS, BIL,
   Hyb.BMCT, PEFT, HEFT-LA, IHEFT) and the best of a batch of random
   schedules across three workload families, reporting both the
   performance metric (expected makespan) and the key robustness metric
   (makespan standard deviation).

   Run with:  dune exec examples/compare_heuristics.exe *)

let heuristics = Core.Heuristics.registry

let evaluate name sched platform model =
  let a = Core.analyze sched platform model in
  let m = a.Core.metrics in
  Printf.printf "  %-12s  E(M) %9.2f   σ(M) %7.3f   slack %9.2f   lateness %7.3f\n" name
    m.Core.Robustness.expected_makespan m.Core.Robustness.makespan_std
    m.Core.Robustness.avg_slack m.Core.Robustness.avg_lateness;
  m.Core.Robustness.expected_makespan

let study ~title ~graph ~n_procs ~platform_of =
  let rng = Core.Rng.create 7L in
  let platform = platform_of rng (Core.Graph.n_tasks graph) in
  let model = Core.Uncertainty.make ~ul:1.1 () in
  Printf.printf "\n%s (%d tasks, %d procs, UL = 1.1)\n" title (Core.Graph.n_tasks graph)
    n_procs;
  List.iter (fun (name, h) -> ignore (evaluate name (h graph platform) platform model)) heuristics;
  (* best expected makespan among 50 random schedules, for perspective *)
  let randoms = Core.Random_sched.generate_many ~rng ~graph ~n_procs ~count:50 in
  let best =
    List.fold_left
      (fun acc s ->
        let a = Core.analyze s platform model in
        if a.Core.metrics.Core.Robustness.expected_makespan
           < (match acc with None -> infinity | Some (m, _) -> m)
        then Some (a.Core.metrics.Core.Robustness.expected_makespan, s)
        else acc)
      None randoms
  in
  match best with
  | Some (_, s) -> ignore (evaluate "best-random" s platform model)
  | None -> ()

let () =
  print_endline "Heuristic comparison: makespan-centric schedulers under uncertainty";
  print_endline "(paper shape: the heuristics win on E(M) and usually on σ(M))";
  study ~title:"Tiled Cholesky (4x4 tiles)"
    ~graph:(Core.Workload.cholesky ~tiles:4 ())
    ~n_procs:4
    ~platform_of:(fun rng n -> Core.Platform.Gen.uniform_minval ~rng ~n_tasks:n ~n_procs:4 ());
  study ~title:"Gaussian elimination (n = 8)"
    ~graph:(Core.Workload.gauss_elim ~n:8 ())
    ~n_procs:4
    ~platform_of:(fun rng n -> Core.Platform.Gen.uniform_minval ~rng ~n_tasks:n ~n_procs:4 ());
  let rng0 = Core.Rng.create 99L in
  study ~title:"Random layered DAG (30 tasks, CVB platform)"
    ~graph:(Core.Workload.random_dag ~rng:rng0 ~n:30 ())
    ~n_procs:8
    ~platform_of:(fun rng n ->
      Core.Platform.Gen.cvb ~rng ~n_tasks:n ~n_procs:8 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 ())
