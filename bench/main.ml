(* Benchmark & reproduction harness.

   Running `dune exec bench/main.exe` does two things:

   1. Regenerates every table/figure of the paper (Figs. 1-9 plus the
      §V/§VII in-text results) at the ambient REPRO_SCALE — defaulting to
      "smoke" here so the whole run stays in the minutes range; set
      REPRO_SCALE=small or =full for higher-fidelity sweeps (the `repro`
      binary defaults to "small").

   2. Times, with Bechamel, one kernel per figure — the computational
      core that regenerates it — plus the substrate kernels they are
      built from (FFT convolution, distribution sum/max, Monte-Carlo
      batches, the scheduling heuristics, series-parallel reduction). *)

open Bechamel
open Toolkit
module E = Experiments

let scale =
  match Sys.getenv_opt "REPRO_SCALE" with
  | Some _ -> E.Scale.of_env ()
  | None -> E.Scale.smoke

(* ------------------------------------------------------------------ *)
(* Part 1: figure reproduction                                          *)
(* ------------------------------------------------------------------ *)

let reproduce () =
  let sep title =
    Printf.printf "\n================ %s ================\n\n%!" title
  in
  Printf.printf "Reproduction at scale %S (schedules /%d, Monte-Carlo /%d)\n%!"
    scale.E.Scale.name scale.E.Scale.schedule_divisor scale.E.Scale.mc_divisor;
  sep "Fig. 1";
  print_string (E.Fig1.render (E.Fig1.run ~scale ()));
  sep "Fig. 2";
  print_string (E.Fig2.render (E.Fig2.run ~scale ()));
  sep "Fig. 3";
  print_string (E.Fig_corr.render (E.Fig_corr.run ~scale E.Fig_corr.fig3));
  sep "Fig. 4";
  print_string (E.Fig_corr.render (E.Fig_corr.run ~scale E.Fig_corr.fig4));
  sep "Fig. 5";
  print_string (E.Fig_corr.render (E.Fig_corr.run ~scale E.Fig_corr.fig5));
  sep "Fig. 6 (+ §VII in-text)";
  let fig6 = E.Fig6.run ~scale () in
  print_string (E.Fig6.render fig6);
  print_newline ();
  print_string (E.Intext.render_rel_prob (E.Intext.rel_prob_vs_std fig6.E.Fig6.results));
  sep "Fig. 7";
  print_string (E.Fig7.render (E.Fig7.run ()));
  sep "Fig. 8";
  print_string (E.Fig8.render (E.Fig8.run ()));
  sep "Fig. 9";
  print_string (E.Fig9.render (E.Fig9.run ()));
  sep "In-text: evaluation methods vs Monte Carlo";
  print_string (E.Intext.render_methods (E.Intext.methods_vs_mc ~scale ()));
  sep "Extensions (§VIII future work)";
  print_string
    (E.Ablation.render_correlation (E.Ablation.correlation_under_variable_ul ~scale ()));
  print_newline ();
  print_string (E.Ablation.render_shapes (E.Ablation.cluster_under_shapes ~scale ()));
  print_newline ();
  print_string (E.Ablation.render_tradeoff (E.Ablation.robust_heft_tradeoff ()));
  print_newline ();
  print_string (E.Ablation.render_pareto (E.Ablation.pareto_front_study ~scale ()))

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel kernels                                             *)
(* ------------------------------------------------------------------ *)

(* shared fixtures, built once *)
let model = Workloads.Stochastify.make ~ul:1.1 ()

let fixture kind n_target n_procs ul =
  let case = E.Case.make ~kind ~n_target ~n_procs ~ul () in
  let inst = E.Case.instantiate case in
  let rng = Prng.Xoshiro.create 99L in
  let sched = Sched.Random_sched.generate ~rng ~graph:inst.E.Case.graph ~n_procs in
  (inst, sched)

let cholesky10 = lazy (fixture E.Case.Cholesky 10 3 1.01)
let random30 = lazy (fixture E.Case.Random_graph 30 8 1.01)
let gauss103 = lazy (fixture E.Case.Gauss_elim 103 16 1.1)

let metric_vector (inst, sched) =
  Metrics.Robustness.to_array
    (Metrics.Robustness.of_schedule sched inst.E.Case.platform inst.E.Case.model)

let precomputed_rows =
  lazy
    (let inst, _ = Lazy.force cholesky10 in
     let rng = Prng.Xoshiro.create 4L in
     let scheds =
       Sched.Random_sched.generate_many ~rng ~graph:inst.E.Case.graph ~n_procs:3 ~count:64
     in
     Array.of_list
       (List.map
          (fun s ->
            Metrics.Robustness.to_array
              (Metrics.Robustness.of_schedule s inst.E.Case.platform inst.E.Case.model))
          scheds))

let special = lazy (Distribution.Family.special ())

(* engine-vs-legacy fixtures: a batch of schedules of ONE case, the
   usage pattern of the experiment sweeps (the engine is created once per
   case and amortizes its distribution caches across the batch) *)
let batch_size = 8

let sched_batch =
  lazy
    (let inst, _ = Lazy.force random30 in
     let rng = Prng.Xoshiro.create 31L in
     let scheds =
       Sched.Random_sched.generate_many ~rng ~graph:inst.E.Case.graph ~n_procs:8
         ~count:batch_size
     in
     (inst, Array.of_list scheds))

let shared_engine =
  lazy
    (let inst, _ = Lazy.force random30 in
     Makespan.Engine.create ~graph:inst.E.Case.graph ~platform:inst.E.Case.platform
       ~model:inst.E.Case.model)

(* incremental-session fixture: a warm session over the first schedule
   of the random30 batch plus a small-cone single move — the last exit
   task reassigned to the next processor (appending a sink is always
   acyclic, and its cone stays small: the task itself plus the
   disjunctive tail of the target row) *)
let reeval_fixture =
  lazy
    (let inst, _ = Lazy.force random30 in
     let _, scheds = Lazy.force sched_batch in
     let sched = scheds.(0) in
     let session = Makespan.Engine.start_session (Lazy.force shared_engine) sched in
     let exits = Dag.Graph.exits inst.E.Case.graph in
     let moved = exits.(Array.length exits - 1) in
     let to_ = (sched.Sched.Schedule.proc_of.(moved) + 1) mod 8 in
     ignore (Makespan.Engine.reevaluate ~commit:false session ~moved ~to_);
     (session, moved, to_))

let mc_batch fx count =
  let inst, sched = fx in
  Makespan.Montecarlo.realizations ~domains:1 ~rng:(Prng.Xoshiro.create 7L) ~count sched
    inst.E.Case.platform inst.E.Case.model

(* one Test.make per table/figure *)
let figure_tests =
  [
    Test.make ~name:"fig1:classical-vs-mc-ks"
      (Staged.stage (fun () ->
           let inst, sched = Lazy.force cholesky10 in
           let d = Makespan.Classic.run sched inst.E.Case.platform model in
           let samples = mc_batch (Lazy.force cholesky10) 500 in
           ignore
             (Stats.Distance.ks (Analytic d)
                (Sampled (Distribution.Empirical.of_samples samples)))));
    Test.make ~name:"fig2:empirical-density"
      (Staged.stage (fun () ->
           let samples = mc_batch (Lazy.force cholesky10) 1000 in
           let e = Distribution.Empirical.of_samples samples in
           ignore (Distribution.Empirical.to_dist e)));
    Test.make ~name:"fig3:metric-vector-cholesky10"
      (Staged.stage (fun () -> ignore (metric_vector (Lazy.force cholesky10))));
    Test.make ~name:"fig4:metric-vector-random30"
      (Staged.stage (fun () -> ignore (metric_vector (Lazy.force random30))));
    Test.make ~name:"fig5:metric-vector-gauss103"
      (Staged.stage (fun () -> ignore (metric_vector (Lazy.force gauss103))));
    Test.make ~name:"fig6:pearson-matrix-8x8"
      (Staged.stage (fun () -> ignore (E.Correlate.matrix (Lazy.force precomputed_rows))));
    Test.make ~name:"fig7:special-distribution"
      (Staged.stage (fun () ->
           let d = Distribution.Family.special () in
           ignore (Distribution.Dist.mean d, Distribution.Dist.std d)));
    Test.make ~name:"fig8:self-sum-plus-ks"
      (Staged.stage (fun () ->
           let s = Lazy.force special in
           let sum = Distribution.Dist.add s s in
           let n =
             Distribution.Family.normal ~mean:(Distribution.Dist.mean sum)
               ~std:(Distribution.Dist.std sum) ()
           in
           ignore (Stats.Distance.ks (Analytic sum) (Analytic n))));
    Test.make ~name:"fig9:four-join-schedules"
      (Staged.stage (fun () -> ignore (E.Fig9.run ~n_tasks:8 ())));
    Test.make ~name:"intext:relprob-pearson"
      (Staged.stage (fun () ->
           let rows = Lazy.force precomputed_rows in
           let xs = Array.map (fun r -> r.(0) /. Float.max 1e-12 r.(7)) rows in
           let ys = Array.map (fun r -> r.(1)) rows in
           ignore (Stats.Correlation.pearson xs ys)));
  ]

(* engine vs legacy: same work — full metric vectors for a batch of
   schedules of one case — through the shared engine vs the uncached
   per-schedule path *)
let engine_tests =
  [
    Test.make ~name:"engine:metrics-batch8"
      (Staged.stage (fun () ->
           let _, scheds = Lazy.force sched_batch in
           let engine = Lazy.force shared_engine in
           Array.iter
             (fun s ->
               ignore
                 (Metrics.Robustness.to_array (Metrics.Robustness.of_engine engine s)))
             scheds));
    Test.make ~name:"legacy:metrics-batch8"
      (Staged.stage (fun () ->
           let inst, scheds = Lazy.force sched_batch in
           Array.iter
             (fun s ->
               ignore
                 (Metrics.Robustness.to_array
                    (Metrics.Robustness.of_schedule s inst.E.Case.platform
                       inst.E.Case.model)))
             scheds));
    Test.make ~name:"engine:classical-batch8"
      (Staged.stage (fun () ->
           let _, scheds = Lazy.force sched_batch in
           let engine = Lazy.force shared_engine in
           Array.iter (fun s -> ignore (Makespan.Engine.eval engine s)) scheds));
    Test.make ~name:"legacy:classical-batch8"
      (Staged.stage (fun () ->
           let inst, scheds = Lazy.force sched_batch in
           Array.iter
             (fun s ->
               ignore (Makespan.Classic.run s inst.E.Case.platform inst.E.Case.model))
             scheds));
  ]

(* telemetry overhead: the identical warm-cache engine eval with sinks
   off, metrics on, and tracing on. The Obs contract is that the off
   state costs one atomic load per probe, so "obs:eval-sinks-off"
   should stay within noise (< 2%) of the untouched baseline. *)
(* a small warm-cache fixture: per-run cost is tens of µs, so Bechamel
   gets thousands of samples inside its quota and the ±% columns in
   BENCH_obs.json measure probe cost rather than run-to-run noise *)
let obs_fixture =
  lazy
    (let inst, sched = Lazy.force cholesky10 in
     let engine =
       Makespan.Engine.create ~graph:inst.E.Case.graph ~platform:inst.E.Case.platform
         ~model:inst.E.Case.model
     in
     ignore (Makespan.Engine.eval engine sched);
     (engine, sched))

let eval_batch () =
  let engine, sched = Lazy.force obs_fixture in
  ignore (Makespan.Engine.eval engine sched)

let with_sinks ~metrics ~spans f () =
  Obs.Metrics.set_enabled metrics;
  Obs.Span.set_enabled spans;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Span.set_enabled false)
    f

let obs_tests =
  [
    Test.make ~name:"obs:eval-baseline" (Staged.stage eval_batch);
    Test.make ~name:"obs:eval-sinks-off"
      (Staged.stage (with_sinks ~metrics:false ~spans:false eval_batch));
    Test.make ~name:"obs:eval-metrics-on"
      (Staged.stage (with_sinks ~metrics:true ~spans:false eval_batch));
    Test.make ~name:"obs:eval-trace-on"
      (Staged.stage (with_sinks ~metrics:true ~spans:true eval_batch));
  ]

(* substrate kernels *)
let substrate_tests =
  let u = Distribution.Family.uncertain ~ul:1.1 20. in
  [
    Test.make ~name:"substrate:fft-conv-256"
      (let a = Array.init 256 (fun i -> sin (float_of_int i)) in
       Staged.stage (fun () -> ignore (Numerics.Convolution.fft a a)));
    Test.make ~name:"substrate:dist-add"
      (Staged.stage (fun () -> ignore (Distribution.Dist.add u u)));
    Test.make ~name:"substrate:dist-max"
      (Staged.stage (fun () -> ignore (Distribution.Dist.max_indep u u)));
    Test.make ~name:"substrate:mc-100-realizations"
      (Staged.stage (fun () -> ignore (mc_batch (Lazy.force cholesky10) 100)));
    Test.make ~name:"substrate:heft"
      (Staged.stage (fun () ->
           let inst, _ = Lazy.force random30 in
           ignore (Sched.Heft.schedule inst.E.Case.graph inst.E.Case.platform)));
    Test.make ~name:"substrate:bil"
      (Staged.stage (fun () ->
           let inst, _ = Lazy.force random30 in
           ignore (Sched.Bil.schedule inst.E.Case.graph inst.E.Case.platform)));
    Test.make ~name:"substrate:bmct"
      (Staged.stage (fun () ->
           let inst, _ = Lazy.force random30 in
           ignore (Sched.Bmct.schedule inst.E.Case.graph inst.E.Case.platform)));
    Test.make ~name:"substrate:random-schedule"
      (let rng = Prng.Xoshiro.create 1L in
       Staged.stage (fun () ->
           let inst, _ = Lazy.force random30 in
           ignore (Sched.Random_sched.generate ~rng ~graph:inst.E.Case.graph ~n_procs:8)));
    Test.make ~name:"substrate:dodin-reduce"
      (Staged.stage (fun () ->
           let inst, sched = Lazy.force cholesky10 in
           ignore (Makespan.Dodin.run sched inst.E.Case.platform model)));
    Test.make ~name:"substrate:slack"
      (Staged.stage (fun () ->
           let inst, sched = Lazy.force gauss103 in
           ignore (Sched.Slack.compute sched inst.E.Case.platform inst.E.Case.model)));
  ]

(* Scheduler-framework overhead: the pre-refactor monolithic HEFT,
   inlined verbatim from the seed tree, raced against the parameterized
   Components/List_scheduler recomposition (plus one kernel per registry
   entry). The acceptance bound on the refactor is framework-HEFT within
   5% of this baseline; BENCH_sched.json records the comparison. *)
module Legacy_heft = struct
  let average_weights graph platform =
    let mean_tau = Platform.mean_tau platform in
    let mean_latency = Platform.mean_latency platform in
    let m = Platform.n_procs platform in
    let collapse v =
      let row = Array.init m (fun p -> Platform.etc platform ~task:v ~proc:p) in
      Array.fold_left ( +. ) 0. row /. float_of_int m
    in
    let edge u v =
      match Dag.Graph.volume graph ~src:u ~dst:v with
      | Some volume -> mean_latency +. (volume *. mean_tau)
      | None -> 0.
    in
    { Dag.Levels.task = collapse; edge }

  let rank_order graph platform =
    let ranks = Dag.Levels.bottom_levels graph (average_weights graph platform) in
    let tasks = Array.init (Dag.Graph.n_tasks graph) (fun i -> i) in
    Array.sort
      (fun a b ->
        match Float.compare ranks.(b) ranks.(a) with 0 -> Int.compare a b | c -> c)
      tasks;
    tasks

  type slot = { s_start : float; s_finish : float; s_task : int }

  type t = {
    graph : Dag.Graph.t;
    platform : Platform.t;
    mutable slots : slot list array;
    placed_proc : int array;
    placed_finish : float array;
  }

  let create graph platform =
    let n = Dag.Graph.n_tasks graph in
    {
      graph;
      platform;
      slots = Array.make (Platform.n_procs platform) [];
      placed_proc = Array.make n (-1);
      placed_finish = Array.make n 0.;
    }

  let ready_time t ~task ~proc =
    let acc = ref 0. in
    Array.iter
      (fun (p, volume) ->
        let arrival =
          t.placed_finish.(p)
          +. Platform.comm_time t.platform ~src:t.placed_proc.(p) ~dst:proc ~volume
        in
        if arrival > !acc then acc := arrival)
      (Dag.Graph.preds t.graph task);
    !acc

  let find_slot slots ~ready ~dur =
    let rec scan candidate = function
      | [] -> candidate
      | { s_start; s_finish; _ } :: rest ->
        if candidate +. dur <= s_start then candidate
        else scan (Float.max candidate s_finish) rest
    in
    scan ready slots

  let eft t ~task ~proc =
    let ready = ready_time t ~task ~proc in
    let dur = Platform.etc t.platform ~task ~proc in
    let start = find_slot t.slots.(proc) ~ready ~dur in
    (start, start +. dur)

  let place t ~task ~proc =
    let start, finish = eft t ~task ~proc in
    t.placed_proc.(task) <- proc;
    t.placed_finish.(task) <- finish;
    let rec insert = function
      | [] -> [ { s_start = start; s_finish = finish; s_task = task } ]
      | slot :: rest when slot.s_start < start -> slot :: insert rest
      | slots -> { s_start = start; s_finish = finish; s_task = task } :: slots
    in
    t.slots.(proc) <- insert t.slots.(proc)

  let to_schedule t =
    let order =
      Array.map (fun slots -> Array.of_list (List.map (fun s -> s.s_task) slots)) t.slots
    in
    Sched.Schedule.make ~graph:t.graph ~n_procs:(Platform.n_procs t.platform)
      ~proc_of:(Array.copy t.placed_proc) ~order

  let schedule graph platform =
    let state = create graph platform in
    let m = Platform.n_procs platform in
    Array.iter
      (fun task ->
        let best_proc = ref 0 and best_finish = ref infinity in
        for proc = 0 to m - 1 do
          let _, finish = eft state ~task ~proc in
          if finish < !best_finish then begin
            best_finish := finish;
            best_proc := proc
          end
        done;
        place state ~task ~proc:!best_proc)
      (rank_order graph platform);
    to_schedule state
end

let sched_tests =
  let on_random30 name run =
    Test.make ~name
      (Staged.stage (fun () ->
           let inst, _ = Lazy.force random30 in
           ignore (run inst.E.Case.graph inst.E.Case.platform)))
  in
  on_random30 "sched:heft-legacy" Legacy_heft.schedule
  :: List.map
       (fun e -> on_random30 ("sched:" ^ e.Sched.Registry.name) e.Sched.Registry.run)
       Sched.Registry.entries

(* distribution/convolution/pool kernels: the zero-allocation hot layer.
   These run both in the full bench and in `--perf-smoke` (the CI step
   that writes BENCH_dist.json without reproducing every figure). *)
let uncertain = lazy (Distribution.Family.uncertain ~ul:1.1 20.)

(* a wide partial like the mid-sweep completion distributions: ~12× the
   support of one operand, so summing one more operand takes the k-point
   path *)
let wide_partial =
  lazy
    (let u = Lazy.force uncertain in
     let d = ref u in
     for _ = 1 to 12 do
       d := Distribution.Dist.add !d u
     done;
     !d)

let dist_tests =
  [
    Test.make ~name:"dist:add-full-64x64"
      (Staged.stage (fun () ->
           let u = Lazy.force uncertain in
           ignore (Distribution.Dist.add u u)));
    Test.make ~name:"dist:add-kpoint"
      (Staged.stage (fun () ->
           let w = Lazy.force wide_partial and u = Lazy.force uncertain in
           ignore (Distribution.Dist.add w u)));
    Test.make ~name:"dist:max-indep-64x64"
      (Staged.stage (fun () ->
           let u = Lazy.force uncertain in
           ignore
             (Distribution.Dist.max_indep u (Distribution.Dist.shift u 2.))));
    Test.make ~name:"dist:trim-64"
      (Staged.stage (fun () ->
           let w = Lazy.force wide_partial in
           ignore (Distribution.Dist.trim w)));
    Test.make ~name:"dist:resample-64"
      (Staged.stage (fun () ->
           let u = Lazy.force uncertain in
           ignore (Distribution.Dist.resample ~points:64 u)));
    Test.make ~name:"dist:mean-std"
      (Staged.stage (fun () ->
           let w = Lazy.force wide_partial in
           ignore (Distribution.Dist.mean w +. Distribution.Dist.std w)));
    (* the direct-tier sum (64×64 ≤ the 4096-cell direct cutoff) runs on
       unboxed floatarray work buffers; this kernel is that tier's
       end-to-end cost — sample, flat direct convolution, grid rebuild *)
    Test.make ~name:"dist:add-unboxed"
      (Staged.stage (fun () ->
           let u = Lazy.force uncertain in
           ignore (Distribution.Dist.add u u)));
    (* a 12-sum chain under Moment mode: past depth 8 every further sum
       collapses to the CLT normal (moment arithmetic + one 64-point
       normal sampling) instead of a convolution *)
    Test.make ~name:"conv:moment-chain"
      (Staged.stage (fun () ->
           let u = Lazy.force uncertain in
           Distribution.Dist.set_chain_mode (Distribution.Dist.Moment 8);
           Fun.protect
             ~finally:(fun () ->
               Distribution.Dist.set_chain_mode Distribution.Dist.Exact)
             (fun () ->
               let d = ref u in
               for _ = 1 to 12 do
                 d := Distribution.Dist.add !d u
               done;
               ignore !d)));
    (* the identical 12-sum chain on the exact path, for the ratio *)
    Test.make ~name:"conv:exact-chain"
      (Staged.stage (fun () ->
           let u = Lazy.force uncertain in
           let d = ref u in
           for _ = 1 to 12 do
             d := Distribution.Dist.add !d u
           done;
           ignore !d));
  ]

(* single-move incremental re-evaluation on the warm session; compare
   against the full warm eval measured as live_classical_eval below *)
let reeval_tests =
  [
    Test.make ~name:"engine:reeval-1move"
      (Staged.stage (fun () ->
           let session, moved, to_ = Lazy.force reeval_fixture in
           ignore (Makespan.Engine.reevaluate ~commit:false session ~moved ~to_)));
  ]

(* robustness-aware search: one short annealing run per Bechamel run (the
   whole probe/accept/frontier loop, sessions included) plus the raw swap
   probe on a warm session. BENCH_search.json turns the first into the
   moves/sec headline; the incremental share comes from one deterministic
   run measured at write time, not from timing. *)
let search_steps_per_run = 32

let heft_init inst =
  match Sched.Registry.parse "HEFT" with
  | Ok e -> e.Sched.Registry.run inst.E.Case.graph inst.E.Case.platform
  | Error e -> failwith e

let search_engine =
  lazy
    (let inst, _ = Lazy.force random30 in
     Makespan.Engine.create ~graph:inst.E.Case.graph ~platform:inst.E.Case.platform
       ~model:inst.E.Case.model)

(* warm session + one precomputed feasible swap, the swap analogue of
   reeval_fixture *)
let swap_fixture =
  lazy
    (let _, scheds = Lazy.force sched_batch in
     let sched = scheds.(0) in
     let session = Makespan.Engine.start_session (Lazy.force search_engine) sched in
     let rng = Prng.Xoshiro.create 17L in
     let swap =
       match Sched.Neighbor.random_swap ~rng sched with
       | Some s -> s
       | None -> failwith "bench: no feasible swap on random30"
     in
     ignore
       (Makespan.Engine.reevaluate_swap ~commit:false session ~a:swap.Sched.Neighbor.a
          ~b:swap.Sched.Neighbor.b);
     (session, swap))

let search_tests =
  [
    Test.make ~name:"search:probe-swap"
      (Staged.stage (fun () ->
           let session, swap = Lazy.force swap_fixture in
           ignore
             (Makespan.Engine.reevaluate_swap ~commit:false session
                ~a:swap.Sched.Neighbor.a ~b:swap.Sched.Neighbor.b)));
    Test.make ~name:"search:anneal-32step"
      (Staged.stage (fun () ->
           let inst, _ = Lazy.force random30 in
           let engine = Lazy.force search_engine in
           let init = heft_init inst in
           ignore
             (Search.Anneal.run ~engine ~init
                { Search.Anneal.default with steps = search_steps_per_run; seed = 9L })));
  ]

let conv_tests =
  let mk n = Array.init n (fun i -> 1. +. sin (float_of_int i)) in
  let a512 = mk 512 and b512 = mk 512 in
  let long = mk 2048 and kernel = mk 17 in
  let out = Array.make 4096 0. in
  [
    Test.make ~name:"conv:direct-512x512"
      (Staged.stage (fun () ->
           Numerics.Convolution.direct_into ~out a512 512 b512 512));
    Test.make ~name:"conv:fft-512x512"
      (Staged.stage (fun () -> Numerics.Convolution.fft_into ~out a512 512 b512 512));
    Test.make ~name:"conv:packed-512x512"
      (Staged.stage (fun () ->
           Numerics.Convolution.fft_packed_into ~out a512 512 b512 512));
    Test.make ~name:"conv:overlap-add-2048x17"
      (Staged.stage (fun () ->
           Numerics.Convolution.overlap_add_into ~out long 2048 kernel 17));
  ]

let bench_pool = lazy (Parallel.Pool.create ~domains:2 ())

let pool_tests =
  [
    Test.make ~name:"pool:persistent-run32"
      (Staged.stage (fun () ->
           Parallel.Pool.run ~pool:(Lazy.force bench_pool) ~chunks:32 (fun c ->
               ignore (Sys.opaque_identity (c * c)))));
    Test.make ~name:"pool:oneshot-run32"
      (Staged.stage (fun () ->
           Parallel.Pool.run ~domains:2 ~chunks:32 (fun c ->
               ignore (Sys.opaque_identity (c * c)))));
  ]

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns > 1e9 then Printf.sprintf "%8.3f  s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.3f µs" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

let run_kernels cfg tests =
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> Float.nan
          in
          Printf.printf "%-36s  %14s\n%!" (Test.Elt.name elt) (pretty_ns ns);
          (Test.Elt.name elt, ns))
        (Test.elements test))
    tests

let run_benchmarks () =
  Printf.printf "\n================ Bechamel kernels ================\n\n";
  Printf.printf "%-36s  %14s\n" "kernel" "time/run";
  Printf.printf "%s\n" (String.make 52 '-');
  let figures =
    run_kernels
      (Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None ())
      (figure_tests @ engine_tests @ substrate_tests @ sched_tests @ dist_tests
     @ conv_tests @ pool_tests @ reeval_tests @ search_tests)
  in
  (* the obs kernels measure overheads expected to sit near zero, so
     they get a longer quota and GC stabilization to push sampling noise
     below the effect we are looking for *)
  let obs =
    run_kernels
      (Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.5) ~stabilize:true ~kde:None ())
      obs_tests
  in
  figures @ obs

(* BENCH_engine.json: the engine-vs-legacy record asked for by CI/review.
   Hand-rolled JSON — the project deliberately has no JSON dependency. *)
let write_bench_json results =
  let json_field (name, ns) =
    Printf.sprintf "    { \"name\": %S, \"ns\": %s }" name
      (if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns)
  in
  let speedup =
    match
      ( List.assoc_opt "engine:metrics-batch8" results,
        List.assoc_opt "legacy:metrics-batch8" results )
    with
    | Some e, Some l when e > 0. && Float.is_finite e && Float.is_finite l ->
      Printf.sprintf "%.3f" (l /. e)
    | _ -> "null"
  in
  let oc = open_out "BENCH_engine.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"unit\": \"ns/run\",\n\
    \  \"engine_speedup_metrics_batch8\": %s,\n\
    \  \"kernels\": [\n%s\n  ]\n\
     }\n"
    scale.E.Scale.name speedup
    (String.concat ",\n" (List.map json_field results));
  close_out oc;
  Printf.printf "\n[wrote BENCH_engine.json]\n%!"

(* BENCH_obs.json: telemetry overhead record. "overhead_sinks_off_pct"
   compares flag-toggling-off against the untouched baseline eval and is
   the figure the < 2% acceptance bound applies to; the *_on columns are
   relative to sinks-off. *)
let write_obs_json results =
  let get name =
    match List.assoc_opt name results with
    | Some ns when Float.is_finite ns && ns > 0. -> Some ns
    | _ -> None
  in
  let ns_field name =
    match get name with Some ns -> Printf.sprintf "%.3f" ns | None -> "null"
  in
  let pct_vs base name =
    match (get base, get name) with
    | Some b, Some a -> Printf.sprintf "%.2f" ((a -. b) /. b *. 100.)
    | _ -> "null"
  in
  (* the spans/counters accumulated while benching are scratch: clear
     them, and exercise the per-engine reset while we are at it *)
  Makespan.Engine.reset_stats (Lazy.force shared_engine);
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"unit\": \"ns/run\",\n\
    \  \"eval_baseline_ns\": %s,\n\
    \  \"eval_sinks_off_ns\": %s,\n\
    \  \"eval_metrics_on_ns\": %s,\n\
    \  \"eval_trace_on_ns\": %s,\n\
    \  \"overhead_sinks_off_pct\": %s,\n\
    \  \"overhead_metrics_on_pct\": %s,\n\
    \  \"overhead_trace_on_pct\": %s\n\
     }\n"
    scale.E.Scale.name
    (ns_field "obs:eval-baseline")
    (ns_field "obs:eval-sinks-off")
    (ns_field "obs:eval-metrics-on")
    (ns_field "obs:eval-trace-on")
    (pct_vs "obs:eval-baseline" "obs:eval-sinks-off")
    (pct_vs "obs:eval-sinks-off" "obs:eval-metrics-on")
    (pct_vs "obs:eval-sinks-off" "obs:eval-trace-on");
  close_out oc;
  Printf.printf "[wrote BENCH_obs.json]\n%!"

(* BENCH_dist.json: the before/after record of the zero-allocation kernel
   layer. The headline speedup is the committed interleaved A/B probe
   (seed binary and this binary alternated on the same machine — the only
   sound protocol on a host with drifting background load); the kernels
   array and the live eval numbers are re-measured on every run. *)
let seed_baseline_ns_per_schedule = 23_015_611.
let seed_baseline_minor_words_per_schedule = 4_024_988.
let after_probe_ns_per_schedule = 11_091_376.

(* live warm-engine classical eval: ns and minor words per schedule on
   the same random30/p8 batch the engine benches use *)
let measure_live_eval () =
  let _, scheds = Lazy.force sched_batch in
  let engine = Lazy.force shared_engine in
  let eval_all () =
    Array.iter (fun s -> ignore (Makespan.Engine.eval engine s)) scheds
  in
  eval_all ();
  let iters = 5 in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    eval_all ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let per = float_of_int (iters * Array.length scheds) in
  (dt *. 1e9 /. per, dw /. per)

(* live warm-session single-move re-evaluation: ns and minor words per
   re-evaluated schedule, same case and protocol as [measure_live_eval]
   (40 warm iterations) so the two numbers are directly comparable *)
let measure_live_reeval () =
  let session, moved, to_ = Lazy.force reeval_fixture in
  let reeval () =
    ignore (Makespan.Engine.reevaluate ~commit:false session ~moved ~to_)
  in
  reeval ();
  let iters = 5 * batch_size in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    reeval ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let per = float_of_int iters in
  (dt *. 1e9 /. per, dw /. per)

let write_dist_json kernels =
  let kernels =
    List.filter
      (fun (name, _) ->
        List.exists
          (fun p -> String.length name >= String.length p
                    && String.sub name 0 (String.length p) = p)
          [ "dist:"; "conv:"; "pool:"; "engine:" ])
      kernels
  in
  let live_ns, live_words = measure_live_eval () in
  let reeval_ns, reeval_words = measure_live_reeval () in
  let json_field (name, ns) =
    Printf.sprintf "    { \"name\": %S, \"ns\": %s }" name
      (if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns)
  in
  let oc = open_out "BENCH_dist.json" in
  Printf.fprintf oc
    "{\n\
    \  \"unit\": \"ns\",\n\
    \  \"protocol\": \"interleaved A/B probe vs seed 839f515, random30/p8 case, 8-schedule batch, 40 warm iterations\",\n\
    \  \"baseline_classical_eval_ns_per_schedule\": %.0f,\n\
    \  \"baseline_classical_eval_minor_words_per_schedule\": %.0f,\n\
    \  \"after_classical_eval_ns_per_schedule\": %.0f,\n\
    \  \"after_classical_eval_minor_words_per_schedule\": %.0f,\n\
    \  \"speedup_classical_eval\": %.3f,\n\
    \  \"minor_alloc_drop_pct\": %.1f,\n\
    \  \"live_classical_eval_ns_per_schedule\": %.0f,\n\
    \  \"live_classical_eval_minor_words_per_schedule\": %.0f,\n\
    \  \"reeval_1move_ns_per_schedule\": %.0f,\n\
    \  \"reeval_1move_minor_words_per_schedule\": %.0f,\n\
    \  \"reeval_speedup_vs_full_eval\": %.2f,\n\
    \  \"kernels\": [\n%s\n  ]\n\
     }\n"
    seed_baseline_ns_per_schedule seed_baseline_minor_words_per_schedule
    after_probe_ns_per_schedule live_words
    (seed_baseline_ns_per_schedule /. after_probe_ns_per_schedule)
    ((seed_baseline_minor_words_per_schedule -. live_words)
    /. seed_baseline_minor_words_per_schedule *. 100.)
    live_ns live_words reeval_ns reeval_words
    (if reeval_ns > 0. then live_ns /. reeval_ns else 0.)
    (String.concat ",\n" (List.map json_field kernels));
  close_out oc;
  Printf.printf "[wrote BENCH_dist.json]\n%!"

(* BENCH_sched.json: the list-scheduler framework overhead record. The
   headline is framework HEFT (Components + List_scheduler recomposition)
   vs the inlined pre-refactor monolith on the identical random30 case —
   the ≤ 5% acceptance bound applies to "overhead_framework_heft_pct".
   Every other registry entry's time rides along for context. *)
let write_sched_json results =
  let prefix = "sched:" in
  let kernels =
    List.filter
      (fun (name, _) ->
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix)
      results
  in
  let get name =
    match List.assoc_opt name results with
    | Some ns when Float.is_finite ns && ns > 0. -> Some ns
    | _ -> None
  in
  let ns_field name =
    match get name with Some ns -> Printf.sprintf "%.3f" ns | None -> "null"
  in
  let overhead =
    match (get "sched:heft-legacy", get "sched:HEFT") with
    | Some l, Some f -> Printf.sprintf "%.2f" ((f -. l) /. l *. 100.)
    | _ -> "null"
  in
  let json_field (name, ns) =
    Printf.sprintf "    { \"name\": %S, \"ns\": %s }" name
      (if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns)
  in
  let oc = open_out "BENCH_sched.json" in
  Printf.fprintf oc
    "{\n\
    \  \"unit\": \"ns/run\",\n\
    \  \"case\": \"random30/p8\",\n\
    \  \"legacy_heft_ns\": %s,\n\
    \  \"framework_heft_ns\": %s,\n\
    \  \"overhead_framework_heft_pct\": %s,\n\
    \  \"kernels\": [\n%s\n  ]\n\
     }\n"
    (ns_field "sched:heft-legacy")
    (ns_field "sched:HEFT") overhead
    (String.concat ",\n" (List.map json_field kernels));
  close_out oc;
  Printf.printf "[wrote BENCH_sched.json]\n%!"

(* BENCH_search.json: the stochastic-optimizer throughput record. The
   headline is moves/sec through the full annealing loop (probes, commit
   replays, frontier bookkeeping) on random30/p8; "incremental_pct" is
   the share of all evaluation work served by dirty-cone replay during a
   deterministic 256-step run — the ≥ 80% acceptance bound applies to
   it. *)
let write_search_json results =
  let prefix = "search:" in
  let kernels =
    List.filter
      (fun (name, _) ->
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix)
      results
  in
  let get name =
    match List.assoc_opt name results with
    | Some ns when Float.is_finite ns && ns > 0. -> Some ns
    | _ -> None
  in
  let ns_field name =
    match get name with Some ns -> Printf.sprintf "%.3f" ns | None -> "null"
  in
  let moves_per_sec =
    match get "search:anneal-32step" with
    | Some ns -> Printf.sprintf "%.1f" (float_of_int search_steps_per_run /. (ns *. 1e-9))
    | None -> "null"
  in
  let inst, _ = Lazy.force random30 in
  let outcome =
    Search.Anneal.run ~engine:(Lazy.force search_engine) ~init:(heft_init inst)
      { Search.Anneal.default with steps = 256 }
  in
  let stats = outcome.Search.Anneal.stats in
  let json_field (name, ns) =
    Printf.sprintf "    { \"name\": %S, \"ns\": %s }" name
      (if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns)
  in
  let oc = open_out "BENCH_search.json" in
  Printf.fprintf oc
    "{\n\
    \  \"unit\": \"ns/run\",\n\
    \  \"case\": \"random30/p8\",\n\
    \  \"objective\": %S,\n\
    \  \"steps_per_run\": %d,\n\
    \  \"anneal_run_ns\": %s,\n\
    \  \"moves_per_sec\": %s,\n\
    \  \"probe_swap_ns\": %s,\n\
    \  \"probe_reassign_ns\": %s,\n\
    \  \"ref_steps\": %d,\n\
    \  \"incremental_pct\": %.2f,\n\
    \  \"objective_improvement_pct\": %.2f,\n\
    \  \"frontier_size\": %d,\n\
    \  \"kernels\": [\n%s\n  ]\n\
     }\n"
    (Search.Objective.name Search.Anneal.default.Search.Anneal.objective)
    search_steps_per_run
    (ns_field "search:anneal-32step")
    moves_per_sec
    (ns_field "search:probe-swap")
    (ns_field "engine:reeval-1move")
    stats.Search.Anneal.steps_done
    (100. *. Search.Anneal.incremental_fraction stats)
    (100.
    *. (outcome.Search.Anneal.init_objective -. outcome.Search.Anneal.best_objective)
    /. Float.max 1e-12 (Float.abs outcome.Search.Anneal.init_objective))
    (Search.Archive.size outcome.Search.Anneal.frontier)
    (String.concat ",\n" (List.map json_field kernels));
  close_out oc;
  Printf.printf "[wrote BENCH_search.json]\n%!"

(* `--perf-smoke`: the CI fast path — only the dist/conv/pool/sched/search
   kernels, short quotas, no figure reproduction. Still writes
   BENCH_dist.json, BENCH_sched.json and BENCH_search.json. *)
let perf_smoke () =
  Printf.printf
    "================ perf smoke (dist/conv/pool/sched/reeval/search) ================\n\n";
  Printf.printf "%-36s  %14s\n" "kernel" "time/run";
  Printf.printf "%s\n" (String.make 52 '-');
  let kernels =
    run_kernels
      (Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None ())
      (dist_tests @ conv_tests @ pool_tests @ sched_tests @ reeval_tests @ search_tests)
  in
  write_dist_json kernels;
  write_sched_json kernels;
  write_search_json kernels;
  Parallel.Pool.shutdown (Lazy.force bench_pool)

let () =
  if Array.exists (fun a -> a = "--perf-smoke") Sys.argv then perf_smoke ()
  else begin
    reproduce ();
    let results = run_benchmarks () in
    write_bench_json results;
    write_obs_json results;
    write_dist_json results;
    write_sched_json results;
    write_search_json results;
    Parallel.Pool.shutdown (Lazy.force bench_pool)
  end
