(** The paper's plotting orientation (§VI): three metrics are flipped so
    that {e minimizing} is always better — the slack (subtracted from the
    maximum observed slack of the case) and the two probabilistic metrics
    (subtracted from 1). The other five already improve downwards. *)

val inverted : bool array
(** Per metric (in {!Robustness.labels} order), whether it is flipped. *)

val apply : max_slack:float -> float array -> float array
(** [apply ~max_slack values] re-orients one schedule's metric vector.
    [max_slack] must be the maximum {e avg-slack} over all schedules of
    the case, as the paper subtracts from the observed maximum. *)

val apply_all : float array array -> float array array
(** Re-orient a whole case (rows = schedules, in {!Robustness.labels}
    order), deriving [max_slack] from the data. Rows must be non-empty. *)
