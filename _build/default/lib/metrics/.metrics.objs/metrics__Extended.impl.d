lib/metrics/extended.ml: Array Dist Distribution
