lib/metrics/inversion.ml: Array Float Robustness
