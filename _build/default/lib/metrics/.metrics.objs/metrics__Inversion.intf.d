lib/metrics/inversion.mli:
