lib/metrics/robustness.ml: Array Dist Distribution Float List Makespan Sched
