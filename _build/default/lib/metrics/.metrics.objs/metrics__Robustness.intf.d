lib/metrics/robustness.mli: Distribution Platform Sched Workloads
