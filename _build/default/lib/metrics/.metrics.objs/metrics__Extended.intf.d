lib/metrics/extended.mli: Distribution
