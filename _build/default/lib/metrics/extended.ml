type t = {
  var_95 : float;
  var_99 : float;
  cvar_95 : float;
  iqr : float;
  excess_95 : float;
}

let labels = [| "var95"; "var99"; "cvar95"; "iqr"; "excess95" |]
let n_metrics = Array.length labels

let compute d =
  let open Distribution in
  let q p = Dist.quantile d p in
  let q95 = q 0.95 in
  {
    var_95 = q95;
    var_99 = q 0.99;
    cvar_95 = Dist.mean_above d q95;
    iqr = q 0.75 -. q 0.25;
    excess_95 = q95 -. Dist.mean d;
  }

let to_array m = [| m.var_95; m.var_99; m.cvar_95; m.iqr; m.excess_95 |]
