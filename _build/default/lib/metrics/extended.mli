(** Extension metrics beyond the paper's eight — tail-risk functionals
    common in later robustness literature, provided to let users test
    whether they too join the paper's dispersion cluster (they do; see
    the [extended] test suite and EXPERIMENTS.md).

    All are oriented like the makespan: smaller is better. *)

type t = {
  var_95 : float;  (** 95th-percentile makespan (value-at-risk) *)
  var_99 : float;  (** 99th-percentile makespan *)
  cvar_95 : float;  (** E\[M | M > q₀.₉₅\] — conditional value-at-risk *)
  iqr : float;  (** inter-quartile range q₀.₇₅ − q₀.₂₅ *)
  excess_95 : float;  (** q₀.₉₅ − E(M): tail headroom above the mean *)
}

val labels : string array
val n_metrics : int

val compute : Distribution.Dist.t -> t
(** From a makespan distribution. For a point mass all dispersion entries
    are 0 and the quantile entries equal the value. *)

val to_array : t -> float array
