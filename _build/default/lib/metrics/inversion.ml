(* indices in Robustness.labels order *)
let idx_avg_slack = 3
let idx_abs_prob = 6
let idx_rel_prob = 7

let inverted =
  Array.init Robustness.n_metrics (fun i ->
      i = idx_avg_slack || i = idx_abs_prob || i = idx_rel_prob)

let apply ~max_slack values =
  if Array.length values <> Robustness.n_metrics then
    invalid_arg "Inversion.apply: wrong metric vector length";
  Array.mapi
    (fun i v ->
      if i = idx_avg_slack then max_slack -. v
      else if i = idx_abs_prob || i = idx_rel_prob then 1. -. v
      else v)
    values

let apply_all rows =
  if Array.length rows = 0 then invalid_arg "Inversion.apply_all: no schedules";
  let max_slack =
    Array.fold_left (fun acc row -> Float.max acc row.(idx_avg_slack)) neg_infinity rows
  in
  Array.map (apply ~max_slack) rows
