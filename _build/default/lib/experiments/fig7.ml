type t = {
  mean : float;
  std : float;
  xs : float array;
  special : float array;
  normal : float array;
}

let run ?(points = 48) () =
  let open Distribution in
  let special = Family.special () in
  let mean = Dist.mean special and std = Dist.std special in
  let normal = Family.normal ~mean ~std () in
  let lo, hi = Dist.support special in
  let xs = Numerics.Array_ops.linspace lo hi points in
  {
    mean;
    std;
    xs;
    special = Array.map (Dist.pdf_at special) xs;
    normal = Array.map (Dist.pdf_at normal) xs;
  }

let render t =
  let rows =
    Array.to_list
      (Array.mapi
         (fun i x ->
           [ Render.cell x; Render.cell_sci t.special.(i); Render.cell_sci t.normal.(i) ])
         t.xs)
  in
  Render.table
    ~title:
      (Printf.sprintf
         "Fig. 7 — special (multi-modal) distribution vs normal with same moments\n\
          mean = %.4g, std = %.4g (paper shape: same moments, very different densities)"
         t.mean t.std)
    ~headers:[ "x"; "special"; "normal" ]
    ~rows
