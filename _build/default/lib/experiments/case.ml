type graph_kind =
  | Random_graph
  | Cholesky
  | Gauss_elim

type t = {
  id : string;
  kind : graph_kind;
  n_target : int;
  n_procs : int;
  ul : float;
  seed : int64;
  paper_schedules : int;
}

let kind_name = function
  | Random_graph -> "random"
  | Cholesky -> "cholesky"
  | Gauss_elim -> "gauss-elim"

let default_procs n = if n < 20 then 3 else if n < 100 then 8 else 16

let make ?id ?(seed = 1L) ?n_procs ?paper_schedules ~kind ~n_target ~ul () =
  if n_target <= 0 then invalid_arg "Case.make: n_target must be positive";
  if ul < 1. then invalid_arg "Case.make: UL must be >= 1";
  let n_procs = Option.value n_procs ~default:(default_procs n_target) in
  if n_procs <= 0 then invalid_arg "Case.make: n_procs must be positive";
  let paper_schedules =
    Option.value paper_schedules ~default:(if n_target >= 100 then 2000 else 10000)
  in
  let id =
    Option.value id
      ~default:
        (Printf.sprintf "%s-n%d-p%d-ul%g-s%Ld" (kind_name kind) n_target n_procs ul seed)
  in
  { id; kind; n_target; n_procs; ul; seed; paper_schedules }

(* closest realizable size for the structured graphs *)
let closest_param ~target ~count lo hi =
  let best = ref lo and best_diff = ref max_int in
  for p = lo to hi do
    let d = abs (count p - target) in
    if d < !best_diff then begin
      best := p;
      best_diff := d
    end
  done;
  !best

type instance = {
  case : t;
  graph : Dag.Graph.t;
  platform : Platform.t;
  model : Workloads.Stochastify.t;
}

let build_graph case rng =
  match case.kind with
  | Random_graph ->
    (* §V's generator is quadratically dense; cap the out-degree on very
       large graphs (n = 1000 is "indication only" in the paper) *)
    let max_out_degree = if case.n_target > 300 then Some 16 else None in
    Workloads.Random_dag.generate ~rng ~n:case.n_target ?max_out_degree ()
  | Cholesky ->
    let tiles =
      closest_param ~target:case.n_target
        ~count:(fun b -> Workloads.Cholesky.n_tasks ~tiles:b)
        1 40
    in
    Workloads.Cholesky.generate ~tiles ()
  | Gauss_elim ->
    let n =
      closest_param ~target:case.n_target
        ~count:(fun n -> Workloads.Gauss_elim.n_tasks ~n)
        2 60
    in
    Workloads.Gauss_elim.generate ~n ()

let instantiate case =
  let rng = Prng.Xoshiro.create case.seed in
  let graph = build_graph case rng in
  let n_tasks = Dag.Graph.n_tasks graph in
  let platform =
    match case.kind with
    | Random_graph ->
      Platform.Gen.cvb ~rng ~n_tasks ~n_procs:case.n_procs ~mu_task:20. ~v_task:0.5
        ~v_mach:0.5 ()
    | Cholesky | Gauss_elim ->
      Platform.Gen.uniform_minval ~rng ~n_tasks ~n_procs:case.n_procs ()
  in
  let model = Workloads.Stochastify.make ~ul:case.ul () in
  { case; graph; platform; model }

let paper_cases () =
  let base =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun n_target ->
            List.map (fun ul -> make ~kind ~n_target ~ul ()) [ 1.01; 1.1 ])
          [ 10; 30; 100 ])
      [ Random_graph; Cholesky; Gauss_elim ]
  in
  (* six extra random-graph seeds, as the paper generated several random
     graphs per size *)
  let extras =
    List.concat_map
      (fun n_target ->
        List.map
          (fun seed -> make ~kind:Random_graph ~n_target ~ul:1.1 ~seed ())
          [ 2L; 3L ])
      [ 10; 30; 100 ]
  in
  base @ extras
