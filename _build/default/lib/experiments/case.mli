(** Experimental cases: a (graph kind × size × platform × uncertainty
    level) combination, reproducibly derived from a seed (§V). *)

type graph_kind =
  | Random_graph
  | Cholesky
  | Gauss_elim

type t = {
  id : string;
  kind : graph_kind;
  n_target : int;  (** requested task count (structured graphs hit the closest realizable size) *)
  n_procs : int;
  ul : float;
  seed : int64;
  paper_schedules : int;  (** random schedules at paper scale *)
}

val make :
  ?id:string ->
  ?seed:int64 ->
  ?n_procs:int ->
  ?paper_schedules:int ->
  kind:graph_kind ->
  n_target:int ->
  ul:float ->
  unit ->
  t
(** Defaults follow the paper: processors 3/8/16 for ≈10/30/≥100 tasks;
    10 000 random schedules (2 000 when n ≥ 100); id derived from the
    parameters. *)

type instance = {
  case : t;
  graph : Dag.Graph.t;
  platform : Platform.t;
  model : Workloads.Stochastify.t;
}

val instantiate : t -> instance
(** Materialize the DAG, platform and uncertainty model from the case
    seed. Random graphs use the §V parameters (CCR 0.1, μ_task 20,
    V_task = V_mach = 0.5, CVB platform); Cholesky/Gaussian-elimination
    graphs use the uniform-minval platform of the real-application setup. *)

val paper_cases : unit -> t list
(** The 24 cases behind Fig. 6: {random, Cholesky, GE} × n ∈ {10, 30,
    100} × UL ∈ {1.01, 1.1}, plus six extra random-graph seeds. *)

val kind_name : graph_kind -> string
