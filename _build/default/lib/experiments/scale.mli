(** Experiment scaling.

    Paper-scale sweeps (10 000 random schedules per case, 100 000
    Monte-Carlo realizations) take a while; the harness therefore runs at
    a configurable fraction of the paper's counts. The [REPRO_SCALE]
    environment variable selects a preset:
    - ["smoke"] — ~1% of paper counts (CI-sized),
    - ["small"] — ~10% (the default; correlations are already stable),
    - ["full"]/["paper"] — the paper's exact counts. *)

type t = {
  name : string;
  schedule_divisor : int;  (** divide per-case random-schedule counts *)
  mc_divisor : int;  (** divide Monte-Carlo realization counts *)
  include_n1000 : bool;  (** run Fig. 1's 1000-task point *)
}

val smoke : t
val small : t
val full : t

val of_env : unit -> t
(** Read [REPRO_SCALE]; unknown or missing values yield {!small}. *)

val schedules : t -> int -> int
(** Scale a paper schedule count (floor 30). *)

val realizations : t -> int -> int
(** Scale a paper Monte-Carlo count (floor 1000). *)
