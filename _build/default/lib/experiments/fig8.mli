(** Fig. 8 — CLT convergence speed: distance between the n-fold
    self-sum of the special distribution and the normal with matching
    moments.

    Paper shape: already ≈-normal after 5 sums, negligible difference
    after 10 — the argument behind the equivalence of the dispersion
    metrics. Beyond the paper's KS/CM we also report skewness (decays as
    1/√n) and excess kurtosis (1/n), which witness the same convergence
    in moment space. *)

type point = {
  n_sums : int;  (** number of variables in the sum *)
  ks : float;
  cm : float;
  skewness : float;
  kurtosis_excess : float;
}

type t = point list

val run : ?max_sums:int -> ?points:int -> unit -> t
(** [max_sums] defaults to 30 (the paper's x-range); [points] is the grid
    resolution used for the running sum (default 256 for accuracy). *)

val render : t -> string
