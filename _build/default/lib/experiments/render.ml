let cell v = Printf.sprintf "%.4g" v
let cell_sci v = Printf.sprintf "%.3e" v

let table ~title ~headers ~rows =
  let all = headers :: rows in
  let cols = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> cols then invalid_arg "Render.table: ragged row")
    rows;
  let width j =
    List.fold_left (fun acc row -> Int.max acc (String.length (List.nth row j))) 0 all
  in
  let widths = List.init cols width in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let emit row =
    List.iteri
      (fun j c ->
        Buffer.add_string buf (pad (List.nth widths j) c);
        if j < cols - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  emit headers;
  emit (List.map (fun w -> String.make w '-') widths);
  List.iter emit rows;
  Buffer.contents buf
