(** CSV (and gnuplot) export of experiment results, so figures can be
    re-plotted outside the terminal. [`repro --out DIR`] writes these
    next to the rendered text. *)

val series_csv : headers:string list -> rows:float list list -> string
(** Generic numeric CSV with a header line. *)

val write_file : dir:string -> name:string -> string -> string
(** [write_file ~dir ~name content] creates [dir] if needed, writes
    [dir/name] and returns the path. *)

val fig1_csv : Fig1.t -> string
val fig2_csv : Fig2.t -> string

val fig_corr_csv : Fig_corr.t -> string
(** The correlation matrix (CSV), followed by one commented line per
    heuristic with its raw metric vector. *)

val schedules_csv : Runner.result -> string
(** The full per-schedule dataset of a run: one row per schedule (random
    and heuristic), raw metric values in {!Metrics.Robustness.labels}
    order plus a [source] column — the paper's scatter-matrix input. *)

val fig6_csv : Fig6.t -> string
(** Mean matrix then std matrix. *)

val fig7_csv : Fig7.t -> string
val fig8_csv : Fig8.t -> string
val fig9_csv : Fig9.t -> string

val gnuplot_fig1 : data:string -> string
(** A gnuplot script plotting the Fig. 1 series from the CSV at [data]
    (log-log, as in the paper). *)

val gnuplot_density : data:string -> title:string -> string
(** Script for the two-density figures (Figs. 2 and 7). *)

val gnuplot_fig8 : data:string -> string
