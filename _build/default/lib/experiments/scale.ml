type t = {
  name : string;
  schedule_divisor : int;
  mc_divisor : int;
  include_n1000 : bool;
}

let smoke = { name = "smoke"; schedule_divisor = 100; mc_divisor = 100; include_n1000 = false }
let small = { name = "small"; schedule_divisor = 10; mc_divisor = 10; include_n1000 = false }
let full = { name = "full"; schedule_divisor = 1; mc_divisor = 1; include_n1000 = true }

let of_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "REPRO_SCALE") with
  | Some "smoke" -> smoke
  | Some "full" | Some "paper" -> full
  | Some "small" | None | Some _ -> small

let schedules t paper_count = Int.max 30 (paper_count / t.schedule_divisor)
let realizations t paper_count = Int.max 1000 (paper_count / t.mc_divisor)
