(** Progress logging for the long-running sweeps.

    Enable with [Logs.set_level (Some Logs.Info)] plus any reporter (the
    [repro] CLI does this under [-v]); silent by default. *)

val src : Logs.src

val info : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [info fmt …] logs at info level on {!src} (eagerly formatted; these
    messages are emitted a handful of times per sweep). *)
