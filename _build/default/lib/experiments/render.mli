(** Small text-rendering helpers shared by the figure drivers. *)

val table : title:string -> headers:string list -> rows:string list list -> string
(** Aligned columns with a title line and a header underline. *)

val cell : float -> string
(** Default numeric cell: ["%.4g"]. *)

val cell_sci : float -> string
(** Scientific cell: ["%.3e"]. *)
