(** Fig. 7 — the multi-modal “special” distribution next to the normal
    distribution sharing its mean and standard deviation (step 0 of the
    CLT-convergence probe of Fig. 8). *)

type t = {
  mean : float;
  std : float;
  xs : float array;
  special : float array;
  normal : float array;
}

val run : ?points:int -> unit -> t
val render : t -> string
