(** Fig. 1 — average precision of the independence-assumption makespan
    distribution versus graph size (UL = 1.1).

    For each size, a few random graphs × random schedules are evaluated
    with the classical method and compared (KS and CM distances) to a
    large Monte-Carlo run. The paper's shape: both distances grow with
    graph size — the independence assumption degrades. *)

type point = {
  n_tasks : int;
  ks : float;  (** mean Kolmogorov–Smirnov distance *)
  cm : float;  (** mean Cramér–von-Mises area distance *)
}

type t = point list

val run : ?domains:int -> ?scale:Scale.t -> ?seed:int64 -> unit -> t
(** Sizes 10/30/100 (+1000 at full scale); paper-scale Monte Carlo is
    100 000 realizations per schedule. *)

val render : t -> string
