(** Pearson-correlation matrices over metric vectors, in the paper's
    orientation (slack and probabilistic metrics inverted so optimizing
    every metric means minimizing it — §VI). *)

val matrix :
  ?invert:bool -> ?method_:[ `Pearson | `Spearman ] -> float array array -> float array array
(** [matrix rows] is the 8×8 correlation matrix over the (by default
    inverted) metric columns. Zero-variance columns yield [nan] entries.
    [`Spearman] (rank correlation) is the robustness check for the
    "slightly curved" point clouds the paper mentions; default
    [`Pearson], as in the paper. *)

val of_result : Runner.result -> float array array
(** Correlations over the {e random} schedules of a run, as the paper
    computes them (heuristic points are plotted but excluded). *)

val mean_std : float array array list -> float array array * float array array
(** Element-wise mean and (population) standard deviation across several
    correlation matrices, ignoring [nan] entries per cell — the two
    triangles of Fig. 6. *)
