(** Figs. 3, 4, 5 — per-case correlation matrices over thousands of
    random schedules, with the three heuristics' metric values.

    Fig. 3: Cholesky, 10 tasks, 3 processors, UL = 1.01.
    Fig. 4: random graph, 30 tasks, 8 processors, UL = 1.01.
    Fig. 5: Gaussian elimination, ≈103 tasks, 16 processors, UL = 1.1
    (2 000 random schedules at paper scale). *)

type spec = {
  fig : string;
  case : Case.t;
}

val fig3 : spec
val fig4 : spec
val fig5 : spec

type t = {
  spec : spec;
  result : Runner.result;
  matrix : float array array;  (** Pearson over inverted random-schedule metrics *)
}

val run : ?domains:int -> ?scale:Scale.t -> spec -> t

val render : t -> string
(** The Pearson matrix (paper's upper triangles) plus one row per
    heuristic with its raw metric vector and, per metric, its rank among
    the random schedules (paper shape: heuristics rank at or near the
    best makespan and makespan-std). *)

val heuristic_rank : t -> metric:int -> string -> int * int
(** [(rank, population)] of a heuristic's metric within the population
    {heuristic} ∪ random schedules (1 = best = smallest after
    inversion). *)
