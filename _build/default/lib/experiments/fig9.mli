(** Fig. 9 — four schedules of a join graph (N + 1 i.i.d. tasks)
    demonstrating that slack and robustness are orthogonal.

    The four layouts reproduce the quadrants of the paper's sketch:
    - [wide]: every task on its own processor — {e no slack, robust}
      (the max of many i.i.d. variables concentrates);
    - [balanced]: equal chains on a few processors — {e no slack,
      moderately robust} (CLT over short sums);
    - [chain]: everything on one processor — {e no slack, non-robust}
      in absolute dispersion (σ grows like √N);
    - [slack_mix]: one long chain plus a few singleton tasks with large
      idle windows — {e much slack, still non-robust} (the chain alone
      drives the makespan).

    Comparing [wide] (zero slack, tiny σ_M) against [slack_mix] (large
    slack, large σ_M) is the paper's argument that maximizing slack does
    not buy robustness. *)

type row = {
  name : string;
  description : string;
  expected_makespan : float;
  makespan_std : float;
  total_slack : float;
}

type t = row list

val run : ?n_tasks:int -> ?ul:float -> unit -> t
(** [n_tasks] is the paper's N (default 12); the join task is extra. All
    durations are i.i.d. with minimum 20 and the given [ul]
    (default 1.1); communications are free, as in the paper's sketch. *)

val render : t -> string
