type t = {
  results : Runner.result list;
  matrices : float array array list;
  mean : float array array;
  std : float array array;
}

let run ?domains ?scale ?(cases = Case.paper_cases ()) () =
  if cases = [] then invalid_arg "Fig6.run: no cases";
  let results = List.map (Runner.run ?domains ?scale) cases in
  let matrices = List.map Correlate.of_result results in
  let mean, std = Correlate.mean_std matrices in
  { results; matrices; mean; std }

let render t =
  Printf.sprintf
    "Fig. 6 — Pearson coefficients over %d cases (upper: mean, lower: std dev)\n\
     (paper shape: mk-std/entropy/lateness/abs-prob ≈ +0.98..1.0 with std ≤ 0.03;\n\
     makespan vs cluster ≈ +0.75; avg-slack negative vs makespan ≈ −0.4)\n\n%s"
    (List.length t.results)
    (Stats.Matrix_render.render_mean_std ~labels:Metrics.Robustness.labels t.mean t.std)
