lib/experiments/fig_corr.mli: Case Runner Scale
