lib/experiments/elog.ml: Format Logs
