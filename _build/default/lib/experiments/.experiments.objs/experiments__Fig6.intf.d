lib/experiments/fig6.mli: Case Runner Scale
