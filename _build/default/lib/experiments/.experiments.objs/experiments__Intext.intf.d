lib/experiments/intext.mli: Case Runner Scale
