lib/experiments/ablation.ml: Array Buffer Dag Distribution Float Int List Makespan Parallel Platform Printf Prng Render Runner Scale Sched Stats Workloads
