lib/experiments/fig2.ml: Array Dag Distribution Float Makespan Numerics Platform Printf Prng Render Scale Sched Stats Workloads
