lib/experiments/scale.mli:
