lib/experiments/campaign.mli: Case Runner Scale Sched
