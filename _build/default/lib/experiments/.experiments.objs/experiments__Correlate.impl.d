lib/experiments/correlate.ml: Array Float List Metrics Runner Stats
