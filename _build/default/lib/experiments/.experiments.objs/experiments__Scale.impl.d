lib/experiments/scale.ml: Int Option String Sys
