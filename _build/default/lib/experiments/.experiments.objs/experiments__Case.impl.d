lib/experiments/case.ml: Dag List Option Platform Printf Prng Workloads
