lib/experiments/render.mli:
