lib/experiments/elog.mli: Format Logs
