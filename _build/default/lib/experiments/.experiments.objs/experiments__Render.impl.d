lib/experiments/render.ml: Buffer Int List Printf String
