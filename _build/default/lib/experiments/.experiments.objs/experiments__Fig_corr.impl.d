lib/experiments/fig_corr.ml: Array Buffer Case Correlate Float List Metrics Printf Render Runner Stats
