lib/experiments/fig8.ml: Dist Distribution Family List Render Stats
