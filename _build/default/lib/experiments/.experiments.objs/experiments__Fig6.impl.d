lib/experiments/fig6.ml: Case Correlate List Metrics Printf Runner Stats
