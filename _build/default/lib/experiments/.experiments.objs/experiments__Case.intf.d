lib/experiments/case.mli: Dag Platform Workloads
