lib/experiments/export.ml: Array Buffer Fig1 Fig2 Fig6 Fig7 Fig8 Fig9 Fig_corr Filename Fun List Metrics Printf Runner Stats String Sys
