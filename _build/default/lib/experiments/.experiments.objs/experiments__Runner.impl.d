lib/experiments/runner.ml: Array Case Distribution Elog Int Int64 List Makespan Metrics Parallel Prng Scale Sched
