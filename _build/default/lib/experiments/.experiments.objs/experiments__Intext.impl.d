lib/experiments/intext.ml: Array Case Float Int64 List Makespan Printf Prng Render Runner Scale Sched Stats
