lib/experiments/fig9.ml: Array Distribution List Makespan Platform Render Sched Workloads
