lib/experiments/export.mli: Fig1 Fig2 Fig6 Fig7 Fig8 Fig9 Fig_corr Runner
