lib/experiments/runner.mli: Case Dag Platform Scale Sched
