lib/experiments/fig7.ml: Array Dist Distribution Family Numerics Printf Render
