lib/experiments/campaign.ml: Array Case Correlate Elog Export Filename Fun List Metrics Printf Runner Scale Stats String Sys
