lib/experiments/fig1.ml: Dag Elog List Makespan Platform Prng Render Scale Sched Stats Workloads
