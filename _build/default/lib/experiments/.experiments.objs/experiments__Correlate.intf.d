lib/experiments/correlate.mli: Runner
