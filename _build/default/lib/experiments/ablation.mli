(** Extension experiments beyond the paper's figures, probing its two
    §VIII conjectures:

    1. {e Variable UL breaks the makespan–robustness link.} With a
       constant UL, σ of every duration is proportional to its mean, so
       E(M) predicts σ_M well (Fig. 6's +0.767). Drawing per-task ULs
       from a wide range should weaken that correlation while leaving the
       dispersion-metric cluster intact.

    2. {e Ranking by duration dispersion can buy robustness.} Under
       variable UL, RobustHEFT (mean + κ·std costs) should reduce σ_M
       relative to HEFT at a small expected-makespan cost. *)

type correlation_shift = {
  fixed_mk_vs_std : float;  (** Pearson(E(M), σ_M), constant UL *)
  variable_mk_vs_std : float;  (** same, variable UL *)
  fixed_cluster : float;  (** Pearson(σ_M, lateness), constant UL *)
  variable_cluster : float;  (** same, variable UL *)
}

val correlation_under_variable_ul :
  ?domains:int -> ?scale:Scale.t -> ?seed:int64 -> unit -> correlation_shift
(** Random 30-task case; constant UL 1.2 vs per-task UL alternating
    between 1.02 and 1.9 (same mean level of uncertainty). *)

val render_correlation : correlation_shift -> string

type shape_row = {
  shape_name : string;
  mk_vs_std : float;  (** Pearson(E(M), σ_M) *)
  cluster : float;  (** Pearson(σ_M, lateness) *)
}

val cluster_under_shapes :
  ?domains:int -> ?scale:Scale.t -> ?seed:int64 -> unit -> shape_row list
(** Third §VIII probe (“non-standard probability distributions (with some
    oscillations)”): rerun one case's random-schedule sweep with the
    perturbation following each available shape. The CLT argument
    predicts the dispersion-metric cluster survives any duration shape —
    which is what this measures. *)

val render_shapes : shape_row list -> string

type pareto = {
  population : int;  (** schedules examined *)
  front_size : int;  (** Pareto-optimal in (E(M), σ_M) minimization *)
  overall_r : float;  (** Pearson(E(M), σ_M) over all schedules *)
  elite_r : float;  (** same over the best decile by E(M) — “near the front” *)
  front_r : float;  (** same restricted to the front ([nan] if < 3 points) *)
  front : (float * float) list;  (** the (E(M), σ_M) front, by makespan *)
}

val pareto_front_study :
  ?domains:int -> ?scale:Scale.t -> ?seed:int64 -> unit -> pareto
(** Second §VIII probe (“correlation in the extreme cases (near the
    Pareto front)”): among random schedules, the heuristics and a
    RobustHEFT κ-sweep, extract the (E(M), σ_M) Pareto front under
    variable UL. The paper's global correlations are driven by the bulk
    of mediocre schedules; the front is where its conjectured trade-off
    lives — along it, reducing E(M) necessarily increases σ_M, so a
    genuine choice exists among the best schedules even while the best
    decile may still correlate positively. *)

val render_pareto : pareto -> string

type tradeoff_point = {
  kappa : float;
  expected_makespan : float;
  makespan_std : float;
}

val robust_heft_tradeoff :
  ?seed:int64 -> ?kappas:float list -> unit -> tradeoff_point list
(** HEFT is the κ = 0 row; larger κ should trade E(M) for σ_M under the
    variable-UL model. *)

val render_tradeoff : tradeoff_point list -> string
