(** In-text results of §VII.

    1. The relative probabilistic metric divided by the makespan
       correlates with the makespan standard deviation at Pearson
       ≈ 0.998 ± 0.009 across the Fig. 6 cases.
    2. The three analytic evaluation methods (classical, Dodin, Spelde)
       produce similar distributions (§V validation). *)

type rel_prob = {
  per_case : float list;  (** Pearson(E(M)/R, σ_M) per case — the
      makespan-divided relative probabilistic metric in its inverted
      (reciprocal) orientation, which is linear in σ for a near-normal
      makespan *)
  mean : float;
  std : float;
}

val rel_prob_vs_std : Runner.result list -> rel_prob
(** Computed from already-run cases (e.g. {!Fig6.run}'s results). *)

val render_rel_prob : rel_prob -> string

type method_row = {
  case_id : string;
  method_name : string;
  ks : float;
  cm : float;
}

val methods_vs_mc :
  ?domains:int -> ?scale:Scale.t -> ?cases:Case.t list -> unit -> method_row list
(** KS/CM of each analytic method against Monte Carlo on one random
    schedule per case (defaults to three small paper cases). *)

val render_methods : method_row list -> string
