(** Fig. 6 — mean and standard deviation of the Pearson coefficients
    across the 24 experiments with ≤100 tasks.

    The paper's headline matrix: the robustness cluster (σ_M, entropy,
    lateness, A) correlates near +1 with tiny dispersion; E(M) correlates
    ≈ 0.75 with the cluster; the slack anti-correlates with everything. *)

type t = {
  results : Runner.result list;  (** one per case, kept for {!Intext} *)
  matrices : float array array list;
  mean : float array array;
  std : float array array;
}

val run : ?domains:int -> ?scale:Scale.t -> ?cases:Case.t list -> unit -> t
(** Default cases: {!Case.paper_cases}. *)

val render : t -> string
(** The paper's combined layout: upper triangle = mean, lower = std. *)
