let src = Logs.Src.create "repro.experiments" ~doc:"experiment sweep progress"

module Log = (val Logs.src_log src : Logs.LOG)

let info fmt = Format.kasprintf (fun s -> Log.info (fun m -> m "%s" s)) fmt
