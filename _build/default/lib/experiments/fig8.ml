type point = {
  n_sums : int;
  ks : float;
  cm : float;
  skewness : float;
  kurtosis_excess : float;
}

type t = point list

let run ?(max_sums = 30) ?(points = 256) () =
  if max_sums < 1 then invalid_arg "Fig8.run: max_sums must be >= 1";
  let open Distribution in
  let base = Family.special ~points () in
  let mu = Dist.mean base and sigma = Dist.std base in
  let acc = ref base in
  let out = ref [] in
  for n = 1 to max_sums do
    if n > 1 then acc := Dist.add ~points !acc base;
    let reference =
      Family.normal ~points ~mean:(float_of_int n *. mu)
        ~std:(sqrt (float_of_int n) *. sigma) ()
    in
    let ks = Stats.Distance.ks (Analytic !acc) (Analytic reference) in
    let cm = Stats.Distance.cm_area (Analytic !acc) (Analytic reference) in
    out :=
      {
        n_sums = n;
        ks;
        cm;
        skewness = Dist.skewness !acc;
        kurtosis_excess = Dist.kurtosis_excess !acc;
      }
      :: !out
  done;
  List.rev !out

let render t =
  Render.table
    ~title:
      "Fig. 8 — precision of the normal approximation of the n-fold self-sum\n\
       (paper shape: distance collapses after ~5 sums, negligible by 10;\n\
       skewness decays as 1/√n, excess kurtosis as 1/n)"
    ~headers:[ "n_sums"; "KS"; "CM"; "skew"; "ex-kurtosis" ]
    ~rows:
      (List.map
         (fun p ->
           [ string_of_int p.n_sums; Render.cell_sci p.ks; Render.cell_sci p.cm;
             Render.cell p.skewness; Render.cell p.kurtosis_excess ])
         t)
