type spec = {
  fig : string;
  case : Case.t;
}

let fig3 =
  {
    fig = "Fig. 3";
    case =
      Case.make ~id:"fig3-cholesky10" ~kind:Case.Cholesky ~n_target:10 ~n_procs:3 ~ul:1.01
        ();
  }

let fig4 =
  {
    fig = "Fig. 4";
    case =
      Case.make ~id:"fig4-random30" ~kind:Case.Random_graph ~n_target:30 ~n_procs:8
        ~ul:1.01 ();
  }

let fig5 =
  {
    fig = "Fig. 5";
    case =
      Case.make ~id:"fig5-gauss103" ~kind:Case.Gauss_elim ~n_target:103 ~n_procs:16 ~ul:1.1
        ~paper_schedules:2000 ();
  }

type t = {
  spec : spec;
  result : Runner.result;
  matrix : float array array;
}

let run ?domains ?scale spec =
  let result = Runner.run ?domains ?scale spec.case in
  { spec; result; matrix = Correlate.of_result result }

let heuristic_rank t ~metric name =
  let rows = Runner.random_rows t.result in
  let inverted = Metrics.Inversion.apply_all t.result.Runner.rows in
  (* locate the heuristic's inverted value *)
  let h_value = ref Float.nan in
  Array.iteri
    (fun i src ->
      match src with
      | Runner.Heuristic n when n = name -> h_value := inverted.(i).(metric)
      | _ -> ())
    t.result.Runner.sources;
  if Float.is_nan !h_value then invalid_arg "Fig_corr.heuristic_rank: unknown heuristic";
  let better = ref 0 in
  Array.iteri
    (fun i src ->
      match src with
      | Runner.Random _ -> if inverted.(i).(metric) < !h_value then incr better
      | _ -> ())
    t.result.Runner.sources;
  (* rank within {heuristic} ∪ randoms *)
  (!better + 1, Array.length rows + 1)

let render t =
  let labels = Metrics.Robustness.labels in
  let case = t.spec.case in
  let n_random = Array.length (Runner.random_rows t.result) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "%s — metric correlations: %s (%d tasks requested, %d procs, UL = %g)\n\
        %d random schedules + heuristics; Pearson over inverted metrics\n\
        (paper shape: mk-std/entropy/lateness/abs-prob cluster near +1;\n\
        avg-slack anti-correlates with makespan)\n\n"
       t.spec.fig (Case.kind_name case.Case.kind) case.Case.n_target case.Case.n_procs
       case.Case.ul n_random);
  Buffer.add_string buf (Stats.Matrix_render.render ~labels t.matrix);
  Buffer.add_string buf "\nHeuristic schedules (raw metric values, rank among random):\n";
  let headers = "heuristic" :: Array.to_list labels in
  let rows =
    List.map
      (fun (name, row) ->
        name
        :: List.init (Array.length row) (fun j ->
               let rank, pop = heuristic_rank t ~metric:j name in
               Printf.sprintf "%s (#%d/%d)" (Render.cell row.(j)) rank pop))
      (Runner.heuristic_rows t.result)
  in
  Buffer.add_string buf (Render.table ~title:"" ~headers ~rows);
  Buffer.contents buf
