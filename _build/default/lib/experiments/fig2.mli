(** Fig. 2 — visual comparison of the calculated makespan distribution
    against the experimental (Monte-Carlo) one on a case where the
    independence assumption is mediocre.

    The paper's point: even at KS ≈ 0.17 the calculated density tracks
    the experimental histogram closely. *)

type t = {
  ks : float;
  cm : float;
  xs : float array;
  calculated : float array;  (** analytic density *)
  experimental : float array;  (** Monte-Carlo histogram density *)
}

val run : ?domains:int -> ?scale:Scale.t -> ?seed:int64 -> unit -> t
(** A 100-task random graph at UL = 1.1 (the regime Fig. 1 shows to be
    imprecise), one random schedule. *)

val render : t -> string
(** Table of (makespan, calculated, experimental) samples plus the KS/CM
    header. *)
