let matrix ?(invert = true) ?(method_ = `Pearson) rows =
  if Array.length rows = 0 then invalid_arg "Correlate.matrix: no schedules";
  let data = if invert then Metrics.Inversion.apply_all rows else rows in
  let k = Metrics.Robustness.n_metrics in
  let cols = Array.init k (fun j -> Array.map (fun row -> row.(j)) data) in
  match method_ with
  | `Pearson -> Stats.Correlation.pearson_matrix cols
  | `Spearman ->
    let m = Array.make_matrix k k 1. in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        let r = Stats.Correlation.spearman cols.(i) cols.(j) in
        m.(i).(j) <- r;
        m.(j).(i) <- r
      done
    done;
    m

let of_result result = matrix (Runner.random_rows result)

let mean_std matrices =
  match matrices with
  | [] -> invalid_arg "Correlate.mean_std: no matrices"
  | first :: _ ->
    let k = Array.length first in
    let mean = Array.make_matrix k k 0. in
    let std = Array.make_matrix k k 0. in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        let values =
          List.filter_map
            (fun m -> if Float.is_nan m.(i).(j) then None else Some m.(i).(j))
            matrices
        in
        match values with
        | [] ->
          mean.(i).(j) <- Float.nan;
          std.(i).(j) <- Float.nan
        | vs ->
          let a = Array.of_list vs in
          let m = Stats.Descriptive.mean a in
          mean.(i).(j) <- m;
          std.(i).(j) <- sqrt (Stats.Descriptive.population_variance a)
      done
    done;
    (mean, std)
