(** Immutable task DAGs with per-edge communication volumes.

    This is the application model of §II: nodes are tasks, edges are
    precedence constraints carrying a communication volume (the [C] of
    [G = (V, E, C)]). Computation costs are {e not} stored here — under
    the unrelated-machines model they depend on the processor and live in
    the platform's ETC matrix. *)

type task = int
(** Tasks are dense indices [0 .. n_tasks − 1]. *)

type t

val make : n:int -> edges:(task * task * float) list -> t
(** [make ~n ~edges] builds a DAG over [n] tasks. Each edge is
    [(src, dst, volume)] with [volume >= 0]. Raises [Invalid_argument] on
    out-of-range endpoints, self-loops, duplicate edges, negative volumes,
    or cycles. *)

val n_tasks : t -> int
val n_edges : t -> int

val succs : t -> task -> (task * float) array
(** Successors with communication volumes (do not mutate). *)

val preds : t -> task -> (task * float) array
(** Predecessors with communication volumes (do not mutate). *)

val volume : t -> src:task -> dst:task -> float option
(** Communication volume of an edge, if present. *)

val has_edge : t -> src:task -> dst:task -> bool

val edges : t -> (task * task * float) array
(** All edges, in (src, dst) lexicographic order. *)

val entries : t -> task array
(** Tasks without predecessors (non-empty for any valid DAG). *)

val exits : t -> task array
(** Tasks without successors. *)

val topo_order : t -> task array
(** A topological order, computed once at construction (do not mutate). *)

val add_edges : t -> (task * task * float) list -> t
(** A new DAG with extra edges (same validation as {!make}); used to build
    disjunctive graphs. Edges already present are rejected. *)

val transitive_closure_mem : t -> src:task -> dst:task -> bool
(** [transitive_closure_mem t ~src ~dst] is [true] iff a (possibly empty)
    directed path leads from [src] to [dst]. O(V+E) per query. *)
