(** Graphviz export of task DAGs, for debugging and documentation. *)

val to_dot :
  ?name:string ->
  ?task_label:(Graph.task -> string) ->
  ?edge_label:(Graph.task -> Graph.task -> string) ->
  Graph.t ->
  string
(** [to_dot g] renders a [digraph]. Default labels are the task index and
    the communication volume. *)
