(** Top levels, bottom levels, and critical paths of weighted DAGs.

    Weights are supplied as functions so that the same traversals serve
    deterministic weights, mean weights (the paper's slack approximation),
    and heuristic-specific averaged costs (HEFT ranks). Definitions follow
    §IV of the paper:
    - [Tl(i)]: length of the longest path from an entry node to [i],
      {e excluding} [i]'s own weight (0 for entries);
    - [Bl(i)]: length of the longest path from [i] to an exit node,
      {e including} [i]'s weight. *)

type weights = {
  task : Graph.task -> float;  (** execution weight of a task *)
  edge : Graph.task -> Graph.task -> float;  (** weight of an edge *)
}

val top_levels : Graph.t -> weights -> float array
val bottom_levels : Graph.t -> weights -> float array

val makespan : Graph.t -> weights -> float
(** Longest path through the weighted DAG,
    [max_i (Tl(i) + Bl(i)) = max over entries of Bl]. *)

val slacks : Graph.t -> weights -> float array
(** [s_i = makespan − Bl(i) − Tl(i)] for every task (§IV); tasks on a
    critical path have slack 0. *)

val critical_path : Graph.t -> weights -> Graph.task list
(** One longest entry-to-exit path, in topological order. *)
