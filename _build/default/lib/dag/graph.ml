type task = int

type t = {
  n : int;
  succs : (task * float) array array;
  preds : (task * float) array array;
  topo : task array;
  n_edges : int;
}

let compute_topo ~n ~succs ~preds =
  (* Kahn's algorithm; raises on cycles. *)
  let indeg = Array.map Array.length preds in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    Array.iter
      (fun (w, _) ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succs.(v)
  done;
  if !filled <> n then invalid_arg "Dag.Graph: graph has a cycle";
  order

let make ~n ~edges =
  if n <= 0 then invalid_arg "Dag.Graph.make: need at least one task";
  let succ_lists = Array.make n [] and pred_lists = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (src, dst, vol) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Dag.Graph.make: edge endpoint out of range";
      if src = dst then invalid_arg "Dag.Graph.make: self-loop";
      if vol < 0. || not (Float.is_finite vol) then
        invalid_arg "Dag.Graph.make: communication volume must be finite and >= 0";
      if Hashtbl.mem seen (src, dst) then invalid_arg "Dag.Graph.make: duplicate edge";
      Hashtbl.add seen (src, dst) ();
      succ_lists.(src) <- (dst, vol) :: succ_lists.(src);
      pred_lists.(dst) <- (src, vol) :: pred_lists.(dst))
    edges;
  let by_task (a, _) (b, _) = Int.compare a b in
  let to_sorted_array l =
    let a = Array.of_list l in
    Array.sort by_task a;
    a
  in
  let succs = Array.map to_sorted_array succ_lists in
  let preds = Array.map to_sorted_array pred_lists in
  let topo = compute_topo ~n ~succs ~preds in
  { n; succs; preds; topo; n_edges = List.length edges }

let n_tasks t = t.n
let n_edges t = t.n_edges
let succs t v = t.succs.(v)
let preds t v = t.preds.(v)

let volume t ~src ~dst =
  let arr = t.succs.(src) in
  let rec find i =
    if i >= Array.length arr then None
    else
      let v, vol = arr.(i) in
      if v = dst then Some vol else find (i + 1)
  in
  find 0

let has_edge t ~src ~dst = Option.is_some (volume t ~src ~dst)

let edges t =
  let out = Array.make t.n_edges (0, 0, 0.) in
  let k = ref 0 in
  for src = 0 to t.n - 1 do
    Array.iter
      (fun (dst, vol) ->
        out.(!k) <- (src, dst, vol);
        incr k)
      t.succs.(src)
  done;
  out

let entries t =
  let l = ref [] in
  for v = t.n - 1 downto 0 do
    if Array.length t.preds.(v) = 0 then l := v :: !l
  done;
  Array.of_list !l

let exits t =
  let l = ref [] in
  for v = t.n - 1 downto 0 do
    if Array.length t.succs.(v) = 0 then l := v :: !l
  done;
  Array.of_list !l

let topo_order t = t.topo

let add_edges t extra =
  let current = Array.to_list (edges t) in
  make ~n:t.n ~edges:(current @ extra)

let transitive_closure_mem t ~src ~dst =
  if src = dst then true
  else begin
    let visited = Array.make t.n false in
    let rec dfs v =
      v = dst
      || (not visited.(v)
         && begin
              visited.(v) <- true;
              Array.exists (fun (w, _) -> dfs w) t.succs.(v)
            end)
    in
    dfs src
  end
