(** Two-terminal series–parallel reduction with Dodin's node-duplication
    approximation.

    This is the engine behind the Dodin makespan-distribution method
    (Dodin 1985, as described by Ludwig, Möhring & Stork 2001): an
    activity-on-arc network is repeatedly simplified by
    - {e series} reduction (interior node with one in- and one out-edge:
      compose the weights — distribution sum),
    - {e parallel} reduction (two edges with the same endpoints: combine
      the weights — distribution maximum),
    and, when neither applies, the topologically first interior node
    (which then necessarily has in-degree 1) is {e duplicated}: its single
    in-edge is composed into each of its out-edges. Duplication treats the
    shared in-edge as independent copies — this is Dodin's approximation.

    The module is polymorphic in the weight algebra so it can be tested
    with exact scalars (series = (+), parallel = max) and used with
    distributions. *)

type 'w algebra = {
  series : 'w -> 'w -> 'w;  (** composition along a path *)
  parallel : 'w -> 'w -> 'w;  (** combination of parallel branches *)
}

type 'w network
(** Mutable two-terminal multigraph. *)

val of_edges : n:int -> source:int -> sink:int -> (int * int * 'w) list -> 'w network
(** [of_edges ~n ~source ~sink edges] over nodes [0..n−1]. Requirements
    (checked): [source <> sink]; the edge set is acyclic; every node lies
    on a path from [source] to [sink]. Multi-edges are allowed. *)

val of_task_dag :
  Graph.t ->
  task:(Graph.task -> 'w) ->
  edge:(Graph.task -> Graph.task -> 'w) ->
  zero:'w ->
  'w network
(** Activity-on-node to activity-on-arc conversion: each task becomes an
    edge carrying its weight between fresh start/end nodes, each
    dependency an edge carrying its weight, and a super-source/super-sink
    with [zero]-weight edges close the network. *)

type 'w result = {
  weight : 'w;  (** weight of the fully reduced source–sink edge *)
  duplications : int;  (** 0 iff the network was series–parallel *)
}

val reduce : 'w algebra -> 'w network -> 'w result
(** Destructively reduce the network to a single edge. *)

val is_series_parallel : 'w network -> bool
(** Whether series/parallel steps alone fully reduce (the network is
    consumed). *)
