let to_dot ?(name = "dag") ?task_label ?edge_label g =
  let task_label = Option.value task_label ~default:(Printf.sprintf "t%d") in
  let edge_label =
    match edge_label with
    | Some f -> f
    | None ->
      fun u v ->
        (match Graph.volume g ~src:u ~dst:v with
        | Some vol -> Printf.sprintf "%g" vol
        | None -> "")
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to Graph.n_tasks g - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (task_label v))
  done;
  Array.iter
    (fun (u, v, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" u v (edge_label u v)))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
