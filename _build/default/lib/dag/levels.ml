type weights = {
  task : Graph.task -> float;
  edge : Graph.task -> Graph.task -> float;
}

let top_levels g w =
  let n = Graph.n_tasks g in
  let tl = Array.make n 0. in
  Array.iter
    (fun v ->
      let best = ref 0. in
      Array.iter
        (fun (p, _) ->
          let via = tl.(p) +. w.task p +. w.edge p v in
          if via > !best then best := via)
        (Graph.preds g v);
      tl.(v) <- !best)
    (Graph.topo_order g);
  tl

let bottom_levels g w =
  let n = Graph.n_tasks g in
  let bl = Array.make n 0. in
  let topo = Graph.topo_order g in
  for i = n - 1 downto 0 do
    let v = topo.(i) in
    let best = ref 0. in
    Array.iter
      (fun (s, _) ->
        let via = w.edge v s +. bl.(s) in
        if via > !best then best := via)
      (Graph.succs g v);
    bl.(v) <- w.task v +. !best
  done;
  bl

let makespan g w =
  let bl = bottom_levels g w in
  Array.fold_left (fun acc e -> Float.max acc bl.(e)) 0. (Graph.entries g)

let slacks g w =
  let tl = top_levels g w in
  let bl = bottom_levels g w in
  let m = Array.fold_left (fun acc e -> Float.max acc bl.(e)) 0. (Graph.entries g) in
  Array.init (Graph.n_tasks g) (fun i -> Float.max 0. (m -. bl.(i) -. tl.(i)))

let critical_path g w =
  let bl = bottom_levels g w in
  let start =
    let entries = Graph.entries g in
    let best = ref entries.(0) in
    Array.iter (fun e -> if bl.(e) > bl.(!best) then best := e) entries;
    !best
  in
  (* follow, from [start], the successor that realizes the bottom level *)
  let rec walk v acc =
    let acc = v :: acc in
    let next = ref None in
    Array.iter
      (fun (s, _) ->
        let via = w.task v +. w.edge v s +. bl.(s) in
        if Float.abs (via -. bl.(v)) <= 1e-9 *. Float.max 1. (Float.abs bl.(v)) then
          match !next with
          | Some best when bl.(s) <= bl.(best) -> ()
          | _ -> next := Some s)
      (Graph.succs g v);
    match !next with None -> List.rev acc | Some s -> walk s acc
  in
  walk start []
