type 'w algebra = {
  series : 'w -> 'w -> 'w;
  parallel : 'w -> 'w -> 'w;
}

(* Mutable multigraph: per-node association lists of (neighbour, weight).
   Networks here are small (a few hundred nodes), so list scans are
   cheap next to the distribution arithmetic carried in 'w. *)
type 'w network = {
  n : int;
  source : int;
  sink : int;
  out_edges : (int * 'w) list array;
  in_edges : (int * 'w) list array;
  alive : bool array;
}

let check_validity net =
  (* acyclicity + every node on a source→sink path *)
  let reach_from_source = Array.make net.n false in
  let rec dfs_fwd v =
    if not reach_from_source.(v) then begin
      reach_from_source.(v) <- true;
      List.iter (fun (w, _) -> dfs_fwd w) net.out_edges.(v)
    end
  in
  dfs_fwd net.source;
  let reach_to_sink = Array.make net.n false in
  let rec dfs_bwd v =
    if not reach_to_sink.(v) then begin
      reach_to_sink.(v) <- true;
      List.iter (fun (w, _) -> dfs_bwd w) net.in_edges.(v)
    end
  in
  dfs_bwd net.sink;
  for v = 0 to net.n - 1 do
    if net.alive.(v) && not (reach_from_source.(v) && reach_to_sink.(v)) then
      invalid_arg "Series_parallel: node not on any source-sink path"
  done;
  (* Kahn over alive nodes detects cycles *)
  let indeg = Array.make net.n 0 in
  let alive_count = ref 0 in
  for v = 0 to net.n - 1 do
    if net.alive.(v) then begin
      incr alive_count;
      indeg.(v) <- List.length net.in_edges.(v)
    end
  done;
  let queue = Queue.create () in
  for v = 0 to net.n - 1 do
    if net.alive.(v) && indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    List.iter
      (fun (w, _) ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      net.out_edges.(v)
  done;
  if !seen <> !alive_count then invalid_arg "Series_parallel: network has a cycle"

let of_edges ~n ~source ~sink edges =
  if n <= 0 then invalid_arg "Series_parallel.of_edges: empty network";
  if source = sink then invalid_arg "Series_parallel.of_edges: source = sink";
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Series_parallel.of_edges: terminal out of range";
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Series_parallel.of_edges: endpoint out of range";
      if u = v then invalid_arg "Series_parallel.of_edges: self-loop";
      out_edges.(u) <- (v, w) :: out_edges.(u);
      in_edges.(v) <- (u, w) :: in_edges.(v))
    edges;
  let net = { n; source; sink; out_edges; in_edges; alive = Array.make n true } in
  check_validity net;
  net

let of_task_dag g ~task ~edge ~zero =
  let nt = Graph.n_tasks g in
  let start_of v = 2 * v and end_of v = (2 * v) + 1 in
  let source = 2 * nt and sink = (2 * nt) + 1 in
  let edges = ref [] in
  for v = 0 to nt - 1 do
    edges := (start_of v, end_of v, task v) :: !edges
  done;
  Array.iter
    (fun (u, v, _) -> edges := (end_of u, start_of v, edge u v) :: !edges)
    (Graph.edges g);
  Array.iter (fun e -> edges := (source, start_of e, zero) :: !edges) (Graph.entries g);
  Array.iter (fun e -> edges := (end_of e, sink, zero) :: !edges) (Graph.exits g);
  of_edges ~n:((2 * nt) + 2) ~source ~sink !edges

type 'w result = { weight : 'w; duplications : int }

let remove_edge lst node =
  (* remove the first edge to/from [node] *)
  let rec go acc = function
    | [] -> invalid_arg "Series_parallel: internal — edge not found"
    | (x, _) :: rest when x = node -> List.rev_append acc rest
    | e :: rest -> go (e :: acc) rest
  in
  go [] lst

let add_edge net u v w =
  net.out_edges.(u) <- (v, w) :: net.out_edges.(u);
  net.in_edges.(v) <- (u, w) :: net.in_edges.(v)

(* merge all parallel out-edges of [u]; returns true if anything merged *)
let parallel_merge_node alg net u =
  let by_dst = Hashtbl.create 8 in
  let changed = ref false in
  List.iter
    (fun (v, w) ->
      match Hashtbl.find_opt by_dst v with
      | None -> Hashtbl.add by_dst v w
      | Some w0 ->
        changed := true;
        Hashtbl.replace by_dst v (alg.parallel w0 w))
    net.out_edges.(u);
  if !changed then begin
    let merged = Hashtbl.fold (fun v w acc -> (v, w) :: acc) by_dst [] in
    (* rebuild u's out list and each destination's in list *)
    List.iter
      (fun (v, _) ->
        net.in_edges.(v) <- List.filter (fun (x, _) -> x <> u) net.in_edges.(v))
      net.out_edges.(u);
    net.out_edges.(u) <- [];
    List.iter (fun (v, w) -> add_edge net u v w) merged
  end;
  !changed

let series_merge_node alg net v =
  match (net.in_edges.(v), net.out_edges.(v)) with
  | [ (u, win) ], [ (x, wout) ] when v <> net.source && v <> net.sink ->
    net.out_edges.(u) <- remove_edge net.out_edges.(u) v;
    net.in_edges.(x) <- remove_edge net.in_edges.(x) v;
    net.in_edges.(v) <- [];
    net.out_edges.(v) <- [];
    net.alive.(v) <- false;
    add_edge net u x (alg.series win wout);
    true
  | _ -> false

let fixpoint alg net =
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to net.n - 1 do
      if net.alive.(v) then begin
        if parallel_merge_node alg net v then changed := true;
        if series_merge_node alg net v then changed := true
      end
    done
  done

let reduced net =
  match net.out_edges.(net.source) with
  | [ (v, w) ] when v = net.sink ->
    let interior_alive = ref false in
    for u = 0 to net.n - 1 do
      if net.alive.(u) && u <> net.source && u <> net.sink then interior_alive := true
    done;
    if !interior_alive then None else Some w
  | _ -> None

(* topologically first alive interior node (all alive predecessors already
   popped means its preds can only be the source once parallel merging has
   collapsed multi-edges) *)
let first_interior net =
  let indeg = Array.make net.n 0 in
  for v = 0 to net.n - 1 do
    if net.alive.(v) then indeg.(v) <- List.length net.in_edges.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to net.n - 1 do
    if net.alive.(v) && indeg.(v) = 0 then Queue.add v queue
  done;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if v <> net.source && v <> net.sink then found := Some v
    else
      List.iter
        (fun (w, _) ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Queue.add w queue)
        net.out_edges.(v)
  done;
  !found

let duplicate_node alg net v =
  match net.in_edges.(v) with
  | [ (u, win) ] ->
    let outs = net.out_edges.(v) in
    net.out_edges.(u) <- remove_edge net.out_edges.(u) v;
    List.iter
      (fun (x, _) -> net.in_edges.(x) <- List.filter (fun (y, _) -> y <> v) net.in_edges.(x))
      outs;
    net.in_edges.(v) <- [];
    net.out_edges.(v) <- [];
    net.alive.(v) <- false;
    List.iter (fun (x, wout) -> add_edge net u x (alg.series win wout)) outs
  | ins ->
    invalid_arg
      (Printf.sprintf "Series_parallel: duplication needs in-degree 1, got %d"
         (List.length ins))

let reduce alg net =
  let duplications = ref 0 in
  let rec loop () =
    fixpoint alg net;
    match reduced net with
    | Some w -> { weight = w; duplications = !duplications }
    | None -> (
      match first_interior net with
      | Some v ->
        duplicate_node alg net v;
        incr duplications;
        loop ()
      | None -> invalid_arg "Series_parallel.reduce: irreducible network")
  in
  loop ()

let is_series_parallel net =
  let alg = { series = (fun () () -> ()); parallel = (fun () () -> ()) } in
  (* strip weights so reduction is cheap *)
  let unit_net =
    {
      n = net.n;
      source = net.source;
      sink = net.sink;
      out_edges = Array.map (List.map (fun (v, _) -> (v, ()))) net.out_edges;
      in_edges = Array.map (List.map (fun (v, _) -> (v, ()))) net.in_edges;
      alive = Array.copy net.alive;
    }
  in
  fixpoint alg unit_net;
  Option.is_some (reduced unit_net)
