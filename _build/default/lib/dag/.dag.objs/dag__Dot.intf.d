lib/dag/dot.mli: Graph
