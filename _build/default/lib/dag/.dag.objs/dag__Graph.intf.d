lib/dag/graph.mli:
