lib/dag/dot.ml: Array Buffer Graph Option Printf
