lib/dag/series_parallel.mli: Graph
