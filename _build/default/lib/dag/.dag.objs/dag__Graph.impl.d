lib/dag/graph.ml: Array Float Hashtbl Int List Option Queue
