lib/dag/series_parallel.ml: Array Graph Hashtbl List Option Printf Queue
