lib/dag/levels.ml: Array Float Graph List
