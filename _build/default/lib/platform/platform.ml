type proc = int

type t = {
  etc : float array array; (* n × m *)
  tau : float array array; (* m × m, zero diagonal *)
  latency : float array array; (* m × m, zero diagonal *)
}

let check_square name m a =
  if Array.length a <> m then invalid_arg ("Platform.make: " ^ name ^ " must be m x m");
  Array.iteri
    (fun i row ->
      if Array.length row <> m then invalid_arg ("Platform.make: " ^ name ^ " must be m x m");
      if row.(i) <> 0. then invalid_arg ("Platform.make: " ^ name ^ " diagonal must be 0");
      Array.iter
        (fun v ->
          if v < 0. || not (Float.is_finite v) then
            invalid_arg ("Platform.make: " ^ name ^ " entries must be finite and >= 0"))
        row)
    a

let make ~etc ~tau ~latency =
  let n = Array.length etc in
  if n = 0 then invalid_arg "Platform.make: ETC matrix has no tasks";
  let m = Array.length etc.(0) in
  if m = 0 then invalid_arg "Platform.make: ETC matrix has no processors";
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Platform.make: ragged ETC matrix";
      Array.iter
        (fun v ->
          if v <= 0. || not (Float.is_finite v) then
            invalid_arg "Platform.make: computation times must be finite and > 0")
        row)
    etc;
  check_square "tau" m tau;
  check_square "latency" m latency;
  { etc; tau; latency }

let n_procs t = Array.length t.tau
let n_tasks t = Array.length t.etc

let etc t ~task ~proc = t.etc.(task).(proc)

let comm_time t ~src ~dst ~volume =
  if src = dst then 0. else t.latency.(src).(dst) +. (volume *. t.tau.(src).(dst))

let tau t ~src ~dst = t.tau.(src).(dst)
let latency t ~src ~dst = t.latency.(src).(dst)

let mean_etc t ~task =
  let row = t.etc.(task) in
  Array.fold_left ( +. ) 0. row /. float_of_int (Array.length row)

let mean_offdiag a =
  let m = Array.length a in
  if m <= 1 then 0.
  else begin
    let s = ref 0. in
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        if i <> j then s := !s +. a.(i).(j)
      done
    done;
    !s /. float_of_int (m * (m - 1))
  end

let mean_tau t = mean_offdiag t.tau
let mean_latency t = mean_offdiag t.latency

let best_proc t ~task =
  let row = t.etc.(task) in
  let best = ref 0 in
  for p = 1 to Array.length row - 1 do
    if row.(p) < row.(!best) then best := p
  done;
  !best

module Gen = struct
  let homogeneous_matrix ~m ~value =
    Array.init m (fun i -> Array.init m (fun j -> if i = j then 0. else value))

  let check_counts n_tasks n_procs =
    if n_tasks <= 0 then invalid_arg "Platform.Gen: n_tasks must be positive";
    if n_procs <= 0 then invalid_arg "Platform.Gen: n_procs must be positive"

  let cvb ~rng ~n_tasks ~n_procs ~mu_task ~v_task ~v_mach ?(tau = 1.0) ?(latency = 0.) () =
    check_counts n_tasks n_procs;
    if mu_task <= 0. then invalid_arg "Platform.Gen.cvb: mu_task must be positive";
    if v_task < 0. || v_mach < 0. then invalid_arg "Platform.Gen.cvb: negative cv";
    let etc =
      Array.init n_tasks (fun _ ->
          let q = Prng.Sampler.gamma_mean_cv rng ~mean:mu_task ~cv:v_task in
          (* Gamma can produce values arbitrarily close to 0; floor them
             so computation times stay strictly positive. *)
          let q = Float.max (mu_task /. 1000.) q in
          Array.init n_procs (fun _ ->
              Float.max (mu_task /. 1000.)
                (Prng.Sampler.gamma_mean_cv rng ~mean:q ~cv:v_mach)))
    in
    make ~etc
      ~tau:(homogeneous_matrix ~m:n_procs ~value:tau)
      ~latency:(homogeneous_matrix ~m:n_procs ~value:latency)

  let uniform_minval ~rng ~n_tasks ~n_procs ?(minval_lo = 10.) ?(minval_hi = 30.)
      ?(tau = 1.0) ?(latency = 0.) () =
    check_counts n_tasks n_procs;
    if minval_lo <= 0. || minval_hi < minval_lo then
      invalid_arg "Platform.Gen.uniform_minval: need 0 < minval_lo <= minval_hi";
    let etc =
      Array.init n_tasks (fun _ ->
          let minval = Prng.Sampler.uniform rng ~lo:minval_lo ~hi:minval_hi in
          Array.init n_procs (fun _ ->
              Prng.Sampler.uniform rng ~lo:minval ~hi:(2. *. minval)))
    in
    make ~etc
      ~tau:(homogeneous_matrix ~m:n_procs ~value:tau)
      ~latency:(homogeneous_matrix ~m:n_procs ~value:latency)

  let heterogeneous_network ~rng ~tau_lo ~tau_hi ?(latency_lo = 0.) ?(latency_hi = 0.) p =
    if tau_lo < 0. || tau_hi < tau_lo then
      invalid_arg "Platform.Gen.heterogeneous_network: need 0 <= tau_lo <= tau_hi";
    if latency_lo < 0. || latency_hi < latency_lo then
      invalid_arg "Platform.Gen.heterogeneous_network: need 0 <= latency_lo <= latency_hi";
    let m = n_procs p in
    let draw lo hi = if hi > lo then Prng.Sampler.uniform rng ~lo ~hi else lo in
    let tau =
      Array.init m (fun i ->
          Array.init m (fun j -> if i = j then 0. else draw tau_lo tau_hi))
    in
    let latency =
      Array.init m (fun i ->
          Array.init m (fun j -> if i = j then 0. else draw latency_lo latency_hi))
    in
    let n = n_tasks p in
    let etc = Array.init n (fun i -> Array.init m (fun j -> etc p ~task:i ~proc:j)) in
    make ~etc ~tau ~latency
end
