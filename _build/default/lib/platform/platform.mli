(** Heterogeneous target platforms (§II of the paper).

    A platform is a set of [m] processors with
    - an {e ETC matrix} [etc.(task).(proc)] giving each task's minimum
      computation time on each processor (the unrelated-machines model),
    - per-pair transfer times [τ.(p).(q)] (time per data element) and
      latencies [l.(p).(q)], both zero on the diagonal so co-located tasks
      communicate for free. *)

type proc = int

type t

val make :
  etc:float array array ->
  tau:float array array ->
  latency:float array array ->
  t
(** [make ~etc ~tau ~latency] validates shapes ([etc] is n×m, [tau] and
    [latency] are m×m with zero diagonals) and positivity. *)

val n_procs : t -> int
val n_tasks : t -> int

val etc : t -> task:int -> proc:proc -> float
(** Minimum computation time of [task] on [proc]. *)

val comm_time : t -> src:proc -> dst:proc -> volume:float -> float
(** [latency + volume·τ]; exactly 0 when [src = dst]. *)

val tau : t -> src:proc -> dst:proc -> float
val latency : t -> src:proc -> dst:proc -> float

val mean_etc : t -> task:int -> float
(** Average of a task's row — the averaged cost used by HEFT ranks. *)

val mean_tau : t -> float
(** Average off-diagonal τ (0 when [m = 1]). *)

val mean_latency : t -> float
(** Average off-diagonal latency (0 when [m = 1]). *)

val best_proc : t -> task:int -> proc
(** Processor minimizing the task's ETC (ties to the lowest index). *)

(** Random platform generators.

    Two ETC generators cover the paper's two experimental regimes:
    - {!Gen.cvb}: the coefficient-of-variation-based (CVB) method of Ali
      et al. (2000) with Gamma-distributed weights — the paper's
      random-graph setup (μ_task = 20, V_task = V_mach = 0.5);
    - {!Gen.uniform_minval}: each task draws a random minimum processing
      time [minVal] and per-processor times uniform in
      [\[minVal, 2·minVal\]] — the paper's real-application setup.

    Both produce a low degree of unrelatedness (the paper notes this is
    why the heuristics behave consistently). *)
module Gen : sig
  val cvb :
    rng:Prng.Xoshiro.t ->
    n_tasks:int ->
    n_procs:int ->
    mu_task:float ->
    v_task:float ->
    v_mach:float ->
    ?tau:float ->
    ?latency:float ->
    unit ->
    t
  (** CVB: task weight [q_i ~ Gamma(mean = μ_task, cv = V_task)]; then
      [etc.(i).(j) ~ Gamma(mean = q_i, cv = V_mach)]. The network is
      homogeneous with off-diagonal transfer time [tau] (default 1.0) and
      [latency] (default 0, as the paper dropped latency). *)

  val uniform_minval :
    rng:Prng.Xoshiro.t ->
    n_tasks:int ->
    n_procs:int ->
    ?minval_lo:float ->
    ?minval_hi:float ->
    ?tau:float ->
    ?latency:float ->
    unit ->
    t
  (** Per task, [minVal ~ U(minval_lo, minval_hi)] (defaults 10, 30) and
      [etc.(i).(j) ~ U(minVal, 2·minVal)]. Homogeneous network. *)

  val heterogeneous_network :
    rng:Prng.Xoshiro.t ->
    tau_lo:float ->
    tau_hi:float ->
    ?latency_lo:float ->
    ?latency_hi:float ->
    t ->
    t
  (** Replace the network of a platform by per-pair uniform draws
      [τ_{pq} ~ U(tau_lo, tau_hi)] (and optionally latencies), keeping
      the zero diagonal. *)
end
