lib/parallel/par_array.ml: Array Int Pool
