lib/parallel/par_array.mli:
