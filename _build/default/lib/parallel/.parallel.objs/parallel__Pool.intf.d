lib/parallel/pool.mli:
