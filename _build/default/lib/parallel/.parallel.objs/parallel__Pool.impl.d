lib/parallel/pool.ml: Atomic Domain Int List
