let default_domains () = Int.max 1 (Domain.recommended_domain_count () - 1)

let run ?domains ~chunks f =
  if chunks < 0 then invalid_arg "Pool.run: negative chunk count";
  let domains = match domains with Some d -> Int.max 1 d | None -> default_domains () in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let rec loop () =
      let c = Atomic.fetch_and_add next 1 in
      if c < chunks then begin
        (try f c
         with exn ->
           (* record the first failure; later chunks still drain so that
              all domains terminate promptly *)
           ignore (Atomic.compare_and_set failure None (Some exn)));
        loop ()
      end
    in
    loop ()
  in
  let helpers = Int.min (domains - 1) (Int.max 0 (chunks - 1)) in
  let spawned = List.init helpers (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  match Atomic.get failure with Some exn -> raise exn | None -> ()
