type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* Finalizer from Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next t in
  (* Re-mix so that parent and child sequences do not share the additive
     lattice structure. *)
  { state = mix64 (Int64.logxor seed 0x2545F4914F6CDD1DL) }

let next_float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1p-53
