lib/prng/sampler.mli: Xoshiro
