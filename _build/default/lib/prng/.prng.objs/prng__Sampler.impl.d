lib/prng/sampler.ml: Array Xoshiro
