lib/prng/splitmix.mli:
