(** SplitMix64 pseudo-random generator.

    A tiny, fast, well-distributed 64-bit generator whose principal use here
    is seeding and {e splitting}: each call to {!val:split} yields an
    independent child stream, which lets every work item of a parallel sweep
    own a deterministic stream regardless of domain count. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from an arbitrary 64-bit seed. *)

val copy : t -> t
(** [copy t] is an independent clone with identical current state. *)

val next : t -> int64
(** [next t] advances the state and returns 64 uniformly distributed bits. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose subsequent
    outputs are statistically independent of [t]'s. *)

val next_float : t -> float
(** [next_float t] is uniform in [\[0, 1)], using the top 53 bits. *)
