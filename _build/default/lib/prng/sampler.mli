(** Random-variate samplers over a {!Xoshiro} stream.

    These cover every distribution family the reproduction needs: uniform
    task/processor picks, the Beta(2,5) perturbation of the paper's
    uncertainty model, the Gamma weights of the CVB task-heterogeneity
    generator, and normals for testing against the CLT results. *)

type rng = Xoshiro.t

val uniform : rng -> lo:float -> hi:float -> float
(** [uniform rng ~lo ~hi] is uniform on [\[lo, hi)]. Requires [lo <= hi]. *)

val exponential : rng -> rate:float -> float
(** [exponential rng ~rate] has density [rate · exp(−rate·x)]. *)

val normal : rng -> mean:float -> std:float -> float
(** [normal rng ~mean ~std] via the Marsaglia polar method. [std >= 0]. *)

val gamma : rng -> shape:float -> scale:float -> float
(** [gamma rng ~shape ~scale] via Marsaglia & Tsang's squeeze method,
    with the usual boosting trick for [shape < 1]. Requires both positive. *)

val beta : rng -> alpha:float -> beta:float -> float
(** [beta rng ~alpha ~beta] in [\[0,1\]] as [X/(X+Y)] for Gamma variates. *)

val gamma_mean_cv : rng -> mean:float -> cv:float -> float
(** [gamma_mean_cv rng ~mean ~cv] draws a Gamma variate parameterized by its
    mean and coefficient of variation [cv = σ/mean] — the parameterization
    used by the CVB heterogeneity method of Ali et al. [cv = 0] degenerates
    to the constant [mean]. *)

val shuffle : rng -> 'a array -> unit
(** [shuffle rng a] permutes [a] uniformly in place (Fisher–Yates). *)

val choose : rng -> 'a array -> 'a
(** [choose rng a] is a uniform element of the non-empty array [a]. *)
