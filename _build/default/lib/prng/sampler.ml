type rng = Xoshiro.t

let uniform rng ~lo ~hi =
  if lo > hi then invalid_arg "Sampler.uniform: lo > hi";
  lo +. ((hi -. lo) *. Xoshiro.next_float rng)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Sampler.exponential: rate must be positive";
  -.log (Xoshiro.next_float_pos rng) /. rate

let rec standard_normal rng =
  let u = (2. *. Xoshiro.next_float rng) -. 1. in
  let v = (2. *. Xoshiro.next_float rng) -. 1. in
  let s = (u *. u) +. (v *. v) in
  if s >= 1. || s = 0. then standard_normal rng
  else u *. sqrt (-2. *. log s /. s)

let normal rng ~mean ~std =
  if std < 0. then invalid_arg "Sampler.normal: std must be non-negative";
  mean +. (std *. standard_normal rng)

(* Marsaglia & Tsang (2000), "A simple method for generating gamma
   variables". Valid for shape >= 1; smaller shapes are boosted by
   U^(1/shape). *)
let rec gamma_shape_ge1 rng shape =
  let d = shape -. (1. /. 3.) in
  let c = 1. /. sqrt (9. *. d) in
  let rec draw () =
    let x = standard_normal rng in
    let v = 1. +. (c *. x) in
    if v <= 0. then draw ()
    else
      let v = v *. v *. v in
      let u = Xoshiro.next_float_pos rng in
      let x2 = x *. x in
      if u < 1. -. (0.0331 *. x2 *. x2) then d *. v
      else if log u < (0.5 *. x2) +. (d *. (1. -. v +. log v)) then d *. v
      else draw ()
  in
  if shape >= 1. then draw ()
  else
    (* unreachable: callers dispatch on shape *)
    gamma_shape_ge1 rng 1.

let gamma rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Sampler.gamma: shape and scale must be positive";
  if shape >= 1. then scale *. gamma_shape_ge1 rng shape
  else
    let g = gamma_shape_ge1 rng (shape +. 1.) in
    let u = Xoshiro.next_float_pos rng in
    scale *. g *. (u ** (1. /. shape))

let beta rng ~alpha ~beta =
  if alpha <= 0. || beta <= 0. then
    invalid_arg "Sampler.beta: alpha and beta must be positive";
  let x = gamma rng ~shape:alpha ~scale:1. in
  let y = gamma rng ~shape:beta ~scale:1. in
  x /. (x +. y)

let gamma_mean_cv rng ~mean ~cv =
  if mean <= 0. then invalid_arg "Sampler.gamma_mean_cv: mean must be positive";
  if cv < 0. then invalid_arg "Sampler.gamma_mean_cv: cv must be non-negative";
  if cv = 0. then mean
  else
    let shape = 1. /. (cv *. cv) in
    let scale = mean /. shape in
    gamma rng ~shape ~scale

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Xoshiro.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose rng a =
  if Array.length a = 0 then invalid_arg "Sampler.choose: empty array";
  a.(Xoshiro.int rng (Array.length a))
