(** xoshiro256++ pseudo-random generator (Blackman & Vigna).

    The workhorse generator of the library: 256-bit state, period
    [2^256 − 1], excellent statistical quality, and a [jump] function for
    producing widely separated parallel streams. Seeded from {!Splitmix}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] seeds the four state words from a SplitMix64 stream, as
    recommended by the xoshiro authors. *)

val of_splitmix : Splitmix.t -> t
(** [of_splitmix sm] draws the four state words from [sm] (advancing it). *)

val copy : t -> t
(** [copy t] is an independent clone with identical current state. *)

val next : t -> int64
(** [next t] returns the next 64 random bits. *)

val next_float : t -> float
(** [next_float t] is uniform in [\[0, 1)] (top 53 bits). *)

val next_float_pos : t -> float
(** [next_float_pos t] is uniform in [(0, 1)] — never exactly zero, which
    makes it safe as an argument to [log]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive;
    rejection sampling removes modulo bias. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps; calling it [k] times on copies of
    one seed state yields [k] non-overlapping substreams. *)

val split : t -> t
(** [split t] returns a copy of [t] jumped one substream ahead, and jumps
    [t] as well, so parent and child never overlap. *)
