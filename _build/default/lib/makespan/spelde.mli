(** Spelde's CLT-based makespan evaluation (per Ludwig, Möhring & Stork
    2001): every duration is reduced to (mean, standard deviation); sums
    add moments, maxima use Clark's formulas — no convolution at all.
    The result is a normal approximation of the makespan distribution. *)

val moments : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Normal_pair.t
(** Mean and standard deviation of the makespan estimate. *)

val run : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Dist.t
(** The matching normal as a grid distribution (for metric extraction and
    CDF comparisons). *)
