(** Umbrella over the makespan-distribution evaluation methods. *)

type method_ =
  | Classical  (** independence-assumption forward sweep — the paper's choice *)
  | Dodin  (** series–parallel reduction with node duplication *)
  | Spelde  (** (mean, σ) moments + Clark maxima, normal result *)

val all_methods : method_ list
val method_name : method_ -> string

val distribution :
  ?method_:method_ ->
  Sched.Schedule.t ->
  Platform.t ->
  Workloads.Stochastify.t ->
  Distribution.Dist.t
(** Makespan distribution by the chosen method (default {!Classical}). *)

val compare_methods :
  rng:Prng.Xoshiro.t ->
  mc_count:int ->
  Sched.Schedule.t ->
  Platform.t ->
  Workloads.Stochastify.t ->
  (string * float * float) list
(** For each analytic method, the (name, KS, CM) distances against a
    fresh [mc_count]-realization Monte-Carlo run — the §V validation. *)
