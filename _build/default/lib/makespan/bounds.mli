(** Kleindorfer-style stochastic bounds on the makespan distribution
    (Kleindorfer 1971, as revisited by Ludwig, Möhring & Stork 2001).

    The classical forward sweep replaces every maximum of {e dependent}
    completion times by the independent one ([F = F₁F₂]); since
    [P(max ≤ x) ≥ ΠFᵢ(x)] for the positively associated completion times
    of a PERT network (Esary–Proschan–Walkup), that evaluation is a
    stochastic {e upper} bound on the makespan. Replacing each maximum by
    the comonotone one ([F = min Fᵢ], valid for any dependence) gives the
    stochastic {e lower} bound. The true distribution — and its
    Monte-Carlo estimate — lies between the two in the usual stochastic
    order. *)

type t = {
  lower : Distribution.Dist.t;  (** comonotone maxima: M ≽ lower *)
  upper : Distribution.Dist.t;  (** independent maxima (= {!Classic.run}): M ≼ upper *)
}

val run : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> t

val enclose : t -> Distribution.Dist.t -> bool
(** [enclose b d] checks the CDF bracketing
    [F_upper(x) ≤ F_d(x) ≤ F_lower(x)] on a grid, with a small numerical
    whisker — the property Monte-Carlo estimates should satisfy. *)
