(** Dodin's series–parallel makespan evaluation (Dodin 1985).

    The schedule's disjunctive graph is converted to an activity-on-arc
    network and reduced with series (convolution) and parallel (CDF
    product) steps; where the network is not series–parallel, nodes are
    duplicated (see {!Dag.Series_parallel}), which is Dodin's
    approximation. On a series–parallel disjunctive graph the result
    equals the classical method's. *)

type outcome = {
  dist : Distribution.Dist.t;
  duplications : int;  (** 0 iff the disjunctive graph was SP *)
}

val evaluate : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> outcome

val run : Sched.Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Distribution.Dist.t
(** [(evaluate ...).dist]. *)
