lib/makespan/bounds.mli: Distribution Platform Sched Workloads
