lib/makespan/classic.mli: Distribution Platform Sched Workloads
