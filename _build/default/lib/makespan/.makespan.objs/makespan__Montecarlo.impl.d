lib/makespan/montecarlo.ml: Array Dag Distribution Hashtbl Int Parallel Prng Sched Workloads
