lib/makespan/dodin.mli: Distribution Platform Sched Workloads
