lib/makespan/spelde.ml: Array Dag Distribution List Normal_pair Sched Workloads
