lib/makespan/montecarlo.mli: Distribution Platform Prng Sched Workloads
