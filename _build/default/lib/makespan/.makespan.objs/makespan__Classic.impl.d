lib/makespan/classic.ml: Array Dag Distribution List Sched Workloads
