lib/makespan/spelde.mli: Distribution Platform Sched Workloads
