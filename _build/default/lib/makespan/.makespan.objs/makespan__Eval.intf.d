lib/makespan/eval.mli: Distribution Platform Prng Sched Workloads
