lib/makespan/dodin.ml: Array Dag Dist Distribution Sched Workloads
