lib/makespan/eval.ml: Classic Dodin List Montecarlo Spelde Stats
