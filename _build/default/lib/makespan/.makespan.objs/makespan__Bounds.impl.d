lib/makespan/bounds.ml: Array Dag Dist Distribution Float List Sched Workloads
