type method_ =
  | Classical
  | Dodin
  | Spelde

let all_methods = [ Classical; Dodin; Spelde ]

let method_name = function
  | Classical -> "classical"
  | Dodin -> "dodin"
  | Spelde -> "spelde"

let distribution ?(method_ = Classical) sched platform model =
  match method_ with
  | Classical -> Classic.run sched platform model
  | Dodin -> Dodin.run sched platform model
  | Spelde -> Spelde.run sched platform model

let compare_methods ~rng ~mc_count sched platform model =
  let emp = Montecarlo.run ~rng ~count:mc_count sched platform model in
  List.map
    (fun m ->
      let d = distribution ~method_:m sched platform model in
      let ks = Stats.Distance.ks (Analytic d) (Sampled emp) in
      let cm = Stats.Distance.cm_area (Analytic d) (Sampled emp) in
      (method_name m, ks, cm))
    all_methods
