(** Monte-Carlo evaluation of the makespan distribution — the ground
    truth the paper validates its analytic evaluations against (100 000
    realizations in §V).

    Every realization samples all task and communication durations from
    the uncertainty model and replays the eager execution. Realizations
    are cut into fixed chunks, each with its own split PRNG stream, so
    the result is independent of the number of domains used. *)

val realizations :
  ?domains:int ->
  ?chunk_size:int ->
  ?antithetic:bool ->
  rng:Prng.Xoshiro.t ->
  count:int ->
  Sched.Schedule.t ->
  Platform.t ->
  Workloads.Stochastify.t ->
  float array
(** [count] sampled makespans ([rng] is advanced).

    With [~antithetic:true] realizations are generated in negatively
    correlated pairs through inverse-CDF sampling ([u] and [1 − u] per
    duration): each marginal is exact, but the variance of the resulting
    {e mean} estimate drops substantially (the makespan is monotone in
    every duration, the textbook antithetic condition). [count] is
    rounded up to even in that mode. *)

val run :
  ?domains:int ->
  ?chunk_size:int ->
  ?antithetic:bool ->
  rng:Prng.Xoshiro.t ->
  count:int ->
  Sched.Schedule.t ->
  Platform.t ->
  Workloads.Stochastify.t ->
  Distribution.Empirical.t
(** The empirical makespan distribution over [count] realizations. *)
