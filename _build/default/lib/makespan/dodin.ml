type outcome = {
  dist : Distribution.Dist.t;
  duplications : int;
}

let evaluate sched platform model =
  let open Distribution in
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let task v =
    Workloads.Stochastify.task_dist model platform ~task:v ~proc:proc_of.(v)
  in
  let edge u v =
    match Dag.Graph.volume graph ~src:u ~dst:v with
    | None -> Dist.const 0.
    | Some volume ->
      Workloads.Stochastify.comm_dist model platform ~volume ~src:proc_of.(u)
        ~dst:proc_of.(v)
  in
  let network = Dag.Series_parallel.of_task_dag dgraph ~task ~edge ~zero:(Dist.const 0.) in
  let algebra =
    {
      Dag.Series_parallel.series = (fun a b -> Dist.add ~points a b);
      parallel = (fun a b -> Dist.max_indep ~points a b);
    }
  in
  let result = Dag.Series_parallel.reduce algebra network in
  { dist = result.Dag.Series_parallel.weight; duplications = result.Dag.Series_parallel.duplications }

let run sched platform model = (evaluate sched platform model).dist
