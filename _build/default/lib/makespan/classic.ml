let completion_dists sched platform model =
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let n = Dag.Graph.n_tasks dgraph in
  let completion = Array.make n (Distribution.Dist.const 0.) in
  Array.iter
    (fun v ->
      let arrivals =
        Array.to_list (Dag.Graph.preds dgraph v)
        |> List.map (fun (p, _) ->
               (* disjunctive edges carry no data: volume lookup must use
                  the original graph *)
               match Dag.Graph.volume graph ~src:p ~dst:v with
               | None -> completion.(p)
               | Some volume ->
                 let comm =
                   Workloads.Stochastify.comm_dist model platform ~volume
                     ~src:proc_of.(p) ~dst:proc_of.(v)
                 in
                 Distribution.Dist.add ~points completion.(p) comm)
      in
      let ready =
        match arrivals with
        | [] -> Distribution.Dist.const 0.
        | ds -> Distribution.Dist.max_list ~points ds
      in
      let dur = Workloads.Stochastify.task_dist model platform ~task:v ~proc:proc_of.(v) in
      completion.(v) <- Distribution.Dist.add ~points ready dur)
    (Dag.Graph.topo_order dgraph);
  completion

let run sched platform model =
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let completion = completion_dists sched platform model in
  let exits = Dag.Graph.exits dgraph in
  Distribution.Dist.max_list ~points (Array.to_list (Array.map (fun e -> completion.(e)) exits))
