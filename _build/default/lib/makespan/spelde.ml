let moments sched platform model =
  let open Distribution in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let n = Dag.Graph.n_tasks dgraph in
  let completion = Array.make n (Normal_pair.const 0.) in
  Array.iter
    (fun v ->
      let arrivals =
        Array.to_list (Dag.Graph.preds dgraph v)
        |> List.map (fun (p, _) ->
               match Dag.Graph.volume graph ~src:p ~dst:v with
               | None -> completion.(p)
               | Some volume ->
                 let src = proc_of.(p) and dst = proc_of.(v) in
                 let comm =
                   Normal_pair.make
                     ~mean:(Workloads.Stochastify.comm_mean model platform ~volume ~src ~dst)
                     ~std:(Workloads.Stochastify.comm_std model platform ~volume ~src ~dst)
                 in
                 Normal_pair.add completion.(p) comm)
      in
      let ready =
        match arrivals with [] -> Normal_pair.const 0. | ds -> Normal_pair.max_list ds
      in
      let dur =
        Normal_pair.make
          ~mean:(Workloads.Stochastify.task_mean model platform ~task:v ~proc:proc_of.(v))
          ~std:(Workloads.Stochastify.task_std model platform ~task:v ~proc:proc_of.(v))
      in
      completion.(v) <- Normal_pair.add ready dur)
    (Dag.Graph.topo_order dgraph);
  let exits = Dag.Graph.exits dgraph in
  Normal_pair.max_list (Array.to_list (Array.map (fun e -> completion.(e)) exits))

let run sched platform model =
  Distribution.Normal_pair.to_normal ~points:model.Workloads.Stochastify.points
    (moments sched platform model)
