type t = {
  lower : Distribution.Dist.t;
  upper : Distribution.Dist.t;
}

(* the classical sweep with a pluggable maximum operator *)
let sweep ~max_op sched platform model =
  let open Distribution in
  let points = model.Workloads.Stochastify.points in
  let dgraph = Sched.Disjunctive.graph_of sched in
  let graph = sched.Sched.Schedule.graph in
  let proc_of = sched.Sched.Schedule.proc_of in
  let n = Dag.Graph.n_tasks dgraph in
  let completion = Array.make n (Dist.const 0.) in
  Array.iter
    (fun v ->
      let arrivals =
        Array.to_list (Dag.Graph.preds dgraph v)
        |> List.map (fun (p, _) ->
               match Dag.Graph.volume graph ~src:p ~dst:v with
               | None -> completion.(p)
               | Some volume ->
                 let comm =
                   Workloads.Stochastify.comm_dist model platform ~volume
                     ~src:proc_of.(p) ~dst:proc_of.(v)
                 in
                 Dist.add ~points completion.(p) comm)
      in
      let ready =
        match arrivals with
        | [] -> Dist.const 0.
        | d :: ds -> List.fold_left (fun acc x -> max_op ~points acc x) d ds
      in
      let dur = Workloads.Stochastify.task_dist model platform ~task:v ~proc:proc_of.(v) in
      completion.(v) <- Dist.add ~points ready dur)
    (Dag.Graph.topo_order dgraph);
  let exits = Dag.Graph.exits dgraph in
  match Array.to_list (Array.map (fun e -> completion.(e)) exits) with
  | [] -> Dist.const 0.
  | d :: ds -> List.fold_left (fun acc x -> max_op ~points acc x) d ds

let run sched platform model =
  {
    lower = sweep ~max_op:(fun ~points a b -> Distribution.Dist.max_comonotone ~points a b)
        sched platform model;
    upper = sweep ~max_op:(fun ~points a b -> Distribution.Dist.max_indep ~points a b)
        sched platform model;
  }

let enclose b d =
  let open Distribution in
  let lo1, hi1 = Dist.support b.lower in
  let lo2, hi2 = Dist.support b.upper in
  let lo3, hi3 = Dist.support d in
  let lo = Float.min lo1 (Float.min lo2 lo3) and hi = Float.max hi1 (Float.max hi2 hi3) in
  let ok = ref true in
  let n = 256 in
  (* tolerance for grid resampling and Monte-Carlo noise *)
  let eps = 0.02 in
  for i = 0 to n do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int n) in
    let f_upper = Dist.cdf_at b.upper x in
    let f_lower = Dist.cdf_at b.lower x in
    let f = Dist.cdf_at d x in
    if f < f_upper -. eps || f > f_lower +. eps then ok := false
  done;
  !ok
