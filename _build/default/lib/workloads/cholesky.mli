(** Task graph of the tiled Cholesky decomposition.

    The classic right-looking factorization over [b × b] tiles:
    [POTRF(k)] factors the diagonal tile, [TRSM(k, i)] solves the
    panel, and [UPDATE(k, i, j)] (SYRK on the diagonal, GEMM off it)
    applies the trailing update. For [b = 3] this gives the 10-task
    Cholesky graph of the paper's Fig. 3. *)

type kind =
  | Potrf of int  (** [Potrf k] *)
  | Trsm of int * int  (** [Trsm (k, i)], [i > k] *)
  | Update of int * int * int  (** [Update (k, i, j)], [k < j <= i] *)

val n_tasks : tiles:int -> int
(** Number of tasks for a [tiles × tiles] tiled matrix:
    [b + b(b−1)/2 + Σ_k (b−k−1)(b−k)/2]. *)

val generate : tiles:int -> ?volume:float -> unit -> Dag.Graph.t
(** [generate ~tiles ()] builds the DAG; every edge carries the uniform
    tile communication [volume] (default 20.0, the same order as the
    time scale when computation costs are a few tens). *)

val kind_of : tiles:int -> Dag.Graph.task -> kind
(** Decode a task index back to its algebraic role. *)

val task_name : tiles:int -> Dag.Graph.task -> string
(** Human-readable name, e.g. ["POTRF(1)"], ["GEMM(0,2,1)"]. *)
