(** The paper's uncertainty model (§II/§V), generalized: every
    deterministic duration [w] (a minimum value) becomes the random
    variable [w · (1 + (UL − 1) · X)] supported on [\[w, w·UL\]], where
    [X ∈ \[0,1\]] follows a configurable {!shape}.

    The paper uses [Beta (α = 2, β = 5)] (right-skewed, nonzero mode) —
    the default here. Its future work asks for “non-standard probability
    distributions (with some oscillations)”: the {!Oscillating} shape is
    exactly that (a tri-modal Beta mixture), with {!Uniform} and
    {!Triangular} as further standard alternatives.

    The module offers the views every evaluation method needs: full grid
    distributions (classical/Dodin), exact first two moments (Spelde,
    slack), direct sampling (Monte Carlo), and inverse-CDF sampling
    (antithetic Monte Carlo). *)

type shape =
  | Beta of { alpha : float; beta : float }
      (** requires α > 1 and β > 1 (finite, unimodal density) *)
  | Uniform
  | Triangular of { mode : float }  (** mode position in [\[0,1\]] *)
  | Oscillating
      (** tri-modal Beta mixture on [\[0,1\]] — the Fig. 7 “special”
          distribution reshaped as a perturbation *)

type t = private {
  ul : float;  (** uncertainty level, >= 1; 1 = deterministic *)
  shape : shape;
  points : int;  (** grid resolution for distribution views *)
  task_ul : (int -> float) option;
      (** per-task UL override (variable-UL extension, §VIII future work) *)
}

val make : ?alpha:float -> ?beta:float -> ?points:int -> ul:float -> unit -> t
(** The paper's model: Beta shape with α = 2, β = 5 by default,
    points = {!Distribution.Dist.default_points}. *)

val make_shaped : ?points:int -> shape:shape -> ul:float -> unit -> t
(** Any {!shape}; parameters validated. *)

val make_variable :
  ?alpha:float ->
  ?beta:float ->
  ?points:int ->
  base_ul:float ->
  task_ul:(int -> float) ->
  unit ->
  t
(** Variable-UL model (the paper's first future-work item): task [i]'s
    computation time uses [max 1 (task_ul i)] as its uncertainty level,
    while communications keep [base_ul]. With a constant UL the standard
    deviation of every duration is proportional to its mean — which is
    exactly what makes the makespan a good robustness proxy in the paper;
    variable UL breaks that equivalence. [task_ul] must be a pure
    function (it is re-evaluated freely, including across domains). *)

val effective_ul : t -> task:int -> float
(** The uncertainty level applied to a given task. *)

val deterministic : t
(** UL = 1: every duration stays a point mass. *)

(** {1 The unit perturbation X} *)

val shape_mean : shape -> float
(** E\[X\] (closed form for every shape). *)

val shape_std : shape -> float
(** √Var(X) (closed form). *)

val shape_pdf : shape -> float -> float
(** Density of X at a point of [\[0,1\]]. *)

val shape_quantile : shape -> float -> float
(** Inverse CDF of X on [\[0,1\]]. *)

(** {1 Views of a perturbed weight [w]} *)

val dist : t -> float -> Distribution.Dist.t
(** Full distribution of the perturbed weight ([Dist.const w] if [w = 0]
    or UL = 1). *)

val mean : t -> float -> float
(** Exact mean [w · (1 + (UL−1) · E\[X\])]. *)

val std : t -> float -> float
(** Exact standard deviation [w · (UL−1) · √Var(X)]. *)

val sample : t -> Prng.Xoshiro.t -> float -> float
(** One realization of the perturbed weight. *)

val sample_quantile : t -> u:float -> float -> float
(** [sample_quantile ~u w] maps a uniform variate [u ∈ \[0,1\]] through
    the perturbation's quantile function — inverse-CDF sampling, the
    basis of the antithetic-variates Monte-Carlo mode ([u] and [1−u]
    yield negatively correlated realizations). *)

(** {1 Durations of a scheduled application} *)

val task_dist : t -> Platform.t -> task:int -> proc:int -> Distribution.Dist.t
(** Distribution of a task's computation time on a processor. *)

val task_mean : t -> Platform.t -> task:int -> proc:int -> float
val task_std : t -> Platform.t -> task:int -> proc:int -> float
val task_sample : t -> Prng.Xoshiro.t -> Platform.t -> task:int -> proc:int -> float

val task_sample_quantile : t -> u:float -> Platform.t -> task:int -> proc:int -> float
(** Inverse-CDF view of a task duration (per-task UL honoured). *)

val comm_dist :
  t -> Platform.t -> volume:float -> src:int -> dst:int -> Distribution.Dist.t
(** Distribution of the communication time for [volume] data elements
    between the processors hosting the two tasks ([const 0] if they are
    co-located or the deterministic time is 0). *)

val comm_mean : t -> Platform.t -> volume:float -> src:int -> dst:int -> float
val comm_std : t -> Platform.t -> volume:float -> src:int -> dst:int -> float

val comm_sample :
  t -> Prng.Xoshiro.t -> Platform.t -> volume:float -> src:int -> dst:int -> float

val comm_sample_quantile :
  t -> u:float -> Platform.t -> volume:float -> src:int -> dst:int -> float
(** Inverse-CDF view of a communication duration. *)
