lib/workloads/cholesky.mli: Dag
