lib/workloads/fft_graph.ml: Dag
