lib/workloads/lu.mli: Dag
