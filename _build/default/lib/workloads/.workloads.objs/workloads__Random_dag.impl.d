lib/workloads/random_dag.ml: Array Dag Int Prng
