lib/workloads/stochastify.ml: Distribution Float List Numerics Platform Prng
