lib/workloads/stochastify.mli: Distribution Platform Prng
