lib/workloads/gauss_elim.ml: Dag Hashtbl List Printf
