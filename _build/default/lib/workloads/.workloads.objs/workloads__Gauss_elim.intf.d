lib/workloads/gauss_elim.mli: Dag
