lib/workloads/cholesky.ml: Dag Hashtbl List Printf
