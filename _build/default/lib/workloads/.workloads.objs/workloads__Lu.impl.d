lib/workloads/lu.ml: Dag Hashtbl List Printf
