lib/workloads/fft_graph.mli: Dag
