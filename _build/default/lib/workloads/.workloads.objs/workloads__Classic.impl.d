lib/workloads/classic.ml: Dag Int List
