lib/workloads/random_dag.mli: Dag Prng
