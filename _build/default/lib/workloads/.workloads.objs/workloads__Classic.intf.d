lib/workloads/classic.mli: Dag
