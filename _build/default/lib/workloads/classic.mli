(** Classic benchmark DAG shapes: chains, trees, fork–join, join,
    diamond/stencil grids.

    The join graph is the shape of the paper's Fig. 9 argument (N
    independent i.i.d. tasks feeding one final task); the others round out
    the example suite and the property tests. *)

val chain : n:int -> ?volume:float -> unit -> Dag.Graph.t
(** [n] tasks in a line. *)

val join : n:int -> ?volume:float -> unit -> Dag.Graph.t
(** [n] independent tasks (ids [0..n−1]) all feeding a final join task
    (id [n]) — [n + 1] tasks total, Fig. 9's graph. *)

val fork_join : width:int -> ?volume:float -> unit -> Dag.Graph.t
(** One source, [width] parallel tasks, one sink ([width + 2] tasks). *)

val in_tree : depth:int -> ?arity:int -> ?volume:float -> unit -> Dag.Graph.t
(** Complete [arity]-ary in-tree (leaves are entries, root is the only
    exit) of the given [depth] (a single root at depth 0). *)

val out_tree : depth:int -> ?arity:int -> ?volume:float -> unit -> Dag.Graph.t
(** Mirror image of {!in_tree}. *)

val diamond : rows:int -> ?volume:float -> unit -> Dag.Graph.t
(** 2-D dependency grid ([rows × rows] tasks): task [(i,j)] depends on
    [(i−1,j)] and [(i,j−1)] — the wavefront/stencil pattern. *)
