let generate ~rng ~n ?(ccr = 0.1) ?(mu_task = 20.) ?(v_comm = 0.5) ?(mean_tau = 1.0)
    ?max_out_degree () =
  if n <= 0 then invalid_arg "Random_dag.generate: n must be positive";
  if ccr < 0. then invalid_arg "Random_dag.generate: ccr must be >= 0";
  if mu_task <= 0. then invalid_arg "Random_dag.generate: mu_task must be positive";
  if mean_tau <= 0. then invalid_arg "Random_dag.generate: mean_tau must be positive";
  (match max_out_degree with
  | Some d when d < 1 -> invalid_arg "Random_dag.generate: max_out_degree must be >= 1"
  | _ -> ());
  let mean_volume = ccr *. mu_task /. mean_tau in
  let volume () =
    if mean_volume = 0. then 0.
    else if v_comm = 0. then mean_volume
    else Prng.Sampler.gamma_mean_cv rng ~mean:mean_volume ~cv:v_comm
  in
  let edges = ref [] in
  (* Node i connects to [degree] distinct nodes among the i already
     created ones; degree is uniform in [1, available] (§V), optionally
     capped. Edges are oriented old → new so node 0 is an entry. *)
  for i = 1 to n - 1 do
    let available = i in
    let cap = match max_out_degree with Some d -> Int.min d available | None -> available in
    let degree = 1 + Prng.Xoshiro.int rng cap in
    let targets = Array.init available (fun j -> j) in
    Prng.Sampler.shuffle rng targets;
    for k = 0 to degree - 1 do
      edges := (targets.(k), i, volume ()) :: !edges
    done
  done;
  Dag.Graph.make ~n ~edges:!edges
