(** Task graph of parallel Gaussian elimination (Cosnard, Marrakchi,
    Robert & Trystram 1988), the paper's second real application.

    At step [k] (1-based, [k < n]) a pivot task [Pivot k] prepares column
    [k]; update tasks [Update (k, j)] for [j > k] apply it to the
    remaining columns. [Update (k, j)] needs the pivot of step [k] and the
    updated column [j] from step [k − 1]; the pivot of step [k] needs
    [Update (k−1, k)].

    Task count: [(n−1) + n(n−1)/2]; with [n = 14] this yields 104 tasks —
    the closest realization of the paper's “Gaussian elimination graph of
    103 tasks” (see DESIGN.md). *)

type kind =
  | Pivot of int  (** [Pivot k], [1 <= k <= n−1] *)
  | Update of int * int  (** [Update (k, j)], [k < j <= n] *)

val n_tasks : n:int -> int
(** [(n−1) + n(n−1)/2] for an [n × n] system, [n >= 2]. *)

val generate : n:int -> ?volume:float -> unit -> Dag.Graph.t
(** Build the DAG; each edge carries communication [volume]
    (default 20.0, the same order as the computation times, per §V). *)

val kind_of : n:int -> Dag.Graph.task -> kind
val task_name : n:int -> Dag.Graph.task -> string
