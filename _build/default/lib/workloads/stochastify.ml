type shape =
  | Beta of { alpha : float; beta : float }
  | Uniform
  | Triangular of { mode : float }
  | Oscillating

type t = {
  ul : float;
  shape : shape;
  points : int;
  task_ul : (int -> float) option;
}

(* ------------------------------------------------------------------ *)
(* The unit perturbation X on [0,1]                                    *)
(* ------------------------------------------------------------------ *)

(* the Oscillating shape: a tri-modal Beta mixture (weight, alpha, beta,
   lo, hi) — the Fig. 7 "special" distribution squeezed into [0,1] *)
let oscillating_components =
  [ (0.35, 2., 5., 0., 0.30); (0.40, 5., 2., 0.20, 0.70); (0.25, 3., 3., 0.625, 1.0) ]

let check_shape = function
  | Beta { alpha; beta } ->
    if alpha <= 1. || beta <= 1. then
      invalid_arg "Stochastify: Beta shape needs alpha > 1 and beta > 1"
  | Uniform -> ()
  | Triangular { mode } ->
    if mode < 0. || mode > 1. then
      invalid_arg "Stochastify: Triangular mode must be in [0,1]"
  | Oscillating -> ()

let beta_mean ~alpha ~beta = alpha /. (alpha +. beta)

let beta_var ~alpha ~beta =
  let s = alpha +. beta in
  alpha *. beta /. (s *. s *. (s +. 1.))

let shape_mean = function
  | Beta { alpha; beta } -> beta_mean ~alpha ~beta
  | Uniform -> 0.5
  | Triangular { mode } -> (1. +. mode) /. 3.
  | Oscillating ->
    List.fold_left
      (fun acc (w, a, b, lo, hi) -> acc +. (w *. (lo +. ((hi -. lo) *. beta_mean ~alpha:a ~beta:b))))
      0. oscillating_components

let shape_variance = function
  | Beta { alpha; beta } -> beta_var ~alpha ~beta
  | Uniform -> 1. /. 12.
  | Triangular { mode } ->
    (* var of Triangular(0, mode, 1) *)
    (1. +. (mode *. mode) -. mode) /. 18.
  | Oscillating ->
    (* mixture: E[X²] − E[X]² from component moments *)
    let m = shape_mean Oscillating in
    let m2 =
      List.fold_left
        (fun acc (w, a, b, lo, hi) ->
          let mu_i = lo +. ((hi -. lo) *. beta_mean ~alpha:a ~beta:b) in
          let var_i = (hi -. lo) *. (hi -. lo) *. beta_var ~alpha:a ~beta:b in
          acc +. (w *. (var_i +. (mu_i *. mu_i))))
        0. oscillating_components
    in
    Float.max 0. (m2 -. (m *. m))

let shape_std s = sqrt (shape_variance s)

let shape_pdf shape x =
  if x < 0. || x > 1. then 0.
  else
    match shape with
    | Beta { alpha; beta } -> Numerics.Special.beta_pdf ~alpha ~beta x
    | Uniform -> 1.
    | Triangular { mode } ->
      if x < mode then 2. *. x /. mode
      else if x > mode then 2. *. (1. -. x) /. (1. -. mode)
      else 2.
    | Oscillating ->
      List.fold_left
        (fun acc (w, a, b, lo, hi) ->
          if x < lo || x > hi then acc
          else
            acc
            +. (w /. (hi -. lo) *. Numerics.Special.beta_pdf ~alpha:a ~beta:b ((x -. lo) /. (hi -. lo))))
        0. oscillating_components

let shape_cdf shape x =
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else
    match shape with
    | Beta { alpha; beta } -> Numerics.Special.betainc ~alpha ~beta x
    | Uniform -> x
    | Triangular { mode } ->
      if x < mode then x *. x /. mode else 1. -. ((1. -. x) *. (1. -. x) /. (1. -. mode))
    | Oscillating ->
      List.fold_left
        (fun acc (w, a, b, lo, hi) ->
          let frac =
            if x <= lo then 0.
            else if x >= hi then 1.
            else Numerics.Special.betainc ~alpha:a ~beta:b ((x -. lo) /. (hi -. lo))
          in
          acc +. (w *. frac))
        0. oscillating_components

let shape_quantile shape u =
  if u < 0. || u > 1. then invalid_arg "Stochastify.shape_quantile: u must be in [0,1]";
  if u = 0. then 0.
  else if u = 1. then 1.
  else
    match shape with
    | Beta { alpha; beta } -> Numerics.Special.betainc_inv ~alpha ~beta u
    | Uniform -> u
    | Triangular { mode } ->
      if u < mode then sqrt (u *. mode) else 1. -. sqrt ((1. -. u) *. (1. -. mode))
    | Oscillating ->
      (* the mixture CDF is strictly increasing where its support is;
         numeric inversion is cheap and exact enough *)
      Numerics.Rootfind.brent ~tol:1e-12 ~f:(fun x -> shape_cdf shape x -. u) ~lo:0. ~hi:1. ()

let shape_sample shape rng =
  match shape with
  | Beta { alpha; beta } -> Prng.Sampler.beta rng ~alpha ~beta
  | Uniform -> Prng.Xoshiro.next_float rng
  | Triangular _ -> shape_quantile shape (Prng.Xoshiro.next_float rng)
  | Oscillating ->
    (* pick a component by weight, then sample its scaled Beta *)
    let u = Prng.Xoshiro.next_float rng in
    let rec pick acc = function
      | [] -> List.nth oscillating_components (List.length oscillating_components - 1)
      | ((w, _, _, _, _) as c) :: rest -> if u < acc +. w then c else pick (acc +. w) rest
    in
    let _, a, b, lo, hi = pick 0. oscillating_components in
    lo +. ((hi -. lo) *. Prng.Sampler.beta rng ~alpha:a ~beta:b)

(* ------------------------------------------------------------------ *)
(* Model construction                                                  *)
(* ------------------------------------------------------------------ *)

let check_points points =
  if points < 2 then invalid_arg "Stochastify.make: points must be >= 2"

let make_shaped ?(points = Distribution.Dist.default_points) ~shape ~ul () =
  if ul < 1. then invalid_arg "Stochastify.make: UL must be >= 1";
  check_points points;
  check_shape shape;
  { ul; shape; points; task_ul = None }

let make ?(alpha = 2.) ?(beta = 5.) ?points ~ul () =
  make_shaped ?points ~shape:(Beta { alpha; beta }) ~ul ()

let make_variable ?(alpha = 2.) ?(beta = 5.) ?(points = Distribution.Dist.default_points)
    ~base_ul ~task_ul () =
  if base_ul < 1. then invalid_arg "Stochastify.make_variable: base UL must be >= 1";
  check_points points;
  let shape = Beta { alpha; beta } in
  check_shape shape;
  { ul = base_ul; shape; points; task_ul = Some task_ul }

let effective_ul t ~task =
  match t.task_ul with Some f -> Float.max 1. (f task) | None -> t.ul

let deterministic =
  { ul = 1.; shape = Beta { alpha = 2.; beta = 5. };
    points = Distribution.Dist.default_points; task_ul = None }

(* ------------------------------------------------------------------ *)
(* Views of a perturbed weight                                         *)
(* ------------------------------------------------------------------ *)

let dist_at t ~ul w =
  if w < 0. then invalid_arg "Stochastify.dist: negative weight";
  if w = 0. || ul = 1. then Distribution.Dist.const w
  else
    Distribution.Dist.of_fn ~points:t.points ~lo:w ~hi:(w *. ul) (fun x ->
        shape_pdf t.shape ((x -. w) /. (w *. (ul -. 1.))))

let mean_at t ~ul w = w *. (1. +. ((ul -. 1.) *. shape_mean t.shape))

let std_at t ~ul w = w *. (ul -. 1.) *. shape_std t.shape

let sample_at t ~ul rng w =
  if w = 0. || ul = 1. then w else w *. (1. +. ((ul -. 1.) *. shape_sample t.shape rng))

let sample_quantile_at t ~ul ~u w =
  if u < 0. || u > 1. then invalid_arg "Stochastify.sample_quantile: u must be in [0,1]";
  if w = 0. || ul = 1. then w
  else w *. (1. +. ((ul -. 1.) *. shape_quantile t.shape u))

(* weight-level views at the base UL (used for communications and by
   callers without a task identity) *)
let dist t w = dist_at t ~ul:t.ul w
let mean t w = mean_at t ~ul:t.ul w
let std t w = std_at t ~ul:t.ul w
let sample t rng w = sample_at t ~ul:t.ul rng w
let sample_quantile t ~u w = sample_quantile_at t ~ul:t.ul ~u w

(* task durations honour the per-task UL *)
let task_dist t p ~task ~proc =
  dist_at t ~ul:(effective_ul t ~task) (Platform.etc p ~task ~proc)

let task_mean t p ~task ~proc =
  mean_at t ~ul:(effective_ul t ~task) (Platform.etc p ~task ~proc)

let task_std t p ~task ~proc =
  std_at t ~ul:(effective_ul t ~task) (Platform.etc p ~task ~proc)

let task_sample t rng p ~task ~proc =
  sample_at t ~ul:(effective_ul t ~task) rng (Platform.etc p ~task ~proc)

let task_sample_quantile t ~u p ~task ~proc =
  sample_quantile_at t ~ul:(effective_ul t ~task) ~u (Platform.etc p ~task ~proc)

let comm_weight p ~volume ~src ~dst = Platform.comm_time p ~src ~dst ~volume

let comm_dist t p ~volume ~src ~dst = dist t (comm_weight p ~volume ~src ~dst)
let comm_mean t p ~volume ~src ~dst = mean t (comm_weight p ~volume ~src ~dst)
let comm_std t p ~volume ~src ~dst = std t (comm_weight p ~volume ~src ~dst)

let comm_sample t rng p ~volume ~src ~dst = sample t rng (comm_weight p ~volume ~src ~dst)

let comm_sample_quantile t ~u p ~volume ~src ~dst =
  sample_quantile t ~u (comm_weight p ~volume ~src ~dst)
