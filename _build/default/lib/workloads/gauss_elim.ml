type kind =
  | Pivot of int
  | Update of int * int

let check n = if n < 2 then invalid_arg "Gauss_elim: n must be >= 2"

let n_tasks ~n =
  check n;
  (n - 1) + (n * (n - 1) / 2)

(* canonical order: step by step, pivot first then updates left to right *)
let kinds ~n =
  check n;
  let acc = ref [] in
  for k = n - 1 downto 1 do
    let step = ref [ Pivot k ] in
    for j = k + 1 to n do
      step := !step @ [ Update (k, j) ]
    done;
    acc := !step @ !acc
  done;
  !acc

let index_table ~n =
  let table = Hashtbl.create 64 in
  List.iteri (fun i k -> Hashtbl.add table k i) (kinds ~n);
  table

let generate ~n ?(volume = 20.0) () =
  check n;
  if volume < 0. then invalid_arg "Gauss_elim.generate: volume must be >= 0";
  let table = index_table ~n in
  let id k = Hashtbl.find table k in
  let edges = ref [] in
  let add src dst = edges := (id src, id dst, volume) :: !edges in
  for k = 1 to n - 1 do
    for j = k + 1 to n do
      (* the pivot feeds every update of its step *)
      add (Pivot k) (Update (k, j));
      (* each updated column flows to the next step *)
      if k < n - 1 then
        if j = k + 1 then add (Update (k, j)) (Pivot (k + 1))
        else add (Update (k, j)) (Update (k + 1, j))
    done
  done;
  Dag.Graph.make ~n:(n_tasks ~n) ~edges:!edges

let kind_of ~n task =
  match List.nth_opt (kinds ~n) task with
  | Some k -> k
  | None -> invalid_arg "Gauss_elim.kind_of: task out of range"

let task_name ~n task =
  match kind_of ~n task with
  | Pivot k -> Printf.sprintf "PIV(%d)" k
  | Update (k, j) -> Printf.sprintf "UPD(%d,%d)" k j
