(** Butterfly task graph of an n-point FFT (n a power of two): [log₂ n + 1]
    levels of [n] tasks; task [(l+1, i)] consumes [(l, i)] and
    [(l, i xor 2^l)]. A standard scheduling benchmark with maximal,
    regular communication. *)

val n_tasks : n:int -> int
(** [n·(log₂ n + 1)]; [n] must be a positive power of two. *)

val generate : n:int -> ?volume:float -> unit -> Dag.Graph.t
(** Uniform per-edge communication [volume] (default 20.0). *)

val level_of : n:int -> Dag.Graph.task -> int * int
(** [(level, index)] of a task. *)
