let check_pos name v = if v <= 0 then invalid_arg ("Classic." ^ name ^ ": size must be positive")

let chain ~n ?(volume = 1.0) () =
  check_pos "chain" n;
  let edges = List.init (Int.max 0 (n - 1)) (fun i -> (i, i + 1, volume)) in
  Dag.Graph.make ~n ~edges

let join ~n ?(volume = 1.0) () =
  check_pos "join" n;
  let edges = List.init n (fun i -> (i, n, volume)) in
  Dag.Graph.make ~n:(n + 1) ~edges

let fork_join ~width ?(volume = 1.0) () =
  check_pos "fork_join" width;
  let sink = width + 1 in
  let edges =
    List.concat
      (List.init width (fun i -> [ (0, i + 1, volume); (i + 1, sink, volume) ]))
  in
  Dag.Graph.make ~n:(width + 2) ~edges

(* A complete arity-ary tree with the root at index 0; [towards_root]
   selects the edge orientation. *)
let tree ~depth ~arity ~volume ~towards_root =
  if depth < 0 then invalid_arg "Classic.tree: depth must be >= 0";
  if arity < 1 then invalid_arg "Classic.tree: arity must be >= 1";
  let rec count d = if d = 0 then 1 else 1 + (arity * count (d - 1)) in
  (* nodes indexed level order: children of v are arity·v + 1 … arity·v + arity *)
  let n =
    if arity = 1 then depth + 1
    else (int_of_float (float_of_int arity ** float_of_int (depth + 1)) - 1) / (arity - 1)
  in
  ignore count;
  let edges = ref [] in
  for v = 0 to n - 1 do
    for c = 1 to arity do
      let child = (arity * v) + c in
      if child < n then
        edges :=
          (if towards_root then (child, v, volume) else (v, child, volume)) :: !edges
    done
  done;
  Dag.Graph.make ~n ~edges:!edges

let in_tree ~depth ?(arity = 2) ?(volume = 1.0) () =
  tree ~depth ~arity ~volume ~towards_root:true

let out_tree ~depth ?(arity = 2) ?(volume = 1.0) () =
  tree ~depth ~arity ~volume ~towards_root:false

let diamond ~rows ?(volume = 1.0) () =
  check_pos "diamond" rows;
  let id i j = (i * rows) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to rows - 1 do
      if i + 1 < rows then edges := (id i j, id (i + 1) j, volume) :: !edges;
      if j + 1 < rows then edges := (id i j, id i (j + 1), volume) :: !edges
    done
  done;
  Dag.Graph.make ~n:(rows * rows) ~edges:!edges
