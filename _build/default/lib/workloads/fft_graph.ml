let check n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Fft_graph: n must be a positive power of two"

let log2 n =
  let rec go acc m = if m <= 1 then acc else go (acc + 1) (m / 2) in
  go 0 n

let n_tasks ~n =
  check n;
  n * (log2 n + 1)

let generate ~n ?(volume = 20.0) () =
  check n;
  if volume < 0. then invalid_arg "Fft_graph.generate: volume must be >= 0";
  let levels = log2 n in
  let id l i = (l * n) + i in
  let edges = ref [] in
  for l = 0 to levels - 1 do
    for i = 0 to n - 1 do
      edges := (id l i, id (l + 1) i, volume) :: !edges;
      edges := (id l i, id (l + 1) (i lxor (1 lsl l)), volume) :: !edges
    done
  done;
  Dag.Graph.make ~n:(n * (levels + 1)) ~edges:!edges

let level_of ~n task =
  check n;
  if task < 0 || task >= n_tasks ~n then invalid_arg "Fft_graph.level_of: out of range";
  (task / n, task mod n)
