type kind =
  | Getrf of int
  | Trsm_row of int * int
  | Trsm_col of int * int
  | Gemm of int * int * int

let check_tiles tiles = if tiles <= 0 then invalid_arg "Lu: tiles must be positive"

let kinds ~tiles =
  check_tiles tiles;
  let acc = ref [] in
  for k = tiles - 1 downto 0 do
    let step = ref [ Getrf k ] in
    for j = k + 1 to tiles - 1 do
      step := !step @ [ Trsm_row (k, j) ]
    done;
    for i = k + 1 to tiles - 1 do
      step := !step @ [ Trsm_col (k, i) ]
    done;
    for i = k + 1 to tiles - 1 do
      for j = k + 1 to tiles - 1 do
        step := !step @ [ Gemm (k, i, j) ]
      done
    done;
    acc := !step @ !acc
  done;
  !acc

let n_tasks ~tiles = List.length (kinds ~tiles)

let index_table ~tiles =
  let table = Hashtbl.create 64 in
  List.iteri (fun i k -> Hashtbl.add table k i) (kinds ~tiles);
  table

let generate ~tiles ?(volume = 20.0) () =
  check_tiles tiles;
  if volume < 0. then invalid_arg "Lu.generate: volume must be >= 0";
  let table = index_table ~tiles in
  let id k = Hashtbl.find table k in
  let edges = ref [] in
  let add src dst = edges := (id src, id dst, volume) :: !edges in
  for k = 0 to tiles - 1 do
    for j = k + 1 to tiles - 1 do
      add (Getrf k) (Trsm_row (k, j))
    done;
    for i = k + 1 to tiles - 1 do
      add (Getrf k) (Trsm_col (k, i))
    done;
    for i = k + 1 to tiles - 1 do
      for j = k + 1 to tiles - 1 do
        (* the update of tile (i, j) needs the solved row and column panels *)
        add (Trsm_col (k, i)) (Gemm (k, i, j));
        add (Trsm_row (k, j)) (Gemm (k, i, j));
        (* and feeds tile (i, j)'s consumer at step k+1 *)
        if i = k + 1 && j = k + 1 then add (Gemm (k, i, j)) (Getrf (k + 1))
        else if i = k + 1 then add (Gemm (k, i, j)) (Trsm_row (k + 1, j))
        else if j = k + 1 then add (Gemm (k, i, j)) (Trsm_col (k + 1, i))
        else add (Gemm (k, i, j)) (Gemm (k + 1, i, j))
      done
    done
  done;
  Dag.Graph.make ~n:(n_tasks ~tiles) ~edges:!edges

let kind_of ~tiles task =
  match List.nth_opt (kinds ~tiles) task with
  | Some k -> k
  | None -> invalid_arg "Lu.kind_of: task out of range"

let task_name ~tiles task =
  match kind_of ~tiles task with
  | Getrf k -> Printf.sprintf "GETRF(%d)" k
  | Trsm_row (k, j) -> Printf.sprintf "TRSM-R(%d,%d)" k j
  | Trsm_col (k, i) -> Printf.sprintf "TRSM-C(%d,%d)" k i
  | Gemm (k, i, j) -> Printf.sprintf "GEMM(%d,%d,%d)" k i j
