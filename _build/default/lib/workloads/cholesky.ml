type kind =
  | Potrf of int
  | Trsm of int * int
  | Update of int * int * int

let check_tiles tiles =
  if tiles <= 0 then invalid_arg "Cholesky: tiles must be positive"

(* all tasks, in a canonical order: per step k, factor then panel then
   trailing update *)
let kinds ~tiles =
  check_tiles tiles;
  let acc = ref [] in
  for k = tiles - 1 downto 0 do
    let step = ref [] in
    step := [ Potrf k ];
    for i = k + 1 to tiles - 1 do
      step := !step @ [ Trsm (k, i) ]
    done;
    for i = k + 1 to tiles - 1 do
      for j = k + 1 to i do
        step := !step @ [ Update (k, i, j) ]
      done
    done;
    acc := !step @ !acc
  done;
  !acc

let n_tasks ~tiles = List.length (kinds ~tiles)

let index_table ~tiles =
  let table = Hashtbl.create 64 in
  List.iteri (fun i k -> Hashtbl.add table k i) (kinds ~tiles);
  table

let generate ~tiles ?(volume = 20.0) () =
  check_tiles tiles;
  if volume < 0. then invalid_arg "Cholesky.generate: volume must be >= 0";
  let table = index_table ~tiles in
  let id k = Hashtbl.find table k in
  let edges = ref [] in
  let add src dst = edges := (id src, id dst, volume) :: !edges in
  for k = 0 to tiles - 1 do
    for i = k + 1 to tiles - 1 do
      (* factored diagonal tile feeds the panel solves *)
      add (Potrf k) (Trsm (k, i));
      for j = k + 1 to i do
        (* panel tiles feed the trailing update of tile (i, j) *)
        add (Trsm (k, i)) (Update (k, i, j));
        if j <> i then add (Trsm (k, j)) (Update (k, i, j))
      done
    done;
    (* each updated tile is consumed at step k+1 *)
    for i = k + 1 to tiles - 1 do
      for j = k + 1 to i do
        if i = k + 1 && j = k + 1 then add (Update (k, i, j)) (Potrf (k + 1))
        else if j = k + 1 then add (Update (k, i, j)) (Trsm (k + 1, i))
        else add (Update (k, i, j)) (Update (k + 1, i, j))
      done
    done
  done;
  Dag.Graph.make ~n:(n_tasks ~tiles) ~edges:!edges

let kind_of ~tiles task =
  match List.nth_opt (kinds ~tiles) task with
  | Some k -> k
  | None -> invalid_arg "Cholesky.kind_of: task out of range"

let task_name ~tiles task =
  match kind_of ~tiles task with
  | Potrf k -> Printf.sprintf "POTRF(%d)" k
  | Trsm (k, i) -> Printf.sprintf "TRSM(%d,%d)" k i
  | Update (k, i, j) ->
    if i = j then Printf.sprintf "SYRK(%d,%d)" k i else Printf.sprintf "GEMM(%d,%d,%d)" k i j
