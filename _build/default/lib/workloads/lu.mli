(** Task graph of the tiled LU factorization (no pivoting) — a classic
    heterogeneous-scheduling benchmark beyond the paper's two
    real applications.

    Right-looking over [b × b] tiles: [Getrf k] factors the diagonal
    tile; [Trsm_row (k, j)] and [Trsm_col (k, i)] solve the panel
    row/column; [Gemm (k, i, j)] updates the trailing submatrix. *)

type kind =
  | Getrf of int
  | Trsm_row of int * int  (** [Trsm_row (k, j)], [j > k] *)
  | Trsm_col of int * int  (** [Trsm_col (k, i)], [i > k] *)
  | Gemm of int * int * int  (** [Gemm (k, i, j)], [i, j > k] *)

val n_tasks : tiles:int -> int
(** [Σ_k 1 + 2(b−k−1) + (b−k−1)²] — e.g. 14 tasks for [b = 3]. *)

val generate : tiles:int -> ?volume:float -> unit -> Dag.Graph.t
(** Uniform tile communication [volume] (default 20.0). *)

val kind_of : tiles:int -> Dag.Graph.task -> kind
val task_name : tiles:int -> Dag.Graph.task -> string
