(** The paper's random DAG generator (§V).

    Nodes are created one at a time; each new node connects to previously
    created ones (“the ones at higher level”), with an out-degree drawn
    uniformly between 1 and the number of available nodes. Edge
    communication volumes are Gamma-distributed with a coefficient of
    variation, scaled so the expected communication-to-computation ratio
    matches [ccr] (given the platform's mean computation time and mean
    transfer rate). *)

val generate :
  rng:Prng.Xoshiro.t ->
  n:int ->
  ?ccr:float ->
  ?mu_task:float ->
  ?v_comm:float ->
  ?mean_tau:float ->
  ?max_out_degree:int ->
  unit ->
  Dag.Graph.t
(** [generate ~rng ~n ()] builds a connected random DAG of [n] tasks.

    - [ccr] (default 0.1): target ratio between the mean communication
      time ([volume · mean_tau]) and the mean computation time [mu_task];
    - [mu_task] (default 20.0): the mean computation cost the volumes are
      scaled against (§V's μ_task);
    - [v_comm] (default 0.5): coefficient of variation of edge volumes;
    - [mean_tau] (default 1.0): mean per-element transfer time of the
      intended platform;
    - [max_out_degree]: optional cap on each node's out-degree (the
      paper's unbounded rule makes large graphs quadratically dense). *)
