let check_kappa kappa =
  if kappa < 0. then invalid_arg "Robust_heft: kappa must be >= 0"

let risk_adjusted_weights ~kappa graph platform model =
  check_kappa kappa;
  let m = Platform.n_procs platform in
  let mean_tau = Platform.mean_tau platform in
  let mean_latency = Platform.mean_latency platform in
  let task v =
    (* average over processors of mean + κ·std of the perturbed duration *)
    let acc = ref 0. in
    for p = 0 to m - 1 do
      acc :=
        !acc
        +. Workloads.Stochastify.task_mean model platform ~task:v ~proc:p
        +. (kappa *. Workloads.Stochastify.task_std model platform ~task:v ~proc:p)
    done;
    !acc /. float_of_int m
  in
  let edge u v =
    match Dag.Graph.volume graph ~src:u ~dst:v with
    | None -> 0.
    | Some volume ->
      let w = mean_latency +. (volume *. mean_tau) in
      Workloads.Stochastify.mean model w +. (kappa *. Workloads.Stochastify.std model w)
  in
  { Dag.Levels.task; edge }

let schedule ?(kappa = 1.0) graph platform model =
  check_kappa kappa;
  let ranks = Dag.Levels.bottom_levels graph (risk_adjusted_weights ~kappa graph platform model) in
  let order = Array.init (Dag.Graph.n_tasks graph) (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare ranks.(b) ranks.(a) with 0 -> Int.compare a b | c -> c)
    order;
  (* EFT insertion where each candidate placement is charged its
     risk-adjusted duration on that processor *)
  let m = Platform.n_procs platform in
  let n = Dag.Graph.n_tasks graph in
  let placed_proc = Array.make n (-1) in
  let placed_finish = Array.make n 0. in
  let slots = Array.make m [] (* (start, finish, task), sorted by start *) in
  let risk_dur task proc =
    Workloads.Stochastify.task_mean model platform ~task ~proc
    +. (kappa *. Workloads.Stochastify.task_std model platform ~task ~proc)
  in
  let risk_comm u v proc =
    match Dag.Graph.volume graph ~src:u ~dst:v with
    | None -> 0.
    | Some volume ->
      let w = Platform.comm_time platform ~src:placed_proc.(u) ~dst:proc ~volume in
      Workloads.Stochastify.mean model w +. (kappa *. Workloads.Stochastify.std model w)
  in
  let ready_time task proc =
    Array.fold_left
      (fun acc (p, _) -> Float.max acc (placed_finish.(p) +. risk_comm p task proc))
      0. (Dag.Graph.preds graph task)
  in
  let find_slot proc ~ready ~dur =
    let rec scan candidate = function
      | [] -> candidate
      | (s_start, s_finish, _) :: rest ->
        if candidate +. dur <= s_start then candidate
        else scan (Float.max candidate s_finish) rest
    in
    scan ready slots.(proc)
  in
  Array.iter
    (fun task ->
      let best = ref (-1) and best_finish = ref infinity and best_start = ref 0. in
      for proc = 0 to m - 1 do
        let dur = risk_dur task proc in
        let start = find_slot proc ~ready:(ready_time task proc) ~dur in
        if start +. dur < !best_finish then begin
          best := proc;
          best_finish := start +. dur;
          best_start := start
        end
      done;
      let proc = !best in
      placed_proc.(task) <- proc;
      placed_finish.(task) <- !best_finish;
      let rec insert = function
        | [] -> [ (!best_start, !best_finish, task) ]
        | ((s, _, _) as slot) :: rest when s < !best_start -> slot :: insert rest
        | rest -> (!best_start, !best_finish, task) :: rest
      in
      slots.(proc) <- insert slots.(proc))
    order;
  let order_rows =
    Array.map (fun l -> Array.of_list (List.map (fun (_, _, t) -> t) l)) slots
  in
  Schedule.make ~graph ~n_procs:m ~proc_of:placed_proc ~order:order_rows
