let bil graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let levels = Array.make_matrix n m 0. in
  let topo = Dag.Graph.topo_order graph in
  for i = n - 1 downto 0 do
    let t = topo.(i) in
    for p = 0 to m - 1 do
      let tail = ref 0. in
      Array.iter
        (fun (s, volume) ->
          let best = ref infinity in
          for q = 0 to m - 1 do
            let via =
              levels.(s).(q) +. Platform.comm_time platform ~src:p ~dst:q ~volume
            in
            if via < !best then best := via
          done;
          if !best > !tail then tail := !best)
        (Dag.Graph.succs graph t);
      levels.(t).(p) <- Platform.etc platform ~task:t ~proc:p +. !tail
    done
  done;
  levels

let schedule graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let levels = bil graph platform in
  let remaining_preds = Array.init n (fun v -> Array.length (Dag.Graph.preds graph v)) in
  let ready = ref [] in
  Array.iteri (fun v d -> if d = 0 then ready := v :: !ready) remaining_preds;
  let proc_avail = Array.make m 0. in
  let finish = Array.make n 0. in
  let proc_of = Array.make n (-1) in
  let picks = ref [] in
  let est t p =
    let data = ref 0. in
    Array.iter
      (fun (pred, volume) ->
        let arrival =
          finish.(pred) +. Platform.comm_time platform ~src:proc_of.(pred) ~dst:p ~volume
        in
        if arrival > !data then data := arrival)
      (Dag.Graph.preds graph t);
    Float.max !data proc_avail.(p)
  in
  for _ = 1 to n do
    let r = List.length !ready in
    (* BIM* rows for every ready task *)
    let rows =
      List.map
        (fun t -> (t, Array.init m (fun p -> est t p +. levels.(t).(p))))
        !ready
    in
    (* priority: the k-th smallest BIM* with k = ⌈r/m⌉ (capped at m) *)
    let k = Int.min m ((r + m - 1) / m) in
    let priority row =
      let sorted = Array.copy row in
      Array.sort Float.compare sorted;
      sorted.(k - 1)
    in
    let best_task, best_row =
      match rows with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun ((_, brow) as best) ((_, row) as cand) ->
            if priority row > priority brow then cand else best)
          first rest
    in
    let best_proc = ref 0 in
    for p = 1 to m - 1 do
      if best_row.(p) < best_row.(!best_proc) then best_proc := p
    done;
    let p = !best_proc in
    let start = est best_task p in
    proc_of.(best_task) <- p;
    finish.(best_task) <- start +. Platform.etc platform ~task:best_task ~proc:p;
    proc_avail.(p) <- finish.(best_task);
    picks := (best_task, p) :: !picks;
    ready := List.filter (fun t -> t <> best_task) !ready;
    Array.iter
      (fun (w, _) ->
        remaining_preds.(w) <- remaining_preds.(w) - 1;
        if remaining_preds.(w) = 0 then ready := w :: !ready)
      (Dag.Graph.succs graph best_task)
  done;
  Schedule.of_assignment_sequence ~graph ~n_procs:m (List.rev !picks)
