let render ?(width = 72) sched times =
  if width < 10 then invalid_arg "Gantt.render: width too small";
  let makespan = times.Simulator.makespan in
  if makespan <= 0. then invalid_arg "Gantt.render: empty schedule";
  let cell_of t =
    Int.min (width - 1) (int_of_float (t /. makespan *. float_of_int width))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "time 0 .. %.2f (one cell = %.2f)\n" makespan
       (makespan /. float_of_int width));
  Array.iteri
    (fun p tasks ->
      let row = Bytes.make width '.' in
      Array.iter
        (fun t ->
          let a = cell_of times.Simulator.start.(t) in
          let b = Int.max a (cell_of times.Simulator.finish.(t) - 1) in
          let label = Char.chr (Char.code 'A' + (t mod 26)) in
          for i = a to b do
            Bytes.set row i label
          done)
        tasks;
      Buffer.add_string buf (Printf.sprintf "P%-2d |%s|\n" p (Bytes.to_string row)))
    sched.Schedule.order;
  Buffer.add_string buf "tasks: ";
  for t = 0 to Int.min 25 (Schedule.n_tasks sched - 1) do
    Buffer.add_string buf (Printf.sprintf "%c=%d " (Char.chr (Char.code 'A' + t)) t)
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf
