let graph_of sched =
  let graph = sched.Schedule.graph in
  let extra = ref [] in
  Array.iter
    (fun tasks ->
      for i = 0 to Array.length tasks - 2 do
        let u = tasks.(i) and v = tasks.(i + 1) in
        if not (Dag.Graph.has_edge graph ~src:u ~dst:v) then extra := (u, v, 0.) :: !extra
      done)
    sched.Schedule.order;
  if !extra = [] then graph else Dag.Graph.add_edges graph !extra

let weights sched platform model =
  let graph = sched.Schedule.graph in
  let proc_of = sched.Schedule.proc_of in
  let task v = Workloads.Stochastify.task_mean model platform ~task:v ~proc:proc_of.(v) in
  let edge u v =
    (* disjunctive (processor-order) edges carry no data *)
    match Dag.Graph.volume graph ~src:u ~dst:v with
    | None -> 0.
    | Some volume ->
      Workloads.Stochastify.comm_mean model platform ~volume ~src:proc_of.(u)
        ~dst:proc_of.(v)
  in
  { Dag.Levels.task; edge }
