(** Text Gantt charts of executed schedules, for examples and debugging. *)

val render : ?width:int -> Schedule.t -> Simulator.times -> string
(** [render sched times] draws one row per processor on a time axis of
    [width] character cells (default 72); tasks are labelled by index
    modulo the cell granularity. *)
