lib/sched/cpop.ml: Array Dag Heft List Platform
