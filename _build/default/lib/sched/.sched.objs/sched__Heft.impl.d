lib/sched/heft.ml: Array Dag Float Int List Platform Printf Schedule
