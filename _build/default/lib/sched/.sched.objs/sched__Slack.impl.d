lib/sched/slack.ml: Array Dag Disjunctive Float Schedule Simulator
