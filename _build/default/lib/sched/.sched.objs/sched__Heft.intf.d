lib/sched/heft.mli: Dag Platform Schedule
