lib/sched/slack.mli: Platform Schedule Workloads
