lib/sched/disjunctive.ml: Array Dag Schedule Workloads
