lib/sched/gantt.ml: Array Buffer Bytes Char Int Printf Schedule Simulator
