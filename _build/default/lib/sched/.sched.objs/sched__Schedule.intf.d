lib/sched/schedule.mli: Dag Platform
