lib/sched/bil.ml: Array Dag Float Int List Platform Schedule
