lib/sched/simulator.mli: Dag Platform Prng Schedule Workloads
