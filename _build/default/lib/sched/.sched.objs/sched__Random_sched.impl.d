lib/sched/random_sched.ml: Array Dag List Prng Schedule
