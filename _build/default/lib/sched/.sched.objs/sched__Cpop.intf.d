lib/sched/cpop.mli: Dag Platform Schedule
