lib/sched/bil.mli: Dag Platform Schedule
