lib/sched/schedule.ml: Array Buffer Dag List Printf Queue String
