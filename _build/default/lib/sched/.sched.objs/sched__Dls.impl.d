lib/sched/dls.ml: Array Dag Float List Platform Schedule
