lib/sched/gantt.mli: Schedule Simulator
