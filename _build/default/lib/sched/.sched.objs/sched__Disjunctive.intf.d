lib/sched/disjunctive.mli: Dag Platform Schedule Workloads
