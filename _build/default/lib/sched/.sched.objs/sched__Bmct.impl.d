lib/sched/bmct.ml: Array Dag Float Heft Int List Platform Schedule
