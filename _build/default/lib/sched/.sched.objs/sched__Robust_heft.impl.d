lib/sched/robust_heft.ml: Array Dag Float Int List Platform Schedule Workloads
