lib/sched/simulator.ml: Array Dag Float Platform Queue Schedule Workloads
