lib/sched/robust_heft.mli: Dag Platform Schedule Workloads
