lib/sched/random_sched.mli: Dag Prng Schedule
