lib/sched/bmct.mli: Dag Platform Schedule
