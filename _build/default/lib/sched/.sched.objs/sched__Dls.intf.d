lib/sched/dls.mli: Dag Platform Schedule
