(** Hyb.BMCT — the hybrid heuristic of Sakellariou & Zhao (HCW 2004).

    Phase 1 ranks tasks by upward rank with averaged costs and splits the
    ranked sequence into successive groups of mutually independent tasks.
    Phase 2 schedules each group with the Balanced Minimum Completion
    Time rule: every task starts on its fastest processor, then tasks are
    iteratively migrated away from the processor finishing last while the
    group's completion time improves. *)

val groups : Dag.Graph.t -> Platform.t -> Dag.Graph.task list list
(** The rank-ordered independent groups (exposed for tests: no two tasks
    of a group are connected by an edge). *)

val schedule : Dag.Graph.t -> Platform.t -> Schedule.t
