(** RobustHEFT — the heuristic sketched in the paper's future work (§VIII):
    “a heuristic similar to classic list heuristics based on the standard
    deviation of every task's duration rather than their mean”.

    It is HEFT with uncertainty-aware costs: a task's cost on a processor
    is [mean + κ·std] of its perturbed duration (likewise for edges), so
    both the ranking and the processor choice penalize placements whose
    durations are volatile, not merely long. With κ = 0 it degenerates to
    HEFT computed on mean (rather than minimum) durations. *)

val schedule :
  ?kappa:float -> Dag.Graph.t -> Platform.t -> Workloads.Stochastify.t -> Schedule.t
(** [schedule ~kappa g p model] — default κ = 1.0. Requires [kappa >= 0]. *)

val risk_adjusted_weights :
  kappa:float -> Dag.Graph.t -> Platform.t -> Workloads.Stochastify.t -> Dag.Levels.weights
(** The averaged [mean + κ·std] costs used for ranking (exposed for
    tests and ablation benchmarks). *)
