type plan = {
  sched : Schedule.t;
  topo : int array; (* execution order respecting DAG + processor order *)
}

type times = {
  start : float array;
  finish : float array;
  makespan : float;
}

let prepare sched =
  let graph = sched.Schedule.graph in
  let n = Dag.Graph.n_tasks graph in
  let indeg = Array.init n (fun v -> Array.length (Dag.Graph.preds graph v)) in
  Array.iteri
    (fun v _ -> if Schedule.proc_pred sched v <> None then indeg.(v) <- indeg.(v) + 1)
    indeg;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let topo = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    topo.(!filled) <- v;
    incr filled;
    let release w =
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then Queue.add w queue
    in
    Array.iter (fun (w, _) -> release w) (Dag.Graph.succs graph v);
    (match Schedule.proc_succ sched v with Some w -> release w | None -> ())
  done;
  assert (!filled = n) (* Schedule.make already rejected cyclic orders *);
  { sched; topo }

let schedule_of plan = plan.sched

let run plan ~task_dur ~comm_dur =
  let sched = plan.sched in
  let graph = sched.Schedule.graph in
  let n = Dag.Graph.n_tasks graph in
  let start = Array.make n 0. and finish = Array.make n 0. in
  Array.iter
    (fun v ->
      let ready = ref 0. in
      (match Schedule.proc_pred sched v with
      | Some u -> ready := finish.(u)
      | None -> ());
      Array.iter
        (fun (p, _) ->
          let arrival = finish.(p) +. comm_dur p v in
          if arrival > !ready then ready := arrival)
        (Dag.Graph.preds graph v);
      start.(v) <- !ready;
      let d = task_dur v in
      if d < 0. then invalid_arg "Simulator.run: negative duration";
      finish.(v) <- !ready +. d)
    plan.topo;
  let makespan = Array.fold_left Float.max 0. finish in
  { start; finish; makespan }

let comm_volume graph u v =
  match Dag.Graph.volume graph ~src:u ~dst:v with
  | Some vol -> vol
  | None -> invalid_arg "Simulator: comm_dur queried on a non-edge"

let deterministic sched platform =
  let plan = prepare sched in
  let graph = sched.Schedule.graph in
  run plan
    ~task_dur:(fun v -> Platform.etc platform ~task:v ~proc:sched.Schedule.proc_of.(v))
    ~comm_dur:(fun u v ->
      Platform.comm_time platform ~src:sched.Schedule.proc_of.(u)
        ~dst:sched.Schedule.proc_of.(v) ~volume:(comm_volume graph u v))

let mean_times sched platform model =
  let plan = prepare sched in
  let graph = sched.Schedule.graph in
  run plan
    ~task_dur:(fun v ->
      Workloads.Stochastify.task_mean model platform ~task:v ~proc:sched.Schedule.proc_of.(v))
    ~comm_dur:(fun u v ->
      Workloads.Stochastify.comm_mean model platform ~volume:(comm_volume graph u v)
        ~src:sched.Schedule.proc_of.(u) ~dst:sched.Schedule.proc_of.(v))

let sampled sched platform model ~rng =
  let plan = prepare sched in
  let graph = sched.Schedule.graph in
  run plan
    ~task_dur:(fun v ->
      Workloads.Stochastify.task_sample model rng platform ~task:v
        ~proc:sched.Schedule.proc_of.(v))
    ~comm_dur:(fun u v ->
      Workloads.Stochastify.comm_sample model rng platform ~volume:(comm_volume graph u v)
        ~src:sched.Schedule.proc_of.(u) ~dst:sched.Schedule.proc_of.(v))
