(** The disjunctive graph of a schedule (§II, after Shi et al.).

    Tasks scheduled consecutively on the same processor gain an explicit
    zero-volume dependency edge, so path computations (levels, slack,
    distribution evaluation) over the resulting DAG account for processor
    exclusivity exactly as the eager execution does. *)

val graph_of : Schedule.t -> Dag.Graph.t
(** The schedule's DAG plus a 0-volume edge between each pair of tasks
    consecutive on a processor (skipped when the DAG edge already
    exists). *)

val weights :
  Schedule.t -> Platform.t -> Workloads.Stochastify.t -> Dag.Levels.weights
(** Mean-duration weights for the disjunctive graph: a task weighs its
    mean computation time on its assigned processor; a DAG edge weighs
    its mean communication time between the assigned processors; an added
    processor-order edge weighs 0. Pass {!Workloads.Stochastify.deterministic}
    for minimum (deterministic) weights. *)
