(** Eager execution of a schedule under arbitrary duration assignments.

    One {!prepare}d plan (a topological order of the disjunctive
    constraints) serves any number of {!run}s — deterministic weights,
    mean weights, or the tens of thousands of sampled realizations of the
    Monte-Carlo evaluator. *)

type plan

type times = {
  start : float array;
  finish : float array;
  makespan : float;
}

val prepare : Schedule.t -> plan
(** Precompute the execution order implied by precedence plus processor
    order. *)

val schedule_of : plan -> Schedule.t

val run :
  plan ->
  task_dur:(Dag.Graph.task -> float) ->
  comm_dur:(Dag.Graph.task -> Dag.Graph.task -> float) ->
  times
(** [run plan ~task_dur ~comm_dur] computes eager start/finish times:
    [start t = max(finish (proc-predecessor t),
                   max over DAG preds p (finish p + comm_dur p t))].
    [comm_dur] receives every DAG edge (including co-located pairs, for
    which it should return 0). Durations must be non-negative. *)

val deterministic :
  Schedule.t -> Platform.t -> times
(** Times under the minimum (deterministic) durations of the platform:
    ETC entries for tasks, [latency + volume·τ] for edges. *)

val mean_times : Schedule.t -> Platform.t -> Workloads.Stochastify.t -> times
(** Times under the exact mean durations of the uncertainty model — the
    paper's approximation basis for the slack metrics. *)

val sampled :
  Schedule.t -> Platform.t -> Workloads.Stochastify.t -> rng:Prng.Xoshiro.t -> times
(** One random realization (convenience wrapper; for repeated sampling,
    {!prepare} once and call {!run} with sampling closures). *)
