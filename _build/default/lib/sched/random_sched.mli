(** Random eager schedules (§V).

    The paper's generator repeats three steps until every task is placed:
    pick a uniformly random ready task, assign it to a uniformly random
    processor (appending to that processor's order), update the ready
    list. The resulting schedules sample the space the correlation study
    is computed over. *)

val generate : rng:Prng.Xoshiro.t -> graph:Dag.Graph.t -> n_procs:int -> Schedule.t
(** One random schedule. *)

val generate_many :
  rng:Prng.Xoshiro.t -> graph:Dag.Graph.t -> n_procs:int -> count:int -> Schedule.t list
(** [count] independent random schedules (duplicates are possible but,
    as the paper notes, vanishingly rare beyond tiny graphs). *)
