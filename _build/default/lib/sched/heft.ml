type rank_policy = [ `Mean | `Best | `Worst ]

let average_weights ?(rank = `Mean) graph platform =
  let mean_tau = Platform.mean_tau platform in
  let mean_latency = Platform.mean_latency platform in
  let m = Platform.n_procs platform in
  let collapse v =
    let row = Array.init m (fun p -> Platform.etc platform ~task:v ~proc:p) in
    match rank with
    | `Mean -> Array.fold_left ( +. ) 0. row /. float_of_int m
    | `Best -> Array.fold_left Float.min row.(0) row
    | `Worst -> Array.fold_left Float.max row.(0) row
  in
  let edge u v =
    match Dag.Graph.volume graph ~src:u ~dst:v with
    | Some volume -> mean_latency +. (volume *. mean_tau)
    | None -> 0.
  in
  { Dag.Levels.task = collapse; edge }

let upward_ranks ?rank graph platform =
  Dag.Levels.bottom_levels graph (average_weights ?rank graph platform)

let rank_order ?rank graph platform =
  let ranks = upward_ranks ?rank graph platform in
  let tasks = Array.init (Dag.Graph.n_tasks graph) (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare ranks.(b) ranks.(a) with 0 -> Int.compare a b | c -> c)
    tasks;
  tasks

module Insertion = struct
  type slot = { s_start : float; s_finish : float; s_task : int }

  type t = {
    graph : Dag.Graph.t;
    platform : Platform.t;
    mutable slots : slot list array; (* per proc, sorted by start *)
    placed_proc : int array; (* -1 = not placed *)
    placed_finish : float array;
  }

  let create graph platform =
    let n = Dag.Graph.n_tasks graph in
    {
      graph;
      platform;
      slots = Array.make (Platform.n_procs platform) [];
      placed_proc = Array.make n (-1);
      placed_finish = Array.make n 0.;
    }

  let ready_time t ~task ~proc =
    let acc = ref 0. in
    Array.iter
      (fun (p, volume) ->
        if t.placed_proc.(p) = -1 then
          invalid_arg "Heft.Insertion: predecessor not placed yet";
        let arrival =
          t.placed_finish.(p)
          +. Platform.comm_time t.platform ~src:t.placed_proc.(p) ~dst:proc ~volume
        in
        if arrival > !acc then acc := arrival)
      (Dag.Graph.preds t.graph task);
    !acc

  (* earliest gap of length [dur] starting no earlier than [ready] *)
  let find_slot slots ~ready ~dur =
    let rec scan candidate = function
      | [] -> candidate
      | { s_start; s_finish; _ } :: rest ->
        if candidate +. dur <= s_start then candidate
        else scan (Float.max candidate s_finish) rest
    in
    scan ready slots

  let eft t ~task ~proc =
    let ready = ready_time t ~task ~proc in
    let dur = Platform.etc t.platform ~task ~proc in
    let start = find_slot t.slots.(proc) ~ready ~dur in
    (start, start +. dur)

  let place t ~task ~proc =
    if t.placed_proc.(task) <> -1 then invalid_arg "Heft.Insertion: task already placed";
    let start, finish = eft t ~task ~proc in
    t.placed_proc.(task) <- proc;
    t.placed_finish.(task) <- finish;
    let rec insert = function
      | [] -> [ { s_start = start; s_finish = finish; s_task = task } ]
      | slot :: rest when slot.s_start < start -> slot :: insert rest
      | slots -> { s_start = start; s_finish = finish; s_task = task } :: slots
    in
    t.slots.(proc) <- insert t.slots.(proc)

  let to_schedule t =
    let n = Dag.Graph.n_tasks t.graph in
    for v = 0 to n - 1 do
      if t.placed_proc.(v) = -1 then
        invalid_arg (Printf.sprintf "Heft.Insertion.to_schedule: task %d not placed" v)
    done;
    let order = Array.map (fun slots -> Array.of_list (List.map (fun s -> s.s_task) slots)) t.slots in
    Schedule.make ~graph:t.graph ~n_procs:(Platform.n_procs t.platform)
      ~proc_of:(Array.copy t.placed_proc) ~order
end

let schedule ?rank graph platform =
  let state = Insertion.create graph platform in
  let m = Platform.n_procs platform in
  Array.iter
    (fun task ->
      let best_proc = ref 0 and best_finish = ref infinity in
      for proc = 0 to m - 1 do
        let _, finish = Insertion.eft state ~task ~proc in
        if finish < !best_finish then begin
          best_finish := finish;
          best_proc := proc
        end
      done;
      Insertion.place state ~task ~proc:!best_proc)
    (rank_order ?rank graph platform);
  Insertion.to_schedule state
