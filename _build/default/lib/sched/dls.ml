let median row =
  let a = Array.copy row in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let static_levels graph platform =
  let m = Platform.n_procs platform in
  let w =
    {
      Dag.Levels.task =
        (fun v -> median (Array.init m (fun p -> Platform.etc platform ~task:v ~proc:p)));
      edge = (fun _ _ -> 0.);
    }
  in
  Dag.Levels.bottom_levels graph w

let schedule graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let sl = static_levels graph platform in
  let remaining_preds = Array.init n (fun v -> Array.length (Dag.Graph.preds graph v)) in
  let ready = ref [] in
  Array.iteri (fun v d -> if d = 0 then ready := v :: !ready) remaining_preds;
  let proc_avail = Array.make m 0. in
  let finish = Array.make n 0. in
  let proc_of = Array.make n (-1) in
  let picks = ref [] in
  let mean_etc v = Platform.mean_etc platform ~task:v in
  let data_ready t p =
    Array.fold_left
      (fun acc (pred, volume) ->
        Float.max acc
          (finish.(pred) +. Platform.comm_time platform ~src:proc_of.(pred) ~dst:p ~volume))
      0. (Dag.Graph.preds graph t)
  in
  for _ = 1 to n do
    (* best (ready task, processor) pair by dynamic level *)
    let best = ref None in
    List.iter
      (fun t ->
        for p = 0 to m - 1 do
          let start = Float.max (data_ready t p) proc_avail.(p) in
          let dl = sl.(t) -. start +. (mean_etc t -. Platform.etc platform ~task:t ~proc:p) in
          match !best with
          | Some (_, _, best_dl) when best_dl >= dl -> ()
          | _ -> best := Some (t, p, dl)
        done)
      !ready;
    match !best with
    | None -> assert false
    | Some (t, p, _) ->
      let start = Float.max (data_ready t p) proc_avail.(p) in
      proc_of.(t) <- p;
      finish.(t) <- start +. Platform.etc platform ~task:t ~proc:p;
      proc_avail.(p) <- finish.(t);
      picks := (t, p) :: !picks;
      ready := List.filter (fun v -> v <> t) !ready;
      Array.iter
        (fun (s, _) ->
          remaining_preds.(s) <- remaining_preds.(s) - 1;
          if remaining_preds.(s) = 0 then ready := s :: !ready)
        (Dag.Graph.succs graph t)
  done;
  Schedule.of_assignment_sequence ~graph ~n_procs:m (List.rev !picks)
