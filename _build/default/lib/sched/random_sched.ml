let generate ~rng ~graph ~n_procs =
  if n_procs <= 0 then invalid_arg "Random_sched.generate: n_procs must be positive";
  let n = Dag.Graph.n_tasks graph in
  let remaining_preds = Array.init n (fun v -> Array.length (Dag.Graph.preds graph v)) in
  (* ready tasks kept in an array with O(1) removal by swap *)
  let ready = Array.make n 0 in
  let ready_count = ref 0 in
  let push v =
    ready.(!ready_count) <- v;
    incr ready_count
  in
  Array.iteri (fun v d -> if d = 0 then push v) remaining_preds;
  let picks = ref [] in
  for _ = 1 to n do
    let idx = Prng.Xoshiro.int rng !ready_count in
    let v = ready.(idx) in
    decr ready_count;
    ready.(idx) <- ready.(!ready_count);
    let proc = Prng.Xoshiro.int rng n_procs in
    picks := (v, proc) :: !picks;
    Array.iter
      (fun (w, _) ->
        remaining_preds.(w) <- remaining_preds.(w) - 1;
        if remaining_preds.(w) = 0 then push w)
      (Dag.Graph.succs graph v)
  done;
  Schedule.of_assignment_sequence ~graph ~n_procs (List.rev !picks)

let generate_many ~rng ~graph ~n_procs ~count =
  if count < 0 then invalid_arg "Random_sched.generate_many: negative count";
  List.init count (fun _ -> generate ~rng ~graph ~n_procs)
