let critical_path graph platform =
  Dag.Levels.critical_path graph (Heft.average_weights graph platform)

let schedule graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let w = Heft.average_weights graph platform in
  let rank_u = Dag.Levels.bottom_levels graph w in
  let rank_d = Dag.Levels.top_levels graph w in
  let priority = Array.init n (fun v -> rank_u.(v) +. rank_d.(v)) in
  let cp = critical_path graph platform in
  let on_cp = Array.make n false in
  List.iter (fun t -> on_cp.(t) <- true) cp;
  let cp_proc =
    let best = ref 0 and best_cost = ref infinity in
    for p = 0 to m - 1 do
      let cost =
        List.fold_left (fun acc t -> acc +. Platform.etc platform ~task:t ~proc:p) 0. cp
      in
      if cost < !best_cost then begin
        best_cost := cost;
        best := p
      end
    done;
    !best
  in
  let state = Heft.Insertion.create graph platform in
  let remaining_preds = Array.init n (fun v -> Array.length (Dag.Graph.preds graph v)) in
  let ready = ref [] in
  Array.iteri (fun v d -> if d = 0 then ready := v :: !ready) remaining_preds;
  for _ = 1 to n do
    let t =
      match !ready with
      | [] -> assert false
      | first :: rest ->
        List.fold_left (fun best c -> if priority.(c) > priority.(best) then c else best)
          first rest
    in
    ready := List.filter (fun v -> v <> t) !ready;
    let proc =
      if on_cp.(t) then cp_proc
      else begin
        let best = ref 0 and best_finish = ref infinity in
        for p = 0 to m - 1 do
          let _, f = Heft.Insertion.eft state ~task:t ~proc:p in
          if f < !best_finish then begin
            best_finish := f;
            best := p
          end
        done;
        !best
      end
    in
    Heft.Insertion.place state ~task:t ~proc;
    Array.iter
      (fun (s, _) ->
        remaining_preds.(s) <- remaining_preds.(s) - 1;
        if remaining_preds.(s) = 0 then ready := s :: !ready)
      (Dag.Graph.succs graph t)
  done;
  Heft.Insertion.to_schedule state
