(** Small helpers over [float array] shared by the numerics modules. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val dot : float array -> float array -> float
(** Dot product; arrays must have equal length. *)

val max_elt : float array -> float
(** Maximum of a non-empty array. *)

val min_elt : float array -> float
(** Minimum of a non-empty array. *)

val argmax : float array -> int
(** Index of the first maximum of a non-empty array. *)

val scale : float -> float array -> float array
(** [scale c a] is a fresh array with every element multiplied by [c]. *)

val map2 : (float -> float -> float) -> float array -> float array -> float array
(** Pointwise combination; arrays must have equal length. *)

val next_pow2 : int -> int
(** [next_pow2 n] is the smallest power of two [>= max 1 n]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Mixed absolute/relative comparison with default [eps = 1e-9]. *)
