let check_bracket f lo hi =
  let flo = f lo and fhi = f hi in
  if flo *. fhi > 0. then invalid_arg "Rootfind: interval does not bracket a root";
  (flo, fhi)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let flo, _ = check_bracket f lo hi in
  if flo = 0. then lo
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let mid = ref ((!lo +. !hi) /. 2.) in
    (try
       for _ = 1 to max_iter do
         mid := (!lo +. !hi) /. 2.;
         let fm = f !mid in
         if fm = 0. || (!hi -. !lo) /. 2. < tol then raise Exit;
         if !flo *. fm < 0. then hi := !mid
         else begin
           lo := !mid;
           flo := fm
         end
       done
     with Exit -> ());
    !mid
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let fa, fb = check_bracket f lo hi in
  let a = ref lo and b = ref hi and fa = ref fa and fb = ref fb in
  if Float.abs !fa < Float.abs !fb then begin
    let t = !a in
    a := !b;
    b := t;
    let t = !fa in
    fa := !fb;
    fb := t
  end;
  let c = ref !a and fc = ref !fa in
  let d = ref (!b -. !a) in
  let mflag = ref true in
  let result = ref !b in
  (try
     for _ = 1 to max_iter do
       if !fb = 0. || Float.abs (!b -. !a) < tol then begin
         result := !b;
         raise Exit
       end;
       let s =
         if !fa <> !fc && !fb <> !fc then
           (* inverse quadratic interpolation *)
           (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
           +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
           +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
         else (* secant *)
           !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
       in
       let lo_bound = ((3. *. !a) +. !b) /. 4. in
       let cond_range =
         let lo', hi' = if lo_bound < !b then (lo_bound, !b) else (!b, lo_bound) in
         s < lo' || s > hi'
       in
       let cond_slow =
         if !mflag then Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.
         else Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.
       in
       let cond_tol =
         if !mflag then Float.abs (!b -. !c) < tol else Float.abs (!c -. !d) < tol
       in
       let s =
         if cond_range || cond_slow || cond_tol then begin
           mflag := true;
           (!a +. !b) /. 2.
         end
         else begin
           mflag := false;
           s
         end
       in
       let fs = f s in
       d := !c;
       c := !b;
       fc := !fb;
       if !fa *. fs < 0. then begin
         b := s;
         fb := fs
       end
       else begin
         a := s;
         fa := fs
       end;
       if Float.abs !fa < Float.abs !fb then begin
         let t = !a in
         a := !b;
         b := t;
         let t = !fa in
         fa := !fb;
         fb := t
       end;
       result := !b
     done
   with Exit -> ());
  !result
