lib/numerics/array_ops.mli:
