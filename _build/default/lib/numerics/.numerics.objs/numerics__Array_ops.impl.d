lib/numerics/array_ops.ml: Array Float
