lib/numerics/spline.ml: Array
