lib/numerics/fft.mli:
