lib/numerics/spline.mli:
