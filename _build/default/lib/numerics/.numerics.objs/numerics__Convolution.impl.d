lib/numerics/convolution.ml: Array Array_ops Fft Int
