lib/numerics/convolution.mli:
