lib/numerics/rootfind.mli:
