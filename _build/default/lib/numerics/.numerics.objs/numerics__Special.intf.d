lib/numerics/special.mli:
