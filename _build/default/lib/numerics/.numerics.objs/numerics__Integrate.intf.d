lib/numerics/integrate.mli:
