(** Special functions needed by the distribution families and by Spelde's
    normal-approximation method (standard normal PDF/CDF, Clark's max
    formulas) and by the analytic Beta/Gamma densities. *)

val erf : float -> float
(** Error function, absolute error below ~1.2e-7 everywhere. *)

val erfc : float -> float
(** Complementary error function. *)

val normal_pdf : float -> float
(** Standard normal density φ(x). *)

val normal_cdf : float -> float
(** Standard normal distribution Φ(x). *)

val normal_quantile : float -> float
(** Inverse of Φ (Acklam's rational approximation, refined by one Halley
    step). Requires an argument in (0, 1). *)

val log_gamma : float -> float
(** ln Γ(x) for [x > 0] (Lanczos). *)

val log_beta : float -> float -> float
(** ln B(a, b) for positive [a], [b]. *)

val beta_pdf : alpha:float -> beta:float -> float -> float
(** Density of Beta(α, β) at a point of [\[0,1\]] (0 outside). *)

val betainc : alpha:float -> beta:float -> float -> float
(** Regularized incomplete beta function I_x(α, β) — the Beta CDF.
    Continued-fraction evaluation (relative error ~1e-12). Arguments
    clamped to [\[0,1\]]. *)

val betainc_inv : alpha:float -> beta:float -> float -> float
(** Inverse of {!betainc} in its third argument: the Beta(α, β) quantile
    function, for probabilities in [\[0,1\]]. *)

val gamma_pdf : shape:float -> scale:float -> float -> float
(** Density of Gamma(shape, scale) at a point ([0] for negative points). *)
