(* erfc rational approximation (Numerical Recipes §6.2, fractional error
   < 1.2e-7), symmetrized. *)
let erfc x =
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -.z *. z -. 1.26551223
    +. (t
        *. (1.00002368
           +. (t
               *. (0.37409196
                  +. (t
                      *. (0.09678418
                         +. (t
                             *. (-0.18628806
                                +. (t
                                    *. (0.27886807
                                       +. (t
                                           *. (-1.13520398
                                              +. (t
                                                  *. (1.48851587
                                                     +. (t
                                                         *. (-0.82215223
                                                            +. (t *. 0.17087277)))))))))))))))))
  in
  let ans = t *. exp poly in
  if x >= 0. then ans else 2. -. ans

let erf x = 1. -. erfc x

let sqrt_2pi = sqrt (2. *. Float.pi)

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt_2pi

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.)

(* Acklam's inverse-normal approximation + one Halley refinement step,
   giving ~1e-15 relative accuracy away from the extreme tails. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Special.normal_quantile: p must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5)
      |> fun num ->
      num /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
      *. q
      /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
      /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
  in
  (* Halley refinement on Φ(x) = p *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt_2pi *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    (* reflection: Γ(x)Γ(1−x) = π / sin(πx) *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

let beta_pdf ~alpha ~beta x =
  if alpha <= 0. || beta <= 0. then invalid_arg "Special.beta_pdf: bad parameters";
  if x < 0. || x > 1. then 0.
  else if (x = 0. && alpha < 1.) || (x = 1. && beta < 1.) then infinity
  else if x = 0. then (if alpha = 1. then exp (-.log_beta alpha beta) else 0.)
  else if x = 1. then (if beta = 1. then exp (-.log_beta alpha beta) else 0.)
  else
    exp (((alpha -. 1.) *. log x) +. ((beta -. 1.) *. log (1. -. x)) -. log_beta alpha beta)

(* Continued fraction for the incomplete beta (Numerical Recipes §6.4,
   modified Lentz). *)
let betacf ~alpha ~beta x =
  let max_iter = 200 and eps = 3e-15 and fpmin = 1e-300 in
  let qab = alpha +. beta and qap = alpha +. 1. and qam = alpha -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let fm = float_of_int m in
       let m2 = 2. *. fm in
       (* even step *)
       let aa = fm *. (beta -. fm) *. x /. ((qam +. m2) *. (alpha +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       (* odd step *)
       let aa =
         -.(alpha +. fm) *. (qab +. fm) *. x /. ((alpha +. m2) *. (qap +. m2))
       in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h

let betainc ~alpha ~beta x =
  if alpha <= 0. || beta <= 0. then invalid_arg "Special.betainc: bad parameters";
  let x = Float.max 0. (Float.min 1. x) in
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let front =
      exp
        ((alpha *. log x) +. (beta *. log (1. -. x)) -. log_beta alpha beta)
    in
    (* symmetry choice for fast continued-fraction convergence *)
    if x < (alpha +. 1.) /. (alpha +. beta +. 2.) then
      front *. betacf ~alpha ~beta x /. alpha
    else 1. -. (front *. betacf ~alpha:beta ~beta:alpha (1. -. x) /. beta)
  end

let betainc_inv ~alpha ~beta p =
  if alpha <= 0. || beta <= 0. then invalid_arg "Special.betainc_inv: bad parameters";
  if p < 0. || p > 1. then invalid_arg "Special.betainc_inv: p must be in [0,1]";
  if p = 0. then 0.
  else if p = 1. then 1.
  else begin
    (* bisection with Newton acceleration; the CDF is strictly monotone *)
    let lo = ref 0. and hi = ref 1. in
    let x = ref (alpha /. (alpha +. beta)) in
    for _ = 1 to 100 do
      let f = betainc ~alpha ~beta !x -. p in
      if f > 0. then hi := !x else lo := !x;
      let pdf = beta_pdf ~alpha ~beta !x in
      let newton = if pdf > 0. then !x -. (f /. pdf) else -1. in
      x := if newton > !lo && newton < !hi then newton else (!lo +. !hi) /. 2.
    done;
    !x
  end

let gamma_pdf ~shape ~scale x =
  if shape <= 0. || scale <= 0. then invalid_arg "Special.gamma_pdf: bad parameters";
  if x < 0. then 0.
  else if x = 0. then begin
    if shape < 1. then infinity else if shape = 1. then 1. /. scale else 0.
  end
  else
    exp (((shape -. 1.) *. log x) -. (x /. scale) -. log_gamma shape -. (shape *. log scale))
