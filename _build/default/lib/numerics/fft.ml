let is_pow2 n = n > 0 && n land (n - 1) = 0

let check re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
  n

(* Cooley–Tukey, decimation in time, iterative with bit-reversal
   permutation. [sign] is -1 for the forward transform, +1 for inverse. *)
let transform sign re im =
  let n = check re im in
  if n > 1 then begin
    (* bit-reversal permutation *)
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let tr = re.(i) in
        re.(i) <- re.(!j);
        re.(!j) <- tr;
        let ti = im.(i) in
        im.(i) <- im.(!j);
        im.(!j) <- ti
      end;
      let m = ref (n lsr 1) in
      while !m >= 1 && !j land !m <> 0 do
        j := !j lxor !m;
        m := !m lsr 1
      done;
      j := !j lor !m
    done;
    (* butterflies *)
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let theta = float_of_int sign *. 2. *. Float.pi /. float_of_int !len in
      let wr = cos theta and wi = sin theta in
      let i = ref 0 in
      while !i < n do
        let cr = ref 1. and ci = ref 0. in
        for k = !i to !i + half - 1 do
          let k2 = k + half in
          let tr = (!cr *. re.(k2)) -. (!ci *. im.(k2)) in
          let ti = (!cr *. im.(k2)) +. (!ci *. re.(k2)) in
          re.(k2) <- re.(k) -. tr;
          im.(k2) <- im.(k) -. ti;
          re.(k) <- re.(k) +. tr;
          im.(k) <- im.(k) +. ti;
          let ncr = (!cr *. wr) -. (!ci *. wi) in
          ci := (!cr *. wi) +. (!ci *. wr);
          cr := ncr
        done;
        i := !i + !len
      done;
      len := !len * 2
    done
  end

let forward re im = transform (-1) re im

let inverse re im =
  transform 1 re im;
  let n = Array.length re in
  let inv = 1. /. float_of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) *. inv;
    im.(i) <- im.(i) *. inv
  done

let naive_dft re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.naive_dft: length mismatch";
  let out_re = Array.make n 0. and out_im = Array.make n 0. in
  for k = 0 to n - 1 do
    let sr = ref 0. and si = ref 0. in
    for t = 0 to n - 1 do
      let angle = -2. *. Float.pi *. float_of_int k *. float_of_int t /. float_of_int n in
      let c = cos angle and s = sin angle in
      sr := !sr +. (re.(t) *. c) -. (im.(t) *. s);
      si := !si +. (re.(t) *. s) +. (im.(t) *. c)
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)
