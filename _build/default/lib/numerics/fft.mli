(** Iterative radix-2 complex FFT.

    This replaces the GSL FFT the paper's C implementation relied on. Data
    is carried as separate real/imaginary [float array]s to avoid boxing. *)

val forward : float array -> float array -> unit
(** [forward re im] transforms in place. Length must be a power of two and
    the two arrays must have equal length. *)

val inverse : float array -> float array -> unit
(** [inverse re im] is the unscaled-input inverse transform, in place,
    including the [1/n] normalization, so [inverse (forward x) = x] up to
    rounding. *)

val naive_dft : float array -> float array -> float array * float array
(** [naive_dft re im] is the O(n²) discrete Fourier transform, returned as
    fresh arrays. Used as a test oracle; any length accepted. *)
