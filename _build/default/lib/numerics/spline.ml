type t = {
  xs : float array;
  ys : float array;
  y2 : float array; (* second derivatives at the knots *)
}

let fit ~xs ~ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Spline.fit: xs/ys length mismatch";
  if n < 2 then invalid_arg "Spline.fit: need at least 2 knots";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Spline.fit: knots must be strictly increasing"
  done;
  (* Tridiagonal solve for the natural spline second derivatives
     (Numerical Recipes §3.3). *)
  let y2 = Array.make n 0. in
  let u = Array.make n 0. in
  for i = 1 to n - 2 do
    let sig_ = (xs.(i) -. xs.(i - 1)) /. (xs.(i + 1) -. xs.(i - 1)) in
    let p = (sig_ *. y2.(i - 1)) +. 2. in
    y2.(i) <- (sig_ -. 1.) /. p;
    let slope_hi = (ys.(i + 1) -. ys.(i)) /. (xs.(i + 1) -. xs.(i)) in
    let slope_lo = (ys.(i) -. ys.(i - 1)) /. (xs.(i) -. xs.(i - 1)) in
    u.(i) <-
      (((6. *. (slope_hi -. slope_lo)) /. (xs.(i + 1) -. xs.(i - 1))) -. (sig_ *. u.(i - 1)))
      /. p
  done;
  for i = n - 2 downto 1 do
    y2.(i) <- (y2.(i) *. y2.(i + 1)) +. u.(i)
  done;
  { xs; ys; y2 }

let segment t x =
  (* binary search for the knot interval containing x *)
  let n = Array.length t.xs in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) > x then hi := mid else lo := mid
  done;
  !lo

let eval t x =
  let i = segment t x in
  let h = t.xs.(i + 1) -. t.xs.(i) in
  let a = (t.xs.(i + 1) -. x) /. h in
  let b = (x -. t.xs.(i)) /. h in
  (a *. t.ys.(i))
  +. (b *. t.ys.(i + 1))
  +. ((((a *. a *. a) -. a) *. t.y2.(i)) +. (((b *. b *. b) -. b) *. t.y2.(i + 1)))
     *. h *. h /. 6.

let eval_clamped t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else eval t x

let resample ~xs ~ys ~onto =
  let s = fit ~xs ~ys in
  Array.map (eval_clamped s) onto
