(** Numerical quadrature over uniformly sampled data and functions.

    Simpson's rule is the paper's stated integrator; the composite form
    here handles both odd and even sample counts (the final interval of an
    even-count grid falls back to a trapezoid). *)

val trapezoid_sampled : dx:float -> float array -> float
(** Composite trapezoid rule over uniform samples. Needs >= 2 samples. *)

val simpson_sampled : dx:float -> float array -> float
(** Composite Simpson rule over uniform samples. Needs >= 2 samples. *)

val simpson : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** [simpson ~f ~a ~b ~n] integrates [f] on [\[a,b\]] using [n] (rounded up
    to even) subintervals. *)

val cumulative : dx:float -> float array -> float array
(** [cumulative ~dx ys] is the running trapezoid integral: element [i]
    holds the integral of the sampled function from the first sample to
    sample [i] (element 0 is 0). Used to turn a PDF grid into a CDF. *)
