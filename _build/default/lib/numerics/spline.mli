(** Natural cubic spline interpolation.

    The paper samples every probability density with 64 points and
    reconstructs intermediate values by cubic splines; this module provides
    that reconstruction, plus a resampling helper used whenever a
    distribution changes support after a sum or maximum. *)

type t
(** A fitted spline over strictly increasing knots. *)

val fit : xs:float array -> ys:float array -> t
(** [fit ~xs ~ys] builds a natural cubic spline ([y'' = 0] at both ends)
    through the points [(xs.(i), ys.(i))]. [xs] must be strictly
    increasing and contain at least two points. *)

val eval : t -> float -> float
(** [eval s x] evaluates the spline. Outside the knot range the boundary
    cubic is extrapolated. *)

val eval_clamped : t -> float -> float
(** Like {!eval} but returns the boundary ordinate outside the knot range —
    the right choice for densities, which must not oscillate when
    extrapolated. *)

val resample : xs:float array -> ys:float array -> onto:float array -> float array
(** [resample ~xs ~ys ~onto] fits a spline to [(xs, ys)] and evaluates it
    (clamped) at every point of [onto]. *)
