let linspace a b n =
  if n < 2 then invalid_arg "Array_ops.linspace: need at least 2 points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then b else a +. (float_of_int i *. step))

let sum a =
  (* Kahan summation: the distribution grids accumulate thousands of small
     probabilities, so compensation keeps normalization stable. *)
  let s = ref 0. and c = ref 0. in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Array_ops.dot: length mismatch";
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let max_elt a =
  if Array.length a = 0 then invalid_arg "Array_ops.max_elt: empty array";
  Array.fold_left Float.max a.(0) a

let min_elt a =
  if Array.length a = 0 then invalid_arg "Array_ops.min_elt: empty array";
  Array.fold_left Float.min a.(0) a

let argmax a =
  if Array.length a = 0 then invalid_arg "Array_ops.argmax: empty array";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let scale c a = Array.map (fun x -> c *. x) a

let map2 f a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Array_ops.map2: length mismatch";
  Array.init n (fun i -> f a.(i) b.(i))

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let approx_equal ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale
