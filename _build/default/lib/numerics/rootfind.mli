(** Scalar root finding, used for distribution quantiles and for
    calibrating the probabilistic-metric bounds δ and γ. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds a root of [f] on a bracketing interval
    ([f lo] and [f hi] of opposite sign, or one of them zero). *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Brent's method: inverse quadratic interpolation / secant / bisection
    hybrid. Same contract as {!bisect}, much faster convergence. *)
