let default_fmt v = if Float.is_nan v then "  n/a " else Printf.sprintf "%+.3f" v

let check_square labels m =
  let k = Array.length labels in
  if Array.length m <> k then invalid_arg "Matrix_render: size mismatch";
  Array.iter
    (fun row -> if Array.length row <> k then invalid_arg "Matrix_render: ragged matrix")
    m;
  k

let pad width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

let render_cells ~labels cells =
  let k = Array.length labels in
  let width =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun acc c -> Int.max acc (String.length c)) acc row)
      (Array.fold_left (fun acc l -> Int.max acc (String.length l)) 0 labels)
      cells
  in
  let buf = Buffer.create ((k + 1) * (k + 1) * (width + 2)) in
  Buffer.add_string buf (String.make (width + 2) ' ');
  Array.iter
    (fun l ->
      Buffer.add_string buf (pad width l);
      Buffer.add_string buf "  ")
    labels;
  Buffer.add_char buf '\n';
  for i = 0 to k - 1 do
    Buffer.add_string buf (pad width labels.(i));
    Buffer.add_string buf "  ";
    for j = 0 to k - 1 do
      Buffer.add_string buf (pad width cells.(i).(j));
      Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render ?(fmt_cell = default_fmt) ~labels m =
  let _k = check_square labels m in
  render_cells ~labels (Array.map (Array.map fmt_cell) m)

let render_mean_std ?(fmt_cell = default_fmt) ~labels mean std =
  let k = check_square labels mean in
  ignore (check_square labels std);
  let cells =
    Array.init k (fun i ->
        Array.init k (fun j ->
            if i = j then Printf.sprintf "[%s]" labels.(i)
            else if i < j then fmt_cell mean.(i).(j)
            else fmt_cell std.(i).(j)))
  in
  render_cells ~labels cells

let to_csv ~labels m =
  let k = check_square labels m in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("," ^ String.concat "," (Array.to_list labels) ^ "\n");
  for i = 0 to k - 1 do
    Buffer.add_string buf labels.(i);
    for j = 0 to k - 1 do
      Buffer.add_string buf (Printf.sprintf ",%.6f" m.(i).(j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
