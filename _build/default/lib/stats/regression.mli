(** Simple least-squares linear regression.

    The paper overlays a linear fit on every scatter plot of its
    correlation matrices; this provides the fitted line and its quality. *)

type fit = {
  slope : float;
  intercept : float;
  r : float;  (** Pearson correlation of the fitted pair *)
  r2 : float;  (** coefficient of determination *)
  residual_std : float;  (** standard deviation of the residuals *)
}

val fit : float array -> float array -> fit
(** [fit xs ys] for equal-length samples of size >= 2. A zero-variance
    [xs] yields slope 0 and intercept [mean ys], with [r = nan]. *)

val predict : fit -> float -> float
(** Evaluate the fitted line. *)
