(** Distances between cumulative distribution functions.

    §V of the paper validates the independence-assumption makespan
    distribution against 100 000 Monte-Carlo realizations using two
    distances: Kolmogorov–Smirnov (sup-norm of the CDF difference) and a
    Cramér–von-Mises {e variant} measuring the area between the two CDFs
    (so its unit is the x-axis unit, and it can exceed 1 — as in Fig. 1's
    log scale up to 100). *)

type side =
  | Analytic of Distribution.Dist.t
  | Sampled of Distribution.Empirical.t

val ks : side -> side -> float
(** Kolmogorov–Smirnov distance [sup_x |F₁(x) − F₂(x)|], evaluated on a
    fine union grid plus every jump point of any sampled side. *)

val cm_area : ?grid:int -> side -> side -> float
(** Area variant of Cramér–von-Mises: [∫ |F₁(x) − F₂(x)| dx] over the
    union of supports ([grid] integration points, default 2048). *)
