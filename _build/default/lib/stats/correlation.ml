let pearson xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Correlation.pearson: length mismatch";
  if n < 2 then invalid_arg "Correlation.pearson: need at least 2 points";
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. || !syy = 0. then Float.nan
  else !sxy /. sqrt (!sxx *. !syy)

(* average ranks with tie handling *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare xs.(i) xs.(j)) idx;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    (* positions !i..!j are tied: assign the average rank *)
    let avg = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Correlation.spearman: length mismatch";
  pearson (ranks xs) (ranks ys)

let pearson_matrix cols =
  let k = Array.length cols in
  let m = Array.make_matrix k k 1. in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let r = pearson cols.(i) cols.(j) in
      m.(i).(j) <- r;
      m.(j).(i) <- r
    done
  done;
  m
