type interval = {
  estimate : float;
  lo : float;
  hi : float;
}

let check_params replicates confidence =
  if replicates < 10 then invalid_arg "Bootstrap: need at least 10 replicates";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap: confidence must be in (0,1)"

let percentile_interval ~confidence ~estimate values =
  match values with
  | [] -> { estimate; lo = Float.nan; hi = Float.nan }
  | _ ->
    let a = Array.of_list values in
    let tail = (1. -. confidence) /. 2. in
    {
      estimate;
      lo = Descriptive.quantile a tail;
      hi = Descriptive.quantile a (1. -. tail);
    }

let ci ~rng ?(replicates = 1000) ?(confidence = 0.95) ~stat xs =
  check_params replicates confidence;
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  let resampled = Array.make n 0. in
  let values = ref [] in
  for _ = 1 to replicates do
    for i = 0 to n - 1 do
      resampled.(i) <- xs.(Prng.Xoshiro.int rng n)
    done;
    let v = stat resampled in
    if not (Float.is_nan v) then values := v :: !values
  done;
  percentile_interval ~confidence ~estimate:(stat xs) !values

let pearson_ci ~rng ?(replicates = 1000) ?(confidence = 0.95) xs ys =
  check_params replicates confidence;
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Bootstrap.pearson_ci: length mismatch";
  if n < 2 then invalid_arg "Bootstrap.pearson_ci: need at least 2 pairs";
  let rx = Array.make n 0. and ry = Array.make n 0. in
  let values = ref [] in
  for _ = 1 to replicates do
    for i = 0 to n - 1 do
      let j = Prng.Xoshiro.int rng n in
      rx.(i) <- xs.(j);
      ry.(i) <- ys.(j)
    done;
    let v = Correlation.pearson rx ry in
    if not (Float.is_nan v) then values := v :: !values
  done;
  percentile_interval ~confidence ~estimate:(Correlation.pearson xs ys) !values
