type side =
  | Analytic of Distribution.Dist.t
  | Sampled of Distribution.Empirical.t

let cdf_of = function
  | Analytic d -> Distribution.Dist.cdf_at d
  | Sampled e -> Distribution.Empirical.cdf_at e

let support_of = function
  | Analytic d -> Distribution.Dist.support d
  | Sampled e -> (Distribution.Empirical.min e, Distribution.Empirical.max e)

let union_support a b =
  let lo1, hi1 = support_of a and lo2, hi2 = support_of b in
  (Float.min lo1 lo2, Float.max hi1 hi2)

let ks a b =
  let f1 = cdf_of a and f2 = cdf_of b in
  let lo, hi = union_support a b in
  let best = ref 0. in
  let consider x = best := Float.max !best (Float.abs (f1 x -. f2 x)) in
  (* fine uniform sweep *)
  if hi > lo then begin
    let n = 2048 in
    let dx = (hi -. lo) /. float_of_int n in
    for i = 0 to n do
      consider (lo +. (float_of_int i *. dx))
    done
  end
  else consider lo;
  (* at an empirical jump point x the supremum can be attained from the
     left: check both F(x) and F(x−) against the other CDF *)
  let jumps side other =
    match side with
    | Analytic _ -> ()
    | Sampled e ->
      let xs = Distribution.Empirical.sorted e in
      let n = float_of_int (Array.length xs) in
      let fo = cdf_of other in
      Array.iteri
        (fun i x ->
          let here = fo x in
          let right = float_of_int (i + 1) /. n in
          let left = float_of_int i /. n in
          best := Float.max !best (Float.abs (right -. here));
          best := Float.max !best (Float.abs (left -. here)))
        xs
  in
  jumps a b;
  jumps b a;
  !best

let cm_area ?(grid = 2048) a b =
  if grid < 2 then invalid_arg "Distance.cm_area: grid too small";
  let f1 = cdf_of a and f2 = cdf_of b in
  let lo, hi = union_support a b in
  if hi <= lo then 0.
  else begin
    let dx = (hi -. lo) /. float_of_int (grid - 1) in
    let ys =
      Array.init grid (fun i ->
          let x = lo +. (float_of_int i *. dx) in
          Float.abs (f1 x -. f2 x))
    in
    Numerics.Integrate.trapezoid_sampled ~dx ys
  end
