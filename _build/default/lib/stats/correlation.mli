(** Correlation coefficients.

    The paper's entire empirical apparatus rests on the Pearson
    coefficient between metric values over thousands of schedules
    (Figs. 3–6); Spearman is provided as a robustness check on the
    “slightly curved” point clouds the paper mentions. *)

val pearson : float array -> float array -> float
(** Pearson product-moment correlation of two equal-length samples of
    size >= 2. Returns [nan] when either sample has zero variance. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on average ranks, handling ties). *)

val pearson_matrix : float array array -> float array array
(** [pearson_matrix cols] — each element of [cols] is one variable's
    sample — returns the symmetric correlation matrix. *)
