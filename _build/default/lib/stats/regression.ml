type fit = {
  slope : float;
  intercept : float;
  r : float;
  r2 : float;
  residual_std : float;
}

let fit xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Regression.fit: length mismatch";
  if n < 2 then invalid_arg "Regression.fit: need at least 2 points";
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxy = ref 0. and sxx = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxy := !sxy +. (dx *. (ys.(i) -. my));
    sxx := !sxx +. (dx *. dx)
  done;
  let slope = if !sxx = 0. then 0. else !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r = Correlation.pearson xs ys in
  let r2 = if Float.is_nan r then Float.nan else r *. r in
  let ss_res = ref 0. in
  for i = 0 to n - 1 do
    let e = ys.(i) -. (intercept +. (slope *. xs.(i))) in
    ss_res := !ss_res +. (e *. e)
  done;
  let residual_std = sqrt (!ss_res /. float_of_int (Int.max 1 (n - 2))) in
  { slope; intercept; r; r2; residual_std }

let predict f x = f.intercept +. (f.slope *. x)
