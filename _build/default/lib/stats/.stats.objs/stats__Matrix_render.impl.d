lib/stats/matrix_render.ml: Array Buffer Float Int Printf String
