lib/stats/correlation.mli:
