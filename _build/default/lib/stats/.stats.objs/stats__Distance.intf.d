lib/stats/distance.mli: Distribution
