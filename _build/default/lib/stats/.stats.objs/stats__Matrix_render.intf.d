lib/stats/matrix_render.mli:
