lib/stats/regression.mli:
