lib/stats/correlation.ml: Array Descriptive Float
