lib/stats/bootstrap.ml: Array Correlation Descriptive Float Prng
