lib/stats/regression.ml: Array Correlation Descriptive Float Int
