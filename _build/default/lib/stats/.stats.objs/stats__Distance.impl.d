lib/stats/distance.ml: Array Distribution Float Numerics
