lib/stats/descriptive.mli:
