(** Text rendering of labelled square matrices.

    Renders the paper's correlation matrices (Figs. 3–6) as aligned ASCII
    tables: either a plain matrix, or the paper's combined layout with one
    triangle holding means and the other standard deviations. *)

val render :
  ?fmt_cell:(float -> string) -> labels:string array -> float array array -> string
(** [render ~labels m] renders [m] (square, same order as [labels]) with a
    header row and row labels. Default cell format: ["%+.3f"], [nan]
    printed as ["  n/a "]. *)

val render_mean_std :
  ?fmt_cell:(float -> string) ->
  labels:string array ->
  float array array ->
  float array array ->
  string
(** [render_mean_std ~labels mean std] is the paper's Fig. 6 layout:
    upper triangle = mean Pearson coefficient, lower triangle = standard
    deviation, diagonal = the metric label. *)

val to_csv : labels:string array -> float array array -> string
(** Comma-separated rendering with a header line. *)
