let check_nonempty name a =
  if Array.length a = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty sample")

let mean a =
  check_nonempty "mean" a;
  Numerics.Array_ops.sum a /. float_of_int (Array.length a)

let sum_sq_dev a =
  let m = mean a in
  let acc = ref 0. in
  Array.iter
    (fun x ->
      let d = x -. m in
      acc := !acc +. (d *. d))
    a;
  !acc

let variance a =
  check_nonempty "variance" a;
  let n = Array.length a in
  if n < 2 then 0. else sum_sq_dev a /. float_of_int (n - 1)

let std a = sqrt (variance a)

let population_variance a =
  check_nonempty "population_variance" a;
  sum_sq_dev a /. float_of_int (Array.length a)

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let quantile a p =
  check_nonempty "quantile" a;
  if p < 0. || p > 1. then invalid_arg "Descriptive.quantile: p must be in [0,1]";
  let xs = sorted_copy a in
  let n = Array.length xs in
  if n = 1 then xs.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let i = Int.min (int_of_float pos) (n - 2) in
    let frac = pos -. float_of_int i in
    xs.(i) +. (frac *. (xs.(i + 1) -. xs.(i)))
  end

let median a = quantile a 0.5

let min_max a =
  check_nonempty "min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let standardize a =
  check_nonempty "standardize" a;
  let m = mean a in
  let s = sqrt (population_variance a) in
  if s = 0. then Array.make (Array.length a) 0.
  else Array.map (fun x -> (x -. m) /. s) a
