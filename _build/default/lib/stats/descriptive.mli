(** Descriptive statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean of a non-empty sample. *)

val variance : float array -> float
(** Unbiased sample variance (0 for samples of size < 2). *)

val std : float array -> float

val population_variance : float array -> float
(** Biased (1/n) variance. *)

val median : float array -> float
(** Median of a non-empty sample (input is not mutated). *)

val quantile : float array -> float -> float
(** Linear-interpolated order-statistic quantile, [p ∈ \[0,1\]]. *)

val min_max : float array -> float * float
(** Extremes of a non-empty sample. *)

val standardize : float array -> float array
(** Subtract the mean and divide by the (population) standard deviation;
    a zero-variance sample maps to all zeros. *)
