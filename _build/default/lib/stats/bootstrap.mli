(** Bootstrap confidence intervals.

    The paper reports only the across-case standard deviation of its
    Pearson coefficients; bootstrap percentile intervals quantify the
    {e within}-case sampling error of a coefficient estimated from N
    random schedules. Resampling is deterministic given the PRNG. *)

type interval = {
  estimate : float;  (** statistic on the original sample *)
  lo : float;  (** lower percentile bound *)
  hi : float;  (** upper percentile bound *)
}

val ci :
  rng:Prng.Xoshiro.t ->
  ?replicates:int ->
  ?confidence:float ->
  stat:(float array -> float) ->
  float array ->
  interval
(** [ci ~rng ~stat xs] — percentile bootstrap of an arbitrary statistic
    over a non-empty sample. Defaults: 1000 replicates, 95% confidence.
    Replicates where [stat] returns [nan] are dropped. *)

val pearson_ci :
  rng:Prng.Xoshiro.t ->
  ?replicates:int ->
  ?confidence:float ->
  float array ->
  float array ->
  interval
(** Paired bootstrap of the Pearson coefficient of two equal-length
    samples (pairs are resampled together). *)
