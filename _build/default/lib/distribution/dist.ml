let default_points = 64

type grid = {
  lo : float;
  dx : float;
  pdf : float array; (* density samples at lo + i·dx, normalized *)
  cdf : float array; (* running trapezoid integral of [pdf], cdf.(n-1) = 1 *)
  spline : Numerics.Spline.t; (* interpolant of [pdf] over the grid *)
}

type t = Const of float | Grid of grid

let grid_n g = Array.length g.pdf
let grid_hi g = g.lo +. (g.dx *. float_of_int (grid_n g - 1))
let grid_xs g = Array.init (grid_n g) (fun i -> g.lo +. (float_of_int i *. g.dx))

let make_grid ~lo ~dx pdf =
  let n = Array.length pdf in
  if n < 2 then invalid_arg "Dist: grid needs at least 2 samples";
  if dx <= 0. || not (Float.is_finite dx) then invalid_arg "Dist: dx must be positive";
  let pdf = Array.map (fun v -> if Float.is_finite v && v > 0. then v else 0.) pdf in
  let total = Numerics.Integrate.trapezoid_sampled ~dx pdf in
  if total <= 0. then invalid_arg "Dist: density has no mass";
  let pdf = Array.map (fun v -> v /. total) pdf in
  let cdf = Numerics.Integrate.cumulative ~dx pdf in
  (* kill the last-ulp drift so quantile/cdf_at see an exact CDF *)
  let last = cdf.(n - 1) in
  if last > 0. then
    for i = 0 to n - 1 do
      cdf.(i) <- Float.min 1. (cdf.(i) /. last)
    done;
  let xs = Array.init n (fun i -> lo +. (float_of_int i *. dx)) in
  { lo; dx; pdf; cdf; spline = Numerics.Spline.fit ~xs ~ys:pdf }

let const v =
  if not (Float.is_finite v) then invalid_arg "Dist.const: non-finite value";
  Const v

let of_samples_pdf ~lo ~dx pdf = Grid (make_grid ~lo ~dx (Array.copy pdf))

let of_fn ?(points = default_points) ~lo ~hi f =
  if not (lo < hi) then invalid_arg "Dist.of_fn: requires lo < hi";
  if points < 2 then invalid_arg "Dist.of_fn: need at least 2 points";
  let dx = (hi -. lo) /. float_of_int (points - 1) in
  let pdf = Array.init points (fun i -> f (lo +. (float_of_int i *. dx))) in
  Grid (make_grid ~lo ~dx pdf)

let is_const = function Const _ -> true | Grid _ -> false

let support = function
  | Const v -> (v, v)
  | Grid g -> (g.lo, grid_hi g)

(* Density at x: spline inside the support, zero outside, clamped at 0
   against spline overshoot. *)
let grid_pdf_at g x =
  if x < g.lo || x > grid_hi g then 0.
  else Float.max 0. (Numerics.Spline.eval g.spline x)

let pdf_at d x =
  match d with
  | Const _ -> invalid_arg "Dist.pdf_at: point mass has no density"
  | Grid g -> grid_pdf_at g x

let grid_cdf_at g x =
  if x <= g.lo then 0.
  else
    let hi = grid_hi g in
    if x >= hi then 1.
    else begin
      let pos = (x -. g.lo) /. g.dx in
      let i = int_of_float pos in
      let i = Int.min i (grid_n g - 2) in
      let frac = pos -. float_of_int i in
      let v = g.cdf.(i) +. (frac *. (g.cdf.(i + 1) -. g.cdf.(i))) in
      Float.min 1. (Float.max 0. v)
    end

let cdf_at d x =
  match d with
  | Const v -> if x >= v then 1. else 0.
  | Grid g -> grid_cdf_at g x

let to_arrays = function
  | Const v ->
    let w = 1e-9 *. Float.max 1. (Float.abs v) in
    ([| v -. w; v +. w |], [| 0.5 /. w; 0.5 /. w |])
  | Grid g -> (grid_xs g, Array.copy g.pdf)

let cdf_arrays = function
  | Const v ->
    let w = 1e-9 *. Float.max 1. (Float.abs v) in
    ([| v -. w; v +. w |], [| 0.; 1. |])
  | Grid g -> (grid_xs g, Array.copy g.cdf)

(* E[weight(X)], normalized by the mass measured with the same quadrature
   so normalization drift cannot bias moments. The trapezoid rule is used
   deliberately: it is the rule [make_grid] normalizes with and the CDF
   integrates with, and it gives point masses folded into a boundary cell
   (grid_pdf += 2·mass/dx) exactly their intended weight — Simpson would
   count such an atom at 2/3 of its mass. *)
let integrate_weighted g weight =
  let xs = grid_xs g in
  let ys = Array.mapi (fun i p -> weight xs.(i) *. p) g.pdf in
  let num = Numerics.Integrate.trapezoid_sampled ~dx:g.dx ys in
  let mass = Numerics.Integrate.trapezoid_sampled ~dx:g.dx g.pdf in
  if mass > 0. then num /. mass else num

let mean = function
  | Const v -> v
  | Grid g -> integrate_weighted g (fun x -> x)

let variance = function
  | Const _ -> 0.
  | Grid g ->
    (* centered two-pass form: E[X²] − E[X]² cancels catastrophically
       once the mean dwarfs the spread (makespans in the thousands with
       σ of a few units) *)
    let m = integrate_weighted g (fun x -> x) in
    let d2 x =
      let d = x -. m in
      d *. d
    in
    Float.max 0. (integrate_weighted g d2)

let std d = sqrt (variance d)

let standardized_moment k = function
  | Const _ -> 0.
  | Grid g ->
    let m = integrate_weighted g (fun x -> x) in
    let var =
      integrate_weighted g (fun x ->
          let d = x -. m in
          d *. d)
    in
    if var <= 0. then 0.
    else begin
      let s = sqrt var in
      integrate_weighted g (fun x -> ((x -. m) /. s) ** float_of_int k)
    end

let skewness d = standardized_moment 3 d

let kurtosis_excess d =
  match d with Const _ -> 0. | Grid _ -> standardized_moment 4 d -. 3.

let entropy = function
  | Const _ -> Float.neg_infinity
  | Grid g ->
    let ys = Array.map (fun p -> if p > 0. then -.p *. log p else 0.) g.pdf in
    Numerics.Integrate.trapezoid_sampled ~dx:g.dx ys

let quantile d p =
  if p < 0. || p > 1. then invalid_arg "Dist.quantile: p must be in [0,1]";
  match d with
  | Const v -> v
  | Grid g ->
    let n = grid_n g in
    if p <= g.cdf.(0) then g.lo
    else if p >= 1. then grid_hi g
    else begin
      (* binary search for the bracketing CDF cell, then linear interp *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if g.cdf.(mid) >= p then hi := mid else lo := mid
      done;
      let c0 = g.cdf.(!lo) and c1 = g.cdf.(!hi) in
      let frac = if c1 > c0 then (p -. c0) /. (c1 -. c0) else 0. in
      g.lo +. ((float_of_int !lo +. frac) *. g.dx)
    end

let prob_between d a b =
  if a > b then 0. else Float.max 0. (cdf_at d b -. cdf_at d a)

let mean_above d c =
  match d with
  | Const v -> if v > c then v else c
  | Grid g ->
    let hi = grid_hi g in
    if c >= hi then c
    else begin
      let lo = Float.max c g.lo in
      (* integrate x·f and f over [lo, hi] with linear interpolation of the
         grid density (positivity-safe, unlike the spline) *)
      let pdf_lin x =
        let pos = (x -. g.lo) /. g.dx in
        let i = Int.max 0 (Int.min (int_of_float pos) (grid_n g - 2)) in
        let frac = pos -. float_of_int i in
        Float.max 0. (g.pdf.(i) +. (frac *. (g.pdf.(i + 1) -. g.pdf.(i))))
      in
      let n = 257 in
      let dx = (hi -. lo) /. float_of_int (n - 1) in
      if dx <= 0. then c
      else begin
        let fs = Array.init n (fun i -> pdf_lin (lo +. (float_of_int i *. dx))) in
        let xfs = Array.mapi (fun i f -> (lo +. (float_of_int i *. dx)) *. f) fs in
        let mass = Numerics.Integrate.simpson_sampled ~dx fs in
        if mass <= 1e-12 then c
        else Numerics.Integrate.simpson_sampled ~dx xfs /. mass
      end
    end

let shift d c =
  match d with
  | Const v -> Const (v +. c)
  | Grid g -> Grid (make_grid ~lo:(g.lo +. c) ~dx:g.dx g.pdf)

let scale d c =
  if c <= 0. then invalid_arg "Dist.scale: factor must be positive";
  match d with
  | Const v -> Const (v *. c)
  | Grid g ->
    let pdf = Array.map (fun p -> p /. c) g.pdf in
    Grid (make_grid ~lo:(g.lo *. c) ~dx:(g.dx *. c) pdf)

(* Sample grid [g]'s density at [lo + k·dx] for k < n, zero outside the
   support of [g]. *)
let sample_onto ~lo ~dx ~n g =
  Array.init n (fun k -> grid_pdf_at g (lo +. (float_of_int k *. dx)))

let resample ?(points = default_points) d =
  match d with
  | Const _ -> d
  | Grid g ->
    if points < 2 then invalid_arg "Dist.resample: need at least 2 points";
    let hi = grid_hi g in
    let dx = (hi -. g.lo) /. float_of_int (points - 1) in
    Grid (make_grid ~lo:g.lo ~dx (sample_onto ~lo:g.lo ~dx ~n:points g))

(* Trim negligible CDF tails, then resample. After repeated sums the
   support grows linearly while σ grows as √k, so without trimming the
   density would concentrate into a handful of grid cells. *)
let trim ?(eps = 1e-9) ?(points = default_points) d =
  match d with
  | Const _ -> d
  | Grid g ->
    let n = grid_n g in
    let i_lo = ref 0 in
    while !i_lo + 1 < n && g.cdf.(!i_lo + 1) <= eps do
      incr i_lo
    done;
    let i_hi = ref (n - 1) in
    while !i_hi - 1 > !i_lo && g.cdf.(!i_hi - 1) >= 1. -. eps do
      decr i_hi
    done;
    let lo = g.lo +. (float_of_int !i_lo *. g.dx) in
    let hi = g.lo +. (float_of_int !i_hi *. g.dx) in
    if hi <= lo then Const (integrate_weighted g (fun x -> x))
    else begin
      let dx = (hi -. lo) /. float_of_int (points - 1) in
      Grid (make_grid ~lo ~dx (sample_onto ~lo ~dx ~n:points g))
    end

(* Working resolution for a convolution: the finer of the two grids,
   capped so the padded signal stays tractable. *)
let max_work_samples = 2048

(* Sum of a wide grid [gw] and a moderately narrow one [gn] (support well
   below the combined range but above the working cell): convolve [gw]
   with a mass-binned discretization of [gn] — [k] atoms at bin centers
   carrying exact CDF masses, recentered so the mean is preserved
   exactly. Replaces a full FFT convolution at ~1/20 of the cost with
   sub-percent moment error. *)
let k_point_sum ~points gw gn =
  let k = 17 in
  let lo_n = gn.lo and hi_n = grid_hi gn in
  let w = (hi_n -. lo_n) /. float_of_int k in
  let centers =
    Array.init k (fun i -> lo_n +. ((float_of_int i +. 0.5) *. w))
  in
  let masses =
    Array.init k (fun i ->
        grid_cdf_at gn (lo_n +. (float_of_int (i + 1) *. w))
        -. grid_cdf_at gn (lo_n +. (float_of_int i *. w)))
  in
  (* recenter the atoms so Σ mᵢcᵢ equals the narrow mean exactly *)
  let total_mass = Array.fold_left ( +. ) 0. masses in
  if total_mass > 0. then begin
    let mean_n = integrate_weighted gn (fun x -> x) in
    let disc_mean = ref 0. in
    Array.iteri (fun i c -> disc_mean := !disc_mean +. (masses.(i) *. c)) centers;
    let delta = mean_n -. (!disc_mean /. total_mass) in
    Array.iteri (fun i c -> centers.(i) <- c +. delta) centers
  end;
  let lo = gw.lo +. lo_n and hi = grid_hi gw +. hi_n in
  let dx = (hi -. lo) /. float_of_int (points - 1) in
  let pdf =
    Array.init points (fun j ->
        let x = lo +. (float_of_int j *. dx) in
        let acc = ref 0. in
        for i = 0 to k - 1 do
          if masses.(i) > 0. then
            acc := !acc +. (masses.(i) *. grid_pdf_at gw (x -. centers.(i)))
        done;
        !acc)
  in
  Grid (make_grid ~lo ~dx pdf)

(* Sum of a wide grid [gw] and a narrow one [gn] whose support is below
   the working resolution: convolve [gw] with the two-point surrogate of
   [gn] (atoms at mean ± std, mass ½ each). *)
let two_point_sum ~points gw gn =
  let mu = integrate_weighted gn (fun x -> x) in
  let sigma =
    let d2 x =
      let d = x -. mu in
      d *. d
    in
    sqrt (Float.max 0. (integrate_weighted gn d2))
  in
  let lo = gw.lo +. gn.lo and hi = grid_hi gw +. grid_hi gn in
  let dx = (hi -. lo) /. float_of_int (points - 1) in
  let pdf =
    Array.init points (fun k ->
        let x = lo +. (float_of_int k *. dx) in
        0.5 *. (grid_pdf_at gw (x -. (mu -. sigma)) +. grid_pdf_at gw (x -. (mu +. sigma))))
  in
  Grid (make_grid ~lo ~dx pdf)

let add ?(points = default_points) d1 d2 =
  match (d1, d2) with
  | Const a, Const b -> Const (a +. b)
  | Const a, (Grid _ as g) | (Grid _ as g), Const a -> shift g a
  | Grid g1, Grid g2 ->
    let range1 = grid_hi g1 -. g1.lo and range2 = grid_hi g2 -. g2.lo in
    let dx =
      let fine = Float.min g1.dx g2.dx in
      let total = range1 +. range2 in
      if total /. fine > float_of_int (max_work_samples - 1) then
        total /. float_of_int (max_work_samples - 1)
      else fine
    in
    (* A summand far narrower than the working resolution would sample to
       all zeros (densities vanish at support edges). Replace it by the
       two-point distribution {μ−σ, μ+σ} with mass ½ each — same mean and
       variance — so the convolution becomes the average of two shifted
       copies of the wide density. Errors are O(dx³) in the moments while
       σ² accumulation (the robustness signal) is preserved exactly. *)
    if range1 < 2. *. dx then trim ~points (two_point_sum ~points g2 g1)
    else if range2 < 2. *. dx then trim ~points (two_point_sum ~points g1 g2)
    else if range1 < (range1 +. range2) /. 16. then
      trim ~points (k_point_sum ~points g2 g1)
    else if range2 < (range1 +. range2) /. 16. then
      trim ~points (k_point_sum ~points g1 g2)
    else begin
    let n_of range = Int.max 2 (int_of_float (Float.ceil (range /. dx -. 1e-9)) + 1) in
    let n1 = n_of range1 and n2 = n_of range2 in
    let p1 = sample_onto ~lo:g1.lo ~dx ~n:n1 g1 in
    let p2 = sample_onto ~lo:g2.lo ~dx ~n:n2 g2 in
    let conv = Numerics.Convolution.auto p1 p2 in
    (* f_{X+Y}(z) = ∫ f_X(x) f_Y(z−x) dx ≈ dx · Σ — the dx factor is
       absorbed by make_grid's renormalization. *)
    let sum = Grid (make_grid ~lo:(g1.lo +. g2.lo) ~dx conv) in
    trim ~points sum
    end

let max_indep ?(points = default_points) d1 d2 =
  match (d1, d2) with
  | Const a, Const b -> Const (Float.max a b)
  | Const a, (Grid g as dg) | (Grid g as dg), Const a ->
    let hi = grid_hi g in
    if a <= g.lo then dg
    else if a >= hi then Const a
    else begin
      (* truncation: atom of mass F(a) at a, density of g above a; the
         atom is spread over the first cell of the result grid *)
      let mass = grid_cdf_at g a in
      let dx = (hi -. a) /. float_of_int (points - 1) in
      let pdf = sample_onto ~lo:a ~dx ~n:points g in
      pdf.(0) <- pdf.(0) +. (2. *. mass /. dx);
      (* make_grid renormalizes; pre-scale the continuous part so that the
         atom and the tail keep their relative weights under the trapezoid
         rule (first cell has weight dx/2, hence the factor 2). *)
      Grid (make_grid ~lo:a ~dx pdf)
    end
  | Grid g1, Grid g2 ->
    let lo = Float.max g1.lo g2.lo in
    let hi = Float.max (grid_hi g1) (grid_hi g2) in
    if hi <= lo then Const lo
    else begin
      let dx = (hi -. lo) /. float_of_int (points - 1) in
      let pdf =
        Array.init points (fun k ->
            let x = lo +. (float_of_int k *. dx) in
            (grid_pdf_at g1 x *. grid_cdf_at g2 x)
            +. (grid_pdf_at g2 x *. grid_cdf_at g1 x))
      in
      (* P(max ≤ lo) can be positive when one support starts below the
         other: fold that atom into the first cell as above. *)
      let atom = grid_cdf_at g1 lo *. grid_cdf_at g2 lo in
      if atom > 0. then pdf.(0) <- pdf.(0) +. (2. *. atom /. dx);
      trim ~points (Grid (make_grid ~lo ~dx pdf))
    end

let max_comonotone ?(points = default_points) d1 d2 =
  match (d1, d2) with
  | Const a, Const b -> Const (Float.max a b)
  | Const a, (Grid _ as dg) | (Grid _ as dg), Const a ->
    (* comonotone and independent maxima coincide against a constant *)
    max_indep ~points dg (Const a)
  | Grid g1, Grid g2 ->
    let lo = Float.max g1.lo g2.lo in
    let hi = Float.max (grid_hi g1) (grid_hi g2) in
    if hi <= lo then Const lo
    else begin
      (* density from central differences of F(x) = min(F₁, F₂) *)
      let dx = (hi -. lo) /. float_of_int (points - 1) in
      let cdf_at x = Float.min (grid_cdf_at g1 x) (grid_cdf_at g2 x) in
      let pdf =
        Array.init points (fun k ->
            let x = lo +. (float_of_int k *. dx) in
            (cdf_at (x +. (dx /. 2.)) -. cdf_at (x -. (dx /. 2.))) /. dx)
      in
      (* fold the possible atom at the lower end into the first cell *)
      let atom = cdf_at lo in
      if atom > 0. then pdf.(0) <- pdf.(0) +. (2. *. atom /. dx);
      trim ~points (Grid (make_grid ~lo ~dx pdf))
    end

let add_list ?points ds = List.fold_left (fun acc d -> add ?points acc d) (Const 0.) ds

let max_list ?points = function
  | [] -> invalid_arg "Dist.max_list: empty list"
  | d :: ds -> List.fold_left (fun acc d -> max_indep ?points acc d) d ds
