(** Empirical distributions built from Monte-Carlo realizations.

    Fig. 1 and Fig. 2 of the paper compare the analytically calculated
    makespan distribution against the distribution observed over (up to)
    100 000 sampled realizations; this module provides the observed side. *)

type t
(** A sorted sample. *)

val of_samples : float array -> t
(** [of_samples xs] takes ownership of a copy of the non-empty sample. *)

val size : t -> int

val mean : t -> float
val variance : t -> float (* unbiased *)
val std : t -> float

val cdf_at : t -> float -> float
(** Right-continuous empirical CDF. *)

val quantile : t -> float -> float
(** Order-statistic quantile with linear interpolation, [p ∈ \[0,1\]]. *)

val min : t -> float
val max : t -> float

val to_dist : ?points:int -> t -> Dist.t
(** Histogram density over the sample range on a uniform grid, as a
    {!Dist.t} — the “experimental distribution” curve of Fig. 2. *)

val sorted : t -> float array
(** The underlying sorted sample (not a copy; do not mutate). *)
