(** The (mean, standard deviation) algebra behind Spelde's method.

    Spelde's CLT-based evaluation (Ludwig, Möhring & Stork 2001) carries
    each random variable only as its mean and standard deviation: sums add
    means and variances; maxima use Clark's moment-matching formulas
    (Clark 1961) with independence (ρ = 0). *)

type t = { mean : float; std : float }

val const : float -> t
(** Deterministic value. *)

val make : mean:float -> std:float -> t
(** Requires [std >= 0]. *)

val of_dist : Dist.t -> t
(** Collapse a full distribution to its first two moments. *)

val to_normal : ?points:int -> t -> Dist.t
(** The normal distribution with these moments (a point mass if σ = 0). *)

val add : t -> t -> t
(** Sum of independent variables: means and variances add. *)

val max_clark : t -> t -> t
(** Clark's first- and second-moment formulas for [max(X₁, X₂)] of
    independent normals. *)

val add_list : t list -> t
val max_list : t list -> t
(** Left folds of the binary operations; {!max_list} rejects []. *)
