(** Analytic distribution families, discretized onto {!Dist.t} grids.

    Includes the paper's two workhorses — the right-skewed Beta(2, 5)
    uncertainty perturbation of §V and the Gamma weights of the CVB
    heterogeneity generator — plus the multi-modal “special” distribution
    of Fig. 7 used to probe CLT convergence. *)

val uniform : ?points:int -> lo:float -> hi:float -> unit -> Dist.t
(** Uniform density on [\[lo, hi\]], [lo < hi]. *)

val beta : ?points:int -> alpha:float -> beta:float -> unit -> Dist.t
(** Beta(α, β) on [\[0, 1\]]. Requires [α > 1] and [β > 1] so the density
    is finite at the boundary (the paper selects α = 2, β = 5). *)

val beta_scaled :
  ?points:int -> alpha:float -> beta:float -> lo:float -> hi:float -> unit -> Dist.t
(** Beta(α, β) affinely mapped onto [\[lo, hi\]]. *)

val gamma : ?points:int -> shape:float -> scale:float -> unit -> Dist.t
(** Gamma distribution truncated at a far upper quantile. [shape >= 1]. *)

val normal : ?points:int -> mean:float -> std:float -> unit -> Dist.t
(** Normal(mean, std) truncated at ±8σ; [std = 0] yields a point mass. *)

val uncertain :
  ?points:int -> ?alpha:float -> ?beta:float -> ul:float -> float -> Dist.t
(** [uncertain ~ul w] is the paper's stochastic duration model: the
    deterministic weight [w] (its minimum value) perturbed to
    [w · (1 + (ul − 1) · Beta(α, β))], supported on [\[w, w·ul\]].
    Defaults α = 2, β = 5 (§V). [ul = 1] gives [Dist.const w].
    Requires [ul >= 1] and [w > 0] (or [w = 0], giving [const 0]). *)

val special : ?points:int -> unit -> Dist.t
(** The Fig. 7 “special” distribution: a concatenation of scaled Beta
    humps giving a strongly multi-modal density on [\[0, 40\]]. *)

val mixture : ?points:int -> (float * Dist.t) list -> Dist.t
(** [mixture weighted] is the density [Σ wᵢ·fᵢ] over the union of the
    supports; weights must be positive (they are normalized). Components
    must be non-constant. *)
