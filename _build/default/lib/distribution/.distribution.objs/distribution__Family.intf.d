lib/distribution/family.mli: Dist
