lib/distribution/normal_pair.ml: Dist Family Float List Numerics
