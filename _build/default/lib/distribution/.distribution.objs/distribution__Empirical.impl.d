lib/distribution/empirical.ml: Array Dist Float Int Numerics
