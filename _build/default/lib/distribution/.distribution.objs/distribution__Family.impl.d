lib/distribution/family.ml: Dist Float List Numerics
