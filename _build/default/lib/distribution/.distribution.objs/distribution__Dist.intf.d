lib/distribution/dist.mli:
