lib/distribution/empirical.mli: Dist
