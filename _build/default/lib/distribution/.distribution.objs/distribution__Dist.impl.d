lib/distribution/dist.ml: Array Float Int List Numerics
