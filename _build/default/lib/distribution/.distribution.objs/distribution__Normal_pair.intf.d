lib/distribution/normal_pair.mli: Dist
