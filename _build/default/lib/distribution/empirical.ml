type t = { xs : float array } (* sorted ascending *)

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Empirical.of_samples: empty sample";
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  { xs }

let size t = Array.length t.xs

let mean t =
  Numerics.Array_ops.sum t.xs /. float_of_int (size t)

let variance t =
  let n = size t in
  if n < 2 then 0.
  else begin
    let m = mean t in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      t.xs;
    !acc /. float_of_int (n - 1)
  end

let std t = sqrt (variance t)

let cdf_at t x =
  (* count of samples <= x, by binary search for the upper bound *)
  let n = size t in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  float_of_int !lo /. float_of_int n

let quantile t p =
  if p < 0. || p > 1. then invalid_arg "Empirical.quantile: p must be in [0,1]";
  let n = size t in
  if n = 1 then t.xs.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let i = Int.min (int_of_float pos) (n - 2) in
    let frac = pos -. float_of_int i in
    t.xs.(i) +. (frac *. (t.xs.(i + 1) -. t.xs.(i)))
  end

let min t = t.xs.(0)
let max t = t.xs.(size t - 1)

let to_dist ?(points = Dist.default_points) t =
  let lo = min t and hi = max t in
  if hi <= lo then Dist.const lo
  else begin
    (* histogram with [points − 1] equal-width cells, sampled at cell
       centers then re-gridded; density = count / (n · width) *)
    let cells = points - 1 in
    let width = (hi -. lo) /. float_of_int cells in
    let counts = Array.make cells 0 in
    Array.iter
      (fun x ->
        let c = Int.min (cells - 1) (int_of_float ((x -. lo) /. width)) in
        counts.(c) <- counts.(c) + 1)
      t.xs;
    let n = float_of_int (size t) in
    let density = Array.map (fun c -> float_of_int c /. (n *. width)) counts in
    (* place samples at cell centers; Dist renormalizes *)
    let dx = width in
    let first_center = lo +. (width /. 2.) in
    Dist.of_samples_pdf ~lo:first_center ~dx density
  end

let sorted t = t.xs
