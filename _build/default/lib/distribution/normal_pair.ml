type t = { mean : float; std : float }

let const v = { mean = v; std = 0. }

let make ~mean ~std =
  if std < 0. then invalid_arg "Normal_pair.make: std must be non-negative";
  { mean; std }

let of_dist d = { mean = Dist.mean d; std = Dist.std d }

let to_normal ?points t = Family.normal ?points ~mean:t.mean ~std:t.std ()

let add a b =
  { mean = a.mean +. b.mean; std = sqrt ((a.std *. a.std) +. (b.std *. b.std)) }

let max_clark a b =
  let theta = sqrt ((a.std *. a.std) +. (b.std *. b.std)) in
  if theta = 0. then const (Float.max a.mean b.mean)
  else begin
    let alpha = (a.mean -. b.mean) /. theta in
    let phi = Numerics.Special.normal_pdf alpha in
    let cap = Numerics.Special.normal_cdf alpha in
    let cap' = Numerics.Special.normal_cdf (-.alpha) in
    let m1 = (a.mean *. cap) +. (b.mean *. cap') +. (theta *. phi) in
    let m2 =
      (((a.mean *. a.mean) +. (a.std *. a.std)) *. cap)
      +. (((b.mean *. b.mean) +. (b.std *. b.std)) *. cap')
      +. ((a.mean +. b.mean) *. theta *. phi)
    in
    { mean = m1; std = sqrt (Float.max 0. (m2 -. (m1 *. m1))) }
  end

let add_list ts = List.fold_left add (const 0.) ts

let max_list = function
  | [] -> invalid_arg "Normal_pair.max_list: empty list"
  | t :: ts -> List.fold_left max_clark t ts
