let uniform ?points ~lo ~hi () =
  if not (lo < hi) then invalid_arg "Family.uniform: requires lo < hi";
  Dist.of_fn ?points ~lo ~hi (fun _ -> 1.)

let beta ?points ~alpha ~beta () =
  if alpha <= 1. || beta <= 1. then
    invalid_arg "Family.beta: requires alpha > 1 and beta > 1";
  Dist.of_fn ?points ~lo:0. ~hi:1. (Numerics.Special.beta_pdf ~alpha ~beta)

let beta_scaled ?points ~alpha ~beta:b ~lo ~hi () =
  if not (lo < hi) then invalid_arg "Family.beta_scaled: requires lo < hi";
  let d = beta ?points ~alpha ~beta:b () in
  Dist.shift (Dist.scale d (hi -. lo)) lo

let gamma ?points ~shape ~scale () =
  if shape < 1. || scale <= 0. then
    invalid_arg "Family.gamma: requires shape >= 1 and scale > 0";
  (* support truncated where the density has become negligible *)
  let mean = shape *. scale in
  let std = sqrt shape *. scale in
  let hi = mean +. (10. *. std) in
  Dist.of_fn ?points ~lo:0. ~hi (Numerics.Special.gamma_pdf ~shape ~scale)

let normal ?points ~mean ~std () =
  if std < 0. then invalid_arg "Family.normal: std must be non-negative";
  if std = 0. then Dist.const mean
  else
    Dist.of_fn ?points ~lo:(mean -. (8. *. std)) ~hi:(mean +. (8. *. std)) (fun x ->
        Numerics.Special.normal_pdf ((x -. mean) /. std) /. std)

let uncertain ?points ?(alpha = 2.) ?(beta = 5.) ~ul w =
  if ul < 1. then invalid_arg "Family.uncertain: uncertainty level must be >= 1";
  if w < 0. then invalid_arg "Family.uncertain: weight must be non-negative";
  if w = 0. || ul = 1. then Dist.const w
  else beta_scaled ?points ~alpha ~beta ~lo:w ~hi:(w *. ul) ()

let mixture ?(points = Dist.default_points) weighted =
  if weighted = [] then invalid_arg "Family.mixture: empty mixture";
  List.iter
    (fun (w, d) ->
      if w <= 0. then invalid_arg "Family.mixture: weights must be positive";
      if Dist.is_const d then invalid_arg "Family.mixture: constant component")
    weighted;
  let lo = List.fold_left (fun acc (_, d) -> Float.min acc (fst (Dist.support d))) infinity weighted in
  let hi =
    List.fold_left (fun acc (_, d) -> Float.max acc (snd (Dist.support d))) neg_infinity weighted
  in
  let total_w = List.fold_left (fun acc (w, _) -> acc +. w) 0. weighted in
  Dist.of_fn ~points ~lo ~hi (fun x ->
      List.fold_left (fun acc (w, d) -> acc +. (w /. total_w *. Dist.pdf_at d x)) 0. weighted)

let special ?(points = Dist.default_points) () =
  (* Three well-separated skewed humps on [0, 40]: strongly non-normal,
     with the oscillating shape Fig. 7 sketches. *)
  let hump ~alpha ~beta ~lo ~hi = beta_scaled ~points:256 ~alpha ~beta ~lo ~hi () in
  mixture ~points
    [ (0.35, hump ~alpha:2. ~beta:5. ~lo:0. ~hi:12.);
      (0.40, hump ~alpha:5. ~beta:2. ~lo:8. ~hi:28.);
      (0.25, hump ~alpha:3. ~beta:3. ~lo:25. ~hi:40.) ]
