(* Quickstart: schedule a small Cholesky task graph on a 3-processor
   heterogeneous platform, evaluate its makespan distribution under
   uncertainty, and print the paper's eight robustness metrics.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. The application: a tiled Cholesky factorization (10 tasks). *)
  let graph = Core.Workload.cholesky ~tiles:3 () in
  Printf.printf "Application: tiled Cholesky, %d tasks, %d dependencies\n"
    (Core.Graph.n_tasks graph) (Core.Graph.n_edges graph);

  (* 2. The platform: 3 unrelated processors, per-task speeds drawn as in
     the paper's real-application setup. *)
  let rng = Core.Rng.create 42L in
  let platform =
    Core.Platform.Gen.uniform_minval ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs:3 ()
  in

  (* 3. The uncertainty model: every duration w becomes
     w·(1 + (UL−1)·Beta(2,5)) with UL = 1.1, i.e. up to 10% overrun. *)
  let model = Core.Uncertainty.make ~ul:1.1 () in

  (* 4. A schedule (HEFT) and its end-to-end analysis. *)
  let sched = Core.Heuristics.heft graph platform in
  let analysis = Core.analyze sched platform model in

  let det = (Core.Simulator.deterministic sched platform).Core.Simulator.makespan in
  Printf.printf "\nHEFT deterministic makespan: %.2f\n" det;
  Printf.printf "Expected makespan under uncertainty: %.2f\n"
    analysis.Core.metrics.Core.Robustness.expected_makespan;

  print_endline "\nRobustness metrics (§IV of the paper):";
  let values = Core.Robustness.to_array analysis.Core.metrics in
  Array.iteri
    (fun i v -> Printf.printf "  %-10s  %12.5f\n" Core.Robustness.labels.(i) v)
    values;

  (* 5. Validate the analytic distribution against Monte Carlo. *)
  let ks, cm = Core.validate_against_montecarlo ~rng ~count:20000 analysis platform model in
  Printf.printf "\nAnalytic vs 20000-realization Monte Carlo: KS = %.4f, CM = %.4f\n" ks cm;

  (* 6. A glimpse of the makespan density. *)
  let xs, pdf = Core.Dist.to_arrays analysis.Core.makespan_dist in
  let peak = Array.fold_left Float.max 0. pdf in
  print_endline "\nMakespan density:";
  Array.iteri
    (fun i x ->
      if i mod 4 = 0 then begin
        let bar = int_of_float (40. *. pdf.(i) /. peak) in
        Printf.printf "  %8.2f  %s\n" x (String.make bar '#')
      end)
    xs
