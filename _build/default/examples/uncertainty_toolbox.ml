(* Tour of the uncertainty toolbox built around the paper's model:
   perturbation shapes (§VIII "non-standard distributions"), Kleindorfer
   bounds, bootstrap confidence intervals and antithetic Monte Carlo.

   Run with:  dune exec examples/uncertainty_toolbox.exe *)

let () =
  let rng = Core.Rng.create 8L in
  let graph = Core.Workload.lu ~tiles:3 () in
  let n = Core.Graph.n_tasks graph in
  let platform = Core.Platform.Gen.uniform_minval ~rng ~n_tasks:n ~n_procs:4 () in
  let sched = Core.Heuristics.heft graph platform in
  Printf.printf "Tiled LU factorization, %d tasks on 4 processors, HEFT schedule\n\n" n;

  (* 1. The same schedule under four perturbation shapes. *)
  print_endline "1. Makespan distribution vs perturbation shape (UL = 1.3):";
  List.iter
    (fun (name, shape) ->
      let model = Core.Uncertainty.make_shaped ~shape ~ul:1.3 () in
      let d = Core.Makespan_eval.distribution sched platform model in
      Printf.printf "   %-16s  E(M) %8.2f   σ(M) %7.3f   skew %+.3f\n" name
        (Core.Dist.mean d) (Core.Dist.std d) (Core.Dist.skewness d))
    [ ("beta(2,5)", Core.Uncertainty.Beta { alpha = 2.; beta = 5. });
      ("uniform", Core.Uncertainty.Uniform);
      ("triangular(.3)", Core.Uncertainty.Triangular { mode = 0.3 });
      ("oscillating", Core.Uncertainty.Oscillating) ];

  (* 2. Kleindorfer-style bracket around Monte Carlo. *)
  let model = Core.Uncertainty.make ~ul:1.3 () in
  let b = Core.Makespan_bounds.run sched platform model in
  let mc = Core.Montecarlo.run ~rng ~count:20000 sched platform model in
  Printf.printf
    "\n2. Dependence bounds (comonotone vs independent maxima):\n\
     \   lower bound mean %8.3f   Monte Carlo mean %8.3f   upper bound mean %8.3f\n\
     \   bracket holds: %b\n"
    (Core.Dist.mean b.Core.Makespan_bounds.lower)
    (Core.Empirical.mean mc)
    (Core.Dist.mean b.Core.Makespan_bounds.upper)
    (Core.Makespan_bounds.enclose b (Core.Empirical.to_dist ~points:128 mc));

  (* 3. Bootstrap CI of a Pearson coefficient over random schedules. *)
  let schedules = Core.Random_sched.generate_many ~rng ~graph ~n_procs:4 ~count:100 in
  let pairs =
    List.map
      (fun s ->
        let d = Core.Makespan_eval.distribution s platform model in
        (Core.Dist.mean d, Core.Dist.std d))
      schedules
  in
  let xs = Array.of_list (List.map fst pairs) in
  let ys = Array.of_list (List.map snd pairs) in
  let iv = Core.Bootstrap.pearson_ci ~rng xs ys in
  Printf.printf
    "\n3. Pearson(E(M), σ(M)) over 100 random schedules:\n\
     \   estimate %+.3f, 95%% bootstrap CI [%+.3f, %+.3f]\n"
    iv.Core.Bootstrap.estimate iv.Core.Bootstrap.lo iv.Core.Bootstrap.hi;

  (* 4. Antithetic variance reduction. *)
  let mean_of antithetic seed =
    let xs =
      Core.Montecarlo.realizations ~antithetic ~rng:(Core.Rng.create seed) ~count:200
        sched platform model
    in
    Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)
  in
  let spread f =
    let ms = Array.init 25 (fun k -> f (Int64.of_int (100 + k))) in
    let mu = Array.fold_left ( +. ) 0. ms /. 25. in
    sqrt (Array.fold_left (fun a m -> a +. ((m -. mu) ** 2.)) 0. ms /. 25.)
  in
  Printf.printf
    "\n4. Monte-Carlo mean-estimate dispersion over 25 runs of 200 realizations:\n\
     \   plain sampling  %.4f\n   antithetic      %.4f\n"
    (spread (mean_of false)) (spread (mean_of true))
