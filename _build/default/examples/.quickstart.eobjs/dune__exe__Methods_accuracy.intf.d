examples/methods_accuracy.mli:
