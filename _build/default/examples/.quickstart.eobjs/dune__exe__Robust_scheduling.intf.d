examples/robust_scheduling.mli:
