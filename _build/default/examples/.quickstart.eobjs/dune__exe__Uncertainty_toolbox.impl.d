examples/uncertainty_toolbox.ml: Array Core Int64 List Printf
