examples/quickstart.ml: Array Core Float Printf String
