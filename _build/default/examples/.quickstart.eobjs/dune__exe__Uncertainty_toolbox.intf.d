examples/uncertainty_toolbox.mli:
