examples/methods_accuracy.ml: Core List Printf
