examples/robustness_study.ml: Array Core List Printf Stats Sys
