examples/quickstart.mli:
