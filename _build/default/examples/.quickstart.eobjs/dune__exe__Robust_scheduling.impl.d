examples/robust_scheduling.ml: Core List Printf
