examples/compare_heuristics.ml: Core List Printf
