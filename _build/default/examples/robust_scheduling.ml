(* Ablation for the paper's future-work heuristic (§VIII): RobustHEFT
   ranks and places tasks by risk-adjusted durations mean + κ·std instead
   of minimum durations. The sweep over κ shows the makespan/robustness
   trade-off the paper conjectures, and prints a Gantt chart of the two
   extreme schedules.

   Run with:  dune exec examples/robust_scheduling.exe *)

let () =
  let rng = Core.Rng.create 17L in
  let graph = Core.Workload.random_dag ~rng ~n:40 () in
  let n = Core.Graph.n_tasks graph in
  let platform =
    Core.Platform.Gen.cvb ~rng ~n_tasks:n ~n_procs:6 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 ()
  in
  (* Variable UL (the paper's future-work model): with a constant UL the
     std of every duration is proportional to its mean, so risk-adjusted
     ranking degenerates to HEFT's. Here a third of the tasks are wildly
     uncertain (UL 1.9) and the rest almost deterministic (UL 1.02). *)
  let task_ul t = if t mod 3 = 0 then 1.9 else 1.02 in
  Printf.printf
    "Random DAG, %d tasks, 6 procs; variable uncertainty: UL = 1.9 for every\n\
     third task, 1.02 otherwise (the paper's variable-UL future-work model)\n\n"
    n;
  let model = Core.Uncertainty.make_variable ~base_ul:1.05 ~task_ul () in
  let report name sched =
    let a = Core.analyze sched platform model in
    Printf.printf "  %-16s  E(M) %9.3f   σ(M) %8.4f   lateness %8.4f\n" name
      a.Core.metrics.Core.Robustness.expected_makespan
      a.Core.metrics.Core.Robustness.makespan_std
      a.Core.metrics.Core.Robustness.avg_lateness;
    a
  in
  let heft = Core.Heuristics.heft graph platform in
  ignore (report "HEFT" heft);
  let robust =
    List.map
      (fun kappa ->
        let s = Core.Heuristics.robust_heft ~kappa graph platform model in
        (kappa, report (Printf.sprintf "RobustHEFT κ=%g" kappa) s, s))
      [ 0.; 0.5; 1.; 2.; 4. ]
  in
  (* Gantt of HEFT vs the most risk-averse schedule *)
  let _, _, most_averse = List.nth robust (List.length robust - 1) in
  print_endline "\nHEFT execution (deterministic durations):";
  print_string
    (Core.Gantt.render ~width:64 heft (Core.Simulator.deterministic heft platform));
  print_endline "\nRobustHEFT κ=4 execution:";
  print_string
    (Core.Gantt.render ~width:64 most_averse
       (Core.Simulator.deterministic most_averse platform));
  print_endline
    "\n(paper's conjecture: ranking by duration dispersion can trade a\n\
     little expected makespan for a tighter distribution)"
