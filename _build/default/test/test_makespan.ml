(* Makespan-distribution suites: Monte Carlo, classical independence
   method, Spelde, Dodin, and their mutual agreement. *)

let check_close = Tutil.check_close

let model11 = Workloads.Stochastify.make ~ul:1.1 ()

(* all tasks weight [w] on every proc, free homogeneous network *)
let flat_platform ~n_tasks ~n_procs ~w ~tau =
  let off v = Array.init n_procs (fun i -> Array.init n_procs (fun j -> if i = j then 0. else v)) in
  Platform.make ~etc:(Array.make_matrix n_tasks n_procs w) ~tau:(off tau) ~latency:(off 0.)

let chain_schedule n =
  let g = Workloads.Classic.chain ~n ~volume:0. () in
  let s =
    Sched.Schedule.make ~graph:g ~n_procs:1 ~proc_of:(Array.make n 0)
      ~order:[| Array.init n Fun.id |]
  in
  s

(* --- Classical method on exactly-solvable cases --- *)

let classic_chain_is_sum () =
  (* a 1-proc chain: makespan = sum of n independent perturbed weights *)
  let n = 10 and w = 20. in
  let s = chain_schedule n in
  let p = flat_platform ~n_tasks:n ~n_procs:1 ~w ~tau:0. in
  let d = Makespan.Classic.run s p model11 in
  let one = Workloads.Stochastify.dist model11 w in
  let mean1 = Distribution.Dist.mean one and var1 = Distribution.Dist.variance one in
  check_close ~eps:1e-3 "mean" (float_of_int n *. mean1) (Distribution.Dist.mean d);
  check_close ~eps:3e-2 "std" (sqrt (float_of_int n *. var1)) (Distribution.Dist.std d)

let classic_parallel_is_max () =
  (* n independent tasks on n procs + free join: makespan = max of iid *)
  let n = 6 and w = 20. in
  let g = Workloads.Classic.join ~n ~volume:0. () in
  let p = flat_platform ~n_tasks:(n + 1) ~n_procs:n ~w ~tau:0. in
  let proc_of = Array.init (n + 1) (fun t -> if t = n then 0 else t) in
  let order =
    Array.init n (fun q -> if q = 0 then [| 0; n |] else [| q |])
  in
  let s = Sched.Schedule.make ~graph:g ~n_procs:n ~proc_of ~order in
  let d = Makespan.Classic.run s p model11 in
  let one = Workloads.Stochastify.dist model11 w in
  let want =
    Distribution.Dist.add
      (Distribution.Dist.max_list (List.init n (fun _ -> one)))
      one
  in
  check_close ~eps:2e-3 "mean" (Distribution.Dist.mean want) (Distribution.Dist.mean d);
  check_close ~eps:5e-2 "std" (Distribution.Dist.std want) (Distribution.Dist.std d)

let classic_deterministic_model_gives_const () =
  let s = chain_schedule 5 in
  let p = flat_platform ~n_tasks:5 ~n_procs:1 ~w:10. ~tau:0. in
  let d = Makespan.Classic.run s p Workloads.Stochastify.deterministic in
  Alcotest.(check bool) "const" true (Distribution.Dist.is_const d);
  check_close "value" 50. (Distribution.Dist.mean d)

let classic_support_bounds =
  Tutil.qcheck ~count:30 "classical support within [det, det·UL]"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let ul = 1.2 in
      let model = Workloads.Stochastify.make ~ul () in
      let det = (Sched.Simulator.deterministic sched platform).Sched.Simulator.makespan in
      let d = Makespan.Classic.run sched platform model in
      let lo, hi = Distribution.Dist.support d in
      (* trimming may cut 1e-9 tails; allow a whisker *)
      lo >= det -. (0.01 *. det) && hi <= (det *. ul) +. (0.01 *. det))

(* --- Monte Carlo --- *)

let montecarlo_deterministic_given_seed () =
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 3 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:2 () in
  let s = Sched.Random_sched.generate ~rng ~graph:g ~n_procs:2 in
  let run seed =
    Makespan.Montecarlo.realizations ~rng:(Tutil.rng_of_seed seed) ~count:500 s p model11
  in
  Alcotest.(check bool) "same seed, same samples" true (run 42 = run 42);
  Alcotest.(check bool) "different seed differs" true (run 42 <> run 43)

let montecarlo_domain_count_irrelevant () =
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 4 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:2 () in
  let s = Sched.Random_sched.generate ~rng ~graph:g ~n_procs:2 in
  let run domains =
    Makespan.Montecarlo.realizations ~domains ~chunk_size:64
      ~rng:(Tutil.rng_of_seed 7) ~count:1000 s p model11
  in
  Alcotest.(check bool) "1 domain = 4 domains" true (run 1 = run 4)

let montecarlo_matches_classic_moments () =
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 5 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:3 () in
  let s = Sched.Heft.schedule g p in
  let d = Makespan.Classic.run s p model11 in
  let e = Makespan.Montecarlo.run ~rng ~count:30000 s p model11 in
  check_close ~eps:2e-3 "mean" (Distribution.Empirical.mean e) (Distribution.Dist.mean d);
  check_close ~eps:5e-2 "std" (Distribution.Empirical.std e) (Distribution.Dist.std d)

let montecarlo_ks_small_on_tree () =
  (* an out-tree has independent path distributions: the independence
     assumption is exact, so KS must shrink with sample size *)
  let g = Workloads.Classic.out_tree ~depth:2 ~arity:2 ~volume:1. () in
  let rng = Tutil.rng_of_seed 6 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:(Dag.Graph.n_tasks g) ~n_procs:7 () in
  (* one task per proc: no disjunctive coupling *)
  let s =
    Sched.Schedule.make ~graph:g ~n_procs:7
      ~proc_of:(Array.init 7 Fun.id)
      ~order:(Array.init 7 (fun q -> [| q |]))
  in
  let d = Makespan.Classic.run s p model11 in
  let e = Makespan.Montecarlo.run ~rng ~count:20000 s p model11 in
  let ks = Stats.Distance.ks (Analytic d) (Sampled e) in
  Alcotest.(check bool) "small ks" true (ks < 0.03)

let antithetic_preserves_distribution () =
  (* the marginal distribution must be unchanged: moments match plain MC *)
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 22 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:3 () in
  let s = Sched.Random_sched.generate ~rng ~graph:g ~n_procs:3 in
  let plain = Makespan.Montecarlo.run ~rng:(Tutil.rng_of_seed 1) ~count:20000 s p model11 in
  let anti =
    Makespan.Montecarlo.run ~antithetic:true ~rng:(Tutil.rng_of_seed 2) ~count:20000 s p
      model11
  in
  check_close ~eps:1e-3 "means agree" (Distribution.Empirical.mean plain)
    (Distribution.Empirical.mean anti);
  check_close ~eps:5e-2 "stds agree" (Distribution.Empirical.std plain)
    (Distribution.Empirical.std anti)

let antithetic_reduces_estimator_variance () =
  (* variance of the mean estimate across many small runs shrinks *)
  let p = flat_platform ~n_tasks:6 ~n_procs:1 ~w:20. ~tau:0. in
  let s = chain_schedule 6 in
  let means antithetic seed0 =
    Array.init 40 (fun k ->
        let rng = Tutil.rng_of_seed (seed0 + k) in
        let xs =
          Makespan.Montecarlo.realizations ~antithetic ~rng ~count:64 s p model11
        in
        Numerics.Array_ops.sum xs /. float_of_int (Array.length xs))
  in
  let var a = Stats.Descriptive.variance a in
  let v_plain = var (means false 1000) in
  let v_anti = var (means true 2000) in
  Alcotest.(check bool) "variance reduced" true (v_anti < 0.7 *. v_plain)

let quantile_sampling_matches_support =
  Tutil.qcheck ~count:50 "quantile sampling respects bounds and monotonicity"
    QCheck2.Gen.(pair (float_range 0.05 0.95) (float_range 0.05 0.95))
    (fun (u1, u2) ->
      let model = Workloads.Stochastify.make ~ul:1.4 () in
      let w = 10. in
      let x1 = Workloads.Stochastify.sample_quantile model ~u:u1 w in
      let x2 = Workloads.Stochastify.sample_quantile model ~u:u2 w in
      x1 >= w && x1 <= w *. 1.4 && (u1 <= u2) = (x1 <= x2))

(* --- Spelde --- *)

let spelde_chain_exact_moments () =
  let n = 10 and w = 20. in
  let s = chain_schedule n in
  let p = flat_platform ~n_tasks:n ~n_procs:1 ~w ~tau:0. in
  let m = Makespan.Spelde.moments s p model11 in
  check_close ~eps:1e-9 "mean"
    (float_of_int n *. Workloads.Stochastify.mean model11 w)
    m.Distribution.Normal_pair.mean;
  check_close ~eps:1e-9 "std"
    (sqrt (float_of_int n) *. Workloads.Stochastify.std model11 w)
    m.Distribution.Normal_pair.std

let spelde_close_to_classic =
  Tutil.qcheck ~count:20 "Spelde moments track classical moments"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let m = Makespan.Spelde.moments sched platform model11 in
      let d = Makespan.Classic.run sched platform model11 in
      match Distribution.Dist.is_const d with
      | true -> true
      | false ->
        Float.abs (m.Distribution.Normal_pair.mean -. Distribution.Dist.mean d)
        < 0.02 *. Distribution.Dist.mean d)

(* --- Dodin --- *)

let dodin_chain_no_duplication () =
  let s = chain_schedule 6 in
  let p = flat_platform ~n_tasks:6 ~n_procs:1 ~w:10. ~tau:0. in
  let o = Makespan.Dodin.evaluate s p model11 in
  Alcotest.(check int) "chain is SP" 0 o.Makespan.Dodin.duplications

let dodin_matches_classic_on_sp () =
  (* fork-join on one processor is series–parallel after serialization *)
  let s = chain_schedule 8 in
  let p = flat_platform ~n_tasks:8 ~n_procs:1 ~w:10. ~tau:0. in
  let a = Makespan.Dodin.run s p model11 in
  let b = Makespan.Classic.run s p model11 in
  check_close ~eps:1e-3 "mean" (Distribution.Dist.mean b) (Distribution.Dist.mean a);
  check_close ~eps:2e-2 "std" (Distribution.Dist.std b) (Distribution.Dist.std a)

let dodin_duplications_iff_not_sp =
  Tutil.qcheck ~count:30 "Dodin duplicates iff the disjunctive network is not SP"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let o = Makespan.Dodin.evaluate sched platform model11 in
      let dgraph = Sched.Disjunctive.graph_of sched in
      let network =
        Dag.Series_parallel.of_task_dag dgraph
          ~task:(fun _ -> ())
          ~edge:(fun _ _ -> ())
          ~zero:()
      in
      Dag.Series_parallel.is_series_parallel network
      = (o.Makespan.Dodin.duplications = 0))

let dodin_close_to_classic_general =
  Tutil.qcheck ~count:15 "Dodin ≈ classical on random schedules"
    Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let a = Makespan.Dodin.run sched platform model11 in
      let b = Makespan.Classic.run sched platform model11 in
      match (Distribution.Dist.is_const a, Distribution.Dist.is_const b) with
      | true, true -> true
      | false, false ->
        Float.abs (Distribution.Dist.mean a -. Distribution.Dist.mean b)
        < 0.03 *. Distribution.Dist.mean b
      | _ -> false)

(* --- Bounds --- *)

let bounds_bracket_montecarlo () =
  (* Kleindorfer-style bracket: MC lies between comonotone and
     independent sweeps in the CDF sense *)
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 14 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:3 () in
  let s = Sched.Random_sched.generate ~rng ~graph:g ~n_procs:3 in
  let b = Makespan.Bounds.run s p model11 in
  let e = Makespan.Montecarlo.run ~rng ~count:20000 s p model11 in
  Alcotest.(check bool) "mc enclosed" true
    (Makespan.Bounds.enclose b (Distribution.Empirical.to_dist ~points:128 e));
  (* and the bracket ordering on means *)
  Alcotest.(check bool) "lower mean <= upper mean" true
    (Distribution.Dist.mean b.Makespan.Bounds.lower
    <= Distribution.Dist.mean b.Makespan.Bounds.upper +. 1e-6)

let bounds_upper_is_classical () =
  let s = chain_schedule 5 in
  let p = flat_platform ~n_tasks:5 ~n_procs:1 ~w:10. ~tau:0. in
  let b = Makespan.Bounds.run s p model11 in
  let c = Makespan.Classic.run s p model11 in
  check_close ~eps:1e-6 "same mean" (Distribution.Dist.mean c)
    (Distribution.Dist.mean b.Makespan.Bounds.upper)

let bounds_coincide_on_chain () =
  (* a chain has no maxima: both bounds equal the exact sum *)
  let s = chain_schedule 5 in
  let p = flat_platform ~n_tasks:5 ~n_procs:1 ~w:10. ~tau:0. in
  let b = Makespan.Bounds.run s p model11 in
  check_close ~eps:1e-3 "means equal"
    (Distribution.Dist.mean b.Makespan.Bounds.lower)
    (Distribution.Dist.mean b.Makespan.Bounds.upper);
  check_close ~eps:2e-2 "stds equal"
    (Distribution.Dist.std b.Makespan.Bounds.lower)
    (Distribution.Dist.std b.Makespan.Bounds.upper)

(* --- Eval umbrella --- *)

let eval_dispatches () =
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 8 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:2 () in
  let s = Sched.Heft.schedule g p in
  List.iter
    (fun m ->
      let d = Makespan.Eval.distribution ~method_:m s p model11 in
      Alcotest.(check bool)
        (Makespan.Eval.method_name m ^ " positive mean")
        true
        (Distribution.Dist.mean d > 0.))
    Makespan.Eval.all_methods

let eval_method_names () =
  Alcotest.(check (list string)) "names" [ "classical"; "dodin"; "spelde" ]
    (List.map Makespan.Eval.method_name Makespan.Eval.all_methods)

let compare_methods_reports_all () =
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 9 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:2 () in
  let s = Sched.Heft.schedule g p in
  let rows = Makespan.Eval.compare_methods ~rng ~mc_count:3000 s p model11 in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  List.iter
    (fun (_, ks, cm) ->
      Alcotest.(check bool) "ks in [0,1]" true (ks >= 0. && ks <= 1.);
      Alcotest.(check bool) "cm >= 0" true (cm >= 0.))
    rows

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "makespan"
    [
      ( "classical",
        [
          tc "chain = sum" `Quick classic_chain_is_sum;
          tc "parallel = max" `Quick classic_parallel_is_max;
          tc "deterministic const" `Quick classic_deterministic_model_gives_const;
          classic_support_bounds;
        ] );
      ( "montecarlo",
        [
          tc "seeded determinism" `Quick montecarlo_deterministic_given_seed;
          tc "domain independence" `Quick montecarlo_domain_count_irrelevant;
          tc "moments vs classic" `Quick montecarlo_matches_classic_moments;
          tc "tree ks small" `Quick montecarlo_ks_small_on_tree;
          tc "antithetic marginals" `Quick antithetic_preserves_distribution;
          tc "antithetic variance" `Quick antithetic_reduces_estimator_variance;
          quantile_sampling_matches_support;
        ] );
      ( "spelde",
        [ tc "chain exact" `Quick spelde_chain_exact_moments; spelde_close_to_classic ] );
      ( "dodin",
        [
          tc "chain SP" `Quick dodin_chain_no_duplication;
          tc "matches classic on SP" `Quick dodin_matches_classic_on_sp;
          dodin_duplications_iff_not_sp;
          dodin_close_to_classic_general;
        ] );
      ( "bounds",
        [
          tc "bracket montecarlo" `Quick bounds_bracket_montecarlo;
          tc "upper = classical" `Quick bounds_upper_is_classical;
          tc "chain coincide" `Quick bounds_coincide_on_chain;
        ] );
      ( "eval",
        [
          tc "dispatch" `Quick eval_dispatches;
          tc "names" `Quick eval_method_names;
          tc "compare" `Quick compare_methods_reports_all;
        ] );
    ]
