(* Umbrella API surface: the Core facade exposes a coherent toolkit, and
   its conveniences agree with the underlying libraries. *)

let check_close = Tutil.check_close

let labels_align () =
  Alcotest.(check int) "8 paper metrics" 8 (Array.length Core.Robustness.labels);
  Alcotest.(check int) "5 extended metrics" 5 (Array.length Core.Extended_metrics.labels)

let workload_aliases_build () =
  let rng = Core.Rng.create 1L in
  List.iter
    (fun (name, n) -> Alcotest.(check bool) name true (n > 0))
    [
      ("cholesky", Core.Graph.n_tasks (Core.Workload.cholesky ~tiles:3 ()));
      ("gauss", Core.Graph.n_tasks (Core.Workload.gauss_elim ~n:5 ()));
      ("lu", Core.Graph.n_tasks (Core.Workload.lu ~tiles:3 ()));
      ("fft", Core.Graph.n_tasks (Core.Workload.fft ~n:8 ()));
      ("random", Core.Graph.n_tasks (Core.Workload.random_dag ~rng ~n:12 ()));
      ("chain", Core.Graph.n_tasks (Core.Workload.chain ~n:4 ()));
      ("join", Core.Graph.n_tasks (Core.Workload.join ~n:4 ()));
      ("fork-join", Core.Graph.n_tasks (Core.Workload.fork_join ~width:4 ()));
      ("in-tree", Core.Graph.n_tasks (Core.Workload.in_tree ~depth:2 ()));
      ("out-tree", Core.Graph.n_tasks (Core.Workload.out_tree ~depth:2 ()));
      ("diamond", Core.Graph.n_tasks (Core.Workload.diamond ~rows:3 ()));
    ]

let all_heuristics_run () =
  let rng = Core.Rng.create 2L in
  let graph = Core.Workload.cholesky ~tiles:3 () in
  let platform =
    Core.Platform.Gen.uniform_minval ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let model = Core.Uncertainty.make ~ul:1.1 () in
  let run name s =
    let a = Core.analyze s platform model in
    Alcotest.(check bool) name true
      (a.Core.metrics.Core.Robustness.expected_makespan > 0.)
  in
  run "heft" (Core.Heuristics.heft graph platform);
  run "heft-best-rank" (Core.Heuristics.heft_with_rank ~rank:`Best graph platform);
  run "bil" (Core.Heuristics.bil graph platform);
  run "bmct" (Core.Heuristics.bmct graph platform);
  run "cpop" (Core.Heuristics.cpop graph platform);
  run "dls" (Core.Heuristics.dls graph platform);
  run "robust-heft" (Core.Heuristics.robust_heft graph platform model);
  Alcotest.(check int) "paper trio" 3 (List.length Core.Heuristics.all)

let analyze_methods_consistent () =
  let rng = Core.Rng.create 3L in
  let graph = Core.Workload.fork_join ~width:5 () in
  let platform =
    Core.Platform.Gen.uniform_minval ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let model = Core.Uncertainty.make ~ul:1.2 () in
  let sched = Core.Heuristics.heft graph platform in
  let means =
    List.map
      (fun m ->
        (Core.analyze ~method_:m sched platform model).Core.metrics
          .Core.Robustness.expected_makespan)
      [ Core.Makespan_eval.Classical; Core.Makespan_eval.Dodin; Core.Makespan_eval.Spelde ]
  in
  match means with
  | [ a; b; c ] ->
    check_close ~eps:0.02 "dodin" a b;
    check_close ~eps:0.02 "spelde" a c
  | _ -> Alcotest.fail "three methods"

let gantt_and_serialization_compose () =
  let rng = Core.Rng.create 4L in
  let graph = Core.Workload.gauss_elim ~n:5 () in
  let platform =
    Core.Platform.Gen.uniform_minval ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs:2 ()
  in
  let sched = Core.Heuristics.heft graph platform in
  let text = Core.Schedule.to_string sched in
  let back = Core.Schedule.of_string ~graph text in
  let times = Core.Simulator.deterministic back platform in
  Alcotest.(check bool) "gantt renders" true
    (String.length (Core.Gantt.render back times) > 50)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [
      ( "facade",
        [
          tc "labels" `Quick labels_align;
          tc "workload aliases" `Quick workload_aliases_build;
          tc "heuristic aliases" `Quick all_heuristics_run;
          tc "methods consistent" `Quick analyze_methods_consistent;
          tc "gantt/serialization" `Quick gantt_and_serialization_compose;
        ] );
    ]
