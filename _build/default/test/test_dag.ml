(* DAG suites: graph construction/validation, levels and slacks,
   critical paths, series–parallel reduction, dot export. *)

let check_close = Tutil.check_close

let mk n edges = Dag.Graph.make ~n ~edges

(* a little diamond: 0 → 1, 0 → 2, 1 → 3, 2 → 3 *)
let diamond () = mk 4 [ (0, 1, 1.); (0, 2, 2.); (1, 3, 3.); (2, 3, 4.) ]

(* --- Graph --- *)

let graph_accessors () =
  let g = diamond () in
  Alcotest.(check int) "tasks" 4 (Dag.Graph.n_tasks g);
  Alcotest.(check int) "edges" 4 (Dag.Graph.n_edges g);
  Alcotest.(check (array int)) "entries" [| 0 |] (Dag.Graph.entries g);
  Alcotest.(check (array int)) "exits" [| 3 |] (Dag.Graph.exits g);
  Alcotest.(check int) "succs of 0" 2 (Array.length (Dag.Graph.succs g 0));
  Alcotest.(check int) "preds of 3" 2 (Array.length (Dag.Graph.preds g 3));
  (match Dag.Graph.volume g ~src:0 ~dst:2 with
  | Some v -> check_close "volume" 2. v
  | None -> Alcotest.fail "edge 0->2 missing");
  Alcotest.(check bool) "has_edge" true (Dag.Graph.has_edge g ~src:1 ~dst:3);
  Alcotest.(check bool) "no reverse edge" false (Dag.Graph.has_edge g ~src:3 ~dst:1)

let graph_rejects_invalid () =
  let expect msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect "cycle" (fun () -> mk 2 [ (0, 1, 0.); (1, 0, 0.) ]);
  expect "self loop" (fun () -> mk 2 [ (0, 0, 0.) ]);
  expect "duplicate" (fun () -> mk 2 [ (0, 1, 0.); (0, 1, 1.) ]);
  expect "out of range" (fun () -> mk 2 [ (0, 5, 0.) ]);
  expect "negative volume" (fun () -> mk 2 [ (0, 1, -1.) ]);
  expect "empty" (fun () -> mk 0 [])

let topo_order_is_valid =
  Tutil.qcheck ~count:100 "topo order puts every edge forward" Tutil.random_dag_gen
    (fun g ->
      let order = Dag.Graph.topo_order g in
      let pos = Array.make (Dag.Graph.n_tasks g) 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Array.for_all (fun (u, v, _) -> pos.(u) < pos.(v)) (Dag.Graph.edges g))

let topo_order_is_permutation =
  Tutil.qcheck ~count:100 "topo order is a permutation" Tutil.random_dag_gen (fun g ->
      let order = Array.copy (Dag.Graph.topo_order g) in
      Array.sort compare order;
      order = Array.init (Dag.Graph.n_tasks g) Fun.id)

let add_edges_extends () =
  let g = mk 3 [ (0, 1, 1.) ] in
  let g' = Dag.Graph.add_edges g [ (1, 2, 5.) ] in
  Alcotest.(check int) "edges" 2 (Dag.Graph.n_edges g');
  Alcotest.(check int) "original untouched" 1 (Dag.Graph.n_edges g);
  Alcotest.(check bool) "new edge" true (Dag.Graph.has_edge g' ~src:1 ~dst:2)

let add_edges_rejects_cycle () =
  let g = mk 2 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "cycle rejected" true
    (match Dag.Graph.add_edges g [ (1, 0, 1.) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let reachability () =
  let g = diamond () in
  Alcotest.(check bool) "0 reaches 3" true (Dag.Graph.transitive_closure_mem g ~src:0 ~dst:3);
  Alcotest.(check bool) "1 not to 2" false (Dag.Graph.transitive_closure_mem g ~src:1 ~dst:2);
  Alcotest.(check bool) "self" true (Dag.Graph.transitive_closure_mem g ~src:2 ~dst:2)

(* --- Levels --- *)

let unit_weights = { Dag.Levels.task = (fun _ -> 1.); edge = (fun _ _ -> 0.) }

let diamond_weights =
  (* task weights 1, edge weights = volumes *)
  let g = diamond () in
  {
    Dag.Levels.task = (fun _ -> 1.);
    edge =
      (fun u v ->
        match Dag.Graph.volume g ~src:u ~dst:v with Some v -> v | None -> 0.);
  }

let levels_on_diamond () =
  let g = diamond () in
  let w = diamond_weights in
  let tl = Dag.Levels.top_levels g w in
  let bl = Dag.Levels.bottom_levels g w in
  (* Tl: 0→0; 1: 1+1=2; 2: 1+2=3; 3: max(2+1+3, 3+1+4)=8 *)
  check_close "tl 0" 0. tl.(0);
  check_close "tl 1" 2. tl.(1);
  check_close "tl 2" 3. tl.(2);
  check_close "tl 3" 8. tl.(3);
  (* Bl: 3: 1; 1: 1+3+1=5; 2: 1+4+1=6; 0: 1+max(1+5, 2+6)=9 *)
  check_close "bl 3" 1. bl.(3);
  check_close "bl 1" 5. bl.(1);
  check_close "bl 2" 6. bl.(2);
  check_close "bl 0" 9. bl.(0);
  check_close "makespan" 9. (Dag.Levels.makespan g w)

let slack_critical_path_zero () =
  let g = diamond () in
  let s = Dag.Levels.slacks g diamond_weights in
  (* critical path 0 → 2 → 3 *)
  check_close "slack 0" 0. s.(0);
  check_close "slack 2" 0. s.(2);
  check_close "slack 3" 0. s.(3);
  (* task 1: M − Bl(1) − Tl(1) = 9 − 5 − 2 = 2 *)
  check_close "slack 1" 2. s.(1)

let slack_identity =
  Tutil.qcheck ~count:100 "max(Tl+Bl) = makespan and slacks >= 0" Tutil.random_dag_gen
    (fun g ->
      let tl = Dag.Levels.top_levels g unit_weights in
      let bl = Dag.Levels.bottom_levels g unit_weights in
      let m = Dag.Levels.makespan g unit_weights in
      let best = ref 0. in
      Array.iteri (fun i t -> best := Float.max !best (t +. bl.(i))) tl;
      Float.abs (!best -. m) < 1e-9
      && Array.for_all (fun s -> s >= 0.) (Dag.Levels.slacks g unit_weights))

let chain_levels =
  Tutil.qcheck ~count:30 "chain of n unit tasks has makespan n"
    QCheck2.Gen.(int_range 1 30)
    (fun n ->
      let g = Workloads.Classic.chain ~n () in
      Float.abs (Dag.Levels.makespan g unit_weights -. float_of_int n) < 1e-9)

let critical_path_is_path () =
  let g = diamond () in
  let cp = Dag.Levels.critical_path g diamond_weights in
  Alcotest.(check (list int)) "path" [ 0; 2; 3 ] cp

let critical_path_consistent =
  Tutil.qcheck ~count:100 "critical path length = makespan" Tutil.random_dag_gen (fun g ->
      let w = unit_weights in
      let cp = Dag.Levels.critical_path g w in
      let rec length = function
        | [] -> 0.
        | [ v ] -> w.Dag.Levels.task v
        | u :: (v :: _ as rest) ->
          w.Dag.Levels.task u +. w.Dag.Levels.edge u v +. length rest
      in
      Float.abs (length cp -. Dag.Levels.makespan g w) < 1e-9)

(* --- Series_parallel --- *)

let scalar_algebra = { Dag.Series_parallel.series = ( +. ); parallel = Float.max }

let sp_single_edge () =
  let net = Dag.Series_parallel.of_edges ~n:2 ~source:0 ~sink:1 [ (0, 1, 5.) ] in
  let r = Dag.Series_parallel.reduce scalar_algebra net in
  check_close "weight" 5. r.Dag.Series_parallel.weight;
  Alcotest.(check int) "no duplication" 0 r.Dag.Series_parallel.duplications

let sp_series_chain () =
  let net =
    Dag.Series_parallel.of_edges ~n:4 ~source:0 ~sink:3
      [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.) ]
  in
  let r = Dag.Series_parallel.reduce scalar_algebra net in
  check_close "sum" 6. r.Dag.Series_parallel.weight;
  Alcotest.(check int) "sp" 0 r.Dag.Series_parallel.duplications

let sp_parallel_edges () =
  let net =
    Dag.Series_parallel.of_edges ~n:2 ~source:0 ~sink:1 [ (0, 1, 3.); (0, 1, 7.) ]
  in
  let r = Dag.Series_parallel.reduce scalar_algebra net in
  check_close "max" 7. r.Dag.Series_parallel.weight

let sp_diamond () =
  let net =
    Dag.Series_parallel.of_edges ~n:4 ~source:0 ~sink:3
      [ (0, 1, 1.); (0, 2, 2.); (1, 3, 4.); (2, 3, 1.) ]
  in
  let r = Dag.Series_parallel.reduce scalar_algebra net in
  check_close "longest path" 5. r.Dag.Series_parallel.weight;
  Alcotest.(check int) "diamond is SP" 0 r.Dag.Series_parallel.duplications

let sp_bridge_needs_duplication () =
  (* the "N" graph: 0→1, 0→2, 1→2, 1→3, 2→3 — not series–parallel *)
  let net =
    Dag.Series_parallel.of_edges ~n:4 ~source:0 ~sink:3
      [ (0, 1, 1.); (0, 2, 10.); (1, 2, 1.); (1, 3, 1.); (2, 3, 1.) ]
  in
  Alcotest.(check bool) "not SP" false (Dag.Series_parallel.is_series_parallel net);
  let r = Dag.Series_parallel.reduce scalar_algebra net in
  Alcotest.(check bool) "duplicated" true (r.Dag.Series_parallel.duplications > 0);
  (* longest path: 0→2→3 = 11 — scalar (max,+) duplication stays exact *)
  check_close "exact for scalars" 11. r.Dag.Series_parallel.weight

let sp_scalar_reduction_equals_longest_path =
  (* (max, +) reduction with duplication is exact on ANY network, so the
     oracle is the DAG longest path: a strong whole-engine property *)
  Tutil.qcheck ~count:100 "reduce (max,+) = longest path" Tutil.random_dag_gen (fun g ->
      let w = unit_weights in
      let net =
        Dag.Series_parallel.of_task_dag g
          ~task:(fun v -> w.Dag.Levels.task v)
          ~edge:(fun u v -> w.Dag.Levels.edge u v)
          ~zero:0.
      in
      let r = Dag.Series_parallel.reduce scalar_algebra net in
      Float.abs (r.Dag.Series_parallel.weight -. Dag.Levels.makespan g w) < 1e-9)

let sp_of_task_dag_weighted =
  Tutil.qcheck ~count:50 "of_task_dag respects task and edge weights"
    Tutil.random_dag_gen
    (fun g ->
      (* weights depending on identity *)
      let w =
        {
          Dag.Levels.task = (fun v -> 1. +. (0.1 *. float_of_int v));
          edge = (fun u v -> 0.01 *. float_of_int (u + v));
        }
      in
      let net =
        Dag.Series_parallel.of_task_dag g
          ~task:(fun v -> w.Dag.Levels.task v)
          ~edge:(fun u v -> w.Dag.Levels.edge u v)
          ~zero:0.
      in
      let r = Dag.Series_parallel.reduce scalar_algebra net in
      Float.abs (r.Dag.Series_parallel.weight -. Dag.Levels.makespan g w) < 1e-9)

let sp_validity_checks () =
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* node 2 not on any source-sink path *)
  expect (fun () ->
      Dag.Series_parallel.of_edges ~n:3 ~source:0 ~sink:1 [ (0, 1, 1.); (2, 1, 1.) ]);
  (* cycle *)
  expect (fun () ->
      Dag.Series_parallel.of_edges ~n:3 ~source:0 ~sink:2
        [ (0, 1, 1.); (1, 2, 1.); (2, 1, 1.) ]);
  (* source = sink *)
  expect (fun () -> Dag.Series_parallel.of_edges ~n:2 ~source:0 ~sink:0 [ (0, 1, 1.) ])

let sp_is_series_parallel_on_sp () =
  let net =
    Dag.Series_parallel.of_edges ~n:4 ~source:0 ~sink:3
      [ (0, 1, 1.); (0, 2, 2.); (1, 3, 4.); (2, 3, 1.) ]
  in
  Alcotest.(check bool) "diamond is SP" true (Dag.Series_parallel.is_series_parallel net);
  (* is_series_parallel must not consume the network *)
  let r = Dag.Series_parallel.reduce scalar_algebra net in
  check_close "still reducible" 5. r.Dag.Series_parallel.weight

(* --- Dot --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let dot_export () =
  let g = diamond () in
  let s = Dag.Dot.to_dot ~name:"test" g in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph test" s);
  Alcotest.(check bool) "edge" true (contains ~needle:"n0 -> n1" s);
  Alcotest.(check bool) "volume label" true (contains ~needle:"\"2\"" s)

let dot_custom_labels () =
  let g = mk 2 [ (0, 1, 1.) ] in
  let s = Dag.Dot.to_dot ~task_label:(fun v -> Printf.sprintf "T%d!" v) g in
  Alcotest.(check bool) "custom label" true (contains ~needle:"T1!" s)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "dag"
    [
      ( "graph",
        [
          tc "accessors" `Quick graph_accessors;
          tc "validation" `Quick graph_rejects_invalid;
          topo_order_is_valid;
          topo_order_is_permutation;
          tc "add_edges" `Quick add_edges_extends;
          tc "add_edges cycle" `Quick add_edges_rejects_cycle;
          tc "reachability" `Quick reachability;
        ] );
      ( "levels",
        [
          tc "diamond levels" `Quick levels_on_diamond;
          tc "critical slack zero" `Quick slack_critical_path_zero;
          slack_identity;
          chain_levels;
          tc "critical path diamond" `Quick critical_path_is_path;
          critical_path_consistent;
        ] );
      ( "series_parallel",
        [
          tc "single edge" `Quick sp_single_edge;
          tc "series chain" `Quick sp_series_chain;
          tc "parallel edges" `Quick sp_parallel_edges;
          tc "diamond" `Quick sp_diamond;
          tc "bridge duplication" `Quick sp_bridge_needs_duplication;
          sp_scalar_reduction_equals_longest_path;
          sp_of_task_dag_weighted;
          tc "validity" `Quick sp_validity_checks;
          tc "is_series_parallel" `Quick sp_is_series_parallel_on_sp;
        ] );
      ( "dot",
        [ tc "export" `Quick dot_export; tc "custom labels" `Quick dot_custom_labels ] );
    ]
