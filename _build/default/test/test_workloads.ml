(* Workload suites: the paper's DAG generators (random layered, Cholesky,
   Gaussian elimination), classic shapes, and the uncertainty model. *)

let check_close = Tutil.check_close

(* --- Random_dag --- *)

let random_dag_connected =
  Tutil.qcheck ~count:50 "random DAG: every non-first node has a predecessor"
    QCheck2.Gen.(pair (int_range 2 60) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let g = Workloads.Random_dag.generate ~rng ~n () in
      let ok = ref true in
      for v = 1 to n - 1 do
        if Array.length (Dag.Graph.preds g v) = 0 then ok := false
      done;
      Dag.Graph.n_tasks g = n && !ok)

let random_dag_max_out_degree_respected =
  Tutil.qcheck ~count:50 "out-degree cap respected"
    QCheck2.Gen.(pair (int_range 5 40) (int_range 1 5))
    (fun (n, cap) ->
      let rng = Tutil.rng_of_seed (n + cap) in
      let g = Workloads.Random_dag.generate ~rng ~n ~max_out_degree:cap () in
      (* each node i connects to at most cap earlier nodes; in-degree of a
         node counts contributions from later nodes, so check the builder
         invariant through total edges <= cap·(n−1) *)
      Dag.Graph.n_edges g <= cap * (n - 1))

let random_dag_ccr_scaling () =
  (* mean volume ≈ ccr·μ_task/τ̄ *)
  let rng = Tutil.rng_of_seed 77 in
  let g = Workloads.Random_dag.generate ~rng ~n:200 ~ccr:0.1 ~mu_task:20. ~mean_tau:1. () in
  let edges = Dag.Graph.edges g in
  let total = Array.fold_left (fun acc (_, _, v) -> acc +. v) 0. edges in
  check_close ~eps:0.15 "mean volume" 2. (total /. float_of_int (Array.length edges))

let random_dag_deterministic () =
  let g1 = Workloads.Random_dag.generate ~rng:(Tutil.rng_of_seed 5) ~n:30 () in
  let g2 = Workloads.Random_dag.generate ~rng:(Tutil.rng_of_seed 5) ~n:30 () in
  Alcotest.(check bool) "same edges" true (Dag.Graph.edges g1 = Dag.Graph.edges g2)

let random_dag_rejects_bad_args () =
  let rng = Tutil.rng_of_seed 1 in
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect (fun () -> ignore (Workloads.Random_dag.generate ~rng ~n:0 ()));
  expect (fun () -> ignore (Workloads.Random_dag.generate ~rng ~n:5 ~ccr:(-1.) ()));
  expect (fun () -> ignore (Workloads.Random_dag.generate ~rng ~n:5 ~max_out_degree:0 ()))

(* --- Cholesky --- *)

let cholesky_task_counts () =
  (* b + b(b−1)/2 + Σ_k (b−k−1)(b−k)/2: known values *)
  List.iter
    (fun (tiles, want) ->
      Alcotest.(check int)
        (Printf.sprintf "tiles %d" tiles)
        want
        (Workloads.Cholesky.n_tasks ~tiles))
    [ (1, 1); (2, 4); (3, 10); (4, 20); (5, 35) ]

let cholesky_graph_matches_count =
  Tutil.qcheck ~count:10 "generate size = n_tasks" QCheck2.Gen.(int_range 1 8) (fun tiles ->
      Dag.Graph.n_tasks (Workloads.Cholesky.generate ~tiles ())
      = Workloads.Cholesky.n_tasks ~tiles)

let cholesky_structure_b3 () =
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  Alcotest.(check int) "10 tasks" 10 (Dag.Graph.n_tasks g);
  (* single entry (POTRF 0) and single exit (POTRF 2) *)
  Alcotest.(check int) "one entry" 1 (Array.length (Dag.Graph.entries g));
  Alcotest.(check int) "one exit" 1 (Array.length (Dag.Graph.exits g));
  let entry = (Dag.Graph.entries g).(0) and exit_ = (Dag.Graph.exits g).(0) in
  Alcotest.(check string) "entry kind" "POTRF(0)" (Workloads.Cholesky.task_name ~tiles:3 entry);
  Alcotest.(check string) "exit kind" "POTRF(2)" (Workloads.Cholesky.task_name ~tiles:3 exit_)

let cholesky_critical_path_depth () =
  (* critical path alternates POTRF/TRSM/UPDATE: length 3(b−1)+1 *)
  let tiles = 4 in
  let g = Workloads.Cholesky.generate ~tiles () in
  let w = { Dag.Levels.task = (fun _ -> 1.); edge = (fun _ _ -> 0.) } in
  check_close "depth" (float_of_int ((3 * (tiles - 1)) + 1)) (Dag.Levels.makespan g w)

let cholesky_kind_roundtrip () =
  let tiles = 4 in
  for t = 0 to Workloads.Cholesky.n_tasks ~tiles - 1 do
    (* names decode without exception and are distinct per index *)
    ignore (Workloads.Cholesky.task_name ~tiles t)
  done;
  Alcotest.(check bool) "kind_of rejects out of range" true
    (match Workloads.Cholesky.kind_of ~tiles 9999 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Gauss_elim --- *)

let gauss_task_counts () =
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (Printf.sprintf "n %d" n) want (Workloads.Gauss_elim.n_tasks ~n))
    [ (2, 2); (3, 5); (4, 9); (13, 90); (14, 104) ]

let gauss_graph_matches_count =
  Tutil.qcheck ~count:10 "generate size = n_tasks" QCheck2.Gen.(int_range 2 16) (fun n ->
      Dag.Graph.n_tasks (Workloads.Gauss_elim.generate ~n ())
      = Workloads.Gauss_elim.n_tasks ~n)

let gauss_structure () =
  let n = 5 in
  let g = Workloads.Gauss_elim.generate ~n () in
  (* single entry: the first pivot *)
  Alcotest.(check int) "one entry" 1 (Array.length (Dag.Graph.entries g));
  Alcotest.(check string) "entry" "PIV(1)"
    (Workloads.Gauss_elim.task_name ~n (Dag.Graph.entries g).(0));
  (* depth: pivot and update alternate over n−1 steps: 2(n−1) *)
  let w = { Dag.Levels.task = (fun _ -> 1.); edge = (fun _ _ -> 0.) } in
  check_close "depth" (float_of_int (2 * (n - 1))) (Dag.Levels.makespan g w)

(* --- LU --- *)

let lu_task_counts () =
  (* Σ 1 + 2m + m² with m = b−k−1 *)
  List.iter
    (fun (tiles, want) ->
      Alcotest.(check int) (Printf.sprintf "tiles %d" tiles) want
        (Workloads.Lu.n_tasks ~tiles))
    [ (1, 1); (2, 5); (3, 14); (4, 30) ]

let lu_graph_matches_count =
  Tutil.qcheck ~count:8 "generate size = n_tasks" QCheck2.Gen.(int_range 1 6) (fun tiles ->
      Dag.Graph.n_tasks (Workloads.Lu.generate ~tiles ()) = Workloads.Lu.n_tasks ~tiles)

let lu_structure () =
  let g = Workloads.Lu.generate ~tiles:3 () in
  Alcotest.(check int) "14 tasks" 14 (Dag.Graph.n_tasks g);
  Alcotest.(check int) "one entry" 1 (Array.length (Dag.Graph.entries g));
  Alcotest.(check string) "entry" "GETRF(0)"
    (Workloads.Lu.task_name ~tiles:3 (Dag.Graph.entries g).(0));
  (* depth: GETRF → TRSM → GEMM per step, 3(b−1)+1 levels *)
  let w = { Dag.Levels.task = (fun _ -> 1.); edge = (fun _ _ -> 0.) } in
  Tutil.check_close "depth" 7. (Dag.Levels.makespan g w)

(* --- FFT graph --- *)

let fft_counts_and_shape () =
  Alcotest.(check int) "8-point tasks" 32 (Workloads.Fft_graph.n_tasks ~n:8);
  let g = Workloads.Fft_graph.generate ~n:8 () in
  Alcotest.(check int) "tasks" 32 (Dag.Graph.n_tasks g);
  Alcotest.(check int) "entries" 8 (Array.length (Dag.Graph.entries g));
  Alcotest.(check int) "exits" 8 (Array.length (Dag.Graph.exits g));
  Alcotest.(check int) "edges" (2 * 8 * 3) (Dag.Graph.n_edges g);
  (* every interior task has exactly 2 preds *)
  for t = 8 to 31 do
    Alcotest.(check int) "two preds" 2 (Array.length (Dag.Graph.preds g t))
  done;
  let l, i = Workloads.Fft_graph.level_of ~n:8 19 in
  Alcotest.(check (pair int int)) "level_of" (2, 3) (l, i)

let fft_rejects_non_pow2 () =
  Alcotest.(check bool) "rejects 6" true
    (match Workloads.Fft_graph.generate ~n:6 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Classic shapes --- *)

let chain_shape () =
  let g = Workloads.Classic.chain ~n:5 () in
  Alcotest.(check int) "tasks" 5 (Dag.Graph.n_tasks g);
  Alcotest.(check int) "edges" 4 (Dag.Graph.n_edges g);
  Alcotest.(check (array int)) "entry" [| 0 |] (Dag.Graph.entries g);
  Alcotest.(check (array int)) "exit" [| 4 |] (Dag.Graph.exits g)

let join_shape () =
  let g = Workloads.Classic.join ~n:6 () in
  Alcotest.(check int) "tasks" 7 (Dag.Graph.n_tasks g);
  Alcotest.(check int) "preds of join" 6 (Array.length (Dag.Graph.preds g 6));
  Alcotest.(check int) "entries" 6 (Array.length (Dag.Graph.entries g))

let fork_join_shape () =
  let g = Workloads.Classic.fork_join ~width:4 () in
  Alcotest.(check int) "tasks" 6 (Dag.Graph.n_tasks g);
  Alcotest.(check int) "edges" 8 (Dag.Graph.n_edges g);
  Alcotest.(check int) "one entry" 1 (Array.length (Dag.Graph.entries g));
  Alcotest.(check int) "one exit" 1 (Array.length (Dag.Graph.exits g))

let tree_shapes () =
  let it = Workloads.Classic.in_tree ~depth:3 ~arity:2 () in
  Alcotest.(check int) "in-tree size" 15 (Dag.Graph.n_tasks it);
  Alcotest.(check int) "in-tree exits" 1 (Array.length (Dag.Graph.exits it));
  Alcotest.(check int) "in-tree entries" 8 (Array.length (Dag.Graph.entries it));
  let ot = Workloads.Classic.out_tree ~depth:3 ~arity:2 () in
  Alcotest.(check int) "out-tree entries" 1 (Array.length (Dag.Graph.entries ot));
  Alcotest.(check int) "out-tree exits" 8 (Array.length (Dag.Graph.exits ot))

let diamond_shape () =
  let g = Workloads.Classic.diamond ~rows:4 () in
  Alcotest.(check int) "tasks" 16 (Dag.Graph.n_tasks g);
  Alcotest.(check int) "edges" 24 (Dag.Graph.n_edges g);
  let w = { Dag.Levels.task = (fun _ -> 1.); edge = (fun _ _ -> 0.) } in
  check_close "wavefront depth" 7. (Dag.Levels.makespan g w)

(* --- Stochastify --- *)

let stochastify_moments_match_sampling () =
  let model = Workloads.Stochastify.make ~ul:1.2 () in
  let w = 15. in
  let rng = Tutil.rng_of_seed 42 in
  let n = 100000 in
  let acc = ref 0. and acc2 = ref 0. in
  for _ = 1 to n do
    let x = Workloads.Stochastify.sample model rng w in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  check_close ~eps:1e-3 "analytic mean = sampled" (Workloads.Stochastify.mean model w) mean;
  check_close ~eps:2e-2 "analytic std = sampled" (Workloads.Stochastify.std model w)
    (sqrt var)

let stochastify_dist_consistent () =
  let model = Workloads.Stochastify.make ~ul:1.1 () in
  let d = Workloads.Stochastify.dist model 20. in
  check_close ~eps:1e-3 "dist mean" (Workloads.Stochastify.mean model 20.)
    (Distribution.Dist.mean d);
  check_close ~eps:1e-2 "dist std" (Workloads.Stochastify.std model 20.)
    (Distribution.Dist.std d)

let stochastify_bounds =
  Tutil.qcheck ~count:100 "samples stay in [w, w·UL]"
    QCheck2.Gen.(pair (float_range 1. 100.) (float_range 1. 2.))
    (fun (w, ul) ->
      let model = Workloads.Stochastify.make ~ul () in
      let rng = Tutil.rng_of_seed (int_of_float (w *. 10.)) in
      List.for_all
        (fun _ ->
          let x = Workloads.Stochastify.sample model rng w in
          x >= w -. 1e-9 && x <= (w *. ul) +. 1e-9)
        (List.init 50 Fun.id))

let stochastify_deterministic_model () =
  let m = Workloads.Stochastify.deterministic in
  let rng = Tutil.rng_of_seed 1 in
  check_close "sample is w" 7. (Workloads.Stochastify.sample m rng 7.);
  check_close "mean is w" 7. (Workloads.Stochastify.mean m 7.);
  check_close "std is 0" 0. (Workloads.Stochastify.std m 7.);
  Alcotest.(check bool) "dist is const" true
    (Distribution.Dist.is_const (Workloads.Stochastify.dist m 7.))

let stochastify_task_comm_views () =
  let rng = Tutil.rng_of_seed 3 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:4 ~n_procs:2 () in
  let model = Workloads.Stochastify.make ~ul:1.1 () in
  let w = Platform.etc p ~task:1 ~proc:0 in
  check_close "task mean" (Workloads.Stochastify.mean model w)
    (Workloads.Stochastify.task_mean model p ~task:1 ~proc:0);
  (* same-processor communication is free and deterministic *)
  let d = Workloads.Stochastify.comm_dist model p ~volume:10. ~src:1 ~dst:1 in
  Alcotest.(check bool) "co-located comm const 0" true (Distribution.Dist.is_const d);
  check_close "comm mean zero" 0. (Workloads.Stochastify.comm_mean model p ~volume:10. ~src:0 ~dst:0)

let all_shapes =
  [ ("beta", Workloads.Stochastify.Beta { alpha = 2.; beta = 5. });
    ("uniform", Workloads.Stochastify.Uniform);
    ("triangular", Workloads.Stochastify.Triangular { mode = 0.3 });
    ("oscillating", Workloads.Stochastify.Oscillating) ]

let shape_moments_match_sampling () =
  List.iter
    (fun (name, shape) ->
      let rng = Tutil.rng_of_seed 55 in
      let n = 100000 in
      let acc = ref 0. and acc2 = ref 0. in
      let model = Workloads.Stochastify.make_shaped ~shape ~ul:2. () in
      for _ = 1 to n do
        let x = Workloads.Stochastify.sample model rng 1. -. 1. in
        acc := !acc +. x;
        acc2 := !acc2 +. (x *. x)
      done;
      let m = !acc /. float_of_int n in
      let v = (!acc2 /. float_of_int n) -. (m *. m) in
      Tutil.check_close ~eps:5e-3 (name ^ " mean") (Workloads.Stochastify.shape_mean shape) m;
      Tutil.check_close ~eps:2e-2 (name ^ " std") (Workloads.Stochastify.shape_std shape)
        (sqrt v))
    all_shapes

let shape_quantile_roundtrip =
  Tutil.qcheck ~count:50 "shape quantile inverts the CDF"
    QCheck2.Gen.(pair (int_range 0 3) (float_range 0.02 0.98))
    (fun (idx, u) ->
      let _, shape = List.nth all_shapes idx in
      let x = Workloads.Stochastify.shape_quantile shape u in
      (* numeric CDF at x via pdf integration *)
      let cdf =
        Numerics.Integrate.simpson ~f:(Workloads.Stochastify.shape_pdf shape) ~a:0. ~b:x
          ~n:2048
      in
      Float.abs (cdf -. u) < 5e-3)

let shape_pdf_has_unit_mass () =
  List.iter
    (fun (name, shape) ->
      Tutil.check_close ~eps:2e-3 (name ^ " mass") 1.
        (Numerics.Integrate.simpson ~f:(Workloads.Stochastify.shape_pdf shape) ~a:0. ~b:1.
           ~n:4096))
    all_shapes

let shape_dist_moments_agree () =
  List.iter
    (fun (name, shape) ->
      let model = Workloads.Stochastify.make_shaped ~shape ~ul:1.5 ~points:128 () in
      let d = Workloads.Stochastify.dist model 10. in
      Tutil.check_close ~eps:5e-3 (name ^ " dist mean") (Workloads.Stochastify.mean model 10.)
        (Distribution.Dist.mean d);
      Tutil.check_close ~eps:5e-2 (name ^ " dist std") (Workloads.Stochastify.std model 10.)
        (Distribution.Dist.std d))
    all_shapes

let oscillating_is_multimodal () =
  let pdf = Workloads.Stochastify.shape_pdf Workloads.Stochastify.Oscillating in
  (* dips between the three humps *)
  Alcotest.(check bool) "first dip" true (pdf 0.25 < pdf 0.06 && pdf 0.25 < pdf 0.55);
  Alcotest.(check bool) "second dip" true (pdf 0.70 < pdf 0.60 && pdf 0.70 < pdf 0.80)

let shape_validation () =
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect (fun () ->
      Workloads.Stochastify.make_shaped
        ~shape:(Workloads.Stochastify.Beta { alpha = 0.5; beta = 2. })
        ~ul:1.1 ());
  expect (fun () ->
      Workloads.Stochastify.make_shaped
        ~shape:(Workloads.Stochastify.Triangular { mode = 1.5 })
        ~ul:1.1 ())

let stochastify_rejects_bad_ul () =
  Alcotest.(check bool) "ul < 1 rejected" true
    (match Workloads.Stochastify.make ~ul:0.9 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workloads"
    [
      ( "random_dag",
        [
          random_dag_connected;
          random_dag_max_out_degree_respected;
          tc "ccr scaling" `Quick random_dag_ccr_scaling;
          tc "deterministic" `Quick random_dag_deterministic;
          tc "bad args" `Quick random_dag_rejects_bad_args;
        ] );
      ( "cholesky",
        [
          tc "task counts" `Quick cholesky_task_counts;
          cholesky_graph_matches_count;
          tc "b=3 structure" `Quick cholesky_structure_b3;
          tc "critical depth" `Quick cholesky_critical_path_depth;
          tc "kind roundtrip" `Quick cholesky_kind_roundtrip;
        ] );
      ( "gauss_elim",
        [
          tc "task counts" `Quick gauss_task_counts;
          gauss_graph_matches_count;
          tc "structure" `Quick gauss_structure;
        ] );
      ( "lu",
        [
          tc "task counts" `Quick lu_task_counts;
          lu_graph_matches_count;
          tc "structure" `Quick lu_structure;
        ] );
      ( "fft_graph",
        [
          tc "counts and shape" `Quick fft_counts_and_shape;
          tc "rejects non-pow2" `Quick fft_rejects_non_pow2;
        ] );
      ( "classic",
        [
          tc "chain" `Quick chain_shape;
          tc "join" `Quick join_shape;
          tc "fork-join" `Quick fork_join_shape;
          tc "trees" `Quick tree_shapes;
          tc "diamond" `Quick diamond_shape;
        ] );
      ( "stochastify",
        [
          tc "moments vs sampling" `Quick stochastify_moments_match_sampling;
          tc "dist consistent" `Quick stochastify_dist_consistent;
          stochastify_bounds;
          tc "deterministic model" `Quick stochastify_deterministic_model;
          tc "task/comm views" `Quick stochastify_task_comm_views;
          tc "bad ul" `Quick stochastify_rejects_bad_ul;
          tc "shape moments" `Quick shape_moments_match_sampling;
          shape_quantile_roundtrip;
          tc "shape pdf mass" `Quick shape_pdf_has_unit_mass;
          tc "shape dist moments" `Quick shape_dist_moments_agree;
          tc "oscillating multimodal" `Quick oscillating_is_multimodal;
          tc "shape validation" `Quick shape_validation;
        ] );
    ]
