test/test_integration.ml: Alcotest Array Core Dag Float List String Tutil
