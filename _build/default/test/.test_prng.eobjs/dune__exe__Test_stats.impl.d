test/test_stats.ml: Alcotest Array Distribution Float Numerics Prng QCheck2 Stats String Tutil
