test/test_makespan.ml: Alcotest Array Dag Distribution Float Fun List Makespan Numerics Platform QCheck2 Sched Stats Tutil Workloads
