test/test_makespan.mli:
