test/test_platform.ml: Alcotest Array Float Platform Tutil
