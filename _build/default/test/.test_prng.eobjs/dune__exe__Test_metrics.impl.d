test/test_metrics.ml: Alcotest Array Distribution Float List Makespan Metrics Platform Sched Stats Tutil Workloads
