test/test_experiments.ml: Alcotest Array Dag Experiments Filename Float Lazy List Printf String Sys Tutil Unix
