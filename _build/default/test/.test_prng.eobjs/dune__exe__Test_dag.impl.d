test/test_dag.ml: Alcotest Array Dag Float Fun Printf QCheck2 String Tutil Workloads
