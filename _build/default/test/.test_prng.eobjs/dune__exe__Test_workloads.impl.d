test/test_workloads.ml: Alcotest Array Dag Distribution Float Fun List Numerics Platform Printf QCheck2 Tutil Workloads
