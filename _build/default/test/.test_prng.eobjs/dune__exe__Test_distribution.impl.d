test/test_distribution.ml: Alcotest Array Dist Distribution Empirical Family Float List Normal_pair Printf Prng QCheck2 Tutil
