test/test_sched.ml: Alcotest Array Dag Float Fun List Platform Sched String Tutil Workloads
