test/test_numerics.ml: Alcotest Array Float Fun List Numerics Printf Prng QCheck2 Tutil
