test/test_parallel.ml: Alcotest Array Parallel Printf QCheck2 Tutil
