(* End-to-end integration: the full pipeline through the Core facade,
   cross-method agreement, and paper-shape assertions at small scale. *)

let check_close = Tutil.check_close

let pipeline_cholesky () =
  (* generate → schedule (4 heuristics + randoms) → analyze → validate *)
  let rng = Core.Rng.create 2027L in
  let graph = Core.Workload.cholesky ~tiles:3 () in
  let platform =
    Core.Platform.Gen.uniform_minval ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let model = Core.Uncertainty.make ~ul:1.1 () in
  let sched = Core.Heuristics.heft graph platform in
  let a = Core.analyze sched platform model in
  (* metrics coherent with the distribution *)
  check_close ~eps:1e-9 "metric mean = dist mean"
    (Core.Dist.mean a.Core.makespan_dist)
    a.Core.metrics.Core.Robustness.expected_makespan;
  check_close ~eps:1e-9 "metric slack = slack total" a.Core.slack.Core.Slack.total
    a.Core.metrics.Core.Robustness.avg_slack;
  (* expected makespan dominates the deterministic one *)
  let det = (Core.Simulator.deterministic sched platform).Core.Simulator.makespan in
  Alcotest.(check bool) "E(M) >= det" true
    (a.Core.metrics.Core.Robustness.expected_makespan >= det -. 1e-9);
  (* Monte-Carlo validation: KS should be small for a 10-task graph *)
  let ks, cm = Core.validate_against_montecarlo ~rng ~count:10000 a platform model in
  Alcotest.(check bool) "ks < 0.05" true (ks < 0.05);
  Alcotest.(check bool) "cm finite" true (Float.is_finite cm)

let three_methods_consistent () =
  let rng = Core.Rng.create 5L in
  let graph = Core.Workload.gauss_elim ~n:6 () in
  let platform =
    Core.Platform.Gen.uniform_minval ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs:4 ()
  in
  let model = Core.Uncertainty.make ~ul:1.1 () in
  let sched = Core.Heuristics.bmct graph platform in
  let means =
    List.map
      (fun m -> Core.Dist.mean (Core.Makespan_eval.distribution ~method_:m sched platform model))
      Core.Makespan_eval.all_methods
  in
  match means with
  | [ classical; dodin; spelde ] ->
    check_close ~eps:0.02 "dodin vs classical" classical dodin;
    check_close ~eps:0.02 "spelde vs classical" classical spelde
  | _ -> Alcotest.fail "expected three methods"

let random_schedules_dominated_by_heuristics () =
  (* paper shape: the heuristics obtain the best expected makespan *)
  let rng = Core.Rng.create 11L in
  let graph = Core.Workload.random_dag ~rng ~n:20 () in
  let platform =
    Core.Platform.Gen.cvb ~rng ~n_tasks:20 ~n_procs:4 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 ()
  in
  let model = Core.Uncertainty.make ~ul:1.1 () in
  let best_heuristic =
    List.fold_left
      (fun acc (_, h) ->
        let a = Core.analyze (h graph platform) platform model in
        Float.min acc a.Core.metrics.Core.Robustness.expected_makespan)
      infinity Core.Heuristics.all
  in
  let randoms = Core.Random_sched.generate_many ~rng ~graph ~n_procs:4 ~count:40 in
  List.iter
    (fun s ->
      let a = Core.analyze s platform model in
      Alcotest.(check bool) "heuristic at least as good" true
        (best_heuristic <= a.Core.metrics.Core.Robustness.expected_makespan +. 1e-6))
    randoms

let metric_cluster_on_random_case () =
  (* the σ/entropy/lateness/A cluster appears on a fresh random case run
     through the public API only *)
  let rng = Core.Rng.create 21L in
  let graph = Core.Workload.random_dag ~rng ~n:15 () in
  let platform =
    Core.Platform.Gen.cvb ~rng ~n_tasks:15 ~n_procs:3 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 ()
  in
  let model = Core.Uncertainty.make ~ul:1.1 () in
  let rows =
    Array.of_list
      (List.map
         (fun s ->
           Core.Robustness.to_array (Core.Robustness.of_schedule s platform model))
         (Core.Random_sched.generate_many ~rng ~graph ~n_procs:3 ~count:60))
  in
  let col j = Array.map (fun r -> r.(j)) rows in
  let r12 = Core.Correlation.pearson (col 1) (col 2) in
  let r15 = Core.Correlation.pearson (col 1) (col 5) in
  let r16 = Core.Correlation.pearson (col 1) (col 6) in
  Alcotest.(check bool) "std ~ entropy" true (r12 > 0.9);
  Alcotest.(check bool) "std ~ lateness" true (r15 > 0.9);
  Alcotest.(check bool) "std ~ abs-prob(inverted sign)" true (Float.abs r16 > 0.9)

let montecarlo_agreement_improves_with_ul () =
  (* smaller UL ⇒ narrower distributions ⇒ smaller CM area *)
  let rng = Core.Rng.create 31L in
  let graph = Core.Workload.cholesky ~tiles:3 () in
  let platform =
    Core.Platform.Gen.uniform_minval ~rng ~n_tasks:(Core.Graph.n_tasks graph) ~n_procs:3 ()
  in
  let sched = Core.Heuristics.heft graph platform in
  let cm_of ul =
    let model = Core.Uncertainty.make ~ul () in
    let a = Core.analyze sched platform model in
    let _, cm = Core.validate_against_montecarlo ~rng ~count:5000 a platform model in
    cm
  in
  Alcotest.(check bool) "cm(1.01) < cm(1.5)" true (cm_of 1.01 < cm_of 1.5)

let dot_export_through_core () =
  let g = Core.Workload.fork_join ~width:3 () in
  let dot = Dag.Dot.to_dot g in
  Alcotest.(check bool) "digraph" true (String.length dot > 20)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          tc "cholesky end-to-end" `Quick pipeline_cholesky;
          tc "methods consistent" `Quick three_methods_consistent;
          tc "heuristics dominate" `Quick random_schedules_dominated_by_heuristics;
          tc "metric cluster" `Quick metric_cluster_on_random_case;
          tc "ul sensitivity" `Quick montecarlo_agreement_improves_with_ul;
          tc "dot export" `Quick dot_export_through_core;
        ] );
    ]
