(* Metrics suites: the eight §IV robustness metrics, the plotting
   inversion, and bound calibration. *)

let check_close = Tutil.check_close
let check_close_abs = Tutil.check_close_abs

let dummy_slack total std =
  (* a hand-built slack summary (per-task values unused by compute) *)
  {
    Sched.Slack.per_task = [||];
    total;
    mean = total;
    std;
    makespan = 0.;
  }

let compute_on_normal () =
  (* makespan ~ N(100, 2): every metric has a closed form *)
  let d = Distribution.Family.normal ~mean:100. ~std:2. ~points:512 () in
  let m =
    Metrics.Robustness.compute ~delta:2. ~gamma:1.02 ~makespan_dist:d
      ~slack:(dummy_slack 7. 3.) ()
  in
  check_close ~eps:1e-4 "E(M)" 100. m.Metrics.Robustness.expected_makespan;
  check_close ~eps:1e-3 "sigma" 2. m.Metrics.Robustness.makespan_std;
  check_close ~eps:1e-3 "entropy" (0.5 *. log (2. *. Float.pi *. exp 1. *. 4.))
    m.Metrics.Robustness.makespan_entropy;
  check_close "slack copied" 7. m.Metrics.Robustness.avg_slack;
  check_close "slack std copied" 3. m.Metrics.Robustness.slack_std;
  (* lateness: E[M − μ | M > μ] = σ√(2/π) *)
  check_close ~eps:5e-3 "lateness" (2. *. sqrt (2. /. Float.pi))
    m.Metrics.Robustness.avg_lateness;
  (* A(δ) = 2Φ(δ/σ) − 1 with δ = σ → 2Φ(1) − 1 ≈ 0.6827 *)
  check_close ~eps:2e-3 "A" 0.6827 m.Metrics.Robustness.prob_absolute;
  (* R(γ): bounds at μ(γ−1)=2 above and ~1.96 below → ≈ Φ(1)−Φ(−0.98) *)
  Alcotest.(check bool) "R in (0,1)" true
    (m.Metrics.Robustness.prob_relative > 0.5 && m.Metrics.Robustness.prob_relative < 0.75)

let compute_rejects_bad_bounds () =
  let d = Distribution.Family.normal ~mean:1. ~std:1. () in
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect (fun () ->
      Metrics.Robustness.compute ~delta:(-1.) ~makespan_dist:d ~slack:(dummy_slack 0. 0.) ());
  expect (fun () ->
      Metrics.Robustness.compute ~gamma:0.5 ~makespan_dist:d ~slack:(dummy_slack 0. 0.) ())

let labels_and_to_array_align () =
  Alcotest.(check int) "8 metrics" 8 Metrics.Robustness.n_metrics;
  let d = Distribution.Family.normal ~mean:10. ~std:1. () in
  let m = Metrics.Robustness.compute ~makespan_dist:d ~slack:(dummy_slack 5. 2.) () in
  let a = Metrics.Robustness.to_array m in
  Alcotest.(check int) "array length" 8 (Array.length a);
  check_close "makespan first" m.Metrics.Robustness.expected_makespan a.(0);
  check_close "slack position" 5. a.(3);
  check_close "slack std position" 2. a.(4)

let of_schedule_methods_agree () =
  let g = Workloads.Cholesky.generate ~tiles:3 () in
  let rng = Tutil.rng_of_seed 1 in
  let p = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:2 () in
  let model = Workloads.Stochastify.make ~ul:1.1 () in
  let s = Sched.Heft.schedule g p in
  let a = Metrics.Robustness.of_schedule ~method_:`Classical s p model in
  let b = Metrics.Robustness.of_schedule ~method_:`Spelde s p model in
  check_close ~eps:5e-3 "means agree" a.Metrics.Robustness.expected_makespan
    b.Metrics.Robustness.expected_makespan;
  (* slack identical regardless of distribution method *)
  check_close "slack same" a.Metrics.Robustness.avg_slack b.Metrics.Robustness.avg_slack

let inversion_flips_the_right_metrics () =
  Alcotest.(check (array bool)) "mask"
    [| false; false; false; true; false; false; true; true |]
    Metrics.Inversion.inverted

let inversion_apply_values () =
  let row = [| 100.; 2.; 1.5; 30.; 4.; 1.; 0.7; 0.9 |] in
  let out = Metrics.Inversion.apply ~max_slack:50. row in
  check_close "makespan kept" 100. out.(0);
  check_close "slack flipped" 20. out.(3);
  check_close "A flipped" 0.3 out.(6);
  check_close ~eps:1e-9 "R flipped" 0.1 out.(7);
  check_close "slack std kept" 4. out.(4)

let inversion_apply_all_uses_max () =
  let rows = [| [| 1.; 1.; 1.; 10.; 1.; 1.; 0.5; 0.5 |];
                [| 1.; 1.; 1.; 25.; 1.; 1.; 0.5; 0.5 |] |] in
  let out = Metrics.Inversion.apply_all rows in
  check_close "row 0 slack" 15. out.(0).(3);
  check_close "row 1 slack (max)" 0. out.(1).(3)

let inversion_rejects_wrong_length () =
  Alcotest.check_raises "length" (Invalid_argument "Inversion.apply: wrong metric vector length")
    (fun () -> ignore (Metrics.Inversion.apply ~max_slack:1. [| 1.; 2. |]))

let calibration_centers_A_and_R () =
  (* normal makespans: with calibrated δ/γ the median schedule's A and R
     should land near 1/2 *)
  let pilot = [ (100., 2.); (110., 2.5); (105., 1.8) ] in
  let delta, gamma = Metrics.Robustness.calibrate_bounds pilot in
  let d = Distribution.Family.normal ~mean:105. ~std:2. ~points:512 () in
  let m =
    Metrics.Robustness.compute ~delta ~gamma ~makespan_dist:d ~slack:(dummy_slack 0. 0.) ()
  in
  check_close_abs ~eps:0.1 "A near half" 0.5 m.Metrics.Robustness.prob_absolute;
  check_close_abs ~eps:0.1 "R near half" 0.5 m.Metrics.Robustness.prob_relative

let calibration_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Robustness.calibrate_bounds: empty pilot")
    (fun () -> ignore (Metrics.Robustness.calibrate_bounds []))

let narrower_distribution_is_more_robust () =
  (* all dispersion metrics must order a tight distribution above a loose
     one: smaller σ/entropy/lateness, larger A and R *)
  let slack = dummy_slack 0. 0. in
  let tight = Distribution.Family.normal ~mean:100. ~std:1. ~points:512 () in
  let loose = Distribution.Family.normal ~mean:100. ~std:5. ~points:512 () in
  let mt = Metrics.Robustness.compute ~delta:2. ~gamma:1.03 ~makespan_dist:tight ~slack () in
  let ml = Metrics.Robustness.compute ~delta:2. ~gamma:1.03 ~makespan_dist:loose ~slack () in
  Alcotest.(check bool) "std" true
    (mt.Metrics.Robustness.makespan_std < ml.Metrics.Robustness.makespan_std);
  Alcotest.(check bool) "entropy" true
    (mt.Metrics.Robustness.makespan_entropy < ml.Metrics.Robustness.makespan_entropy);
  Alcotest.(check bool) "lateness" true
    (mt.Metrics.Robustness.avg_lateness < ml.Metrics.Robustness.avg_lateness);
  Alcotest.(check bool) "abs prob" true
    (mt.Metrics.Robustness.prob_absolute > ml.Metrics.Robustness.prob_absolute);
  Alcotest.(check bool) "rel prob" true
    (mt.Metrics.Robustness.prob_relative > ml.Metrics.Robustness.prob_relative)

let lateness_nonnegative =
  Tutil.qcheck ~count:30 "lateness >= 0 for any schedule" Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let model = Workloads.Stochastify.make ~ul:1.2 () in
      let m = Metrics.Robustness.of_schedule sched platform model in
      m.Metrics.Robustness.avg_lateness >= -1e-9)

let probabilistic_metrics_in_unit_interval =
  Tutil.qcheck ~count:30 "A and R lie in [0,1]" Tutil.random_scheduled_gen
    (fun (_, platform, sched) ->
      let model = Workloads.Stochastify.make ~ul:1.2 () in
      let m = Metrics.Robustness.of_schedule sched platform model in
      let in01 x = x >= 0. && x <= 1. in
      in01 m.Metrics.Robustness.prob_absolute && in01 m.Metrics.Robustness.prob_relative)

(* --- Extended (tail-risk) metrics --- *)

let extended_on_normal () =
  let d = Distribution.Family.normal ~mean:100. ~std:2. ~points:512 () in
  let m = Metrics.Extended.compute d in
  (* q95 = μ + 1.645σ, q99 = μ + 2.326σ, IQR = 1.349σ *)
  check_close ~eps:3e-3 "var95" (100. +. (1.645 *. 2.)) m.Metrics.Extended.var_95;
  check_close ~eps:5e-3 "var99" (100. +. (2.326 *. 2.)) m.Metrics.Extended.var_99;
  check_close ~eps:5e-3 "iqr" (1.349 *. 2.) m.Metrics.Extended.iqr;
  (* CVaR95 of a normal: μ + σ·φ(1.645)/0.05 ≈ μ + 2.063σ *)
  check_close ~eps:2e-2 "cvar95" (100. +. (2.063 *. 2.)) m.Metrics.Extended.cvar_95;
  Alcotest.(check bool) "cvar >= var" true
    (m.Metrics.Extended.cvar_95 >= m.Metrics.Extended.var_95);
  check_close ~eps:3e-3 "excess95" (1.645 *. 2.) m.Metrics.Extended.excess_95

let extended_on_const () =
  let m = Metrics.Extended.compute (Distribution.Dist.const 7.) in
  check_close "var95" 7. m.Metrics.Extended.var_95;
  check_close "iqr" 0. m.Metrics.Extended.iqr;
  check_close "excess" 0. m.Metrics.Extended.excess_95

let extended_join_the_cluster () =
  (* the tail metrics correlate with σ_M over random schedules, like the
     paper's dispersion cluster *)
  let rng = Tutil.rng_of_seed 91 in
  let graph = Workloads.Cholesky.generate ~tiles:3 () in
  let platform = Platform.Gen.uniform_minval ~rng ~n_tasks:10 ~n_procs:3 () in
  let model = Workloads.Stochastify.make ~ul:1.1 () in
  let scheds = Sched.Random_sched.generate_many ~rng ~graph ~n_procs:3 ~count:60 in
  let rows =
    List.map
      (fun s ->
        let d = Makespan.Classic.run s platform model in
        (Distribution.Dist.std d, Metrics.Extended.compute d))
      scheds
  in
  let sigma = Array.of_list (List.map fst rows) in
  let excess =
    Array.of_list (List.map (fun (_, m) -> m.Metrics.Extended.excess_95) rows)
  in
  let iqr = Array.of_list (List.map (fun (_, m) -> m.Metrics.Extended.iqr) rows) in
  Alcotest.(check bool) "excess95 ~ sigma" true
    (Stats.Correlation.pearson sigma excess > 0.9);
  Alcotest.(check bool) "iqr ~ sigma" true (Stats.Correlation.pearson sigma iqr > 0.9)

let extended_labels_align () =
  Alcotest.(check int) "labels" (Array.length Metrics.Extended.labels)
    (Array.length (Metrics.Extended.to_array (Metrics.Extended.compute (Distribution.Dist.const 1.))))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "metrics"
    [
      ( "robustness",
        [
          tc "closed forms on normal" `Quick compute_on_normal;
          tc "bad bounds" `Quick compute_rejects_bad_bounds;
          tc "labels/to_array" `Quick labels_and_to_array_align;
          tc "of_schedule methods" `Quick of_schedule_methods_agree;
          tc "tight beats loose" `Quick narrower_distribution_is_more_robust;
          lateness_nonnegative;
          probabilistic_metrics_in_unit_interval;
        ] );
      ( "inversion",
        [
          tc "mask" `Quick inversion_flips_the_right_metrics;
          tc "apply" `Quick inversion_apply_values;
          tc "apply_all" `Quick inversion_apply_all_uses_max;
          tc "wrong length" `Quick inversion_rejects_wrong_length;
        ] );
      ( "calibration",
        [
          tc "centers A and R" `Quick calibration_centers_A_and_R;
          tc "rejects empty" `Quick calibration_rejects_empty;
        ] );
      ( "extended",
        [
          tc "normal closed forms" `Quick extended_on_normal;
          tc "const" `Quick extended_on_const;
          tc "joins the cluster" `Quick extended_join_the_cluster;
          tc "labels" `Quick extended_labels_align;
        ] );
    ]
