(* Parallel fan-out suites: chunk coverage, exception propagation,
   determinism with respect to domain count. *)

let pool_covers_all_chunks () =
  let n = 100 in
  let hit = Array.make n 0 in
  Parallel.Pool.run ~domains:3 ~chunks:n (fun c -> hit.(c) <- hit.(c) + 1);
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "chunk %d once" i) 1 c)
    hit

let pool_zero_chunks () = Parallel.Pool.run ~domains:2 ~chunks:0 (fun _ -> assert false)

let pool_single_domain () =
  let acc = ref 0 in
  Parallel.Pool.run ~domains:1 ~chunks:10 (fun c -> acc := !acc + c);
  Alcotest.(check int) "sum" 45 !acc

let pool_propagates_exception () =
  Alcotest.check_raises "failure" (Failure "boom") (fun () ->
      Parallel.Pool.run ~domains:2 ~chunks:8 (fun c -> if c = 3 then failwith "boom"))

let pool_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Pool.run: negative chunk count")
    (fun () -> Parallel.Pool.run ~chunks:(-1) (fun _ -> ()))

let par_array_matches_sequential =
  Tutil.qcheck ~count:50 "Par_array.init = Array.init"
    QCheck2.Gen.(pair (int_range 0 500) (int_range 1 4))
    (fun (n, domains) ->
      let f i = (i * 37) mod 101 in
      Parallel.Par_array.init ~domains ~chunk_size:13 n f = Array.init n f)

let par_array_map () =
  let a = Array.init 257 float_of_int in
  let got = Parallel.Par_array.map ~domains:2 (fun x -> x *. 2.) a in
  Alcotest.(check bool) "doubles" true (got = Array.map (fun x -> x *. 2.) a)

let par_array_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (Parallel.Par_array.init 0 (fun _ -> 0)))

let par_array_domain_count_irrelevant () =
  let f i = float_of_int (i * i) /. 7. in
  let one = Parallel.Par_array.init ~domains:1 1000 f in
  let four = Parallel.Par_array.init ~domains:4 1000 f in
  Alcotest.(check bool) "identical" true (one = four)

let default_domains_positive () =
  Alcotest.(check bool) "at least 1" true (Parallel.Pool.default_domains () >= 1)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          tc "covers all chunks" `Quick pool_covers_all_chunks;
          tc "zero chunks" `Quick pool_zero_chunks;
          tc "single domain" `Quick pool_single_domain;
          tc "exception" `Quick pool_propagates_exception;
          tc "negative" `Quick pool_rejects_negative;
          tc "default domains" `Quick default_domains_positive;
        ] );
      ( "par_array",
        [
          par_array_matches_sequential;
          tc "map" `Quick par_array_map;
          tc "empty" `Quick par_array_empty;
          tc "domain independence" `Quick par_array_domain_count_irrelevant;
        ] );
    ]
