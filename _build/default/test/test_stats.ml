(* Stats suites: descriptive statistics, correlations, regression,
   CDF distances, matrix rendering. *)

let check_close = Tutil.check_close
let check_close_abs = Tutil.check_close_abs

(* --- Descriptive --- *)

let descriptive_known () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (Stats.Descriptive.mean a);
  check_close "population var" 4. (Stats.Descriptive.population_variance a);
  check_close "sample var" (32. /. 7.) (Stats.Descriptive.variance a);
  check_close "median" 4.5 (Stats.Descriptive.median a);
  let lo, hi = Stats.Descriptive.min_max a in
  check_close "min" 2. lo;
  check_close "max" 9. hi

let descriptive_single () =
  check_close "variance of singleton" 0. (Stats.Descriptive.variance [| 3. |]);
  check_close "median of singleton" 3. (Stats.Descriptive.median [| 3. |])

let descriptive_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (Stats.Descriptive.mean [||]))

let quantile_interpolation () =
  let a = [| 0.; 10. |] in
  check_close "q0.25" 2.5 (Stats.Descriptive.quantile a 0.25);
  check_close "q0.5" 5. (Stats.Descriptive.quantile a 0.5)

let standardize_properties =
  Tutil.qcheck ~count:50 "standardized sample has mean 0, std 1"
    QCheck2.Gen.(pair (int_range 3 100) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let a = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:(-10.) ~hi:50.) in
      let z = Stats.Descriptive.standardize a in
      let m = Stats.Descriptive.mean z in
      let v = Stats.Descriptive.population_variance z in
      Float.abs m < 1e-9 && (v = 0. || Float.abs (v -. 1.) < 1e-9))

let standardize_constant () =
  let z = Stats.Descriptive.standardize [| 5.; 5.; 5. |] in
  Array.iter (fun v -> check_close "zero" 0. v) z

(* --- Correlation --- *)

let pearson_perfect_line =
  Tutil.qcheck ~count:50 "pearson = ±1 on exact lines"
    QCheck2.Gen.(triple (float_range 0.1 5.) bool (int_range 0 10000))
    (fun (slope, negate, seed) ->
      let slope = if negate then -.slope else slope in
      let rng = Tutil.rng_of_seed seed in
      let xs = Array.init 20 (fun _ -> Prng.Sampler.uniform rng ~lo:(-5.) ~hi:5.) in
      (* degenerate sample: all xs equal → skip *)
      let distinct = Array.exists (fun x -> x <> xs.(0)) xs in
      if not distinct then true
      else begin
        let ys = Array.map (fun x -> (slope *. x) +. 2.) xs in
        let r = Stats.Correlation.pearson xs ys in
        Float.abs (r -. Float.of_int (compare slope 0.)) < 1e-9
      end)

let pearson_affine_invariant () =
  let xs = [| 1.; 2.; 3.; 5.; 8. |] and ys = [| 2.; 1.; 4.; 3.; 7. |] in
  let r0 = Stats.Correlation.pearson xs ys in
  let xs' = Array.map (fun x -> (3. *. x) +. 7.) xs in
  let ys' = Array.map (fun y -> (0.5 *. y) -. 2.) ys in
  check_close ~eps:1e-12 "invariant" r0 (Stats.Correlation.pearson xs' ys')

let pearson_sign_flip () =
  let xs = [| 1.; 2.; 3.; 5.; 8. |] and ys = [| 2.; 1.; 4.; 3.; 7. |] in
  let r0 = Stats.Correlation.pearson xs ys in
  let ys' = Array.map (fun y -> -.y) ys in
  check_close ~eps:1e-12 "negated" (-.r0) (Stats.Correlation.pearson xs ys')

let pearson_zero_variance_nan () =
  Alcotest.(check bool) "nan" true
    (Float.is_nan (Stats.Correlation.pearson [| 1.; 1.; 1. |] [| 1.; 2.; 3. |]))

let pearson_bounded =
  Tutil.qcheck ~count:100 "|pearson| <= 1"
    QCheck2.Gen.(pair (int_range 2 50) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let xs = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:0. ~hi:1.) in
      let ys = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:0. ~hi:1.) in
      let r = Stats.Correlation.pearson xs ys in
      Float.is_nan r || Float.abs r <= 1. +. 1e-12)

let spearman_monotone_is_one () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = Array.map (fun x -> exp x) xs in
  check_close "monotone" 1. (Stats.Correlation.spearman xs ys)

let spearman_handles_ties () =
  let xs = [| 1.; 1.; 2.; 3. |] and ys = [| 1.; 1.; 2.; 3. |] in
  check_close ~eps:1e-9 "ties" 1. (Stats.Correlation.spearman xs ys)

let pearson_matrix_properties () =
  let rng = Tutil.rng_of_seed 5 in
  let cols =
    Array.init 4 (fun _ -> Array.init 30 (fun _ -> Prng.Sampler.uniform rng ~lo:0. ~hi:1.))
  in
  let m = Stats.Correlation.pearson_matrix cols in
  for i = 0 to 3 do
    check_close "diag" 1. m.(i).(i);
    for j = 0 to 3 do
      check_close ~eps:1e-12 "symmetric" m.(i).(j) m.(j).(i)
    done
  done

(* --- Regression --- *)

let regression_exact_line () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1.) xs in
  let f = Stats.Regression.fit xs ys in
  check_close "slope" 2.5 f.Stats.Regression.slope;
  check_close "intercept" (-1.) f.Stats.Regression.intercept;
  check_close "r2" 1. f.Stats.Regression.r2;
  check_close_abs ~eps:1e-9 "residual" 0. f.Stats.Regression.residual_std;
  check_close "predict" 4. (Stats.Regression.predict f 2.)

let regression_flat_x () =
  let f = Stats.Regression.fit [| 2.; 2.; 2. |] [| 1.; 5.; 9. |] in
  check_close "slope" 0. f.Stats.Regression.slope;
  check_close "intercept" 5. f.Stats.Regression.intercept

let regression_r_matches_pearson =
  Tutil.qcheck ~count:50 "fit.r = pearson"
    QCheck2.Gen.(pair (int_range 3 50) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let xs = Array.init n (fun i -> float_of_int i +. Prng.Sampler.uniform rng ~lo:0. ~hi:0.1) in
      let ys = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:0. ~hi:1.) in
      let f = Stats.Regression.fit xs ys in
      let r = Stats.Correlation.pearson xs ys in
      Float.abs (f.Stats.Regression.r -. r) < 1e-12)

(* --- Distance --- *)

let ks_identical_zero () =
  let d = Distribution.Family.normal ~mean:0. ~std:1. () in
  check_close_abs ~eps:1e-9 "ks self" 0. (Stats.Distance.ks (Analytic d) (Analytic d))

let ks_disjoint_one () =
  let a = Distribution.Family.uniform ~lo:0. ~hi:1. () in
  let b = Distribution.Family.uniform ~lo:10. ~hi:11. () in
  check_close ~eps:1e-6 "disjoint" 1. (Stats.Distance.ks (Analytic a) (Analytic b))

let ks_known_shift () =
  (* U(0,1) vs U(0.5,1.5): |F1 − F2| peaks at 0.5 *)
  let a = Distribution.Family.uniform ~lo:0. ~hi:1. ~points:512 () in
  let b = Distribution.Family.uniform ~lo:0.5 ~hi:1.5 ~points:512 () in
  check_close ~eps:1e-2 "shifted uniforms" 0.5 (Stats.Distance.ks (Analytic a) (Analytic b))

let ks_empirical_converges () =
  let d = Distribution.Family.normal ~mean:0. ~std:1. ~points:512 () in
  let rng = Tutil.rng_of_seed 9 in
  let small =
    Distribution.Empirical.of_samples
      (Array.init 100 (fun _ -> Prng.Sampler.normal rng ~mean:0. ~std:1.))
  in
  let large =
    Distribution.Empirical.of_samples
      (Array.init 20000 (fun _ -> Prng.Sampler.normal rng ~mean:0. ~std:1.))
  in
  let ks_small = Stats.Distance.ks (Analytic d) (Sampled small) in
  let ks_large = Stats.Distance.ks (Analytic d) (Sampled large) in
  Alcotest.(check bool) "more samples, smaller KS" true (ks_large < ks_small)

let ks_normal_location_shift () =
  (* KS(N(0,1), N(δ,1)) = 2Φ(δ/2) − 1, attained midway *)
  let a = Distribution.Family.normal ~mean:0. ~std:1. ~points:512 () in
  let b = Distribution.Family.normal ~mean:0.5 ~std:1. ~points:512 () in
  check_close_abs ~eps:3e-3 "known value"
    ((2. *. Numerics.Special.normal_cdf 0.25) -. 1.)
    (Stats.Distance.ks (Analytic a) (Analytic b))

let cm_identical_zero () =
  let d = Distribution.Family.normal ~mean:0. ~std:1. () in
  check_close_abs ~eps:1e-9 "cm self" 0. (Stats.Distance.cm_area (Analytic d) (Analytic d))

let cm_shift_equals_offset () =
  (* for a pure location shift, ∫|F1−F2| = the shift *)
  let a = Distribution.Family.uniform ~lo:0. ~hi:1. ~points:512 () in
  let b = Distribution.Family.uniform ~lo:2. ~hi:3. ~points:512 () in
  check_close ~eps:5e-3 "area = shift" 2. (Stats.Distance.cm_area (Analytic a) (Analytic b))

let ks_symmetric =
  Tutil.qcheck ~count:20 "ks symmetric"
    QCheck2.Gen.(pair (float_range (-2.) 2.) (float_range 0.5 3.))
    (fun (mu, sigma) ->
      let a = Distribution.Family.normal ~mean:0. ~std:1. () in
      let b = Distribution.Family.normal ~mean:mu ~std:sigma () in
      Float.abs
        (Stats.Distance.ks (Analytic a) (Analytic b)
        -. Stats.Distance.ks (Analytic b) (Analytic a))
      < 1e-12)

(* --- Bootstrap --- *)

let bootstrap_mean_interval () =
  let rng = Tutil.rng_of_seed 33 in
  let xs = Array.init 400 (fun _ -> Prng.Sampler.normal rng ~mean:10. ~std:2.) in
  let iv =
    Stats.Bootstrap.ci ~rng ~replicates:500 ~stat:Stats.Descriptive.mean xs
  in
  Alcotest.(check bool) "estimate near 10" true (Float.abs (iv.Stats.Bootstrap.estimate -. 10.) < 0.4);
  Alcotest.(check bool) "interval brackets estimate" true
    (iv.Stats.Bootstrap.lo <= iv.Stats.Bootstrap.estimate
    && iv.Stats.Bootstrap.estimate <= iv.Stats.Bootstrap.hi);
  (* ±2σ/√n ≈ 0.2: the interval should be about that wide *)
  Alcotest.(check bool) "interval width sane" true
    (iv.Stats.Bootstrap.hi -. iv.Stats.Bootstrap.lo < 1.)

let bootstrap_ci_narrows_with_n =
  Tutil.qcheck ~count:5 "more data, narrower interval" QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Tutil.rng_of_seed seed in
      let draw n = Array.init n (fun _ -> Prng.Sampler.uniform rng ~lo:0. ~hi:1.) in
      let width n =
        let iv =
          Stats.Bootstrap.ci ~rng ~replicates:300 ~stat:Stats.Descriptive.mean (draw n)
        in
        iv.Stats.Bootstrap.hi -. iv.Stats.Bootstrap.lo
      in
      width 1000 < width 30)

let bootstrap_pearson_interval () =
  let rng = Tutil.rng_of_seed 34 in
  (* strongly correlated pair: interval should sit near 1 and exclude 0 *)
  let xs = Array.init 200 (fun _ -> Prng.Sampler.uniform rng ~lo:0. ~hi:1.) in
  let ys = Array.map (fun x -> (2. *. x) +. 0.05 *. Prng.Sampler.normal rng ~mean:0. ~std:1.) xs in
  let iv = Stats.Bootstrap.pearson_ci ~rng ~replicates:500 xs ys in
  Alcotest.(check bool) "high estimate" true (iv.Stats.Bootstrap.estimate > 0.95);
  Alcotest.(check bool) "excludes zero" true (iv.Stats.Bootstrap.lo > 0.5)

let bootstrap_deterministic () =
  let xs = Array.init 50 float_of_int in
  let run seed =
    Stats.Bootstrap.ci ~rng:(Tutil.rng_of_seed seed) ~replicates:200
      ~stat:Stats.Descriptive.median xs
  in
  Alcotest.(check bool) "same seed same interval" true (run 7 = run 7)

let bootstrap_rejects_bad_params () =
  let rng = Tutil.rng_of_seed 1 in
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect (fun () ->
      Stats.Bootstrap.ci ~rng ~replicates:5 ~stat:Stats.Descriptive.mean [| 1. |]);
  expect (fun () ->
      Stats.Bootstrap.ci ~rng ~confidence:1.5 ~stat:Stats.Descriptive.mean [| 1. |]);
  expect (fun () -> Stats.Bootstrap.ci ~rng ~stat:Stats.Descriptive.mean [||])

(* --- Matrix_render --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0


let render_contains_labels () =
  let labels = [| "alpha"; "beta" |] in
  let m = [| [| 1.; 0.5 |]; [| 0.5; 1. |] |] in
  let s = Stats.Matrix_render.render ~labels m in
  Alcotest.(check bool) "has alpha" true (contains ~needle:"alpha" s)

let render_mean_std_triangles () =
  let labels = [| "a"; "b" |] in
  let mean = [| [| 1.; 0.9 |]; [| 0.9; 1. |] |] in
  let std = [| [| 0.; 0.1 |]; [| 0.1; 0. |] |] in
  let s = Stats.Matrix_render.render_mean_std ~labels mean std in
  Alcotest.(check bool) "mentions both" true
    (String.length s > 10)

let csv_roundtrip_values () =
  let labels = [| "x"; "y" |] in
  let m = [| [| 1.; -0.25 |]; [| -0.25; 1. |] |] in
  let s = Stats.Matrix_render.to_csv ~labels m in
  Alcotest.(check bool) "csv has value" true (contains ~needle:"-0.250000" s)

let render_rejects_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix_render: ragged matrix")
    (fun () ->
      ignore (Stats.Matrix_render.render ~labels:[| "a"; "b" |] [| [| 1. |]; [| 1.; 2. |] |]))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          tc "known values" `Quick descriptive_known;
          tc "singleton" `Quick descriptive_single;
          tc "rejects empty" `Quick descriptive_rejects_empty;
          tc "quantile interp" `Quick quantile_interpolation;
          standardize_properties;
          tc "standardize const" `Quick standardize_constant;
        ] );
      ( "correlation",
        [
          pearson_perfect_line;
          tc "affine invariant" `Quick pearson_affine_invariant;
          tc "sign flip" `Quick pearson_sign_flip;
          tc "zero variance" `Quick pearson_zero_variance_nan;
          pearson_bounded;
          tc "spearman monotone" `Quick spearman_monotone_is_one;
          tc "spearman ties" `Quick spearman_handles_ties;
          tc "matrix" `Quick pearson_matrix_properties;
        ] );
      ( "regression",
        [
          tc "exact line" `Quick regression_exact_line;
          tc "flat x" `Quick regression_flat_x;
          regression_r_matches_pearson;
        ] );
      ( "distance",
        [
          tc "ks self" `Quick ks_identical_zero;
          tc "ks disjoint" `Quick ks_disjoint_one;
          tc "ks shift" `Quick ks_known_shift;
          tc "ks empirical" `Quick ks_empirical_converges;
          tc "ks normal shift" `Quick ks_normal_location_shift;
          tc "cm self" `Quick cm_identical_zero;
          tc "cm shift" `Quick cm_shift_equals_offset;
          ks_symmetric;
        ] );
      ( "bootstrap",
        [
          tc "mean interval" `Quick bootstrap_mean_interval;
          bootstrap_ci_narrows_with_n;
          tc "pearson interval" `Quick bootstrap_pearson_interval;
          tc "deterministic" `Quick bootstrap_deterministic;
          tc "bad params" `Quick bootstrap_rejects_bad_params;
        ] );
      ( "render",
        [
          tc "labels" `Quick render_contains_labels;
          tc "mean/std" `Quick render_mean_std_triangles;
          tc "csv" `Quick csv_roundtrip_values;
          tc "ragged" `Quick render_rejects_ragged;
        ] );
    ]
