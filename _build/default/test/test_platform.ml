(* Platform suites: validation, communication model, generators. *)

let check_close = Tutil.check_close

let simple_platform () =
  Platform.make
    ~etc:[| [| 10.; 20. |]; [| 30.; 15. |] |]
    ~tau:[| [| 0.; 2. |]; [| 3.; 0. |] |]
    ~latency:[| [| 0.; 1. |]; [| 1.; 0. |] |]

let accessors () =
  let p = simple_platform () in
  Alcotest.(check int) "procs" 2 (Platform.n_procs p);
  Alcotest.(check int) "tasks" 2 (Platform.n_tasks p);
  check_close "etc" 20. (Platform.etc p ~task:0 ~proc:1);
  check_close "tau" 3. (Platform.tau p ~src:1 ~dst:0);
  check_close "latency" 1. (Platform.latency p ~src:0 ~dst:1)

let comm_time_model () =
  let p = simple_platform () in
  (* latency + volume·τ *)
  check_close "cross" (1. +. (5. *. 2.)) (Platform.comm_time p ~src:0 ~dst:1 ~volume:5.);
  check_close "same proc free" 0. (Platform.comm_time p ~src:1 ~dst:1 ~volume:100.)

let mean_etc_and_best_proc () =
  let p = simple_platform () in
  check_close "mean row 0" 15. (Platform.mean_etc p ~task:0);
  check_close "mean row 1" 22.5 (Platform.mean_etc p ~task:1);
  Alcotest.(check int) "best for task 0" 0 (Platform.best_proc p ~task:0);
  Alcotest.(check int) "best for task 1" 1 (Platform.best_proc p ~task:1)

let mean_network () =
  let p = simple_platform () in
  check_close "mean tau" 2.5 (Platform.mean_tau p);
  check_close "mean latency" 1. (Platform.mean_latency p)

let single_proc_network_means () =
  let p =
    Platform.make ~etc:[| [| 5. |] |] ~tau:[| [| 0. |] |] ~latency:[| [| 0. |] |]
  in
  check_close "mean tau" 0. (Platform.mean_tau p);
  check_close "mean latency" 0. (Platform.mean_latency p)

let validation () =
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let tau = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  (* non-zero diagonal *)
  expect (fun () ->
      Platform.make ~etc:[| [| 1.; 1. |] |] ~tau:[| [| 1.; 1. |]; [| 1.; 0. |] |]
        ~latency:tau);
  (* non-positive computation time *)
  expect (fun () -> Platform.make ~etc:[| [| 0.; 1. |] |] ~tau ~latency:tau);
  (* ragged ETC *)
  expect (fun () -> Platform.make ~etc:[| [| 1.; 1. |]; [| 1. |] |] ~tau ~latency:tau);
  (* negative tau *)
  expect (fun () ->
      Platform.make ~etc:[| [| 1.; 1. |] |] ~tau:[| [| 0.; -1. |]; [| 1.; 0. |] |]
        ~latency:tau);
  (* empty *)
  expect (fun () -> Platform.make ~etc:[||] ~tau ~latency:tau)

(* --- generators --- *)

let cvb_shape_and_positivity () =
  let rng = Tutil.rng_of_seed 1 in
  let p =
    Platform.Gen.cvb ~rng ~n_tasks:50 ~n_procs:8 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 ()
  in
  Alcotest.(check int) "tasks" 50 (Platform.n_tasks p);
  Alcotest.(check int) "procs" 8 (Platform.n_procs p);
  for t = 0 to 49 do
    for q = 0 to 7 do
      Alcotest.(check bool) "positive etc" true (Platform.etc p ~task:t ~proc:q > 0.)
    done
  done

let cvb_mean_scale () =
  (* grand mean of the ETC matrix should be near μ_task *)
  let rng = Tutil.rng_of_seed 2 in
  let p =
    Platform.Gen.cvb ~rng ~n_tasks:400 ~n_procs:8 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 ()
  in
  let acc = ref 0. in
  for t = 0 to 399 do
    acc := !acc +. Platform.mean_etc p ~task:t
  done;
  check_close ~eps:0.1 "grand mean" 20. (!acc /. 400.)

let cvb_zero_cv_is_constant () =
  let rng = Tutil.rng_of_seed 3 in
  let p =
    Platform.Gen.cvb ~rng ~n_tasks:5 ~n_procs:3 ~mu_task:20. ~v_task:0. ~v_mach:0. ()
  in
  for t = 0 to 4 do
    for q = 0 to 2 do
      check_close "constant" 20. (Platform.etc p ~task:t ~proc:q)
    done
  done

let uniform_minval_range () =
  let rng = Tutil.rng_of_seed 4 in
  let p =
    Platform.Gen.uniform_minval ~rng ~n_tasks:100 ~n_procs:4 ~minval_lo:10. ~minval_hi:30.
      ()
  in
  for t = 0 to 99 do
    (* each row lies within [minVal, 2·minVal] ⊆ [10, 60] *)
    let row = Array.init 4 (fun q -> Platform.etc p ~task:t ~proc:q) in
    let lo = Array.fold_left Float.min row.(0) row in
    let hi = Array.fold_left Float.max row.(0) row in
    Alcotest.(check bool) "row bounds" true (lo >= 10. && hi <= 60.);
    Alcotest.(check bool) "within factor 2" true (hi <= 2. *. lo +. 1e-9)
  done

let generators_deterministic () =
  let p1 =
    Platform.Gen.uniform_minval ~rng:(Tutil.rng_of_seed 7) ~n_tasks:10 ~n_procs:3 ()
  in
  let p2 =
    Platform.Gen.uniform_minval ~rng:(Tutil.rng_of_seed 7) ~n_tasks:10 ~n_procs:3 ()
  in
  for t = 0 to 9 do
    for q = 0 to 2 do
      check_close "same seed same platform" (Platform.etc p1 ~task:t ~proc:q)
        (Platform.etc p2 ~task:t ~proc:q)
    done
  done

let heterogeneous_network_bounds () =
  let rng = Tutil.rng_of_seed 8 in
  let p = Platform.Gen.cvb ~rng ~n_tasks:5 ~n_procs:4 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 () in
  let p' = Platform.Gen.heterogeneous_network ~rng ~tau_lo:1. ~tau_hi:3. p in
  for i = 0 to 3 do
    check_close "diag zero" 0. (Platform.tau p' ~src:i ~dst:i);
    for j = 0 to 3 do
      if i <> j then begin
        let t = Platform.tau p' ~src:i ~dst:j in
        Alcotest.(check bool) "tau in range" true (t >= 1. && t <= 3.)
      end
    done
  done;
  (* ETC preserved *)
  check_close "etc kept" (Platform.etc p ~task:0 ~proc:0) (Platform.etc p' ~task:0 ~proc:0)

let default_comm_latency_zero () =
  let rng = Tutil.rng_of_seed 9 in
  let p = Platform.Gen.cvb ~rng ~n_tasks:3 ~n_procs:2 ~mu_task:20. ~v_task:0.5 ~v_mach:0.5 () in
  check_close "tau default" 1. (Platform.tau p ~src:0 ~dst:1);
  check_close "latency default" 0. (Platform.latency p ~src:0 ~dst:1)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "platform"
    [
      ( "model",
        [
          tc "accessors" `Quick accessors;
          tc "comm_time" `Quick comm_time_model;
          tc "mean etc / best proc" `Quick mean_etc_and_best_proc;
          tc "mean network" `Quick mean_network;
          tc "single proc" `Quick single_proc_network_means;
          tc "validation" `Quick validation;
        ] );
      ( "generators",
        [
          tc "cvb shape" `Quick cvb_shape_and_positivity;
          tc "cvb mean" `Quick cvb_mean_scale;
          tc "cvb cv=0" `Quick cvb_zero_cv_is_constant;
          tc "uniform_minval range" `Quick uniform_minval_range;
          tc "deterministic" `Quick generators_deterministic;
          tc "heterogeneous network" `Quick heterogeneous_network_bounds;
          tc "defaults" `Quick default_comm_latency_zero;
        ] );
    ]
