(* PRNG suites: determinism, splitting, statistical sanity of samplers. *)

let check_close = Tutil.check_close
let check_close_abs = Tutil.check_close_abs

(* --- Splitmix --- *)

let splitmix_deterministic () =
  let a = Prng.Splitmix.create 42L and b = Prng.Splitmix.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix.next a) (Prng.Splitmix.next b)
  done

let splitmix_seed_sensitivity () =
  let a = Prng.Splitmix.create 1L and b = Prng.Splitmix.create 2L in
  Alcotest.(check bool) "different seeds differ" false
    (Prng.Splitmix.next a = Prng.Splitmix.next b)

let splitmix_copy_independent () =
  let a = Prng.Splitmix.create 7L in
  let b = Prng.Splitmix.copy a in
  let va = Prng.Splitmix.next a in
  let vb = Prng.Splitmix.next b in
  Alcotest.(check int64) "copy continues identically" va vb;
  ignore (Prng.Splitmix.next a);
  let vb2 = Prng.Splitmix.next b in
  Alcotest.(check bool) "streams advance independently" true (vb2 <> 0L)

let splitmix_split_differs () =
  let a = Prng.Splitmix.create 9L in
  let child = Prng.Splitmix.split a in
  let xs = List.init 50 (fun _ -> Prng.Splitmix.next a) in
  let ys = List.init 50 (fun _ -> Prng.Splitmix.next child) in
  Alcotest.(check bool) "parent and child streams differ" false (xs = ys)

let splitmix_float_range () =
  let a = Prng.Splitmix.create 123L in
  for _ = 1 to 1000 do
    let u = Prng.Splitmix.next_float a in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.)
  done

(* --- Xoshiro --- *)

let xoshiro_deterministic () =
  let a = Prng.Xoshiro.create 42L and b = Prng.Xoshiro.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Xoshiro.next a) (Prng.Xoshiro.next b)
  done

let xoshiro_jump_disjoint () =
  (* after a jump, the stream must not replay the pre-jump prefix *)
  let a = Prng.Xoshiro.create 5L in
  let prefix = List.init 100 (fun _ -> Prng.Xoshiro.next a) in
  let b = Prng.Xoshiro.create 5L in
  Prng.Xoshiro.jump b;
  let jumped = List.init 100 (fun _ -> Prng.Xoshiro.next b) in
  Alcotest.(check bool) "jumped stream differs" false (prefix = jumped)

let xoshiro_split_parent_advances () =
  let a = Prng.Xoshiro.create 5L in
  let child = Prng.Xoshiro.split a in
  let xs = List.init 100 (fun _ -> Prng.Xoshiro.next a) in
  let ys = List.init 100 (fun _ -> Prng.Xoshiro.next child) in
  Alcotest.(check bool) "disjoint streams" false (xs = ys)

let xoshiro_int_bounds () =
  let a = Prng.Xoshiro.create 99L in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let v = Prng.Xoshiro.int a bound in
      Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
    done
  done

let xoshiro_int_rejects_nonpositive () =
  let a = Prng.Xoshiro.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Xoshiro.int: bound must be positive")
    (fun () -> ignore (Prng.Xoshiro.int a 0))

let xoshiro_int_uniformity () =
  (* chi-square-ish sanity: each of 8 buckets within 20% of expectation *)
  let a = Prng.Xoshiro.create 2024L in
  let buckets = Array.make 8 0 in
  let n = 80000 in
  for _ = 1 to n do
    let v = Prng.Xoshiro.int a 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = float_of_int n /. 8. in
      Alcotest.(check bool) "bucket near uniform" true
        (Float.abs (float_of_int c -. expected) < 0.2 *. expected))
    buckets

let xoshiro_float_pos_never_zero () =
  let a = Prng.Xoshiro.create 3L in
  for _ = 1 to 10000 do
    Alcotest.(check bool) "positive" true (Prng.Xoshiro.next_float_pos a > 0.)
  done

(* --- Samplers: moment checks over large samples --- *)

let sample_moments ~n draw =
  let rng = Prng.Xoshiro.create 77L in
  let acc = ref 0. and acc2 = ref 0. in
  for _ = 1 to n do
    let x = draw rng in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  (mean, (!acc2 /. float_of_int n) -. (mean *. mean))

let uniform_moments () =
  let mean, var = sample_moments ~n:100000 (fun r -> Prng.Sampler.uniform r ~lo:2. ~hi:6.) in
  check_close ~eps:0.02 "mean" 4. mean;
  check_close ~eps:0.05 "var" (16. /. 12.) var

let exponential_moments () =
  let mean, var = sample_moments ~n:100000 (fun r -> Prng.Sampler.exponential r ~rate:2.) in
  check_close ~eps:0.03 "mean" 0.5 mean;
  check_close ~eps:0.05 "var" 0.25 var

let normal_moments () =
  let mean, var =
    sample_moments ~n:100000 (fun r -> Prng.Sampler.normal r ~mean:3. ~std:2.)
  in
  check_close ~eps:0.02 "mean" 3. mean;
  check_close ~eps:0.05 "var" 4. var

let gamma_moments () =
  List.iter
    (fun (shape, scale) ->
      let mean, var =
        sample_moments ~n:100000 (fun r -> Prng.Sampler.gamma r ~shape ~scale)
      in
      check_close ~eps:0.05 (Printf.sprintf "gamma(%g) mean" shape) (shape *. scale) mean;
      check_close ~eps:0.12
        (Printf.sprintf "gamma(%g) var" shape)
        (shape *. scale *. scale)
        var)
    [ (0.5, 1.); (1., 2.); (3., 0.5); (9., 1.) ]

let beta_moments () =
  let alpha = 2. and beta = 5. in
  let mean, var =
    sample_moments ~n:100000 (fun r -> Prng.Sampler.beta r ~alpha ~beta)
  in
  let s = alpha +. beta in
  check_close ~eps:0.02 "mean" (alpha /. s) mean;
  check_close ~eps:0.06 "var" (alpha *. beta /. (s *. s *. (s +. 1.))) var

let beta_in_unit_interval () =
  let rng = Prng.Xoshiro.create 4L in
  for _ = 1 to 10000 do
    let x = Prng.Sampler.beta rng ~alpha:2. ~beta:5. in
    Alcotest.(check bool) "in [0,1]" true (x >= 0. && x <= 1.)
  done

let gamma_mean_cv_moments () =
  let mean, var =
    sample_moments ~n:100000 (fun r -> Prng.Sampler.gamma_mean_cv r ~mean:20. ~cv:0.5)
  in
  check_close ~eps:0.02 "mean" 20. mean;
  check_close ~eps:0.08 "std" 10. (sqrt var)

let gamma_mean_cv_degenerate () =
  let rng = Prng.Xoshiro.create 5L in
  check_close "cv=0 returns mean" 20. (Prng.Sampler.gamma_mean_cv rng ~mean:20. ~cv:0.)

let shuffle_is_permutation =
  Tutil.qcheck ~count:200 "shuffle is a permutation"
    QCheck2.Gen.(pair (int_range 0 50) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Tutil.rng_of_seed seed in
      let a = Array.init n (fun i -> i) in
      Prng.Sampler.shuffle rng a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let shuffle_moves_elements () =
  (* over many shuffles of 0..9, position 0 should see several values *)
  let rng = Prng.Xoshiro.create 6L in
  let seen = Hashtbl.create 10 in
  for _ = 1 to 100 do
    let a = Array.init 10 (fun i -> i) in
    Prng.Sampler.shuffle rng a;
    Hashtbl.replace seen a.(0) ()
  done;
  Alcotest.(check bool) "position 0 varied" true (Hashtbl.length seen > 4)

let choose_uniformish () =
  let rng = Prng.Xoshiro.create 8L in
  let counts = Array.make 4 0 in
  for _ = 1 to 40000 do
    let v = Prng.Sampler.choose rng [| 0; 1; 2; 3 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "near uniform" true (abs (c - 10000) < 1000))
    counts

let invalid_args () =
  let rng = Prng.Xoshiro.create 1L in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "uniform" (fun () -> Prng.Sampler.uniform rng ~lo:2. ~hi:1.);
  expect_invalid "exponential" (fun () -> Prng.Sampler.exponential rng ~rate:0.);
  expect_invalid "normal" (fun () -> Prng.Sampler.normal rng ~mean:0. ~std:(-1.));
  expect_invalid "gamma shape" (fun () -> Prng.Sampler.gamma rng ~shape:0. ~scale:1.);
  expect_invalid "gamma scale" (fun () -> Prng.Sampler.gamma rng ~shape:1. ~scale:0.);
  expect_invalid "beta" (fun () -> Prng.Sampler.beta rng ~alpha:0. ~beta:1.);
  expect_invalid "choose" (fun () -> Prng.Sampler.choose rng [||]);
  ignore (check_close_abs, ())

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          tc "deterministic" `Quick splitmix_deterministic;
          tc "seed sensitivity" `Quick splitmix_seed_sensitivity;
          tc "copy" `Quick splitmix_copy_independent;
          tc "split differs" `Quick splitmix_split_differs;
          tc "float range" `Quick splitmix_float_range;
        ] );
      ( "xoshiro",
        [
          tc "deterministic" `Quick xoshiro_deterministic;
          tc "jump disjoint" `Quick xoshiro_jump_disjoint;
          tc "split" `Quick xoshiro_split_parent_advances;
          tc "int bounds" `Quick xoshiro_int_bounds;
          tc "int rejects non-positive" `Quick xoshiro_int_rejects_nonpositive;
          tc "int uniformity" `Quick xoshiro_int_uniformity;
          tc "float pos" `Quick xoshiro_float_pos_never_zero;
        ] );
      ( "samplers",
        [
          tc "uniform moments" `Quick uniform_moments;
          tc "exponential moments" `Quick exponential_moments;
          tc "normal moments" `Quick normal_moments;
          tc "gamma moments" `Quick gamma_moments;
          tc "beta moments" `Quick beta_moments;
          tc "beta support" `Quick beta_in_unit_interval;
          tc "gamma_mean_cv moments" `Quick gamma_mean_cv_moments;
          tc "gamma_mean_cv degenerate" `Quick gamma_mean_cv_degenerate;
          shuffle_is_permutation;
          tc "shuffle moves" `Quick shuffle_moves_elements;
          tc "choose uniform" `Quick choose_uniformish;
          tc "invalid args" `Quick invalid_args;
        ] );
    ]
