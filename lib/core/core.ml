(** Robusched — robustness metrics for DAG schedules on heterogeneous
    systems.

    Umbrella API over the substrate libraries, mirroring the pipeline of
    Canon & Jeannot, “A Comparison of Robustness Metrics for Scheduling
    DAGs on Heterogeneous Systems” (HeteroPar'07):

    {[
      let open Core in
      let graph = Workload.cholesky ~tiles:3 () in
      let rng = Rng.create 42L in
      let platform = Platform.Gen.uniform_minval ~rng
          ~n_tasks:(Graph.n_tasks graph) ~n_procs:3 () in
      let model = Uncertainty.make ~ul:1.1 () in
      let sched = Heuristics.heft graph platform in
      let analysis = analyze sched platform model in
      ...
    ]} *)

(** {1 Substrate modules, re-exported} *)

module Rng = Prng.Xoshiro
module Sampler = Prng.Sampler
module Graph = Dag.Graph
module Levels = Dag.Levels
module Series_parallel = Dag.Series_parallel
module Platform = Platform
module Dist = Distribution.Dist
module Family = Distribution.Family
module Empirical = Distribution.Empirical
module Normal_pair = Distribution.Normal_pair
module Uncertainty = Workloads.Stochastify
module Schedule = Sched.Schedule
module Simulator = Sched.Simulator
module Slack = Sched.Slack
module Disjunctive = Sched.Disjunctive
module Random_sched = Sched.Random_sched
module Makespan_eval = Makespan.Eval
module Engine = Makespan.Engine
module Montecarlo = Makespan.Montecarlo
module Makespan_bounds = Makespan.Bounds
module Robustness = Metrics.Robustness
module Inversion = Metrics.Inversion
module Extended_metrics = Metrics.Extended
module Correlation = Stats.Correlation
module Distance = Stats.Distance
module Bootstrap = Stats.Bootstrap
module Experiments = Experiments
module Obs = Obs

(** {1 Workload generators} *)

module Workload = struct
  let random_dag = Workloads.Random_dag.generate
  let cholesky = Workloads.Cholesky.generate
  let gauss_elim = Workloads.Gauss_elim.generate
  let lu = Workloads.Lu.generate
  let fft = Workloads.Fft_graph.generate
  let chain = Workloads.Classic.chain
  let join = Workloads.Classic.join
  let fork_join = Workloads.Classic.fork_join
  let in_tree = Workloads.Classic.in_tree
  let out_tree = Workloads.Classic.out_tree
  let diamond = Workloads.Classic.diamond
end

(** {1 Scheduling heuristics} *)

module Heuristics = struct
  let heft g p = Sched.Heft.schedule g p

  (** HEFT with a chosen rank-collapsing policy (`Mean | `Best | `Worst). *)
  let heft_with_rank = Sched.Heft.schedule
  let bil = Sched.Bil.schedule
  let bmct = Sched.Bmct.schedule
  let cpop = Sched.Cpop.schedule
  let dls = Sched.Dls.schedule
  let peft = Sched.Peft.schedule
  let heft_la = Sched.Heft_la.schedule

  (** Stochastic EFT/local-fastest cross-over; [?seed] drives the
      per-decision coin (default {!Sched.Iheft.default_seed}). *)
  let iheft = Sched.Iheft.schedule

  (** The uncertainty-aware list heuristic of the paper's future work
      (§VIII): ranking and placement by [mean + κ·std] durations. *)
  let robust_heft = Sched.Robust_heft.schedule

  (** The paper's three, by display name. *)
  let all = Experiments.Runner.heuristics

  (** Every registry entry, by display name — the same table behind
      [repro sched --list], {!Registry.parse} accepting names, aliases
      and [rank=...,select=...] compositions. *)
  let registry = List.map Experiments.Runner.scheduler (Sched.Registry.names ())
end

module Registry = Sched.Registry
module List_scheduler = Sched.List_scheduler
module Sched_components = Sched.Components

module Gantt = Sched.Gantt

(** {1 One-call pipeline} *)

type analysis = {
  schedule : Schedule.t;
  makespan_dist : Dist.t;
  slack : Slack.summary;
  metrics : Robustness.t;
}

(** [analyze sched platform model] evaluates a schedule end to end
    through a one-shot {!Engine}: makespan distribution (classical method
    by default), slack summary, and the eight §IV metrics. For sweeps
    over many schedules of one case, create the engine once with
    {!Engine.create} and call {!analyze_with} instead. *)
let analyze_with ?delta ?gamma ?(method_ = Makespan.Eval.Classical) engine schedule =
  let { Makespan.Engine.makespan = makespan_dist; slack } =
    Makespan.Engine.analyze ~backend:(Makespan.Engine.backend_of_method method_) engine
      schedule
  in
  let metrics = Robustness.compute ?delta ?gamma ~makespan_dist ~slack () in
  { schedule; makespan_dist; slack; metrics }

let analyze ?delta ?gamma ?method_ schedule platform model =
  let engine =
    Makespan.Engine.create ~graph:schedule.Sched.Schedule.graph ~platform ~model
  in
  analyze_with ?delta ?gamma ?method_ engine schedule

(** [validate_against_montecarlo ~rng ~count analysis platform model] is
    the (KS, CM) distance between the analytic makespan distribution and
    a fresh Monte-Carlo run — §V's accuracy check. *)
let validate_against_montecarlo ~rng ~count analysis platform model =
  let emp = Makespan.Montecarlo.run ~rng ~count analysis.schedule platform model in
  ( Stats.Distance.ks (Analytic analysis.makespan_dist) (Sampled emp),
    Stats.Distance.cm_area (Analytic analysis.makespan_dist) (Sampled emp) )
