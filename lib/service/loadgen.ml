module Json = Experiments.Json

type arrival = Closed | Poisson of float

type config = {
  host : string;
  port : int;
  concurrency : int;
  requests : int;
  job : Proto.job;
  arrival : arrival;
  slo_ms : float option;
  trace_out : string option;
}

let default_job () =
  {
    Proto.workload =
      Proto.Named { kind = Experiments.Case.Cholesky; n = 10; procs = 3; seed = 1L };
    ul = 1.1;
    backend = Makespan.Engine.Classical;
    schedules = [ Proto.Heuristic "HEFT"; Proto.Random { count = 20; seed = 7L } ];
    slack_mode = `Disjunctive;
    delta = None;
    gamma = None;
    deadline_ms = None;
    trace = None;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Int.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

type worker_result = {
  latencies : float list;
  errors : int;
}

(* Closed loop: each domain fires its share back-to-back; latency is
   the client-side round trip. *)
let closed_worker config n_requests =
  let client = Client.connect ~host:config.host ~port:config.port () in
  let body = config.job in
  let rec go i acc errors =
    if i >= n_requests then { latencies = acc; errors }
    else begin
      let t0 = Obs.Clock.now_s () in
      match Client.eval client body with
      | Ok _ -> go (i + 1) (Obs.Clock.now_s () -. t0 :: acc) errors
      | Error _ -> go (i + 1) acc (errors + 1)
    end
  in
  let r = go 0 [] 0 in
  Client.close client;
  r

(* Open loop: arrivals are a Poisson process with the requested rate,
   scheduled up front as absolute offsets from the start instant and
   claimed by the workers through a shared cursor. Latency is measured
   from the *scheduled arrival*, not the send — when the service falls
   behind, the backlog shows up as latency instead of silently slowing
   the offered load (the coordinated-omission trap of closed loops). *)
let poisson_worker config ~t_start_s ~offsets ~cursor =
  let client = Client.connect ~host:config.host ~port:config.port () in
  let body = config.job in
  let total = Array.length offsets in
  let rec go acc errors =
    let i = Atomic.fetch_and_add cursor 1 in
    if i >= total then { latencies = acc; errors }
    else begin
      let target = t_start_s +. offsets.(i) in
      let now = Obs.Clock.now_s () in
      if target > now then Unix.sleepf (target -. now);
      match Client.eval client body with
      | Ok _ -> go (Obs.Clock.now_s () -. target :: acc) errors
      | Error _ -> go acc (errors + 1)
    end
  in
  let r = go [] 0 in
  Client.close client;
  r

(* One traced request after the load: mint a trace id, propagate it via
   [traceparent], then pull that request's Chrome trace back out of the
   server's flight ring. The server publishes the record only after the
   response bytes are written, so the first poll can race it — retry. *)
let fetch_trace config =
  let tr = Obs.Trace.mint () in
  let client = Client.connect ~host:config.host ~port:config.port () in
  let result =
    match Client.eval ~traceparent:(Obs.Trace.to_traceparent tr) client config.job with
    | Error e -> Error ("traced request failed: " ^ e)
    | Ok _ ->
      let path =
        Printf.sprintf "/debug/requests?format=chrome&trace=%s" tr.Obs.Trace.trace_id
      in
      (* an empty filter result is ~42 bytes; any real event pushes the
         document well past that *)
      let has_events body = String.length body >= 60 in
      let rec poll attempts =
        match Client.get client path with
        | Ok resp when resp.Http.status = 200 && has_events resp.Http.body ->
          Ok (tr.Obs.Trace.trace_id, resp.Http.body)
        | _ when attempts > 1 ->
          Unix.sleepf 0.01;
          poll (attempts - 1)
        | Ok resp ->
          Error (Printf.sprintf "trace not found (HTTP %d)" resp.Http.status)
        | Error e -> Error ("trace fetch failed: " ^ Http.error_to_string e)
      in
      poll 20
  in
  Client.close client;
  result

let num f = if Float.is_finite f then Json.Num (Json.float_lit f) else Json.Null
let int_ i = Json.Num (string_of_int i)

(* ------------------------------------------------------------------ *)
(* Worker-scaling sweep (BENCH_serve.json curve)                       *)
(* ------------------------------------------------------------------ *)

type sweep_config = {
  worker_counts : int list;
  sweep_concurrency : int;
  sweep_requests : int;
  keys : int;
  task_n : int;
}

let default_sweep =
  { worker_counts = [ 1; 2; 4 ]; sweep_concurrency = 8; sweep_requests = 96; keys = 8; task_n = 24 }

(* [keys] distinct cases: same shape, different seeds, so every job has
   its own (graph × platform × UL) key — they spread across shards and
   each owns one engine. *)
let sweep_job ~task_n i =
  {
    (default_job ()) with
    Proto.workload =
      Proto.Named
        {
          kind = Experiments.Case.Cholesky;
          n = task_n;
          procs = 4;
          seed = Int64.of_int (100 + i);
        };
    schedules =
      [ Proto.Heuristic "HEFT"; Proto.Random { count = 10; seed = Int64.of_int (7 + i) } ];
  }

let sweep_worker ~host ~port ~jobs ~expected ~share ~offset =
  (* generous socket timeout: the conn-admit baseline point serializes
     admission behind the evaluation pool, and a timeout would desync
     the keep-alive stream (responses pairing with the wrong request) *)
  let client = ref (Client.connect ~host ~port ~timeout_s:600. ()) in
  let k = Array.length jobs in
  let rec go i lat errors mismatches =
    if i >= share then (lat, errors, mismatches)
    else begin
      let ji = (offset + i) mod k in
      let t0 = Obs.Clock.now_s () in
      match Client.eval !client jobs.(ji) with
      | Ok body ->
        let lat = (Obs.Clock.now_s () -. t0) :: lat in
        if String.equal body (expected.(ji) : string) then go (i + 1) lat errors mismatches
        else go (i + 1) lat errors (mismatches + 1)
      | Error _ ->
        (* resync: never reuse a connection after a failed round trip *)
        Client.close !client;
        client := Client.connect ~host ~port ~timeout_s:600. ();
        go (i + 1) lat (errors + 1) mismatches
    end
  in
  let r = go 0 [] 0 0 in
  Client.close !client;
  r

(* Merge every shard's [service.stage_seconds{stage=...}] family into
   one histogram (the bucket ladder is shared), so the sweep reports a
   service-wide stage quantile whatever the worker count. *)
let merged_stage_hist snap stage =
  List.fold_left
    (fun acc (name, h) ->
      match Obs.Openmetrics.split_name name with
      | "service.stage_seconds", ("stage", s) :: _ when String.equal s stage -> (
        match acc with
        | None -> Some h
        | Some m when Array.length m.Obs.Metrics.counts = Array.length h.Obs.Metrics.counts
          ->
          Some
            {
              m with
              Obs.Metrics.counts =
                Array.mapi (fun i c -> c + h.Obs.Metrics.counts.(i)) m.Obs.Metrics.counts;
              total = m.Obs.Metrics.total + h.Obs.Metrics.total;
              sum = m.Obs.Metrics.sum +. h.Obs.Metrics.sum;
            }
        | some -> some)
      | _ -> acc)
    None snap.Obs.Metrics.histograms

let sweep (sc : sweep_config) =
  let keys = Int.max 1 sc.keys in
  let jobs = Array.init keys (sweep_job ~task_n:sc.task_n) in
  (* the offline twins every served body must match, byte for byte *)
  let expected =
    Array.map
      (fun j ->
        match Proto.eval j with Ok b -> b | Error e -> invalid_arg ("sweep job: " ^ e))
      jobs
  in
  let point ~label ~workers ~conn_admit =
    (* fresh instruments per point: the admit quantile must describe
       this configuration only (no concurrent writers between points —
       the previous server is stopped) *)
    Obs.Flight.reset ();
    Obs.Metrics.reset ();
    let t =
      Server.start
        {
          Server.default_config with
          Server.port = 0;
          workers;
          conn_admit;
          queue_capacity = Int.max 64 sc.sweep_requests;
        }
    in
    let host = Server.default_config.Server.host in
    let port = Server.port t in
    let concurrency = Int.max 1 sc.sweep_concurrency in
    let total = Int.max 1 sc.sweep_requests in
    let share d = (total / concurrency) + if d < total mod concurrency then 1 else 0 in
    let t0 = Obs.Clock.now_s () in
    let results =
      List.init concurrency (fun d ->
          Domain.spawn (fun () ->
              sweep_worker ~host ~port ~jobs ~expected ~share:(share d)
                ~offset:(d * (total / concurrency))))
      |> List.map Domain.join
    in
    let wall = Obs.Clock.now_s () -. t0 in
    let snap = Obs.Metrics.snapshot () in
    let stats = Server.stats t in
    Server.stop t;
    let latencies =
      List.concat_map (fun (l, _, _) -> l) results |> Array.of_list
    in
    Array.sort compare latencies;
    let errors = List.fold_left (fun a (_, e, _) -> a + e) 0 results in
    let mismatches = List.fold_left (fun a (_, _, m) -> a + m) 0 results in
    let admit = merged_stage_hist snap "admit" in
    let admit_q q =
      match admit with Some h -> Obs.Metrics.hist_quantile h q | None -> nan
    in
    let admit_p99 = admit_q 0.99 in
    let doc =
      Json.Obj
        [
          ("label", Json.Str label);
          ("workers", int_ workers);
          ("conn_admit", Json.Bool conn_admit);
          ("completed", int_ (Array.length latencies));
          ("errors", int_ errors);
          ("byte_mismatches", int_ mismatches);
          ("wall_s", num wall);
          ( "throughput_rps",
            num (float_of_int (Array.length latencies) /. wall) );
          ("latency_p50_s", num (percentile latencies 0.50));
          ("latency_p99_s", num (percentile latencies 0.99));
          ( "admit_count",
            int_ (match admit with Some h -> h.Obs.Metrics.total | None -> 0) );
          ("admit_p50_s", num (admit_q 0.50));
          ("admit_p99_s", num admit_p99);
          ("engines_created", int_ stats.Server.engines_created);
          ( "shard_jobs",
            Json.Arr (Array.to_list (Array.map int_ stats.Server.shard_jobs)) );
        ]
    in
    (admit_p99, doc)
  in
  (* Baseline: the pre-fix placement — context built on the connection
     domains on every submit, one worker. Then the sharded tier. *)
  let base_p99, base_doc = point ~label:"conn-admit-w1" ~workers:1 ~conn_admit:true in
  let points =
    List.map
      (fun w ->
        let p99, doc = point ~label:(Printf.sprintf "w%d" w) ~workers:w ~conn_admit:false in
        (w, p99, doc))
      sc.worker_counts
  in
  let speedups =
    List.map
      (fun (w, p99, _) ->
        ( Printf.sprintf "w%d" w,
          if Float.is_finite base_p99 && Float.is_finite p99 && p99 > 0. then
            num (base_p99 /. p99)
          else Json.Null ))
      points
  in
  Json.to_string
    (Json.Obj
       [
         ("bench", Json.Str "serve_workers_sweep");
         ("version", Json.Str Build_info.version);
         ("keys", int_ keys);
         ("task_n", int_ sc.task_n);
         ("requests_per_point", int_ sc.sweep_requests);
         ("concurrency", int_ sc.sweep_concurrency);
         ("baseline", base_doc);
         ("points", Json.Arr (List.map (fun (_, _, d) -> d) points));
         ("admit_p99_speedup_vs_conn_admit", Json.Obj speedups);
       ])
  ^ "\n"

let run config =
  let concurrency = Int.max 1 config.concurrency in
  let total = Int.max 1 config.requests in
  let t0 = Obs.Clock.now_s () in
  let results =
    match config.arrival with
    | Closed ->
      let share d =
        (* split [total] across domains, first domains take the remainder *)
        (total / concurrency) + if d < total mod concurrency then 1 else 0
      in
      List.init concurrency (fun d ->
          Domain.spawn (fun () -> closed_worker config (share d)))
      |> List.map Domain.join
    | Poisson rate ->
      let rate = Float.max 1e-3 rate in
      (* deterministic arrival schedule: exponential gaps, fixed seed *)
      let st = Random.State.make [| 0x10adc0de; total; int_of_float (rate *. 1e3) |] in
      let offsets = Array.make total 0. in
      let t = ref 0. in
      for i = 0 to total - 1 do
        t := !t +. (-.Float.log (1. -. Random.State.float st 1.) /. rate);
        offsets.(i) <- !t
      done;
      let cursor = Atomic.make 0 in
      let t_start_s = Obs.Clock.now_s () in
      List.init concurrency (fun _ ->
          Domain.spawn (fun () -> poisson_worker config ~t_start_s ~offsets ~cursor))
      |> List.map Domain.join
  in
  let wall = Obs.Clock.now_s () -. t0 in
  let latencies =
    List.concat_map (fun r -> r.latencies) results |> Array.of_list
  in
  Array.sort compare latencies;
  let errors = List.fold_left (fun acc r -> acc + r.errors) 0 results in
  let completed = Array.length latencies in
  let mean =
    if completed = 0 then nan
    else Array.fold_left ( +. ) 0. latencies /. float_of_int completed
  in
  (* one scrape of the server's own counters for the report *)
  let service =
    let client = Client.connect ~host:config.host ~port:config.port () in
    let section =
      match Client.get client "/metrics" with
      | Ok resp when resp.Http.status = 200 -> (
        match Result.to_option (Json.parse resp.Http.body) with
        | Some doc -> Json.mem "service" doc
        | None -> None)
      | _ -> None
    in
    Client.close client;
    Option.value section ~default:Json.Null
  in
  let trace_section =
    match config.trace_out with
    | None -> []
    | Some file -> (
      match fetch_trace config with
      | Ok (trace_id, body) ->
        let oc = open_out file in
        output_string oc body;
        close_out oc;
        [ ("trace_id", Json.Str trace_id); ("trace_file", Json.Str file) ]
      | Error e -> [ ("trace_error", Json.Str e) ])
  in
  let arrival_section =
    match config.arrival with
    | Closed -> [ ("arrival", Json.Str "closed") ]
    | Poisson rate -> [ ("arrival", Json.Str "poisson"); ("rate_rps", num rate) ]
  in
  let slo_section =
    match config.slo_ms with
    | None -> []
    | Some ms ->
      let budget_s = ms /. 1e3 in
      let within =
        Array.fold_left (fun acc l -> if l <= budget_s then acc + 1 else acc) 0 latencies
      in
      (* errors count against the SLO: attained = within / offered *)
      let offered = completed + errors in
      let attained =
        if offered = 0 then nan else float_of_int within /. float_of_int offered
      in
      [ ("slo_ms", num ms); ("slo_attained", num attained) ]
  in
  let doc =
    Json.Obj
      ([
         ("bench", Json.Str "serve");
         ("version", Json.Str Build_info.version);
         ("concurrency", int_ concurrency);
         ("requests", int_ total);
       ]
      @ arrival_section
      @ [
          ("completed", int_ completed);
          ("errors", int_ errors);
          ("wall_s", num wall);
          ("throughput_rps", num (float_of_int completed /. wall));
          ( "latency_s",
            Json.Obj
              [
                ("mean", num mean);
                ("p50", num (percentile latencies 0.50));
                ("p90", num (percentile latencies 0.90));
                ("p99", num (percentile latencies 0.99));
                ("max", num (percentile latencies 1.0));
              ] );
        ]
      @ slo_section
      @ trace_section
      @ [ ("service", service) ])
  in
  Json.to_string doc ^ "\n"
