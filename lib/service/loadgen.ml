module Json = Experiments.Json

type config = {
  host : string;
  port : int;
  concurrency : int;
  requests : int;
  job : Proto.job;
}

let default_job () =
  {
    Proto.workload =
      Proto.Named { kind = Experiments.Case.Cholesky; n = 10; procs = 3; seed = 1L };
    ul = 1.1;
    backend = Makespan.Engine.Classical;
    schedules = [ Proto.Heuristic "HEFT"; Proto.Random { count = 20; seed = 7L } ];
    slack_mode = `Disjunctive;
    delta = None;
    gamma = None;
    deadline_ms = None;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Int.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

type worker_result = {
  latencies : float list;
  errors : int;
}

let worker config n_requests =
  let client = Client.connect ~host:config.host ~port:config.port () in
  let body = config.job in
  let rec go i acc errors =
    if i >= n_requests then { latencies = acc; errors }
    else begin
      let t0 = Unix.gettimeofday () in
      match Client.eval client body with
      | Ok _ -> go (i + 1) (Unix.gettimeofday () -. t0 :: acc) errors
      | Error _ -> go (i + 1) acc (errors + 1)
    end
  in
  let r = go 0 [] 0 in
  Client.close client;
  r

let num f = if Float.is_finite f then Json.Num (Json.float_lit f) else Json.Null
let int_ i = Json.Num (string_of_int i)

let run config =
  let concurrency = Int.max 1 config.concurrency in
  let total = Int.max 1 config.requests in
  let share d =
    (* split [total] across domains, first domains take the remainder *)
    (total / concurrency) + if d < total mod concurrency then 1 else 0
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init concurrency (fun d -> Domain.spawn (fun () -> worker config (share d)))
  in
  let results = List.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let latencies =
    List.concat_map (fun r -> r.latencies) results |> Array.of_list
  in
  Array.sort compare latencies;
  let errors = List.fold_left (fun acc r -> acc + r.errors) 0 results in
  let completed = Array.length latencies in
  let mean =
    if completed = 0 then nan
    else Array.fold_left ( +. ) 0. latencies /. float_of_int completed
  in
  (* one scrape of the server's own counters for the report *)
  let service =
    let client = Client.connect ~host:config.host ~port:config.port () in
    let section =
      match Client.get client "/metrics" with
      | Ok resp when resp.Http.status = 200 -> (
        match Result.to_option (Json.parse resp.Http.body) with
        | Some doc -> Json.mem "service" doc
        | None -> None)
      | _ -> None
    in
    Client.close client;
    Option.value section ~default:Json.Null
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "serve");
        ("version", Json.Str Build_info.version);
        ("concurrency", int_ concurrency);
        ("requests", int_ total);
        ("completed", int_ completed);
        ("errors", int_ errors);
        ("wall_s", num wall);
        ("throughput_rps", num (float_of_int completed /. wall));
        ( "latency_s",
          Json.Obj
            [
              ("mean", num mean);
              ("p50", num (percentile latencies 0.50));
              ("p90", num (percentile latencies 0.90));
              ("p99", num (percentile latencies 0.99));
              ("max", num (percentile latencies 1.0));
            ] );
        ("service", service);
      ]
  in
  Json.to_string doc ^ "\n"
