module Json = Experiments.Json

type arrival = Closed | Poisson of float

type config = {
  host : string;
  port : int;
  concurrency : int;
  requests : int;
  job : Proto.job;
  arrival : arrival;
  slo_ms : float option;
  trace_out : string option;
}

let default_job () =
  {
    Proto.workload =
      Proto.Named { kind = Experiments.Case.Cholesky; n = 10; procs = 3; seed = 1L };
    ul = 1.1;
    backend = Makespan.Engine.Classical;
    schedules = [ Proto.Heuristic "HEFT"; Proto.Random { count = 20; seed = 7L } ];
    slack_mode = `Disjunctive;
    delta = None;
    gamma = None;
    deadline_ms = None;
    trace = None;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Int.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

type worker_result = {
  latencies : float list;
  errors : int;
}

(* Closed loop: each domain fires its share back-to-back; latency is
   the client-side round trip. *)
let closed_worker config n_requests =
  let client = Client.connect ~host:config.host ~port:config.port () in
  let body = config.job in
  let rec go i acc errors =
    if i >= n_requests then { latencies = acc; errors }
    else begin
      let t0 = Obs.Clock.now_s () in
      match Client.eval client body with
      | Ok _ -> go (i + 1) (Obs.Clock.now_s () -. t0 :: acc) errors
      | Error _ -> go (i + 1) acc (errors + 1)
    end
  in
  let r = go 0 [] 0 in
  Client.close client;
  r

(* Open loop: arrivals are a Poisson process with the requested rate,
   scheduled up front as absolute offsets from the start instant and
   claimed by the workers through a shared cursor. Latency is measured
   from the *scheduled arrival*, not the send — when the service falls
   behind, the backlog shows up as latency instead of silently slowing
   the offered load (the coordinated-omission trap of closed loops). *)
let poisson_worker config ~t_start_s ~offsets ~cursor =
  let client = Client.connect ~host:config.host ~port:config.port () in
  let body = config.job in
  let total = Array.length offsets in
  let rec go acc errors =
    let i = Atomic.fetch_and_add cursor 1 in
    if i >= total then { latencies = acc; errors }
    else begin
      let target = t_start_s +. offsets.(i) in
      let now = Obs.Clock.now_s () in
      if target > now then Unix.sleepf (target -. now);
      match Client.eval client body with
      | Ok _ -> go (Obs.Clock.now_s () -. target :: acc) errors
      | Error _ -> go acc (errors + 1)
    end
  in
  let r = go [] 0 in
  Client.close client;
  r

(* One traced request after the load: mint a trace id, propagate it via
   [traceparent], then pull that request's Chrome trace back out of the
   server's flight ring. The server publishes the record only after the
   response bytes are written, so the first poll can race it — retry. *)
let fetch_trace config =
  let tr = Obs.Trace.mint () in
  let client = Client.connect ~host:config.host ~port:config.port () in
  let result =
    match Client.eval ~traceparent:(Obs.Trace.to_traceparent tr) client config.job with
    | Error e -> Error ("traced request failed: " ^ e)
    | Ok _ ->
      let path =
        Printf.sprintf "/debug/requests?format=chrome&trace=%s" tr.Obs.Trace.trace_id
      in
      (* an empty filter result is ~42 bytes; any real event pushes the
         document well past that *)
      let has_events body = String.length body >= 60 in
      let rec poll attempts =
        match Client.get client path with
        | Ok resp when resp.Http.status = 200 && has_events resp.Http.body ->
          Ok (tr.Obs.Trace.trace_id, resp.Http.body)
        | _ when attempts > 1 ->
          Unix.sleepf 0.01;
          poll (attempts - 1)
        | Ok resp ->
          Error (Printf.sprintf "trace not found (HTTP %d)" resp.Http.status)
        | Error e -> Error ("trace fetch failed: " ^ Http.error_to_string e)
      in
      poll 20
  in
  Client.close client;
  result

let num f = if Float.is_finite f then Json.Num (Json.float_lit f) else Json.Null
let int_ i = Json.Num (string_of_int i)

let run config =
  let concurrency = Int.max 1 config.concurrency in
  let total = Int.max 1 config.requests in
  let t0 = Obs.Clock.now_s () in
  let results =
    match config.arrival with
    | Closed ->
      let share d =
        (* split [total] across domains, first domains take the remainder *)
        (total / concurrency) + if d < total mod concurrency then 1 else 0
      in
      List.init concurrency (fun d ->
          Domain.spawn (fun () -> closed_worker config (share d)))
      |> List.map Domain.join
    | Poisson rate ->
      let rate = Float.max 1e-3 rate in
      (* deterministic arrival schedule: exponential gaps, fixed seed *)
      let st = Random.State.make [| 0x10adc0de; total; int_of_float (rate *. 1e3) |] in
      let offsets = Array.make total 0. in
      let t = ref 0. in
      for i = 0 to total - 1 do
        t := !t +. (-.Float.log (1. -. Random.State.float st 1.) /. rate);
        offsets.(i) <- !t
      done;
      let cursor = Atomic.make 0 in
      let t_start_s = Obs.Clock.now_s () in
      List.init concurrency (fun _ ->
          Domain.spawn (fun () -> poisson_worker config ~t_start_s ~offsets ~cursor))
      |> List.map Domain.join
  in
  let wall = Obs.Clock.now_s () -. t0 in
  let latencies =
    List.concat_map (fun r -> r.latencies) results |> Array.of_list
  in
  Array.sort compare latencies;
  let errors = List.fold_left (fun acc r -> acc + r.errors) 0 results in
  let completed = Array.length latencies in
  let mean =
    if completed = 0 then nan
    else Array.fold_left ( +. ) 0. latencies /. float_of_int completed
  in
  (* one scrape of the server's own counters for the report *)
  let service =
    let client = Client.connect ~host:config.host ~port:config.port () in
    let section =
      match Client.get client "/metrics" with
      | Ok resp when resp.Http.status = 200 -> (
        match Result.to_option (Json.parse resp.Http.body) with
        | Some doc -> Json.mem "service" doc
        | None -> None)
      | _ -> None
    in
    Client.close client;
    Option.value section ~default:Json.Null
  in
  let trace_section =
    match config.trace_out with
    | None -> []
    | Some file -> (
      match fetch_trace config with
      | Ok (trace_id, body) ->
        let oc = open_out file in
        output_string oc body;
        close_out oc;
        [ ("trace_id", Json.Str trace_id); ("trace_file", Json.Str file) ]
      | Error e -> [ ("trace_error", Json.Str e) ])
  in
  let arrival_section =
    match config.arrival with
    | Closed -> [ ("arrival", Json.Str "closed") ]
    | Poisson rate -> [ ("arrival", Json.Str "poisson"); ("rate_rps", num rate) ]
  in
  let slo_section =
    match config.slo_ms with
    | None -> []
    | Some ms ->
      let budget_s = ms /. 1e3 in
      let within =
        Array.fold_left (fun acc l -> if l <= budget_s then acc + 1 else acc) 0 latencies
      in
      (* errors count against the SLO: attained = within / offered *)
      let offered = completed + errors in
      let attained =
        if offered = 0 then nan else float_of_int within /. float_of_int offered
      in
      [ ("slo_ms", num ms); ("slo_attained", num attained) ]
  in
  let doc =
    Json.Obj
      ([
         ("bench", Json.Str "serve");
         ("version", Json.Str Build_info.version);
         ("concurrency", int_ concurrency);
         ("requests", int_ total);
       ]
      @ arrival_section
      @ [
          ("completed", int_ completed);
          ("errors", int_ errors);
          ("wall_s", num wall);
          ("throughput_rps", num (float_of_int completed /. wall));
          ( "latency_s",
            Json.Obj
              [
                ("mean", num mean);
                ("p50", num (percentile latencies 0.50));
                ("p90", num (percentile latencies 0.90));
                ("p99", num (percentile latencies 0.99));
                ("max", num (percentile latencies 1.0));
              ] );
        ]
      @ slo_section
      @ trace_section
      @ [ ("service", service) ])
  in
  Json.to_string doc ^ "\n"
