(** Blocking HTTP client for the evaluation service — the test suite's
    and [repro loadgen]'s view of the daemon. One [t] is one keep-alive
    connection (lazily dialed, transparently redialed once if the
    server closed it); not thread-safe — give each domain its own. *)

type t

val connect : ?host:string -> ?timeout_s:float -> port:int -> unit -> t
(** [timeout_s] arms [SO_RCVTIMEO] on the socket (default 30 s) so a
    hung server surfaces as [`Timeout] instead of blocking forever.
    Also ignores [SIGPIPE] process-wide (idempotent). Dialing happens
    on first use. *)

val close : t -> unit

val request :
  t -> meth:string -> path:string -> ?headers:(string * string) list ->
  ?body:string -> unit ->
  (Http.response, Http.error) result
(** One round-trip. Redials and retries exactly once when the
    connection turns out to be closed (stale keep-alive). [headers]
    ride on the request line (e.g. [traceparent]). *)

val get : t -> string -> (Http.response, Http.error) result
val post : t -> string -> string -> (Http.response, Http.error) result

(** {1 Service conveniences}

    Errors are human-readable strings (status + body) — these helpers
    collapse transport and HTTP-status failures. *)

val healthz : t -> (string, string) result
(** Body of [GET /healthz] (200 or draining-503 both count as alive). *)

val eval : ?traceparent:string -> t -> Proto.job -> (string, string) result
(** Sync evaluation: [POST /eval], returns the bare result document.
    [traceparent] (see {!Obs.Trace.to_traceparent}) propagates a
    client-minted trace id into the server's flight recorder. *)

val submit : t -> Proto.job -> (string, string) result
(** Async submit: [POST /jobs], returns the job id. *)

val wait :
  ?poll_s:float -> ?timeout_s:float -> t -> string -> (string, string) result
(** Poll [GET /jobs/:id] until the job leaves the queue/run states,
    then fetch [GET /jobs/:id/result] and return the bare document
    (default: poll every 20 ms, give up after 60 s). *)
