(** Load generator for the evaluation service — the [repro loadgen]
    engine behind [BENCH_serve.json].

    Two arrival disciplines:

    - {e closed loop} (default): [concurrency] client domains fire
      synchronous [POST /eval] requests back-to-back until [requests]
      have completed. Offered load adapts to service speed; latency is
      the client round trip.
    - {e open loop} ([Poisson rate]): arrivals form a Poisson process
      at [rate] requests/s, scheduled up front from a fixed seed and
      claimed by the worker domains through a shared cursor. Latency is
      measured from the {e scheduled arrival}, so a service that falls
      behind accrues queueing delay instead of silently throttling the
      load (no coordinated omission).

    After the run the generator scrapes [GET /metrics] once and renders
    a single JSON report (throughput, latency quantiles, error count,
    optional SLO attainment, the server's service counters). With
    [trace_out] set it additionally sends one traced request
    ([traceparent] header) and saves that request's Chrome trace from
    [GET /debug/requests?format=chrome&trace=...]. *)

type arrival =
  | Closed
  | Poisson of float  (** offered rate, requests per second *)

type config = {
  host : string;
  port : int;
  concurrency : int;  (** client domains (each a keep-alive connection) *)
  requests : int;  (** total sync requests across all domains *)
  job : Proto.job;  (** request template, sent verbatim *)
  arrival : arrival;
  slo_ms : float option;
      (** latency budget; the report gains [slo_ms]/[slo_attained]
          (errors count as misses) *)
  trace_out : string option;
      (** write one traced request's Chrome trace JSON to this file *)
}

val default_job : unit -> Proto.job
(** A small named case (Cholesky n=10, 3 procs, UL 1.1, classical
    backend, HEFT + 20 seeded random schedules): heavy enough to
    exercise the engine, light enough for CI. *)

val run : config -> string
(** Execute the load and return the report document (newline-
    terminated JSON, ready to write to [BENCH_serve.json]). *)

(** {2 Worker-scaling sweep}

    [repro loadgen --workers-sweep] drives the whole 1→N scaling curve
    in-process: for each point it starts a fresh {!Server} (ephemeral
    port), fires a closed-loop load of [keys] distinct cases from
    [sweep_concurrency] client domains, and reads the admit-stage
    latency back out of the {!Obs.Metrics} snapshot (per-shard
    [service_stage_seconds{stage="admit"}] families merged). The first
    point re-enables the pre-fix placement ([conn_admit]) as the
    baseline the speedup is measured against. Every response body is
    compared byte-for-byte against [Proto.eval]'s offline document
    ([byte_mismatches] must be 0 at every worker count). *)

type sweep_config = {
  worker_counts : int list;  (** sharded points, e.g. [[1; 2; 4]] *)
  sweep_concurrency : int;  (** client domains per point *)
  sweep_requests : int;  (** sync requests per point *)
  keys : int;  (** distinct cases (distinct batch keys) in the mix *)
  task_n : int;  (** target task count per case — sizes the admit cost *)
}

val default_sweep : sweep_config
(** workers 1/2/4, 8 clients, 96 requests per point, 8 keys, n = 24. *)

val sweep : sweep_config -> string
(** Run the curve and return the report (newline-terminated JSON with
    [baseline], [points] and [admit_p99_speedup_vs_conn_admit]). *)
