(** Closed-loop load generator for the evaluation service — the
    [repro loadgen] engine behind [BENCH_serve.json].

    Spawns [concurrency] client domains, each with its own keep-alive
    {!Client} connection, firing synchronous [POST /eval] requests
    until [requests] have completed; then scrapes [GET /metrics] once
    and renders a single JSON report (throughput, client-side latency
    quantiles, error count, the server's own service counters). *)

type config = {
  host : string;
  port : int;
  concurrency : int;  (** client domains (each a keep-alive connection) *)
  requests : int;  (** total sync requests across all domains *)
  job : Proto.job;  (** request template, sent verbatim *)
}

val default_job : unit -> Proto.job
(** A small named case (Cholesky n=10, 3 procs, UL 1.1, classical
    backend, HEFT + 20 seeded random schedules): heavy enough to
    exercise the engine, light enough for CI. *)

val run : config -> string
(** Execute the load and return the report document (newline-
    terminated JSON, ready to write to [BENCH_serve.json]). *)
