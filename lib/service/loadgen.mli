(** Load generator for the evaluation service — the [repro loadgen]
    engine behind [BENCH_serve.json].

    Two arrival disciplines:

    - {e closed loop} (default): [concurrency] client domains fire
      synchronous [POST /eval] requests back-to-back until [requests]
      have completed. Offered load adapts to service speed; latency is
      the client round trip.
    - {e open loop} ([Poisson rate]): arrivals form a Poisson process
      at [rate] requests/s, scheduled up front from a fixed seed and
      claimed by the worker domains through a shared cursor. Latency is
      measured from the {e scheduled arrival}, so a service that falls
      behind accrues queueing delay instead of silently throttling the
      load (no coordinated omission).

    After the run the generator scrapes [GET /metrics] once and renders
    a single JSON report (throughput, latency quantiles, error count,
    optional SLO attainment, the server's service counters). With
    [trace_out] set it additionally sends one traced request
    ([traceparent] header) and saves that request's Chrome trace from
    [GET /debug/requests?format=chrome&trace=...]. *)

type arrival =
  | Closed
  | Poisson of float  (** offered rate, requests per second *)

type config = {
  host : string;
  port : int;
  concurrency : int;  (** client domains (each a keep-alive connection) *)
  requests : int;  (** total sync requests across all domains *)
  job : Proto.job;  (** request template, sent verbatim *)
  arrival : arrival;
  slo_ms : float option;
      (** latency budget; the report gains [slo_ms]/[slo_attained]
          (errors count as misses) *)
  trace_out : string option;
      (** write one traced request's Chrome trace JSON to this file *)
}

val default_job : unit -> Proto.job
(** A small named case (Cholesky n=10, 3 procs, UL 1.1, classical
    backend, HEFT + 20 seeded random schedules): heavy enough to
    exercise the engine, light enough for CI. *)

val run : config -> string
(** Execute the load and return the report document (newline-
    terminated JSON, ready to write to [BENCH_serve.json]). *)
