type limits = {
  max_header_bytes : int;
  max_headers : int;
  max_body_bytes : int;
}

let default_limits =
  { max_header_bytes = 16 * 1024; max_headers = 100; max_body_bytes = 8 * 1024 * 1024 }

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
  http_1_1 : bool;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type error =
  [ `Closed
  | `Timeout
  | `Bad_request of string
  | `Header_too_large
  | `Body_too_large ]

let error_to_string = function
  | `Closed -> "connection closed"
  | `Timeout -> "read timeout"
  | `Bad_request msg -> "bad request: " ^ msg
  | `Header_too_large -> "header too large"
  | `Body_too_large -> "body too large"

(* ------------------------------------------------------------------ *)
(* Buffered reading                                                    *)
(* ------------------------------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable len : int;  (* valid bytes in [buf] *)
}

let reader fd = { fd; buf = Bytes.create 4096; len = 0 }
let buffered r = r.len

exception Read_error of error

(* One [read] into the spare room of [buf]; grows the buffer as needed.
   Returns the number of fresh bytes (0 = EOF). *)
let fill r =
  if r.len = Bytes.length r.buf then begin
    let bigger = Bytes.create (2 * Bytes.length r.buf) in
    Bytes.blit r.buf 0 bigger 0 r.len;
    r.buf <- bigger
  end;
  let rec go () =
    match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
    | n ->
      r.len <- r.len + n;
      n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise (Read_error `Timeout)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      raise (Read_error `Closed)
  in
  go ()

let consume r n =
  Bytes.blit r.buf n r.buf 0 (r.len - n);
  r.len <- r.len - n

(* Index just past the first blank line ("\r\n\r\n" or "\n\n"), if the
   head is complete within the first [cap] bytes. *)
let head_end r =
  let limit = r.len in
  let rec scan i =
    if i >= limit then None
    else if Bytes.get r.buf i = '\n' then
      if i + 1 < limit && Bytes.get r.buf (i + 1) = '\n' then Some (i + 2)
      else if
        i + 2 < limit && Bytes.get r.buf (i + 1) = '\r' && Bytes.get r.buf (i + 2) = '\n'
      then Some (i + 3)
      else scan (i + 1)
    else scan (i + 1)
  in
  scan 0

(* Read a full message head into a string list of its lines. [`Closed]
   only when EOF arrives before the first byte — EOF mid-head is a
   protocol error. *)
let read_head limits r =
  let rec go () =
    match head_end r with
    | Some e when e > limits.max_header_bytes -> raise (Read_error `Header_too_large)
    | Some e ->
      let head = Bytes.sub_string r.buf 0 e in
      consume r e;
      head
    | None ->
      if r.len > limits.max_header_bytes then raise (Read_error `Header_too_large);
      let fresh = fill r in
      if fresh = 0 then
        raise (Read_error (if r.len = 0 then `Closed else `Bad_request "truncated head"));
      go ()
  in
  let head = go () in
  String.split_on_char '\n' head
  |> List.filter_map (fun line ->
         let line =
           if String.length line > 0 && line.[String.length line - 1] = '\r' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         if line = "" then None else Some line)

let parse_headers limits lines =
  if List.length lines > limits.max_headers then raise (Read_error `Header_too_large);
  List.map
    (fun line ->
      match String.index_opt line ':' with
      | None -> raise (Read_error (`Bad_request "malformed header line"))
      | Some i ->
        let name = String.lowercase_ascii (String.sub line 0 i) in
        let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        if name = "" then raise (Read_error (`Bad_request "empty header name"));
        (name, value))
    lines

let header name headers = List.assoc_opt name headers

let read_body limits r headers =
  if header "transfer-encoding" headers <> None then
    raise (Read_error (`Bad_request "chunked transfer encoding unsupported"));
  match header "content-length" headers with
  | None -> ""
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | None -> raise (Read_error (`Bad_request "malformed content-length"))
    | Some n when n < 0 -> raise (Read_error (`Bad_request "negative content-length"))
    | Some n when n > limits.max_body_bytes -> raise (Read_error `Body_too_large)
    | Some n ->
      while r.len < n do
        if fill r = 0 then raise (Read_error (`Bad_request "truncated body"))
      done;
      let body = Bytes.sub_string r.buf 0 n in
      consume r n;
      body)

(* ------------------------------------------------------------------ *)
(* Request line / target                                               *)
(* ------------------------------------------------------------------ *)

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> (
        match (hex_digit s.[i + 1], hex_digit s.[i + 2]) with
        | Some h, Some l ->
          Buffer.add_char buf (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ -> raise (Read_error (`Bad_request "malformed percent escape")))
      | '%' -> raise (Read_error (`Bad_request "malformed percent escape"))
      | '+' ->
        Buffer.add_char buf ' ';
        go (i + 1)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  Buffer.contents buf

let parse_target target =
  let raw_path, raw_query =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i ->
      (String.sub target 0 i, String.sub target (i + 1) (String.length target - i - 1))
  in
  let query =
    if raw_query = "" then []
    else
      String.split_on_char '&' raw_query
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (percent_decode kv, "")
               | Some i ->
                 Some
                   ( percent_decode (String.sub kv 0 i),
                     percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))
  in
  (percent_decode raw_path, query)

let read_request ?(limits = default_limits) r =
  match
    let lines = read_head limits r in
    match lines with
    | [] -> raise (Read_error (`Bad_request "empty head"))
    | request_line :: header_lines ->
      let meth, target, version =
        match String.split_on_char ' ' request_line with
        | [ m; t; v ] -> (m, t, v)
        | _ -> raise (Read_error (`Bad_request "malformed request line"))
      in
      let http_1_1 =
        match version with
        | "HTTP/1.1" -> true
        | "HTTP/1.0" -> false
        | _ -> raise (Read_error (`Bad_request "unsupported HTTP version"))
      in
      if meth = "" then raise (Read_error (`Bad_request "empty method"));
      let headers = parse_headers limits header_lines in
      let body = read_body limits r headers in
      let path, query = parse_target target in
      { meth; path; query; headers; body; http_1_1 }
  with
  | req -> Ok req
  | exception Read_error e -> Error e

let read_response ?(limits = default_limits) r =
  match
    let lines = read_head limits r in
    match lines with
    | [] -> raise (Read_error (`Bad_request "empty head"))
    | status_line :: header_lines ->
      let status =
        match String.split_on_char ' ' status_line with
        | version :: code :: _
          when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          match int_of_string_opt code with
          | Some c when c >= 100 && c <= 599 -> c
          | _ -> raise (Read_error (`Bad_request "malformed status code")))
        | _ -> raise (Read_error (`Bad_request "malformed status line"))
      in
      let headers = parse_headers limits header_lines in
      let body = read_body limits r headers in
      { status; headers; body }
  with
  | resp -> Ok resp
  | exception Read_error e -> Error e

let keep_alive req =
  req.http_1_1
  &&
  match header "connection" req.headers with
  | Some v -> String.lowercase_ascii v <> "close"
  | None -> true

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let write_response ?(headers = []) ?(content_type = "application/json") fd ~status body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  (* an explicit content-type in [headers] wins over the default *)
  if not (List.mem_assoc "content-type" headers) then
    Buffer.add_string buf (Printf.sprintf "content-type: %s\r\n" content_type);
  Buffer.add_string buf (Printf.sprintf "content-length: %d\r\n" (String.length body));
  List.iter
    (fun (name, value) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" name value))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)

let write_request ?(headers = []) fd ~meth ~path ~body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  if not (List.mem_assoc "host" headers) then
    Buffer.add_string buf "host: localhost\r\n";
  Buffer.add_string buf (Printf.sprintf "content-length: %d\r\n" (String.length body));
  List.iter
    (fun (name, value) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" name value))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)
