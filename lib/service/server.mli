(** The evaluation daemon: accepts JSON jobs over HTTP, batches
    same-case jobs onto shared {!Makespan.Engine} contexts, and serves
    live metrics.

    {2 Architecture}

    One {e acceptor} domain owns the listening socket and feeds accepted
    connections to [conn_domains] handler domains over a
    mutex/condition queue. Handlers parse requests with the bounded
    {!Http} reader and either answer immediately ([/healthz],
    [/metrics], job status) or submit a job to one of [workers]
    {e evaluation shards}. A shard is a worker domain owning a private
    bounded job queue, a private engine LRU and (when [workers > 1]) a
    private slice of the evaluation pool; jobs are consistent-hashed to
    shards by their (graph × platform × UL) batch key, so same-key
    batching and per-base reeval sessions keep their engine affinity
    with no shared engine mutex and no contention on one pool submit
    lock. Each worker drains its queue in batches: it pops the oldest
    job plus every queued job sharing its key, obtains the one
    {!Makespan.Engine} for that key from its shard's LRU, and evaluates
    the batch on it. Batching shares engine caches only; response bytes
    are identical to a solo run (see {!Proto}).

    {2 Admission}

    Connection domains do only the cheap half of admission: bounded
    HTTP, JSON decode and batch-key extraction ({!Proto.key_of_job}).
    The expensive half — {!Proto.context_of_job}, the workload/platform
    generation that used to fight the evaluation pool for the minor
    heap when it ran on connection domains — executes on the job's
    owning worker as the ["admit"] stage of its flight record
    ([conn_admit] restores the old placement for A/B benchmarks).
    Verdicts:

    - shard queue full → [503] with [Retry-After] (never admitted);
    - context build fails on the worker → [422] for sync waiters,
      ["invalid"] in async status;
    - [deadline_ms] elapsed while still queued → the job expires
      ([504] for sync waiters, ["expired"] in async status). Deadlines
      are measured on the monotonic {!Obs.Clock} — a wall-clock (NTP)
      step cannot mass-expire or immortalize queued jobs;
    - drain ({!stop} or SIGTERM via {!serve_forever}): new submissions
      get [503] (counted in [rejected_draining]), queued jobs are given
      [drain_grace_s] to finish, then cancelled.

    {2 Observability}

    Every request becomes an {!Obs.Flight} record: the trace id comes
    from the client's [traceparent] header (or the job body's [trace]
    field, or is minted), and the request is decomposed into the
    [parse → decode → queue → batch → admit → eval → encode → write]
    stages across the connection → worker domain hop; stages executed
    on a worker carry a [shard] label in the
    [service_stage_seconds] histogram family, alongside the per-shard
    [service_queue_depth], [service_shard_jobs], [service_shard_engines]
    and [service_shard_depth] families. [GET /metrics] serves JSON by
    default and OpenMetrics text (with trace-id exemplars on latency
    buckets) under [?format=openmetrics] or
    [Accept: application/openmetrics-text]; [GET /debug/requests]
    serves the flight ring ([?format=chrome&trace=...] renders a
    Chrome trace_event document); [slow_ms] enables the slow-request
    stderr log. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port — read it back with {!port} *)
  queue_capacity : int;
      (** per-shard job-queue bound; beyond it submissions get 503 *)
  conn_domains : int;  (** connection-handler domains *)
  workers : int;
      (** evaluation shards (worker domains when [auto_worker]); values
          < 1 are clamped to 1 *)
  conn_admit : bool;
      (** build the job context on the connection domain (the pre-fix
          admission placement). Only for A/B benchmarks of the
          contention this layout caused; leave [false] in production. *)
  limits : Http.limits;
  engine_cache : int;  (** max engines kept warm per shard (LRU by case key) *)
  auto_worker : bool;
      (** spawn the evaluation worker domains. [false] is for tests:
          jobs only run when {!step} is called, so batching is
          observable deterministically. Sync [/eval] requests then
          block until some other thread calls {!step}. *)
  drain_grace_s : float;  (** drain: max wait for queued jobs to finish *)
  slow_ms : float option;
      (** log one stderr line for every request slower than this many
          milliseconds (with its trace id and stage list); [None]
          disables the slow log *)
}

val default_config : config
(** localhost, ephemeral port, capacity 64, 4 handler domains, 1
    worker, worker-side admission, {!Http.default_limits}, 8 engines,
    auto worker, 5 s grace. *)

type t

val start : config -> t
(** Bind, listen and spawn the acceptor/handler/worker domains (plus,
    when [workers > 1] with [auto_worker], one private evaluation pool
    per shard). Also turns on {!Obs.Metrics} so [/metrics] has live
    histograms, and ignores [SIGPIPE] (a dying client must not kill the
    daemon). Raises [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

val shard_of_key : t -> string -> int
(** The shard that owns a batch key (consistent: equal keys always land
    on the same shard). Exposed for affinity tests and the load
    generator's key planning. *)

val stop : t -> unit
(** Graceful drain: stop accepting, let queued jobs finish (up to
    [drain_grace_s] on the monotonic clock), cancel the rest, join
    every domain, shut down the private shard pools and close the
    socket. Idempotent; the shared pool is left running (its [at_exit]
    teardown owns it), so start/stop/start cycles in one process work. *)

val step : t -> int
(** Manually run one batch off every shard's queue (for
    [auto_worker = false] tests); returns the number of jobs processed
    (0 if all queues were empty). Must not be called while auto workers
    are running. *)

type stats = {
  requests : int;  (** HTTP requests parsed (any route) *)
  jobs_submitted : int;
  jobs_done : int;
  jobs_failed : int;
  jobs_expired : int;
  jobs_cancelled : int;  (** cancelled by drain *)
  rejected_full : int;  (** 503s from a full shard queue *)
  rejected_invalid : int;  (** 400/422s (decode + context failures) *)
  rejected_draining : int;  (** 503s because the server was draining *)
  batches : int;
  max_batch : int;
  engines_created : int;
  engine_task_hits : int;  (** summed over live engines, all shards *)
  engine_task_misses : int;
  engine_reevals : int;  (** single-move re-evaluations, summed over live engines *)
  engine_reeval_incremental : int;  (** served by a dirty-cone replay *)
  engine_reeval_full : int;  (** fell back to a full sweep (= cone + backend) *)
  engine_reeval_full_cone : int;  (** fallbacks whose dirty cone exceeded the cutoff *)
  engine_reeval_full_backend : int;  (** fallbacks on non-incremental backends *)
  engine_reeval_cone_nodes : int;  (** dirty nodes recomputed, summed *)
  engine_reeval_max_cone : int;  (** largest incremental cone over live engines *)
  queue_depth : int;  (** current, summed over shards *)
  workers : int;  (** number of shards *)
  shard_jobs : int array;  (** jobs evaluated, per shard *)
  shard_depth : int array;  (** queued jobs, per shard *)
}

val stats : t -> stats
(** Always-on counters (plain atomics — independent of {!Obs} gating). *)

val serve_forever : config -> unit
(** {!start}, then block inside an {!Experiments.Stop} scope until
    SIGINT/SIGTERM requests a stop, then drain via {!stop} and return —
    the [repro serve] main loop. Composes with campaign runs: both use
    the same process-wide signal scope stack. *)

(**/**)

val set_wall_offset_for_tests : float -> unit
(** Skew the server's wall-clock readings (flight-record display
    timestamps — the only wall reads it performs) by this many seconds,
    simulating an NTP step. Queue deadlines are monotonic, so stepping
    the wall clock must not change expiry behavior; the deadline tests
    assert exactly that. Not for production use. *)
