(** The evaluation daemon: accepts JSON jobs over HTTP, batches
    same-case jobs onto shared {!Makespan.Engine} contexts, and serves
    live metrics.

    {2 Architecture}

    One {e acceptor} domain owns the listening socket and feeds accepted
    connections to [conn_domains] handler domains over a
    mutex/condition queue. Handlers parse requests with the bounded
    {!Http} reader and either answer immediately ([/healthz],
    [/metrics], job status) or submit a job to the {e bounded} job
    queue. A single {e worker} domain drains that queue in batches: it
    pops the oldest job plus every queued job sharing its
    (graph × platform × UL) key, obtains the one {!Makespan.Engine} for
    that key from an LRU cache, and evaluates the batch on it — the
    schedule sweep itself fans out over {!Parallel.Pool.shared}.
    Batching shares engine caches only; response bytes are identical to
    a solo run (see {!Proto}).

    {2 Admission control}

    - queue full → [503] with [Retry-After] (the job is never admitted);
    - [deadline_ms] elapsed while still queued → the job expires
      ([504] for sync waiters, ["expired"] in async status);
    - drain ({!stop} or SIGTERM via {!serve_forever}): new submissions
      get [503], queued jobs are given [drain_grace_s] to finish, then
      cancelled.

    {2 Observability}

    Every request becomes an {!Obs.Flight} record: the trace id comes
    from the client's [traceparent] header (or the job body's [trace]
    field, or is minted), and the request is decomposed into the
    [parse → admit → queue → batch → eval → encode → write] stages
    across the connection → worker domain hop. [GET /metrics] serves
    JSON by default and OpenMetrics text (with trace-id exemplars on
    latency buckets) under [?format=openmetrics] or
    [Accept: application/openmetrics-text]; [GET /debug/requests]
    serves the flight ring ([?format=chrome&trace=...] renders a
    Chrome trace_event document); [slow_ms] enables the slow-request
    stderr log. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port — read it back with {!port} *)
  queue_capacity : int;  (** job-queue bound; beyond it submissions get 503 *)
  conn_domains : int;  (** connection-handler domains *)
  limits : Http.limits;
  engine_cache : int;  (** max engines kept warm (LRU by case key) *)
  auto_worker : bool;
      (** spawn the evaluation worker domain. [false] is for tests:
          jobs only run when {!step} is called, so batching is
          observable deterministically. Sync [/eval] requests then
          block until some other thread calls {!step}. *)
  drain_grace_s : float;  (** drain: max wait for queued jobs to finish *)
  slow_ms : float option;
      (** log one stderr line for every request slower than this many
          milliseconds (with its trace id and stage list); [None]
          disables the slow log *)
}

val default_config : config
(** localhost, ephemeral port, capacity 64, 4 handler domains,
    {!Http.default_limits}, 8 engines, auto worker, 5 s grace. *)

type t

val start : config -> t
(** Bind, listen and spawn the acceptor/handler/worker domains. Also
    turns on {!Obs.Metrics} so [/metrics] has live histograms, and
    ignores [SIGPIPE] (a dying client must not kill the daemon).
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

val stop : t -> unit
(** Graceful drain: stop accepting, let queued jobs finish (up to
    [drain_grace_s]), cancel the rest, join every domain and close the
    socket. Idempotent; the shared pool is left running (its [at_exit]
    teardown owns it), so start/stop/start cycles in one process work. *)

val step : t -> int
(** Manually run one batch off the job queue (for [auto_worker = false]
    tests); returns the number of jobs processed (0 if the queue was
    empty). Must not be called while an auto worker is running. *)

type stats = {
  requests : int;  (** HTTP requests parsed (any route) *)
  jobs_submitted : int;
  jobs_done : int;
  jobs_failed : int;
  jobs_expired : int;
  jobs_cancelled : int;  (** cancelled by drain *)
  rejected_full : int;  (** 503s from a full queue *)
  rejected_invalid : int;  (** 400/422s *)
  batches : int;
  max_batch : int;
  engines_created : int;
  engine_task_hits : int;  (** summed over live engines *)
  engine_task_misses : int;
  engine_reevals : int;  (** single-move re-evaluations, summed over live engines *)
  engine_reeval_incremental : int;  (** served by a dirty-cone replay *)
  engine_reeval_full : int;  (** fell back to a full sweep *)
  engine_reeval_cone_nodes : int;  (** dirty nodes recomputed, summed *)
  engine_reeval_max_cone : int;  (** largest incremental cone over live engines *)
  queue_depth : int;  (** current *)
}

val stats : t -> stats
(** Always-on counters (plain atomics — independent of {!Obs} gating). *)

val serve_forever : config -> unit
(** {!start}, then block inside an {!Experiments.Stop} scope until
    SIGINT/SIGTERM requests a stop, then drain via {!stop} and return —
    the [repro serve] main loop. Composes with campaign runs: both use
    the same process-wide signal scope stack. *)
