module Json = Experiments.Json

type t = {
  host : string;
  port : int;
  timeout_s : float;
  mutable conn : (Unix.file_descr * Http.reader) option;
}

let connect ?(host = "127.0.0.1") ?(timeout_s = 30.) ~port () =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  { host; port; timeout_s; conn = None }

let close t =
  match t.conn with
  | None -> ()
  | Some (fd, _) ->
    t.conn <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let dial t =
  match t.conn with
  | Some c -> c
  | None ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.port));
       if t.timeout_s > 0. then
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout_s
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    let c = (fd, Http.reader fd) in
    t.conn <- Some c;
    c

let once t ~headers ~meth ~path ~body =
  let fd, reader = dial t in
  match Http.write_request ~headers fd ~meth ~path ~body with
  | () -> Http.read_response reader
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> Error `Closed

let request t ~meth ~path ?(headers = []) ?(body = "") () =
  match once t ~headers ~meth ~path ~body with
  | Error `Closed ->
    (* stale keep-alive: redial once *)
    close t;
    once t ~headers ~meth ~path ~body
  | r -> r

let get t path = request t ~meth:"GET" ~path ()
let post t path body = request t ~meth:"POST" ~path ~body ()

(* ------------------------------------------------------------------ *)
(* Conveniences                                                        *)
(* ------------------------------------------------------------------ *)

let collapse what = function
  | Error e -> Error (what ^ ": " ^ Http.error_to_string e)
  | Ok (resp : Http.response) ->
    if resp.Http.status = 200 || resp.Http.status = 202 then Ok resp
    else
      Error
        (Printf.sprintf "%s: HTTP %d %s" what resp.Http.status
           (String.trim resp.Http.body))

let healthz t =
  match collapse "healthz" (get t "/healthz") with
  | Ok resp -> Ok resp.Http.body
  | Error _ as e -> e

let eval ?traceparent t job =
  let headers =
    match traceparent with None -> [] | Some tp -> [ ("traceparent", tp) ]
  in
  match
    collapse "eval" (request t ~meth:"POST" ~path:"/eval" ~headers
                       ~body:(Proto.job_to_json job) ())
  with
  | Ok resp -> Ok resp.Http.body
  | Error _ as e -> e

let submit t job =
  match collapse "submit" (post t "/jobs" (Proto.job_to_json job)) with
  | Error _ as e -> e
  | Ok resp -> (
    match Result.to_option (Json.parse resp.Http.body) with
    | Some j -> (
      match Option.bind (Json.mem "id" j) Json.str with
      | Some id -> Ok id
      | None -> Error "submit: response without a job id")
    | None -> Error "submit: unparsable response")

let job_status body =
  match Result.to_option (Json.parse body) with
  | Some j -> Option.bind (Json.mem "status" j) Json.str
  | None -> None

let wait ?(poll_s = 0.02) ?(timeout_s = 60.) t id =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match collapse "wait" (get t ("/jobs/" ^ id)) with
    | Error _ as e -> e
    | Ok resp -> (
      match job_status resp.Http.body with
      | Some ("queued" | "running") ->
        if Unix.gettimeofday () > deadline then Error ("wait: timed out on " ^ id)
        else begin
          Unix.sleepf poll_s;
          poll ()
        end
      | Some _ -> (
        match collapse "result" (get t ("/jobs/" ^ id ^ "/result")) with
        | Ok r when r.Http.status = 200 -> Ok r.Http.body
        | Ok r -> Error ("result: job " ^ id ^ " ended as " ^ String.trim r.Http.body)
        | Error _ as e -> e)
      | None -> Error "wait: unparsable status document")
  in
  poll ()
