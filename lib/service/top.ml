(* Live terminal view of a running evaluation service: polls
   [GET /metrics] (JSON form) and [GET /debug/requests], renders
   throughput, queue depth, engine-cache hit rate, a per-stage latency
   table and the most recent requests. Rates and stage quantiles are
   *deltas between polls* (bucket-count differences), so the display
   shows current behavior, not lifetime averages. *)

module Json = Experiments.Json

type config = {
  host : string;
  port : int;
  interval_s : float;
  iterations : int option; (* None = until killed *)
  plain : bool; (* no ANSI clear — append frames (CI, pipes) *)
}

let default_config =
  { host = "127.0.0.1"; port = 8080; interval_s = 1.0; iterations = None; plain = false }

(* ------------------------------------------------------------------ *)
(* Scrape                                                              *)
(* ------------------------------------------------------------------ *)

type hist = { bounds : float array; counts : int array; total : int }

type sample = {
  at_s : float; (* monotonic, for rate deltas *)
  requests : int;
  jobs_done : int;
  jobs_failed : int;
  queue_depth : int;
  queue_capacity : int option;
  task_hits : int;
  task_misses : int;
  stages : (string * hist) list; (* stage label -> histogram *)
  request_hist : hist option;
}

let ints_of what j =
  Option.bind (Json.mem what j) Json.to_int |> Option.value ~default:0

let hist_of_json j =
  let floats name =
    match Option.bind (Json.mem name j) Json.list_ with
    | None -> None
    | Some l ->
      let vs = List.filter_map Json.to_float l in
      if List.length vs = List.length l then Some (Array.of_list vs) else None
  in
  let ints name =
    match Option.bind (Json.mem name j) Json.list_ with
    | None -> None
    | Some l ->
      let vs = List.filter_map Json.to_int l in
      if List.length vs = List.length l then Some (Array.of_list vs) else None
  in
  match (floats "bounds", ints "counts", Option.bind (Json.mem "total" j) Json.to_int) with
  | Some bounds, Some counts, Some total -> Some { bounds; counts; total }
  | _ -> None

let sample_of_metrics body =
  match Json.parse body with
  | Error _ -> None
  | Ok doc ->
    let service = Option.value (Json.mem "service" doc) ~default:Json.Null in
    let histograms =
      match Option.bind (Json.mem "obs" doc) (Json.mem "histograms") with
      | Some (Json.Obj fields) -> fields
      | _ -> []
    in
    (* A sharded server exposes one stage family per shard
       ([service.stage_seconds{stage="eval",shard="k"}]); top shows the
       service-wide view, so merge every shard's histogram of a stage
       into one (bounds are the shared latency buckets). *)
    let merge a b =
      if Array.length a.counts <> Array.length b.counts then a
      else
        {
          bounds = a.bounds;
          counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
          total = a.total + b.total;
        }
    in
    let stages =
      List.fold_left
        (fun acc (name, j) ->
          match Obs.Openmetrics.split_name name with
          | "service.stage_seconds", (("stage", stage) :: _) -> (
            match hist_of_json j with
            | None -> acc
            | Some h -> (
              match List.assoc_opt stage acc with
              | None -> acc @ [ (stage, h) ]
              | Some prev ->
                List.map
                  (fun (s, v) -> if String.equal s stage then (s, merge prev h) else (s, v))
                  acc))
          | _ -> acc)
        [] histograms
    in
    let request_hist =
      Option.bind (List.assoc_opt "service.request_seconds" histograms) hist_of_json
    in
    Some
      {
        at_s = Obs.Clock.now_s ();
        requests = ints_of "requests" service;
        jobs_done = ints_of "jobs_done" service;
        jobs_failed = ints_of "jobs_failed" service;
        queue_depth = ints_of "queue_depth" service;
        queue_capacity = None;
        task_hits = ints_of "engine_task_hits" service;
        task_misses = ints_of "engine_task_misses" service;
        stages;
        request_hist;
      }

type req_row = {
  r_trace : string;
  r_meth : string;
  r_path : string;
  r_status : int;
  r_ms : float;
  r_cache : string;
}

let rows_of_debug body =
  match Json.parse body with
  | Error _ -> []
  | Ok doc -> (
    match Option.bind (Json.mem "requests" doc) Json.list_ with
    | None -> []
    | Some l ->
      List.filter_map
        (fun j ->
          let str name = Option.bind (Json.mem name j) Json.str in
          match (str "trace_id", str "method", str "path") with
          | Some r_trace, Some r_meth, Some r_path ->
            Some
              {
                r_trace;
                r_meth;
                r_path;
                r_status = ints_of "status" j;
                r_ms =
                  Option.bind (Json.mem "duration_ms" j) Json.to_float
                  |> Option.value ~default:nan;
                r_cache = Option.value (str "engine_cache") ~default:"-";
              }
          | _ -> None)
        l)

(* ------------------------------------------------------------------ *)
(* Delta quantiles                                                     *)
(* ------------------------------------------------------------------ *)

(* Quantile over the *difference* of two cumulative scrapes: what
   happened since the previous frame. Interpolates inside the winning
   bucket; the overflow bucket is pinned at the last bound. *)
let delta_quantile ~prev ~cur q =
  let n = Array.length cur.counts in
  let d =
    Array.init n (fun i ->
        let p =
          match prev with
          | Some p when Array.length p.counts = n -> p.counts.(i)
          | _ -> 0
        in
        Int.max 0 (cur.counts.(i) - p))
  in
  let total = Array.fold_left ( + ) 0 d in
  if total = 0 then nan
  else begin
    let rank = q *. float_of_int total in
    let rec walk i seen =
      if i >= n then Float.of_int n
      else
        let seen' = seen + d.(i) in
        if float_of_int seen' >= rank then
          let lo = if i = 0 then 0. else cur.bounds.(i - 1) in
          let hi = if i < Array.length cur.bounds then cur.bounds.(i)
                   else cur.bounds.(Array.length cur.bounds - 1) in
          let inside =
            if d.(i) = 0 then 0.
            else (rank -. float_of_int seen) /. float_of_int d.(i)
          in
          lo +. ((hi -. lo) *. Float.max 0. (Float.min 1. inside))
        else walk (i + 1) seen'
    in
    walk 0 0
  end

let delta_count ~prev ~cur =
  match prev with
  | Some p when Array.length p.counts = Array.length cur.counts ->
    Int.max 0 (cur.total - p.total)
  | _ -> cur.total

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let fmt_seconds s =
  if Float.is_nan s then "      -"
  else if s < 1e-3 then Printf.sprintf "%5.1fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%5.2fms" (s *. 1e3)
  else Printf.sprintf "%6.2fs" s

(* canonical request-lifecycle order; unknown stages sort after, alphabetically *)
let stage_order =
  [ "parse"; "decode"; "queue"; "batch"; "admit"; "eval"; "encode"; "write" ]

let stage_rank s =
  let rec go i = function
    | [] -> (List.length stage_order, s)
    | x :: _ when String.equal x s -> (i, s)
    | _ :: tl -> go (i + 1) tl
  in
  go 0 stage_order

let render ~host ~port ~(prev : sample option) (cur : sample) rows =
  let buf = Buffer.create 2048 in
  let dt =
    match prev with
    | Some p when cur.at_s > p.at_s -> cur.at_s -. p.at_s
    | _ -> nan
  in
  let rate get =
    match prev with
    | Some p when Float.is_finite dt && dt > 0. ->
      float_of_int (get cur - get p) /. dt
    | _ -> nan
  in
  let rps = rate (fun s -> s.requests) in
  let jps = rate (fun s -> s.jobs_done) in
  let hit_rate =
    let h, m =
      match prev with
      | Some p -> (cur.task_hits - p.task_hits, cur.task_misses - p.task_misses)
      | None -> (cur.task_hits, cur.task_misses)
    in
    if h + m <= 0 then nan else float_of_int h /. float_of_int (h + m)
  in
  let fmt_rate r = if Float.is_nan r then "-" else Printf.sprintf "%.1f/s" r in
  Buffer.add_string buf
    (Printf.sprintf "repro top — %s:%d\n" host port);
  Buffer.add_string buf
    (Printf.sprintf
       "requests %s   jobs %s   queue %d   cache-hit %s   failed %d\n\n"
       (fmt_rate rps) (fmt_rate jps) cur.queue_depth
       (if Float.is_nan hit_rate then "-" else Printf.sprintf "%.0f%%" (hit_rate *. 100.))
       cur.jobs_failed);
  let stages =
    List.sort
      (fun (a, _) (b, _) -> compare (stage_rank a) (stage_rank b))
      cur.stages
  in
  if stages <> [] then begin
    Buffer.add_string buf "stage       count      p50      p99\n";
    List.iter
      (fun (stage, cur_h) ->
        let prev_h =
          Option.bind prev (fun p -> List.assoc_opt stage p.stages)
        in
        Buffer.add_string buf
          (Printf.sprintf "%-9s %7d  %s  %s\n" stage
             (delta_count ~prev:prev_h ~cur:cur_h)
             (fmt_seconds (delta_quantile ~prev:prev_h ~cur:cur_h 0.50))
             (fmt_seconds (delta_quantile ~prev:prev_h ~cur:cur_h 0.99))))
      stages;
    (match cur.request_hist with
    | None -> ()
    | Some cur_h ->
      let prev_h = Option.bind prev (fun p -> p.request_hist) in
      Buffer.add_string buf
        (Printf.sprintf "%-9s %7d  %s  %s\n" "job" (delta_count ~prev:prev_h ~cur:cur_h)
           (fmt_seconds (delta_quantile ~prev:prev_h ~cur:cur_h 0.50))
           (fmt_seconds (delta_quantile ~prev:prev_h ~cur:cur_h 0.99))));
    Buffer.add_char buf '\n'
  end;
  if rows <> [] then begin
    Buffer.add_string buf "recent requests\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-16s %-4s %-18s %3d %9.2fms %s\n"
             (if String.length r.r_trace > 16 then String.sub r.r_trace 0 16
              else r.r_trace)
             r.r_meth
             (if String.length r.r_path > 18 then String.sub r.r_path 0 18
              else r.r_path)
             r.r_status r.r_ms r.r_cache))
      rows
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Loop                                                                *)
(* ------------------------------------------------------------------ *)

let scrape client =
  match Client.get client "/metrics" with
  | Ok resp when resp.Http.status = 200 -> (
    match sample_of_metrics resp.Http.body with
    | Some s ->
      let rows =
        match Client.get client "/debug/requests?limit=8" with
        | Ok r when r.Http.status = 200 -> rows_of_debug r.Http.body
        | _ -> []
      in
      Ok (s, rows)
    | None -> Error "unparsable /metrics document")
  | Ok resp -> Error (Printf.sprintf "/metrics: HTTP %d" resp.Http.status)
  | Error e -> Error ("/metrics: " ^ Http.error_to_string e)

let run config =
  let client = Client.connect ~host:config.host ~port:config.port () in
  let finally () = Client.close client in
  let clear = "\027[2J\027[H" in
  let rec loop prev remaining =
    if remaining = Some 0 then Ok ()
    else
      match scrape client with
      | Error _ as e -> e
      | Ok (cur, rows) ->
        let frame = render ~host:config.host ~port:config.port ~prev cur rows in
        if config.plain then print_string frame
        else begin
          print_string clear;
          print_string frame
        end;
        flush stdout;
        let remaining = Option.map (fun n -> n - 1) remaining in
        if remaining = Some 0 then Ok ()
        else begin
          Unix.sleepf (Float.max 0.05 config.interval_s);
          loop (Some cur) remaining
        end
  in
  Fun.protect ~finally (fun () -> loop None config.iterations)
