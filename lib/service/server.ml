module Json = Experiments.Json
module Stop = Experiments.Stop
module Engine = Makespan.Engine

type config = {
  host : string;
  port : int;
  queue_capacity : int;
  conn_domains : int;
  workers : int;
  conn_admit : bool;
  limits : Http.limits;
  engine_cache : int;
  auto_worker : bool;
  drain_grace_s : float;
  slow_ms : float option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    queue_capacity = 64;
    conn_domains = 4;
    workers = 1;
    conn_admit = false;
    limits = Http.default_limits;
    engine_cache = 8;
    auto_worker = true;
    drain_grace_s = 5.0;
    slow_ms = None;
  }

type jstate =
  | Queued
  | Running
  | Done of string
  | Failed of string
  | Invalid of string  (* context build failed on the worker; 422 *)
  | Expired
  | Cancelled

type jrec = {
  id : string;
  spec : Proto.job;
  key : string;
  context : Proto.context option;
      (* [Some] only under [conn_admit] (the pre-fix A/B baseline);
         normally the owning worker materializes it in its "admit" stage *)
  shard : int;
  state : jstate Atomic.t;
  deadline : float option;
      (* absolute MONOTONIC seconds (Obs.Clock); queue-admission only.
         Wall clock would let an NTP step mass-expire the queue. *)
  flight : Obs.Flight.record;  (* the request that submitted the job *)
}

(* Always-on counters — plain atomics, independent of Obs gating. *)
type counters = {
  c_requests : int Atomic.t;
  c_submitted : int Atomic.t;
  c_done : int Atomic.t;
  c_failed : int Atomic.t;
  c_expired : int Atomic.t;
  c_cancelled : int Atomic.t;
  c_rejected_full : int Atomic.t;
  c_rejected_invalid : int Atomic.t;
  c_rejected_draining : int Atomic.t;
  c_batches : int Atomic.t;
  c_max_batch : int Atomic.t;
  c_engines_created : int Atomic.t;
}

type stats = {
  requests : int;
  jobs_submitted : int;
  jobs_done : int;
  jobs_failed : int;
  jobs_expired : int;
  jobs_cancelled : int;
  rejected_full : int;
  rejected_invalid : int;
  rejected_draining : int;
  batches : int;
  max_batch : int;
  engines_created : int;
  engine_task_hits : int;
  engine_task_misses : int;
  engine_reevals : int;
  engine_reeval_incremental : int;
  engine_reeval_full : int;
  engine_reeval_full_cone : int;
  engine_reeval_full_backend : int;
  engine_reeval_cone_nodes : int;
  engine_reeval_max_cone : int;
  queue_depth : int;
  workers : int;
  shard_jobs : int array;
  shard_depth : int array;
}

(* One evaluation shard: a private job queue, a private engine LRU and
   (multi-worker auto mode) a private slice of the evaluation pool.
   Nothing here is shared between worker domains, so N workers never
   contend on a queue mutex, an engine mutex or the shared pool's
   submit lock. *)
type shard = {
  index : int;
  mu : Mutex.t;
  cond : Condition.t;
  jobs : jrec Queue.t;
  emu : Mutex.t;  (* engine LRU, MRU first *)
  mutable engines : (string * Engine.t) list;
  mutable pool : Parallel.Pool.t option;  (* None → Pool.shared *)
  sc_jobs : int Atomic.t;  (* jobs evaluated on this shard *)
  sc_engines : int Atomic.t;  (* engines built on this shard *)
  g_depth : Obs.Metrics.gauge;  (* service.queue_depth{shard="k"} *)
}

type t = {
  config : config;
  lsock : Unix.file_descr;
  bound_port : int;
  draining : bool Atomic.t;
  (* accepted connections awaiting a handler *)
  cmu : Mutex.t;
  ccond : Condition.t;
  conns : Unix.file_descr Queue.t;
  shards : shard array;
  (* id table + finished ring, shared across shards. Lock order: a
     shard's [mu] may be held when taking [tmu], never the reverse. *)
  tmu : Mutex.t;
  table : (string, jrec) Hashtbl.t;
  finished : string Queue.t;  (* terminal-state ids, oldest first *)
  next_id : int Atomic.t;
  c : counters;
  mutable domains : unit Domain.t list;
  stopped : bool Atomic.t;
  (* Obs instruments (live only when Obs.Metrics is enabled) *)
  h_latency : Obs.Metrics.histogram;
  h_batch : Obs.Metrics.histogram;
}

let max_finished_kept = 1024
let idle_poll_s = 0.25

let counters () =
  {
    c_requests = Atomic.make 0;
    c_submitted = Atomic.make 0;
    c_done = Atomic.make 0;
    c_failed = Atomic.make 0;
    c_expired = Atomic.make 0;
    c_cancelled = Atomic.make 0;
    c_rejected_full = Atomic.make 0;
    c_rejected_invalid = Atomic.make 0;
    c_rejected_draining = Atomic.make 0;
    c_batches = Atomic.make 0;
    c_max_batch = Atomic.make 0;
    c_engines_created = Atomic.make 0;
  }

let atomic_max a v =
  let rec go () =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then go ()
  in
  go ()

let port t = t.bound_port

(* Consistent job routing: same batch key → same shard, always, so
   same-key batching and per-base reeval sessions keep their affinity
   without any cross-shard engine sharing. *)
let shard_of_key t key = Hashtbl.hash key mod Array.length t.shards

(* ------------------------------------------------------------------ *)
(* Clocks                                                              *)
(* ------------------------------------------------------------------ *)

(* Queue deadlines are measured on the monotonic clock ({!Obs.Clock}):
   an NTP step must neither mass-expire nor immortalize queued jobs.
   The only wall-clock reading the server still owns is the display
   timestamp on flight records; [set_wall_offset_for_tests] skews it to
   simulate such a step, and the deadline tests assert expiry behavior
   depends on monotonic elapsed time alone. *)
let wall_offset_for_tests = Atomic.make 0.
let set_wall_offset_for_tests s = Atomic.set wall_offset_for_tests s
let wall_now () = Unix.gettimeofday () +. Atomic.get wall_offset_for_tests

(* ------------------------------------------------------------------ *)
(* Job lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

(* Record a job's terminal transition; evict the oldest finished jobs
   so the table stays bounded. Callers already performed the CAS. *)
let finished t j =
  Mutex.lock t.tmu;
  Queue.push j.id t.finished;
  while Queue.length t.finished > max_finished_kept do
    Hashtbl.remove t.table (Queue.pop t.finished)
  done;
  Mutex.unlock t.tmu

let expire_if_due t j =
  match j.deadline with
  | Some d
    when Obs.Clock.now_s () > d && Atomic.compare_and_set j.state Queued Expired ->
    Atomic.incr t.c.c_expired;
    finished t j;
    true
  | _ -> ( match Atomic.get j.state with Expired -> true | _ -> false)

type submit_error =
  [ `Invalid of int * string  (* HTTP status + message *)
  | `Full
  | `Draining ]

(* [header_traced] says whether the request already carried a
   [traceparent] header — a valid [trace] field in the job body only
   takes over when it did not (the header is the more specific signal).

   The connection domain does only the cheap half of admission: decode,
   batch-key extraction ({!Proto.key_of_job}, no workload generation)
   and the deadline stamp. The expensive half — [Proto.context_of_job],
   the ~50 ms workload/platform build that used to fight the evaluation
   pool for the minor heap — runs on the job's owning worker as its
   "admit" stage. [conn_admit] restores the pre-fix placement so the
   bench can measure the A/B. *)
let submit t fl ~header_traced body : (jrec, submit_error) result =
  let decoded =
    Obs.Flight.timed ~record:fl ~stage:"decode" (fun () -> Proto.job_of_json body)
  in
  match decoded with
  | Error e ->
    Atomic.incr t.c.c_rejected_invalid;
    Error (`Invalid (400, e))
  | Ok spec -> (
    let context =
      if not t.config.conn_admit then Ok None
      else
        Obs.Flight.timed ~record:fl ~stage:"admit" (fun () ->
            Result.map Option.some (Proto.context_of_job spec))
    in
    match context with
    | Error e ->
      Atomic.incr t.c.c_rejected_invalid;
      Error (`Invalid (422, e))
    | Ok context ->
      (match spec.Proto.trace with
      | Some tid when not header_traced -> fl.Obs.Flight.trace_id <- tid
      | _ -> ());
      let key =
        match context with
        | Some c -> c.Proto.key
        | None -> Proto.key_of_job spec
      in
      let deadline =
        Option.map
          (fun ms -> Obs.Clock.now_s () +. (float_of_int ms /. 1000.))
          spec.Proto.deadline_ms
      in
      let id = Printf.sprintf "job-%06d" (Atomic.fetch_and_add t.next_id 1) in
      let shard = shard_of_key t key in
      let sh = t.shards.(shard) in
      let j =
        { id; spec; key; context; shard; state = Atomic.make Queued; deadline; flight = fl }
      in
      Mutex.lock sh.mu;
      let verdict =
        if Atomic.get t.draining then Error `Draining
        else if Queue.length sh.jobs >= t.config.queue_capacity then Error `Full
        else begin
          Queue.push j sh.jobs;
          (* stamp only admitted jobs (a rejected request must not carry
             a dangling open "queue" stage), and under the shard lock so
             the stamp is in place before the worker can pop the job *)
          Obs.Flight.mark_queued fl;
          Ok j
        end
      in
      let depth = Queue.length sh.jobs in
      (match verdict with Ok _ -> Condition.signal sh.cond | Error _ -> ());
      Mutex.unlock sh.mu;
      (match verdict with
      | Ok _ ->
        Mutex.lock t.tmu;
        Hashtbl.replace t.table id j;
        Mutex.unlock t.tmu;
        Atomic.incr t.c.c_submitted;
        Obs.Metrics.set sh.g_depth (float_of_int depth)
      | Error `Full -> Atomic.incr t.c.c_rejected_full
      | Error `Draining -> Atomic.incr t.c.c_rejected_draining
      | Error _ -> ());
      verdict)

(* Pop the oldest job plus every queued job sharing its key, preserving
   the order of what stays behind. Caller holds the shard's [mu]. *)
let pop_batch_locked sh =
  if Queue.is_empty sh.jobs then []
  else begin
    let first = Queue.pop sh.jobs in
    let rest = List.of_seq (Queue.to_seq sh.jobs) in
    Queue.clear sh.jobs;
    let same, other = List.partition (fun j -> String.equal j.key first.key) rest in
    List.iter (fun j -> Queue.push j sh.jobs) other;
    first :: same
  end

(* Engine acquisition IS admission now: on an LRU hit it is a few list
   operations; on a miss the worker materializes the context (the
   expensive generation step deferred off the connection domain) and
   builds the engine. Only this shard's worker touches this LRU, the
   mutex is for [stats] readers. *)
let engine_for t sh j =
  Mutex.lock sh.emu;
  match List.assoc_opt j.key sh.engines with
  | Some e ->
    sh.engines <- (j.key, e) :: List.remove_assoc j.key sh.engines;
    Mutex.unlock sh.emu;
    Ok (e, true)
  | None -> (
    Mutex.unlock sh.emu;
    let context =
      match j.context with
      | Some c -> Ok c  (* conn_admit: built on the connection domain *)
      | None -> Proto.context_of_job j.spec
    in
    match context with
    | Error e -> Error e
    | Ok context ->
      let e =
        Engine.create ~graph:context.Proto.graph ~platform:context.Proto.platform
          ~model:context.Proto.model
      in
      Atomic.incr t.c.c_engines_created;
      Atomic.incr sh.sc_engines;
      Mutex.lock sh.emu;
      let keep = List.filteri (fun i _ -> i < t.config.engine_cache - 1) sh.engines in
      sh.engines <- (j.key, e) :: keep;
      Mutex.unlock sh.emu;
      Ok (e, false))

let run_batch t sh batch =
  match batch with
  | [] -> 0
  | _ ->
    let shard = sh.index in
    Atomic.incr t.c.c_batches;
    atomic_max t.c.c_max_batch (List.length batch);
    Obs.Metrics.observe t.h_batch (float_of_int (List.length batch));
    let pop_us = Obs.Clock.now_us () in
    List.iter
      (fun j ->
        if not (expire_if_due t j) then
          if Atomic.compare_and_set j.state Queued Running then begin
            let fl = j.flight in
            (* "queue" = enqueue → batch pop; "batch" = pop → this job's
               turn (time spent behind same-key peers in the batch) *)
            if fl.Obs.Flight.queued_us > 0. then
              Obs.Flight.record_stage ~shard (Some fl) ~stage:"queue"
                fl.Obs.Flight.queued_us pop_us;
            let t_turn = Obs.Clock.now_us () in
            Obs.Flight.record_stage ~shard (Some fl) ~stage:"batch" pop_us t_turn;
            (* admission, relocated: context + engine acquisition on the
               owning worker. Warm shards skip generation entirely. *)
            match
              Obs.Flight.timed ~record:fl ~shard ~stage:"admit" (fun () ->
                  engine_for t sh j)
            with
            | Error msg ->
              Atomic.set j.state (Invalid msg);
              Atomic.incr t.c.c_rejected_invalid;
              finished t j
            | Ok (engine, cache_hit) ->
              Obs.Flight.set_cache fl
                (if cache_hit then Obs.Flight.Hit else Obs.Flight.Miss);
              let t0 = Obs.Clock.now_us () in
              (match Proto.run_job ~flight:fl ~shard ?pool:sh.pool ~engine j.spec with
              | body ->
                Atomic.set j.state (Done body);
                Atomic.incr t.c.c_done;
                Atomic.incr sh.sc_jobs
              | exception exn ->
                Atomic.set j.state (Failed (Printexc.to_string exn));
                Atomic.incr t.c.c_failed);
              Obs.Metrics.observe_ex t.h_latency ~exemplar:fl.Obs.Flight.trace_id
                ((Obs.Clock.now_us () -. t0) *. 1e-6);
              finished t j
          end)
      batch;
    List.length batch

let step t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.mu;
      let batch = pop_batch_locked sh in
      let depth = Queue.length sh.jobs in
      Mutex.unlock sh.mu;
      Obs.Metrics.set sh.g_depth (float_of_int depth);
      acc + run_batch t sh batch)
    0 t.shards

(* Worker: drain this shard's batches until draining AND empty
   (graceful drain runs the queue down before the grace timer cancels
   leftovers). *)
let worker_loop t sh =
  let rec next () =
    Mutex.lock sh.mu;
    let rec wait () =
      if not (Queue.is_empty sh.jobs) then pop_batch_locked sh
      else if Atomic.get t.draining then []
      else begin
        Condition.wait sh.cond sh.mu;
        wait ()
      end
    in
    let batch = wait () in
    let depth = Queue.length sh.jobs in
    Mutex.unlock sh.mu;
    match batch with
    | [] -> ()
    | batch ->
      Obs.Metrics.set sh.g_depth (float_of_int depth);
      ignore (run_batch t sh batch);
      next ()
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Stats / introspection documents                                     *)
(* ------------------------------------------------------------------ *)

let stats t =
  let ( task_hits,
        task_misses,
        reevals,
        reeval_inc,
        reeval_full_cone,
        reeval_full_backend,
        cone_nodes,
        max_cone ) =
    Array.fold_left
      (fun acc sh ->
        Mutex.lock sh.emu;
        let totals =
          List.fold_left
            (fun (h, m, r, ri, rfc, rfb, cn, mc) (_, e) ->
              let s = Engine.stats e in
              ( h + s.Engine.task_hits,
                m + s.Engine.task_misses,
                r + s.Engine.reevals,
                ri + s.Engine.reeval_incremental,
                rfc + s.Engine.reeval_full_cone,
                rfb + s.Engine.reeval_full_backend,
                cn + s.Engine.reeval_cone_nodes,
                Int.max mc s.Engine.reeval_max_cone ))
            acc sh.engines
        in
        Mutex.unlock sh.emu;
        totals)
      (0, 0, 0, 0, 0, 0, 0, 0) t.shards
  in
  let shard_depth =
    Array.map
      (fun sh ->
        Mutex.lock sh.mu;
        let d = Queue.length sh.jobs in
        Mutex.unlock sh.mu;
        d)
      t.shards
  in
  {
    requests = Atomic.get t.c.c_requests;
    jobs_submitted = Atomic.get t.c.c_submitted;
    jobs_done = Atomic.get t.c.c_done;
    jobs_failed = Atomic.get t.c.c_failed;
    jobs_expired = Atomic.get t.c.c_expired;
    jobs_cancelled = Atomic.get t.c.c_cancelled;
    rejected_full = Atomic.get t.c.c_rejected_full;
    rejected_invalid = Atomic.get t.c.c_rejected_invalid;
    rejected_draining = Atomic.get t.c.c_rejected_draining;
    batches = Atomic.get t.c.c_batches;
    max_batch = Atomic.get t.c.c_max_batch;
    engines_created = Atomic.get t.c.c_engines_created;
    engine_task_hits = task_hits;
    engine_task_misses = task_misses;
    engine_reevals = reevals;
    engine_reeval_incremental = reeval_inc;
    engine_reeval_full = reeval_full_cone + reeval_full_backend;
    engine_reeval_full_cone = reeval_full_cone;
    engine_reeval_full_backend = reeval_full_backend;
    engine_reeval_cone_nodes = cone_nodes;
    engine_reeval_max_cone = max_cone;
    queue_depth = Array.fold_left ( + ) 0 shard_depth;
    workers = Array.length t.shards;
    shard_jobs = Array.map (fun sh -> Atomic.get sh.sc_jobs) t.shards;
    shard_depth;
  }

let num_of_int i = Json.Num (string_of_int i)

let healthz_body t =
  let s = stats t in
  Json.to_string
    (Json.Obj
       [
         ("status", Json.Str (if Atomic.get t.draining then "draining" else "ok"));
         ("version", Json.Str Build_info.version);
         ("workers", num_of_int s.workers);
         ("queue_depth", num_of_int s.queue_depth);
         ("queue_capacity", num_of_int t.config.queue_capacity);
         ("jobs_done", num_of_int s.jobs_done);
       ])
  ^ "\n"

let metrics_body t =
  let s = stats t in
  let q p =
    let snap = Obs.Metrics.snapshot () in
    match List.assoc_opt "service.request_seconds" snap.Obs.Metrics.histograms with
    | Some h when h.Obs.Metrics.total > 0 ->
      (* sliding window: the current p50/p99, not the lifetime average *)
      Json.Num (Json.float_lit (Obs.Metrics.window_quantile h p))
    | _ -> Json.Null
  in
  let int_arr a = Json.Arr (Array.to_list (Array.map num_of_int a)) in
  let service =
    Json.Obj
      [
        ("requests", num_of_int s.requests);
        ("jobs_submitted", num_of_int s.jobs_submitted);
        ("jobs_done", num_of_int s.jobs_done);
        ("jobs_failed", num_of_int s.jobs_failed);
        ("jobs_expired", num_of_int s.jobs_expired);
        ("jobs_cancelled", num_of_int s.jobs_cancelled);
        ("rejected_full", num_of_int s.rejected_full);
        ("rejected_invalid", num_of_int s.rejected_invalid);
        ("rejected_draining", num_of_int s.rejected_draining);
        ("batches", num_of_int s.batches);
        ("max_batch", num_of_int s.max_batch);
        ("queue_depth", num_of_int s.queue_depth);
        ("workers", num_of_int s.workers);
        ("shard_jobs", int_arr s.shard_jobs);
        ("shard_depth", int_arr s.shard_depth);
        ("engines_created", num_of_int s.engines_created);
        ("engine_task_hits", num_of_int s.engine_task_hits);
        ("engine_task_misses", num_of_int s.engine_task_misses);
        ("engine_reevals", num_of_int s.engine_reevals);
        ("engine_reeval_incremental", num_of_int s.engine_reeval_incremental);
        ("engine_reeval_full", num_of_int s.engine_reeval_full);
        ("engine_reeval_full_cone", num_of_int s.engine_reeval_full_cone);
        ("engine_reeval_full_backend", num_of_int s.engine_reeval_full_backend);
        ("engine_reeval_cone_nodes", num_of_int s.engine_reeval_cone_nodes);
        ("engine_reeval_max_cone", num_of_int s.engine_reeval_max_cone);
        ("latency_p50_s", q 0.5);
        ("latency_p99_s", q 0.99);
      ]
  in
  (* The Obs report is already a JSON document — splice it verbatim. *)
  Printf.sprintf "{\"service\":%s,\"obs\":%s}\n" (Json.to_string service)
    (String.trim (Obs.Report.json ()))

(* OpenMetrics exposition: the always-on service counters plus every
   Obs instrument. The obs snapshot already owns the families
   [service_request_seconds], [service_batch_size], [service_queue_depth]
   and [service_stage_seconds]; the names below must stay disjoint from
   those or the exposition would carry a duplicate [# TYPE]. *)
let openmetrics_content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"

let openmetrics_body t =
  let s = stats t in
  let counter ?(labels = []) family help v =
    {
      Obs.Openmetrics.family;
      labels;
      help = Some help;
      data = Obs.Openmetrics.Counter (float_of_int v);
    }
  in
  let gauge ?(labels = []) family help v =
    {
      Obs.Openmetrics.family;
      labels;
      help = Some help;
      data = Obs.Openmetrics.Gauge (float_of_int v);
    }
  in
  let per_shard mk family help values =
    Array.to_list
      (Array.mapi (fun k v -> mk [ ("shard", string_of_int k) ] family help v) values)
  in
  let counter_l labels family help v = counter ~labels family help v in
  let gauge_l labels family help v = gauge ~labels family help v in
  let service =
    [
      counter "service_requests" "HTTP requests parsed (any route)" s.requests;
      counter "service_jobs_submitted" "Jobs admitted to the queue" s.jobs_submitted;
      counter "service_jobs_done" "Jobs evaluated successfully" s.jobs_done;
      counter "service_jobs_failed" "Jobs that raised during evaluation" s.jobs_failed;
      counter "service_jobs_expired" "Jobs whose deadline elapsed while queued"
        s.jobs_expired;
      counter "service_jobs_cancelled" "Jobs cancelled by drain" s.jobs_cancelled;
      counter "service_rejected_full" "Submissions refused by a full queue"
        s.rejected_full;
      counter "service_rejected_invalid" "Submissions refused as invalid (400/422)"
        s.rejected_invalid;
      counter "service_rejected_draining" "Submissions refused because of drain"
        s.rejected_draining;
      counter "service_batches" "Same-key batches popped by the workers" s.batches;
      counter "service_engines_created" "Engines built (LRU misses)" s.engines_created;
      counter "service_engine_task_hits" "Task-level cache hits over live engines"
        s.engine_task_hits;
      counter "service_engine_task_misses" "Task-level cache misses over live engines"
        s.engine_task_misses;
      counter "service_engine_reevals" "Single-move re-evaluations over live engines"
        s.engine_reevals;
      counter "service_engine_reevals_incremental"
        "Re-evaluations served by a dirty-cone replay" s.engine_reeval_incremental;
      counter "service_engine_reevals_full"
        "Re-evaluations that fell back to a full sweep" s.engine_reeval_full;
      counter "service_engine_reevals_full_cone"
        "Full-sweep fallbacks whose dirty cone exceeded the cutoff"
        s.engine_reeval_full_cone;
      counter "service_engine_reevals_full_backend"
        "Full-sweep fallbacks on non-incremental backends" s.engine_reeval_full_backend;
      counter "service_engine_reeval_cone_nodes"
        "Dirty nodes recomputed across incremental re-evaluations"
        s.engine_reeval_cone_nodes;
      gauge "service_queue_capacity" "Per-shard job-queue bound" t.config.queue_capacity;
      gauge "service_workers" "Evaluation worker shards" s.workers;
      gauge "service_max_batch" "Largest batch so far" s.max_batch;
      gauge "service_engine_reeval_max_cone" "Largest incremental dirty cone seen"
        s.engine_reeval_max_cone;
    ]
    @ per_shard counter_l "service_shard_jobs" "Jobs evaluated per shard" s.shard_jobs
    @ per_shard counter_l "service_shard_engines"
        "Engines built per shard (context materializations)"
        (Array.map (fun sh -> Atomic.get sh.sc_engines) t.shards)
    @ per_shard gauge_l "service_shard_depth" "Queued jobs per shard" s.shard_depth
  in
  Obs.Openmetrics.render
    (service @ Obs.Openmetrics.of_snapshot (Obs.Metrics.snapshot ()))

(* ------------------------------------------------------------------ *)
(* HTTP plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let error_body msg = Json.to_string (Json.Obj [ ("error", Json.Str msg) ]) ^ "\n"

let job_status_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Invalid _ -> "invalid"
  | Expired -> "expired"
  | Cancelled -> "cancelled"

let job_envelope j =
  let state = Atomic.get j.state in
  let base = [ ("id", Json.Str j.id); ("status", Json.Str (job_status_name state)) ] in
  let extra =
    match state with
    | Failed e | Invalid e -> [ ("error", Json.Str e) ]
    | _ -> []
  in
  Json.to_string (Json.Obj (base @ extra)) ^ "\n"

(* Wait for a sync job to reach a terminal state. OCaml's [Condition]
   has no timed wait, so poll the state atomic; 2 ms keeps sync latency
   negligible next to an evaluation. *)
let wait_terminal t j =
  let rec go () =
    match Atomic.get j.state with
    | Done body -> `Done body
    | Failed e -> `Failed e
    | Invalid e -> `Invalid e
    | Expired -> `Expired
    | Cancelled -> `Cancelled
    | Queued | Running ->
      if expire_if_due t j then `Expired
      else begin
        Unix.sleepf 0.002;
        go ()
      end
  in
  go ()

let lookup_job t id =
  Mutex.lock t.tmu;
  let j = Hashtbl.find_opt t.table id in
  Mutex.unlock t.tmu;
  j

type reply = { status : int; headers : (string * string) list; body : string }

let reply ?(headers = []) status body = { status; headers; body }

let submit_error_reply = function
  | `Invalid (status, msg) -> reply status (error_body msg)
  | `Full -> reply ~headers:[ ("retry-after", "1") ] 503 (error_body "queue full")
  | `Draining -> reply ~headers:[ ("retry-after", "5") ] 503 (error_body "draining")

(* Case-sensitive substring test — media types in Accept are expected
   lowercase; good enough for content negotiation on one literal. *)
let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let wants_openmetrics (req : Http.request) =
  List.assoc_opt "format" req.Http.query = Some "openmetrics"
  ||
  match Http.header "accept" req.Http.headers with
  | Some a -> contains ~needle:"application/openmetrics-text" a
  | None -> false

let handle t fl ~header_traced (req : Http.request) =
  Atomic.incr t.c.c_requests;
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> reply 200 (healthz_body t)
  | "GET", "/metrics" ->
    if wants_openmetrics req then
      reply
        ~headers:[ ("content-type", openmetrics_content_type) ]
        200 (openmetrics_body t)
    else reply 200 (metrics_body t)
  | "GET", "/debug/requests" -> (
    let limit =
      match Option.bind (List.assoc_opt "limit" req.Http.query) int_of_string_opt with
      | Some n when n > 0 -> Int.min n Obs.Flight.capacity
      | _ -> 64
    in
    match List.assoc_opt "format" req.Http.query with
    | Some "chrome" ->
      let trace_id = List.assoc_opt "trace" req.Http.query in
      reply 200 (Obs.Flight.chrome ~limit ?trace_id ())
    | _ -> reply 200 (Obs.Flight.json ~limit ()))
  | "POST", "/eval" -> (
    match submit t fl ~header_traced req.Http.body with
    | Error e -> submit_error_reply e
    | Ok j -> (
      match wait_terminal t j with
      | `Done body -> reply 200 body
      | `Failed e -> reply 500 (error_body e)
      | `Invalid e -> reply 422 (error_body e)
      | `Expired -> reply 504 (error_body "deadline expired while queued")
      | `Cancelled -> reply 503 (error_body "cancelled by drain")))
  | "POST", "/jobs" -> (
    match submit t fl ~header_traced req.Http.body with
    | Error e -> submit_error_reply e
    | Ok j -> reply 202 (job_envelope j))
  | "GET", path when String.length path > 6 && String.sub path 0 6 = "/jobs/" -> (
    let rest = String.sub path 6 (String.length path - 6) in
    let id, want_result =
      match String.index_opt rest '/' with
      | Some i when String.sub rest i (String.length rest - i) = "/result" ->
        (String.sub rest 0 i, true)
      | _ -> (rest, false)
    in
    match lookup_job t id with
    | None -> reply 404 (error_body "unknown job")
    | Some j when not want_result -> reply 200 (job_envelope j)
    | Some j -> (
      (* /result serves the bare stored document so clients (and the CI
         smoke test) can compare it byte-for-byte with [repro eval]. *)
      match Atomic.get j.state with
      | Done body -> reply 200 body
      | Failed e -> reply 500 (error_body e)
      | Invalid e -> reply 422 (error_body e)
      | Expired -> reply 504 (error_body "deadline expired while queued")
      | Cancelled -> reply 503 (error_body "cancelled by drain")
      | Queued | Running -> reply 202 (job_envelope j)))
  | _, ("/healthz" | "/metrics" | "/eval" | "/jobs" | "/debug/requests") ->
    reply 405 (error_body "method not allowed")
  | _ -> reply 404 (error_body "not found")

let serve_conn t fd =
  let r = Http.reader fd in
  let rec loop () =
    (* Wait for the first byte before starting the parse clock: idle
       keep-alive time must not count as the "parse" stage. Skip the
       select when bytes are already buffered (pipelined requests). *)
    if Http.buffered r > 0 then request ()
    else
      match Unix.select [ fd ] [] [] idle_poll_s with
      | [], _, _ -> if not (Atomic.get t.draining) then loop ()
      | _ -> request ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
  and request () =
    let t_parse0 = Obs.Clock.now_us () in
    match Http.read_request ~limits:t.config.limits r with
    | Ok req ->
      let t_parse1 = Obs.Clock.now_us () in
      let header_trace =
        Option.bind
          (Http.header "traceparent" req.Http.headers)
          (fun tp ->
            Option.map
              (fun tr -> tr.Obs.Trace.trace_id)
              (Obs.Trace.of_traceparent tp))
      in
      let fl =
        Obs.Flight.create ?trace_id:header_trace ~started_wall_s:(wall_now ())
          ~meth:req.Http.meth ~path:req.Http.path ()
      in
      fl.Obs.Flight.bytes_in <- String.length req.Http.body;
      Obs.Flight.record_stage (Some fl) ~stage:"parse" t_parse0 t_parse1;
      let { status; headers; body } =
        handle t fl ~header_traced:(header_trace <> None) req
      in
      fl.Obs.Flight.bytes_out <- String.length body;
      let keep = Http.keep_alive req && not (Atomic.get t.draining) in
      let headers = if keep then headers else ("connection", "close") :: headers in
      (match
         Obs.Flight.timed ~record:fl ~stage:"write" (fun () ->
             Http.write_response ~headers fd ~status body)
       with
      | () ->
        Obs.Flight.finish ?slow_ms:t.config.slow_ms fl ~status;
        if keep then loop ()
      | exception Unix.Unix_error _ ->
        Obs.Flight.finish ?slow_ms:t.config.slow_ms fl ~status)
    | Error `Timeout when Http.buffered r = 0 ->
      (* idle keep-alive connection: poll again unless draining *)
      if not (Atomic.get t.draining) then loop ()
    | Error `Timeout -> ( try Http.write_response fd ~status:408 (error_body "request timeout") with Unix.Unix_error _ -> ())
    | Error `Closed -> ()
    | Error `Header_too_large ->
      (try Http.write_response fd ~status:431 (error_body "header too large")
       with Unix.Unix_error _ -> ())
    | Error `Body_too_large ->
      (try Http.write_response fd ~status:413 (error_body "body too large")
       with Unix.Unix_error _ -> ())
    | Error (`Bad_request msg) -> (
      try Http.write_response fd ~status:400 (error_body msg)
      with Unix.Unix_error _ -> ())
  in
  (try loop () with exn ->
    (* a handler bug must not kill the domain; answer 500 best-effort *)
    (try Http.write_response fd ~status:500 (error_body (Printexc.to_string exn))
     with _ -> ()));
  try Unix.close fd with Unix.Unix_error _ -> ()

let conn_worker t =
  let rec next () =
    Mutex.lock t.cmu;
    let rec wait () =
      if not (Queue.is_empty t.conns) then Some (Queue.pop t.conns)
      else if Atomic.get t.draining then None
      else begin
        Condition.wait t.ccond t.cmu;
        wait ()
      end
    in
    let fd = wait () in
    Mutex.unlock t.cmu;
    match fd with
    | None -> ()
    | Some fd ->
      serve_conn t fd;
      next ()
  in
  next ()

let acceptor t =
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      (match Unix.select [ t.lsock ] [] [] idle_poll_s with
      | [ _ ], _, _ -> (
        match Unix.accept t.lsock with
        | fd, _ ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO idle_poll_s;
          Mutex.lock t.cmu;
          Queue.push fd t.conns;
          Condition.signal t.ccond;
          Mutex.unlock t.cmu
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start (config : config) =
  (* A peer closing mid-response must surface as EPIPE, not kill us. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  Obs.Metrics.set_enabled true;
  let workers = Int.max 1 config.workers in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lsock Unix.SO_REUSEADDR true;
     Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lsock 64
   with e ->
     (try Unix.close lsock with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let shards =
    Array.init workers (fun index ->
        {
          index;
          mu = Mutex.create ();
          cond = Condition.create ();
          jobs = Queue.create ();
          emu = Mutex.create ();
          engines = [];
          pool = None;
          sc_jobs = Atomic.make 0;
          sc_engines = Atomic.make 0;
          g_depth =
            Obs.Metrics.gauge
              (Printf.sprintf "service.queue_depth{shard=\"%d\"}" index);
        })
  in
  let t =
    {
      config = { config with workers };
      lsock;
      bound_port;
      draining = Atomic.make false;
      cmu = Mutex.create ();
      ccond = Condition.create ();
      conns = Queue.create ();
      shards;
      tmu = Mutex.create ();
      table = Hashtbl.create 64;
      finished = Queue.create ();
      next_id = Atomic.make 0;
      c = counters ();
      domains = [];
      stopped = Atomic.make false;
      h_latency =
        Obs.Metrics.histogram ~buckets:Obs.Metrics.latency_buckets
          "service.request_seconds";
      h_batch =
        Obs.Metrics.histogram
          ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
          "service.batch_size";
    }
  in
  (* Warm the shared pool before going multi-domain (it is lazily
     created and registers its at_exit teardown exactly once). *)
  ignore (Parallel.Pool.shared ());
  (* Multi-worker auto mode: give each shard a private slice of the
     evaluation cores. One shared pool would serialize the shards on
     its submit lock — the exact cross-domain contention this tier
     exists to remove. *)
  if config.auto_worker && workers > 1 then begin
    let per_shard = Int.max 1 (Parallel.Pool.default_domains () / workers) in
    Array.iter
      (fun sh -> sh.pool <- Some (Parallel.Pool.create ~domains:per_shard ()))
      t.shards
  end;
  let spawned = ref [ Domain.spawn (fun () -> acceptor t) ] in
  for _ = 1 to config.conn_domains do
    spawned := Domain.spawn (fun () -> conn_worker t) :: !spawned
  done;
  if config.auto_worker then
    Array.iter
      (fun sh -> spawned := Domain.spawn (fun () -> worker_loop t sh) :: !spawned)
      t.shards;
  t.domains <- !spawned;
  t

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    (* Give queued jobs [drain_grace_s] to finish before draining flips
       handlers off — sync waiters still poll their job atomics. The
       grace timer runs on the monotonic clock, same as deadlines. *)
    let deadline = Obs.Clock.now_s () +. t.config.drain_grace_s in
    let all_empty () =
      Array.for_all
        (fun sh ->
          Mutex.lock sh.mu;
          let e = Queue.is_empty sh.jobs in
          Mutex.unlock sh.mu;
          e)
        t.shards
    in
    let rec wait_empty () =
      if (not (all_empty ())) && Obs.Clock.now_s () < deadline then begin
        Unix.sleepf 0.01;
        wait_empty ()
      end
    in
    if t.config.auto_worker then wait_empty ();
    Atomic.set t.draining true;
    (* Cancel whatever is still queued, shard by shard. *)
    Array.iter
      (fun sh ->
        Mutex.lock sh.mu;
        let cancelled =
          Queue.fold
            (fun acc j ->
              if Atomic.compare_and_set j.state Queued Cancelled then begin
                Atomic.incr t.c.c_cancelled;
                j.id :: acc
              end
              else acc)
            [] sh.jobs
        in
        Queue.clear sh.jobs;
        Condition.broadcast sh.cond;
        Mutex.unlock sh.mu;
        Mutex.lock t.tmu;
        List.iter (fun id -> Queue.push id t.finished) cancelled;
        Mutex.unlock t.tmu)
      t.shards;
    Mutex.lock t.cmu;
    Condition.broadcast t.ccond;
    Mutex.unlock t.cmu;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (* Private shard pools die with the server; Pool.shared stays (its
       at_exit teardown owns it), so start/stop/start cycles work. *)
    Array.iter
      (fun sh ->
        match sh.pool with
        | Some p ->
          sh.pool <- None;
          Parallel.Pool.shutdown p
        | None -> ())
      t.shards;
    (* Connections still queued but never picked up: close them. *)
    Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.conns;
    Queue.clear t.conns;
    (try Unix.close t.lsock with Unix.Unix_error _ -> ())
  end

let serve_forever config =
  Stop.with_scope (fun scope ->
      let t = start config in
      Printf.printf "serving on %s:%d (version %s, %d workers)\n%!" config.host
        (port t) Build_info.version
        (Array.length t.shards);
      while not (Stop.requested scope) do
        Unix.sleepf 0.1
      done;
      Printf.printf "draining...\n%!";
      stop t;
      Printf.printf "stopped.\n%!")
