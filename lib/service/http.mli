(** Minimal, strictly-bounded HTTP/1.1 over raw [Unix] descriptors.

    Exactly the subset the evaluation service needs — request/response
    heads, [Content-Length] bodies, keep-alive — hand-rolled like every
    wire format in this repo (DESIGN §10: no third-party deps). The
    parser treats the peer as adversarial: header bytes, header count
    and body bytes are all capped, malformed input is a typed {!error}
    (mapped to 400/413/431 by the server), and nothing in this module
    raises on untrusted bytes. Timeouts come from [SO_RCVTIMEO] on the
    socket: a blocked read surfaces as [`Timeout].

    Chunked transfer encoding is deliberately unsupported (bodies must
    carry [Content-Length]); requests advertising it are rejected as
    [`Bad_request]. *)

type limits = {
  max_header_bytes : int;  (** whole head: request line + headers *)
  max_headers : int;  (** header-line count *)
  max_body_bytes : int;
}

val default_limits : limits
(** 16 KiB head, 100 headers, 8 MiB body. *)

type request = {
  meth : string;  (** verbatim, e.g. ["GET"] *)
  path : string;  (** percent-decoded, query stripped *)
  query : (string * string) list;  (** decoded key/value pairs *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
  http_1_1 : bool;  (** false for HTTP/1.0 — disables keep-alive *)
}

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type error =
  [ `Closed  (** EOF at a message boundary (clean connection end) *)
  | `Timeout  (** [SO_RCVTIMEO] expired mid-read *)
  | `Bad_request of string  (** malformed syntax → 400 *)
  | `Header_too_large  (** head or header-count cap exceeded → 431 *)
  | `Body_too_large  (** [Content-Length] over the cap → 413 *) ]

val error_to_string : error -> string

type reader
(** Buffered connection reader; owns the bytes already read past the
    previous message (keep-alive pipelining). *)

val reader : Unix.file_descr -> reader

val buffered : reader -> int
(** Bytes already read but not yet consumed by a parse. After a
    [`Timeout], zero means the peer was idle between requests (safe to
    retry or close); non-zero means it stalled mid-message. *)

val read_request : ?limits:limits -> reader -> (request, error) result
val read_response : ?limits:limits -> reader -> (response, error) result

val header : string -> (string * string) list -> string option
(** Lookup by lowercase name. *)

val keep_alive : request -> bool
(** HTTP/1.1 without [Connection: close] (HTTP/1.0 is always closed). *)

val status_reason : int -> string

val write_response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  Unix.file_descr ->
  status:int ->
  string ->
  unit
(** Serialize and send a response with [Content-Length] (default
    content type [application/json]). Raises [Unix.Unix_error] on a
    broken peer (e.g. [EPIPE]); callers treat that as connection
    teardown. *)

val write_request :
  ?headers:(string * string) list ->
  Unix.file_descr ->
  meth:string ->
  path:string ->
  body:string ->
  unit
(** Client side of the same subset (always [Host] + [Content-Length],
    keep-alive by default). *)
