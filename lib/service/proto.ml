module Json = Experiments.Json
module Case = Experiments.Case
module Engine = Makespan.Engine
module Robustness = Metrics.Robustness
module Dist = Distribution.Dist

type workload =
  | Named of {
      kind : Case.graph_kind;
      n : int;
      procs : int;
      seed : int64;
    }
  | Inline of {
      graph : Dag.Graph.t;
      platform : Platform.t;
    }

type sched_spec =
  | Heuristic of string
  | Random of { count : int; seed : int64 }
  | Neighbor of { base : string; task : int; to_ : int; at : int option }
      (* one-move variation of a heuristic's schedule: task reassigned to
         processor [to_] (inserted at slot [at], appended if absent).
         Served through an incremental engine session — byte-identical to
         a full evaluation of the patched schedule, only cheaper. *)

type job = {
  workload : workload;
  ul : float;
  backend : Engine.backend;
  schedules : sched_spec list;
  slack_mode : Sched.Slack.graph_mode;
  delta : float option;
  gamma : float option;
  deadline_ms : int option;
  trace : string option;
}

(* Scheduler names are resolved through {!Sched.Registry}: every
   registered heuristic plus rank=...,select=... compositions. Kept as
   an assoc list for the wire-facing listing. *)
let heuristics =
  List.map (fun e -> (e.Sched.Registry.name, e.Sched.Registry.run)) Sched.Registry.entries

let resolve_scheduler name =
  match Sched.Registry.parse name with
  | Ok e -> Ok e
  | Error msg -> Error ("schedules[]: " ^ msg)

(* Validation caps: a public endpoint must not let one request allocate
   the machine. Generous for the paper's regimes (n ≤ 103, 16 procs,
   10 000 schedules). *)
let max_tasks = 2000
let max_procs = 128
let max_edges = 100_000
let max_random_count = 50_000
let max_total_schedules = 100_000
let max_mc_count = 1_000_000

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name j =
  match Json.mem name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_field name j = Json.mem name j

let as_int what j =
  match Json.to_int j with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer" what)

let as_float what j =
  match Json.to_float j with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "%s: expected a finite number" what)

let as_int64 what j =
  match Json.to_int64 j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected a 64-bit integer (number or decimal string)" what)

let as_str what j =
  match Json.str j with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: expected a string" what)

let in_range what lo hi v =
  if v < lo || v > hi then
    Error (Printf.sprintf "%s: %d out of range [%d, %d]" what v lo hi)
  else Ok v

let kind_of_name = function
  | "random" -> Ok Case.Random_graph
  | "cholesky" -> Ok Case.Cholesky
  | "gauss" | "gauss-elim" -> Ok Case.Gauss_elim
  | other -> Error (Printf.sprintf "workload.kind: unknown kind %S" other)

let float_matrix what j =
  let* rows =
    match Json.list_ j with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "%s: expected an array of arrays" what)
  in
  let* cells =
    List.fold_right
      (fun row acc ->
        let* acc = acc in
        let* cols =
          match Json.list_ row with
          | Some l -> Ok l
          | None -> Error (Printf.sprintf "%s: expected an array of arrays" what)
        in
        let* values =
          List.fold_right
            (fun c acc ->
              let* acc = acc in
              let* v = as_float what c in
              Ok (v :: acc))
            cols (Ok [])
        in
        Ok (Array.of_list values :: acc))
      rows (Ok [])
  in
  Ok (Array.of_list cells)

let graph_of_json j =
  let* n = Result.bind (field "n" j) (as_int "graph.n") in
  let* n = in_range "graph.n" 1 max_tasks n in
  let* edges_json =
    match Option.bind (Json.mem "edges" j) Json.list_ with
    | Some l -> Ok l
    | None -> Error "graph.edges: expected an array"
  in
  if List.length edges_json > max_edges then
    Error (Printf.sprintf "graph.edges: more than %d edges" max_edges)
  else
    let* edges =
      List.fold_right
        (fun e acc ->
          let* acc = acc in
          match Json.list_ e with
          | Some [ s; d; v ] ->
            let* s = as_int "graph.edges[].src" s in
            let* d = as_int "graph.edges[].dst" d in
            let* v = as_float "graph.edges[].volume" v in
            Ok ((s, d, v) :: acc)
          | _ -> Error "graph.edges[]: expected [src, dst, volume]")
        edges_json (Ok [])
    in
    match Dag.Graph.make ~n ~edges with
    | g -> Ok g
    | exception Invalid_argument msg -> Error ("graph: " ^ msg)

let platform_of_json ~n_tasks j =
  let* etc = Result.bind (field "etc" j) (float_matrix "platform.etc") in
  let* tau = Result.bind (field "tau" j) (float_matrix "platform.tau") in
  let* latency = Result.bind (field "latency" j) (float_matrix "platform.latency") in
  let m = if Array.length etc > 0 then Array.length etc.(0) else 0 in
  if Array.length etc <> n_tasks then
    Error
      (Printf.sprintf "platform.etc: %d rows for %d tasks" (Array.length etc) n_tasks)
  else if m = 0 || m > max_procs then
    Error (Printf.sprintf "platform.etc: processor count out of range [1, %d]" max_procs)
  else
    match Platform.make ~etc ~tau ~latency with
    | p -> Ok p
    | exception Invalid_argument msg -> Error ("platform: " ^ msg)

let workload_of_json j =
  match opt_field "kind" j with
  | Some kind_json ->
    let* kind = Result.bind (as_str "workload.kind" kind_json) kind_of_name in
    let* n = Result.bind (field "n" j) (as_int "workload.n") in
    let* n = in_range "workload.n" 1 max_tasks n in
    let* procs = Result.bind (field "procs" j) (as_int "workload.procs") in
    let* procs = in_range "workload.procs" 1 max_procs procs in
    let* seed =
      match opt_field "seed" j with
      | None -> Ok 1L
      | Some s -> as_int64 "workload.seed" s
    in
    Ok (Named { kind; n; procs; seed })
  | None ->
    let* graph_json = field "graph" j in
    let* graph = graph_of_json graph_json in
    let* platform_json = field "platform" j in
    let* platform = platform_of_json ~n_tasks:(Dag.Graph.n_tasks graph) platform_json in
    Ok (Inline { graph; platform })

let backend_of_json j =
  match j with
  | Json.Str name -> (
    match String.lowercase_ascii name with
    | "classical" -> Ok Engine.Classical
    | "dodin" -> Ok Engine.Dodin
    | "spelde" -> Ok Engine.Spelde
    | other ->
      Error
        (Printf.sprintf
           "backend: unknown backend %S (classical|dodin|spelde|{montecarlo})" other))
  | Json.Obj _ -> (
    match Json.mem "montecarlo" j with
    | None -> Error "backend: expected a name or {\"montecarlo\": {...}}"
    | Some mc ->
      let* count = Result.bind (field "count" mc) (as_int "backend.montecarlo.count") in
      let* count = in_range "backend.montecarlo.count" 1 max_mc_count count in
      let* seed =
        match opt_field "seed" mc with
        | None -> Ok 0L
        | Some s -> as_int64 "backend.montecarlo.seed" s
      in
      Ok (Engine.Montecarlo { count; seed }))
  | _ -> Error "backend: expected a name or {\"montecarlo\": {...}}"

let sched_spec_of_json j =
  match j with
  | Json.Str name ->
    (* canonicalize at parse time so aliases and compositions batch and
       respond under one stable name *)
    Result.map (fun e -> Heuristic e.Sched.Registry.name) (resolve_scheduler name)
  | Json.Obj _ -> (
    match (Json.mem "random" j, Json.mem "neighbor" j) with
    | Some r, _ ->
      let* count = Result.bind (field "count" r) (as_int "schedules[].random.count") in
      let* count = in_range "schedules[].random.count" 0 max_random_count count in
      let* seed =
        match opt_field "seed" r with
        | None -> Ok 0L
        | Some s -> as_int64 "schedules[].random.seed" s
      in
      Ok (Random { count; seed })
    | None, Some nb ->
      let* base = Result.bind (field "base" nb) (as_str "schedules[].neighbor.base") in
      let* base =
        Result.map (fun e -> e.Sched.Registry.name) (resolve_scheduler base)
      in
      let* task = Result.bind (field "task" nb) (as_int "schedules[].neighbor.task") in
      let* () =
        if task >= 0 then Ok () else Error "schedules[].neighbor.task: must be >= 0"
      in
      let* to_ = Result.bind (field "to" nb) (as_int "schedules[].neighbor.to") in
      let* () =
        if to_ >= 0 then Ok () else Error "schedules[].neighbor.to: must be >= 0"
      in
      let* at =
        match opt_field "at" nb with
        | None -> Ok None
        | Some a ->
          let* a = as_int "schedules[].neighbor.at" a in
          if a >= 0 then Ok (Some a)
          else Error "schedules[].neighbor.at: must be >= 0"
      in
      Ok (Neighbor { base; task; to_; at })
    | None, None ->
      Error
        "schedules[]: expected a heuristic name, {\"random\": {...}} or \
         {\"neighbor\": {...}}")
  | _ ->
    Error
      "schedules[]: expected a heuristic name, {\"random\": {...}} or \
       {\"neighbor\": {...}}"

let total_schedules specs =
  List.fold_left
    (fun acc s ->
      acc
      + match s with Heuristic _ | Neighbor _ -> 1 | Random { count; _ } -> count)
    0 specs

let job_of_fields j =
  let* workload = Result.bind (field "workload" j) workload_of_json in
  let* ul = Result.bind (field "ul" j) (as_float "ul") in
  let* () = if ul >= 1. && ul <= 100. then Ok () else Error "ul: out of range [1, 100]" in
  let* backend =
    match opt_field "backend" j with
    | None -> Ok Engine.Classical
    | Some b -> backend_of_json b
  in
  let* sched_json =
    match Option.bind (Json.mem "schedules" j) Json.list_ with
    | Some [] -> Error "schedules: must not be empty"
    | Some l -> Ok l
    | None -> Error "schedules: expected a non-empty array"
  in
  let* schedules =
    List.fold_right
      (fun s acc ->
        let* acc = acc in
        let* spec = sched_spec_of_json s in
        Ok (spec :: acc))
      sched_json (Ok [])
  in
  let* () =
    let total = total_schedules schedules in
    if total = 0 then Error "schedules: zero schedules requested"
    else if total > max_total_schedules then
      Error (Printf.sprintf "schedules: %d schedules exceed the cap %d" total
               max_total_schedules)
    else Ok ()
  in
  let* slack_mode =
    match opt_field "slack" j with
    | None -> Ok `Disjunctive
    | Some s -> (
      match Json.str s with
      | Some "disjunctive" -> Ok `Disjunctive
      | Some "precedence" -> Ok `Precedence
      | _ -> Error "slack: expected \"disjunctive\" or \"precedence\"")
  in
  let* delta =
    match opt_field "delta" j with
    | None -> Ok None
    | Some d ->
      let* d = as_float "delta" d in
      if d >= 0. then Ok (Some d) else Error "delta: must be >= 0"
  in
  let* gamma =
    match opt_field "gamma" j with
    | None -> Ok None
    | Some g ->
      let* g = as_float "gamma" g in
      if g >= 1. then Ok (Some g) else Error "gamma: must be >= 1"
  in
  let* deadline_ms =
    match opt_field "deadline_ms" j with
    | None -> Ok None
    | Some d ->
      let* d = as_int "deadline_ms" d in
      if d > 0 then Ok (Some d) else Error "deadline_ms: must be > 0"
  in
  let* trace =
    match opt_field "trace" j with
    | None -> Ok None
    | Some t ->
      let* t = as_str "trace" t in
      if Obs.Trace.is_valid_trace_id t then Ok (Some t)
      else Error "trace: expected 32 lowercase hex digits (non-zero)"
  in
  Ok { workload; ul; backend; schedules; slack_mode; delta; gamma; deadline_ms; trace }

let job_of_json body =
  match Json.parse body with
  | Error e -> Error ("invalid JSON: " ^ Json.error_to_string e)
  | Ok (Json.Obj _ as j) -> job_of_fields j
  | Ok _ -> Error "invalid job: expected a JSON object"

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let num_of_int i = Json.Num (string_of_int i)
let num_of_float f = if Float.is_finite f then Json.Num (Json.float_lit f) else Json.Null

let graph_to_json g =
  Json.Obj
    [
      ("n", num_of_int (Dag.Graph.n_tasks g));
      ( "edges",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun (s, d, v) ->
                  Json.Arr [ num_of_int s; num_of_int d; num_of_float v ])
                (Dag.Graph.edges g))) );
    ]

let platform_to_json p =
  let n = Platform.n_tasks p and m = Platform.n_procs p in
  let matrix rows cols cell =
    Json.Arr
      (List.init rows (fun i ->
           Json.Arr (List.init cols (fun j -> num_of_float (cell i j)))))
  in
  Json.Obj
    [
      ("etc", matrix n m (fun task proc -> Platform.etc p ~task ~proc));
      ("tau", matrix m m (fun src dst -> Platform.tau p ~src ~dst));
      ("latency", matrix m m (fun src dst -> Platform.latency p ~src ~dst));
    ]

let workload_to_json = function
  | Named { kind; n; procs; seed } ->
    Json.Obj
      [
        ("kind", Json.Str (Case.kind_name kind));
        ("n", num_of_int n);
        ("procs", num_of_int procs);
        ("seed", Json.Str (Int64.to_string seed));
      ]
  | Inline { graph; platform } ->
    Json.Obj [ ("graph", graph_to_json graph); ("platform", platform_to_json platform) ]

let backend_to_json = function
  | Engine.Montecarlo { count; seed } ->
    Json.Obj
      [
        ( "montecarlo",
          Json.Obj
            [ ("count", num_of_int count); ("seed", Json.Str (Int64.to_string seed)) ] );
      ]
  | b -> Json.Str (Engine.backend_name b)

let sched_spec_to_json = function
  | Heuristic name -> Json.Str name
  | Random { count; seed } ->
    Json.Obj
      [
        ( "random",
          Json.Obj
            [ ("count", num_of_int count); ("seed", Json.Str (Int64.to_string seed)) ] );
      ]
  | Neighbor { base; task; to_; at } ->
    Json.Obj
      [
        ( "neighbor",
          Json.Obj
            ([ ("base", Json.Str base); ("task", num_of_int task); ("to", num_of_int to_) ]
            @ match at with None -> [] | Some a -> [ ("at", num_of_int a) ]) );
      ]

let job_to_json job =
  let base =
    [
      ("workload", workload_to_json job.workload);
      ("ul", num_of_float job.ul);
      ("backend", backend_to_json job.backend);
      ("schedules", Json.Arr (List.map sched_spec_to_json job.schedules));
      ( "slack",
        Json.Str
          (match job.slack_mode with
          | `Disjunctive -> "disjunctive"
          | `Precedence -> "precedence") );
    ]
  in
  let opt name v f = match v with None -> [] | Some v -> [ (name, f v) ] in
  Json.to_string
    (Json.Obj
       (base
       @ opt "delta" job.delta num_of_float
       @ opt "gamma" job.gamma num_of_float
       @ opt "deadline_ms" job.deadline_ms num_of_int
       @ opt "trace" job.trace (fun t -> Json.Str t)))

(* ------------------------------------------------------------------ *)
(* Context (the batching key)                                          *)
(* ------------------------------------------------------------------ *)

type context = {
  key : string;
  graph : Dag.Graph.t;
  platform : Platform.t;
  model : Workloads.Stochastify.t;
}

let key_of_job job =
  match job.workload with
  | Named { kind; n; procs; seed } ->
    (Case.make ~kind ~n_target:n ~n_procs:procs ~ul:job.ul ~seed ()).Case.id
  | Inline { graph; platform } ->
    (* identity of an inline case is its canonical serialization *)
    let canonical =
      Json.to_string
        (Json.Obj
           [
             ("graph", graph_to_json graph);
             ("platform", platform_to_json platform);
             ("ul", num_of_float job.ul);
           ])
    in
    "inline-" ^ Digest.to_hex (Digest.string canonical)

let context_of_job job =
  match job.workload with
  | Named { kind; n; procs; seed } -> (
    match
      Case.instantiate (Case.make ~kind ~n_target:n ~n_procs:procs ~ul:job.ul ~seed ())
    with
    | inst ->
      Ok
        {
          key = inst.Case.case.Case.id;
          graph = inst.Case.graph;
          platform = inst.Case.platform;
          model = inst.Case.model;
        }
    | exception Invalid_argument msg -> Error ("workload: " ^ msg))
  | Inline { graph; platform } -> (
    match Workloads.Stochastify.make ~ul:job.ul () with
    | model -> Ok { key = key_of_job job; graph; platform; model }
    | exception Invalid_argument msg -> Error ("ul: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let run_base name graph platform =
  match Sched.Registry.parse name with
  | Ok e -> e.Sched.Registry.run graph platform
  | Error msg ->
    (* unreachable: specs are canonicalized during decoding *)
    invalid_arg ("Proto.expand_schedules: " ^ msg)

let neighbor_label ~base ~task ~to_ ~at =
  match at with
  | None -> Printf.sprintf "neighbor:%s:%d:%d" base task to_
  | Some a -> Printf.sprintf "neighbor:%s:%d:%d:%d" base task to_ a

(* Labeled schedules in spec order. Each random spec owns one RNG, so
   schedule [i] of a seed is stable whatever else the job asks for. *)
let expand_schedules job graph platform =
  List.concat_map
    (function
      | Heuristic name -> [ (name, run_base name graph platform) ]
      | Random { count; seed } ->
        let rng = Prng.Xoshiro.create seed in
        let scheds =
          Sched.Random_sched.generate_many ~rng ~graph
            ~n_procs:(Platform.n_procs platform) ~count
        in
        List.mapi (fun i s -> (Printf.sprintf "random:%Ld:%d" seed i, s)) scheds
      | Neighbor { base; task; to_; at } ->
        let b = run_base base graph platform in
        [ (neighbor_label ~base ~task ~to_ ~at, Sched.Schedule.reassign ?at b ~task ~to_) ])
    job.schedules

(* Rows coming from Neighbor specs: (row index, base name, move). The
   worker serves these through one engine session per distinct base
   instead of a full sweep per row. *)
let neighbor_rows job =
  let idx = ref 0 in
  List.concat_map
    (fun spec ->
      match spec with
      | Heuristic _ ->
        incr idx;
        []
      | Random { count; _ } ->
        idx := !idx + count;
        []
      | Neighbor { base; task; to_; at } ->
        let i = !idx in
        incr idx;
        [ (i, base, Sched.Neighbor.make ?at ~task ~to_ ()) ])
    job.schedules

let metrics_to_json (m : Robustness.t) =
  Json.Obj
    [
      ("expected_makespan", num_of_float m.Robustness.expected_makespan);
      ("makespan_std", num_of_float m.Robustness.makespan_std);
      ("makespan_entropy", num_of_float m.Robustness.makespan_entropy);
      ("avg_slack", num_of_float m.Robustness.avg_slack);
      ("slack_std", num_of_float m.Robustness.slack_std);
      ("avg_lateness", num_of_float m.Robustness.avg_lateness);
      ("prob_absolute", num_of_float m.Robustness.prob_absolute);
      ("prob_relative", num_of_float m.Robustness.prob_relative);
    ]

let makespan_to_json d =
  Json.Obj
    [
      ("mean", num_of_float (Dist.mean d));
      ("std", num_of_float (Dist.std d));
      ("q05", num_of_float (Dist.quantile d 0.05));
      ("q50", num_of_float (Dist.quantile d 0.5));
      ("q95", num_of_float (Dist.quantile d 0.95));
    ]

let run_job ?flight ?shard ?pool ~engine job =
  let graph = Engine.graph engine and platform = Engine.platform engine in
  let backend = job.backend and slack_mode = job.slack_mode in
  (* the "eval" span covers schedule expansion, pilot calibration and
     the parallel metric sweep — everything but JSON rendering *)
  let doc =
    Obs.Flight.timed ?record:flight ?shard ~stage:"eval" (fun () ->
        let labeled = Array.of_list (expand_schedules job graph platform) in
        let n = Array.length labeled in
        (* Neighbor rows first, through one incremental session per
           distinct base: the base is evaluated once in full, then every
           neighbor is an uncommitted [reevaluate] against it. Response
           bytes cannot change — the session path agrees bitwise with a
           fresh full evaluation of the patched schedule (property-tested
           in test_engine) — only the repeated full sweeps go away. *)
        let pre = Array.make n None in
        (match neighbor_rows job with
        | [] -> ()
        | rows ->
          let sessions = Hashtbl.create 4 in
          List.iter
            (fun (i, base, move) ->
              let session =
                match Hashtbl.find_opt sessions base with
                | Some s -> s
                | None ->
                  let s =
                    Engine.start_session ~backend ~slack_mode engine
                      (run_base base graph platform)
                  in
                  Hashtbl.add sessions base s;
                  s
              in
              pre.(i) <- Some (Engine.reevaluate_move ~commit:false session move))
            rows);
        let eval_row i =
          match pre.(i) with
          | Some e -> e
          | None -> Engine.analyze ~backend ~slack_mode engine (snd labeled.(i))
        in
        (* pilot calibration on this job's own first schedules (≤ 20), exactly
           the Runner scheme — independent of whatever else shares the engine,
           so batching can never change response bytes *)
        let pilot_n = Int.min 20 n in
        let pilot_evals = Array.init pilot_n eval_row in
        let delta, gamma =
          match (job.delta, job.gamma) with
          | Some d, Some g -> (d, g)
          | d_opt, g_opt ->
            let pilot =
              Array.to_list
                (Array.map
                   (fun e ->
                     let d = e.Engine.makespan in
                     (Dist.mean d, Dist.std d))
                   pilot_evals)
            in
            let d_cal, g_cal = Robustness.calibrate_bounds pilot in
            (Option.value d_opt ~default:d_cal, Option.value g_opt ~default:g_cal)
        in
        let rows =
          Parallel.Par_array.init ?pool ~chunk_size:16 n (fun i ->
              let e = if i < pilot_n then pilot_evals.(i) else eval_row i in
              let m =
                Robustness.compute ~delta ~gamma ~makespan_dist:e.Engine.makespan
                  ~slack:e.Engine.slack ()
              in
              Json.Obj
                [
                  ("source", Json.Str (fst labeled.(i)));
                  ("makespan", makespan_to_json e.Engine.makespan);
                  ("metrics", metrics_to_json m);
                ])
        in
        Json.Obj
          [
            ("case", Json.Str (key_of_job job));
            ("backend", backend_to_json backend);
            ("ul", num_of_float job.ul);
            ("n_tasks", num_of_int (Dag.Graph.n_tasks graph));
            ("n_procs", num_of_int (Platform.n_procs platform));
            ( "slack",
              Json.Str
                (match slack_mode with
                | `Disjunctive -> "disjunctive"
                | `Precedence -> "precedence") );
            ("delta", num_of_float delta);
            ("gamma", num_of_float gamma);
            ("n_schedules", num_of_int (Array.length labeled));
            ("rows", Json.Arr (Array.to_list rows));
          ])
  in
  Obs.Flight.timed ?record:flight ?shard ~stage:"encode" (fun () -> Json.to_string doc ^ "\n")

let eval job =
  match context_of_job job with
  | Error _ as e -> e
  | Ok ctx -> (
    match
      let engine =
        Engine.create ~graph:ctx.graph ~platform:ctx.platform ~model:ctx.model
      in
      run_job ~engine job
    with
    | body -> Ok body
    | exception exn -> Error (Printexc.to_string exn))
