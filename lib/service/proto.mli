(** Wire protocol of the evaluation service: JSON job specifications in,
    metric rows + makespan-distribution summaries out.

    A {e job} names an evaluation case — workload (named generator or
    inline DAG + platform), uncertainty level, evaluation backend — plus
    the schedules to evaluate (heuristics by name, seeded random
    batches). Jobs are decoded by the shared bounded {!Experiments.Json}
    parser, so adversarial bodies produce typed errors, never
    exceptions.

    Everything here is deterministic: the same job spec yields the same
    response bytes whether it runs through [repro eval], a sync HTTP
    request, or inside a server batch (batching shares engine {e caches}
    only — δ/γ calibration uses each job's own pilot schedules). That
    determinism is what the CI smoke test asserts byte-for-byte. *)

type workload =
  | Named of {
      kind : Experiments.Case.graph_kind;
      n : int;  (** target task count *)
      procs : int;
      seed : int64;
    }
  | Inline of {
      graph : Dag.Graph.t;
      platform : Platform.t;
    }

type sched_spec =
  | Heuristic of string  (** HEFT | BIL | Hyb.BMCT | CPOP | DLS *)
  | Random of { count : int; seed : int64 }
  | Neighbor of { base : string; task : int; to_ : int; at : int option }
      (** one-move variation of heuristic [base]'s schedule: [task]
          reassigned to processor [to_], inserted at slot [at] (appended
          when absent). Wire form
          [{"neighbor": {"base", "task", "to", "at"?}}]. The worker
          serves all neighbors of one base through a single incremental
          engine session ({!Makespan.Engine.start_session}) — the base
          is evaluated once in full and each neighbor by an uncommitted
          {!Makespan.Engine.reevaluate}, which agrees bitwise with a
          full evaluation of the patched schedule, so response bytes are
          unchanged by the fast path. *)

type job = {
  workload : workload;
  ul : float;
  backend : Makespan.Engine.backend;
  schedules : sched_spec list;
  slack_mode : Sched.Slack.graph_mode;
  delta : float option;  (** A(δ) bound override; calibrated if absent *)
  gamma : float option;
  deadline_ms : int option;  (** queue-admission deadline, server-side *)
  trace : string option;
      (** client-minted trace id ({!Obs.Trace.is_valid_trace_id}); links
          the async submit/result round trip when no [traceparent]
          header can carry it. Not part of the batching key and never
          echoed in the response body, so it cannot perturb the
          byte-determinism contract. *)
}

val heuristics : (string * (Dag.Graph.t -> Platform.t -> Sched.Schedule.t)) list
(** Every named {!Sched.Registry} entry, reachable over the wire by
    canonical name, alias, or [rank=...,select=...] composition. *)

val job_of_json : string -> (job, string) result
(** Decode and validate one job body. Bounded: body size is capped by
    the HTTP layer, schedule counts and workload sizes here. The error
    string is safe to echo back in a 400/422 response. *)

val job_to_json : job -> string
(** Inverse of {!job_of_json} (used by the client, [repro loadgen] and
    [repro eval --emit-request]); round-trips. *)

type context = {
  key : string;  (** batching key: (graph × platform × UL) identity *)
  graph : Dag.Graph.t;
  platform : Platform.t;
  model : Workloads.Stochastify.t;
}

val key_of_job : job -> string
(** The batching key alone, {e without} materializing the workload:
    named workloads key on the case id (a string render of the
    parameters), inline ones on a digest of their canonical JSON. This
    is what lets a connection domain route a job to its owning shard
    cheaply — the expensive graph/platform generation is deferred to
    {!context_of_job} on the worker. Agrees with [context.key]. *)

val context_of_job : job -> (context, string) result
(** Materialize the case. Jobs with equal [key] are guaranteed to
    describe the identical (graph, platform, uncertainty model) triple,
    so one {!Makespan.Engine} may serve them all — named workloads key
    on the case id, inline ones on a digest of their canonical JSON.
    This is the expensive half of admission (workload/platform
    generation); the sharded server runs it on the job's owning worker
    domain (the ["admit"] stage), never on a connection domain. *)

val run_job :
  ?flight:Obs.Flight.record ->
  ?shard:int ->
  ?pool:Parallel.Pool.t ->
  engine:Makespan.Engine.t ->
  job ->
  string
(** Evaluate every schedule of the job on an engine built over the
    job's context and render the response body (one JSON document,
    newline-terminated). The engine must come from this job's [key];
    sharing it across same-key jobs only warms its caches. Random
    schedules are generated from the spec seed, δ/γ are calibrated on
    the job's own first schedules (capped at 20) exactly as
    {!Experiments.Runner} does, and evaluation fans out over [pool]
    ({!Parallel.Pool.shared} when absent — sharded workers pass their
    private pool slice so shards never contend on one submit lock).
    When [flight] is given, the work is split into the ["eval"]
    (expansion + metric sweep) and ["encode"] (JSON rendering) stages
    of that request's flight record, labeled with [shard] when the
    caller is a sharded worker. *)

val eval : job -> (string, string) result
(** One-shot local evaluation: context + fresh engine + {!run_job}.
    This is the [repro eval] path the CI smoke test compares the served
    bytes against. *)
