(** [repro top]: a live terminal view of a running evaluation service.

    Polls [GET /metrics] (JSON form) and [GET /debug/requests] every
    [interval_s] and renders one frame: request/job throughput, queue
    depth, engine-cache hit rate, a per-stage latency table (the
    [parse → admit → queue → batch → eval → encode → write] lifecycle)
    and the most recent requests from the flight ring. Rates and stage
    p50/p99 are computed from {e deltas between frames} (bucket-count
    differences), so the display tracks current behavior rather than
    lifetime averages; the first frame falls back to lifetime values. *)

type config = {
  host : string;
  port : int;
  interval_s : float;  (** poll period; clamped to ≥ 50 ms *)
  iterations : int option;  (** number of frames; [None] = until killed *)
  plain : bool;
      (** append frames instead of ANSI clear-screen (pipes, CI logs) *)
}

val default_config : config
(** localhost:8080, 1 s interval, endless, ANSI. *)

val run : config -> (unit, string) result
(** Poll and render until [iterations] frames have been shown (or
    forever). [Error] carries the first scrape failure (unreachable
    host, non-200, unparsable document). *)
