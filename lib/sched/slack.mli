(** The slack metrics of §IV.

    The slack of task [i] is [s_i = M − Bl(i) − Tl(i)] — the window by
    which [i] may slip without delaying the makespan — computed with mean
    durations. The paper's two derived metrics are the {e sum} of slacks
    (called “average slack”) and the dispersion of the per-task slacks.

    Two readings of the §IV formulas coexist in the literature, so both
    are implemented:
    - [`Disjunctive] (default): levels on the schedule's disjunctive
      graph, as in Shi, Jeannot & Dongarra (the paper's reference [15])
      and Bölöni & Marinescu's delay-window definition. A fully
      serialized schedule has zero slack — matching the paper's §VII
      remark about sequential schedules having “significant makespan and
      small slack”.
    - [`Precedence]: levels on the plain precedence DAG (exactly the §IV
      formulas, which mention no processor-order edges) with [M] still
      the schedule's makespan; every task's slack then grows with the
      schedule's idle time. This variant reproduces the strong negative
      slack-makespan correlation of the paper's Fig. 3. *)

type graph_mode =
  [ `Disjunctive  (** processor-order aware (default) *)
  | `Precedence  (** plain DAG levels, schedule makespan as reference *) ]

type summary = {
  per_task : float array;
  total : float;  (** Σ sᵢ — the paper's S *)
  mean : float;  (** Σ sᵢ / n *)
  std : float;  (** population standard deviation of the sᵢ *)
  makespan : float;  (** reference makespan M *)
}

val of_weighted_graph : Dag.Graph.t -> Dag.Levels.weights -> summary
(** Slack summary of an already-built weighted graph (levels + longest
    path). Used by evaluation engines that hold the schedule's
    disjunctive graph and mean weights already, so slack shares them with
    the distribution propagation instead of rebuilding both. *)

val compute :
  ?mode:graph_mode -> Schedule.t -> Platform.t -> Workloads.Stochastify.t -> summary
(** Slack summary under mean durations. In [`Disjunctive] mode the
    identity [max(Tl(i) + Bl(i)) = M] holds by construction and critical
    tasks have slack 0; in [`Precedence] mode slacks are clamped at 0
    and [M] is the mean-duration eager makespan. *)
