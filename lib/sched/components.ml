(* Building blocks of the parameterized list scheduler (DESIGN.md §13).

   A list scheduler is decomposed into three orthogonal components, after
   the taxonomy of "Parameterized Task Graph Scheduling Algorithm for
   Comparing Algorithmic Components" (arXiv 2403.07112):

   - a {b ranking} component assigning every task a static priority
     (plus auxiliary tables some selectors need: the BIL level matrix,
     the PEFT optimistic cost table, CPOP's critical path);
   - a {b processor-selection} component picking, at every step, which
     ready task to place and on which processor;
   - an {b insertion} policy deciding whether a task may fill an idle
     gap between already-placed tasks or only append after them, plus a
     deterministic tie-break rule so every composition stays
     bit-reproducible.

   HEFT, CPOP, DLS, BIL, PEFT, HEFT-LA and IHEFT are instances; see
   {!List_scheduler} for the driver and {!Registry} for the name table. *)

type collapse = [ `Mean | `Best | `Worst ]

let collapse_name = function `Mean -> "mean" | `Best -> "best" | `Worst -> "worst"

(* ------------------------------------------------------------------ *)
(* Averaged-cost machinery (shared by every ranking component)         *)
(* ------------------------------------------------------------------ *)

let average_weights ?(rank = `Mean) graph platform =
  let mean_tau = Platform.mean_tau platform in
  let mean_latency = Platform.mean_latency platform in
  let m = Platform.n_procs platform in
  let collapse v =
    let row = Array.init m (fun p -> Platform.etc platform ~task:v ~proc:p) in
    match rank with
    | `Mean -> Array.fold_left ( +. ) 0. row /. float_of_int m
    | `Best -> Array.fold_left Float.min row.(0) row
    | `Worst -> Array.fold_left Float.max row.(0) row
  in
  let edge u v =
    match Dag.Graph.volume graph ~src:u ~dst:v with
    | Some volume -> mean_latency +. (volume *. mean_tau)
    | None -> 0.
  in
  { Dag.Levels.task = collapse; edge }

let upward_ranks ?rank graph platform =
  Dag.Levels.bottom_levels graph (average_weights ?rank graph platform)

let downward_ranks ?rank graph platform =
  Dag.Levels.top_levels graph (average_weights ?rank graph platform)

(* Static whole-graph priority order (HEFT's list): descending upward
   rank, ties to the lower task id. *)
let rank_order ?rank graph platform =
  let ranks = upward_ranks ?rank graph platform in
  let tasks = Array.init (Dag.Graph.n_tasks graph) (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare ranks.(b) ranks.(a) with 0 -> Int.compare a b | c -> c)
    tasks;
  tasks

let critical_path graph platform =
  Dag.Levels.critical_path graph (average_weights graph platform)

(* DLS static level: median execution cost, communication ignored
   (Sih & Lee 1993, DL1 characterization). *)
let median row =
  let a = Array.copy row in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let static_levels graph platform =
  let m = Platform.n_procs platform in
  let w =
    {
      Dag.Levels.task =
        (fun v -> median (Array.init m (fun p -> Platform.etc platform ~task:v ~proc:p)));
      edge = (fun _ _ -> 0.);
    }
  in
  Dag.Levels.bottom_levels graph w

(* BIL table: basic (task × proc) levels of Oh & Ha 1996.
   BIL(t, p) = w(t, p) + max over successors s of min over q of
   (BIL(s, q) + comm(p → q)). *)
let bil_table graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let levels = Array.make_matrix n m 0. in
  let topo = Dag.Graph.topo_order graph in
  for i = n - 1 downto 0 do
    let t = topo.(i) in
    for p = 0 to m - 1 do
      let tail = ref 0. in
      Array.iter
        (fun (s, volume) ->
          let best = ref infinity in
          for q = 0 to m - 1 do
            let via =
              levels.(s).(q) +. Platform.comm_time platform ~src:p ~dst:q ~volume
            in
            if via < !best then best := via
          done;
          if !best > !tail then tail := !best)
        (Dag.Graph.succs graph t);
      levels.(t).(p) <- Platform.etc platform ~task:t ~proc:p +. !tail
    done
  done;
  levels

(* PEFT optimistic cost table (Arabnejad & Barbosa 2014):
   OCT(t, p) = 0 for exit tasks, else
   OCT(t, p) = max over successors s of min over q of
     (OCT(s, q) + w(s, q) + [q ≠ p] · c̄(t, s))
   with c̄ the averaged communication cost of {!average_weights}. *)
let oct_table graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let mean_tau = Platform.mean_tau platform in
  let mean_latency = Platform.mean_latency platform in
  let oct = Array.make_matrix n m 0. in
  let topo = Dag.Graph.topo_order graph in
  for i = n - 1 downto 0 do
    let t = topo.(i) in
    for p = 0 to m - 1 do
      let worst = ref 0. in
      Array.iter
        (fun (s, volume) ->
          let cbar = mean_latency +. (volume *. mean_tau) in
          let best = ref infinity in
          for q = 0 to m - 1 do
            let via =
              oct.(s).(q)
              +. Platform.etc platform ~task:s ~proc:q
              +. (if q = p then 0. else cbar)
            in
            if via < !best then best := via
          done;
          if !best > !worst then worst := !best)
        (Dag.Graph.succs graph t);
      oct.(t).(p) <- !worst
    done
  done;
  oct

(* IHEFT heterogeneity-weighted upward rank: the task weight is the mean
   execution cost inflated by its coefficient of variation across
   processors, w'(t) = mean(t) · (1 + std(t)/mean(t)) — heterogeneous
   tasks rank higher so their placement is decided earlier. *)
let heterogeneity_weights graph platform =
  let m = Platform.n_procs platform in
  let mean = average_weights graph platform in
  let task v =
    let row = Array.init m (fun p -> Platform.etc platform ~task:v ~proc:p) in
    let mu = Array.fold_left ( +. ) 0. row /. float_of_int m in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0. row
      /. float_of_int m
    in
    if mu > 0. then mu +. Float.sqrt var else mu
  in
  { Dag.Levels.task; edge = mean.Dag.Levels.edge }

let heterogeneity_ranks graph platform =
  Dag.Levels.bottom_levels graph (heterogeneity_weights graph platform)

(* ------------------------------------------------------------------ *)
(* Placement state                                                     *)
(* ------------------------------------------------------------------ *)

(* Partial-schedule state shared by every composition. [eft] searches
   idle gaps (insertion policy), [append_finish] only considers the time
   after the last task of the processor (append policy); both build the
   same slot rows, so {!to_schedule} is policy-agnostic. *)
module State = struct
  type slot = { s_start : float; s_finish : float; s_task : int }

  type t = {
    graph : Dag.Graph.t;
    platform : Platform.t;
    slots : slot list array; (* per proc, sorted by start *)
    placed_proc : int array; (* -1 = not placed *)
    placed_finish : float array;
    avail : float array; (* per proc: finish of its last task *)
    mutable n_placed : int;
  }

  let create graph platform =
    let n = Dag.Graph.n_tasks graph in
    let m = Platform.n_procs platform in
    {
      graph;
      platform;
      slots = Array.make m [];
      placed_proc = Array.make n (-1);
      placed_finish = Array.make n 0.;
      avail = Array.make m 0.;
      n_placed = 0;
    }

  let n_placed t = t.n_placed
  let proc_of t v = t.placed_proc.(v)
  let finish_of t v = t.placed_finish.(v)

  let ready_time t ~task ~proc =
    let acc = ref 0. in
    Array.iter
      (fun (p, volume) ->
        if t.placed_proc.(p) = -1 then
          invalid_arg "Components.State: predecessor not placed yet";
        let arrival =
          t.placed_finish.(p)
          +. Platform.comm_time t.platform ~src:t.placed_proc.(p) ~dst:proc ~volume
        in
        if arrival > !acc then acc := arrival)
      (Dag.Graph.preds t.graph task);
    !acc

  (* Like [ready_time] but ignoring unplaced predecessors — the
     lookahead selector predicts child finish times one step ahead,
     where a child's other parents may still be unscheduled. *)
  let ready_time_partial t ~task ~proc =
    let acc = ref 0. in
    Array.iter
      (fun (p, volume) ->
        if t.placed_proc.(p) <> -1 then begin
          let arrival =
            t.placed_finish.(p)
            +. Platform.comm_time t.platform ~src:t.placed_proc.(p) ~dst:proc ~volume
          in
          if arrival > !acc then acc := arrival
        end)
      (Dag.Graph.preds t.graph task);
    !acc

  (* earliest gap of length [dur] starting no earlier than [ready] *)
  let find_slot slots ~ready ~dur =
    let rec scan candidate = function
      | [] -> candidate
      | { s_start; s_finish; _ } :: rest ->
        if candidate +. dur <= s_start then candidate
        else scan (Float.max candidate s_finish) rest
    in
    scan ready slots

  let eft ?(ready_time = ready_time) t ~task ~proc =
    let ready = ready_time t ~task ~proc in
    let dur = Platform.etc t.platform ~task ~proc in
    let start = find_slot t.slots.(proc) ~ready ~dur in
    (start, start +. dur)

  let append_finish ?(ready_time = ready_time) t ~task ~proc =
    let start = Float.max (ready_time t ~task ~proc) t.avail.(proc) in
    (start, start +. Platform.etc t.platform ~task ~proc)

  (* candidate (start, finish) under the given insertion policy *)
  let candidate t ~insert ~task ~proc =
    if insert then eft t ~task ~proc else append_finish t ~task ~proc

  let place t ~insert ~task ~proc =
    if t.placed_proc.(task) <> -1 then
      invalid_arg "Components.State: task already placed";
    let start, finish = candidate t ~insert ~task ~proc in
    t.placed_proc.(task) <- proc;
    t.placed_finish.(task) <- finish;
    t.n_placed <- t.n_placed + 1;
    if finish > t.avail.(proc) then t.avail.(proc) <- finish;
    let rec insert_slot = function
      | [] -> [ { s_start = start; s_finish = finish; s_task = task } ]
      | slot :: rest when slot.s_start < start -> slot :: insert_slot rest
      | slots -> { s_start = start; s_finish = finish; s_task = task } :: slots
    in
    t.slots.(proc) <- insert_slot t.slots.(proc)

  (* Tentative placement for lookahead scoring: place, evaluate, restore.
     Restoration is exact — the slot row is an immutable list and the
     scalar fields are saved — so a tentative never perturbs the state. *)
  let with_tentative t ~insert ~task ~proc f =
    let saved_slots = t.slots.(proc) and saved_avail = t.avail.(proc) in
    place t ~insert ~task ~proc;
    let r = f () in
    t.slots.(proc) <- saved_slots;
    t.avail.(proc) <- saved_avail;
    t.placed_proc.(task) <- -1;
    t.placed_finish.(task) <- 0.;
    t.n_placed <- t.n_placed - 1;
    r

  let to_schedule t =
    let n = Dag.Graph.n_tasks t.graph in
    for v = 0 to n - 1 do
      if t.placed_proc.(v) = -1 then
        invalid_arg (Printf.sprintf "Components.State.to_schedule: task %d not placed" v)
    done;
    let order =
      Array.map (fun slots -> Array.of_list (List.map (fun s -> s.s_task) slots)) t.slots
    in
    Schedule.make ~graph:t.graph ~n_procs:(Platform.n_procs t.platform)
      ~proc_of:(Array.copy t.placed_proc) ~order
end

(* ------------------------------------------------------------------ *)
(* Component descriptors                                               *)
(* ------------------------------------------------------------------ *)

type ranking =
  | Rank_upward of collapse (* HEFT upward rank *)
  | Rank_updown of collapse (* CPOP: upward + downward rank *)
  | Rank_static_level (* DLS median static level *)
  | Rank_bil (* BIL level table; priority = best-processor level *)
  | Rank_oct (* PEFT: average optimistic cost *)
  | Rank_het_upward (* IHEFT heterogeneity-weighted upward rank *)

type selection =
  | Select_eft (* earliest finish time *)
  | Select_cp_pin (* CPOP: critical path pinned, EFT elsewhere *)
  | Select_dl (* DLS: joint (task, proc) dynamic-level maximization *)
  | Select_bim (* BIL: BIM* row-quantile priority + minimization *)
  | Select_oeft (* PEFT: EFT + OCT minimization *)
  | Select_lookahead (* HEFT-LA: one-step child EFT sum *)
  | Select_crossover of int64 (* IHEFT: seeded EFT/local-fastest cross-over *)

type insertion = Insert | Append

(* Tie policy for the ready-task argmax: [Tie_id] resolves equal
   priorities to the lower task id (HEFT's static list order);
   [Tie_ready] keeps the earlier task in ready-list order (the classic
   event-driven formulation CPOP/DLS/BIL use); [Tie_seeded] shuffles
   equal-priority candidates with a deterministic per-task hash. *)
type tie = Tie_id | Tie_ready | Tie_seeded of int64

let ranking_name = function
  | Rank_upward c -> "upward:" ^ collapse_name c
  | Rank_updown c -> "updown:" ^ collapse_name c
  | Rank_static_level -> "static-level"
  | Rank_bil -> "bil"
  | Rank_oct -> "oct"
  | Rank_het_upward -> "het-upward"

let selection_name = function
  | Select_eft -> "eft"
  | Select_cp_pin -> "cp-pin"
  | Select_dl -> "dl"
  | Select_bim -> "bim"
  | Select_oeft -> "oeft"
  | Select_lookahead -> "lookahead"
  | Select_crossover seed -> Printf.sprintf "crossover:%Ld" seed

let insertion_name = function Insert -> "insertion" | Append -> "append"

let tie_name = function
  | Tie_id -> "id"
  | Tie_ready -> "ready"
  | Tie_seeded seed -> Printf.sprintf "seeded:%Ld" seed
