(* Name → scheduler table consumed by experiments, the CLI and the
   service. Every entry carries its component decomposition (for
   `repro sched --list`) and provenance. Beyond the named entries,
   {!parse} accepts ad-hoc compositions:

     rank=R,select=S[,insert=I][,tie=T]

   with R ∈ upward[:mean|best|worst] | updown[:...] | static-level |
   bil | oct | het-upward, S ∈ eft | cp-pin | dl | bim | oeft |
   lookahead | crossover[:SEED], I ∈ insertion | append, and
   T ∈ id | ready | seeded:SEED. *)

type entry = {
  name : string;
  aliases : string list;
  rank : string;
  select : string;
  insert : string;
  provenance : string;
  run : Dag.Graph.t -> Platform.t -> Schedule.t;
}

let of_spec ~name ~aliases ~provenance spec =
  {
    name;
    aliases;
    rank = Components.ranking_name spec.List_scheduler.ranking;
    select = Components.selection_name spec.List_scheduler.selection;
    insert = Components.insertion_name spec.List_scheduler.insertion;
    provenance;
    run = List_scheduler.run spec;
  }

let entries =
  [
    of_spec ~name:"HEFT" ~aliases:[ "heft" ]
      ~provenance:"Topcuoglu et al. 2002" (Heft.spec ());
    of_spec ~name:"CPOP" ~aliases:[ "cpop" ] ~provenance:"Topcuoglu et al. 2002"
      Cpop.spec;
    of_spec ~name:"DLS" ~aliases:[ "dls" ] ~provenance:"Sih & Lee 1993" Dls.spec;
    of_spec ~name:"BIL" ~aliases:[ "bil" ] ~provenance:"Oh & Ha 1996" Bil.spec;
    {
      name = "Hyb.BMCT";
      aliases = [ "hyb.bmct"; "bmct"; "BMCT" ];
      rank = "upward:mean";
      select = "group-migration";
      insert = "append";
      provenance = "Sakellariou & Zhao 2004";
      run = Bmct.schedule;
    };
    of_spec ~name:"PEFT" ~aliases:[ "peft" ] ~provenance:"Arabnejad & Barbosa 2014"
      Peft.spec;
    of_spec ~name:"HEFT-LA" ~aliases:[ "heft-la"; "heftla" ]
      ~provenance:"Bittencourt et al. 2010" Heft_la.spec;
    of_spec ~name:"IHEFT"
      ~aliases:[ "iheft" ]
      ~provenance:"stochastic EFT/local-fastest cross-over"
      (Iheft.spec ());
  ]

let names () = List.map (fun e -> e.name) entries

let find name =
  List.find_opt (fun e -> e.name = name || List.mem name e.aliases) entries

(* ---------------- ad-hoc composition grammar ---------------- *)

let parse_collapse = function
  | "mean" -> Ok `Mean
  | "best" -> Ok `Best
  | "worst" -> Ok `Worst
  | c -> Error (Printf.sprintf "unknown cost collapse %S (mean|best|worst)" c)

let parse_seed ~what s =
  match Int64.of_string_opt s with
  | Some seed -> Ok seed
  | None -> Error (Printf.sprintf "invalid %s seed %S" what s)

let parse_ranking s =
  let base, arg =
    match String.index_opt s ':' with
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  let with_collapse make =
    match arg with
    | None -> Ok (make `Mean)
    | Some c -> Result.map make (parse_collapse c)
  in
  match base with
  | "upward" -> with_collapse (fun c -> Components.Rank_upward c)
  | "updown" -> with_collapse (fun c -> Components.Rank_updown c)
  | "static-level" -> Ok Components.Rank_static_level
  | "bil" -> Ok Components.Rank_bil
  | "oct" -> Ok Components.Rank_oct
  | "het-upward" -> Ok Components.Rank_het_upward
  | _ ->
    Error
      (Printf.sprintf
         "unknown ranking %S (upward[:C]|updown[:C]|static-level|bil|oct|het-upward)" s)

let parse_selection s =
  match s with
  | "eft" -> Ok Components.Select_eft
  | "cp-pin" -> Ok Components.Select_cp_pin
  | "dl" -> Ok Components.Select_dl
  | "bim" -> Ok Components.Select_bim
  | "oeft" -> Ok Components.Select_oeft
  | "lookahead" -> Ok Components.Select_lookahead
  | "crossover" -> Ok (Components.Select_crossover Iheft.default_seed)
  | _ ->
    if String.length s > 10 && String.sub s 0 10 = "crossover:" then
      Result.map
        (fun seed -> Components.Select_crossover seed)
        (parse_seed ~what:"crossover" (String.sub s 10 (String.length s - 10)))
    else
      Error
        (Printf.sprintf
           "unknown selection %S (eft|cp-pin|dl|bim|oeft|lookahead|crossover[:SEED])" s)

let parse_insertion = function
  | "insertion" | "insert" -> Ok Components.Insert
  | "append" -> Ok Components.Append
  | s -> Error (Printf.sprintf "unknown insertion policy %S (insertion|append)" s)

let parse_tie s =
  match s with
  | "id" -> Ok Components.Tie_id
  | "ready" -> Ok Components.Tie_ready
  | _ ->
    if String.length s > 7 && String.sub s 0 7 = "seeded:" then
      Result.map
        (fun seed -> Components.Tie_seeded seed)
        (parse_seed ~what:"tie-break" (String.sub s 7 (String.length s - 7)))
    else Error (Printf.sprintf "unknown tie policy %S (id|ready|seeded:SEED)" s)

(* The selection components that need a specific auxiliary ranking table
   get it implied when rank= is omitted. *)
let default_ranking = function
  | Components.Select_bim -> Components.Rank_bil
  | Components.Select_oeft -> Components.Rank_oct
  | Components.Select_cp_pin -> Components.Rank_updown `Mean
  | Components.Select_dl -> Components.Rank_static_level
  | _ -> Components.Rank_upward `Mean

let compatible ranking selection =
  match selection with
  | Components.Select_bim when ranking <> Components.Rank_bil ->
    Error "select=bim requires rank=bil (the BIM* rows need the BIL level table)"
  | Components.Select_oeft when ranking <> Components.Rank_oct ->
    Error "select=oeft requires rank=oct (the optimistic cost table)"
  | _ -> Ok ()

let parse_combo s =
  (* ';' is accepted as a component separator so compositions can live
     inside comma-separated CLI lists *)
  let kvs = String.split_on_char ',' (String.map (fun c -> if c = ';' then ',' else c) s) in
  let ( let* ) = Result.bind in
  let* fields =
    List.fold_left
      (fun acc kv ->
        let* acc = acc in
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "malformed component %S (expected key=value)" kv)
        | Some i ->
          let k = String.sub kv 0 i
          and v = String.sub kv (i + 1) (String.length kv - i - 1) in
          if List.mem_assoc k acc then Error (Printf.sprintf "duplicate component %S" k)
          else Ok ((k, v) :: acc))
      (Ok []) kvs
  in
  let* () =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        if List.mem k [ "rank"; "select"; "insert"; "tie" ] then Ok ()
        else Error (Printf.sprintf "unknown component %S (rank|select|insert|tie)" k))
      (Ok ()) fields
  in
  let* selection =
    match List.assoc_opt "select" fields with
    | None -> Error "missing select= component"
    | Some v -> parse_selection v
  in
  let* ranking =
    match List.assoc_opt "rank" fields with
    | None -> Ok (default_ranking selection)
    | Some v -> parse_ranking v
  in
  let* () = compatible ranking selection in
  let* insertion =
    match List.assoc_opt "insert" fields with
    | None -> Ok Components.Insert
    | Some v -> parse_insertion v
  in
  let* tie =
    match List.assoc_opt "tie" fields with
    | None -> Ok Components.Tie_id
    | Some v -> parse_tie v
  in
  let spec = { List_scheduler.ranking; selection; insertion; tie } in
  Ok
    (of_spec ~name:(List_scheduler.spec_name spec) ~aliases:[]
       ~provenance:"ad-hoc composition" spec)

(* Extension parsers registered by higher layers (lib/search's `anneal:`
   specs) that cannot be depended on from here. Tried after the named
   entries and before the composition grammar, so an extension owns its
   whole prefix even when the spec contains '='. Registration is a
   module-initialization side effect in the owning library; last
   registered wins on overlapping prefixes. *)
let extensions : (string -> (entry, string) result option) list ref = ref []

let register_extension f = extensions := f :: !extensions

let try_extensions name =
  List.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> f name)
    None !extensions

(* Resolve a scheduler name: a registry entry (canonical name or alias),
   a registered extension spec (e.g. anneal:...), or a
   rank=...,select=... composition. *)
let parse name =
  match find name with
  | Some e -> Ok e
  | None -> (
    match try_extensions name with
    | Some r -> r
    | None ->
      if String.contains name '=' then parse_combo name
      else
        Error
          (Printf.sprintf "unknown scheduler %S (known: %s, or rank=...,select=...)" name
             (String.concat ", " (names ()))))
