(* HEFT-LA: HEFT with one-step lookahead processor selection. A
   candidate placement is scored by its own finish time plus the sum of
   the predicted earliest finish of each child under the tentative
   placement (unplaced co-parents optimistically ignored). *)

let spec =
  {
    List_scheduler.ranking = Components.Rank_upward `Mean;
    selection = Components.Select_lookahead;
    insertion = Components.Insert;
    tie = Components.Tie_id;
  }

let schedule graph platform = List_scheduler.run spec graph platform
