(** HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al. 1999).

    Tasks are prioritized by upward rank computed with averaged costs
    (mean ETC over processors, mean communication over processor pairs),
    then assigned in rank order to the processor minimizing the earliest
    finish time, with the insertion policy (a task may fill an idle gap).

    The helpers are exported because Hyb.BMCT and CPOP reuse the same
    averaged-cost ranking machinery. *)

type rank_policy =
  [ `Mean  (** average ETC over processors — Topcuoglu's original *)
  | `Best  (** minimum ETC (optimistic ranks) *)
  | `Worst  (** maximum ETC (pessimistic ranks) *) ]
(** How a task's processor-dependent cost is collapsed for ranking.
    Zhao & Sakellariou showed the choice can shift HEFT's makespan by
    several percent; [`Mean] is the default everywhere. *)

val average_weights : ?rank:rank_policy -> Dag.Graph.t -> Platform.t -> Dag.Levels.weights
(** Task weight = the [rank]-collapsed ETC row; edge weight = mean
    latency + volume × mean τ (off-diagonal averages). *)

val upward_ranks : ?rank:rank_policy -> Dag.Graph.t -> Platform.t -> float array
(** [rank_u(t) = w̄(t) + max over succs (c̄(t,s) + rank_u(s))] — the
    bottom levels under {!average_weights}. *)

val rank_order : ?rank:rank_policy -> Dag.Graph.t -> Platform.t -> Dag.Graph.task array
(** Tasks by decreasing upward rank (a valid topological order; ties are
    broken by task index for determinism). *)

val schedule : ?rank:rank_policy -> Dag.Graph.t -> Platform.t -> Schedule.t
(** The HEFT schedule. *)

val spec : ?rank:rank_policy -> unit -> List_scheduler.spec
(** HEFT as a composition: upward rank under [rank], EFT selection,
    insertion placement, lower-id tie-breaks. *)
