(** BIL — Best Imaginary Level scheduling (Oh & Ha, Euro-Par 1996).

    The basic imaginary level of a task on a processor,
    [BIL(t,p) = w(t,p) + max over succs s (min over q (BIL(s,q) + c(t,s,p,q)))],
    is the optimistic remaining path length if [t] runs on [p]. At each
    step the basic imaginary makespan [BIM*(t,p) = EST(t,p) + BIL(t,p)]
    is computed for every ready task; task priority is the ⌈r/m⌉-th
    smallest of its BIM* row (reflecting the processors it can realistically
    claim when [r] ready tasks compete for [m] processors), the highest-
    priority task is scheduled on the processor minimizing its BIM*. *)

val bil : Dag.Graph.t -> Platform.t -> float array array
(** [bil g p] is the [n × m] matrix of basic imaginary levels. *)

val schedule : Dag.Graph.t -> Platform.t -> Schedule.t

val spec : List_scheduler.spec
(** BIL as a composition: BIL level table, BIM* row-quantile selection,
    append placement. *)
