let groups graph platform =
  let order = Components.rank_order graph platform in
  let connected t group =
    List.exists
      (fun u -> Dag.Graph.has_edge graph ~src:u ~dst:t || Dag.Graph.has_edge graph ~src:t ~dst:u)
      group
  in
  let finished, current =
    Array.fold_left
      (fun (done_groups, group) t ->
        if connected t group then (List.rev group :: done_groups, [ t ])
        else (done_groups, t :: group))
      ([], []) order
  in
  List.rev (match current with [] -> finished | g -> List.rev g :: finished)

(* Evaluation of one group under a tentative assignment: tasks of a group
   are independent, so within a processor they run in increasing
   data-ready order on top of the processor's current availability. *)
type group_eval = {
  completion : float; (* max finish over the group *)
  finishes : (int * float) list; (* per task *)
  proc_orders : int list array; (* group tasks per proc, execution order *)
}

let evaluate_group ~graph ~platform ~proc_avail ~finish ~proc_of group assignment =
  let m = Platform.n_procs platform in
  let data_ready t p =
    let acc = ref 0. in
    Array.iter
      (fun (pred, volume) ->
        let arrival =
          finish.(pred) +. Platform.comm_time platform ~src:proc_of.(pred) ~dst:p ~volume
        in
        if arrival > !acc then acc := arrival)
      (Dag.Graph.preds graph t);
    !acc
  in
  let per_proc = Array.make m [] in
  List.iter (fun t -> per_proc.(assignment t) <- t :: per_proc.(assignment t)) group;
  let completion = ref 0. and finishes = ref [] in
  let proc_orders =
    Array.mapi
      (fun p tasks ->
        let tasks =
          List.sort
            (fun a b ->
              match Float.compare (data_ready a p) (data_ready b p) with
              | 0 -> Int.compare a b
              | c -> c)
            tasks
        in
        let avail = ref proc_avail.(p) in
        List.iter
          (fun t ->
            let start = Float.max !avail (data_ready t p) in
            let f = start +. Platform.etc platform ~task:t ~proc:p in
            avail := f;
            finishes := (t, f) :: !finishes;
            if f > !completion then completion := f)
          tasks;
        tasks)
      per_proc
  in
  { completion = !completion; finishes = !finishes; proc_orders }

let schedule graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let proc_avail = Array.make m 0. in
  let finish = Array.make n 0. in
  let proc_of = Array.make n (-1) in
  let rev_orders = Array.make m [] in
  let assign = Array.make n (-1) in
  List.iter
    (fun group ->
      (* initial assignment: fastest processor *)
      List.iter (fun t -> assign.(t) <- Platform.best_proc platform ~task:t) group;
      let eval () =
        evaluate_group ~graph ~platform ~proc_avail ~finish ~proc_of group (fun t ->
            assign.(t))
      in
      let current = ref (eval ()) in
      (* migrate tasks away from the last-finishing processor while the
         group completion improves; bounded for safety *)
      let improving = ref true in
      let steps = ref 0 in
      let max_steps = (List.length group * m) + 16 in
      while !improving && !steps < max_steps do
        incr steps;
        improving := false;
        (* processor realizing the completion time *)
        let crit_proc = ref (-1) in
        List.iter
          (fun (t, f) -> if f = !current.completion then crit_proc := assign.(t))
          !current.finishes;
        if !crit_proc >= 0 then begin
          let best = ref None in
          List.iter
            (fun t ->
              if assign.(t) = !crit_proc then
                for q = 0 to m - 1 do
                  if q <> !crit_proc then begin
                    let saved = assign.(t) in
                    assign.(t) <- q;
                    let e = eval () in
                    (match !best with
                    | Some (_, _, _, c) when c <= e.completion -> ()
                    | _ ->
                      if e.completion < !current.completion then
                        best := Some (t, q, e, e.completion));
                    assign.(t) <- saved
                  end
                done)
            group;
          match !best with
          | Some (t, q, e, _) ->
            assign.(t) <- q;
            current := e;
            improving := true
          | None -> ()
        end
      done;
      (* commit the group *)
      List.iter (fun (t, f) -> finish.(t) <- f) !current.finishes;
      Array.iteri
        (fun p tasks ->
          List.iter
            (fun t ->
              proc_of.(t) <- p;
              rev_orders.(p) <- t :: rev_orders.(p);
              if finish.(t) > proc_avail.(p) then proc_avail.(p) <- finish.(t))
            tasks)
        !current.proc_orders)
    (groups graph platform);
  let order = Array.map (fun l -> Array.of_list (List.rev l)) rev_orders in
  Schedule.make ~graph ~n_procs:m ~proc_of ~order
