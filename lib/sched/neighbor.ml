(* Single-move neighborhood over schedules: reassign one task to a
   (processor, position). This is the move type shared by the bench
   reeval probes, the service's neighbor fast path, and the (future)
   robustness-aware local search — [Engine.reevaluate] consumes exactly
   one of these per step. *)

type move = {
  task : int;
  to_ : int;  (* destination processor *)
  at : int option;  (* position in the destination row after removal; None = append *)
}

let make ?at ~task ~to_ () = { task; to_; at }

let apply sched m = Schedule.reassign ?at:m.at sched ~task:m.task ~to_:m.to_

let apply_opt sched m =
  match apply sched m with
  | s -> Some s
  | exception Invalid_argument _ -> None

let is_noop sched m =
  let open Schedule in
  m.to_ = sched.proc_of.(m.task)
  &&
  (* after removal the row shrinks by one, so position [p] is a no-op
     iff the task already sits at [p]; append is a no-op iff it is last *)
  let row_len = Array.length sched.order.(m.to_) in
  let pos = sched.pos_in_proc.(m.task) in
  match m.at with None -> pos = row_len - 1 | Some p -> p = pos

(* Draw a uniformly random feasible move (retrying infeasible draws —
   moves that would deadlock the eager execution). Deterministic in
   [rng]; raises after [attempts] consecutive infeasible draws, which
   cannot happen on schedules with >= 1 processor because appending a
   task to its own row is always feasible (checked last). *)
let random ?(attempts = 64) ~rng sched =
  let open Schedule in
  let n = n_tasks sched in
  let rec draw k =
    if k = 0 then
      (* fallback: same-proc append is always acyclic *)
      let task = Prng.Xoshiro.int rng n in
      { task; to_ = sched.proc_of.(task); at = None }
    else begin
      let task = Prng.Xoshiro.int rng n in
      let to_ = Prng.Xoshiro.int rng sched.n_procs in
      let row_len =
        Array.length sched.order.(to_) - (if sched.proc_of.(task) = to_ then 1 else 0)
      in
      let at =
        if Prng.Xoshiro.int rng 2 = 0 then None
        else Some (Prng.Xoshiro.int rng (row_len + 1))
      in
      let m = { task; to_; at } in
      match apply_opt sched m with Some _ -> m | None -> draw (k - 1)
    end
  in
  draw attempts

let to_string m =
  match m.at with
  | None -> Printf.sprintf "%d->p%d" m.task m.to_
  | Some p -> Printf.sprintf "%d->p%d@%d" m.task m.to_ p

(* Swap move: exchange two tasks' (processor, position) slots. *)

type swap = { a : int; b : int }

let make_swap ~a ~b = { a; b }

let apply_swap sched (s : swap) = Schedule.swap sched ~a:s.a ~b:s.b

let apply_swap_opt sched s =
  match apply_swap sched s with
  | s' -> Some s'
  | exception Invalid_argument _ -> None

(* Draw a random feasible swap, deterministic in [rng]. Unlike [random]
   there is no always-feasible fallback swap, so after [attempts]
   infeasible or degenerate draws this returns [None] (on a 1-task
   schedule no swap exists at all). *)
let random_swap ?(attempts = 64) ~rng sched =
  let n = Schedule.n_tasks sched in
  if n < 2 then None
  else
    let rec draw k =
      if k = 0 then None
      else
        let a = Prng.Xoshiro.int rng n in
        let b = Prng.Xoshiro.int rng n in
        if a = b then draw (k - 1)
        else
          let s = { a; b } in
          match apply_swap_opt sched s with Some _ -> Some s | None -> draw (k - 1)
    in
    draw attempts

let swap_to_string s = Printf.sprintf "%d<->%d" s.a s.b

(* One feasibility-checked step drawn from either neighborhood —
   [Reassign] via {!Schedule.reassign}, [Swap] via {!Schedule.swap}. *)

type any = Reassign of move | Swap of swap

let apply_any sched = function
  | Reassign m -> apply sched m
  | Swap s -> apply_swap sched s

let apply_any_opt sched = function
  | Reassign m -> apply_opt sched m
  | Swap s -> apply_swap_opt sched s

let any_to_string = function
  | Reassign m -> to_string m
  | Swap s -> swap_to_string s
