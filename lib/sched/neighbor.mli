(** Single-move schedule neighborhoods.

    A {!move} reassigns one task to a (processor, position); applying it
    patches the schedule in O(row) via {!Schedule.reassign} instead of a
    full rebuild. This is the currency of incremental re-evaluation
    ([Makespan.Engine.reevaluate]), the service's neighbor job specs,
    and local-search schedulers. *)

type move = {
  task : int;  (** task to move *)
  to_ : int;  (** destination processor *)
  at : int option;
      (** position in the destination order row, counted {e after} the
          task is removed from its current row; [None] appends *)
}

val make : ?at:int -> task:int -> to_:int -> unit -> move

val apply : Schedule.t -> move -> Schedule.t
(** Patched schedule. Raises [Invalid_argument] if the move is out of
    range or would deadlock the eager execution. *)

val apply_opt : Schedule.t -> move -> Schedule.t option
(** [apply] with infeasible moves mapped to [None]. *)

val is_noop : Schedule.t -> move -> bool
(** True when applying the move reproduces the same assignment and
    order (same processor, same resulting position). *)

val random : ?attempts:int -> rng:Prng.Xoshiro.t -> Schedule.t -> move
(** A random feasible move, deterministic in [rng]. Infeasible draws are
    retried up to [attempts] times (default 64) before falling back to a
    guaranteed-feasible same-processor append. *)

val to_string : move -> string
(** ["12->p3"] or ["12->p3@0"] — for labels and logs. *)

(** {1 Swap moves}

    A {!swap} exchanges the (processor, position) slots of two tasks via
    {!Schedule.swap}. Together with {!move} this is the second move
    class of the local-search neighborhood. *)

type swap = { a : int; b : int }

val make_swap : a:int -> b:int -> swap

val apply_swap : Schedule.t -> swap -> Schedule.t
(** Raises [Invalid_argument] if out of range, [a = b], or the exchange
    would deadlock the eager execution. *)

val apply_swap_opt : Schedule.t -> swap -> Schedule.t option

val random_swap : ?attempts:int -> rng:Prng.Xoshiro.t -> Schedule.t -> swap option
(** A random feasible swap, deterministic in [rng]. [None] after
    [attempts] (default 64) infeasible draws — unlike {!random} there is
    no universally feasible fallback swap. *)

val swap_to_string : swap -> string
(** ["12<->7"]. *)

(** {1 Either neighborhood} *)

type any = Reassign of move | Swap of swap

val apply_any : Schedule.t -> any -> Schedule.t
val apply_any_opt : Schedule.t -> any -> Schedule.t option
val any_to_string : any -> string
