(** Eager schedules (§II).

    A schedule fixes, for every task, a processor and a position in that
    processor's execution order. Start and finish times are {e not} part
    of the schedule: under the eager discipline each task starts as soon
    as its predecessors' data has arrived and its processor is free, in
    the recorded order — so times are derived by {!Simulator} from
    whichever durations (deterministic, mean, or sampled) are in play. *)

type t = private {
  graph : Dag.Graph.t;
  n_procs : int;
  proc_of : int array;  (** task → processor *)
  order : int array array;  (** processor → its tasks, execution order *)
  pos_in_proc : int array;  (** task → index within its processor's order *)
}

val make :
  graph:Dag.Graph.t -> n_procs:int -> proc_of:int array -> order:int array array -> t
(** Validates that [order] partitions the task set consistently with
    [proc_of] and that processor orders are compatible with the DAG (the
    union of precedence and processor-order constraints is acyclic —
    otherwise the eager execution would deadlock). *)

val of_assignment_sequence :
  graph:Dag.Graph.t -> n_procs:int -> (Dag.Graph.task * Platform.proc) list -> t
(** [of_assignment_sequence ~graph ~n_procs picks] builds a schedule from
    a list-scheduling trace: tasks in the order they were scheduled, each
    appended to its processor's order. *)

val reassign : ?at:int -> t -> task:Dag.Graph.task -> to_:Platform.proc -> t
(** [reassign ?at t ~task ~to_] is the one-move neighbor of [t]: [task]
    is removed from its current processor's order and inserted into
    [to_]'s order at position [at] (default: appended). [at] indexes the
    target row {e after} removal, so same-processor repositioning works
    uniformly. Only the two affected order rows are rebuilt — everything
    else is shared with [t] — but acyclicity is re-checked and
    [Invalid_argument] raised if the move would deadlock the eager
    execution. *)

val swap : t -> a:Dag.Graph.task -> b:Dag.Graph.task -> t
(** [swap t ~a ~b] exchanges the (processor, position) slots of tasks [a]
    and [b], leaving every other task in place. Only the affected order
    rows are rebuilt (one row when [a] and [b] share a processor).
    Acyclicity is re-checked and [Invalid_argument] raised if the
    exchange would deadlock the eager execution, or if [a = b]. *)

val validate : t -> (unit, string) result
(** Re-check the invariants of an already-built schedule: every task
    assigned exactly once, per-processor exclusivity (order rows
    partition the tasks consistently with [proc_of]), and precedence
    respected (the eager execution exists). [Ok ()] for every value
    produced by {!make}; exported as the single oracle for test
    helpers. *)

val proc_pred : t -> Dag.Graph.task -> Dag.Graph.task option
(** The task executed immediately before on the same processor. *)

val proc_succ : t -> Dag.Graph.task -> Dag.Graph.task option

val n_tasks : t -> int

val tasks_of_proc : t -> Platform.proc -> Dag.Graph.task array
(** Execution order of one processor (do not mutate). *)

val to_string : t -> string
(** Compact textual form, one line per processor:
    ["p0: 0 1 3\np1: 2\n"]. Stable across versions; round-trips through
    {!of_string}. *)

val of_string : graph:Dag.Graph.t -> string -> t
(** Parse {!to_string} output back against the same task graph, with full
    {!make} validation. Raises [Invalid_argument] on malformed input. *)
