(* CPOP (Topcuoglu et al. 2002) as a framework instance: priority is
   upward + downward rank, critical-path tasks are pinned to the
   processor minimizing the whole path's execution time, everything else
   goes to its EFT processor with insertion. *)

let critical_path = Components.critical_path

let spec =
  {
    List_scheduler.ranking = Components.Rank_updown `Mean;
    selection = Components.Select_cp_pin;
    insertion = Components.Insert;
    tie = Components.Tie_ready;
  }

let schedule graph platform = List_scheduler.run spec graph platform
