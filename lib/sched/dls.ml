(* DLS (Sih & Lee 1993) as a framework instance: median static level,
   joint (task, processor) dynamic-level maximization, append-only
   placement. *)

let static_levels = Components.static_levels

let spec =
  {
    List_scheduler.ranking = Components.Rank_static_level;
    selection = Components.Select_dl;
    insertion = Components.Append;
    tie = Components.Tie_ready;
  }

let schedule graph platform = List_scheduler.run spec graph platform
