(** CPOP — Critical Path On a Processor (Topcuoglu et al. 1999).

    Included as a fourth makespan-centric baseline beyond the paper's
    three. Task priority is [rank_u + rank_d] under averaged costs; the
    tasks realizing the critical value are all pinned to the single
    processor minimizing the critical path's total computation time;
    other tasks go to their earliest-finish-time processor (insertion
    policy). *)

val critical_path : Dag.Graph.t -> Platform.t -> Dag.Graph.task list
(** The critical path under averaged costs, entry to exit. *)

val schedule : Dag.Graph.t -> Platform.t -> Schedule.t

val spec : List_scheduler.spec
(** CPOP as a composition: upward+downward rank, critical-path pinning,
    insertion placement. *)
