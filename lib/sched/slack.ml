type graph_mode =
  [ `Disjunctive
  | `Precedence ]

type summary = {
  per_task : float array;
  total : float;
  mean : float;
  std : float;
  makespan : float;
}

let summarize per_task makespan =
  let n = float_of_int (Array.length per_task) in
  let total = Array.fold_left ( +. ) 0. per_task in
  let mean = total /. n in
  let var =
    Array.fold_left
      (fun acc s ->
        let d = s -. mean in
        acc +. (d *. d))
      0. per_task
    /. n
  in
  { per_task; total; mean; std = sqrt var; makespan }

let of_weighted_graph g w =
  summarize (Dag.Levels.slacks g w) (Dag.Levels.makespan g w)

let compute ?(mode = `Disjunctive) sched platform model =
  let w = Disjunctive.weights sched platform model in
  match mode with
  | `Disjunctive -> of_weighted_graph (Disjunctive.graph_of sched) w
  | `Precedence ->
    (* §IV read literally: levels on the precedence DAG, but M is the
       schedule's actual (mean-duration, eager) makespan, so idle time
       inflates every task's slack *)
    let graph = sched.Schedule.graph in
    let tl = Dag.Levels.top_levels graph w in
    let bl = Dag.Levels.bottom_levels graph w in
    let m = (Simulator.mean_times sched platform model).Simulator.makespan in
    let per_task =
      Array.init (Dag.Graph.n_tasks graph) (fun i ->
          Float.max 0. (m -. bl.(i) -. tl.(i)))
    in
    summarize per_task m
