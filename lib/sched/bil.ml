(* BIL (Oh & Ha 1996) as a framework instance: the basic imaginary
   makespan BIM*(t, p) = EST(t, p) + BIL(t, p) drives a row-quantile
   task priority and a row-argmin processor pick, append-only
   placement. *)

let bil = Components.bil_table

let spec =
  {
    List_scheduler.ranking = Components.Rank_bil;
    selection = Components.Select_bim;
    insertion = Components.Append;
    tie = Components.Tie_ready;
  }

let schedule graph platform = List_scheduler.run spec graph platform
