(** DLS / GDL — Dynamic Level Scheduling (Sih & Lee 1993), a fifth
    makespan-centric baseline from the paper's introduction.

    The dynamic level of a ready task on a processor is
    [DL(t,p) = SL(t) − max(data-ready(t,p), avail(p)) + Δ(t,p)] where
    [SL] is the static level (bottom level under median execution costs,
    ignoring communications) and [Δ(t,p) = w̄(t) − w(t,p)] rewards
    processors on which the task runs faster than average. At each step
    the (task, processor) pair with the highest dynamic level is
    scheduled. *)

val static_levels : Dag.Graph.t -> Platform.t -> float array

val schedule : Dag.Graph.t -> Platform.t -> Schedule.t

val spec : List_scheduler.spec
(** DLS as a composition: median static level, joint dynamic-level
    maximization, append placement. *)
