(* PEFT (Arabnejad & Barbosa 2014) as a framework instance: the
   optimistic cost table OCT(t, p) — the best-case remaining work after
   running t on p — yields the task priority (row average) and biases
   processor selection towards placements with cheap futures
   (minimize EFT + OCT). *)

let oct = Components.oct_table

let spec =
  {
    List_scheduler.ranking = Components.Rank_oct;
    selection = Components.Select_oeft;
    insertion = Components.Insert;
    tie = Components.Tie_id;
  }

let schedule graph platform = List_scheduler.run spec graph platform
