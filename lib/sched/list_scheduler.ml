(* Generic list-scheduling core: every composition of a ranking, a
   processor-selection rule and an insertion/tie-break policy is one
   scheduler (DESIGN.md §13). HEFT, CPOP, DLS, BIL, PEFT, HEFT-LA and
   IHEFT are the named instances in {!Registry}.

   The driver is the classic event-driven loop: keep the set of ready
   tasks (all predecessors placed), repeatedly ask the selection
   component for a (task, processor) pick, place it, release newly ready
   successors. Ready-list bookkeeping mirrors the textbook formulation —
   newly released tasks are pushed in successor order — so compositions
   reproduce the legacy implementations bit for bit. *)

open Components

type spec = {
  ranking : ranking;
  selection : selection;
  insertion : insertion;
  tie : tie;
}

let spec_name spec =
  Printf.sprintf "rank=%s,select=%s,insert=%s,tie=%s"
    (ranking_name spec.ranking)
    (selection_name spec.selection)
    (insertion_name spec.insertion)
    (tie_name spec.tie)

(* Static tables computed once per run, before the placement loop. *)
type info = {
  priority : float array;
  bil_levels : float array array; (* [||] unless used *)
  oct : float array array; (* [||] unless used *)
  on_cp : bool array; (* [||] unless Select_cp_pin *)
  cp_proc : int;
}

let prepare spec graph platform =
  let n = Dag.Graph.n_tasks graph in
  let m = Platform.n_procs platform in
  let priority, bil_levels, oct =
    match spec.ranking with
    | Rank_upward c -> (upward_ranks ~rank:c graph platform, [||], [||])
    | Rank_updown c ->
      let ru = upward_ranks ~rank:c graph platform in
      let rd = downward_ranks ~rank:c graph platform in
      (Array.init n (fun v -> ru.(v) +. rd.(v)), [||], [||])
    | Rank_static_level -> (static_levels graph platform, [||], [||])
    | Rank_bil ->
      let levels = bil_table graph platform in
      (* static fallback priority for non-BIM selectors: the level on
         the task's best processor *)
      let best v = Array.fold_left Float.min levels.(v).(0) levels.(v) in
      (Array.init n best, levels, [||])
    | Rank_oct ->
      let oct = oct_table graph platform in
      let avg v = Array.fold_left ( +. ) 0. oct.(v) /. float_of_int m in
      (Array.init n avg, [||], oct)
    | Rank_het_upward -> (heterogeneity_ranks graph platform, [||], [||])
  in
  let on_cp, cp_proc =
    match spec.selection with
    | Select_cp_pin ->
      let cp = critical_path graph platform in
      let on_cp = Array.make n false in
      List.iter (fun t -> on_cp.(t) <- true) cp;
      let best = ref 0 and best_cost = ref infinity in
      for p = 0 to m - 1 do
        let cost =
          List.fold_left (fun acc t -> acc +. Platform.etc platform ~task:t ~proc:p) 0. cp
        in
        if cost < !best_cost then begin
          best_cost := cost;
          best := p
        end
      done;
      (on_cp, !best)
    | _ -> ([||], 0)
  in
  { priority; bil_levels; oct; on_cp; cp_proc }

(* ready-task argmax under the tie policy (non-joint selectors) *)
let pick_task tie (info : info) ready =
  let prio = info.priority in
  match ready with
  | [] -> invalid_arg "List_scheduler: empty ready list"
  | first :: rest -> (
    match tie with
    | Tie_ready ->
      List.fold_left (fun best c -> if prio.(c) > prio.(best) then c else best) first rest
    | Tie_id ->
      List.fold_left
        (fun best c ->
          if prio.(c) > prio.(best) || (prio.(c) = prio.(best) && c < best) then c
          else best)
        first rest
    | Tie_seeded seed ->
      let hash v = Prng.Splitmix.(next (create (Int64.add seed (Int64.of_int v)))) in
      List.fold_left
        (fun best c ->
          if
            prio.(c) > prio.(best)
            || (prio.(c) = prio.(best) && Int64.unsigned_compare (hash c) (hash best) < 0)
          then c
          else best)
        first rest)

(* min-EFT processor, ties to the lower index *)
let eft_proc state ~insert ~task m =
  let best_proc = ref 0 and best_finish = ref infinity in
  for proc = 0 to m - 1 do
    let _, finish = State.candidate state ~insert ~task ~proc in
    if finish < !best_finish then begin
      best_finish := finish;
      best_proc := proc
    end
  done;
  !best_proc

let select spec (info : info) state rng ready =
  let graph = state.State.graph and platform = state.State.platform in
  let m = Platform.n_procs platform in
  let insert = spec.insertion = Insert in
  match spec.selection with
  | Select_eft ->
    let t = pick_task spec.tie info ready in
    (t, eft_proc state ~insert ~task:t m)
  | Select_cp_pin ->
    let t = pick_task spec.tie info ready in
    let p = if info.on_cp.(t) then info.cp_proc else eft_proc state ~insert ~task:t m in
    (t, p)
  | Select_oeft ->
    let t = pick_task spec.tie info ready in
    let oct = info.oct in
    let best_proc = ref 0 and best_score = ref infinity in
    for proc = 0 to m - 1 do
      let _, finish = State.candidate state ~insert ~task:t ~proc in
      let score = finish +. oct.(t).(proc) in
      if score < !best_score then begin
        best_score := score;
        best_proc := proc
      end
    done;
    (t, !best_proc)
  | Select_lookahead ->
    (* score(p) = EFT(t, p) + Σ over children of the predicted earliest
       child finish with t tentatively on p (unplaced co-parents are
       optimistically ignored) *)
    let t = pick_task spec.tie info ready in
    let succs = Dag.Graph.succs graph t in
    let best_proc = ref 0 and best_score = ref infinity in
    for proc = 0 to m - 1 do
      let score =
        State.with_tentative state ~insert ~task:t ~proc (fun () ->
            let finish = State.finish_of state t in
            Array.fold_left
              (fun acc (c, _) ->
                let best_child = ref infinity in
                for q = 0 to m - 1 do
                  let _, f =
                    if insert then
                      State.eft ~ready_time:State.ready_time_partial state ~task:c ~proc:q
                    else
                      State.append_finish ~ready_time:State.ready_time_partial state
                        ~task:c ~proc:q
                  in
                  if f < !best_child then best_child := f
                done;
                acc +. !best_child)
              finish succs)
      in
      if score < !best_score then begin
        best_score := score;
        best_proc := proc
      end
    done;
    (t, !best_proc)
  | Select_crossover _ ->
    (* IHEFT cross-over: let p_g minimize EFT and p_l be the locally
       fastest processor. When they disagree, take p_l with probability
       θ / (1 + Δ) where Δ = (EFT(p_l) − EFT(p_g)) / EFT(p_g) is the
       relative finish-time penalty and θ the fraction of tasks still
       unscheduled — exploration decays as the schedule fills and as the
       penalty grows. One RNG draw per disagreement, so runs are
       bit-reproducible for a fixed seed. *)
    let t = pick_task spec.tie info ready in
    let finishes =
      Array.init m (fun proc -> snd (State.candidate state ~insert ~task:t ~proc))
    in
    let p_g = ref 0 in
    for p = 1 to m - 1 do
      if finishes.(p) < finishes.(!p_g) then p_g := p
    done;
    let p_l = Platform.best_proc platform ~task:t in
    let p =
      if p_l = !p_g then !p_g
      else begin
        let n = float_of_int (Dag.Graph.n_tasks graph) in
        let theta = (n -. float_of_int (State.n_placed state)) /. n in
        let delta = (finishes.(p_l) -. finishes.(!p_g)) /. finishes.(!p_g) in
        let u = Prng.Splitmix.next_float rng in
        if u < theta /. (1. +. delta) then p_l else !p_g
      end
    in
    (t, p)
  | Select_dl ->
    (* joint (task, proc) maximization of the dynamic level
       DL(t, p) = SL(t) − start(t, p) + (mean_etc(t) − etc(t, p)) *)
    let best = ref None in
    List.iter
      (fun t ->
        for p = 0 to m - 1 do
          let start, _ = State.candidate state ~insert ~task:t ~proc:p in
          let dl =
            info.priority.(t) -. start
            +. (Platform.mean_etc platform ~task:t -. Platform.etc platform ~task:t ~proc:p)
          in
          match !best with
          | Some (_, _, best_dl) when best_dl >= dl -> ()
          | _ -> best := Some (t, p, dl)
        done)
      ready;
    (match !best with None -> invalid_arg "List_scheduler: empty ready list"
    | Some (t, p, _) -> (t, p))
  | Select_bim ->
    (* BIM* rows for every ready task; priority is the k-th smallest
       entry with k = ⌈r/m⌉ capped at m, the processor the row argmin *)
    let r = List.length ready in
    let rows =
      List.map
        (fun t ->
          ( t,
            Array.init m (fun p ->
                let start, _ = State.candidate state ~insert ~task:t ~proc:p in
                start +. info.bil_levels.(t).(p)) ))
        ready
    in
    let k = Int.min m ((r + m - 1) / m) in
    let priority row =
      let sorted = Array.copy row in
      Array.sort Float.compare sorted;
      sorted.(k - 1)
    in
    let best_task, best_row =
      match rows with
      | [] -> invalid_arg "List_scheduler: empty ready list"
      | first :: rest ->
        List.fold_left
          (fun ((_, brow) as best) ((_, row) as cand) ->
            if priority row > priority brow then cand else best)
          first rest
    in
    let best_proc = ref 0 in
    for p = 1 to m - 1 do
      if best_row.(p) < best_row.(!best_proc) then best_proc := p
    done;
    (best_task, !best_proc)

let run_with_info spec (info : info) graph platform =
  let n = Dag.Graph.n_tasks graph in
  let rng =
    match spec.selection with
    | Select_crossover seed -> Prng.Splitmix.create seed
    | _ -> Prng.Splitmix.create 0L
  in
  let state = State.create graph platform in
  let remaining_preds = Array.init n (fun v -> Array.length (Dag.Graph.preds graph v)) in
  let ready = ref [] in
  Array.iteri (fun v d -> if d = 0 then ready := v :: !ready) remaining_preds;
  for _ = 1 to n do
    let t, p = select spec info state rng !ready in
    State.place state ~insert:(spec.insertion = Insert) ~task:t ~proc:p;
    ready := List.filter (fun v -> v <> t) !ready;
    Array.iter
      (fun (s, _) ->
        remaining_preds.(s) <- remaining_preds.(s) - 1;
        if remaining_preds.(s) = 0 then ready := s :: !ready)
      (Dag.Graph.succs graph t)
  done;
  State.to_schedule state

let run spec graph platform = run_with_info spec (prepare spec graph platform) graph platform

(* Same driver with the static priority table replaced wholesale — the
   replay primitive behind priority-perturbation search moves: jitter the
   ranks, re-run the placement loop, get a (validated) schedule back.
   Joint selectors (DL, BIM) and OCT/BIL tables keep their own data; only
   the [pick_task] ordering is overridden. *)
let run_ranked spec ~priority graph platform =
  let n = Dag.Graph.n_tasks graph in
  if Array.length priority <> n then
    invalid_arg "List_scheduler.run_ranked: priority table has wrong length";
  let info = { (prepare spec graph platform) with priority } in
  run_with_info spec info graph platform
