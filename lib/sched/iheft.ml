(* IHEFT: heterogeneity-weighted upward rank (mean + std task cost) and
   a seeded stochastic cross-over between the global-EFT processor and
   the task's locally fastest processor. Deterministic for a fixed seed;
   see {!Components.Select_crossover} for the threshold rule. *)

let default_seed = 1L

let spec ?(seed = default_seed) () =
  {
    List_scheduler.ranking = Components.Rank_het_upward;
    selection = Components.Select_crossover seed;
    insertion = Components.Insert;
    tie = Components.Tie_id;
  }

let schedule ?(seed = default_seed) graph platform =
  List_scheduler.run (spec ~seed ()) graph platform
