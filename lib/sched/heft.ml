(* HEFT (Topcuoglu et al. 2002) as a framework instance: upward rank
   under the chosen cost collapse, EFT processor selection, insertion-
   based placement. The legacy static-list formulation is equivalent to
   the ready-queue driver with lower-id tie-breaks: upward rank strictly
   decreases along edges, so the highest-ranked unscheduled task is
   always ready. *)

type rank_policy = Components.collapse

let average_weights = Components.average_weights
let upward_ranks = Components.upward_ranks
let rank_order = Components.rank_order

let spec ?(rank = `Mean) () =
  {
    List_scheduler.ranking = Components.Rank_upward rank;
    selection = Components.Select_eft;
    insertion = Components.Insert;
    tie = Components.Tie_id;
  }

let schedule ?(rank = `Mean) graph platform =
  List_scheduler.run (spec ~rank ()) graph platform
