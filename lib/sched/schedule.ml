type t = {
  graph : Dag.Graph.t;
  n_procs : int;
  proc_of : int array;
  order : int array array;
  pos_in_proc : int array;
}

(* The eager execution exists iff DAG edges plus processor-order edges
   form a DAG; check with Kahn's algorithm over the union. *)
let check_acyclic graph order =
  let n = Dag.Graph.n_tasks graph in
  let extra_succ = Array.make n [] in
  let indeg = Array.init n (fun v -> Array.length (Dag.Graph.preds graph v)) in
  Array.iter
    (fun tasks ->
      for i = 0 to Array.length tasks - 2 do
        let u = tasks.(i) and v = tasks.(i + 1) in
        extra_succ.(u) <- v :: extra_succ.(u);
        indeg.(v) <- indeg.(v) + 1
      done)
    order;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    let release w =
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then Queue.add w queue
    in
    Array.iter (fun (w, _) -> release w) (Dag.Graph.succs graph v);
    List.iter release extra_succ.(v)
  done;
  if !seen <> n then
    invalid_arg "Schedule.make: processor orders conflict with precedence (deadlock)"

let make ~graph ~n_procs ~proc_of ~order =
  let n = Dag.Graph.n_tasks graph in
  if n_procs <= 0 then invalid_arg "Schedule.make: n_procs must be positive";
  if Array.length proc_of <> n then invalid_arg "Schedule.make: proc_of has wrong length";
  if Array.length order <> n_procs then
    invalid_arg "Schedule.make: order must have one row per processor";
  Array.iter
    (fun p -> if p < 0 || p >= n_procs then invalid_arg "Schedule.make: processor out of range")
    proc_of;
  let pos_in_proc = Array.make n (-1) in
  Array.iteri
    (fun p tasks ->
      Array.iteri
        (fun i v ->
          if v < 0 || v >= n then invalid_arg "Schedule.make: task out of range";
          if pos_in_proc.(v) <> -1 then invalid_arg "Schedule.make: task scheduled twice";
          if proc_of.(v) <> p then
            invalid_arg "Schedule.make: order row disagrees with proc_of";
          pos_in_proc.(v) <- i)
        tasks)
    order;
  Array.iteri
    (fun v pos -> if pos = -1 then invalid_arg (Printf.sprintf "Schedule.make: task %d unscheduled" v))
    pos_in_proc;
  check_acyclic graph order;
  { graph; n_procs; proc_of = Array.copy proc_of; order = Array.map Array.copy order; pos_in_proc }

let of_assignment_sequence ~graph ~n_procs picks =
  let n = Dag.Graph.n_tasks graph in
  let proc_of = Array.make n (-1) in
  let rev_orders = Array.make n_procs [] in
  List.iter
    (fun (task, proc) ->
      if task < 0 || task >= n then
        invalid_arg "Schedule.of_assignment_sequence: task out of range";
      if proc < 0 || proc >= n_procs then
        invalid_arg "Schedule.of_assignment_sequence: processor out of range";
      if proc_of.(task) <> -1 then
        invalid_arg "Schedule.of_assignment_sequence: task scheduled twice";
      proc_of.(task) <- proc;
      rev_orders.(proc) <- task :: rev_orders.(proc))
    picks;
  let order = Array.map (fun l -> Array.of_list (List.rev l)) rev_orders in
  make ~graph ~n_procs ~proc_of ~order

(* Re-check the representation invariants of an already-built value:
   every task assigned exactly once, each order row consistent with
   proc_of (per-processor exclusivity), and precedence respected (the
   eager execution exists). [make] enforces all of this at construction;
   [validate] guards against later internal mutation and gives test
   helpers a single oracle. *)
let validate t =
  try
    let n = Dag.Graph.n_tasks t.graph in
    if Array.length t.proc_of <> n then invalid_arg "Schedule.validate: proc_of length";
    if Array.length t.order <> t.n_procs then
      invalid_arg "Schedule.validate: order must have one row per processor";
    let seen = Array.make n false in
    Array.iteri
      (fun p tasks ->
        Array.iteri
          (fun i v ->
            if v < 0 || v >= n then invalid_arg "Schedule.validate: task out of range";
            if seen.(v) then invalid_arg "Schedule.validate: task scheduled twice";
            seen.(v) <- true;
            if t.proc_of.(v) <> p then
              invalid_arg "Schedule.validate: order row disagrees with proc_of";
            if t.pos_in_proc.(v) <> i then
              invalid_arg "Schedule.validate: stale position index")
          tasks)
      t.order;
    Array.iteri
      (fun v s ->
        if not s then invalid_arg (Printf.sprintf "Schedule.validate: task %d unscheduled" v))
      seen;
    check_acyclic t.graph t.order;
    Ok ()
  with Invalid_argument msg -> Error msg

(* A one-move neighbor: remove [task] from its processor's order row and
   insert it into [to_]'s row (at [at], default append). Only the two
   affected rows are rebuilt; all other rows, [graph], and the untouched
   prefix of the invariants are shared with the original value — this is
   the cheap patched constructor behind [Sched.Neighbor] and
   [Engine.reevaluate]. Acyclicity must still be re-checked (a move can
   create an order/precedence deadlock), which is O(V+E) scalar work. *)
let reassign ?at t ~task ~to_ =
  let n = Dag.Graph.n_tasks t.graph in
  if task < 0 || task >= n then invalid_arg "Schedule.reassign: task out of range";
  if to_ < 0 || to_ >= t.n_procs then
    invalid_arg "Schedule.reassign: processor out of range";
  let from = t.proc_of.(task) in
  let removed =
    let row = t.order.(from) in
    let out = Array.make (Array.length row - 1) 0 in
    let j = ref 0 in
    Array.iter
      (fun v ->
        if v <> task then begin
          out.(!j) <- v;
          incr j
        end)
      row;
    out
  in
  let insert row =
    let len = Array.length row in
    let pos =
      match at with
      | None -> len
      | Some p ->
        if p < 0 || p > len then invalid_arg "Schedule.reassign: position out of range";
        p
    in
    let out = Array.make (len + 1) task in
    Array.blit row 0 out 0 pos;
    Array.blit row pos out (pos + 1) (len - pos);
    out
  in
  let order = Array.copy t.order in
  order.(from) <- removed;
  (* same-proc moves insert into the already-shrunk row, so [at] always
     indexes the row without [task] in it *)
  order.(to_) <- insert order.(to_);
  let proc_of = Array.copy t.proc_of in
  proc_of.(task) <- to_;
  let pos_in_proc = Array.copy t.pos_in_proc in
  Array.iteri (fun i v -> pos_in_proc.(v) <- i) order.(from);
  Array.iteri (fun i v -> pos_in_proc.(v) <- i) order.(to_);
  check_acyclic t.graph order;
  { t with proc_of; order; pos_in_proc }

(* Exchange two tasks' (processor, position) slots. Like [reassign] this
   rebuilds only the affected order rows (one row when the tasks share a
   processor, two otherwise) and re-checks acyclicity — a swap can
   deadlock the eager execution just like a reassign can. *)
let swap t ~a ~b =
  let n = Dag.Graph.n_tasks t.graph in
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Schedule.swap: task out of range";
  if a = b then invalid_arg "Schedule.swap: tasks must differ";
  let pa = t.proc_of.(a) and pb = t.proc_of.(b) in
  let order = Array.copy t.order in
  if pa = pb then begin
    let row = Array.copy t.order.(pa) in
    row.(t.pos_in_proc.(a)) <- b;
    row.(t.pos_in_proc.(b)) <- a;
    order.(pa) <- row
  end
  else begin
    order.(pa) <- Array.map (fun v -> if v = a then b else v) t.order.(pa);
    order.(pb) <- Array.map (fun v -> if v = b then a else v) t.order.(pb)
  end;
  let proc_of = Array.copy t.proc_of in
  proc_of.(a) <- pb;
  proc_of.(b) <- pa;
  let pos_in_proc = Array.copy t.pos_in_proc in
  pos_in_proc.(a) <- t.pos_in_proc.(b);
  pos_in_proc.(b) <- t.pos_in_proc.(a);
  check_acyclic t.graph order;
  { t with proc_of; order; pos_in_proc }

let proc_pred t v =
  let pos = t.pos_in_proc.(v) in
  if pos = 0 then None else Some t.order.(t.proc_of.(v)).(pos - 1)

let proc_succ t v =
  let row = t.order.(t.proc_of.(v)) in
  let pos = t.pos_in_proc.(v) in
  if pos + 1 >= Array.length row then None else Some row.(pos + 1)

let n_tasks t = Dag.Graph.n_tasks t.graph

let tasks_of_proc t p = t.order.(p)

let to_string t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun p tasks ->
      Buffer.add_string buf (Printf.sprintf "p%d:" p);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) tasks;
      Buffer.add_char buf '\n')
    t.order;
  Buffer.contents buf

let of_string ~graph s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let parse_line idx line =
    match String.index_opt line ':' with
    | None -> invalid_arg "Schedule.of_string: missing ':'"
    | Some colon ->
      let head = String.sub line 0 colon in
      if head <> Printf.sprintf "p%d" idx then
        invalid_arg "Schedule.of_string: processors must appear in order p0, p1, …";
      let rest = String.sub line (colon + 1) (String.length line - colon - 1) in
      String.split_on_char ' ' rest
      |> List.filter_map (fun tok ->
             let tok = String.trim tok in
             if tok = "" then None
             else
               match int_of_string_opt tok with
               | Some v -> Some v
               | None -> invalid_arg "Schedule.of_string: malformed task id")
      |> Array.of_list
  in
  let order = Array.of_list (List.mapi parse_line lines) in
  let n_procs = Array.length order in
  if n_procs = 0 then invalid_arg "Schedule.of_string: empty input";
  let n = Dag.Graph.n_tasks graph in
  let proc_of = Array.make n (-1) in
  Array.iteri
    (fun p tasks ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Schedule.of_string: task out of range";
          proc_of.(v) <- p)
        tasks)
    order;
  make ~graph ~n_procs ~proc_of ~order
