(* Span tracing into per-domain ring buffers.

   [with_ ~name f] records one (name, begin, end) triple per call into
   the calling domain's buffer — three array stores, no allocation once
   the buffer exists. Buffers are fixed-capacity rings: a long sweep
   overwrites its oldest spans and reports how many were dropped, so
   tracing never grows without bound. Export renders Chrome trace_event
   JSON (loadable in chrome://tracing or Perfetto) or a per-name summary
   table (count, total, mean, p50/p99). *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let capacity = 8192 (* spans per domain; power of two *)

type buf = {
  tid : int; (* domain id, the trace's thread id *)
  names : string array;
  begins : float array; (* µs *)
  ends : float array; (* µs *)
  mutable len : int; (* total ever recorded; wraps over [capacity] *)
}

let bufs_lock = Mutex.create ()
let bufs : buf list ref = ref []

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          names = Array.make capacity "";
          begins = Array.make capacity 0.;
          ends = Array.make capacity 0.;
          len = 0;
        }
      in
      Mutex.protect bufs_lock (fun () -> bufs := b :: !bufs);
      b)

(* Monotonic: spans survive NTP steps (a wall-clock correction mid-span
   used to produce negative or hours-long durations). *)
let now_us = Clock.now_us

let record name t0 t1 =
  let b = Domain.DLS.get buf_key in
  let i = b.len land (capacity - 1) in
  b.names.(i) <- name;
  b.begins.(i) <- t0;
  b.ends.(i) <- t1;
  b.len <- b.len + 1

let with_ ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_us () in
    match f () with
    | v ->
      record name t0 (now_us ());
      v
    | exception e ->
      record name t0 (now_us ());
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Reading the buffers                                                 *)
(* ------------------------------------------------------------------ *)

(* (name, begin_us, end_us, tid), unordered *)
let records () =
  let bufs = Mutex.protect bufs_lock (fun () -> !bufs) in
  List.concat_map
    (fun b ->
      let n = Int.min b.len capacity in
      List.init n (fun i -> (b.names.(i), b.begins.(i), b.ends.(i), b.tid)))
    bufs

let dropped () =
  let bufs = Mutex.protect bufs_lock (fun () -> !bufs) in
  List.fold_left (fun acc b -> acc + Int.max 0 (b.len - capacity)) 0 bufs

let reset () =
  Mutex.protect bufs_lock (fun () -> List.iter (fun b -> b.len <- 0) !bufs)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type event = {
  ts : float;
  is_begin : bool;
  dur : float; (* of the owning span; orders ties into proper nesting *)
  span_begin : float;
  ev_name : string;
  ev_tid : int;
}

(* Sort so B/E events nest even under timestamp ties: earlier first;
   at equal ts an E closes before a B opens (touching spans), a longer
   span opens before a shorter one, and a later-opened span closes
   first. *)
let compare_events a b =
  match Float.compare a.ts b.ts with
  | 0 -> (
    match (a.is_begin, b.is_begin) with
    | false, true -> -1
    | true, false -> 1
    | true, true -> Float.compare b.dur a.dur
    | false, false -> Float.compare b.span_begin a.span_begin)
  | c -> c

let export_chrome () =
  let events =
    List.concat_map
      (fun (name, t0, t1, tid) ->
        let dur = t1 -. t0 in
        [
          { ts = t0; is_begin = true; dur; span_begin = t0; ev_name = name; ev_tid = tid };
          { ts = t1; is_begin = false; dur; span_begin = t0; ev_name = name; ev_tid = tid };
        ])
      (records ())
  in
  let events = List.sort compare_events events in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"dropped\":";
  Buffer.add_string buf (string_of_int (dropped ()));
  Buffer.add_string buf ",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f}"
           (json_escape e.ev_name)
           (if e.is_begin then "B" else "E")
           e.ev_tid e.ts))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Summary table                                                       *)
(* ------------------------------------------------------------------ *)

type stat = {
  name : string;
  count : int;
  total_us : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(Int.min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let summary () =
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, t0, t1, _) ->
      let durs =
        match Hashtbl.find_opt tbl name with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add tbl name r;
          r
      in
      durs := (t1 -. t0) :: !durs)
    (records ());
  Hashtbl.fold
    (fun name durs acc ->
      let a = Array.of_list !durs in
      Array.sort Float.compare a;
      let total = Array.fold_left ( +. ) 0. a in
      let n = Array.length a in
      {
        name;
        count = n;
        total_us = total;
        mean_us = total /. float_of_int n;
        p50_us = percentile a 0.5;
        p99_us = percentile a 0.99;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.name b.name)

let pretty_us us =
  if Float.is_nan us then "n/a"
  else if us >= 1e6 then Printf.sprintf "%.3f s" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.3f ms" (us /. 1e3)
  else Printf.sprintf "%.1f µs" us

let render_summary () =
  let stats = summary () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %8s %12s %12s %12s %12s\n" "span" "count" "total" "mean" "p50"
       "p99");
  Buffer.add_string buf (String.make 88 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %8d %12s %12s %12s %12s\n" s.name s.count
           (pretty_us s.total_us) (pretty_us s.mean_us) (pretty_us s.p50_us)
           (pretty_us s.p99_us)))
    stats;
  (match dropped () with
  | 0 -> ()
  | d -> Buffer.add_string buf (Printf.sprintf "(%d spans dropped by ring buffers)\n" d));
  Buffer.contents buf
