(** OpenMetrics 1.0 text exposition: encoder + line-grammar validator.

    The encoder turns a {!Metrics.snapshot} (plus caller-built metric
    values, e.g. the server's always-on counters) into the
    [application/openmetrics-text] body served by [GET /metrics] with
    [?format=openmetrics]. Exposition buckets are cumulative with a
    terminal [le="+Inf"]; counters carry the [_total] sample suffix;
    registry names of the form [family{k="v"}] become one family with
    labels; trace-id exemplars ride the bucket lines.

    The validator enforces the line grammar the tests, the CI smoke and
    [repro check-metrics] all share: [# TYPE]/[# HELP]/[# UNIT]
    comments only, typed sample-suffix resolution, no family
    interleaving, cumulative non-decreasing buckets that agree with
    [_count], exemplar syntax, terminal [# EOF]. *)

type data =
  | Counter of float
  | Gauge of float
  | Histogram of {
      bounds : float array;  (** finite upper bounds *)
      counts : int array;  (** per bucket (not cumulative), length bounds+1 *)
      sum : float;
      exemplars : (string * float) option array;  (** per bucket *)
    }

type metric = {
  family : string;  (** exposition family name (sanitize first) *)
  labels : (string * string) list;
  help : string option;
  data : data;
}

val sanitize_name : string -> string
(** Map to the OpenMetrics charset ([.] and friends become [_]). *)

val split_name : string -> string * (string * string) list
(** Split a registry name [family{k="v",...}] into base + labels;
    names without braces pass through with no labels. *)

val of_snapshot : ?help:(string -> string option) -> Metrics.snapshot -> metric list
(** Every counter/gauge/histogram of the snapshot as metrics, names
    sanitized and embedded labels split out. [help] supplies optional
    per-family help strings (keyed by the unsanitized base name). *)

val render : metric list -> string
(** The exposition document, families grouped in first-seen order,
    terminated by [# EOF]. Raises [Invalid_argument] if one family
    mixes metric kinds (an encoder-side bug, not input data). *)

val validate : string -> (unit, string) result
(** Check a full exposition against the line grammar; errors carry the
    offending line number. *)
