(* Always-on flight recorder: the last [capacity] served requests, with
   per-stage timings, kept cheap enough for production.

   Memory model (documented in DESIGN §14): one [record] per request is
   created by the connection domain and mutated across the conn/worker
   domain hop. The scalar fields (status, bytes, cache) are plain
   mutable stores — each is written by exactly one domain at a time
   (conn until submit, worker during eval, conn again for write/finish),
   and readers ( /debug/requests ) tolerate a racy-but-unturn view
   because OCaml word stores are atomic. The [stages] list is the one
   genuinely concurrent field (conn and worker both push), so it is an
   immutable list behind an [Atomic.t] with CAS push. The ring itself
   is an option array plus a fetch-and-add cursor: publication is one
   atomic increment and one pointer store, no lock, so two domains
   finishing simultaneously write distinct slots.

   Unlike Metrics/Span this module is NOT gated on the sinks flag: the
   server always records flights (that is the point of a flight
   recorder). The cost per request is one small record, ≤ max_stages
   conses and a handful of clock reads — amortized over an HTTP round
   trip, not per-schedule work. [timed] with no record and sinks off
   stays allocation-free. *)

type cache_status = Hit | Miss | Unknown

type stage = {
  stage : string;
  t0_us : float; (* monotonic, Clock.now_us *)
  t1_us : float;
}

type record = {
  seq : int; (* per-process request ordinal; Chrome tid *)
  mutable trace_id : string;
  mutable meth : string;
  mutable path : string;
  started_wall_s : float; (* Unix time, display only *)
  t_start_us : float; (* monotonic *)
  mutable t_end_us : float; (* 0 until finished *)
  mutable queued_us : float; (* 0 unless the job entered the queue *)
  mutable status : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable cache : cache_status;
  stages : stage list Atomic.t; (* newest first *)
}

let max_stages = 32
let next_seq = Atomic.make 0

let create ?trace_id ?started_wall_s ~meth ~path () =
  let trace_id =
    match trace_id with Some id -> id | None -> (Trace.mint ()).Trace.trace_id
  in
  {
    seq = Atomic.fetch_and_add next_seq 1;
    trace_id;
    meth;
    path;
    started_wall_s =
      (match started_wall_s with Some s -> s | None -> Unix.gettimeofday ());
    t_start_us = Clock.now_us ();
    t_end_us = 0.;
    queued_us = 0.;
    status = 0;
    bytes_in = 0;
    bytes_out = 0;
    cache = Unknown;
    stages = Atomic.make [];
  }

let mark_queued r = r.queued_us <- Clock.now_us ()
let set_cache r c = r.cache <- c

let add_stage r ~stage t0_us t1_us =
  let s = { stage; t0_us; t1_us } in
  let rec push () =
    let cur = Atomic.get r.stages in
    if List.length cur >= max_stages then ()
    else if not (Atomic.compare_and_set r.stages cur (s :: cur)) then push ()
  in
  push ()

(* ------------------------------------------------------------------ *)
(* Per-stage latency histograms (+ trace-id exemplars)                  *)
(* ------------------------------------------------------------------ *)

(* Registered lazily per (stage, shard) under the OpenMetrics label
   convention: one family [service.stage_seconds] with a [stage] label
   (plus a [shard] label for stages executed on a sharded worker
   domain), parsed back out by Obs.Openmetrics. The [stage] label comes
   first so scrapers grepping [{stage="eval"] keep matching whether or
   not a shard label follows. *)
let hist_lock = Mutex.create ()
let hists : (string, Metrics.histogram) Hashtbl.t = Hashtbl.create 16

let stage_hist ?shard stage =
  let name =
    match shard with
    | None -> Printf.sprintf "service.stage_seconds{stage=%S}" stage
    | Some k -> Printf.sprintf "service.stage_seconds{stage=%S,shard=\"%d\"}" stage k
  in
  Mutex.protect hist_lock (fun () ->
      match Hashtbl.find_opt hists name with
      | Some h -> h
      | None ->
        let h = Metrics.histogram ~buckets:Metrics.latency_buckets name in
        Hashtbl.add hists name h;
        h)

let record_stage ?shard record ~stage t0_us t1_us =
  (match record with None -> () | Some r -> add_stage r ~stage t0_us t1_us);
  if Metrics.enabled () then
    Metrics.observe_ex
      (stage_hist ?shard stage)
      ?exemplar:(match record with Some r -> Some r.trace_id | None -> None)
      ((t1_us -. t0_us) *. 1e-6)

let timed ?record ?shard ~stage f =
  match record with
  | None when not (Metrics.enabled ()) -> f () (* two loads, no allocation *)
  | _ -> (
    let t0 = Clock.now_us () in
    match f () with
    | v ->
      record_stage ?shard record ~stage t0 (Clock.now_us ());
      v
    | exception e ->
      record_stage ?shard record ~stage t0 (Clock.now_us ());
      raise e)

(* ------------------------------------------------------------------ *)
(* The ring                                                            *)
(* ------------------------------------------------------------------ *)

let capacity = 256
let ring : record option array = Array.make capacity None
let cursor = Atomic.make 0 (* total records ever published *)

let total () = Atomic.get cursor

let publish r =
  let i = Atomic.fetch_and_add cursor 1 in
  ring.(i mod capacity) <- Some r

let duration_ms r =
  let e = if r.t_end_us > 0. then r.t_end_us else Clock.now_us () in
  (e -. r.t_start_us) /. 1e3

let finish ?slow_ms r ~status =
  r.t_end_us <- Clock.now_us ();
  r.status <- status;
  publish r;
  match slow_ms with
  | Some ms when duration_ms r >= ms ->
    let stages =
      Atomic.get r.stages |> List.rev_map (fun s -> s.stage) |> String.concat ","
    in
    Printf.eprintf "[slow] %s %s -> %d in %.1f ms (trace=%s stages=%s)\n%!" r.meth
      r.path status (duration_ms r) r.trace_id stages
  | _ -> ()

let recent ?(limit = capacity) () =
  let upper = Atomic.get cursor in
  let lower = Int.max 0 (upper - capacity) in
  let rec collect i acc n =
    if i < lower || n >= limit then List.rev acc
    else
      match ring.(i mod capacity) with
      | None -> List.rev acc
      | Some r -> collect (i - 1) (r :: acc) (n + 1)
  in
  List.rev (collect (upper - 1) [] 0)

let reset () =
  Atomic.set cursor 0;
  Array.fill ring 0 capacity None

(* ------------------------------------------------------------------ *)
(* Rendering (/debug/requests)                                         *)
(* ------------------------------------------------------------------ *)

let esc = Span.json_escape

let cache_name = function Hit -> "hit" | Miss -> "miss" | Unknown -> "unknown"

let sorted_stages r =
  List.sort (fun a b -> Float.compare a.t0_us b.t0_us) (Atomic.get r.stages)

let record_json buf r =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"trace_id\":\"%s\",\"method\":\"%s\",\"path\":\"%s\",\"status\":%d,\"start_unix_s\":%.6f,\"duration_ms\":%.3f,\"bytes_in\":%d,\"bytes_out\":%d,\"engine_cache\":\"%s\",\"stages\":["
       (esc r.trace_id) (esc r.meth) (esc r.path) r.status r.started_wall_s
       (duration_ms r) r.bytes_in r.bytes_out (cache_name r.cache));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"start_us\":%.1f,\"duration_us\":%.1f}"
           (esc s.stage)
           (s.t0_us -. r.t_start_us)
           (s.t1_us -. s.t0_us)))
    (sorted_stages r);
  Buffer.add_string buf "]}"

let json ?limit () =
  let rs = recent ?limit () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"total\":%d,\"capacity\":%d,\"requests\":[" (total ()) capacity);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      record_json buf r)
    rs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* Chrome trace_event export: one "X" (complete) event per stage plus
   an enclosing request event, tid = request ordinal so each request is
   its own row; args carry the trace id, which is what links the tree. *)
let chrome ?limit ?trace_id () =
  let rs = recent ?limit () in
  let rs =
    match trace_id with
    | None -> rs
    | Some id -> List.filter (fun r -> String.equal r.trace_id id) rs
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let event ~name ~ts ~dur ~tid ~args =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf
         "\n{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
         name tid ts dur args)
  in
  List.iter
    (fun r ->
      let tid = r.seq land 0x3fffffff in
      let t_end = if r.t_end_us > 0. then r.t_end_us else Clock.now_us () in
      event
        ~name:(Printf.sprintf "%s %s" (esc r.meth) (esc r.path))
        ~ts:r.t_start_us
        ~dur:(t_end -. r.t_start_us)
        ~tid
        ~args:
          (Printf.sprintf "\"trace_id\":\"%s\",\"status\":%d,\"engine_cache\":\"%s\""
             (esc r.trace_id) r.status (cache_name r.cache));
      List.iter
        (fun s ->
          event ~name:(esc s.stage) ~ts:s.t0_us
            ~dur:(s.t1_us -. s.t0_us)
            ~tid
            ~args:(Printf.sprintf "\"trace_id\":\"%s\"" (esc r.trace_id)))
        (sorted_stages r))
    rs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
