(* Monotonic process clock. All duration measurement in this repo goes
   through here (Span, Flight, Elog, the service latency histograms):
   unlike [Unix.gettimeofday], CLOCK_MONOTONIC never steps under NTP
   adjustment, so a span can never come out negative or hours long
   because the wall clock was corrected mid-measurement.

   The external is unboxed + noalloc: reading the clock is one C call,
   no allocation, safe to put on paths that run with sinks off. *)

external now_us : unit -> (float[@unboxed])
  = "obs_clock_now_us" "obs_clock_now_us_unboxed"
[@@noalloc]

let now_s () = now_us () *. 1e-6
