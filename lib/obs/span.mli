(** Span tracing into per-domain ring buffers.

    {!with_} brackets a computation with wall-clock timestamps and
    records the (name, begin, end) triple into the calling domain's
    fixed-capacity ring buffer — no locks, no allocation on the record
    path, oldest spans overwritten (and counted as {!dropped}) when a
    buffer wraps. Disabled, {!with_} is a single atomic load before
    tail-calling the function.

    Buffers export as Chrome [trace_event] JSON — loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}, one
    track per domain — or as a per-name summary table. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_ : name:(string) -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f ()]; when enabled, records a span around it
    (also on exception). Spans nest freely within a domain. *)

val capacity : int
(** Ring capacity per domain (spans beyond it overwrite the oldest). *)

val dropped : unit -> int
(** Total spans overwritten across all domains since the last {!reset}. *)

val reset : unit -> unit
(** Empty every ring buffer (call while no other domain is recording). *)

(** {1 Export} *)

val export_chrome : unit -> string
(** All recorded spans as Chrome trace-event JSON: balanced ["B"]/["E"]
    event pairs, [tid] = domain id, timestamps in µs, sorted so that
    spans nest correctly even under timestamp ties. The top-level
    ["dropped"] field counts overwritten spans. *)

type stat = {
  name : string;
  count : int;
  total_us : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

val summary : unit -> stat list
(** Per-name aggregates over the retained spans, sorted by name. *)

val render_summary : unit -> string
(** {!summary} as an aligned text table. *)

(**/**)

val json_escape : string -> string
(** JSON string-body escaping, shared with {!Report}. *)
