(* Sweep progress (rate/ETA to stderr) and phase reports with GC
   deltas. Ticks come from many domains: the count is one atomic
   fetch-and-add, printing is throttled through a compare-and-set on the
   last-print timestamp so only one domain wins each refresh. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type t = {
  label : string;
  total : int;
  ticks : int Atomic.t;
  started : float; (* seconds *)
  last_print : float Atomic.t;
  every : float;
}

let create ?(every = 0.5) ~total label =
  {
    label;
    total;
    ticks = Atomic.make 0;
    started = Unix.gettimeofday ();
    last_print = Atomic.make 0.;
    every;
  }

let print_line t ~final =
  let done_ = Atomic.get t.ticks in
  let elapsed = Unix.gettimeofday () -. t.started in
  let rate = if elapsed > 0. then float_of_int done_ /. elapsed else 0. in
  let eta =
    if rate > 0. && t.total > done_ then float_of_int (t.total - done_) /. rate else 0.
  in
  let pct = if t.total > 0 then 100. *. float_of_int done_ /. float_of_int t.total else 0. in
  Printf.eprintf "\r[obs] %s: %d/%d (%.0f%%)  %.1f/s  elapsed %.1fs  ETA %.1fs   %s"
    t.label done_ t.total pct rate elapsed eta
    (if final then "\n" else "");
  flush stderr

let tick ?(n = 1) t =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add t.ticks n);
    let now = Unix.gettimeofday () in
    let last = Atomic.get t.last_print in
    if now -. last >= t.every && Atomic.compare_and_set t.last_print last now then
      print_line t ~final:false
  end

let finish t = if Atomic.get enabled_flag then print_line t ~final:true

(* ------------------------------------------------------------------ *)
(* Phases with GC snapshots                                            *)
(* ------------------------------------------------------------------ *)

type phase_report = {
  phase : string;
  elapsed_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  compactions : int;
}

let reports_lock = Mutex.create ()
let reports : phase_report list ref = ref []
let phases () = Mutex.protect reports_lock (fun () -> List.rev !reports)
let reset_phases () = Mutex.protect reports_lock (fun () -> reports := [])

let phase name f =
  if not (Atomic.get enabled_flag || Span.enabled () || Metrics.enabled ()) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    (* quick_stat.minor_words lags until the next minor collection;
       Gc.minor_words reads the allocation pointer exactly *)
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let finish () =
      let elapsed_s = Unix.gettimeofday () -. t0 in
      let g1 = Gc.quick_stat () in
      let r =
        {
          phase = name;
          elapsed_s;
          minor_words = Gc.minor_words () -. mw0;
          major_words = g1.Gc.major_words -. g0.Gc.major_words;
          promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
          compactions = g1.Gc.compactions - g0.Gc.compactions;
        }
      in
      Mutex.protect reports_lock (fun () -> reports := r :: !reports);
      if Atomic.get enabled_flag then begin
        Printf.eprintf "[obs] phase %s: %.2fs (minor %.3g w, major %.3g w, %d compactions)\n"
          name elapsed_s r.minor_words r.major_words r.compactions;
        flush stderr
      end
    in
    match Span.with_ ~name f with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let render_phases () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %10s %14s %14s %6s\n" "phase" "elapsed" "minor words"
       "major words" "compact");
  Buffer.add_string buf (String.make 76 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %9.2fs %14.3g %14.3g %6d\n" r.phase r.elapsed_s
           r.minor_words r.major_words r.compactions))
    (phases ());
  Buffer.contents buf
