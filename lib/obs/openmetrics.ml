(* OpenMetrics 1.0 text exposition: encoder for the metrics registry
   (plus caller-supplied always-on counters) and a line-grammar
   validator shared by the tests, the CI smoke and `repro check-metrics`.

   Encoder subtleties worth naming:
   - registry histogram counts are per-bucket; exposition buckets are
     CUMULATIVE and must end with le="+Inf" equal to _count;
   - counter sample names carry the _total suffix, the family does not;
   - registry names embed labels ("family{k=\"v\"}") — split here so
     the per-stage histograms expose as one family with a stage label;
   - exemplars ride bucket lines as `# {trace_id="..."} value`. *)

type data =
  | Counter of float
  | Gauge of float
  | Histogram of {
      bounds : float array; (* finite upper bounds *)
      counts : int array; (* per bucket (not cumulative), length bounds+1 *)
      sum : float;
      exemplars : (string * float) option array; (* per bucket *)
    }

type metric = {
  family : string;
  labels : (string * string) list;
  help : string option;
  data : data;
}

(* ------------------------------------------------------------------ *)
(* Names, labels, values                                               *)
(* ------------------------------------------------------------------ *)

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false
let is_name_char c = is_name_start c || match c with '0' .. '9' -> true | _ -> false

let sanitize_name name =
  let buf = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      if (if i = 0 then is_name_start c else is_name_char c) then Buffer.add_char buf c
      else Buffer.add_char buf '_')
    name;
  if Buffer.length buf = 0 then "_" else Buffer.contents buf

(* "family{k=\"v\",k2=\"v2\"}" -> ("family", [k,v; k2,v2]); names without
   braces pass through. Registry names are trusted (we wrote them), so
   the parse is permissive: on any mismatch the raw name is sanitized
   whole. *)
let split_name name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i when String.length name > i + 1 && name.[String.length name - 1] = '}' -> (
    let base = String.sub name 0 i in
    let inside = String.sub name (i + 1) (String.length name - i - 2) in
    let parse_pair kv =
      match String.index_opt kv '=' with
      | Some j
        when String.length kv >= j + 3
             && kv.[j + 1] = '"'
             && kv.[String.length kv - 1] = '"' ->
        Some (String.sub kv 0 j, String.sub kv (j + 2) (String.length kv - j - 3))
      | _ -> None
    in
    let pairs = List.map parse_pair (String.split_on_char ',' inside) in
    if List.exists Option.is_none pairs then (name, [])
    else (base, List.filter_map Fun.id pairs))
  | Some _ -> (name, [])

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_str labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
           labels)
    ^ "}"

let fmt_value v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* ------------------------------------------------------------------ *)
(* From a registry snapshot                                            *)
(* ------------------------------------------------------------------ *)

let of_snapshot ?(help = fun _ -> None) (s : Metrics.snapshot) =
  let make name data =
    let base, labels = split_name name in
    { family = sanitize_name base; labels; help = help base; data }
  in
  List.map (fun (name, v) -> make name (Counter (float_of_int v))) s.Metrics.counters
  @ List.map (fun (name, v) -> make name (Gauge v)) s.Metrics.gauges
  @ List.map
      (fun (name, (h : Metrics.hist_value)) ->
        make name
          (Histogram
             { bounds = h.bounds; counts = h.counts; sum = h.sum; exemplars = h.exemplars }))
      s.Metrics.histograms

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let render metrics =
  (* group by family, preserving first-seen order; all label sets of a
     family must be contiguous under one TYPE block *)
  let order = ref [] in
  let groups : (string, metric list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun m ->
      match Hashtbl.find_opt groups m.family with
      | Some r -> r := m :: !r
      | None ->
        Hashtbl.add groups m.family (ref [ m ]);
        order := m.family :: !order)
    metrics;
  let buf = Buffer.create 8192 in
  let exemplar_str = function
    | None -> ""
    | Some (trace_id, v) ->
      Printf.sprintf " # {trace_id=\"%s\"} %s" (escape_label_value trace_id) (fmt_value v)
  in
  List.iter
    (fun family ->
      let ms = List.rev !(Hashtbl.find groups family) in
      let kind = kind_name (List.hd ms).data in
      List.iter
        (fun m ->
          if kind_name m.data <> kind then
            invalid_arg
              (Printf.sprintf "Obs.Openmetrics.render: family %s mixes %s and %s" family
                 kind (kind_name m.data)))
        ms;
      (match List.find_map (fun m -> m.help) ms with
      | Some h ->
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" family (escape_label_value h))
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind);
      List.iter
        (fun m ->
          match m.data with
          | Counter v ->
            Buffer.add_string buf
              (Printf.sprintf "%s_total%s %s\n" family (labels_str m.labels) (fmt_value v))
          | Gauge v ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" family (labels_str m.labels) (fmt_value v))
          | Histogram { bounds; counts; sum; exemplars } ->
            let cum = ref 0 in
            Array.iteri
              (fun i b ->
                cum := !cum + counts.(i);
                let labels = m.labels @ [ ("le", fmt_value b) ] in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d%s\n" family (labels_str labels) !cum
                     (exemplar_str exemplars.(i))))
              bounds;
            let overflow = Array.length bounds in
            cum := !cum + counts.(overflow);
            let inf_labels = m.labels @ [ ("le", "+Inf") ] in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d%s\n" family (labels_str inf_labels) !cum
                 (exemplar_str exemplars.(overflow)));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" family (labels_str m.labels) !cum);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" family (labels_str m.labels) (fmt_value sum)))
        ms)
    (List.rev !order);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let known_types =
  [ "counter"; "gauge"; "histogram"; "gaugehistogram"; "summary"; "info"; "stateset";
    "unknown" ]

let parse_float_token tok =
  match tok with
  | "+Inf" | "Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt tok

(* name at [i]; returns (name, next index) *)
let scan_name line i =
  let n = String.length line in
  if i >= n || not (is_name_start line.[i]) then raise (Bad "expected a metric name");
  let j = ref (i + 1) in
  while !j < n && is_name_char line.[!j] do
    incr j
  done;
  (String.sub line i (!j - i), !j)

(* {k="v",...} at [i] (line.[i] = '{'); returns (labels, next index) *)
let scan_labels line i =
  let n = String.length line in
  let labels = ref [] in
  let i = ref (i + 1) in
  let rec pairs () =
    if !i < n && line.[!i] = '}' then incr i
    else begin
      let name, j = scan_name line !i in
      i := j;
      if !i >= n || line.[!i] <> '=' then raise (Bad "label: expected '='");
      incr i;
      if !i >= n || line.[!i] <> '"' then raise (Bad "label: expected '\"'");
      incr i;
      let buf = Buffer.create 16 in
      let rec value () =
        if !i >= n then raise (Bad "label: unterminated value");
        match line.[!i] with
        | '"' -> incr i
        | '\\' ->
          if !i + 1 >= n then raise (Bad "label: dangling escape");
          (match line.[!i + 1] with
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | 'n' -> Buffer.add_char buf '\n'
          | c -> raise (Bad (Printf.sprintf "label: invalid escape '\\%c'" c)));
          i := !i + 2;
          value ()
        | c ->
          Buffer.add_char buf c;
          incr i;
          value ()
      in
      value ();
      labels := (name, Buffer.contents buf) :: !labels;
      if !i < n && line.[!i] = ',' then begin
        incr i;
        pairs ()
      end
      else if !i < n && line.[!i] = '}' then incr i
      else raise (Bad "label: expected ',' or '}'")
    end
  in
  pairs ();
  (List.rev !labels, !i)

type vstate = {
  types : (string, string) Hashtbl.t;
  sampled : (string, unit) Hashtbl.t; (* families with ≥1 sample *)
  closed : (string, unit) Hashtbl.t; (* families we moved past *)
  mutable current : string option;
  (* histogram series key -> (le, value) list, and _count values *)
  buckets : (string, (float * float) list ref) Hashtbl.t;
  counts : (string, float) Hashtbl.t;
}

let enter st family =
  (match st.current with
  | Some g when g <> family -> Hashtbl.replace st.closed g ()
  | _ -> ());
  if Hashtbl.mem st.closed family then
    raise (Bad (Printf.sprintf "family %s interleaved with another family" family));
  st.current <- Some family

let series_key family labels =
  let ls =
    List.filter (fun (k, _) -> k <> "le") labels
    |> List.sort compare
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
  in
  family ^ "|" ^ String.concat "," ls

let check_sample st line =
  let name, i = scan_name line 0 in
  let labels, i =
    if i < String.length line && line.[i] = '{' then scan_labels line i else ([], i)
  in
  if i >= String.length line || line.[i] <> ' ' then
    raise (Bad "expected ' ' before the sample value");
  let rest = String.sub line (i + 1) (String.length line - i - 1) in
  let value_tok, exemplar =
    match String.index_opt rest '#' with
    | Some j when j >= 1 && rest.[j - 1] = ' ' ->
      ( String.trim (String.sub rest 0 (j - 1)),
        Some (String.trim (String.sub rest (j + 1) (String.length rest - j - 1))) )
    | _ -> (String.trim rest, None)
  in
  let value =
    match parse_float_token value_tok with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "unparsable sample value %S" value_tok))
  in
  (* resolve the family through the typed suffixes *)
  let ends_with suf = String.length name > String.length suf
    && String.sub name (String.length name - String.length suf) (String.length suf) = suf
  in
  let chop suf = String.sub name 0 (String.length name - String.length suf) in
  let typed f = Hashtbl.find_opt st.types f in
  let family, suffix =
    match typed name with
    | Some "counter" -> raise (Bad (Printf.sprintf "counter sample %s must use _total" name))
    | Some "histogram" ->
      raise (Bad (Printf.sprintf "histogram sample %s needs _bucket/_count/_sum" name))
    | Some _ -> (name, "")
    | None ->
      let candidates =
        [ ("_total", "counter"); ("_created", "counter"); ("_bucket", "histogram");
          ("_count", "histogram"); ("_sum", "histogram"); ("_created", "histogram") ]
      in
      let rec find = function
        | [] -> raise (Bad (Printf.sprintf "sample %s has no preceding # TYPE" name))
        | (suf, kind) :: rest ->
          if ends_with suf && typed (chop suf) = Some kind then (chop suf, suf)
          else find rest
      in
      find candidates
  in
  enter st family;
  Hashtbl.replace st.sampled family ();
  (* exemplars only on counter _total and histogram _bucket lines *)
  (match exemplar with
  | None -> ()
  | Some ex ->
    if suffix <> "_total" && suffix <> "_bucket" then
      raise (Bad (Printf.sprintf "exemplar on %s (only _total/_bucket may carry one)" name));
    if String.length ex = 0 || ex.[0] <> '{' then raise (Bad "exemplar: expected '{'");
    let _labels, j = scan_labels ex 0 in
    let v = String.trim (String.sub ex j (String.length ex - j)) in
    (match parse_float_token v with
    | Some _ -> ()
    | None -> raise (Bad (Printf.sprintf "exemplar: unparsable value %S" v))));
  match suffix with
  | "_bucket" -> (
    match List.assoc_opt "le" labels with
    | None -> raise (Bad (Printf.sprintf "%s without an le label" name))
    | Some le -> (
      match parse_float_token le with
      | None -> raise (Bad (Printf.sprintf "unparsable le %S" le))
      | Some le ->
        let key = series_key family labels in
        let r =
          match Hashtbl.find_opt st.buckets key with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add st.buckets key r;
            r
        in
        r := (le, value) :: !r))
  | "_count" -> Hashtbl.replace st.counts (series_key family labels) value
  | _ -> ()

let finish_histograms st =
  Hashtbl.iter
    (fun key r ->
      let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) !r in
      (match List.rev sorted with
      | (last_le, last_v) :: _ ->
        if last_le <> Float.infinity then
          raise (Bad (Printf.sprintf "%s: missing le=\"+Inf\" bucket" key));
        (match Hashtbl.find_opt st.counts key with
        | Some c when c <> last_v ->
          raise
            (Bad
               (Printf.sprintf "%s: _count %s disagrees with +Inf bucket %s" key
                  (fmt_value c) (fmt_value last_v)))
        | _ -> ())
      | [] -> ());
      ignore
        (List.fold_left
           (fun prev (_, v) ->
             if v < prev then
               raise (Bad (Printf.sprintf "%s: bucket counts decrease" key));
             v)
           0. sorted))
    st.buckets

let validate text =
  let st =
    {
      types = Hashtbl.create 32;
      sampled = Hashtbl.create 32;
      closed = Hashtbl.create 32;
      current = None;
      buckets = Hashtbl.create 32;
      counts = Hashtbl.create 32;
    }
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  if String.length text = 0 || text.[String.length text - 1] <> '\n' then
    Error "exposition must end with a newline"
  else begin
    let lines = String.split_on_char '\n' (String.sub text 0 (String.length text - 1)) in
    let n_lines = List.length lines in
    let rec go lineno = function
      | [] -> Error "missing terminal # EOF"
      | line :: rest -> (
        let last = lineno = n_lines in
        match line with
        | "# EOF" ->
          if not last then err lineno "content after # EOF"
          else ( try finish_histograms st; Ok () with Bad m -> err lineno m)
        | "" -> err lineno "empty line"
        | _ when String.length line > 2 && String.sub line 0 2 = "# " -> (
          let body = String.sub line 2 (String.length line - 2) in
          match String.split_on_char ' ' body with
          | "TYPE" :: name :: [ kind ] ->
            if not (List.mem kind known_types) then
              err lineno (Printf.sprintf "unknown metric type %S" kind)
            else if Hashtbl.mem st.types name then
              err lineno (Printf.sprintf "duplicate # TYPE for %s" name)
            else if Hashtbl.mem st.sampled name then
              err lineno (Printf.sprintf "# TYPE for %s after its samples" name)
            else begin
              Hashtbl.add st.types name kind;
              match (try enter st name; None with Bad m -> Some m) with
              | Some m -> err lineno m
              | None -> go (lineno + 1) rest
            end
          | "HELP" :: _ :: _ | "UNIT" :: _ :: _ -> go (lineno + 1) rest
          | _ -> err lineno "unknown comment (only HELP/TYPE/UNIT/EOF allowed)")
        | _ -> (
          match check_sample st line with
          | () -> go (lineno + 1) rest
          | exception Bad m -> err lineno m))
    in
    go 1 lines
  end
