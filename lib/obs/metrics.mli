(** Process-wide metrics registry: atomic-flag-gated counters, gauges
    and fixed-bucket histograms, sharded per domain.

    Increments go to a domain-local shard (no contention between
    {!Parallel.Pool} workers); {!snapshot} merges every shard on read.
    All write paths are gated on {!enabled}: when sinks are off an
    increment is one atomic load and a branch — no allocation — so
    instrumented hot paths stay within noise of uninstrumented ones.

    Registration ({!counter}, {!gauge}, {!histogram}) is idempotent by
    name and cheap enough to do at module initialization; handles are
    plain values, safe to share across domains. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Instruments} *)

type counter

val counter : string -> counter
(** Registers (or returns the existing) monotonic counter.
    Raises [Invalid_argument] if [name] is already a histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit

type gauge

val gauge : string -> gauge
(** Last-write-wins float value (not sharded; set once per phase). *)

val set : gauge -> float -> unit

type histogram

val histogram : ?buckets:float array -> string -> histogram
(** Fixed-bucket histogram; [buckets] are strictly increasing upper
    bounds (default: decades from [1e-6] to [1e3]). An extra overflow
    bucket catches values above the last bound. *)

val default_buckets : float array
(** Decades, [1e-6 .. 1e3] — coarse; fine for event sizes/counts. *)

val latency_buckets : float array
(** Log-1.5 ladder, 1 µs … ≈22 s (43 buckets) — the preset every
    duration-in-seconds histogram should use: quantile interpolation
    error stays ≤ 25% of the value at every scale, where decades put a
    whole 100 µs–1 ms band in one bucket. *)

val observe : histogram -> float -> unit

val observe_ex : histogram -> ?exemplar:string -> float -> unit
(** {!observe}, optionally attaching a trace id as the bucket's
    exemplar (last writer per shard wins; surfaced in the OpenMetrics
    exposition so a slow bucket links to a concrete request). *)

(** {1 Snapshot / merge} *)

type hist_value = {
  bounds : float array;
  counts : int array;  (** one per bound, plus a final overflow bucket *)
  total : int;
  sum : float;
  recent : float array;
      (** sliding-window samples (last ≤128 per writing domain),
          unordered; empty before any observation *)
  exemplars : (string * float) option array;
      (** per bucket: (trace id, observed value) from {!observe_ex} *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;  (** only gauges that were set *)
  histograms : (string * hist_value) list;
}

val snapshot : unit -> snapshot
(** Merge of all shards, in registration order. Exact once concurrent
    writers have joined; approximate (racy reads) while they run. *)

val find_counter : snapshot -> string -> int option

val hist_quantile : hist_value -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile ([q ∈ \[0,1\]]) from
    the bucket counts by linear interpolation inside the bucket holding
    the target rank — resolution is limited by the bucket bounds (the
    overflow bucket is pinned at the last bound). [nan] on an empty
    histogram. *)

val window_quantile : hist_value -> float -> float
(** Exact quantile over the {e sliding window} of recent samples
    ([hist_value.recent]) — what a live p50/p99 endpoint should serve:
    current behavior, not the lifetime average. Falls back to
    {!hist_quantile} when the window is empty. *)

val reset : unit -> unit
(** Zero every shard and gauge. Only meaningful while no other domain is
    writing (between phases/benchmark runs). *)
