(** Combined telemetry report over all three sinks. *)

val json : unit -> string
(** One JSON document: [counters], [gauges], [histograms] (merged
    {!Metrics.snapshot}), [spans] ({!Span.summary}) and [phases]
    ({!Progress.phases}). This is what [repro --metrics FILE] writes. *)

val render : unit -> string
(** The same content as human-readable text. *)
