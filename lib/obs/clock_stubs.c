/* Monotonic clock for Obs: CLOCK_MONOTONIC via clock_gettime, with a
 * gettimeofday fallback for platforms without it. Exposed to OCaml as
 * an unboxed, noalloc float of microseconds so a timestamp costs one C
 * call and zero allocation — cheap enough for per-stage span timing on
 * the request hot path. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

static double obs_clock_raw_us(void)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (double) ts.tv_sec * 1e6 + (double) ts.tv_nsec * 1e-3;
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (double) tv.tv_sec * 1e6 + (double) tv.tv_usec;
  }
}

CAMLprim double obs_clock_now_us_unboxed(value unit)
{
  (void) unit;
  return obs_clock_raw_us();
}

CAMLprim value obs_clock_now_us(value unit)
{
  (void) unit;
  return caml_copy_double(obs_clock_raw_us());
}
