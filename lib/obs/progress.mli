(** Sweep progress reporting and phase-level GC accounting.

    A reporter is ticked (from any domain — the count is atomic, the
    stderr refresh throttled and claimed by compare-and-set) once per
    unit of work; it prints rate and ETA while {!enabled}. {!phase}
    brackets a pipeline stage with a {!Span.with_} span and a
    [Gc.quick_stat] delta, collected into {!phases} for the metrics
    report. Everything is a no-op (one atomic load) when all sinks are
    disabled. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

type t

val create : ?every:float -> total:int -> string -> t
(** Reporter for [total] units, refreshing stderr at most every [every]
    seconds (default 0.5). Creation is cheap and always allowed; ticks
    are dropped while disabled. *)

val tick : ?n:int -> t -> unit
val finish : t -> unit
(** Print the final line (with a newline) if enabled. *)

(** {1 Phases} *)

type phase_report = {
  phase : string;
  elapsed_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  compactions : int;
}

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f] under a span called [name] and records a
    {!phase_report} (also on exception) when any sink is enabled;
    otherwise it is [f ()]. *)

val phases : unit -> phase_report list
(** Reports in execution order. *)

val reset_phases : unit -> unit
val render_phases : unit -> string
