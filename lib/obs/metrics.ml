(* Process-wide metrics registry with per-domain shards.

   Counters and histograms are written through domain-local shards
   (Domain.DLS): an increment touches only the writer's own arrays, so
   Pool workers never contend on a cache line. [snapshot] merges every
   shard under the registry lock. Gauges are last-write-wins and coarse
   (set once per sweep/phase), so they live in plain global atomics.

   Everything is gated on one atomic [enabled] flag: when sinks are off,
   an increment is a single atomic load and a branch — no allocation, no
   shard lookup — which is what keeps the instrumented hot paths within
   noise of the uninstrumented ones. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type kind =
  | Counter_kind
  | Hist_kind of float array (* strictly increasing bucket upper bounds *)

type counter = int
type histogram = { hid : int; bounds : float array }

let registry_lock = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 32
let metric_names : string array ref = ref [||]
let kinds : kind array ref = ref [||]

let same_kind a b =
  match (a, b) with
  | Counter_kind, Counter_kind -> true
  | Hist_kind x, Hist_kind y -> x = y
  | _ -> false

let register name kind =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt ids name with
      | Some id ->
        if not (same_kind (!kinds).(id) kind) then
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %S re-registered with a different kind" name);
        id
      | None ->
        let id = Array.length !kinds in
        kinds := Array.append !kinds [| kind |];
        metric_names := Array.append !metric_names [| name |];
        Hashtbl.add ids name id;
        id)

let counter name = register name Counter_kind

let default_buckets =
  (* decade buckets, roughly µs..17min when observing seconds *)
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100.; 1000. |]

(* Log-1.5 ladder from 1 µs to ≈22 s (43 buckets). Decades are far too
   coarse for the sub-ms eval target: a whole 100 µs–1 ms decade lands
   in one bucket, so p50/p99 interpolation is meaningless there. ×1.5
   keeps quantile error ≤ 25% of the value at every scale for the cost
   of a 43-slot array per shard. *)
let latency_buckets = Array.init 43 (fun i -> 1e-6 *. (1.5 ** float_of_int i))

let histogram ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Obs.Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing")
    buckets;
  let bounds = Array.copy buckets in
  { hid = register name (Hist_kind bounds); bounds }

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

(* Sliding-window sample ring per (histogram × shard): feeds the
   windowed quantiles a live /metrics endpoint wants (recent behavior,
   not the lifetime average). Power of two so the index is a mask. *)
let window_capacity = 128

type hist_cell = {
  counts : int array; (* one per bound + overflow *)
  mutable sum : float;
  recent : float array; (* last [window_capacity] observed values *)
  mutable recent_n : int; (* total ever observed; wraps over the ring *)
  exemplars : (string * float) option array; (* per bucket, last writer wins *)
}

type shard = {
  mutable counters : int array; (* indexed by metric id *)
  mutable hists : hist_cell option array; (* indexed by metric id *)
}

let shards_lock = Mutex.create ()
let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { counters = [||]; hists = [||] } in
      Mutex.protect shards_lock (fun () -> shards := s :: !shards);
      s)

(* Only the owning domain grows (or writes) its shard; the snapshot's
   racy reads of other shards are approximate while a sweep runs and
   exact once the domains have joined. *)
let ensure s id =
  if id >= Array.length s.counters then begin
    let n = Mutex.protect registry_lock (fun () -> Array.length !kinds) in
    let counters = Array.make n 0 in
    Array.blit s.counters 0 counters 0 (Array.length s.counters);
    let hists = Array.make n None in
    Array.blit s.hists 0 hists 0 (Array.length s.hists);
    s.counters <- counters;
    s.hists <- hists
  end

let add c n =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    ensure s c;
    s.counters.(c) <- s.counters.(c) + n
  end

let incr c = add c 1

(* index of the first bound >= v; [Array.length bounds] = overflow *)
let bucket_index bounds v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if bounds.(mid) >= v then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length bounds)

let observe_ex h ?exemplar v =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    ensure s h.hid;
    let cell =
      match s.hists.(h.hid) with
      | Some c -> c
      | None ->
        let n_buckets = Array.length h.bounds + 1 in
        let c =
          {
            counts = Array.make n_buckets 0;
            sum = 0.;
            recent = Array.make window_capacity 0.;
            recent_n = 0;
            exemplars = Array.make n_buckets None;
          }
        in
        s.hists.(h.hid) <- Some c;
        c
    in
    let i = bucket_index h.bounds v in
    cell.counts.(i) <- cell.counts.(i) + 1;
    cell.sum <- cell.sum +. v;
    cell.recent.(cell.recent_n land (window_capacity - 1)) <- v;
    cell.recent_n <- cell.recent_n + 1;
    match exemplar with
    | None -> ()
    | Some trace_id -> cell.exemplars.(i) <- Some (trace_id, v)
  end

let observe h v = observe_ex h v

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

type gauge = { gname : string; cell : float Atomic.t }

let gauges_lock = Mutex.create ()
let gauges : gauge list ref = ref []

let gauge name =
  Mutex.protect gauges_lock (fun () ->
      match List.find_opt (fun g -> g.gname = name) !gauges with
      | Some g -> g
      | None ->
        let g = { gname = name; cell = Atomic.make Float.nan } in
        gauges := g :: !gauges;
        g)

let set g v = if Atomic.get enabled_flag then Atomic.set g.cell v

(* ------------------------------------------------------------------ *)
(* Snapshot / merge                                                    *)
(* ------------------------------------------------------------------ *)

type hist_value = {
  bounds : float array;
  counts : int array; (* per bound, plus a final overflow bucket *)
  total : int;
  sum : float;
  recent : float array; (* sliding-window samples, unordered, may be empty *)
  exemplars : (string * float) option array; (* per bucket: (trace id, value) *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_value) list;
}

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      let kinds = !kinds and names = !metric_names in
      let n = Array.length kinds in
      let shard_list = Mutex.protect shards_lock (fun () -> !shards) in
      let counter_acc = Array.make n 0 in
      let hist_count_acc =
        Array.map
          (function Hist_kind b -> Array.make (Array.length b + 1) 0 | Counter_kind -> [||])
          kinds
      in
      let hist_sum_acc = Array.make n 0. in
      let hist_recent_acc = Array.make n [] in
      let hist_exemplar_acc =
        Array.map
          (function
            | Hist_kind b -> Array.make (Array.length b + 1) None | Counter_kind -> [||])
          kinds
      in
      List.iter
        (fun (s : shard) ->
          let m = Int.min n (Array.length s.counters) in
          for id = 0 to m - 1 do
            counter_acc.(id) <- counter_acc.(id) + s.counters.(id);
            match s.hists.(id) with
            | None -> ()
            | Some cell ->
              let acc = hist_count_acc.(id) in
              Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) cell.counts;
              hist_sum_acc.(id) <- hist_sum_acc.(id) +. cell.sum;
              let valid = Int.min cell.recent_n window_capacity in
              if valid > 0 then
                hist_recent_acc.(id) <-
                  Array.sub cell.recent 0 valid :: hist_recent_acc.(id);
              let ex = hist_exemplar_acc.(id) in
              Array.iteri
                (fun i e -> match e with Some _ when ex.(i) = None -> ex.(i) <- e | _ -> ())
                cell.exemplars
          done)
        shard_list;
      let counters = ref [] and histograms = ref [] in
      for id = n - 1 downto 0 do
        match kinds.(id) with
        | Counter_kind -> counters := (names.(id), counter_acc.(id)) :: !counters
        | Hist_kind bounds ->
          let counts = hist_count_acc.(id) in
          histograms :=
            ( names.(id),
              {
                bounds;
                counts;
                total = Array.fold_left ( + ) 0 counts;
                sum = hist_sum_acc.(id);
                recent = Array.concat hist_recent_acc.(id);
                exemplars = hist_exemplar_acc.(id);
              } )
            :: !histograms
      done;
      let gauge_values =
        Mutex.protect gauges_lock (fun () ->
            List.rev_map (fun g -> (g.gname, Atomic.get g.cell)) !gauges)
        |> List.filter (fun (_, v) -> not (Float.is_nan v))
      in
      { counters = !counters; gauges = gauge_values; histograms = !histograms })

let find_counter snapshot name = List.assoc_opt name snapshot.counters

(* Quantile estimate from the fixed buckets: locate the bucket holding
   the target rank and interpolate linearly inside it. Coarse by
   construction (bucket resolution), but monotone and allocation-free —
   what a live /metrics endpoint needs, not a full reservoir. *)
let hist_quantile h q =
  let n_bounds = Array.length h.bounds in
  if h.total = 0 || n_bounds = 0 then Float.nan
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let target = q *. float_of_int h.total in
    let rec go i cum =
      if i >= Array.length h.counts then h.bounds.(n_bounds - 1)
      else
        let c = h.counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then begin
          let lo = if i = 0 then 0. else h.bounds.(i - 1) in
          (* the overflow bucket has no upper bound: pin it at the last *)
          let hi = h.bounds.(Int.min i (n_bounds - 1)) in
          let frac = (target -. float_of_int cum) /. float_of_int c in
          lo +. ((hi -. lo) *. Float.min 1. (Float.max 0. frac))
        end
        else go (i + 1) cum'
    in
    go 0 0
  end

(* Exact quantile over the merged sliding-window samples — recent
   behavior at full resolution. Falls back to the bucket estimate when
   the window is empty (e.g. a snapshot taken before any traffic). *)
let window_quantile h q =
  let n = Array.length h.recent in
  if n = 0 then hist_quantile h q
  else begin
    let a = Array.copy h.recent in
    Array.sort Float.compare a;
    let q = Float.min 1. (Float.max 0. q) in
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Int.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let reset () =
  Mutex.protect registry_lock (fun () ->
      Mutex.protect shards_lock (fun () ->
          List.iter
            (fun (s : shard) ->
              Array.fill s.counters 0 (Array.length s.counters) 0;
              Array.iter
                (function
                  | None -> ()
                  | Some (cell : hist_cell) ->
                    Array.fill cell.counts 0 (Array.length cell.counts) 0;
                    cell.sum <- 0.;
                    cell.recent_n <- 0;
                    Array.fill cell.exemplars 0 (Array.length cell.exemplars) None)
                s.hists)
            !shards);
      Mutex.protect gauges_lock (fun () ->
          List.iter (fun g -> Atomic.set g.cell Float.nan) !gauges))
