(** W3C trace-context identifiers for request correlation.

    One {!t} names one end-to-end request: the 32-hex [trace_id] is
    carried in the [traceparent] HTTP header, stamped on every
    {!Flight} stage and attached as an exemplar to latency-histogram
    buckets in the OpenMetrics exposition, so a slow bucket can be
    traced back to a concrete request. Minting is lock-free and
    deterministic-free (seeded from wall clock ⊕ pid at startup). *)

type t = {
  trace_id : string;   (** 32 lowercase hex, never all-zero *)
  parent_id : string;  (** 16 lowercase hex span id *)
}

val mint : unit -> t
(** Fresh random identifiers. *)

val span_id : unit -> string
(** Fresh 16-hex span id (for a child span under an existing trace). *)

val to_traceparent : t -> string
(** ["00-<trace_id>-<parent_id>-01"], the header value to send. *)

val of_traceparent : string -> t option
(** Parse a [traceparent] header value; [None] on anything malformed
    (wrong length/version, non-hex, all-zero ids) — callers mint a
    fresh trace instead. *)

val is_valid_trace_id : string -> bool
(** 32 lowercase hex and not all-zero. *)
