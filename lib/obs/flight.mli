(** Always-on flight recorder: a lock-free ring of the last N request
    records — trace id, per-stage timings, sizes, status, engine-cache
    hit/miss — behind [GET /debug/requests], plus the slow-request log.

    Unlike {!Metrics}/{!Span} this is {e not} gated on the sinks flag:
    recording one small record per HTTP request is amortized over a
    network round trip and cheap enough to leave on in production.
    {!timed} with no record while sinks are off remains allocation-free
    (the hot-path guarantee the bench suite pins).

    Concurrency: a record crosses the connection→worker domain hop.
    Scalar fields are single-writer-at-a-time plain stores; the [stages]
    list is CAS-pushed (both domains append); ring publication is one
    [fetch_and_add] plus a slot store. Readers get a racy but never torn
    view. *)

type cache_status = Hit | Miss | Unknown

type stage = {
  stage : string;
  t0_us : float;  (** monotonic ({!Clock.now_us}) *)
  t1_us : float;
}

type record = {
  seq : int;
  mutable trace_id : string;
  mutable meth : string;
  mutable path : string;
  started_wall_s : float;
  t_start_us : float;
  mutable t_end_us : float;  (** [0.] while in flight *)
  mutable queued_us : float;  (** {!mark_queued} timestamp, [0.] if never queued *)
  mutable status : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable cache : cache_status;
  stages : stage list Atomic.t;  (** newest first; capped at 32 *)
}

val create :
  ?trace_id:string -> ?started_wall_s:float -> meth:string -> path:string -> unit -> record
(** New in-flight record; mints a fresh {!Trace} id when none is
    propagated from the client. Not yet visible in the ring.
    [started_wall_s] overrides the display timestamp (defaults to
    [Unix.gettimeofday ()]) — the server passes its own wall reading so
    a simulated NTP step in tests flows through display fields only,
    never through the monotonic stage timings. *)

val mark_queued : record -> unit
(** Stamp the enqueue instant — the worker turns it into the ["queue"]
    stage when it pops the job. *)

val set_cache : record -> cache_status -> unit

val record_stage : ?shard:int -> record option -> stage:string -> float -> float -> unit
(** [record_stage r ~stage t0_us t1_us] appends an externally-timed
    stage (monotonic µs) and feeds the per-stage latency histogram
    [service.stage_seconds{stage=...}] (with the record's trace id as
    exemplar) when sinks are on. [shard] adds a [shard="k"] label to
    the histogram family — stages executed on a sharded worker domain
    expose per-shard latency; the flight record itself keeps the plain
    stage name. *)

val timed : ?record:record -> ?shard:int -> stage:string -> (unit -> 'a) -> 'a
(** Time [f] with the monotonic clock and {!record_stage} it.
    Exception-safe. With no record and sinks off this is [f ()] behind
    two atomic loads — no clock read, no allocation. *)

val finish : ?slow_ms:float -> record -> status:int -> unit
(** Seal the record and publish it to the ring; logs one stderr line
    when the request took ≥ [slow_ms] milliseconds. *)

val recent : ?limit:int -> unit -> record list
(** Newest-first published records (≤ ring capacity). *)

val total : unit -> int
(** Requests ever published (ring overwrites beyond {!capacity}). *)

val capacity : int

val json : ?limit:int -> unit -> string
(** The [GET /debug/requests] document. *)

val chrome : ?limit:int -> ?trace_id:string -> unit -> string
(** Chrome trace_event JSON ("X" events, one row per request), optionally
    filtered to a single trace id — the [repro loadgen --trace] artifact. *)

val reset : unit -> unit
(** Clear the ring (tests/benches only; not safe under concurrent
    publication). *)
