(* W3C trace-context identifiers (traceparent header, 00 version).

   A trace id is 32 lowercase hex chars, a parent/span id 16; the
   header form is "00-<trace>-<parent>-<flags>". Ids are minted from a
   splitmix64 stream over an atomic counter (seeded once per process
   from the wall clock and pid), so minting is lock-free, allocation is
   bounded to the id strings themselves, and two processes started in
   the same microsecond still diverge on pid. *)

type t = {
  trace_id : string;  (* 32 lowercase hex *)
  parent_id : string; (* 16 lowercase hex *)
}

(* splitmix64 finalizer: full-period mixing of the counter stream *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let seed =
  Int64.logxor
    (Int64.of_float (Unix.gettimeofday () *. 1e6))
    (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40)

let ctr = Atomic.make 1

let next64 () =
  let n = Atomic.fetch_and_add ctr 1 in
  mix Int64.(add seed (mul golden (of_int n)))

let hex16 v = Printf.sprintf "%016Lx" v

let rec fresh_trace_id () =
  let id = hex16 (next64 ()) ^ hex16 (next64 ()) in
  (* the all-zero id is invalid per the spec; astronomically unlikely *)
  if String.for_all (Char.equal '0') id then fresh_trace_id () else id

let rec span_id () =
  let id = hex16 (next64 ()) in
  if String.for_all (Char.equal '0') id then span_id () else id

let mint () = { trace_id = fresh_trace_id (); parent_id = span_id () }

let is_hex s =
  String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let is_valid_trace_id s =
  String.length s = 32 && is_hex s && not (String.for_all (Char.equal '0') s)

let is_valid_parent_id s =
  String.length s = 16 && is_hex s && not (String.for_all (Char.equal '0') s)

let to_traceparent t = Printf.sprintf "00-%s-%s-01" t.trace_id t.parent_id

let of_traceparent s =
  (* "00-" ^ 32 hex ^ "-" ^ 16 hex ^ "-" ^ 2 hex = 55 bytes; unknown
     versions and malformed fields are rejected (caller mints fresh) *)
  if
    String.length s = 55
    && s.[2] = '-' && s.[35] = '-' && s.[52] = '-'
    && String.sub s 0 2 = "00"
  then begin
    let trace_id = String.sub s 3 32 in
    let parent_id = String.sub s 36 16 in
    let flags = String.sub s 53 2 in
    if is_valid_trace_id trace_id && is_valid_parent_id parent_id && is_hex flags then
      Some { trace_id; parent_id }
    else None
  end
  else None
