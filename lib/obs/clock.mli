(** Monotonic clock (CLOCK_MONOTONIC) for all duration measurement.

    Values are microseconds/seconds since an arbitrary epoch (typically
    boot), strictly non-decreasing within a process — immune to NTP
    steps, unlike [Unix.gettimeofday]. Use it for {e intervals} only;
    it is not a wall-clock time. The call is unboxed and allocation-free
    ([@@noalloc]), so it is safe on hot paths even with sinks off. *)

val now_us : unit -> float
(** Monotonic microseconds. *)

val now_s : unit -> float
(** Monotonic seconds ([now_us () *. 1e-6]). *)
