(* Combined telemetry report: the metrics registry, span summary and
   phase/GC reports as one JSON document (for `repro --metrics FILE`)
   or one human-readable text block. Hand-rolled JSON, as everywhere in
   this repo — no JSON dependency. *)

let escape = Span.json_escape

let float_json v =
  if Float.is_finite v then Printf.sprintf "%.10g" v else "null"

let hist_json (h : Metrics.hist_value) =
  Printf.sprintf "{\"bounds\":[%s],\"counts\":[%s],\"total\":%d,\"sum\":%s}"
    (String.concat "," (List.map float_json (Array.to_list h.bounds)))
    (String.concat "," (List.map string_of_int (Array.to_list h.counts)))
    h.total (float_json h.sum)

let span_json (s : Span.stat) =
  Printf.sprintf
    "{\"name\":\"%s\",\"count\":%d,\"total_us\":%s,\"mean_us\":%s,\"p50_us\":%s,\"p99_us\":%s}"
    (escape s.Span.name) s.Span.count (float_json s.Span.total_us)
    (float_json s.Span.mean_us) (float_json s.Span.p50_us) (float_json s.Span.p99_us)

let phase_json (p : Progress.phase_report) =
  Printf.sprintf
    "{\"name\":\"%s\",\"elapsed_s\":%s,\"minor_words\":%s,\"major_words\":%s,\"promoted_words\":%s,\"compactions\":%d}"
    (escape p.Progress.phase)
    (float_json p.Progress.elapsed_s)
    (float_json p.Progress.minor_words)
    (float_json p.Progress.major_words)
    (float_json p.Progress.promoted_words)
    p.Progress.compactions

let fields to_row l =
  String.concat "," (List.map to_row l)

let json () =
  let s = Metrics.snapshot () in
  let counters =
    fields (fun (name, v) -> Printf.sprintf "\"%s\":%d" (escape name) v) s.Metrics.counters
  in
  let gauges =
    fields
      (fun (name, v) -> Printf.sprintf "\"%s\":%s" (escape name) (float_json v))
      s.Metrics.gauges
  in
  let histograms =
    fields
      (fun (name, h) -> Printf.sprintf "\"%s\":%s" (escape name) (hist_json h))
      s.Metrics.histograms
  in
  let spans = fields span_json (Span.summary ()) in
  let phases = fields phase_json (Progress.phases ()) in
  Printf.sprintf
    "{\n\
     \"counters\":{%s},\n\
     \"gauges\":{%s},\n\
     \"histograms\":{%s},\n\
     \"spans\":[%s],\n\
     \"phases\":[%s]\n\
     }\n"
    counters gauges histograms spans phases

let render () =
  let s = Metrics.snapshot () in
  let buf = Buffer.create 1024 in
  if s.Metrics.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" name v))
      s.Metrics.counters
  end;
  if s.Metrics.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %g\n" name v))
      s.Metrics.gauges
  end;
  (match Span.summary () with
  | [] -> ()
  | _ ->
    Buffer.add_string buf "spans:\n";
    Buffer.add_string buf (Span.render_summary ()));
  (match Progress.phases () with
  | [] -> ()
  | _ ->
    Buffer.add_string buf "phases:\n";
    Buffer.add_string buf (Progress.render_phases ()));
  Buffer.contents buf
