let default_points = 64

type grid = {
  lo : float;
  dx : float;
  pdf : float array; (* density samples at lo + i·dx, normalized *)
  cdf : float array; (* running trapezoid integral of [pdf], cdf.(n-1) = 1 *)
  spline : Numerics.Spline.t option Atomic.t;
      (* lazy interpolant of [pdf] over the grid, fit on first density
         query (moment/CDF reads — the vast majority — never pay the
         tridiagonal solve). Atomic so a fit published by one domain is
         seen fully initialized by others; a racing duplicate fit is
         harmless (same inputs, same spline). *)
  atoms : (float array * float array) option Atomic.t;
      (* lazy mass-binned discretization (centers, masses) of this grid
         used when it is the narrow operand of [k_point_sum]. Narrow
         operands are overwhelmingly cached single-edge distributions
         summed against many different wide partials, so the atoms are a
         per-grid invariant worth keeping. Same publication discipline
         as [spline]; both arrays are frozen once published. *)
  depth : int;
      (* convolution-chain depth: 1 for a base grid, d₁+d₂ after a sum,
         reset to 1 by maxima (the CLT restarts at every synchronization
         point). Drives the moment-space fast path's switch-over. *)
  err : float;
      (* accumulated Kolmogorov (sup-CDF) error bound versus the exact
         sampled computation: 0 on every exact-path grid; the moment
         fast path adds its Berry–Esseen step bound. Kolmogorov distance
         is non-expansive under convolution and independent maxima, so
         operand bounds compose additively. *)
  rho3 : float option Atomic.t;
      (* lazy E|X−μ|³ — the Berry–Esseen numerator — cached like
         [spline]/[atoms] because chained sums re-read it each step. *)
}

type t = Const of float | Grid of grid

(* Global switch for the moment-space fast path on deep convolution
   chains. [Exact] (the default, so campaign CSVs and served bytes stay
   bit-reproducible) always convolves sampled densities; [Moment k]
   replaces a sum whose combined chain depth reaches [k] by its CLT
   normal with an explicit error certificate ([err] above). Process-wide
   and read once per [add]: one atomic load on the hot path. *)
type chain_mode = Exact | Moment of int

let chain_mode_cell : chain_mode Atomic.t = Atomic.make Exact

let set_chain_mode m =
  (match m with
  | Moment k when k < 2 -> invalid_arg "Dist.set_chain_mode: Moment depth must be >= 2"
  | _ -> ());
  Atomic.set chain_mode_cell m

let current_chain_mode () = Atomic.get chain_mode_cell

let chain_depth = function Const _ -> 0 | Grid g -> g.depth
let chain_error_bound = function Const _ -> 0. | Grid g -> g.err

(* Rebuild the wrapper with new chain metadata, sharing the sampled
   arrays and the lazy caches — no numeric work. *)
let retag d ~depth ~err =
  match d with
  | Const _ -> d
  | Grid g -> if g.depth = depth && g.err = err then d else Grid { g with depth; err }

let grid_n g = Array.length g.pdf
let grid_hi g = g.lo +. (g.dx *. float_of_int (grid_n g - 1))
let grid_xs g = Array.init (grid_n g) (fun i -> g.lo +. (float_of_int i *. g.dx))

let grid_spline g =
  match Atomic.get g.spline with
  | Some s -> s
  | None ->
    let s = Numerics.Spline.fit ~xs:(grid_xs g) ~ys:g.pdf in
    Atomic.set g.spline (Some s);
    s

(* Per-domain arena for the construction hot path: three growable float
   buffers (two convolution operands plus one result/sampling target),
   reused across every sum/max in a sweep. Buffers only ever hold data
   between a fill and the [make_grid_n] copy a few lines later, so the
   arena has no lifecycle to manage — each operation overwrites freely. *)
type arena = {
  mutable a : float array;
  mutable b : float array;
  mutable c : float array;
}

let arena_key : arena Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { a = [||]; b = [||]; c = [||] })

let grow buf n =
  if Array.length buf >= n then buf else Array.make (Numerics.Array_ops.next_pow2 n) 0.

let scratch_a n =
  let s = Domain.DLS.get arena_key in
  let r = grow s.a n in
  s.a <- r;
  r

let scratch_b n =
  let s = Domain.DLS.get arena_key in
  let r = grow s.b n in
  s.b <- r;
  r

let scratch_c n =
  let s = Domain.DLS.get arena_key in
  let r = grow s.c n in
  s.c <- r;
  r

(* Build a grid from the first [n] cells of [src] (possibly an oversized
   arena buffer; [src] is read, never kept). Clamp, normalize, and
   integrate in two passes over fresh exactly-sized arrays — same
   operation order as the historical map/map/cumulative pipeline, so the
   stored pdf/cdf are bit-identical to it. *)
let check_grid_args ~lo:_ ~dx ~n =
  if n < 2 then invalid_arg "Dist: grid needs at least 2 samples";
  if dx <= 0. || not (Float.is_finite dx) then invalid_arg "Dist: dx must be positive"

(* Normalize an already-clamped, exactly-sized density in place and wrap
   it — the shared tail of [make_grid_n] and [make_grid_n_fa]. *)
let finish_grid ~lo ~dx pdf =
  let n = Array.length pdf in
  let total = Numerics.Integrate.trapezoid_sampled ~dx pdf in
  if total <= 0. then invalid_arg "Dist: density has no mass";
  for i = 0 to n - 1 do
    Array.unsafe_set pdf i (Array.unsafe_get pdf i /. total)
  done;
  let cdf = Numerics.Integrate.cumulative ~dx pdf in
  (* kill the last-ulp drift so quantile/cdf_at see an exact CDF *)
  let last = cdf.(n - 1) in
  if last > 0. then
    for i = 0 to n - 1 do
      Array.unsafe_set cdf i (Float.min 1. (Array.unsafe_get cdf i /. last))
    done;
  {
    lo;
    dx;
    pdf;
    cdf;
    spline = Atomic.make None;
    atoms = Atomic.make None;
    depth = 1;
    err = 0.;
    rho3 = Atomic.make None;
  }

let make_grid_n ~lo ~dx ~n src =
  check_grid_args ~lo ~dx ~n;
  if Array.length src < n then invalid_arg "Dist: fewer samples than requested";
  let pdf = Array.make n 0. in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get src i in
    Array.unsafe_set pdf i (if Float.is_finite v && v > 0. then v else 0.)
  done;
  finish_grid ~lo ~dx pdf

(* Same construction from an unboxed work buffer: identical clamp /
   normalize / cumulate order, so a kernel may run on either tier and
   produce the same grid bit-for-bit. *)
let make_grid_n_fa ~lo ~dx ~n src =
  check_grid_args ~lo ~dx ~n;
  if Float.Array.length src < n then invalid_arg "Dist: fewer samples than requested";
  let pdf = Array.make n 0. in
  for i = 0 to n - 1 do
    let v = Float.Array.unsafe_get src i in
    Array.unsafe_set pdf i (if Float.is_finite v && v > 0. then v else 0.)
  done;
  finish_grid ~lo ~dx pdf

let make_grid ~lo ~dx pdf = make_grid_n ~lo ~dx ~n:(Array.length pdf) pdf

let const v =
  if not (Float.is_finite v) then invalid_arg "Dist.const: non-finite value";
  Const v

let of_samples_pdf ~lo ~dx pdf = Grid (make_grid ~lo ~dx pdf)

let of_fn ?(points = default_points) ~lo ~hi f =
  if not (lo < hi) then invalid_arg "Dist.of_fn: requires lo < hi";
  if points < 2 then invalid_arg "Dist.of_fn: need at least 2 points";
  let dx = (hi -. lo) /. float_of_int (points - 1) in
  let pdf = Array.init points (fun i -> f (lo +. (float_of_int i *. dx))) in
  Grid (make_grid ~lo ~dx pdf)

let is_const = function Const _ -> true | Grid _ -> false

let support = function
  | Const v -> (v, v)
  | Grid g -> (g.lo, grid_hi g)

(* Density at x: spline inside the support, zero outside, clamped at 0
   against spline overshoot. *)
let grid_pdf_at g x =
  if x < g.lo || x > grid_hi g then 0.
  else Float.max 0. (Numerics.Spline.eval (grid_spline g) x)

let pdf_at d x =
  match d with
  | Const _ -> invalid_arg "Dist.pdf_at: point mass has no density"
  | Grid g -> grid_pdf_at g x

let grid_cdf_at g x =
  if x <= g.lo then 0.
  else
    let hi = grid_hi g in
    if x >= hi then 1.
    else begin
      let pos = (x -. g.lo) /. g.dx in
      let i = int_of_float pos in
      let i = Int.min i (grid_n g - 2) in
      (* unsafe: g.lo < x < hi gives 0 ≤ i ≤ n − 2 after the clamp *)
      let frac = pos -. float_of_int i in
      let c_i = Array.unsafe_get g.cdf i in
      let v = c_i +. (frac *. (Array.unsafe_get g.cdf (i + 1) -. c_i)) in
      Float.min 1. (Float.max 0. v)
    end

let cdf_at d x =
  match d with
  | Const v -> if x >= v then 1. else 0.
  | Grid g -> grid_cdf_at g x

let to_arrays = function
  | Const v ->
    let w = 1e-9 *. Float.max 1. (Float.abs v) in
    ([| v -. w; v +. w |], [| 0.5 /. w; 0.5 /. w |])
  | Grid g -> (grid_xs g, Array.copy g.pdf)

let cdf_arrays = function
  | Const v ->
    let w = 1e-9 *. Float.max 1. (Float.abs v) in
    ([| v -. w; v +. w |], [| 0.; 1. |])
  | Grid g -> (grid_xs g, Array.copy g.cdf)

(* E[weight(X)], normalized by the mass measured with the same quadrature
   so normalization drift cannot bias moments. The trapezoid rule is used
   deliberately: it is the rule [make_grid_n] normalizes with and the CDF
   integrates with, and it gives point masses folded into a boundary cell
   (grid_pdf += 2·mass/dx) exactly their intended weight — Simpson would
   count such an atom at 2/3 of its mass. Both quadratures run in one
   fused pass with the historical accumulation order (endpoints halved
   first, then interior cells, then ×dx) and no materialized xs/ys. *)
let integrate_weighted g weight =
  let n = grid_n g in
  let lo = g.lo and dx = g.dx and pdf = g.pdf in
  let x0 = lo +. (float_of_int 0 *. dx) in
  let x_last = lo +. (float_of_int (n - 1) *. dx) in
  let num = ref (((weight x0 *. pdf.(0)) +. (weight x_last *. pdf.(n - 1))) /. 2.) in
  let mass = ref ((pdf.(0) +. pdf.(n - 1)) /. 2.) in
  for i = 1 to n - 2 do
    let x = lo +. (float_of_int i *. dx) in
    let p = Array.unsafe_get pdf i in
    num := !num +. (weight x *. p);
    mass := !mass +. p
  done;
  let num = !num *. dx and mass = !mass *. dx in
  if mass > 0. then num /. mass else num

(* [integrate_weighted g (fun x -> x)] / the centered second moment,
   specialized to first-order loops: the closure-based form boxes every
   [weight x] result, so the two moments the sweep reads for every
   schedule row would dominate steady-state allocation. Accumulation
   order matches [integrate_weighted] exactly — bit-identical values. *)
let grid_mean g =
  let n = grid_n g in
  let lo = g.lo and dx = g.dx and pdf = g.pdf in
  let x0 = lo +. (float_of_int 0 *. dx) in
  let x_last = lo +. (float_of_int (n - 1) *. dx) in
  let num = ref (((x0 *. pdf.(0)) +. (x_last *. pdf.(n - 1))) /. 2.) in
  let mass = ref ((pdf.(0) +. pdf.(n - 1)) /. 2.) in
  for i = 1 to n - 2 do
    let x = lo +. (float_of_int i *. dx) in
    let p = Array.unsafe_get pdf i in
    num := !num +. (x *. p);
    mass := !mass +. p
  done;
  let num = !num *. dx and mass = !mass *. dx in
  if mass > 0. then num /. mass else num

let grid_var_about m g =
  let n = grid_n g in
  let lo = g.lo and dx = g.dx and pdf = g.pdf in
  let x0 = lo +. (float_of_int 0 *. dx) in
  let x_last = lo +. (float_of_int (n - 1) *. dx) in
  let d0 = x0 -. m and dl = x_last -. m in
  let num = ref (((d0 *. d0 *. pdf.(0)) +. (dl *. dl *. pdf.(n - 1))) /. 2.) in
  let mass = ref ((pdf.(0) +. pdf.(n - 1)) /. 2.) in
  for i = 1 to n - 2 do
    let x = lo +. (float_of_int i *. dx) in
    let p = Array.unsafe_get pdf i in
    let d = x -. m in
    num := !num +. (d *. d *. p);
    mass := !mass +. p
  done;
  let num = !num *. dx and mass = !mass *. dx in
  if mass > 0. then num /. mass else num

let mean = function
  | Const v -> v
  | Grid g -> grid_mean g

let variance = function
  | Const _ -> 0.
  | Grid g ->
    (* centered two-pass form: E[X²] − E[X]² cancels catastrophically
       once the mean dwarfs the spread (makespans in the thousands with
       σ of a few units) *)
    let m = grid_mean g in
    Float.max 0. (grid_var_about m g)

let std d = sqrt (variance d)

let standardized_moment k = function
  | Const _ -> 0.
  | Grid g ->
    let m = integrate_weighted g (fun x -> x) in
    let var =
      integrate_weighted g (fun x ->
          let d = x -. m in
          d *. d)
    in
    if var <= 0. then 0.
    else begin
      let s = sqrt var in
      integrate_weighted g (fun x -> ((x -. m) /. s) ** float_of_int k)
    end

let skewness d = standardized_moment 3 d

let kurtosis_excess d =
  match d with Const _ -> 0. | Grid _ -> standardized_moment 4 d -. 3.

let entropy = function
  | Const _ -> Float.neg_infinity
  | Grid g ->
    let e p = if p > 0. then -.p *. log p else 0. in
    let n = grid_n g in
    let s = ref ((e g.pdf.(0) +. e g.pdf.(n - 1)) /. 2.) in
    for i = 1 to n - 2 do
      s := !s +. e g.pdf.(i)
    done;
    !s *. g.dx

let quantile d p =
  if p < 0. || p > 1. then invalid_arg "Dist.quantile: p must be in [0,1]";
  match d with
  | Const v -> v
  | Grid g ->
    let n = grid_n g in
    if p <= g.cdf.(0) then g.lo
    else if p >= 1. then grid_hi g
    else begin
      (* binary search for the bracketing CDF cell, then linear interp *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if g.cdf.(mid) >= p then hi := mid else lo := mid
      done;
      let c0 = g.cdf.(!lo) and c1 = g.cdf.(!hi) in
      let frac = if c1 > c0 then (p -. c0) /. (c1 -. c0) else 0. in
      g.lo +. ((float_of_int !lo +. frac) *. g.dx)
    end

let prob_between d a b =
  if a > b then 0. else Float.max 0. (cdf_at d b -. cdf_at d a)

let mean_above d c =
  match d with
  | Const v -> if v > c then v else c
  | Grid g ->
    let hi = grid_hi g in
    if c >= hi then c
    else begin
      let lo = Float.max c g.lo in
      (* integrate x·f and f over [lo, hi] with linear interpolation of the
         grid density (positivity-safe, unlike the spline) *)
      let npdf = grid_n g in
      let pdf_lin x =
        let pos = (x -. g.lo) /. g.dx in
        let i = Int.max 0 (Int.min (int_of_float pos) (npdf - 2)) in
        let frac = pos -. float_of_int i in
        Float.max 0. (g.pdf.(i) +. (frac *. (g.pdf.(i + 1) -. g.pdf.(i))))
      in
      let n = 257 in
      let dx = (hi -. lo) /. float_of_int (n - 1) in
      if dx <= 0. then c
      else begin
        (* fused Simpson over f and x·f; n is odd so the interval count
           is even and there is no trapezoid tail — accumulation order
           matches [Integrate.simpson_sampled] on materialized arrays *)
        let x0 = lo +. (float_of_int 0 *. dx) in
        let xl = lo +. (float_of_int (n - 1) *. dx) in
        let f0 = pdf_lin x0 and fl = pdf_lin xl in
        let sf = ref (f0 +. fl) in
        let sxf = ref ((x0 *. f0) +. (xl *. fl)) in
        for i = 1 to n - 2 do
          let x = lo +. (float_of_int i *. dx) in
          let f = pdf_lin x in
          let w = if i mod 2 = 1 then 4. else 2. in
          sf := !sf +. (w *. f);
          sxf := !sxf +. (w *. (x *. f))
        done;
        let mass = !sf *. dx /. 3. in
        if mass <= 1e-12 then c else !sxf *. dx /. 3. /. mass
      end
    end

let shift d c =
  match d with
  | Const v -> Const (v +. c)
  | Grid g ->
    retag
      (Grid (make_grid ~lo:(g.lo +. c) ~dx:g.dx g.pdf))
      ~depth:g.depth ~err:g.err

let scale d c =
  if c <= 0. then invalid_arg "Dist.scale: factor must be positive";
  match d with
  | Const v -> Const (v *. c)
  | Grid g ->
    let pdf = Array.map (fun p -> p /. c) g.pdf in
    retag
      (Grid (make_grid ~lo:(g.lo *. c) ~dx:(g.dx *. c) pdf))
      ~depth:g.depth ~err:g.err

(* Sample grid [g]'s density at [lo + k·dx] for k < n into [out], zero
   outside the support of [g]. The query points are increasing, so a
   spline cursor walk replaces the per-point binary search (bit-identical
   values, see {!Numerics.Spline.eval_walk}). *)
let sample_onto_into ~lo ~dx ~n g out =
  if Array.length out < n then invalid_arg "Dist: sample buffer too short";
  let g_hi = grid_hi g in
  let g_lo = g.lo in
  let s = grid_spline g in
  let cu = Numerics.Spline.cursor () in
  for k = 0 to n - 1 do
    let x = lo +. (float_of_int k *. dx) in
    Array.unsafe_set out k
      (if x < g_lo || x > g_hi then 0.
       else Float.max 0. (Numerics.Spline.eval_walk s cu x))
  done

(* The same cursor walk writing an unboxed buffer — the entry point of
   the flat kernel tier (values identical to [sample_onto_into]). *)
let sample_onto_fa ~lo ~dx ~n g out =
  if Float.Array.length out < n then invalid_arg "Dist: sample buffer too short";
  let g_hi = grid_hi g in
  let g_lo = g.lo in
  let s = grid_spline g in
  let cu = Numerics.Spline.cursor () in
  for k = 0 to n - 1 do
    let x = lo +. (float_of_int k *. dx) in
    Float.Array.unsafe_set out k
      (if x < g_lo || x > g_hi then 0.
       else Float.max 0. (Numerics.Spline.eval_walk s cu x))
  done

let resample ?(points = default_points) d =
  match d with
  | Const _ -> d
  | Grid g ->
    if points < 2 then invalid_arg "Dist.resample: need at least 2 points";
    let hi = grid_hi g in
    let dx = (hi -. g.lo) /. float_of_int (points - 1) in
    let buf = scratch_c points in
    sample_onto_into ~lo:g.lo ~dx ~n:points g buf;
    retag (Grid (make_grid_n ~lo:g.lo ~dx ~n:points buf)) ~depth:g.depth ~err:g.err

(* Trim negligible CDF tails, then resample. After repeated sums the
   support grows linearly while σ grows as √k, so without trimming the
   density would concentrate into a handful of grid cells. *)
let trim ?(eps = 1e-9) ?(points = default_points) d =
  match d with
  | Const _ -> d
  | Grid g ->
    let n = grid_n g in
    let i_lo = ref 0 in
    while !i_lo + 1 < n && g.cdf.(!i_lo + 1) <= eps do
      incr i_lo
    done;
    let i_hi = ref (n - 1) in
    while !i_hi - 1 > !i_lo && g.cdf.(!i_hi - 1) >= 1. -. eps do
      decr i_hi
    done;
    let lo = g.lo +. (float_of_int !i_lo *. g.dx) in
    let hi = g.lo +. (float_of_int !i_hi *. g.dx) in
    if hi <= lo then Const (grid_mean g)
    else begin
      let dx = (hi -. lo) /. float_of_int (points - 1) in
      (* Identity fast path: nothing was cut and the recomputed step
         lands exactly on the grid's own step, so every sample point is a
         knot — and a natural cubic spline evaluated at a knot returns
         the knot ordinate exactly ((x_{i+1}−x)/h = 1 and (x−x_i)/h = 0
         are exact divisions, so the cubic terms vanish). The resample
         would therefore reproduce [g.pdf] bit-for-bit; feed it straight
         to [make_grid_n] and skip the spline fit and the scan. *)
      if !i_lo = 0 && !i_hi = n - 1 && points = n && dx = g.dx && lo = g.lo
      then retag (Grid (make_grid_n ~lo ~dx ~n:points g.pdf)) ~depth:g.depth ~err:g.err
      else begin
        let buf = scratch_c points in
        sample_onto_into ~lo ~dx ~n:points g buf;
        retag (Grid (make_grid_n ~lo ~dx ~n:points buf)) ~depth:g.depth ~err:g.err
      end
    end

(* Working resolution for a convolution: the finer of the two grids,
   capped so the padded signal stays tractable. *)
let max_work_samples = 2048

(* Sum of a wide grid [gw] and a moderately narrow one [gn] (support well
   below the combined range but above the working cell): convolve [gw]
   with a mass-binned discretization of [gn] — [k] atoms at bin centers
   carrying exact CDF masses, recentered so the mean is preserved
   exactly. Replaces a full FFT convolution at ~1/20 of the cost with
   sub-percent moment error.

   The discretization (centers, masses) depends only on the narrow grid
   itself, so it is computed once and published through the [atoms]
   field — narrow operands are overwhelmingly memoized edge
   distributions summed against many different wide partials. *)
let kp_atoms gn =
  match Atomic.get gn.atoms with
  | Some (centers, masses) -> (centers, masses)
  | None ->
    let k = 17 in
    let lo_n = gn.lo and hi_n = grid_hi gn in
    let w = (hi_n -. lo_n) /. float_of_int k in
    let centers =
      Array.init k (fun i -> lo_n +. ((float_of_int i +. 0.5) *. w))
    in
    let masses =
      Array.init k (fun i ->
          grid_cdf_at gn (lo_n +. (float_of_int (i + 1) *. w))
          -. grid_cdf_at gn (lo_n +. (float_of_int i *. w)))
    in
    let total_mass = Array.fold_left ( +. ) 0. masses in
    if total_mass > 0. then begin
      let mean_n = grid_mean gn in
      let disc_mean = ref 0. in
      Array.iteri (fun i c -> disc_mean := !disc_mean +. (masses.(i) *. c)) centers;
      let delta = mean_n -. (!disc_mean /. total_mass) in
      Array.iteri (fun i c -> centers.(i) <- c +. delta) centers
    end;
    Atomic.set gn.atoms (Some (centers, masses));
    (centers, masses)

let k_point_sum ~points gw gn =
  let centers, masses = kp_atoms gn in
  let k = Array.length masses in
  let lo = gw.lo +. gn.lo and hi = grid_hi gw +. grid_hi gn in
  let dx = (hi -. lo) /. float_of_int (points - 1) in
  let gw_hi = grid_hi gw in
  let s = grid_spline gw in
  let buf = scratch_c points in
  Array.fill buf 0 points 0.;
  (* Precompute the sample abscissas once: int→float conversion is much
     slower than a load on this target, so the atom-outer loop below
     reads them instead of recomputing lo + j·dx per (atom, cell). *)
  let xbuf = scratch_a points in
  for j = 0 to points - 1 do
    Array.unsafe_set xbuf j (lo +. (float_of_int j *. dx))
  done;
  (* Atom-outer accumulation: per output cell this performs the same
     left-associated sum over atoms 0..k−1 as a cell-outer loop would
     (skipped zero-mass atoms contribute nothing either way), so the
     result is bit-identical — but the mass, center, and spline cursor
     are hoisted out of the inner scan, and within an atom the queries
     x − cᵢ are increasing in j, so every spline lookup stays O(1)
     amortized off one cursor. *)
  for i = 0 to k - 1 do
    let mi = Array.unsafe_get masses i in
    if mi > 0. then begin
      let ci = Array.unsafe_get centers i in
      let cur = Numerics.Spline.cursor () in
      for j = 0 to points - 1 do
        let xi = Array.unsafe_get xbuf j -. ci in
        let f =
          if xi < gw.lo || xi > gw_hi then 0.
          else Float.max 0. (Numerics.Spline.eval_walk s cur xi)
        in
        Array.unsafe_set buf j (Array.unsafe_get buf j +. (mi *. f))
      done
    end
  done;
  Grid (make_grid_n ~lo ~dx ~n:points buf)

(* Sum of a wide grid [gw] and a narrow one [gn] whose support is below
   the working resolution: convolve [gw] with the two-point surrogate of
   [gn] (atoms at mean ± std, mass ½ each). *)
let two_point_sum ~points gw gn =
  let mu = grid_mean gn in
  let sigma = sqrt (Float.max 0. (grid_var_about mu gn)) in
  let lo = gw.lo +. gn.lo and hi = grid_hi gw +. grid_hi gn in
  let dx = (hi -. lo) /. float_of_int (points - 1) in
  let gw_hi = grid_hi gw in
  let s = grid_spline gw in
  let c1 = Numerics.Spline.cursor () and c2 = Numerics.Spline.cursor () in
  let buf = scratch_c points in
  for j = 0 to points - 1 do
    let x = lo +. (float_of_int j *. dx) in
    let x1 = x -. (mu -. sigma) and x2 = x -. (mu +. sigma) in
    let f1 =
      if x1 < gw.lo || x1 > gw_hi then 0.
      else Float.max 0. (Numerics.Spline.eval_walk s c1 x1)
    in
    let f2 =
      if x2 < gw.lo || x2 > gw_hi then 0.
      else Float.max 0. (Numerics.Spline.eval_walk s c2 x2)
    in
    buf.(j) <- 0.5 *. (f1 +. f2)
  done;
  Grid (make_grid_n ~lo ~dx ~n:points buf)

(* E|X−μ|³ — the Berry–Esseen numerator. Cached on the grid because a
   chained sum re-reads both operands' third moments at every step. *)
let rho3_of g =
  match Atomic.get g.rho3 with
  | Some r -> r
  | None ->
    let m = grid_mean g in
    let r =
      integrate_weighted g (fun x ->
          let d = Float.abs (x -. m) in
          d *. d *. d)
    in
    Atomic.set g.rho3 (Some r);
    r

let abs_third_central_moment = function
  | Const _ -> 0.
  | Grid g -> rho3_of g

(* Moment-space sum for a chain past the [Moment] threshold: replace the
   convolution by the CLT normal with the summed mean and variance,
   sampled on μ ± 4σ (cuts 6.3e-5 of normal mass per tail — well inside
   the certified bound). The step's Berry–Esseen bound joins the
   operands' accumulated [err]; [depth] keeps growing so every later sum
   on this chain stays on the fast path. Degenerate σ² = 0 collapses to
   the point mass (whose error bound is the vacuous 0 of [Const]). *)
let moment_sum ~points g1 g2 ~depth ~err =
  let m1 = grid_mean g1 and m2 = grid_mean g2 in
  let v1 = Float.max 0. (grid_var_about m1 g1) in
  let v2 = Float.max 0. (grid_var_about m2 g2) in
  let mu = m1 +. m2 and var = v1 +. v2 in
  let step =
    Numerics.Convolution.Moment_chain.bound ~rho3:(rho3_of g1 +. rho3_of g2) ~var
  in
  if var <= 0. then Const mu
  else begin
    let std = sqrt var in
    let lo = mu -. (4. *. std) and hi = mu +. (4. *. std) in
    let dx = (hi -. lo) /. float_of_int (points - 1) in
    let buf = scratch_c points in
    Numerics.Convolution.Moment_chain.normal_pdf_into ~out:buf ~n:points ~lo ~dx
      ~mean:mu ~std;
    retag (Grid (make_grid_n ~lo ~dx ~n:points buf)) ~depth ~err:(err +. step)
  end

let add ?(points = default_points) d1 d2 =
  match (d1, d2) with
  | Const a, Const b -> Const (a +. b)
  | Const a, (Grid _ as g) | (Grid _ as g), Const a -> shift g a
  | Grid g1, Grid g2 ->
    let depth = g1.depth + g2.depth in
    let err = g1.err +. g2.err in
    (match current_chain_mode () with
    | Moment threshold when depth >= threshold -> moment_sum ~points g1 g2 ~depth ~err
    | Exact | Moment _ ->
      let range1 = grid_hi g1 -. g1.lo and range2 = grid_hi g2 -. g2.lo in
      let dx =
        let fine = Float.min g1.dx g2.dx in
        let total = range1 +. range2 in
        if total /. fine > float_of_int (max_work_samples - 1) then
          total /. float_of_int (max_work_samples - 1)
        else fine
      in
      (* A summand far narrower than the working resolution would sample to
         all zeros (densities vanish at support edges). Replace it by the
         two-point distribution {μ−σ, μ+σ} with mass ½ each — same mean and
         variance — so the convolution becomes the average of two shifted
         copies of the wide density. Errors are O(dx³) in the moments while
         σ² accumulation (the robustness signal) is preserved exactly. *)
      let exact =
        if range1 < 2. *. dx then trim ~points (two_point_sum ~points g2 g1)
        else if range2 < 2. *. dx then trim ~points (two_point_sum ~points g1 g2)
        else if range1 < (range1 +. range2) /. 16. then
          trim ~points (k_point_sum ~points g2 g1)
        else if range2 < (range1 +. range2) /. 16. then
          trim ~points (k_point_sum ~points g1 g2)
        else begin
          let n_of range =
            Int.max 2 (int_of_float (Float.ceil (range /. dx -. 1e-9)) + 1)
          in
          let n1 = n_of range1 and n2 = n_of range2 in
          let small = Int.min n1 n2 and large = Int.max n1 n2 in
          (* f_{X+Y}(z) = ∫ f_X(x) f_Y(z−x) dx ≈ dx · Σ — the dx factor is
             absorbed by make_grid_n's renormalization. *)
          if small * large <= 4096 then begin
            (* The sizes [auto_into] would route to the direct kernel run
               on the unboxed tier instead: flat sampling buffers and the
               floatarray direct kernel, identical accumulation order, so
               the resulting grid is bit-for-bit the boxed one. *)
            let p1 = Flat.scratch_a n1 and p2 = Flat.scratch_b n2 in
            sample_onto_fa ~lo:g1.lo ~dx ~n:n1 g1 p1;
            sample_onto_fa ~lo:g2.lo ~dx ~n:n2 g2 p2;
            let conv = Flat.scratch_c (n1 + n2 - 1) in
            Numerics.Convolution.direct_into_fa ~out:conv p1 n1 p2 n2;
            trim ~points
              (Grid (make_grid_n_fa ~lo:(g1.lo +. g2.lo) ~dx ~n:(n1 + n2 - 1) conv))
          end
          else begin
            let p1 = scratch_a n1 and p2 = scratch_b n2 in
            sample_onto_into ~lo:g1.lo ~dx ~n:n1 g1 p1;
            sample_onto_into ~lo:g2.lo ~dx ~n:n2 g2 p2;
            let conv = scratch_c (n1 + n2 - 1) in
            Numerics.Convolution.auto_into ~out:conv p1 n1 p2 n2;
            trim ~points
              (Grid (make_grid_n ~lo:(g1.lo +. g2.lo) ~dx ~n:(n1 + n2 - 1) conv))
          end
        end
      in
      retag exact ~depth ~err)

let max_indep ?(points = default_points) d1 d2 =
  match (d1, d2) with
  | Const a, Const b -> Const (Float.max a b)
  | Const a, (Grid g as dg) | (Grid g as dg), Const a ->
    let hi = grid_hi g in
    if a <= g.lo then dg
    else if a >= hi then Const a
    else begin
      (* truncation: atom of mass F(a) at a, density of g above a; the
         atom is spread over the first cell of the result grid *)
      let mass = grid_cdf_at g a in
      let dx = (hi -. a) /. float_of_int (points - 1) in
      let buf = scratch_c points in
      sample_onto_into ~lo:a ~dx ~n:points g buf;
      buf.(0) <- buf.(0) +. (2. *. mass /. dx);
      (* make_grid_n renormalizes; pre-scale the continuous part so that
         the atom and the tail keep their relative weights under the
         trapezoid rule (first cell has weight dx/2, hence the factor 2).
         A maximum is a synchronization point: chain depth resets to 1
         (the CLT argument restarts), the accumulated bound survives
         (Kolmogorov distance is non-expansive under maxima). *)
      retag (Grid (make_grid_n ~lo:a ~dx ~n:points buf)) ~depth:1 ~err:g.err
    end
  | Grid g1, Grid g2 ->
    let lo = Float.max g1.lo g2.lo in
    let hi = Float.max (grid_hi g1) (grid_hi g2) in
    if hi <= lo then Const lo
    else begin
      (* fused f₁F₂ + f₂F₁ scan: the query points are increasing, so two
         spline cursors replace the per-point binary searches while the
         CDF lookups stay the O(1) linear-interp reads they always were *)
      let dx = (hi -. lo) /. float_of_int (points - 1) in
      let hi1 = grid_hi g1 and hi2 = grid_hi g2 in
      let s1 = grid_spline g1 and s2 = grid_spline g2 in
      let c1 = Numerics.Spline.cursor () and c2 = Numerics.Spline.cursor () in
      let buf = scratch_c points in
      for k = 0 to points - 1 do
        let x = lo +. (float_of_int k *. dx) in
        let f1 =
          if x < g1.lo || x > hi1 then 0.
          else Float.max 0. (Numerics.Spline.eval_walk s1 c1 x)
        in
        let f2 =
          if x < g2.lo || x > hi2 then 0.
          else Float.max 0. (Numerics.Spline.eval_walk s2 c2 x)
        in
        buf.(k) <- (f1 *. grid_cdf_at g2 x) +. (f2 *. grid_cdf_at g1 x)
      done;
      (* P(max ≤ lo) can be positive when one support starts below the
         other: fold that atom into the first cell as above. Sync point:
         depth resets to 1, operand error bounds add. *)
      let atom = grid_cdf_at g1 lo *. grid_cdf_at g2 lo in
      if atom > 0. then buf.(0) <- buf.(0) +. (2. *. atom /. dx);
      retag
        (trim ~points (Grid (make_grid_n ~lo ~dx ~n:points buf)))
        ~depth:1 ~err:(g1.err +. g2.err)
    end

let max_comonotone ?(points = default_points) d1 d2 =
  match (d1, d2) with
  | Const a, Const b -> Const (Float.max a b)
  | Const a, (Grid _ as dg) | (Grid _ as dg), Const a ->
    (* comonotone and independent maxima coincide against a constant *)
    max_indep ~points dg (Const a)
  | Grid g1, Grid g2 ->
    let lo = Float.max g1.lo g2.lo in
    let hi = Float.max (grid_hi g1) (grid_hi g2) in
    if hi <= lo then Const lo
    else begin
      (* density from central differences of F(x) = min(F₁, F₂); CDF-only,
         so neither input spline is ever forced *)
      let dx = (hi -. lo) /. float_of_int (points - 1) in
      let cdf_at x = Float.min (grid_cdf_at g1 x) (grid_cdf_at g2 x) in
      let buf = scratch_c points in
      for k = 0 to points - 1 do
        let x = lo +. (float_of_int k *. dx) in
        buf.(k) <- (cdf_at (x +. (dx /. 2.)) -. cdf_at (x -. (dx /. 2.))) /. dx
      done;
      (* fold the possible atom at the lower end into the first cell;
         sync point, same chain bookkeeping as [max_indep] *)
      let atom = cdf_at lo in
      if atom > 0. then buf.(0) <- buf.(0) +. (2. *. atom /. dx);
      retag
        (trim ~points (Grid (make_grid_n ~lo ~dx ~n:points buf)))
        ~depth:1 ~err:(g1.err +. g2.err)
    end

let add_list ?points ds = List.fold_left (fun acc d -> add ?points acc d) (Const 0.) ds

let max_list ?points = function
  | [] -> invalid_arg "Dist.max_list: empty list"
  | d :: ds -> List.fold_left (fun acc d -> max_indep ?points acc d) d ds
