(* Per-domain arena of unboxed [floatarray] work buffers — the flat
   counterpart of the boxed [float array] arena in {!Dist}. [floatarray]
   guarantees untagged flat storage independent of the float-array
   optimization, which is what lets flambda keep the convolution
   multiply–adds in vector registers. Buffers only hold data between a
   fill and the grid-copy a few lines later (same discipline as the
   boxed arena), so there is no lifecycle: every operation overwrites
   freely, and buffers grow to the next power of two and stay. *)

type arena = {
  mutable a : floatarray;
  mutable b : floatarray;
  mutable c : floatarray;
}

let arena_key : arena Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { a = Float.Array.create 0; b = Float.Array.create 0; c = Float.Array.create 0 })

let grow buf n =
  if Float.Array.length buf >= n then buf
  else Float.Array.make (Numerics.Array_ops.next_pow2 n) 0.

let scratch_a n =
  let s = Domain.DLS.get arena_key in
  let r = grow s.a n in
  s.a <- r;
  r

let scratch_b n =
  let s = Domain.DLS.get arena_key in
  let r = grow s.b n in
  s.b <- r;
  r

let scratch_c n =
  let s = Domain.DLS.get arena_key in
  let r = grow s.c n in
  s.c <- r;
  r

let of_array src =
  let n = Array.length src in
  let out = Float.Array.create n in
  for i = 0 to n - 1 do
    Float.Array.unsafe_set out i (Array.unsafe_get src i)
  done;
  out

let blit_to_array src ~n dst =
  if Float.Array.length src < n || Array.length dst < n then
    invalid_arg "Flat.blit_to_array: buffer too short";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i (Float.Array.unsafe_get src i)
  done
