(** Per-domain arena of unboxed [floatarray] work buffers.

    The flat counterpart of {!Dist}'s boxed scratch arena, backing the
    unboxed kernel tier: sampled densities land here, the
    {!Numerics.Convolution.direct_into_fa} kernel runs over them, and
    the result is copied out into an exactly-sized grid. Buffers are
    domain-local (safe under parallel sweeps) and grow to the next
    power of two on demand. Contents are undefined between operations —
    treat every buffer as uninitialized on acquisition. *)

val scratch_a : int -> floatarray
(** A buffer of at least [n] cells (first operand slot). *)

val scratch_b : int -> floatarray
(** Second operand slot. *)

val scratch_c : int -> floatarray
(** Result slot. *)

val of_array : float array -> floatarray
(** Fresh unboxed copy of a boxed array (bench/test helper). *)

val blit_to_array : floatarray -> n:int -> float array -> unit
(** Copy the first [n] cells out into a boxed array. *)
